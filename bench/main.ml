(* The benchmark harness: regenerates every table and figure of the paper
   and times the simulator's own components with Bechamel.

     dune exec bench/main.exe              # everything: tables, figures,
                                           # runtimes, ablations, sim-rate,
                                           # then the Bechamel suites
     dune exec bench/main.exe -- fig1      # one experiment
     dune exec bench/main.exe -- bechamel  # only the Bechamel suites
     dune exec bench/main.exe -- sampling  # sampled-simulation acceptance gate
     dune exec bench/main.exe -- parallel  # worker-pool acceptance gate
     dune exec bench/main.exe -- perf      # replay acceptance gate (identity +
                                           # trace 2x + memo fast path 10x MIPS)
     dune exec bench/main.exe -- perf-identity  # identity/accuracy half only (CI
                                           # smoke; writes BENCH_perf.json)
     dune exec bench/main.exe -- perf-baseline  # remeasure results/perf-baseline.json (Seq path)

   Experiment ids: table1-5, fig1-7, runtimes, ablate-l1, ablate-clock,
   ablate-bus, simrate. *)

let run_experiment id =
  match List.find_opt (fun (i, _, _) -> i = id) Simbridge.Experiments.all with
  | Some (_, descr, render) ->
    Printf.printf "=== %s: %s ===\n%!" id descr;
    let t0 = Unix.gettimeofday () in
    print_string (render Telemetry.Registry.disabled);
    Printf.printf "(%s regenerated in %.1f s)\n\n%!" id (Unix.gettimeofday () -. t0)
  | None ->
    Printf.eprintf "unknown experiment %s\n" id;
    exit 1

(* ------------------------------------------------------ sampling gate *)

(* `bench/main.exe sampling` is the sampling engine's acceptance gate
   (distinct from the informational `sampling` registry entry): it
   regenerates fig1 full and sampled under the default policy/budget and
   fails unless every kernel's relative speedup lands within 5% of the
   full-run value at a >= 5x host wall-clock speedup.  fig2 runs under
   the same policy and is reported for context. *)
let run_sampling_gate () =
  let module E = Simbridge.Experiments in
  let t0 = Unix.gettimeofday () in
  let e1 = E.sampling_eval_fig1 () in
  print_string (E.render_sampling_eval e1);
  let bad = List.filter (fun (r : E.sampling_row) -> r.E.sr_rel_err > 0.05) e1.E.se_rows in
  List.iter
    (fun (r : E.sampling_row) ->
      Printf.printf "FAIL %s / %s: sampled rel %.4f vs full %.4f (%.2f%% > 5%%)\n" r.E.sr_series
        r.E.sr_kernel r.E.sr_sampled r.E.sr_full
        (100.0 *. r.E.sr_rel_err))
    bad;
  if e1.E.se_speedup < 5.0 then
    Printf.printf "FAIL fig1 wall-clock speedup %.1fx < 5x\n" e1.E.se_speedup;
  let e2 = E.sampling_eval_fig2 () in
  print_string (E.render_sampling_eval e2);
  Printf.printf "(sampling gate ran in %.1f s)\n%!" (Unix.gettimeofday () -. t0);
  if bad <> [] || e1.E.se_speedup < 5.0 then exit 1;
  Printf.printf "sampling gate: PASS (fig1 max rel err %.2f%% <= 5%%, speedup %.1fx >= 5x)\n%!"
    (100.0 *. e1.E.se_max_rel_err) e1.E.se_speedup

(* ------------------------------------------------------ parallel gate *)

(* `bench/main.exe parallel` is the worker pool's acceptance gate, in
   two halves:

   (1) identity — fig1 and fig2 regenerated at jobs=1 and jobs>=2 must
       be bit-identical (structural equality of the figure record AND
       byte equality of the rendered CSV).  This half always runs: it
       is a correctness property and holds on any host, including
       single-core ones (jobs=2 there just time-slices one core).
   (2) speedup — the pooled fig1 run must beat the sequential one by
       >= 2x wall-clock.  Asserted only when the host has >= 4
       *physical* cores (Pool.physical_cores, falling back to
       recommended_jobs when /proc/cpuinfo has no topology).  GitHub's
       standard runners expose 4 hyperthreads on 2 physical cores;
       gating on Domain.recommended_domain_count() made the 2x bar
       flaky there, because SMT siblings contend for the same
       execution units.  The identity runs double as the timing
       source, so waiving the bar costs nothing extra — the wall
       clocks are still printed for the curious. *)
let run_parallel_gate () =
  let module E = Simbridge.Experiments in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let auto = Parallel.Pool.recommended_jobs () in
  let physical =
    match Parallel.Pool.physical_cores () with Some n -> n | None -> auto
  in
  (* Identity half: jobs >= 2 so the domain path is exercised even on a
     single-core host. *)
  let par_jobs = max 2 (min auto physical) in
  let seq1, seq_wall = time (fun () -> E.fig1 ~jobs:1 ()) in
  let par1, par_wall = time (fun () -> E.fig1 ~jobs:par_jobs ()) in
  let seq2, _ = time (fun () -> E.fig2 ~jobs:1 ()) in
  let par2, _ = time (fun () -> E.fig2 ~jobs:par_jobs ()) in
  let mismatches =
    List.filter
      (fun (_, ok) -> not ok)
      [
        ("fig1 figure", seq1 = par1);
        ("fig1 csv", E.figure_csv seq1 = E.figure_csv par1);
        ("fig2 figure", seq2 = par2);
        ("fig2 csv", E.figure_csv seq2 = E.figure_csv par2);
      ]
  in
  List.iter
    (fun (what, _) -> Printf.printf "FAIL %s: jobs=%d differs from jobs=1\n" what par_jobs)
    mismatches;
  (* Speedup half: only where >= 4 physical cores give real headroom. *)
  let gate_speedup = physical >= 4 in
  let too_slow =
    if not gate_speedup then begin
      Printf.printf
        "fig1 wall-clock: jobs=1 %.2fs, jobs=%d %.2fs (identity only; %d physical core(s), speedup bar waived)\n"
        seq_wall par_jobs par_wall physical;
      false
    end
    else begin
      let speedup = if par_wall > 0.0 then seq_wall /. par_wall else 0.0 in
      Printf.printf "fig1 wall-clock: jobs=1 %.2fs, jobs=%d %.2fs (%.2fx, %d physical cores)\n"
        seq_wall par_jobs par_wall speedup physical;
      if speedup < 2.0 then begin
        Printf.printf "FAIL wall-clock speedup %.2fx < 2x at jobs=%d (%d physical cores >= 4)\n"
          speedup par_jobs physical;
        true
      end
      else false
    end
  in
  if mismatches <> [] || too_slow then exit 1;
  Printf.printf "parallel gate: PASS (bit-identical across jobs%s)\n%!"
    (if gate_speedup then
       Printf.sprintf ", %.1fx speedup at jobs=%d" (seq_wall /. par_wall) par_jobs
     else Printf.sprintf "; %d physical core(s), speedup bar waived" physical)

(* ---------------------------------------------------------- perf gate *)

(* `bench/main.exe perf` is the compiled-trace engine's acceptance gate:

   (1) identity — fig1 and fig2 regenerated with engine [`Seq] and
       [`Trace] at jobs=1 must be bit-identical (structural equality of
       the figure record AND byte equality of the rendered CSV);
   (2) throughput — on a fixed kernel mix across the Banana Pi Rocket
       model and the Large BOOM at scale 4, jobs=1, the trace engine's
       aggregate host MIPS must be >= 2x the checked-in Seq-path
       baseline (results/perf-baseline.json, remeasured on this host
       class with `perf-baseline`), and the block-memoized fast path
       (engine [`Memo]) must be >= 10x that same baseline;
   (3) accuracy — every memo cell's cycle estimate must land within its
       own declared error bound of the exact trace-path cycles.

   All parts write their numbers to BENCH_perf.json.  `perf-identity`
   asserts (1) and (3) — that is the CI smoke, which must hold on any
   runner regardless of how fast it is — but still measures and records
   the throughput numbers in the artifact. *)

(* Compute-, branch-, and cache-resident kernels; the DRAM-chase MM is
   excluded because its runtime is setup-dominated and DRAM-bound, so it
   measures the memory model rather than the replay hot loop. *)
let perf_mix = [ "Cca"; "CS1"; "EI"; "EM5"; "DP1d"; "MD"; "MIM" ]
let perf_platforms = [ Platform.Catalog.banana_pi_sim; Platform.Catalog.boom_large ]
let perf_scale = 4.0
let perf_baseline_path = "results/perf-baseline.json"

type perf_cell = {
  pc_platform : string;
  pc_kernel : string;
  pc_insns : int;
  pc_wall_s : float;  (** measured-phase host wall-clock *)
  pc_cycles : int;  (** estimated total cycles of the measured stream *)
  pc_bound : float;  (** declared error bound in cycles (0 for exact engines) *)
}

let cell_mips c = float_of_int c.pc_insns /. (c.pc_wall_s *. 1e6)

(* Each cell is measured [perf_reps] times and the best (smallest) wall
   is kept: the quantity under test is the hot loop's throughput, and
   min-of-N is the standard way to strip transient host load out of a
   wall-clock benchmark (both the checked-in baseline and the gate are
   measured this way, so the comparison stays fair). *)
let perf_reps = 5

(* Run the mix kernel-major (as the figure grids do) so every platform
   after the first replays a cached trace; host MIPS is retired
   instructions of the measured phase per wall-clock second.

   One untimed warm-up rep runs first so the trace compile (and, for the
   memo engine, the block analysis) lands outside every timed rep: rep 1
   used to carry the cache miss, making best-of-5 really best-of-4. *)
let perf_cells ~engine =
  Simbridge.Runner.trace_cache_clear ();
  List.concat_map
    (fun kname ->
      let k = Workloads.Microbench.find kname in
      List.map
        (fun (cfg : Platform.Config.t) ->
          ignore (Simbridge.Runner.run_kernel_timed ~scale:perf_scale ~engine cfg k);
          let best = ref infinity in
          let insns = ref 0 in
          let cycles = ref 0 in
          let bound = ref 0.0 in
          for _ = 1 to perf_reps do
            let t = Simbridge.Runner.run_kernel_timed ~scale:perf_scale ~engine cfg k in
            if t.Simbridge.Runner.measure_wall_s < !best then
              best := t.Simbridge.Runner.measure_wall_s;
            insns := t.Simbridge.Runner.result.Platform.Soc.instructions;
            cycles := t.Simbridge.Runner.estimate.Sampling.Estimate.est_cycles;
            bound := t.Simbridge.Runner.estimate.Sampling.Estimate.ci95_cycles
          done;
          {
            pc_platform = cfg.Platform.Config.name;
            pc_kernel = kname;
            pc_insns = !insns;
            pc_wall_s = !best;
            pc_cycles = !cycles;
            pc_bound = !bound;
          })
        perf_platforms)
    perf_mix

let aggregate_mips cells =
  let insns = List.fold_left (fun a c -> a + c.pc_insns) 0 cells in
  let wall = List.fold_left (fun a c -> a +. c.pc_wall_s) 0.0 cells in
  if wall > 0.0 then float_of_int insns /. (wall *. 1e6) else 0.0

(* The flat {"key": number, ...} JSON these files hold needs no real
   parser: scan for quoted keys, each followed by a numeric literal. *)
let read_flat_json path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let len = String.length s in
  let pairs = ref [] in
  let i = ref 0 in
  let is_num = function '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false in
  while !i < len do
    if s.[!i] = '"' then begin
      let j = String.index_from s (!i + 1) '"' in
      let key = String.sub s (!i + 1) (j - !i - 1) in
      let k = ref (j + 1) in
      while !k < len && (s.[!k] = ':' || s.[!k] = ' ') do incr k done;
      let e = ref !k in
      while !e < len && is_num s.[!e] do incr e done;
      if !e > !k then pairs := (key, float_of_string (String.sub s !k (!e - !k))) :: !pairs;
      i := max (!e) (j + 1)
    end
    else incr i
  done;
  List.rev !pairs

let write_flat_json path pairs =
  let oc = open_out path in
  output_string oc "{\n";
  let last = List.length pairs - 1 in
  List.iteri
    (fun i (k, v) -> Printf.fprintf oc "  \"%s\": %.4f%s\n" k v (if i = last then "" else ","))
    pairs;
  output_string oc "}\n";
  close_out oc

let perf_identity () =
  let module E = Simbridge.Experiments in
  let check name seq trace =
    [ (name ^ " figure", seq = trace); (name ^ " csv", E.figure_csv seq = E.figure_csv trace) ]
  in
  let checks =
    check "fig1" (E.fig1 ~jobs:1 ~engine:`Seq ()) (E.fig1 ~jobs:1 ~engine:`Trace ())
    @ check "fig2" (E.fig2 ~jobs:1 ~engine:`Seq ()) (E.fig2 ~jobs:1 ~engine:`Trace ())
  in
  let bad = List.filter (fun (_, ok) -> not ok) checks in
  List.iter
    (fun (what, _) -> Printf.printf "FAIL %s: trace replay differs from the Seq path\n" what)
    bad;
  bad = []

let run_perf_baseline () =
  let t0 = Unix.gettimeofday () in
  let cells = perf_cells ~engine:`Seq in
  let pairs =
    List.map (fun c -> (c.pc_platform ^ "/" ^ c.pc_kernel, cell_mips c)) cells
    @ [ ("aggregate_mips", aggregate_mips cells) ]
  in
  write_flat_json perf_baseline_path pairs;
  Printf.printf "wrote %s: aggregate %.2f MIPS (Seq path, scale %.0f, jobs=1, %.1f s)\n%!"
    perf_baseline_path (aggregate_mips cells) perf_scale
    (Unix.gettimeofday () -. t0)

let run_perf_gate ~identity_only () =
  let t0 = Unix.gettimeofday () in
  let id_ok = perf_identity () in
  if id_ok then
    Printf.printf "identity: fig1/fig2 trace replay bit-identical to the Seq path\n%!";
  let cells = perf_cells ~engine:`Trace in
  let agg = aggregate_mips cells in
  let cache = Simbridge.Runner.trace_cache_stats () in
  let lookups = cache.Simbridge.Runner.tc_hits + cache.Simbridge.Runner.tc_misses in
  (* The memoized fast path over the same mix: same compiled traces (the
     cache stays warm), but repeated basic blocks fast-forward through
     the per-run cost table.  Accuracy is gated host-independently —
     every memo cell's cycle estimate must land inside its own declared
     error bound of the exact trace-path cycles — while the 10x speed
     bar, like the 2x trace bar, only applies to the full `perf` gate. *)
  Simbridge.Runner.memo_stats_clear ();
  let mcells = perf_cells ~engine:`Memo in
  let mstats = Simbridge.Runner.memo_stats () in
  let memo_agg = aggregate_mips mcells in
  let memo_hit_rate =
    if mstats.Simbridge.Runner.m_instances > 0 then
      float_of_int mstats.Simbridge.Runner.m_hits
      /. float_of_int mstats.Simbridge.Runner.m_instances
    else 0.0
  in
  let pairs = List.combine cells mcells in
  let accuracy =
    List.map
      (fun (tc, mc) ->
        let err = abs (mc.pc_cycles - tc.pc_cycles) in
        (tc, mc, err, float_of_int err <= mc.pc_bound))
      pairs
  in
  let acc_ok = List.for_all (fun (_, _, _, ok) -> ok) accuracy in
  Printf.printf "%-16s %-6s %10s %9s %9s %7s %11s %11s\n" "platform" "kernel" "insns" "traceMIPS"
    "memoMIPS" "gain" "cycle err" "bound";
  List.iter
    (fun (tc, mc, err, ok) ->
      Printf.printf "%-16s %-6s %10d %9.1f %9.1f %6.1fx %11d %10.0f%s\n" tc.pc_platform
        tc.pc_kernel tc.pc_insns (cell_mips tc) (cell_mips mc)
        (cell_mips mc /. cell_mips tc)
        err mc.pc_bound
        (if ok then "" else "  EXCEEDED"))
    accuracy;
  Printf.printf
    "trace engine aggregate: %.1f MIPS; trace cache %d/%d hits (%.0f%% hit rate, %d evictions)\n%!"
    agg cache.Simbridge.Runner.tc_hits lookups
    (if lookups > 0 then 100.0 *. float_of_int cache.Simbridge.Runner.tc_hits /. float_of_int lookups
     else 0.0)
    cache.Simbridge.Runner.tc_evictions;
  Printf.printf "memo engine aggregate : %.1f MIPS; %d/%d block instances memoized (%.0f%% hit rate)\n%!"
    memo_agg mstats.Simbridge.Runner.m_hits mstats.Simbridge.Runner.m_instances
    (100.0 *. memo_hit_rate);
  if acc_ok then
    Printf.printf "accuracy: every memo cell within its declared bound of the exact cycles\n%!"
  else Printf.printf "FAIL accuracy: memo cell(s) outside their declared error bound (see table)\n%!";
  let baseline = if Sys.file_exists perf_baseline_path then read_flat_json perf_baseline_path else [] in
  let base_agg = List.assoc_opt "aggregate_mips" baseline in
  let speedup = match base_agg with Some b when b > 0.0 -> agg /. b | _ -> 0.0 in
  let memo_speedup = match base_agg with Some b when b > 0.0 -> memo_agg /. b | _ -> 0.0 in
  (match base_agg with
  | Some b ->
    Printf.printf "baseline (Seq path, %s): %.1f MIPS -> trace %.2fx, memo %.2fx\n%!"
      perf_baseline_path b speedup memo_speedup
  | None -> Printf.printf "no baseline at %s (run `perf-baseline` to measure one)\n%!" perf_baseline_path);
  write_flat_json "BENCH_perf.json"
    (List.map (fun c -> ("trace/" ^ c.pc_platform ^ "/" ^ c.pc_kernel, cell_mips c)) cells
    @ List.map (fun c -> ("memo/" ^ c.pc_platform ^ "/" ^ c.pc_kernel, cell_mips c)) mcells
    @ [
        ("aggregate_mips", agg);
        ("memo_aggregate_mips", memo_agg);
        ("baseline_aggregate_mips", Option.value base_agg ~default:0.0);
        ("speedup_x", speedup);
        ("memo_speedup_x", memo_speedup);
        ("memo_hit_rate", memo_hit_rate);
        ("identity_ok", if id_ok then 1.0 else 0.0);
        ("accuracy_ok", if acc_ok then 1.0 else 0.0);
        ("cache_hits", float_of_int cache.Simbridge.Runner.tc_hits);
        ("cache_misses", float_of_int cache.Simbridge.Runner.tc_misses);
        ("wall_s", Unix.gettimeofday () -. t0);
      ]);
  let gate_ok =
    id_ok && acc_ok && (identity_only || (speedup >= 2.0 && memo_speedup >= 10.0))
  in
  (* The gate also files a ledger run report so CI can `history record`
     bench trajectories alongside figure runs. *)
  let module J = Validate.Jsonx in
  let report =
    Ledger.Run_report.build
      ~wall_s:(Unix.gettimeofday () -. t0)
      ~exit_status:(if gate_ok then 0 else 1)
      ~command:(if identity_only then "bench perf-identity" else "bench perf")
      ~config:[ ("scale", J.Num perf_scale); ("jobs", J.Num 1.0) ]
        (* aggregate_mips is what `history check` trends and gates
           (same command, same host): the fast path is this gate's
           headline, so that is the guarded number. *)
      ~metrics:
        [
          ("aggregate_mips", J.Num memo_agg);
          ("trace_aggregate_mips", J.Num agg);
          ("memo_hit_rate", J.Num memo_hit_rate);
        ]
      ~telemetry:Telemetry.Registry.disabled
      ~extra:
        [
          ( "perf",
            J.Obj
              [
                ("aggregate_mips", J.Num agg);
                ("memo_aggregate_mips", J.Num memo_agg);
                ("baseline_aggregate_mips", J.Num (Option.value base_agg ~default:0.0));
                ("speedup_x", J.Num speedup);
                ("memo_speedup_x", J.Num memo_speedup);
                ("memo_hit_rate", J.Num memo_hit_rate);
                ("identity_ok", J.Bool id_ok);
                ("accuracy_ok", J.Bool acc_ok);
                ("cache_hits", J.Num (float_of_int cache.Simbridge.Runner.tc_hits));
                ("cache_misses", J.Num (float_of_int cache.Simbridge.Runner.tc_misses));
              ] );
        ]
      ()
  in
  Ledger.Run_report.write ~path:"run-report.json" report;
  Printf.printf "run report    : run-report.json (%s)\n%!" (Ledger.Run_report.summary_line report);
  if identity_only then begin
    if (not id_ok) || not acc_ok then exit 1;
    Printf.printf
      "perf identity: PASS (bit-identical figures, memo within bounds; MIPS recorded in \
       BENCH_perf.json, no speed bar)\n%!"
  end
  else begin
    if base_agg = None then begin
      Printf.printf "FAIL perf: missing %s\n" perf_baseline_path;
      exit 1
    end;
    if speedup < 2.0 then
      Printf.printf "FAIL perf: trace engine %.1f MIPS is %.2fx baseline (< 2x)\n" agg speedup;
    if memo_speedup < 10.0 then
      Printf.printf "FAIL perf: memo fast path %.1f MIPS is %.2fx baseline (< 10x)\n" memo_agg
        memo_speedup;
    if not gate_ok then exit 1;
    Printf.printf
      "perf gate: PASS (bit-identical figures, trace %.1f MIPS = %.2fx >= 2x, memo %.1f MIPS = \
       %.2fx >= 10x Seq baseline, within declared bounds)\n%!"
      agg speedup memo_agg memo_speedup
  end

(* --------------------------------------------------------------- serve *)

(* The serve load-test gate (ISSUE 7): stand the daemon up on a Unix
   socket, fire >= 1000 mixed fig1-7 (plus grid-cell) queries from 4
   concurrent pipelining clients, and require every payload to be
   byte-identical to the sequential jobs=1 oracle — then require the
   cross-request trace cache to have actually fired (fig2 replays fig1's
   compiled kernel streams).  Numbers land in BENCH_serve.json. *)

let serve_mix : Serve.Protocol.query list =
  let fig f s = Serve.Protocol.Figure { fmt = `Csv; figure = f; scale = s } in
  let cell p k s = Serve.Protocol.Cell { platform = p; kernel = k; scale = s } in
  [
    fig "fig1" 0.1;
    fig "fig2" 0.1;
    cell "banana-pi-sim" "ED1" 0.1;
    fig "fig5" 0.1;
    fig "fig1" 0.15;
    fig "fig3a" 0.02;
    fig "fig6" 0.1;
    cell "milkv-sim" "MD" 0.1;
    fig "fig4a" 0.02;
    fig "fig7" 0.1;
  ]

let serve_clients = 4
let serve_queries_per_client = 250
let serve_pipeline_depth = 8

(* Each client walks the mix from its own offset, so at any instant the
   four connections overlap on some keys (exercising batch coalescing)
   and disagree on others (exercising the response cache). *)
let serve_query ~ci i = List.nth serve_mix ((i + (ci * 3)) mod List.length serve_mix)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5))))

let serve_client ~addr ~oracle ~ci ~latencies ~verified ~mismatches () =
  try
    let c = Serve.Client.connect addr in
    let inflight = Queue.create () in
    let fail what =
      Atomic.incr mismatches;
      Printf.printf "FAIL serve: client %d: %s\n%!" ci what
    in
    let recv_one () =
      let idx, t_send = Queue.pop inflight in
      match Serve.Client.recv c with
      | Error msg -> fail (Printf.sprintf "recv #%d: %s" idx msg)
      | Ok resp -> (
        latencies.(ci).(idx) <- Unix.gettimeofday () -. t_send;
        let q = serve_query ~ci idx in
        let expect_id = Printf.sprintf "c%d-%d" ci idx in
        if resp.Serve.Protocol.rs_id <> expect_id then
          fail
            (Printf.sprintf "response order: got id %S, want %S" resp.Serve.Protocol.rs_id
               expect_id)
        else
          match resp.Serve.Protocol.rs_result with
          | Error msg -> fail (Printf.sprintf "#%d server error: %s" idx msg)
          | Ok (payload, _report) ->
            if payload = Hashtbl.find oracle (Serve.Protocol.query_key q) then
              Atomic.incr verified
            else fail (Printf.sprintf "#%d (%s) payload differs from sequential oracle" idx
                         (Serve.Protocol.query_key q)))
    in
    for i = 0 to serve_queries_per_client - 1 do
      if Queue.length inflight >= serve_pipeline_depth then recv_one ();
      Serve.Client.send c
        Serve.Protocol.
          { rq_id = Printf.sprintf "c%d-%d" ci i; rq_op = Run (serve_query ~ci i) };
      Queue.push (i, Unix.gettimeofday ()) inflight
    done;
    while not (Queue.is_empty inflight) do
      recv_one ()
    done;
    Serve.Client.close c
  with exn ->
    Atomic.incr mismatches;
    Printf.printf "FAIL serve: client %d died: %s\n%!" ci (Printexc.to_string exn)

let stat_float stats path =
  let module J = Validate.Jsonx in
  let rec walk j = function
    | [] -> J.to_float j
    | key :: rest -> ( match J.member key j with Some v -> walk v rest | None -> None)
  in
  Option.value (walk stats path) ~default:0.0

let run_serve_gate () =
  let module P = Serve.Protocol in
  let total = serve_clients * serve_queries_per_client in
  let uniq =
    List.filter
      (let seen = Hashtbl.create 16 in
       fun q ->
         let key = P.query_key q in
         if Hashtbl.mem seen key then false else (Hashtbl.add seen key (); true))
      serve_mix
  in
  Printf.printf "serve gate: %d queries (%d unique) from %d clients, pipeline depth %d\n%!" total
    (List.length uniq) serve_clients serve_pipeline_depth;
  let t0 = Unix.gettimeofday () in
  let oracle = Hashtbl.create 16 in
  List.iter
    (fun q ->
      match Serve.Engine.oracle q with
      | Ok payload -> Hashtbl.replace oracle (P.query_key q) payload
      | Error msg ->
        Printf.printf "FAIL serve: oracle %s: %s\n" (P.query_key q) msg;
        exit 1)
    uniq;
  let oracle_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "oracle: %d sequential payloads in %.1f s\n%!" (List.length uniq) oracle_wall;
  (* the served run must start cold so every trace-cache hit it reports
     is a genuine cross-request hit, not oracle leftovers *)
  Simbridge.Runner.trace_cache_clear ();
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "simbridge-bench-%d.sock" (Unix.getpid ()))
  in
  (* trace_capacity 0: live counters and phases (for aggregate MIPS),
     no event-ring memory for a 1000-query run *)
  let reg = Telemetry.Registry.create ~trace_capacity:0 () in
  let srv = Serve.Server.create ~response_cache_capacity:64 ~telemetry:reg (`Unix sock) in
  let srv_thread = Thread.create Serve.Server.run srv in
  let t1 = Unix.gettimeofday () in
  let latencies = Array.init serve_clients (fun _ -> Array.make serve_queries_per_client 0.0) in
  let verified = Atomic.make 0 and mismatches = Atomic.make 0 in
  let clients =
    List.init serve_clients (fun ci ->
        Thread.create
          (serve_client ~addr:(`Unix sock) ~oracle ~ci ~latencies ~verified ~mismatches)
          ())
  in
  List.iter Thread.join clients;
  let serve_wall = Unix.gettimeofday () -. t1 in
  let stats = Serve.Engine.stats_json (Serve.Server.engine srv) in
  Serve.Server.stop srv;
  Thread.join srv_thread;
  let tc = Simbridge.Runner.trace_cache_stats () in
  let tc_lookups = tc.Simbridge.Runner.tc_hits + tc.Simbridge.Runner.tc_misses in
  let all_lat = Array.concat (Array.to_list latencies) in
  Array.sort compare all_lat;
  let p50 = percentile all_lat 0.50 and p99 = percentile all_lat 0.99 in
  let qps = if serve_wall > 0.0 then float_of_int total /. serve_wall else 0.0 in
  let mips = Option.value (Ledger.Run_report.aggregate_mips reg) ~default:0.0 in
  let computed = stat_float stats [ "computed" ] in
  let coalesced = stat_float stats [ "coalesced" ] in
  let cached = stat_float stats [ "cached" ] in
  let cache_hit_rate = (coalesced +. cached) /. float_of_int total in
  let tc_hit_rate =
    if tc_lookups > 0 then float_of_int tc.Simbridge.Runner.tc_hits /. float_of_int tc_lookups
    else 0.0
  in
  Printf.printf
    "served %d queries in %.1f s (%.1f q/s): %.0f computed, %.0f coalesced, %.0f cached; \
     latency p50 %.0f ms / p99 %.0f ms; aggregate %.1f MIPS\n\
     trace cache (cold start): %d hits / %d lookups (%.0f%% cross-request hit rate)\n%!"
    total serve_wall qps computed coalesced cached (p50 *. 1e3) (p99 *. 1e3) mips
    tc.Simbridge.Runner.tc_hits tc_lookups (100.0 *. tc_hit_rate);
  write_flat_json "BENCH_serve.json"
    [
      ("queries", float_of_int total);
      ("clients", float_of_int serve_clients);
      ("unique_keys", float_of_int (List.length uniq));
      ("verified", float_of_int (Atomic.get verified));
      ("mismatches", float_of_int (Atomic.get mismatches));
      ("wall_s", serve_wall);
      ("oracle_wall_s", oracle_wall);
      ("qps", qps);
      ("p50_ms", p50 *. 1e3);
      ("p99_ms", p99 *. 1e3);
      ("aggregate_mips", mips);
      ("computed", computed);
      ("coalesced", coalesced);
      ("cached", cached);
      ("response_cache_hit_rate", cache_hit_rate);
      ("trace_cache_hits", float_of_int tc.Simbridge.Runner.tc_hits);
      ("trace_cache_misses", float_of_int tc.Simbridge.Runner.tc_misses);
      ("trace_cache_hit_rate", tc_hit_rate);
    ];
  let ok = Atomic.get mismatches = 0 && Atomic.get verified = total in
  let tc_ok = tc.Simbridge.Runner.tc_hits > 0 in
  let module J = Validate.Jsonx in
  let report =
    Ledger.Run_report.build
      ~wall_s:(Unix.gettimeofday () -. t0)
      ~exit_status:(if ok && tc_ok then 0 else 1)
      ~command:"bench serve" ~config:[ ("clients", J.Num (float_of_int serve_clients)) ]
      ~telemetry:reg
      ~extra:
        [
          ( "serve_bench",
            J.Obj
              [
                ("queries", J.Num (float_of_int total));
                ("verified", J.Num (float_of_int (Atomic.get verified)));
                ("qps", J.Num qps);
                ("p50_ms", J.Num (p50 *. 1e3));
                ("p99_ms", J.Num (p99 *. 1e3));
                ("aggregate_mips", J.Num mips);
                ("trace_cache_hit_rate", J.Num tc_hit_rate);
              ] );
          ("serve", stats);
        ]
      ()
  in
  Ledger.Run_report.write ~path:"run-report.json" report;
  Printf.printf "run report    : run-report.json (%s)\n%!" (Ledger.Run_report.summary_line report);
  if not ok then begin
    Printf.printf "FAIL serve: %d/%d payloads verified, %d mismatches\n" (Atomic.get verified)
      total (Atomic.get mismatches);
    exit 1
  end;
  if not tc_ok then begin
    Printf.printf "FAIL serve: no cross-request trace-cache hits (hit rate must be > 0)\n";
    exit 1
  end;
  Printf.printf
    "serve gate: PASS (%d/%d byte-identical to the sequential oracle at any interleaving, \
     trace-cache hit rate %.0f%%)\n%!"
    (Atomic.get verified) total (100.0 *. tc_hit_rate)

(* ----------------------------------------------------------- bechamel *)

let staged = Bechamel.Staged.stage

(* One Test.make per table/figure, each timing a *representative slice*
   of that experiment's machinery (one kernel or app comparison at small
   scale) so Bechamel can iterate within its quota. *)
let figure_tests =
  let t name f = Bechamel.Test.make ~name (staged f) in
  let module Cat = Platform.Catalog in
  let krel name = 
    ignore
      (Simbridge.Runner.kernel_relative ~scale:0.05 ~sim:Cat.banana_pi_sim ~hw:Cat.banana_pi_hw
         (Workloads.Microbench.find name))
  in
  let arel ?(scale = 0.15) app ~sim ~hw =
    ignore (Simbridge.Runner.app_relative ~scale ~ranks:1 ~sim ~hw app)
  in
  [
    t "table1" (fun () -> ignore (Simbridge.Experiments.table1 ()));
    t "table2" (fun () -> ignore (Simbridge.Experiments.table2 ()));
    t "table3" (fun () -> ignore (Simbridge.Experiments.table3 ()));
    t "table4" (fun () -> ignore (Simbridge.Experiments.table4 ()));
    t "table5" (fun () -> ignore (Simbridge.Experiments.table5 ()));
    t "fig1-slice(Cca)" (fun () -> krel "Cca");
    t "fig2-slice(EI)" (fun () ->
        ignore
          (Simbridge.Runner.kernel_relative ~scale:0.05 ~sim:Cat.milkv_sim ~hw:Cat.milkv_hw
             (Workloads.Microbench.find "EI")));
    t "fig3-slice(EP)" (fun () -> arel Workloads.Npb.ep ~sim:Cat.banana_pi_sim ~hw:Cat.banana_pi_hw);
    t "fig4-slice(CG)" (fun () -> arel Workloads.Npb.cg ~sim:Cat.milkv_sim ~hw:Cat.milkv_hw);
    t "fig5-slice(UME)" (fun () ->
        arel ~scale:0.3 Workloads.Ume.app ~sim:Cat.banana_pi_sim ~hw:Cat.banana_pi_hw);
    t "fig6-slice(LJ)" (fun () ->
        arel ~scale:0.2 Workloads.Lammps.lj ~sim:Cat.milkv_sim ~hw:Cat.milkv_hw);
    t "fig7-slice(Chain)" (fun () ->
        arel ~scale:0.2 Workloads.Lammps.chain ~sim:Cat.banana_pi_sim ~hw:Cat.banana_pi_hw);
  ]

(* Component micro-benchmarks: the building blocks' own costs. *)
let component_tests =
  let t name f = Bechamel.Test.make ~name (staged f) in
  let rng = Util.Rng.create 1 in
  let predictor =
    Branch.Predictor.create
      (Branch.Predictor.Tage { base_entries = 512; tables = 4; table_entries = 256; max_history = 32 })
  in
  let cache = Cache.create (Cache.config ~name:"bench" ~sets:64 ~ways:8 ()) in
  let next : Cache.next_level = fun ~cycle ~addr:_ ~write:_ -> cycle + 50 in
  let dram = Dram.create (Dram.ddr3_2000_fr_fcfs ~channels:1) in
  let bus = Interconnect.Bus.create (Interconnect.Bus.config ~name:"b" ~width_bits:128 ()) in
  let counter = ref 0 in
  let alu_insn = Isa.Insn.make ~dst:5 ~src1:5 ~pc:0 Isa.Insn.Int_alu in
  let inorder = Uarch.Inorder.create (Uarch.Inorder.rocket ()) (Uarch.Memsys.ideal ~latency:2) in
  let ooo = Uarch.Ooo.create (Uarch.Ooo.boom_large ()) (Uarch.Memsys.ideal ~latency:2) in
  [
    t "rng/bits64" (fun () -> ignore (Util.Rng.bits64 rng));
    t "predictor/tage-update" (fun () ->
        incr counter;
        ignore (Branch.Predictor.predict predictor ~pc:0x400);
        Branch.Predictor.update predictor ~pc:0x400 ~taken:(!counter land 3 <> 0));
    t "cache/hit" (fun () ->
        incr counter;
        ignore (Cache.access cache ~next ~cycle:!counter ~addr:(!counter land 0x1FF8) ~write:false));
    t "dram/request" (fun () ->
        incr counter;
        ignore (Dram.request dram ~time_ns:(float_of_int !counter) ~addr:(!counter * 64) ~write:false));
    t "bus/transfer" (fun () ->
        incr counter;
        ignore (Interconnect.Bus.transfer bus ~cycle:!counter ~bytes:64));
    t "uarch/inorder-feed" (fun () -> Uarch.Inorder.feed inorder alu_insn);
    t "uarch/ooo-feed" (fun () -> Uarch.Ooo.feed ooo alu_insn);
    t "workload/kernel-stream-100" (fun () ->
        ignore
          (Prog.Gen.length
             (Prog.Gen.take 100
                ((Workloads.Microbench.find "Cca").Workloads.Workload.stream ~scale:0.02))));
  ]

let run_bechamel () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let run_group name tests =
    Printf.printf "--- bechamel: %s ---\n%!" name;
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    let rows =
      Hashtbl.fold
        (fun test_name ols acc ->
          let ns = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan in
          (test_name, ns) :: acc)
        results []
      |> List.sort compare
    in
    List.iter (fun (test_name, ns) -> Printf.printf "  %-42s %12.1f ns/run\n" test_name ns) rows;
    print_newline ()
  in
  run_group "components" component_tests;
  run_group "figure-drivers" figure_tests

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
    List.iter (fun (id, _, _) -> run_experiment id) Simbridge.Experiments.all;
    run_bechamel ()
  | [ _; "bechamel" ] -> run_bechamel ()
  | [ _; "sampling" ] -> run_sampling_gate ()
  | [ _; "parallel" ] -> run_parallel_gate ()
  | [ _; "perf" ] -> run_perf_gate ~identity_only:false ()
  | [ _; "perf-identity" ] -> run_perf_gate ~identity_only:true ()
  | [ _; "perf-baseline" ] -> run_perf_baseline ()
  | [ _; "serve" ] -> run_serve_gate ()
  | [ _; id ] -> run_experiment id
  | _ ->
    prerr_endline
      "usage: main.exe [experiment-id | bechamel | sampling | parallel | perf | perf-identity | \
       perf-baseline | serve]";
    exit 1
