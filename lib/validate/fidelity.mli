(** The fidelity-regression engine: recompute figures through the
    {!Simbridge.Runner} grid drivers, compare every cell against the
    golden CSVs ({!Verdict}), evaluate the transcribed paper expectations
    ({!Expectations}), and emit a machine-readable JSON report plus a
    human diff table.

    This is the correctness backstop every perf PR runs against: the
    engines may be rewritten freely (sampling, domains, trace replay),
    but [simbridge validate] must keep reporting [Exact]/[Within_band]
    for every fig1-fig7 cell, and [--update-golden] is the single
    sanctioned way to refresh [results/*.csv]. *)

type cell_check = {
  cc_x : string;
  cc_series : string;
  cc_verdict : Verdict.t;
}

type band_check = {
  bc_x : string;
  bc_series : string;
  bc_value : float;
  bc_lo : float;
  bc_hi : float;
  bc_ok : bool;
  bc_prov : string;
}

type shape_check = {
  sc_desc : string;
  sc_ok : bool;
  sc_detail : string;  (** offending cells / computed aggregates *)
  sc_prov : string;
}

type figure_report = {
  fr_id : string;
  fr_golden : string;  (** golden CSV path checked against *)
  fr_updated : bool;  (** golden file rewritten this run *)
  fr_structural : string list;  (** missing/extra rows or series *)
  fr_cells : cell_check list;
  fr_bands : band_check list;
  fr_shapes : shape_check list;
}

type totals = {
  t_cells : int;
  t_exact : int;
  t_within : int;
  t_drifted : int;
  t_bands : int;
  t_band_misses : int;
  t_shapes : int;
  t_shape_misses : int;
  t_structural : int;
}

type report = {
  r_figures : figure_report list;
  r_totals : totals;
}

val known_ids : string list
(** [fig1 .. fig7] in check order (fig3/fig4 split into their a/b
    panels, matching the golden CSV granularity). *)

val expand_spec : string -> (string list, string) result
(** Parse the CLI's [--figures] spec: a comma list of figure numbers
    ([1], [3]) or ids ([fig4b]); numbers and bare [fig3]/[fig4] expand
    to both panels; ["all"] (or [""]) is every known figure.  The result
    preserves check order and dedupes. *)

val generate : ?jobs:int -> string list -> (string * Simbridge.Experiments.figure) list
(** Recompute the listed figures at scale 1 (the golden scale).  Panels
    sharing a driver (fig3a/fig3b, fig4a/fig4b) are computed in one grid
    submission. *)

val check_figure :
  ?telemetry:Telemetry.Registry.t ->
  expectations:Expectations.t ->
  golden_path:string ->
  updated:bool ->
  Simbridge.Experiments.figure ->
  figure_report
(** Verdict every cell of the (already recomputed) figure against the
    golden CSV at [golden_path], then evaluate the figure's expectation
    bands and shapes.  A missing or unreadable golden file is a
    structural failure.  Telemetry counters ([validate.cells.*],
    [validate.bands.*], [validate.shapes.*], [validate.structural])
    record what was checked. *)

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?jobs:int ->
  ?update_golden:bool ->
  results_dir:string ->
  expectations:Expectations.t ->
  string list ->
  report
(** Recompute and check the listed figure ids.  With [update_golden]
    (default false) each recomputed figure is first written back to its
    golden CSV — making the refresh an explicit, reviewable diff — and
    then checked against what was just written (so a successful update
    always reports [Exact]). *)

val ok : ?strict:bool -> report -> bool
(** Gate predicate: no drifted cells, band misses, shape misses, or
    structural mismatches.  [strict] additionally rejects [Within_band]
    cells — the simulator is deterministic, so a healthy tree is fully
    [Exact] and CI runs the strict form. *)

val render : ?strict:bool -> report -> string
(** Human summary: one line per figure plus a diff table of every
    non-exact cell, missed band, and violated shape. *)

val to_json : ?strict:bool -> report -> Jsonx.t
(** The machine-readable fidelity report (schema
    ["simbridge-validate/1"]), uploaded as a CI artifact. *)
