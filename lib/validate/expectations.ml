type band = {
  bx : string option;
  bseries : string option;
  blo : float;
  bhi : float;
  bprov : string;
}

type shape =
  | All_below of { series : string list; threshold : float; except : string list }
  | Category_geomean of { series : string; category : string; glo : float; ghi : float }
  | Series_leq of { lo_series : string; hi_series : string; tol : float }
  | Closest_to_hw of { winner : string; rivals : string list }

type shape_spec = { shape : shape; sprov : string }

type fig_expect = {
  fig_id : string;
  golden : string;
  fig_band : float option;
  bands : band list;
  shapes : shape_spec list;
}

type t = {
  version : int;
  default_band : float;
  figures : fig_expect list;
}

(* ------------------------------------------------------------- decoding *)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let str_list ctx j =
  match Jsonx.to_list j with
  | None -> Error (ctx ^ ": expected an array of strings")
  | Some items ->
    map_result
      (fun item ->
        match Jsonx.to_str item with
        | Some s -> Ok s
        | None -> Error (ctx ^ ": expected an array of strings"))
      items

let req_float ctx key j =
  match Jsonx.get_float key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing numeric %S" ctx key)

let req_str ctx key j =
  match Option.bind (Jsonx.member key j) Jsonx.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: missing string %S" ctx key)

let opt_str key j = Option.bind (Jsonx.member key j) Jsonx.to_str

let band_of_json ctx j =
  let* blo = req_float ctx "min" j in
  let* bhi = req_float ctx "max" j in
  if bhi < blo then Error (Printf.sprintf "%s: max < min" ctx)
  else
    Ok
      {
        bx = opt_str "x" j;
        bseries = opt_str "series" j;
        blo;
        bhi;
        bprov = Jsonx.get_str "provenance" j;
      }

let shape_of_json ctx j =
  let* kind = req_str ctx "kind" j in
  let* shape =
    match kind with
    | "all-below" ->
      let* series =
        match Jsonx.member "series" j with
        | Some s -> str_list (ctx ^ ".series") s
        | None -> Error (ctx ^ ": all-below needs \"series\"")
      in
      let* threshold = req_float ctx "threshold" j in
      let* except =
        match Jsonx.member "except" j with
        | None -> Ok []
        | Some e -> str_list (ctx ^ ".except") e
      in
      Ok (All_below { series; threshold; except })
    | "category-geomean" ->
      let* series = req_str ctx "series" j in
      let* category = req_str ctx "category" j in
      let* glo = req_float ctx "min" j in
      let* ghi = req_float ctx "max" j in
      Ok (Category_geomean { series; category; glo; ghi })
    | "series-leq" ->
      let* lo_series = req_str ctx "lo" j in
      let* hi_series = req_str ctx "hi" j in
      let tol = Option.value (Jsonx.get_float "tolerance" j) ~default:0.0 in
      Ok (Series_leq { lo_series; hi_series; tol })
    | "closest-to-hw" ->
      let* winner = req_str ctx "winner" j in
      let* rivals =
        match Jsonx.member "rivals" j with
        | Some r -> str_list (ctx ^ ".rivals") r
        | None -> Error (ctx ^ ": closest-to-hw needs \"rivals\"")
      in
      Ok (Closest_to_hw { winner; rivals })
    | k -> Error (Printf.sprintf "%s: unknown shape kind %S" ctx k)
  in
  Ok { shape; sprov = Jsonx.get_str "provenance" j }

let figure_of_json j =
  let* fig_id = req_str "figure" "id" j in
  let ctx = "figure " ^ fig_id in
  let* bands =
    match Jsonx.member "bands" j with
    | None -> Ok []
    | Some b -> (
      match Jsonx.to_list b with
      | None -> Error (ctx ^ ": \"bands\" must be an array")
      | Some items ->
        map_result (fun item -> band_of_json (ctx ^ " band") item) items)
  in
  let* shapes =
    match Jsonx.member "shapes" j with
    | None -> Ok []
    | Some s -> (
      match Jsonx.to_list s with
      | None -> Error (ctx ^ ": \"shapes\" must be an array")
      | Some items ->
        map_result (fun item -> shape_of_json (ctx ^ " shape") item) items)
  in
  Ok
    {
      fig_id;
      golden = Jsonx.get_str ~default:(fig_id ^ ".csv") "golden" j;
      fig_band = Jsonx.get_float "band" j;
      bands;
      shapes;
    }

let of_json j =
  let version = Option.value (Option.bind (Jsonx.member "version" j) Jsonx.to_int) ~default:1 in
  let default_band = Option.value (Jsonx.get_float "default_band" j) ~default:0.02 in
  if default_band < 0.0 then Error "default_band must be >= 0"
  else
    let* figures =
      match Jsonx.member "figures" j with
      | None -> Error "missing \"figures\""
      | Some f -> (
        match Jsonx.to_list f with
        | None -> Error "\"figures\" must be an array"
        | Some items -> map_result figure_of_json items)
    in
    let ids = List.map (fun f -> f.fig_id) figures in
    let dup = List.find_opt (fun id -> List.length (List.filter (( = ) id) ids) > 1) ids in
    match dup with
    | Some id -> Error (Printf.sprintf "duplicate figure entry %S" id)
    | None -> Ok { version; default_band; figures }

let load path =
  let* j = Jsonx.parse_file path in
  of_json j

let find t id = List.find_opt (fun f -> f.fig_id = id) t.figures

let golden_file t id =
  match find t id with Some f -> f.golden | None -> id ^ ".csv"

let cell_band t fe =
  match fe with
  | Some { fig_band = Some b; _ } -> b
  | _ -> t.default_band

let describe_shape = function
  | All_below { series; threshold; except } ->
    Printf.sprintf "all-below %.3g: %s%s" threshold (String.concat ", " series)
      (if except = [] then "" else Printf.sprintf " (except %s)" (String.concat ", " except))
  | Category_geomean { series; category; glo; ghi } ->
    Printf.sprintf "category-geomean %s/%s in [%.3g, %.3g]" series category glo ghi
  | Series_leq { lo_series; hi_series; tol } ->
    Printf.sprintf "series-leq: %s <= %s (tol %.3g)" lo_series hi_series tol
  | Closest_to_hw { winner; rivals } ->
    Printf.sprintf "closest-to-hw: %s vs %s" winner (String.concat ", " rivals)
