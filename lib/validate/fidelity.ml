module E = Simbridge.Experiments
module W = Workloads.Workload

type cell_check = {
  cc_x : string;
  cc_series : string;
  cc_verdict : Verdict.t;
}

type band_check = {
  bc_x : string;
  bc_series : string;
  bc_value : float;
  bc_lo : float;
  bc_hi : float;
  bc_ok : bool;
  bc_prov : string;
}

type shape_check = {
  sc_desc : string;
  sc_ok : bool;
  sc_detail : string;
  sc_prov : string;
}

type figure_report = {
  fr_id : string;
  fr_golden : string;
  fr_updated : bool;
  fr_structural : string list;
  fr_cells : cell_check list;
  fr_bands : band_check list;
  fr_shapes : shape_check list;
}

type totals = {
  t_cells : int;
  t_exact : int;
  t_within : int;
  t_drifted : int;
  t_bands : int;
  t_band_misses : int;
  t_shapes : int;
  t_shape_misses : int;
  t_structural : int;
}

type report = {
  r_figures : figure_report list;
  r_totals : totals;
}

(* ------------------------------------------------------- figure registry *)

let known_ids = [ "fig1"; "fig2"; "fig3a"; "fig3b"; "fig4a"; "fig4b"; "fig5"; "fig6"; "fig7" ]

let expand_spec spec =
  let spec = String.trim spec in
  if spec = "" || spec = "all" then Ok known_ids
  else
    let expand tok =
      match tok with
      | "1" | "fig1" -> Ok [ "fig1" ]
      | "2" | "fig2" -> Ok [ "fig2" ]
      | "3" | "fig3" -> Ok [ "fig3a"; "fig3b" ]
      | "4" | "fig4" -> Ok [ "fig4a"; "fig4b" ]
      | "5" | "fig5" -> Ok [ "fig5" ]
      | "6" | "fig6" -> Ok [ "fig6" ]
      | "7" | "fig7" -> Ok [ "fig7" ]
      | t when List.mem t known_ids -> Ok [ t ]
      | t ->
        Error
          (Printf.sprintf "unknown figure %S (expected 1-7, figN, or one of: %s)" t
             (String.concat ", " known_ids))
    in
    let rec collect acc = function
      | [] -> Ok acc
      | tok :: rest -> (
        match expand tok with
        | Error _ as e -> e
        | Ok ids -> collect (acc @ ids) rest)
    in
    let toks =
      String.split_on_char ',' spec |> List.map String.trim |> List.filter (fun t -> t <> "")
    in
    if toks = [] then Error "empty --figures spec"
    else
      Result.map
        (fun wanted -> List.filter (fun id -> List.mem id wanted) known_ids)
        (collect [] toks)

(* Panels sharing a driver (fig3a/b, fig4a/b) come from one grid run. *)
let generate ?jobs ids =
  let fig3 = lazy (E.fig3 ?jobs ()) in
  let fig4 = lazy (E.fig4 ?jobs ()) in
  let panel l i = List.nth (Lazy.force l) i in
  List.map
    (fun id ->
      let fig =
        match id with
        | "fig1" -> E.fig1 ?jobs ()
        | "fig2" -> E.fig2 ?jobs ()
        | "fig3a" -> panel fig3 0
        | "fig3b" -> panel fig3 1
        | "fig4a" -> panel fig4 0
        | "fig4b" -> panel fig4 1
        | "fig5" -> E.fig5 ?jobs ()
        | "fig6" -> E.fig6 ?jobs ()
        | "fig7" -> E.fig7 ?jobs ()
        | id -> invalid_arg ("Fidelity.generate: unknown figure " ^ id)
      in
      (id, fig))
    ids

(* ------------------------------------------------------- figure access *)

let fig_series_labels (fig : E.figure) = List.map (fun (s : E.series) -> s.label) fig.series

let fig_rows (fig : E.figure) =
  match fig.series with [] -> [] | s :: _ -> List.map fst s.E.points

let fig_value (fig : E.figure) ~x ~series =
  match List.find_opt (fun (s : E.series) -> s.E.label = series) fig.series with
  | None -> None
  | Some s -> List.assoc_opt x s.E.points

let fig_points (fig : E.figure) ~series =
  match List.find_opt (fun (s : E.series) -> s.E.label = series) fig.series with
  | None -> None
  | Some s -> Some s.E.points

(* Kernel name -> Table 1 category name, for category-geomean shapes. *)
let kernel_category =
  lazy
    (List.map
       (fun (k : W.kernel) -> (k.W.name, W.category_name k.W.category))
       Workloads.Microbench.all)

let geomean vs = Util.Stats.geomean (Array.of_list vs)

(* --------------------------------------------------------- shape checks *)

let check_shape (fig : E.figure) ({ shape; sprov } : Expectations.shape_spec) =
  let desc = Expectations.describe_shape shape in
  let result ok detail = { sc_desc = desc; sc_ok = ok; sc_detail = detail; sc_prov = sprov } in
  match shape with
  | Expectations.All_below { series; threshold; except } -> (
    let missing = List.filter (fun s -> fig_points fig ~series:s = None) series in
    match missing with
    | _ :: _ -> result false (Printf.sprintf "series not in figure: %s" (String.concat ", " missing))
    | [] ->
      let offenders =
        List.concat_map
          (fun sname ->
            List.filter_map
              (fun (x, v) ->
                if (not (List.mem x except)) && v >= threshold then
                  Some (Printf.sprintf "%s/%s=%s" sname x (Report.Table.cell_f v))
                else None)
              (Option.get (fig_points fig ~series:sname)))
          series
      in
      if offenders = [] then result true "all rows below threshold"
      else result false (String.concat ", " offenders))
  | Expectations.Category_geomean { series; category; glo; ghi } -> (
    match fig_points fig ~series with
    | None -> result false (Printf.sprintf "series %s not in figure" series)
    | Some points -> (
      let cats = Lazy.force kernel_category in
      let vs =
        List.filter_map
          (fun (x, v) ->
            match List.assoc_opt x cats with
            | Some c when c = category -> Some v
            | _ -> None)
          points
      in
      match vs with
      | [] -> result false (Printf.sprintf "no %s rows in figure" category)
      | vs ->
        let g = geomean vs in
        let ok = g >= glo && g <= ghi in
        result ok
          (Printf.sprintf "geomean %s over %d kernels%s" (Report.Table.cell_f g) (List.length vs)
             (if ok then "" else Printf.sprintf " outside [%.3g, %.3g]" glo ghi))))
  | Expectations.Series_leq { lo_series; hi_series; tol } -> (
    match (fig_points fig ~series:lo_series, fig_points fig ~series:hi_series) with
    | None, _ -> result false (Printf.sprintf "series %s not in figure" lo_series)
    | _, None -> result false (Printf.sprintf "series %s not in figure" hi_series)
    | Some lo_pts, Some hi_pts -> (
      let shared =
        List.filter_map
          (fun (x, lo_v) ->
            Option.map (fun hi_v -> (lo_v, hi_v)) (List.assoc_opt x hi_pts))
          lo_pts
      in
      match shared with
      | [] -> result false "no shared rows"
      | shared ->
        let lo_g = geomean (List.map fst shared) in
        let hi_g = geomean (List.map snd shared) in
        let ok = lo_g <= hi_g *. (1.0 +. tol) in
        result ok
          (Printf.sprintf "geomean %s=%s %s %s=%s" lo_series (Report.Table.cell_f lo_g)
             (if ok then "<=" else ">")
             hi_series (Report.Table.cell_f hi_g))))
  | Expectations.Closest_to_hw { winner; rivals } -> (
    let all = winner :: rivals in
    let missing = List.filter (fun s -> fig_points fig ~series:s = None) all in
    match missing with
    | _ :: _ -> result false (Printf.sprintf "series not in figure: %s" (String.concat ", " missing))
    | [] ->
      (* Mean |ln rel| over the rows every contender has: distance from
         hardware parity (rel = 1.0) on the log scale the paper plots. *)
      let shared_rows =
        List.filter
          (fun x -> List.for_all (fun s -> fig_value fig ~x ~series:s <> None) all)
          (fig_rows fig)
      in
      if shared_rows = [] then result false "no shared rows"
      else
        let dist sname =
          let total =
            List.fold_left
              (fun acc x ->
                acc +. Float.abs (Float.log (Option.get (fig_value fig ~x ~series:sname))))
              0.0 shared_rows
          in
          total /. float_of_int (List.length shared_rows)
        in
        let wd = dist winner in
        let beaten = List.filter (fun r -> wd >= dist r) rivals in
        let detail =
          String.concat ", "
            (List.map (fun s -> Printf.sprintf "%s=%.4f" s (dist s)) all)
        in
        if beaten = [] then result true ("mean |ln rel|: " ^ detail)
        else
          result false
            (Printf.sprintf "%s not closest (mean |ln rel|: %s)" winner detail))

(* ---------------------------------------------------------- band checks *)

let check_bands (fig : E.figure) (bands : Expectations.band list) =
  List.concat_map
    (fun (b : Expectations.band) ->
      let rows = match b.Expectations.bx with Some x -> [ x ] | None -> fig_rows fig in
      let cols =
        match b.Expectations.bseries with Some s -> [ s ] | None -> fig_series_labels fig
      in
      List.concat_map
        (fun x ->
          List.map
            (fun series ->
              match fig_value fig ~x ~series with
              | Some v ->
                {
                  bc_x = x;
                  bc_series = series;
                  bc_value = v;
                  bc_lo = b.Expectations.blo;
                  bc_hi = b.Expectations.bhi;
                  bc_ok = v >= b.Expectations.blo && v <= b.Expectations.bhi;
                  bc_prov = b.Expectations.bprov;
                }
              | None ->
                (* A band naming a cell the figure doesn't have is a spec
                   error; fail loudly rather than skip silently. *)
                {
                  bc_x = x;
                  bc_series = series;
                  bc_value = Float.nan;
                  bc_lo = b.Expectations.blo;
                  bc_hi = b.Expectations.bhi;
                  bc_ok = false;
                  bc_prov = b.Expectations.bprov;
                })
            cols)
        rows)
    bands

(* ------------------------------------------------------------ the check *)

let empty_totals =
  {
    t_cells = 0;
    t_exact = 0;
    t_within = 0;
    t_drifted = 0;
    t_bands = 0;
    t_band_misses = 0;
    t_shapes = 0;
    t_shape_misses = 0;
    t_structural = 0;
  }

let figure_totals fr =
  let cell_counts (e, w, d) (c : cell_check) =
    match c.cc_verdict with
    | Verdict.Exact -> (e + 1, w, d)
    | Verdict.Within_band _ -> (e, w + 1, d)
    | Verdict.Drifted _ -> (e, w, d + 1)
  in
  let e, w, d = List.fold_left cell_counts (0, 0, 0) fr.fr_cells in
  {
    t_cells = List.length fr.fr_cells;
    t_exact = e;
    t_within = w;
    t_drifted = d;
    t_bands = List.length fr.fr_bands;
    t_band_misses = List.length (List.filter (fun b -> not b.bc_ok) fr.fr_bands);
    t_shapes = List.length fr.fr_shapes;
    t_shape_misses = List.length (List.filter (fun s -> not s.sc_ok) fr.fr_shapes);
    t_structural = List.length fr.fr_structural;
  }

let add_totals a b =
  {
    t_cells = a.t_cells + b.t_cells;
    t_exact = a.t_exact + b.t_exact;
    t_within = a.t_within + b.t_within;
    t_drifted = a.t_drifted + b.t_drifted;
    t_bands = a.t_bands + b.t_bands;
    t_band_misses = a.t_band_misses + b.t_band_misses;
    t_shapes = a.t_shapes + b.t_shapes;
    t_shape_misses = a.t_shape_misses + b.t_shape_misses;
    t_structural = a.t_structural + b.t_structural;
  }

let check_figure ?(telemetry = Telemetry.Registry.disabled) ~expectations ~golden_path ~updated
    (fig : E.figure) =
  let fe = Expectations.find expectations fig.E.id in
  let band = Expectations.cell_band expectations fe in
  let structural = ref [] in
  let cells = ref [] in
  (match Golden.load golden_path with
  | Error msg ->
    structural := [ Printf.sprintf "golden CSV %s unreadable: %s" golden_path msg ]
  | Ok golden ->
    let g_series = Golden.series golden in
    let g_rows = List.map fst golden.Golden.rows in
    let f_series = fig_series_labels fig in
    let f_rows = fig_rows fig in
    List.iter
      (fun s ->
        if not (List.mem s f_series) then
          structural := Printf.sprintf "series %S missing from recomputed figure" s :: !structural)
      g_series;
    List.iter
      (fun s ->
        if not (List.mem s g_series) then
          structural := Printf.sprintf "series %S not in golden CSV" s :: !structural)
      f_series;
    List.iter
      (fun x ->
        if not (List.mem x f_rows) then
          structural := Printf.sprintf "row %S missing from recomputed figure" x :: !structural)
      g_rows;
    List.iter
      (fun x ->
        if not (List.mem x g_rows) then
          structural := Printf.sprintf "row %S not in golden CSV" x :: !structural)
      f_rows;
    (* Verdict the intersection, in golden (row-major) order. *)
    List.iter
      (fun (x, _) ->
        List.iter
          (fun series ->
            match (Golden.cell golden ~x ~series, fig_value fig ~x ~series) with
            | Some expected_text, Some got ->
              cells :=
                { cc_x = x; cc_series = series; cc_verdict = Verdict.classify ~band ~expected_text ~got }
                :: !cells
            | _ -> ())
          g_series)
      golden.Golden.rows);
  let fr =
    {
      fr_id = fig.E.id;
      fr_golden = golden_path;
      fr_updated = updated;
      fr_structural = List.rev !structural;
      fr_cells = List.rev !cells;
      fr_bands = (match fe with None -> [] | Some fe -> check_bands fig fe.Expectations.bands);
      fr_shapes =
        (match fe with None -> [] | Some fe -> List.map (check_shape fig) fe.Expectations.shapes);
    }
  in
  let t = figure_totals fr in
  Telemetry.Registry.set_all telemetry
    [
      ("validate." ^ fr.fr_id ^ ".cells.checked", t.t_cells);
      ("validate." ^ fr.fr_id ^ ".cells.drifted", t.t_drifted);
    ];
  let bump name n =
    Telemetry.Registry.add (Telemetry.Registry.counter telemetry name) n
  in
  bump "validate.cells.checked" t.t_cells;
  bump "validate.cells.exact" t.t_exact;
  bump "validate.cells.within_band" t.t_within;
  bump "validate.cells.drifted" t.t_drifted;
  bump "validate.bands.checked" t.t_bands;
  bump "validate.bands.missed" t.t_band_misses;
  bump "validate.shapes.checked" t.t_shapes;
  bump "validate.shapes.violated" t.t_shape_misses;
  bump "validate.structural.mismatches" t.t_structural;
  fr

let run ?telemetry ?jobs ?(update_golden = false) ~results_dir ~expectations ids =
  let figs = generate ?jobs ids in
  let r_figures =
    List.map
      (fun (id, fig) ->
        let golden_path = Filename.concat results_dir (Expectations.golden_file expectations id) in
        if update_golden then Golden.save golden_path (Golden.of_figure fig);
        check_figure ?telemetry ~expectations ~golden_path ~updated:update_golden fig)
      figs
  in
  {
    r_figures;
    r_totals = List.fold_left (fun acc fr -> add_totals acc (figure_totals fr)) empty_totals r_figures;
  }

let ok ?(strict = false) report =
  let t = report.r_totals in
  t.t_drifted = 0 && t.t_band_misses = 0 && t.t_shape_misses = 0 && t.t_structural = 0
  && ((not strict) || t.t_within = 0)

(* -------------------------------------------------------------- render *)

let render ?(strict = false) report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun fr ->
      let t = figure_totals fr in
      Buffer.add_string buf
        (Printf.sprintf "%-6s %3d cells: %d exact, %d within-band, %d drifted; bands %d/%d; shapes %d/%d%s%s\n"
           fr.fr_id t.t_cells t.t_exact t.t_within t.t_drifted (t.t_bands - t.t_band_misses)
           t.t_bands
           (t.t_shapes - t.t_shape_misses)
           t.t_shapes
           (if t.t_structural > 0 then Printf.sprintf "; %d STRUCTURAL" t.t_structural else "")
           (if fr.fr_updated then "; golden updated" else "")))
    report.r_figures;
  let problems =
    List.concat_map
      (fun fr ->
        List.map (fun s -> [ fr.fr_id; "structural"; "-"; s ]) fr.fr_structural
        @ List.filter_map
            (fun c ->
              if Verdict.is_exact c.cc_verdict then None
              else Some [ fr.fr_id; "cell"; c.cc_x ^ "/" ^ c.cc_series; Verdict.describe c.cc_verdict ])
            fr.fr_cells
        @ List.filter_map
            (fun b ->
              if b.bc_ok then None
              else
                Some
                  [
                    fr.fr_id;
                    "band";
                    b.bc_x ^ "/" ^ b.bc_series;
                    Printf.sprintf "value %s outside [%.3g, %.3g] (%s)"
                      (Report.Table.cell_f b.bc_value) b.bc_lo b.bc_hi b.bc_prov;
                  ])
            fr.fr_bands
        @ List.filter_map
            (fun s ->
              if s.sc_ok then None
              else Some [ fr.fr_id; "shape"; s.sc_desc; s.sc_detail ^ " (" ^ s.sc_prov ^ ")" ])
            fr.fr_shapes)
      report.r_figures
  in
  if problems <> [] then begin
    let t = Report.Table.create ~headers:[ "figure"; "check"; "where"; "detail" ] in
    List.iter (Report.Table.add_row t) problems;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Report.Table.render t)
  end;
  let t = report.r_totals in
  Buffer.add_string buf
    (Printf.sprintf "validate: %s (%d cells: %d exact, %d within-band, %d drifted; %d/%d bands, %d/%d shapes%s)\n"
       (if ok ~strict report then "OK" else "FAIL")
       t.t_cells t.t_exact t.t_within t.t_drifted (t.t_bands - t.t_band_misses) t.t_bands
       (t.t_shapes - t.t_shape_misses)
       t.t_shapes
       (if t.t_structural > 0 then Printf.sprintf "; %d structural mismatches" t.t_structural
        else ""));
  Buffer.contents buf

(* ------------------------------------------------------------ JSON out *)

let verdict_json (c : cell_check) =
  let base = [ ("x", Jsonx.Str c.cc_x); ("series", Jsonx.Str c.cc_series) ] in
  match c.cc_verdict with
  | Verdict.Exact -> Jsonx.Obj (base @ [ ("verdict", Jsonx.Str "exact") ])
  | Verdict.Within_band { expected; got; delta; band } | Verdict.Drifted { expected; got; delta; band }
    ->
    Jsonx.Obj
      (base
      @ [
          ("verdict", Jsonx.Str (Verdict.to_string c.cc_verdict));
          ("expected", Jsonx.Num expected);
          ("got", Jsonx.Num got);
          ("delta", Jsonx.Num delta);
          ("band", Jsonx.Num band);
        ])

let to_json ?(strict = false) report =
  let t = report.r_totals in
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "simbridge-validate/1");
      ("strict", Jsonx.Bool strict);
      ("ok", Jsonx.Bool (ok ~strict report));
      ( "totals",
        Jsonx.Obj
          [
            ("cells", Jsonx.Num (float_of_int t.t_cells));
            ("exact", Jsonx.Num (float_of_int t.t_exact));
            ("within_band", Jsonx.Num (float_of_int t.t_within));
            ("drifted", Jsonx.Num (float_of_int t.t_drifted));
            ("bands", Jsonx.Num (float_of_int t.t_bands));
            ("band_misses", Jsonx.Num (float_of_int t.t_band_misses));
            ("shapes", Jsonx.Num (float_of_int t.t_shapes));
            ("shape_misses", Jsonx.Num (float_of_int t.t_shape_misses));
            ("structural", Jsonx.Num (float_of_int t.t_structural));
          ] );
      ( "figures",
        Jsonx.Arr
          (List.map
             (fun fr ->
               Jsonx.Obj
                 [
                   ("id", Jsonx.Str fr.fr_id);
                   ("golden", Jsonx.Str fr.fr_golden);
                   ("updated", Jsonx.Bool fr.fr_updated);
                   ("structural", Jsonx.Arr (List.map (fun s -> Jsonx.Str s) fr.fr_structural));
                   ("cells", Jsonx.Arr (List.map verdict_json fr.fr_cells));
                   ( "bands",
                     Jsonx.Arr
                       (List.map
                          (fun b ->
                            Jsonx.Obj
                              [
                                ("x", Jsonx.Str b.bc_x);
                                ("series", Jsonx.Str b.bc_series);
                                ("value", Jsonx.Num b.bc_value);
                                ("min", Jsonx.Num b.bc_lo);
                                ("max", Jsonx.Num b.bc_hi);
                                ("ok", Jsonx.Bool b.bc_ok);
                                ("provenance", Jsonx.Str b.bc_prov);
                              ])
                          fr.fr_bands) );
                   ( "shapes",
                     Jsonx.Arr
                       (List.map
                          (fun s ->
                            Jsonx.Obj
                              [
                                ("shape", Jsonx.Str s.sc_desc);
                                ("ok", Jsonx.Bool s.sc_ok);
                                ("detail", Jsonx.Str s.sc_detail);
                                ("provenance", Jsonx.Str s.sc_prov);
                              ])
                          fr.fr_shapes) );
                 ])
             report.r_figures) );
    ]
