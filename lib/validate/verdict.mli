(** Per-cell fidelity verdicts.

    Every figure cell the validator recomputes is classified against the
    checked-in golden CSV:

    - [Exact] — the recomputed value formats to the {e same text} the
      golden CSV holds ({!Report.Table.cell_f} is the canonical cell
      format, shared with [figure_csv]).  The simulator is deterministic,
      so on an unregressed tree every cell is [Exact].
    - [Within_band] — textually different but the relative delta is
      within the configured band (default 2%): tolerated drift, e.g. a
      golden file regenerated with a different float printer.
    - [Drifted] — outside the band: the fidelity regression the gate
      exists to catch.  Carries the expected/got pair and the delta so
      CI output names the offending cell's numbers directly. *)

type t =
  | Exact
  | Within_band of { expected : float; got : float; delta : float; band : float }
  | Drifted of { expected : float; got : float; delta : float; band : float }

val rel_delta : expected:float -> got:float -> float
(** |got - expected| / max |expected| eps — the symmetric-enough relative
    error used for band classification (goldens are never exactly 0). *)

val classify : band:float -> expected_text:string -> got:float -> t
(** Classify a recomputed value against the golden cell's raw text.
    Unparseable golden text classifies as [Drifted] with [expected = nan]
    (a corrupt golden file must fail the gate, not pass it). *)

val is_exact : t -> bool
val is_drifted : t -> bool

val to_string : t -> string
(** ["exact"], ["within-band"], ["drifted"] — the JSON report tags. *)

val describe : t -> string
(** One-line human rendering including numbers for non-exact verdicts. *)
