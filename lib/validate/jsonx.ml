type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

(* ------------------------------------------------------------- parsing *)

type state = { s : string; mutable pos : int }

let fail st msg = raise (Fail (st.pos, msg))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some got when got = c -> st.pos <- st.pos + 1
  | Some got -> fail st (Printf.sprintf "expected %c, got %c" c got)
  | None -> fail st (Printf.sprintf "expected %c, got end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* UTF-8-encode a \uXXXX escape (surrogate pairs are not recombined —
   the documents this parser reads are ASCII-plus-UTF-8 already). *)
let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
          let hex = String.sub st.s st.pos 4 in
          st.pos <- st.pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> utf8_of_code buf code
          | None -> fail st "bad \\u escape")
        | c -> fail st (Printf.sprintf "bad escape \\%c" c)));
      go ()
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let numchar = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && numchar st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> v
  | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields_loop ()
        | _ -> expect st '}'
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items_loop ()
        | _ -> expect st ']'
      in
      items_loop ();
      Arr (List.rev !items)
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos < String.length s then Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
    else Ok v
  | exception Fail (pos, msg) -> Error (Printf.sprintf "at byte %d: %s" pos msg)

let parse_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    parse s

(* ------------------------------------------------------------ emitting *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string v =
  if not (Float.is_finite v) then "null" (* JSON has no nan/inf *)
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad depth = if indent > 0 then Buffer.add_string buf (String.make (depth * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  let sep () = Buffer.add_string buf (if indent > 0 then ": " else ":") in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num v -> Buffer.add_string buf (num_to_string v)
    | Str s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape_string buf k;
          sep ();
          emit (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ----------------------------------------------------------- accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let get_str ?(default = "") key v =
  match member key v with Some (Str s) -> s | _ -> default

let get_float key v = Option.bind (member key v) to_float
