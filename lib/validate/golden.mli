(** Golden-result CSV tables under [results/].

    A golden file is exactly what [Experiments.figure_csv] emits — an
    ["x"] column of row labels plus one column per series — checked in at
    scale 1 with the default seed.  This module reads and writes them as
    raw text cells so [Exact] verdicts are a byte comparison and
    [--update-golden] round-trips bit-identically. *)

type t = {
  headers : string list;  (** ["x"; series...] *)
  rows : (string * string list) list;  (** (x label, raw cell text per series) *)
}

val of_csv : string -> (t, string) result
(** Parse CSV text (RFC-4180-style quoting, as {!Report.Table.to_csv}
    writes it).  Rejects empty input and width-mismatched rows. *)

val load : string -> (t, string) result
(** [of_csv] over a file's contents. *)

val to_csv : t -> string
(** Byte-identical inverse of {!of_csv} for tables that came from
    {!Report.Table.to_csv} (same quoting rule, trailing newline). *)

val save : string -> t -> unit
(** Write [to_csv] to a path ([--update-golden]'s single write site). *)

val of_figure : Simbridge.Experiments.figure -> t
(** The golden table a figure would be checked in as — parsed from
    [figure_csv] so the text cells match the canonical format exactly. *)

val series : t -> string list
(** Header minus the leading x column. *)

val cell : t -> x:string -> series:string -> string option
(** Raw cell text, [None] when the row or column is absent. *)
