(** Minimal JSON for the validation subsystem.

    The repo deliberately carries no external JSON dependency (the CI
    image bakes in a fixed opam set), and the two JSON documents this
    subsystem touches — [results/paper-expectations.json] and the
    machine-readable fidelity report — need only the core data model.
    This is a complete recursive-descent parser (objects, arrays,
    strings with escapes, numbers, booleans, null) plus a deterministic
    pretty-printer, shared by {!Expectations} (read side) and
    {!Fidelity} (write side). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; the error carries a byte offset. *)

val parse_file : string -> (t, string) result
(** [parse] over a file's contents; I/O failures become [Error]. *)

val to_string : ?indent:int -> t -> string
(** Serialize.  [indent] > 0 (default 2) pretty-prints with that step;
    [indent = 0] emits a single line.  Object key order is preserved, so
    output is deterministic.  Round-trips through {!parse}. *)

(** {2 Accessors} — all total, returning [None] on a shape mismatch. *)

val member : string -> t -> t option
(** Object field lookup ([None] on non-objects too). *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] only when integral. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option

val get_str : ?default:string -> string -> t -> string
(** [get_str key obj] with a default of [""]: the common case for
    optional annotation fields (provenance strings). *)

val get_float : string -> t -> float option
(** [member] composed with {!to_float}. *)
