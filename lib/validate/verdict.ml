type t =
  | Exact
  | Within_band of { expected : float; got : float; delta : float; band : float }
  | Drifted of { expected : float; got : float; delta : float; band : float }

let rel_delta ~expected ~got =
  Float.abs (got -. expected) /. Float.max (Float.abs expected) 1e-12

let classify ~band ~expected_text ~got =
  let expected_text = String.trim expected_text in
  if Report.Table.cell_f got = expected_text then Exact
  else
    match float_of_string_opt expected_text with
    | None -> Drifted { expected = Float.nan; got; delta = Float.nan; band }
    | Some expected ->
      let delta = rel_delta ~expected ~got in
      if delta <= band then Within_band { expected; got; delta; band }
      else Drifted { expected; got; delta; band }

let is_exact = function Exact -> true | _ -> false
let is_drifted = function Drifted _ -> true | _ -> false

let to_string = function
  | Exact -> "exact"
  | Within_band _ -> "within-band"
  | Drifted _ -> "drifted"

let describe = function
  | Exact -> "exact"
  | Within_band { expected; got; delta; band } ->
    Printf.sprintf "within band: expected %s got %s (%.3f%% <= %.1f%%)"
      (Report.Table.cell_f expected) (Report.Table.cell_f got) (100.0 *. delta) (100.0 *. band)
  | Drifted { expected; got; delta; band } ->
    Printf.sprintf "DRIFTED: expected %s got %s (%.2f%% > %.1f%%)" (Report.Table.cell_f expected)
      (Report.Table.cell_f got) (100.0 *. delta) (100.0 *. band)
