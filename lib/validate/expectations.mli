(** The transcribed paper expectations: [results/paper-expectations.json].

    The golden CSVs pin our regenerated figures bit-for-bit; the
    expectations file pins them to the {e paper}.  Each figure carries

    - {b bands}: per-cell (or per-row/per-series) relative-speedup ranges
      transcribed from the paper's reported numbers ("MM at ~35-37% of
      Banana Pi"), and
    - {b shapes}: qualitative assertions the paper's narrative makes —
      category-level under/over-performance, ordering constraints
      ("Large BOOM tracks MILK-V best"), scaling directions.

    Every entry carries a [provenance] string naming the paper section or
    figure it was transcribed from (plus the EXPERIMENTS.md deviation
    note where our reproduction is known to differ), so golden churn and
    band edits stay reviewable. *)

type band = {
  bx : string option;  (** row (x label); [None] = every row *)
  bseries : string option;  (** series label; [None] = every series *)
  blo : float;
  bhi : float;
  bprov : string;  (** paper section / figure this range came from *)
}

type shape =
  | All_below of {
      series : string list;
      threshold : float;
      except : string list;  (** rows allowed to exceed the threshold *)
    }
      (** Every listed series stays below [threshold] on every row not in
          [except] (e.g. "the Rocket model underachieves everywhere
          except the conflict-miss cache kernels"). *)
  | Category_geomean of {
      series : string;
      category : string;  (** Table 1 category name, e.g. ["Control Flow"] *)
      glo : float;
      ghi : float;
    }
      (** The geomean of the series over that MicroBench category lands
          in [glo, ghi] (the paper reports category-level verdicts). *)
  | Series_leq of {
      lo_series : string;
      hi_series : string;
      tol : float;  (** slack: geomean(lo) <= geomean(hi) * (1 + tol) *)
    }
      (** Ordering over whole-series geomeans (e.g. fidelity improves
          Small -> Medium -> Large BOOM). *)
  | Closest_to_hw of {
      winner : string;
      rivals : string list;
    }
      (** [winner]'s mean |ln(rel)| distance from 1.0 (hardware parity)
          is strictly smallest ("Large BOOM tracks MILK-V best"). *)

type shape_spec = { shape : shape; sprov : string }

type fig_expect = {
  fig_id : string;
  golden : string;  (** golden CSV filename, relative to the results dir *)
  fig_band : float option;  (** per-figure verdict band override *)
  bands : band list;
  shapes : shape_spec list;
}

type t = {
  version : int;
  default_band : float;  (** relative band for cell verdicts (e.g. 0.02) *)
  figures : fig_expect list;
}

val of_json : Jsonx.t -> (t, string) result
val load : string -> (t, string) result

val find : t -> string -> fig_expect option
(** Expectations for one figure id; [None] means golden-only checking. *)

val golden_file : t -> string -> string
(** The golden CSV filename for a figure id (["<id>.csv"] when the
    figure has no expectations entry or no explicit [golden] field). *)

val cell_band : t -> fig_expect option -> float
(** The verdict band in effect: figure override or the global default. *)

val describe_shape : shape -> string
(** Compact human/JSON label, e.g. ["closest-to-hw: boom-large vs
    boom-small, boom-medium"]. *)
