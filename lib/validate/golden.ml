type t = {
  headers : string list;
  rows : (string * string list) list;
}

(* Split one CSV record into fields, honoring the double-quote escaping
   Report.Table.to_csv emits.  Golden files never contain embedded
   newlines, so records are lines. *)
let split_record line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = line.[!i] in
    (if !in_quotes then
       if c = '"' then
         if !i + 1 < n && line.[!i + 1] = '"' then begin
           Buffer.add_char buf '"';
           incr i
         end
         else in_quotes := false
       else Buffer.add_char buf c
     else
       match c with
       | '"' -> in_quotes := true
       | ',' ->
         fields := Buffer.contents buf :: !fields;
         Buffer.clear buf
       | c -> Buffer.add_char buf c);
    incr i
  done;
  fields := Buffer.contents buf :: !fields;
  List.rev !fields

let of_csv text =
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  match lines with
  | [] -> Error "empty CSV"
  | header :: data ->
    let headers = split_record header in
    let width = List.length headers in
    if width < 2 then Error "golden CSV needs an x column plus at least one series"
    else
      let rec rows acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          match split_record line with
          | x :: cells when List.length cells = width - 1 -> rows ((x, cells) :: acc) rest
          | fields ->
            Error
              (Printf.sprintf "row %S has %d fields, header has %d"
                 (String.concat "," fields) (List.length fields) width))
      in
      Result.map (fun rows -> { headers; rows }) (rows [] data)

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    of_csv text

(* Mirror Report.Table's quoting so save/load round-trips byte-for-byte
   against figure_csv output. *)
let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line fields = String.concat "," (List.map quote fields) in
  String.concat "\n" (line t.headers :: List.map (fun (x, cells) -> line (x :: cells)) t.rows)
  ^ "\n"

let save path t =
  let oc = open_out_bin path in
  output_string oc (to_csv t);
  close_out oc

let of_figure fig =
  match of_csv (Simbridge.Experiments.figure_csv fig) with
  | Ok t -> t
  | Error msg -> invalid_arg ("Golden.of_figure: " ^ msg)

let series t = match t.headers with [] -> [] | _ :: s -> s

let cell t ~x ~series:sname =
  match List.assoc_opt x t.rows with
  | None -> None
  | Some cells ->
    let rec find i = function
      | [] -> None
      | s :: _ when s = sname -> List.nth_opt cells i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 (series t)
