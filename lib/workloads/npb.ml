module Gen = Prog.Gen
module E = Emit

let split n ranks r =
  (* Contiguous block partition: first (n mod ranks) ranks get one extra. *)
  let q = n / ranks and rem = n mod ranks in
  let lo = (r * q) + min r rem in
  let sz = q + if r < rem then 1 else 0 in
  (lo, sz)

(* ------------------------------------------------------------------ CG *)

(* Conjugate gradient on a diagonally dominant random sparse matrix.  The
   numerics run for real at construction (so the access pattern and the
   iteration structure are those of a genuine solve); emission replays the
   per-rank memory traffic. *)
let cg_program ?(codegen = Codegen.default) ~ranks ~scale () : Smpi.program =
  let n = E.scaled scale 1400 in
  let nnz_row = 8 in
  let iters = 6 in
  let rng = Util.Rng.create 0xC6 in
  let cols = Array.init n (fun _ -> Array.init nnz_row (fun _ -> Util.Rng.int rng n)) in
  let vals = Array.init n (fun _ -> Array.init nnz_row (fun _ -> Util.Rng.float rng 1.0)) in
  (* Real CG iterations (sequential reference solve) — keeps the workload
     honest and gives tests something to verify. *)
  let diag = Array.init n (fun i -> 1.0 +. Array.fold_left ( +. ) 0.0 vals.(i)) in
  let spmv x y =
    for i = 0 to n - 1 do
      let acc = ref (diag.(i) *. x.(i)) in
      for k = 0 to nnz_row - 1 do
        acc := !acc +. (vals.(i).(k) *. x.(cols.(i).(k)))
      done;
      y.(i) <- !acc
    done
  in
  let b = Array.make n 1.0 in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy b in
  let q = Array.make n 0.0 in
  let dot a c = Array.fold_left ( +. ) 0.0 (Array.init n (fun i -> a.(i) *. c.(i))) in
  let residuals = ref [] in
  let rho = ref (dot r r) in
  for _ = 1 to iters do
    spmv p q;
    let alpha = !rho /. dot p q in
    for i = 0 to n - 1 do
      x.(i) <- x.(i) +. (alpha *. p.(i));
      r.(i) <- r.(i) -. (alpha *. q.(i))
    done;
    let rho' = dot r r in
    let beta = rho' /. !rho in
    for i = 0 to n - 1 do
      p.(i) <- r.(i) +. (beta *. p.(i))
    done;
    rho := rho';
    residuals := sqrt rho' :: !residuals
  done;
  (* Per-rank layout within the rank's data window: p (gathered, full n),
     then x/r/q (local rows), then column indices and values. *)
  let mk_rank rank =
    let base = Workload.data_base ~rank in
    let p_base = base in
    let x_base = base + (n * 8) in
    let r_base = x_base + (n * 8) in
    let q_base = r_base + (n * 8) in
    let col_base = q_base + (n * 8) in
    let val_base = col_base + (n * nnz_row * 4) in
    let lo, sz = split n ranks rank in
    let region = E.fresh_region ~slots:32 in
    let pc = Prog.Code.pc region in

    let spmv_stream =
      Gen.iterate sz (fun row_i ->
          let row = lo + row_i in
          let per_nz k =
            let col = cols.(row).(k) in
            [
              E.load ~pc:(pc 0) ~dst:E.rtmp ~addr:(col_base + (((row * nnz_row) + k) * 4)) ();
              E.load ~pc:(pc 1) ~dst:21 ~addr:(p_base + (col * 8)) ~src1:E.rtmp ();
              E.load ~pc:(pc 2) ~dst:22 ~addr:(val_base + (((row * nnz_row) + k) * 8)) ();
              E.fp ~pc:(pc 3) ~kind:Isa.Insn.Fp_mul ~dst:23 ~src1:21 ~src2:22 ();
              E.fp ~pc:(pc 4) ~kind:Isa.Insn.Fp_add ~dst:24 ~src1:24 ~src2:23 ();
            ]
          in
          let body = List.concat (List.init nnz_row per_nz) in
          let loop_ops =
            List.init
              (Codegen.ops_at codegen ~index:row_i ~base:1)
              (fun j -> E.alu ~pc:(pc (6 + (j mod 8))) ~dst:E.rctr ~src1:E.rctr ())
          in
          Gen.of_list
            (body
            @ [ E.store ~pc:(pc 5) ~addr:(q_base + (row * 8)) ~src1:24 () ]
            @ loop_ops
            @ [
                E.branch ~pc:(pc 15) ~taken:(row_i < sz - 1) ~target:(pc 0) ~src1:E.rctr ();
              ]))
    in
    (* dot product over local rows: two streaming loads + fma. *)
    let dot_stream a_base b_base =
      E.with_loop region ~iters:sz ~body_slots:20 ~body:(fun i ->
          [
            E.load ~pc:(pc 16) ~dst:21 ~addr:(a_base + ((lo + i) * 8)) ();
            E.load ~pc:(pc 17) ~dst:22 ~addr:(b_base + ((lo + i) * 8)) ();
            E.fp ~pc:(pc 18) ~kind:Isa.Insn.Fp_mul ~dst:23 ~src1:21 ~src2:22 ();
            E.fp ~pc:(pc 19) ~kind:Isa.Insn.Fp_add ~dst:24 ~src1:24 ~src2:23 ();
          ])
    in
    (* axpy-style vector updates: x += alpha p; r -= alpha q; p = r + beta p. *)
    let update_stream =
      E.with_loop region ~iters:sz ~body_slots:28 ~body:(fun i ->
          let row = lo + i in
          [
            E.load ~pc:(pc 20) ~dst:21 ~addr:(p_base + (row * 8)) ();
            E.fp ~pc:(pc 21) ~kind:Isa.Insn.Fp_mul ~dst:22 ~src1:21 ();
            E.load ~pc:(pc 22) ~dst:23 ~addr:(x_base + (row * 8)) ();
            E.fp ~pc:(pc 23) ~kind:Isa.Insn.Fp_add ~dst:23 ~src1:23 ~src2:22 ();
            E.store ~pc:(pc 24) ~addr:(x_base + (row * 8)) ~src1:23 ();
            E.load ~pc:(pc 25) ~dst:25 ~addr:(r_base + (row * 8)) ();
            E.fp ~pc:(pc 26) ~kind:Isa.Insn.Fp_add ~dst:25 ~src1:25 ~src2:22 ();
            E.store ~pc:(pc 27) ~addr:(r_base + (row * 8)) ~src1:25 ();
          ])
    in
    let iteration =
      [
        (* Share the updated direction vector p; chunk size is the
           (rank-independent) ceiling share so collectives match even when
           the row split is uneven. *)
        Smpi.Comm (Smpi.Allgather { bytes = (n + ranks - 1) / ranks * 8 });
        Smpi.Compute spmv_stream;
        Smpi.Compute (dot_stream p_base q_base);
        Smpi.Comm (Smpi.Allreduce { bytes = 8 });
        Smpi.Compute update_stream;
        Smpi.Compute (dot_stream r_base r_base);
        Smpi.Comm (Smpi.Allreduce { bytes = 8 });
      ]
    in
    List.concat (List.init iters (fun _ -> iteration))
  in
  ignore !residuals;
  Array.init ranks mk_rank

(* ------------------------------------------------------------------ EP *)

(* Marsaglia polar method: the accept branch follows real arithmetic on a
   positionally hashed PRNG, so the ~78.5% acceptance rate (and its
   unpredictability at fine grain) is genuine. *)
let ep_program ?(codegen = Codegen.default) ~ranks ~scale () : Smpi.program =
  let total = E.scaled scale 36_000 in
  let u seed pos =
    (* Stateless uniform in [0,1), same recipe as Prog.Outcome. *)
    let mix z =
      let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
      let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
      Int64.(logxor z (shift_right_logical z 31))
    in
    let h = mix (Int64.add (Int64.of_int (Util.Rng.salted seed)) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (pos + 1)))) in
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
  in

  let mk_rank rank =
    let base = Workload.data_base ~rank in
    let _, sz = split total ranks rank in
    let region = E.fresh_region ~slots:48 in
    let pc = Prog.Code.pc region in
    let seed = 0xE9 + rank in
    let stream =
      E.with_loop region ~iters:sz ~body_slots:40 ~body:(fun i ->
          let x = (2.0 *. u seed (2 * i)) -. 1.0 in
          let y = (2.0 *. u (seed + 7) ((2 * i) + 1)) -. 1.0 in
          let t = (x *. x) +. (y *. y) in
          let accept = t <= 1.0 && t > 0.0 in
          (* vranlc-style PRNG: integer-dominated, wide ILP — this is where
             a dual-issue / wider silicon core pulls ahead of the model. *)
          let prng =
            List.init
              (Codegen.ops_at codegen ~index:i ~base:18)
              (fun j -> E.alu ~pc:(pc (j mod 12)) ~dst:(E.racc j) ~src1:(E.racc j) ())
          in
          let arith =
            [
              E.fp ~pc:(pc 12) ~kind:Isa.Insn.Fp_mul ~dst:21 ~src1:21 ();
              E.fp ~pc:(pc 13) ~kind:Isa.Insn.Fp_mul ~dst:22 ~src1:22 ();
              E.fp ~pc:(pc 14) ~kind:Isa.Insn.Fp_add ~dst:23 ~src1:21 ~src2:22 ();
              E.branch ~pc:(pc 15) ~taken:(not accept) ~target:(pc 36) ~src1:23 ();
            ]
          in
          let accepted =
            if accept then
              (* sqrt(-2 ln t / t): two interleaved polynomial chains plus
                 a divide, then the histogram update. *)
              List.concat
                (List.init 2 (fun k ->
                     [
                       E.fp ~pc:(pc (16 + (2 * k))) ~kind:Isa.Insn.Fp_mul ~dst:24 ~src1:24 ();
                       E.fp ~pc:(pc (17 + (2 * k))) ~kind:Isa.Insn.Fp_add ~dst:25 ~src1:25 ();
                     ]))
              @ [
                  E.fp ~pc:(pc 22) ~kind:Isa.Insn.Fp_div ~dst:26 ~src1:24 ~src2:23 ();
                  E.fp ~pc:(pc 23) ~kind:Isa.Insn.Fp_mul ~dst:27 ~src1:22 ~src2:26 ();
                  E.alu ~pc:(pc 24) ~dst:E.rtmp ~src1:27 ();
                  E.load ~pc:(pc 25) ~dst:E.rtmp2 ~addr:(base + (abs (int_of_float (x *. 8.0)) mod 10 * 8)) ();
                  E.alu ~pc:(pc 26) ~dst:E.rtmp2 ~src1:E.rtmp2 ();
                  E.store ~pc:(pc 27) ~addr:(base + (abs (int_of_float (y *. 8.0)) mod 10 * 8)) ~src1:E.rtmp2 ();
                ]
            else []
          in
          prng @ arith @ accepted)
    in
    [ Smpi.Compute stream; Smpi.Comm (Smpi.Allreduce { bytes = 80 }) ]
  in
  Array.init ranks mk_rank

(* ------------------------------------------------------------------ IS *)

let is_program ?(codegen = Codegen.default) ~ranks ~scale () : Smpi.program =
  let total_keys = E.scaled scale 32_768 in
  let buckets = 2048 in
  let key seed pos =
    let mix z =
      let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
      let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
      Int64.(logxor z (shift_right_logical z 31))
    in
    let h = mix (Int64.add (Int64.of_int (Util.Rng.salted seed)) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (pos + 1)))) in
    Int64.to_int (Int64.logand h 0x7FFL) land (buckets - 1)
  in

  let mk_rank rank =
    let base = Workload.data_base ~rank in
    let keys_base = base in
    let bucket_base = base + (total_keys * 4) in
    let out_base = bucket_base + (buckets * 4) in
    let _, sz = split total_keys ranks rank in
    let region = E.fresh_region ~slots:32 in
    let pc = Prog.Code.pc region in
    let seed = 0x15 + rank in
    (* Phase 1: histogram — stream keys, random-access bucket counters. *)
    let histogram =
      E.with_loop region ~iters:sz ~body_slots:12 ~body:(fun i ->
          let k = key seed i in
          [ E.load ~pc:(pc 0) ~dst:E.rval ~addr:(keys_base + (i * 4)) () ]
          @ List.init
              (Codegen.ops_at codegen ~index:i ~base:2)
              (fun j -> E.alu ~pc:(pc (1 + j)) ~dst:E.rtmp ~src1:E.rval ())
          @ [
              E.load ~pc:(pc 4) ~dst:E.rtmp2 ~addr:(bucket_base + (k * 4)) ~src1:E.rtmp ();
              E.alu ~pc:(pc 5) ~dst:E.rtmp2 ~src1:E.rtmp2 ();
              E.store ~pc:(pc 6) ~addr:(bucket_base + (k * 4)) ~src1:E.rtmp2 ();
            ])
    in
    (* Phase 3: ranking — prefix sums over buckets then scatter of keys. *)
    let prefix =
      E.with_loop region ~iters:buckets ~body_slots:20 ~body:(fun b ->
          [
            E.load ~pc:(pc 16) ~dst:E.rval ~addr:(bucket_base + (b * 4)) ();
            E.alu ~pc:(pc 17) ~dst:(E.racc 0) ~src1:E.rval ~src2:(E.racc 0) ();
            E.store ~pc:(pc 18) ~addr:(bucket_base + (b * 4)) ~src1:(E.racc 0) ();
          ])
    in
    let scatter =
      E.with_loop region ~iters:sz ~body_slots:28 ~body:(fun i ->
          let k = key seed i in
          [
            E.load ~pc:(pc 24) ~dst:E.rval ~addr:(keys_base + (i * 4)) ();
            E.load ~pc:(pc 25) ~dst:E.rtmp ~addr:(bucket_base + (k * 4)) ();
            E.alu ~pc:(pc 26) ~dst:E.rtmp ~src1:E.rtmp ();
            E.store ~pc:(pc 27) ~addr:(out_base + (((k * 16) + (i mod 16)) * 4)) ~src1:E.rval ();
          ])
    in
    [
      Smpi.Compute histogram;
      (* Exchange keys so each rank owns a contiguous bucket range. *)
      Smpi.Comm (Smpi.Alltoall { bytes_per_rank = total_keys / (ranks * ranks) * 4 });
      Smpi.Compute prefix;
      Smpi.Compute scatter;
      Smpi.Comm (Smpi.Allreduce { bytes = 8 });
    ]
  in
  Array.init ranks mk_rank

(* ------------------------------------------------------------------ MG *)

let mg_program ?(codegen = Codegen.default) ~ranks ~scale () : Smpi.program =
  (* Anisotropic mini-grid: the x-dimension keeps full-scale row length
     (long unit-stride streams, as class A's 256-point rows have) while
     y/z shrink, keeping instruction counts tractable.  Only x coarsens
     across levels. *)
  let ny = max 4 (E.scaled scale 6) in
  let nz = ny in
  let nx = 24 * ny in
  let levels = 3 in
  let cycles = 1 in
  let mk_rank rank =
    let base = Workload.data_base ~rank in
    let region = E.fresh_region ~slots:48 in
    let pc = Prog.Code.pc region in
    let grid_base l = base + (l * 8 * nx * ny * nz) in
    let sweep ~level ~out_offset =
      let n = max 8 (nx lsr level) in
      let lo_z, sz_z = split nz ranks rank in
      let gb = grid_base level in
      let idx x y z = ((((z * ny) + y) * n) + x) * 8 in
      Gen.iterate sz_z (fun zi ->
          let z = lo_z + zi in
          Gen.iterate (ny - 2) (fun ym ->
              let y = ym + 1 in
              Gen.iterate (n - 2) (fun xm ->
                  let x = xm + 1 in
                  let neighbor_loads =
                    List.mapi
                      (fun j (dx, dy, dz) ->
                        let zz = max 0 (min (nz - 1) (z + dz)) in
                        let yy = max 0 (min (ny - 1) (y + dy)) in
                        E.load ~pc:(pc j) ~dst:(E.racc j) ~addr:(gb + idx (x + dx) yy zz) ())
                      [ (0, 0, 0); (-1, 0, 0); (1, 0, 0); (0, -1, 0); (0, 1, 0); (0, 0, -1); (0, 0, 1) ]
                  in
                  let arith =
                    List.init 6 (fun j ->
                        E.fp ~pc:(pc (8 + j)) ~kind:Isa.Insn.Fp_add ~dst:E.rval ~src1:E.rval
                          ~src2:(E.racc (j + 1)) ())
                    @ [ E.fp ~pc:(pc 14) ~kind:Isa.Insn.Fp_mul ~dst:E.rval ~src1:E.rval () ]
                    @ List.init
                        (Codegen.ops_at codegen ~index:xm ~base:2)
                        (fun j -> E.alu ~pc:(pc (15 + j)) ~dst:E.rtmp ~src1:E.rtmp ())
                  in
                  Gen.of_list
                    (neighbor_loads @ arith
                    @ [
                        E.store ~pc:(pc 20) ~addr:(gb + out_offset + idx x y z) ~src1:E.rval ();
                        E.alu ~pc:(pc 21) ~dst:E.rctr ~src1:E.rctr ();
                        E.branch ~pc:(pc 22) ~taken:(xm < n - 3) ~target:(pc 0) ~src1:E.rctr ();
                      ]))))
    in
    let halo ~level =
      (* Ring halo: send both boundary planes eagerly, then receive both. *)
      let n = max 8 (nx lsr level) in
      let plane_bytes = n * ny * 8 in
      let up = (rank + 1) mod ranks in
      let down = (rank + ranks - 1) mod ranks in
      if ranks = 1 then []
      else
        [
          Smpi.Comm (Smpi.Send { dst = up; bytes = plane_bytes; tag = level });
          Smpi.Comm (Smpi.Send { dst = down; bytes = plane_bytes; tag = 100 + level });
          Smpi.Comm (Smpi.Recv { src = down; bytes = plane_bytes; tag = level });
          Smpi.Comm (Smpi.Recv { src = up; bytes = plane_bytes; tag = 100 + level });
        ]
    in
    let level_pass level =
      halo ~level
      @ [ Smpi.Compute (sweep ~level ~out_offset:(4 * nx * ny * nz) ) ]
      @ halo ~level
      @ [ Smpi.Compute (sweep ~level ~out_offset:0) ]
    in
    let v_cycle =
      List.concat (List.init levels level_pass)
      @ List.concat (List.init levels (fun l -> level_pass (levels - 1 - l)))
      @ [ Smpi.Comm (Smpi.Allreduce { bytes = 8 }) ]
    in
    List.concat (List.init cycles (fun _ -> v_cycle))
  in
  Array.init ranks mk_rank

(* ------------------------------------------------------------------ apps *)

let app name description characteristics make =
  { Workload.app_name = name; app_description = description; characteristics; make }

let cg =
  app "cg" "Conjugate Gradient (mini class A)" "Memory Latency" (fun ~codegen ~ranks ~scale ->
      cg_program ~codegen ~ranks ~scale ())

let ep =
  app "ep" "Embarrassingly Parallel (mini class A)" "Compute" (fun ~codegen ~ranks ~scale ->
      ep_program ~codegen ~ranks ~scale ())

let is =
  app "is" "Integer Sort (mini class A)" "Memory Latency, BW" (fun ~codegen ~ranks ~scale ->
      is_program ~codegen ~ranks ~scale ())

let mg =
  app "mg" "Multi-Grid (mini class A)" "Memory Latency, BW" (fun ~codegen ~ranks ~scale ->
      mg_program ~codegen ~ranks ~scale ())

let all = [ cg; ep; is; mg ]

let find name =
  match List.find_opt (fun a -> a.Workload.app_name = name) all with
  | Some a -> a
  | None -> raise Not_found
