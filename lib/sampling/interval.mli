(** Interval schedule: the pure partition of instruction positions into
    detailed / warmup / warming modes implied by a {!Policy.t}'s knobs. *)

type mode =
  | Detailed  (** full timing model; contributes a CPI sample *)
  | Warmup  (** full timing model, excluded from the statistics *)
  | Warming  (** functional warming only *)

type record = {
  index : int;
  insns : int;
  cycles : int;
  mode : mode;
}

val index_of : interval:int -> int -> int
(** Interval index of instruction position [pos]. *)

val stratum_offset : detail_every:int -> int -> int
(** Offset of the detailed interval within stratum [group]: the
    golden-ratio (Weyl) sequence, equidistributed over [0, detail_every). *)

val detailed : detail_every:int -> int -> bool
(** Is interval [index] a detailed one?  Selection is stratified: exactly
    one interval per consecutive group of [detail_every], at a
    deterministic low-discrepancy offset ({!stratum_offset}) —
    proportional phase coverage without the aliasing a fixed stride
    suffers against periodic kernels.  [detail_every = 1] selects every
    interval. *)

val mode_of : interval:int -> detail_every:int -> warmup:int -> int -> mode
(** Mode of instruction position [pos]: positions in detailed intervals are
    [Detailed]; the last [warmup] positions before a detailed interval are
    [Warmup]; everything else is [Warming].  Exception: interval 0 is
    always [Warmup] — it carries the cold-start transient, which is
    simulated in detail and counted exactly but excluded from the CPI
    statistics (a systematic sample would overweight it by
    [detail_every]). *)

val mode_name : mode -> string
