(* Interval schedule: which instruction positions are simulated in which
   mode, as a pure function of the policy, so the engine, tests, and
   reports agree on the partition. *)

type mode =
  | Detailed  (** full timing model; contributes a CPI sample *)
  | Warmup  (** full timing model, excluded from the statistics *)
  | Warming  (** functional warming only *)

type record = {
  index : int;  (** interval index along the stream *)
  insns : int;
  cycles : int;  (** completion-frontier delta across the interval *)
  mode : mode;
}

let index_of ~interval pos = pos / interval

(* Detailed-interval selection is stratified: intervals are partitioned
   into consecutive groups (strata) of [detail_every] and exactly one
   interval per stratum is detailed.  The offset within each stratum
   follows the golden-ratio (Weyl) sequence frac((g+1) * phi): an
   irrational rotation equidistributes over the residues, so no periodic
   CPI structure can lock onto the sampler — a fixed stride (index mod
   detail_every = 0) meets a recursion whose CPI repeats every
   [detail_every] intervals in the same phase forever, and even random
   offsets cover a short stream's phases less evenly (O(1/sqrt n)
   discrepancy vs O(1/n) for the Weyl sequence).  The offset is a pure
   function of the stratum index, so the schedule is deterministic and
   the engine, tests, and reports agree on the partition. *)
let golden = 0.618033988749894848

let stratum_offset ~detail_every group =
  let frac = Float.rem (float_of_int (group + 1) *. golden) 1.0 in
  int_of_float (frac *. float_of_int detail_every)

let detailed ~detail_every index =
  detail_every = 1
  || index mod detail_every = stratum_offset ~detail_every (index / detail_every)

(* Position [pos] is in the warmup window when the *next* interval is
   detailed and pos lies within [warmup] instructions of its start.
   Interval 0 is always [Warmup]: it holds the measured region's
   cold-start transient (caches and queues filling), so it is simulated in
   detail and counted exactly but must not contribute a CPI sample — a
   systematic sample including it would weight the transient by
   [detail_every] instead of once. *)
let mode_of ~interval ~detail_every ~warmup pos =
  let idx = index_of ~interval pos in
  if idx = 0 then Warmup
  else if detailed ~detail_every idx then Detailed
  else
    let next_start = (idx + 1) * interval in
    if detailed ~detail_every (idx + 1) && pos >= next_start - warmup then Warmup
    else Warming

let mode_name = function
  | Detailed -> "detailed"
  | Warmup -> "warmup"
  | Warming -> "warming"
