(* Human-readable rendering of estimates for the CLI and bench output. *)

let pf = Printf.sprintf

let summary (e : Estimate.t) =
  match e.policy with
  | Policy.Full ->
    pf "full: %d cycles over %d insns (CPI %.3f)" e.est_cycles e.total_insns (Estimate.cpi e)
  | Policy.Sampled _ ->
    pf "sampled (%s): %d +- %.0f cycles over %d insns (CPI %.3f, rel CI %.2f%%, %.1f%% detailed, %d/%d intervals)%s"
      (Policy.to_string e.policy) e.est_cycles e.ci95_cycles e.total_insns (Estimate.cpi e)
      (100.0 *. Estimate.rel_ci e)
      (100.0 *. Estimate.detail_fraction e)
      e.intervals_detailed
      (e.intervals_detailed + e.intervals_warmed)
      (if e.complete then "" else " [budget-limited]")

let lines (e : Estimate.t) =
  [
    pf "policy            %s" (Policy.to_string e.policy);
    pf "insns             %d (detailed %d, warmup %d, warmed %d)" e.total_insns e.detailed_insns
      e.warmup_insns e.warmed_insns;
    pf "measured cycles   %d (+ %d warmup)" e.measured_cycles e.warmup_cycles;
    pf "estimated cycles  %d +- %.0f (95%% CI, %.2f%% rel)" e.est_cycles e.ci95_cycles
      (100.0 *. Estimate.rel_ci e);
    pf "mean CPI          %.4f (stddev %.4f over %d samples)" e.mean_cpi e.cpi_stddev
      e.intervals_detailed;
    pf "detail fraction   %.1f%%%s"
      (100.0 *. Estimate.detail_fraction e)
      (if e.complete then "" else "  [budget-limited traversal]");
  ]
