(* Sampled-vs-full comparison: the acceptance arithmetic shared by the
   bench target, the tests, and the CI smoke check. *)

type comparison = {
  full_cycles : int;
  est : Estimate.t;
  rel_err : float;  (** |est - full| / full *)
  within_ci : bool;  (** full lies inside est +- ci95 *)
}

let compare ~full_cycles est =
  let rel_err =
    if full_cycles = 0 then if est.Estimate.est_cycles = 0 then 0.0 else infinity
    else
      Float.abs (float_of_int (est.Estimate.est_cycles - full_cycles))
      /. float_of_int full_cycles
  in
  let within_ci =
    Float.abs (float_of_int (est.Estimate.est_cycles - full_cycles)) <= est.Estimate.ci95_cycles
  in
  { full_cycles; est; rel_err; within_ci }

let within_tolerance ~tol c = c.rel_err <= tol

(* Relative-speedup error between two platform estimates: how far the
   sampled CPI ratio drifts from the full-run CPI ratio.  CPI ratios are
   insensitive to traversal budgets (same stream prefix on both sides), so
   this is the figure-regeneration acceptance metric. *)
let speedup_rel_err ~full_a ~full_b est_a est_b =
  let full_ratio = float_of_int full_a /. float_of_int full_b in
  let est_ratio = Estimate.cpi est_a /. Estimate.cpi est_b in
  Float.abs (est_ratio -. full_ratio) /. full_ratio
