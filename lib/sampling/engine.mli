(** The sampled-simulation engine: drives an instruction stream through a
    core in one pass, switching between detailed timing and functional
    warming per the policy's interval schedule. *)

type core = {
  feed : Isa.Insn.t -> unit;
      (** detailed timing step (e.g. {!Uarch.Inorder.feed} via
          {!Platform.Soc.core_iface}) *)
  warm : Isa.Insn.t -> unit;
      (** functional-warming step: caches / TLBs / branch predictor only
          (e.g. {!Platform.Soc.warm_insn}) *)
  now : unit -> int;  (** completion frontier, cycles *)
}

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?budget:int ->
  policy:Policy.t ->
  core ->
  Isa.Insn.t Seq.t ->
  Estimate.t
(** [run ~policy core stream] traverses [stream], feeding each instruction
    to [core.feed] (detailed intervals and warmup windows) or [core.warm]
    (everything else), and returns the extrapolated cycle estimate.

    [budget] stops traversal at the first interval boundary at or past
    that many instructions; the estimate is then marked incomplete and its
    {!Estimate.cpi} — not its absolute cycle count — is the comparable
    figure.  With [policy = Full] the whole stream is fed in detail and
    the estimate is exact.

    When [telemetry] is a live registry, publishes ["sampling.*"] counters
    (detailed vs warmed instruction and cycle split, interval counts, and
    the achieved simulated-work speedup x100). *)

(** Trace-replay core: range-based callbacks over a compiled trace of
    [len] instructions (e.g. {!Platform.Soc.feed_trace} /
    {!Platform.Soc.warm_trace} partially applied to one trace).  Keeping
    the trace behind callbacks leaves this library independent of the
    trace representation. *)
type trace_core = {
  feed_range : lo:int -> hi:int -> unit;  (** detailed timing over [lo, hi) *)
  warm_range : lo:int -> hi:int -> unit;  (** functional warming over [lo, hi) *)
  tnow : unit -> int;  (** completion frontier, cycles *)
}

val run_trace :
  ?telemetry:Telemetry.Registry.t ->
  ?budget:int ->
  policy:Policy.t ->
  trace_core ->
  len:int ->
  Estimate.t
(** {!run} over a compiled trace of [len] instructions.  The interval
    schedule is piecewise constant in the stream position, so each
    warmup/detailed/warming segment becomes a single range call.
    Estimates — including budget rounding, per-stratum extrapolation, and
    the [complete] flag — are identical to [run] over the equivalent
    stream. *)
