type t =
  | Full
  | Sampled of {
      interval : int;
      detail_every : int;
      warmup : int;
    }

let default_sampled = Sampled { interval = 500; detail_every = 7; warmup = 500 }

(* The figure-regeneration fast path stops traversing after this many
   instructions and extrapolates from the intervals seen so far (the
   microbenchmarks are steady-state loops, so early intervals are
   representative).  Estimates produced under a budget carry
   [complete = false] and are meaningful through their CPI, not their
   absolute cycle count. *)
let default_budget = 160_000

let validate = function
  | Full -> ()
  | Sampled { interval; detail_every; warmup } ->
    if interval <= 0 then invalid_arg "Sampling.Policy: interval must be positive";
    if detail_every <= 0 then invalid_arg "Sampling.Policy: detail_every must be positive";
    if warmup < 0 then invalid_arg "Sampling.Policy: warmup must be nonnegative";
    if warmup > interval then
      invalid_arg "Sampling.Policy: warmup cannot exceed the interval length"

let to_string = function
  | Full -> "full"
  | Sampled { interval; detail_every; warmup } ->
    Printf.sprintf "interval=%d,detail=%d,warmup=%d" interval detail_every warmup

(* Spec grammar for the CLI's --sample flag:
     "full"                              exact simulation
     "default"                           the default sampled configuration
     "interval=N,detail=N,warmup=N"      explicit knobs (any subset; the
                                         rest take the default values) *)
let of_string spec =
  match String.lowercase_ascii (String.trim spec) with
  | "full" -> Ok Full
  | "default" | "sampled" -> Ok default_sampled
  | s ->
    let d_interval, d_detail, d_warmup =
      match default_sampled with
      | Sampled { interval; detail_every; warmup } -> (interval, detail_every, warmup)
      | Full -> assert false
    in
    let parse_kv acc kv =
      match acc with
      | Error _ -> acc
      | Ok (interval, detail_every, warmup) -> (
        match String.split_on_char '=' kv with
        | [ k; v ] -> (
          match (String.trim k, int_of_string_opt (String.trim v)) with
          | _, None -> Error (Printf.sprintf "bad value in %S" kv)
          | "interval", Some n -> Ok (n, detail_every, warmup)
          | ("detail" | "detail_every"), Some n -> Ok (interval, n, warmup)
          | "warmup", Some n -> Ok (interval, detail_every, n)
          | k, Some _ -> Error (Printf.sprintf "unknown key %S" k))
        | _ -> Error (Printf.sprintf "expected key=value, got %S" kv))
    in
    (match
       List.fold_left parse_kv
         (Ok (d_interval, d_detail, d_warmup))
         (String.split_on_char ',' s)
     with
    | Error e -> Error e
    | Ok (interval, detail_every, warmup) -> (
      let p = Sampled { interval; detail_every; warmup } in
      match validate p with
      | () -> Ok p
      | exception Invalid_argument e -> Error e))
