(** Rendering of {!Estimate.t} for CLI and bench output. *)

val summary : Estimate.t -> string
(** One-line summary. *)

val lines : Estimate.t -> string list
(** Multi-line breakdown (insn split, measured vs extrapolated cycles,
    CPI statistics, detail fraction). *)
