(** Sampled-simulation policy (SMARTS/SimPoint-style interval sampling).

    The measured instruction stream is cut into fixed-size intervals of
    [interval] instructions.  Every [detail_every]-th interval runs in
    {e detailed} mode — the existing {!Uarch.Inorder}/{!Uarch.Ooo} timing
    models — and contributes a CPI sample; the remaining intervals run in
    {e functional-warming} mode, which updates caches, TLBs, and branch
    predictor state but skips pipeline timing.  The last [warmup]
    instructions before each detailed interval are additionally fed through
    the detailed model (timed but excluded from the CPI statistics) so
    short-lived pipeline state is re-primed.

    [Sampled] with [detail_every = 1] degenerates to exact simulation:
    every interval is detailed, nothing is warmed or extrapolated, and the
    cycle count equals a [Full] run's bit-for-bit (tested). *)

type t =
  | Full
  | Sampled of {
      interval : int;  (** instructions per interval *)
      detail_every : int;  (** detail one interval in this many *)
      warmup : int;  (** detailed (unmeasured) insns before each detailed interval *)
    }

val default_sampled : t
(** interval = 500, detail_every = 7, warmup = 500: one interval per
    stratum of 7 simulated in detail plus a full-interval warmup window
    before it (~29% of the stream through the timing model; see
    {!Interval.detailed} for how detailed intervals are placed). *)

val default_budget : int
(** Traversal budget (instructions) used by the fast figure-regeneration
    path; see {!Engine.run}'s [budget]. *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical knob values. *)

val of_string : string -> (t, string) result
(** Parse a CLI spec: ["full"], ["default"], or
    ["interval=N,detail=N,warmup=N"] (any subset of keys). *)

val to_string : t -> string
