(* The sampled-simulation engine: one pass over the instruction stream,
   dispatching every instruction to the detailed timing model or the
   functional-warming fast path according to the policy's interval
   schedule, accumulating per-interval CPI samples as it goes. *)

type core = {
  feed : Isa.Insn.t -> unit;  (** detailed timing step *)
  warm : Isa.Insn.t -> unit;  (** functional-warming step *)
  now : unit -> int;  (** completion frontier, cycles *)
}

type trace_core = {
  feed_range : lo:int -> hi:int -> unit;  (** detailed timing over [lo, hi) *)
  warm_range : lo:int -> hi:int -> unit;  (** functional warming over [lo, hi) *)
  tnow : unit -> int;  (** completion frontier, cycles *)
}

exception Budget_reached

(* Shared by [run] and [run_trace]: per-run sampling accumulators plus the
   segment-close bookkeeping, so the two traversals cannot drift. *)
type sampled_acc = {
  stats : Util.Stats.Online.t;
  mutable detailed_insns : int;
  mutable warmup_insns : int;
  mutable warmed_insns : int;
  mutable measured_cycles : int;
  mutable warmup_cycles : int;
  mutable intervals_detailed : int;
  mutable intervals_warmed : int;
  mutable last_warmed_interval : int;
  stratum_warmed : (int, int ref) Hashtbl.t;
  stratum_cpi : (int, float) Hashtbl.t;
}

let new_acc () =
  {
    stats = Util.Stats.Online.create ();
    detailed_insns = 0;
    warmup_insns = 0;
    warmed_insns = 0;
    measured_cycles = 0;
    warmup_cycles = 0;
    intervals_detailed = 0;
    intervals_warmed = 0;
    last_warmed_interval = -1;
    stratum_warmed = Hashtbl.create 64;
    stratum_cpi = Hashtbl.create 64;
  }

(* Close a segment of [seg_insns] instructions of interval [seg_interval]
   in [seg_mode] whose detailed/warming work advanced the frontier by
   [delta] cycles. *)
let acc_close acc ~detail_every ~seg_mode ~seg_interval ~seg_insns ~delta =
  if seg_insns > 0 then begin
    match (seg_mode : Interval.mode) with
    | Interval.Detailed ->
      acc.measured_cycles <- acc.measured_cycles + delta;
      acc.intervals_detailed <- acc.intervals_detailed + 1;
      let cpi = float_of_int delta /. float_of_int seg_insns in
      Util.Stats.Online.add acc.stats cpi;
      Hashtbl.replace acc.stratum_cpi (seg_interval / detail_every) cpi
    | Interval.Warmup -> acc.warmup_cycles <- acc.warmup_cycles + delta
    | Interval.Warming -> (
      let stratum = seg_interval / detail_every in
      match Hashtbl.find_opt acc.stratum_warmed stratum with
      | Some r -> r := !r + seg_insns
      | None -> Hashtbl.add acc.stratum_warmed stratum (ref seg_insns))
  end

(* The per-stratum CPI extrapolation over the warmed instructions; strata
   whose sample never closed fall back to the global mean. *)
let acc_estimate acc ~policy ~total_insns ~complete =
  let mean_cpi =
    if Util.Stats.Online.count acc.stats = 0 then 0.0 else Util.Stats.Online.mean acc.stats
  in
  let extrapolated =
    Hashtbl.fold
      (fun stratum warmed sum ->
        let cpi =
          match Hashtbl.find_opt acc.stratum_cpi stratum with Some c -> c | None -> mean_cpi
        in
        sum +. (cpi *. float_of_int !warmed))
      acc.stratum_warmed 0.0
  in
  Estimate.of_samples ~policy ~stats:acc.stats ~extrapolated ~total_insns
    ~detailed_insns:acc.detailed_insns ~warmup_insns:acc.warmup_insns
    ~warmed_insns:acc.warmed_insns ~measured_cycles:acc.measured_cycles
    ~warmup_cycles:acc.warmup_cycles ~intervals_detailed:acc.intervals_detailed
    ~intervals_warmed:acc.intervals_warmed ~complete

let publish_telemetry telemetry est =
  if Telemetry.Registry.enabled telemetry then
    Telemetry.Registry.set_all telemetry
      [
        ("sampling.insns.total", est.Estimate.total_insns);
        ("sampling.insns.detailed", est.Estimate.detailed_insns);
        ("sampling.insns.warmup", est.Estimate.warmup_insns);
        ("sampling.insns.warmed", est.Estimate.warmed_insns);
        ("sampling.cycles.measured", est.Estimate.measured_cycles);
        ("sampling.cycles.warmup", est.Estimate.warmup_cycles);
        ("sampling.cycles.estimated", est.Estimate.est_cycles);
        ( "sampling.cycles.extrapolated",
          est.Estimate.est_cycles - est.Estimate.measured_cycles - est.Estimate.warmup_cycles );
        ("sampling.intervals.detailed", est.Estimate.intervals_detailed);
        ("sampling.intervals.warmed", est.Estimate.intervals_warmed);
        (* Simulated-work speedup: instructions covered per detailed-mode
           instruction, x100 (the wall-clock speedup this buys depends on
           the warming path's relative cost; see the bench target). *)
        ( "sampling.speedup_x100",
          let detailed = est.Estimate.detailed_insns + est.Estimate.warmup_insns in
          if detailed = 0 then 0 else est.Estimate.total_insns * 100 / detailed );
      ]

let run ?(telemetry = Telemetry.Registry.disabled) ?budget ~policy core stream =
  Policy.validate policy;
  (match budget with
  | Some b when b <= 0 -> invalid_arg "Sampling.Engine.run: budget must be positive"
  | _ -> ());
  match policy with
  | Policy.Full ->
    let c0 = core.now () in
    let n = ref 0 in
    let stop = match budget with Some b -> b | None -> max_int in
    let complete = ref true in
    (try
       Seq.iter
         (fun insn ->
           incr n;
           core.feed insn;
           if !n >= stop then begin
             complete := false;
             raise Budget_reached
           end)
         stream
     with Budget_reached -> ());
    let e = Estimate.exact ~policy ~cycles:(core.now () - c0) ~insns:!n in
    { e with Estimate.complete = !complete }
  | Policy.Sampled { interval; detail_every; warmup } ->
    let acc = new_acc () in
    let pos = ref 0 in
    (* Per-stratum accounting (a stratum = detail_every consecutive
       intervals holding one detailed sample): each stratum's warmed
       instructions are extrapolated by its own sample's CPI, so a phase
       change in the stream costs at most one stratum of error instead of
       reweighting the whole estimate.  Strata whose sample never closed
       (budget cut, stream end) fall back to the global mean. *)
    (* The schedule is piecewise constant, so the hot loop only compares the
       position against the current segment's end; the mode and boundary are
       recomputed a handful of times per interval, not per instruction.
       [seg_until] starts at 0 to force the first open_segment. *)
    let seg_mode = ref Interval.Warming in
    let seg_interval = ref (-1) in
    let seg_start = ref 0 in
    let seg_insns = ref 0 in
    let seg_until = ref 0 in
    let close_segment () =
      acc_close acc ~detail_every ~seg_mode:!seg_mode ~seg_interval:!seg_interval
        ~seg_insns:!seg_insns
        ~delta:(core.now () - !seg_start);
      seg_insns := 0
    in
    let open_segment p =
      let idx = p / interval in
      let iend = (idx + 1) * interval in
      let mode, until =
        if idx = 0 then (Interval.Warmup, iend)
        else if Interval.detailed ~detail_every idx then (Interval.Detailed, iend)
        else if Interval.detailed ~detail_every (idx + 1) then
          if p >= iend - warmup then (Interval.Warmup, iend)
          else (Interval.Warming, iend - warmup)
        else (Interval.Warming, iend)
      in
      seg_mode := mode;
      seg_interval := idx;
      seg_start := core.now ();
      seg_until := until;
      if mode = Interval.Warming && idx <> acc.last_warmed_interval then begin
        acc.last_warmed_interval <- idx;
        acc.intervals_warmed <- acc.intervals_warmed + 1
      end
    in
    (* Stop at the first interval boundary on/after the budget, so the last
       CPI sample covers a whole interval. *)
    let stop =
      match budget with
      | None -> max_int
      | Some b -> (b + interval - 1) / interval * interval
    in
    let complete = ref true in
    (try
       Seq.iter
         (fun insn ->
           if !pos >= !seg_until then begin
             close_segment ();
             open_segment !pos
           end;
           (match !seg_mode with
           | Interval.Detailed ->
             acc.detailed_insns <- acc.detailed_insns + 1;
             core.feed insn
           | Interval.Warmup ->
             acc.warmup_insns <- acc.warmup_insns + 1;
             core.feed insn
           | Interval.Warming ->
             acc.warmed_insns <- acc.warmed_insns + 1;
             core.warm insn);
           incr seg_insns;
           incr pos;
           if !pos = stop then begin
             complete := false;
             raise Budget_reached
           end)
         stream
     with Budget_reached -> ());
    close_segment ();
    let est = acc_estimate acc ~policy ~total_insns:!pos ~complete:!complete in
    publish_telemetry telemetry est;
    est

(* Trace-replay twin of [run]: the schedule is piecewise constant in the
   stream position, so over a compiled trace every segment becomes one
   [feed_range]/[warm_range] call — the per-instruction mode dispatch
   disappears along with the per-instruction allocation.  Segment
   boundaries, budget rounding, and completeness semantics replicate
   [run] exactly; the qcheck identity property in the test suite holds
   the two traversals together. *)
let run_trace ?(telemetry = Telemetry.Registry.disabled) ?budget ~policy core ~len =
  Policy.validate policy;
  if len < 0 then invalid_arg "Sampling.Engine.run_trace: negative length";
  (match budget with
  | Some b when b <= 0 -> invalid_arg "Sampling.Engine.run_trace: budget must be positive"
  | _ -> ());
  match policy with
  | Policy.Full ->
    let c0 = core.tnow () in
    let stop = match budget with Some b -> b | None -> max_int in
    (* [run] marks the estimate incomplete when traversal reaches the
       budget, even if that was exactly the last instruction. *)
    let n = if len >= stop then stop else len in
    let complete = len < stop in
    core.feed_range ~lo:0 ~hi:n;
    let e = Estimate.exact ~policy ~cycles:(core.tnow () - c0) ~insns:n in
    { e with Estimate.complete }
  | Policy.Sampled { interval; detail_every; warmup } ->
    let acc = new_acc () in
    let stop =
      match budget with
      | None -> max_int
      | Some b -> (b + interval - 1) / interval * interval
    in
    let total = if len >= stop then stop else len in
    let complete = len < stop in
    let pos = ref 0 in
    while !pos < total do
      let p = !pos in
      let idx = p / interval in
      let iend = (idx + 1) * interval in
      let mode, until =
        if idx = 0 then (Interval.Warmup, iend)
        else if Interval.detailed ~detail_every idx then (Interval.Detailed, iend)
        else if Interval.detailed ~detail_every (idx + 1) then
          if p >= iend - warmup then (Interval.Warmup, iend)
          else (Interval.Warming, iend - warmup)
        else (Interval.Warming, iend)
      in
      if mode = Interval.Warming && idx <> acc.last_warmed_interval then begin
        acc.last_warmed_interval <- idx;
        acc.intervals_warmed <- acc.intervals_warmed + 1
      end;
      let seg_end = if until > total then total else until in
      let count = seg_end - p in
      let c0 = core.tnow () in
      (match mode with
      | Interval.Detailed ->
        acc.detailed_insns <- acc.detailed_insns + count;
        core.feed_range ~lo:p ~hi:seg_end
      | Interval.Warmup ->
        acc.warmup_insns <- acc.warmup_insns + count;
        core.feed_range ~lo:p ~hi:seg_end
      | Interval.Warming ->
        acc.warmed_insns <- acc.warmed_insns + count;
        core.warm_range ~lo:p ~hi:seg_end);
      acc_close acc ~detail_every ~seg_mode:mode ~seg_interval:idx ~seg_insns:count
        ~delta:(core.tnow () - c0);
      pos := seg_end
    done;
    let est = acc_estimate acc ~policy ~total_insns:total ~complete in
    publish_telemetry telemetry est;
    est
