(* The sampled-simulation engine: one pass over the instruction stream,
   dispatching every instruction to the detailed timing model or the
   functional-warming fast path according to the policy's interval
   schedule, accumulating per-interval CPI samples as it goes. *)

type core = {
  feed : Isa.Insn.t -> unit;  (** detailed timing step *)
  warm : Isa.Insn.t -> unit;  (** functional-warming step *)
  now : unit -> int;  (** completion frontier, cycles *)
}

exception Budget_reached

let run ?(telemetry = Telemetry.Registry.disabled) ?budget ~policy core stream =
  Policy.validate policy;
  (match budget with
  | Some b when b <= 0 -> invalid_arg "Sampling.Engine.run: budget must be positive"
  | _ -> ());
  match policy with
  | Policy.Full ->
    let c0 = core.now () in
    let n = ref 0 in
    let stop = match budget with Some b -> b | None -> max_int in
    let complete = ref true in
    (try
       Seq.iter
         (fun insn ->
           incr n;
           core.feed insn;
           if !n >= stop then begin
             complete := false;
             raise Budget_reached
           end)
         stream
     with Budget_reached -> ());
    let e = Estimate.exact ~policy ~cycles:(core.now () - c0) ~insns:!n in
    { e with Estimate.complete = !complete }
  | Policy.Sampled { interval; detail_every; warmup } ->
    let stats = Util.Stats.Online.create () in
    let pos = ref 0 in
    let detailed_insns = ref 0 and warmup_insns = ref 0 and warmed_insns = ref 0 in
    let measured_cycles = ref 0 and warmup_cycles = ref 0 in
    let intervals_detailed = ref 0 and intervals_warmed = ref 0 in
    let last_warmed_interval = ref (-1) in
    (* Per-stratum accounting (a stratum = detail_every consecutive
       intervals holding one detailed sample): each stratum's warmed
       instructions are extrapolated by its own sample's CPI, so a phase
       change in the stream costs at most one stratum of error instead of
       reweighting the whole estimate.  Strata whose sample never closed
       (budget cut, stream end) fall back to the global mean. *)
    let stratum_warmed : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
    let stratum_cpi : (int, float) Hashtbl.t = Hashtbl.create 64 in
    (* The schedule is piecewise constant, so the hot loop only compares the
       position against the current segment's end; the mode and boundary are
       recomputed a handful of times per interval, not per instruction.
       [seg_until] starts at 0 to force the first open_segment. *)
    let seg_mode = ref Interval.Warming in
    let seg_interval = ref (-1) in
    let seg_start = ref 0 in
    let seg_insns = ref 0 in
    let seg_until = ref 0 in
    let close_segment () =
      if !seg_insns > 0 then begin
        let delta = core.now () - !seg_start in
        match !seg_mode with
        | Interval.Detailed ->
          measured_cycles := !measured_cycles + delta;
          incr intervals_detailed;
          let cpi = float_of_int delta /. float_of_int !seg_insns in
          Util.Stats.Online.add stats cpi;
          Hashtbl.replace stratum_cpi (!seg_interval / detail_every) cpi
        | Interval.Warmup -> warmup_cycles := !warmup_cycles + delta
        | Interval.Warming -> (
          let stratum = !seg_interval / detail_every in
          match Hashtbl.find_opt stratum_warmed stratum with
          | Some r -> r := !r + !seg_insns
          | None -> Hashtbl.add stratum_warmed stratum (ref !seg_insns))
      end;
      seg_insns := 0
    in
    let open_segment p =
      let idx = p / interval in
      let iend = (idx + 1) * interval in
      let mode, until =
        if idx = 0 then (Interval.Warmup, iend)
        else if Interval.detailed ~detail_every idx then (Interval.Detailed, iend)
        else if Interval.detailed ~detail_every (idx + 1) then
          if p >= iend - warmup then (Interval.Warmup, iend)
          else (Interval.Warming, iend - warmup)
        else (Interval.Warming, iend)
      in
      seg_mode := mode;
      seg_interval := idx;
      seg_start := core.now ();
      seg_until := until;
      if mode = Interval.Warming && idx <> !last_warmed_interval then begin
        last_warmed_interval := idx;
        incr intervals_warmed
      end
    in
    (* Stop at the first interval boundary on/after the budget, so the last
       CPI sample covers a whole interval. *)
    let stop =
      match budget with
      | None -> max_int
      | Some b -> (b + interval - 1) / interval * interval
    in
    let complete = ref true in
    (try
       Seq.iter
         (fun insn ->
           if !pos >= !seg_until then begin
             close_segment ();
             open_segment !pos
           end;
           (match !seg_mode with
           | Interval.Detailed ->
             incr detailed_insns;
             core.feed insn
           | Interval.Warmup ->
             incr warmup_insns;
             core.feed insn
           | Interval.Warming ->
             incr warmed_insns;
             core.warm insn);
           incr seg_insns;
           incr pos;
           if !pos = stop then begin
             complete := false;
             raise Budget_reached
           end)
         stream
     with Budget_reached -> ());
    close_segment ();
    let mean_cpi =
      if Util.Stats.Online.count stats = 0 then 0.0 else Util.Stats.Online.mean stats
    in
    let extrapolated =
      Hashtbl.fold
        (fun stratum warmed acc ->
          let cpi =
            match Hashtbl.find_opt stratum_cpi stratum with
            | Some c -> c
            | None -> mean_cpi
          in
          acc +. (cpi *. float_of_int !warmed))
        stratum_warmed 0.0
    in
    let est =
      Estimate.of_samples ~policy ~stats ~extrapolated ~total_insns:!pos
        ~detailed_insns:!detailed_insns ~warmup_insns:!warmup_insns ~warmed_insns:!warmed_insns
        ~measured_cycles:!measured_cycles ~warmup_cycles:!warmup_cycles
        ~intervals_detailed:!intervals_detailed ~intervals_warmed:!intervals_warmed
        ~complete:!complete
    in
    if Telemetry.Registry.enabled telemetry then
      Telemetry.Registry.set_all telemetry
        [
          ("sampling.insns.total", est.Estimate.total_insns);
          ("sampling.insns.detailed", est.Estimate.detailed_insns);
          ("sampling.insns.warmup", est.Estimate.warmup_insns);
          ("sampling.insns.warmed", est.Estimate.warmed_insns);
          ("sampling.cycles.measured", est.Estimate.measured_cycles);
          ("sampling.cycles.warmup", est.Estimate.warmup_cycles);
          ("sampling.cycles.estimated", est.Estimate.est_cycles);
          ( "sampling.cycles.extrapolated",
            est.Estimate.est_cycles - est.Estimate.measured_cycles - est.Estimate.warmup_cycles );
          ("sampling.intervals.detailed", est.Estimate.intervals_detailed);
          ("sampling.intervals.warmed", est.Estimate.intervals_warmed);
          (* Simulated-work speedup: instructions covered per detailed-mode
             instruction, x100 (the wall-clock speedup this buys depends on
             the warming path's relative cost; see the bench target). *)
          ( "sampling.speedup_x100",
            let detailed = est.Estimate.detailed_insns + est.Estimate.warmup_insns in
            if detailed = 0 then 0 else est.Estimate.total_insns * 100 / detailed );
        ];
    est
