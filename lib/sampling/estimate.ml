type t = {
  policy : Policy.t;
  total_insns : int;
  detailed_insns : int;
  warmup_insns : int;
  warmed_insns : int;
  measured_cycles : int;
  warmup_cycles : int;
  intervals_detailed : int;
  intervals_warmed : int;
  mean_cpi : float;
  cpi_stddev : float;
  est_cycles : int;
  ci95_cycles : float;
  complete : bool;
}

(* Two-sided 95% normal quantile; detailed-interval counts are large
   enough (>= ~10) that the normal approximation is the standard choice
   (SMARTS uses the same construction). *)
let z95 = 1.96

let of_samples ~policy ~stats ~extrapolated ~total_insns ~detailed_insns ~warmup_insns
    ~warmed_insns ~measured_cycles ~warmup_cycles ~intervals_detailed ~intervals_warmed ~complete
    =
  let n = Util.Stats.Online.count stats in
  let mean_cpi = if n = 0 then 0.0 else Util.Stats.Online.mean stats in
  let cpi_stddev = if n = 0 then 0.0 else Util.Stats.Online.stddev stats in
  (* Exactly measured cycles (detailed + warmup windows) plus the
     caller's extrapolation over the functionally warmed population.
     With detail_every = 1 nothing is warmed and the estimate is exact. *)
  let est_cycles = measured_cycles + warmup_cycles + int_of_float (Float.round extrapolated) in
  (* The error is confined to the extrapolated term: the standard error of
     the mean CPI scales the warmed instruction count. *)
  let ci95_cycles =
    if n <= 1 || warmed_insns = 0 then 0.0
    else z95 *. (cpi_stddev /. sqrt (float_of_int n)) *. float_of_int warmed_insns
  in
  {
    policy;
    total_insns;
    detailed_insns;
    warmup_insns;
    warmed_insns;
    measured_cycles;
    warmup_cycles;
    intervals_detailed;
    intervals_warmed;
    mean_cpi;
    cpi_stddev;
    est_cycles;
    ci95_cycles;
    complete;
  }

let exact ~policy ~cycles ~insns =
  {
    policy;
    total_insns = insns;
    detailed_insns = insns;
    warmup_insns = 0;
    warmed_insns = 0;
    measured_cycles = cycles;
    warmup_cycles = 0;
    intervals_detailed = (if insns = 0 then 0 else 1);
    intervals_warmed = 0;
    mean_cpi = (if cycles = 0 || insns = 0 then 0.0 else float_of_int cycles /. float_of_int insns);
    cpi_stddev = 0.0;
    est_cycles = cycles;
    ci95_cycles = 0.0;
    complete = true;
  }

let memoized ~policy ~total_insns ~measured_insns ~ff_insns ~measured_cycles ~est_cycles ~bound =
  {
    policy;
    total_insns;
    detailed_insns = measured_insns;
    warmup_insns = 0;
    warmed_insns = ff_insns;
    measured_cycles;
    warmup_cycles = 0;
    intervals_detailed = (if measured_insns = 0 then 0 else 1);
    intervals_warmed = (if ff_insns = 0 then 0 else 1);
    mean_cpi =
      (if measured_cycles = 0 || measured_insns = 0 then 0.0
       else float_of_int measured_cycles /. float_of_int measured_insns);
    cpi_stddev = 0.0;
    est_cycles;
    ci95_cycles = bound;
    complete = true;
  }

let cpi t =
  if t.total_insns = 0 then 0.0 else float_of_int t.est_cycles /. float_of_int t.total_insns

let seconds ~freq_hz t = float_of_int t.est_cycles /. freq_hz

let rel_ci t = if t.est_cycles = 0 then 0.0 else t.ci95_cycles /. float_of_int t.est_cycles

let detail_fraction t =
  if t.total_insns = 0 then 1.0
  else float_of_int (t.detailed_insns + t.warmup_insns) /. float_of_int t.total_insns
