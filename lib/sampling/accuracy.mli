(** Sampled-vs-full accuracy arithmetic, shared by the bench target, the
    tests, and the CI smoke check. *)

type comparison = {
  full_cycles : int;  (** reference full-run cycle count *)
  est : Estimate.t;
  rel_err : float;  (** |est_cycles - full_cycles| / full_cycles *)
  within_ci : bool;  (** full_cycles lies inside est +- ci95 *)
}

val compare : full_cycles:int -> Estimate.t -> comparison

val within_tolerance : tol:float -> comparison -> bool
(** [rel_err <= tol]. *)

val speedup_rel_err : full_a:int -> full_b:int -> Estimate.t -> Estimate.t -> float
(** Relative error of the estimated platform-A/platform-B CPI ratio
    against the full-run cycle ratio [full_a /. full_b] over the same
    stream.  Both estimates must cover the same stream prefix. *)
