(** Error-bounded cycle estimates from interval samples.

    The estimate decomposes the traversed stream into exactly measured
    cycles (detailed intervals plus warmup windows) and an extrapolated
    term covering the functionally warmed instructions (the engine
    extrapolates each stratum's warmed population by its own detailed
    sample's CPI; see {!Engine.run}).  The 95% confidence interval covers
    the extrapolated term only — the measured part carries no sampling
    error. *)

type t = {
  policy : Policy.t;
  total_insns : int;  (** instructions traversed (= stream length when [complete]) *)
  detailed_insns : int;  (** measured in detailed intervals *)
  warmup_insns : int;  (** detailed-mode but excluded from the statistics *)
  warmed_insns : int;  (** functional warming only *)
  measured_cycles : int;  (** frontier delta across detailed intervals *)
  warmup_cycles : int;  (** frontier delta across warmup windows *)
  intervals_detailed : int;
  intervals_warmed : int;
  mean_cpi : float;  (** mean of per-interval CPI samples *)
  cpi_stddev : float;  (** population stddev of per-interval CPI samples *)
  est_cycles : int;  (** measured + warmup + extrapolated warmed cycles *)
  ci95_cycles : float;  (** +- cycles at 95% confidence *)
  complete : bool;  (** false when an engine budget stopped traversal early *)
}

val of_samples :
  policy:Policy.t ->
  stats:Util.Stats.Online.t ->
  extrapolated:float ->
  total_insns:int ->
  detailed_insns:int ->
  warmup_insns:int ->
  warmed_insns:int ->
  measured_cycles:int ->
  warmup_cycles:int ->
  intervals_detailed:int ->
  intervals_warmed:int ->
  complete:bool ->
  t

val exact : policy:Policy.t -> cycles:int -> insns:int -> t
(** The degenerate estimate of a full (exact) run: no extrapolation, zero
    confidence interval. *)

val memoized :
  policy:Policy.t ->
  total_insns:int ->
  measured_insns:int ->
  ff_insns:int ->
  measured_cycles:int ->
  est_cycles:int ->
  bound:float ->
  t
(** The estimate of a block-memoized replay: every instruction was either
    simulated in detail ([measured_insns], reported as detailed) or
    fast-forwarded through a memoized block cost ([ff_insns], reported as
    warmed).  [bound] is the memo layer's declared error bound, carried
    as [ci95_cycles] so downstream accuracy reporting treats the fast
    path like any other approximate estimate. *)

val cpi : t -> float
(** Estimated overall CPI of the traversed region ([est_cycles] /
    [total_insns]).  For budget-limited (incomplete) estimates this is the
    figure of merit: relative speedups computed from CPI ratios are
    independent of the unseen stream tail. *)

val seconds : freq_hz:float -> t -> float
(** Estimated target time. *)

val rel_ci : t -> float
(** [ci95_cycles] relative to the estimate (0 when exact). *)

val detail_fraction : t -> float
(** Fraction of traversed instructions that ran through the detailed
    timing model (detailed + warmup). *)
