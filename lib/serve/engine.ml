module J = Validate.Jsonx
module Reg = Telemetry.Registry
module Runner = Simbridge.Runner
module Experiments = Simbridge.Experiments

let num_i n = J.Num (float_of_int n)

(* What one computation left behind, cached alongside its payload so a
   response served from the LRU can still carry the phase breakdown of
   the run that produced it. *)
type entry = {
  en_payload : string;
  en_wall_s : float;
  en_phases : Ledger.Run_report.phase_row list;
  en_tc : Runner.trace_cache_stats;  (* delta over this computation *)
  en_span : string;
}

type t = {
  e_jobs : int option;
  e_engine : Runner.engine;
  e_reg : Reg.t;
  e_cache_cap : int;
  e_started_s : float;
  e_mutex : Mutex.t;  (* guards the LRU and the counters below *)
  mutable e_cache : (string * entry) list;  (* MRU first *)
  mutable e_seq : int;
  mutable e_batches : int;
  mutable e_requests : int;
  mutable e_computed : int;
  mutable e_coalesced : int;
  mutable e_cached : int;
  mutable e_inline : int;
  mutable e_errors : int;
}

type pending = { p_req : Protocol.request; p_enqueued_s : float }

let create ?jobs ?(engine : Runner.engine = `Trace) ?(response_cache_capacity = 64)
    ?(telemetry = Reg.disabled) () =
  let jobs = match jobs with Some 0 | None -> None | Some j -> Some j in
  (* A memoized daemon shares block costs for its whole lifetime, exactly
     like the trace cache: later requests inherit measured costs and skip
     straight to fast-forwarding. *)
  if engine = `Memo then Runner.enable_memo_sharing ();
  {
    e_jobs = jobs;
    e_engine = engine;
    e_reg = telemetry;
    e_cache_cap = response_cache_capacity;
    e_started_s = Unix.gettimeofday ();
    e_mutex = Mutex.create ();
    e_cache = [];
    e_seq = 0;
    e_batches = 0;
    e_requests = 0;
    e_computed = 0;
    e_coalesced = 0;
    e_cached = 0;
    e_inline = 0;
    e_errors = 0;
  }

(* ------------------------------------------------------- response LRU *)

let cache_find t key =
  Mutex.protect t.e_mutex (fun () ->
      match List.assoc_opt key t.e_cache with
      | None -> None
      | Some e ->
        t.e_cache <- (key, e) :: List.filter (fun (k, _) -> k <> key) t.e_cache;
        Some e)

let cache_add t key e =
  if t.e_cache_cap > 0 then
    Mutex.protect t.e_mutex (fun () ->
        let rest = List.filter (fun (k, _) -> k <> key) t.e_cache in
        let rest = List.filteri (fun i _ -> i < t.e_cache_cap - 1) rest in
        t.e_cache <- (key, e) :: rest)

(* -------------------------------------------------------- computations *)

let unknown_figure figure =
  Printf.sprintf "unknown figure %S (known: %s)" figure (String.concat ", " Experiments.figure_ids)

let lookup_cell platform kernel =
  match Platform.Catalog.find platform with
  | exception Not_found ->
    Error (Printf.sprintf "unknown platform %S (see `simbridge platforms`)" platform)
  | cfg -> (
    match Workloads.Microbench.find kernel with
    | exception Not_found ->
      Error (Printf.sprintf "unknown kernel %S (see `simbridge experiments`)" kernel)
    | k -> Ok (cfg, k))

let figure_payload fmt fig =
  match fmt with `Csv -> Experiments.figure_csv fig | `Render -> Experiments.render_figure fig

let cell_payload (cfg : Platform.Config.t) (k : Workloads.Workload.kernel) scale
    (timed : Runner.timed) =
  let r = timed.Runner.result in
  Printf.sprintf "platform,kernel,scale,cycles,instructions,target_seconds\n%s,%s,%g,%d,%d,%.9g\n"
    cfg.Platform.Config.name k.Workloads.Workload.name scale r.Platform.Soc.cycles
    r.Platform.Soc.instructions r.Platform.Soc.seconds

(* Run [f] against a private forked sink under a fresh span, returning
   its result plus the computation metadata (wall, phases, trace-cache
   delta, span id).  The sink is merged into the daemon registry
   whether or not [f] raises, so partial telemetry is never lost. *)
let with_sink t ~batch_span ~name f =
  let seq = t.e_seq in
  t.e_seq <- seq + 1;
  let sink = Reg.fork ~ns:(Printf.sprintf "q%d." seq) ~span_parent:batch_span t.e_reg in
  let tc0 = Runner.trace_cache_stats () in
  let w0 = Unix.gettimeofday () in
  let sp = Reg.span_start sink ~root:true name in
  let res = try Ok (f sink) with exn -> Error (Printexc.to_string exn) in
  Reg.span_end sink sp ();
  let w1 = Unix.gettimeofday () in
  let tc1 = Runner.trace_cache_stats () in
  let phases = Ledger.Run_report.phase_breakdown sink in
  Reg.merge ~into:t.e_reg sink;
  let meta =
    {
      en_payload = "";
      en_wall_s = w1 -. w0;
      en_phases = phases;
      en_tc =
        Runner.
          {
            tc_hits = tc1.tc_hits - tc0.tc_hits;
            tc_misses = tc1.tc_misses - tc0.tc_misses;
            tc_evictions = tc1.tc_evictions - tc0.tc_evictions;
          };
      en_span = Reg.span_id sp;
    }
  in
  (res, meta)

(* ------------------------------------------------------------- reports *)

let report_schema = "simbridge-serve-report/1"

let request_report ~rq_id ?key ~served ~queue_wait_s ?entry () =
  let base =
    [
      ("schema", J.Str report_schema);
      ("request", J.Str rq_id);
      ("served", J.Str served);
      ("queue_wait_s", J.Num queue_wait_s);
    ]
  in
  let keyf = match key with Some k -> [ ("key", J.Str k) ] | None -> [] in
  let comp =
    match entry with
    | None -> []
    | Some e ->
      [
        ("compute_wall_s", J.Num e.en_wall_s);
        ("span", J.Str e.en_span);
        ( "phases",
          J.Arr
            (List.map
               (fun (p : Ledger.Run_report.phase_row) ->
                 J.Obj
                   [
                     ("name", J.Str p.pr_name);
                     ("count", num_i p.pr_count);
                     ("target_cycles", num_i p.pr_target_cycles);
                     ("wall_s", J.Num p.pr_wall_s);
                   ])
               e.en_phases) );
        ( "trace_cache",
          J.Obj
            [
              ("hits", num_i e.en_tc.tc_hits);
              ("misses", num_i e.en_tc.tc_misses);
              ("evictions", num_i e.en_tc.tc_evictions);
            ] );
      ]
  in
  J.Obj (base @ keyf @ comp)

let stats_json t =
  let tc = Runner.trace_cache_stats () in
  let uptime = Unix.gettimeofday () -. t.e_started_s in
  Mutex.protect t.e_mutex (fun () ->
      J.Obj
        [
          ("schema", J.Str "simbridge-serve-stats/1");
          ("uptime_s", J.Num uptime);
          ("batches", num_i t.e_batches);
          ("requests", num_i t.e_requests);
          ("computed", num_i t.e_computed);
          ("coalesced", num_i t.e_coalesced);
          ("cached", num_i t.e_cached);
          ("inline", num_i t.e_inline);
          ("errors", num_i t.e_errors);
          ( "response_cache",
            J.Obj
              [ ("size", num_i (List.length t.e_cache)); ("capacity", num_i t.e_cache_cap) ] );
          ( "trace_cache",
            J.Obj
              [
                ("hits", num_i tc.tc_hits);
                ("misses", num_i tc.tc_misses);
                ("evictions", num_i tc.tc_evictions);
              ] );
          ("jobs", (match t.e_jobs with None -> J.Null | Some j -> num_i j));
          ( "engine",
            J.Str (match t.e_engine with `Trace -> "trace" | `Seq -> "seq" | `Memo -> "memo") );
          ( "memo_table",
            match Runner.memo_table_stats () with
            | None -> J.Null
            | Some (entries, seeded, merged) ->
              J.Obj
                [
                  ("entries", num_i entries); ("seeded", num_i seeded); ("merged", num_i merged);
                ] );
        ])

let requests_served t = Mutex.protect t.e_mutex (fun () -> t.e_requests)

(* ------------------------------------------------------------- execute *)

(* A batch runs in three passes: (1) dedup [Run] requests by canonical
   key and satisfy what the response LRU already holds; (2) compute the
   remainder — figures one computation each, cells coalesced into one
   pool dispatch per scale; (3) answer every pending in arrival order.
   Only this function writes [t.e_reg]; the server calls it from its
   single dispatcher thread. *)
let execute t pendings =
  let dispatch_s = Unix.gettimeofday () in
  let bsp = Reg.span_start t.e_reg ~root:true "serve:batch" in
  let batch_span = Reg.span_id bsp in
  (* pass 1: unique keys in first-arrival order *)
  let first = Hashtbl.create 16 in
  let uniq = ref [] in
  List.iteri
    (fun i p ->
      match p.p_req.Protocol.rq_op with
      | Protocol.Run q ->
        let key = Protocol.query_key q in
        if not (Hashtbl.mem first key) then begin
          Hashtbl.add first key i;
          uniq := (key, q) :: !uniq
        end
      | _ -> ())
    pendings;
  let uniq = List.rev !uniq in
  let resolved : (string, (entry, string) result) Hashtbl.t = Hashtbl.create 16 in
  let from_cache = Hashtbl.create 16 in
  let to_compute =
    List.filter
      (fun (key, _) ->
        match cache_find t key with
        | Some e ->
          Hashtbl.replace resolved key (Ok e);
          Hashtbl.replace from_cache key ();
          false
        | None -> true)
      uniq
  in
  (* validate, splitting figure computations from coalescable cells *)
  let figures = ref [] and cells = ref [] in
  List.iter
    (fun (key, q) ->
      match q with
      | Protocol.Figure { fmt; figure; scale } ->
        if List.mem figure Experiments.figure_ids then
          figures := (key, fmt, figure, scale) :: !figures
        else Hashtbl.replace resolved key (Error (unknown_figure figure))
      | Protocol.Cell { platform; kernel; scale } -> (
        match lookup_cell platform kernel with
        | Ok (cfg, k) -> cells := (key, cfg, k, scale) :: !cells
        | Error msg -> Hashtbl.replace resolved key (Error msg)))
    to_compute;
  let figures = List.rev !figures and cells = List.rev !cells in
  (* pass 2a: figures, one computation per unique key *)
  List.iter
    (fun (key, fmt, figure, scale) ->
      let res, meta =
        with_sink t ~batch_span ~name:("compute:" ^ key) (fun sink ->
            match
              Experiments.figure_by_id ?jobs:t.e_jobs ~scale ~engine:t.e_engine ~telemetry:sink
                figure
            with
            | Some fig -> figure_payload fmt fig
            | None -> failwith (unknown_figure figure))
      in
      match res with
      | Ok payload ->
        let e = { meta with en_payload = payload } in
        Hashtbl.replace resolved key (Ok e);
        cache_add t key e
      | Error msg -> Hashtbl.replace resolved key (Error ("computation failed: " ^ msg)))
    figures;
  (* pass 2b: cells, one pool dispatch per scale *)
  let scales =
    List.fold_left
      (fun acc (_, _, _, scale) -> if List.mem scale acc then acc else scale :: acc)
      [] cells
    |> List.rev
  in
  List.iter
    (fun scale ->
      let group = List.filter (fun (_, _, _, s) -> s = scale) cells in
      let res, meta =
        with_sink t ~batch_span ~name:(Printf.sprintf "compute:cells@%h" scale) (fun sink ->
            let grid = List.map (fun (_, cfg, k, _) -> (cfg, k)) group in
            Runner.run_kernel_grid ?jobs:t.e_jobs ~scale ~engine:t.e_engine ~telemetry:sink grid)
      in
      match res with
      | Ok timeds ->
        List.iter2
          (fun (key, cfg, k, _) timed ->
            let e = { meta with en_payload = cell_payload cfg k scale timed } in
            Hashtbl.replace resolved key (Ok e);
            cache_add t key e)
          group timeds
      | Error msg ->
        List.iter
          (fun (key, _, _, _) ->
            Hashtbl.replace resolved key (Error ("computation failed: " ^ msg)))
          group)
    scales;
  (* pass 3: answer in arrival order *)
  let computed = ref 0 and coalesced = ref 0 and cached = ref 0 in
  let inline = ref 0 and errors = ref 0 in
  let responses =
    List.mapi
      (fun i p ->
        let rq = p.p_req in
        let queue_wait_s = Float.max 0.0 (dispatch_s -. p.p_enqueued_s) in
        let inline_ok payload =
          incr inline;
          Ok (payload, request_report ~rq_id:rq.Protocol.rq_id ~served:"inline" ~queue_wait_s ())
        in
        let rs_result =
          match rq.Protocol.rq_op with
          | Protocol.Ping -> inline_ok "pong"
          | Protocol.Stats -> inline_ok (J.to_string ~indent:2 (stats_json t) ^ "\n")
          | Protocol.Shutdown -> inline_ok "draining"
          | Protocol.Run q -> (
            let key = Protocol.query_key q in
            match Hashtbl.find resolved key with
            | Error msg ->
              incr errors;
              Error msg
            | Ok e ->
              let served =
                if Hashtbl.find first key <> i then begin
                  incr coalesced;
                  "coalesced"
                end
                else if Hashtbl.mem from_cache key then begin
                  incr cached;
                  "cached"
                end
                else begin
                  incr computed;
                  "computed"
                end
              in
              Ok
                ( e.en_payload,
                  request_report ~rq_id:rq.Protocol.rq_id ~key ~served ~queue_wait_s ~entry:e ()
                ))
        in
        Protocol.{ rs_id = rq.rq_id; rs_result })
      pendings
  in
  Reg.span_end t.e_reg bsp ();
  Mutex.protect t.e_mutex (fun () ->
      t.e_batches <- t.e_batches + 1;
      t.e_requests <- t.e_requests + List.length pendings;
      t.e_computed <- t.e_computed + !computed;
      t.e_coalesced <- t.e_coalesced + !coalesced;
      t.e_cached <- t.e_cached + !cached;
      t.e_inline <- t.e_inline + !inline;
      t.e_errors <- t.e_errors + !errors);
  responses

(* -------------------------------------------------------------- oracle *)

let oracle (q : Protocol.query) =
  match q with
  | Protocol.Figure { fmt; figure; scale } -> (
    match Experiments.figure_by_id ~scale ~jobs:1 figure with
    | Some fig -> Ok (figure_payload fmt fig)
    | None -> Error (unknown_figure figure))
  | Protocol.Cell { platform; kernel; scale } -> (
    match lookup_cell platform kernel with
    | Error msg -> Error msg
    | Ok (cfg, k) -> (
      match Runner.run_kernel_grid ~scale ~jobs:1 [ (cfg, k) ] with
      | [ timed ] -> Ok (cell_payload cfg k scale timed)
      | _ -> Error "internal: grid arity mismatch"))
