type conn = {
  c_fd : Unix.file_descr;
  c_mutex : Mutex.t;  (* serializes writes and the lifecycle fields *)
  mutable c_outstanding : int;  (* queued requests awaiting their response *)
  mutable c_eof : bool;  (* reader saw EOF; close once outstanding drains *)
  mutable c_closed : bool;
}

type t = {
  s_listen : Unix.file_descr;
  s_addr : Protocol.addr;
  s_engine : Engine.t;
  s_queue : (conn * Engine.pending) Parallel.Jobq.t;
  s_stop : bool Atomic.t;
  s_max_batch : int;
  s_conns_mutex : Mutex.t;
  mutable s_conns : conn list;
  mutable s_readers : Thread.t list;
}

(* ---------------------------------------------------------- connection *)

let really_write fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let close_locked c =
  if not c.c_closed then begin
    c.c_closed <- true;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

(* The no-partial-frame guarantee: the frame arrives fully serialized
   (terminator included) and goes out in one locked write loop, so two
   threads' responses never interleave and a line is either fully
   written or not written at all. *)
let conn_write c line =
  Mutex.protect c.c_mutex (fun () ->
      if not c.c_closed then
        try really_write c.c_fd line
        with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> ())

let conn_finish_one c =
  Mutex.protect c.c_mutex (fun () ->
      c.c_outstanding <- c.c_outstanding - 1;
      if c.c_eof && c.c_outstanding = 0 then close_locked c)

let conn_mark_eof c =
  Mutex.protect c.c_mutex (fun () ->
      c.c_eof <- true;
      if c.c_outstanding = 0 then close_locked c)

let send_response c resp = conn_write c (Protocol.print_response resp ^ "\n")

(* -------------------------------------------------------------- reader *)

let handle_line t c line =
  match Protocol.parse_request line with
  | Error msg -> send_response c Protocol.{ rs_id = ""; rs_result = Error msg }
  | Ok req ->
    Mutex.protect c.c_mutex (fun () -> c.c_outstanding <- c.c_outstanding + 1);
    let pending = Engine.{ p_req = req; p_enqueued_s = Unix.gettimeofday () } in
    if Parallel.Jobq.push t.s_queue (c, pending) then begin
      (* stop only after the frame is queued, so the shutdown request
         itself drains through the dispatcher and gets its response *)
      match req.Protocol.rq_op with
      | Protocol.Shutdown -> Atomic.set t.s_stop true
      | _ -> ()
    end
    else begin
      send_response c
        Protocol.{ rs_id = req.rq_id; rs_result = Error "server is draining; request rejected" };
      conn_finish_one c
    end

let reader t c =
  let ic = Unix.in_channel_of_descr c.c_fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | line ->
      if String.trim line <> "" then handle_line t c line;
      loop ()
  in
  loop ();
  conn_mark_eof c

(* ---------------------------------------------------------- dispatcher *)

let rec chunk n = function
  | [] -> []
  | items ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let head, rest = take n [] items in
    head :: chunk n rest

let dispatch_chunk t items =
  match Engine.execute t.s_engine (List.map snd items) with
  | responses ->
    List.iter2
      (fun (c, _) resp ->
        send_response c resp;
        conn_finish_one c)
      items responses
  | exception exn ->
    (* Engine.execute converts per-request failures itself; this is the
       backstop that keeps the dispatcher alive if it ever throws. *)
    let msg = "internal error: " ^ Printexc.to_string exn in
    List.iter
      (fun (c, p) ->
        send_response c
          Protocol.{ rs_id = p.Engine.p_req.Protocol.rq_id; rs_result = Error msg };
        conn_finish_one c)
      items

let dispatcher t =
  let rec loop () =
    match Parallel.Jobq.pop_batch t.s_queue with
    | [] -> ()  (* queue closed and fully drained *)
    | batch ->
      List.iter (dispatch_chunk t) (chunk t.s_max_batch batch);
      loop ()
  in
  loop ()

(* --------------------------------------------------------------- setup *)

let bind_listen addr =
  match addr with
  | `Unix path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let ip =
      if host = "" || host = "*" then Unix.inet_addr_any
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
    in
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (ip, port));
    Unix.listen fd 64;
    fd

let create ?jobs ?engine ?response_cache_capacity ?(max_batch = 64) ?telemetry addr =
  (* a client closing mid-response must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = bind_listen addr in
  {
    s_listen = listen_fd;
    s_addr = addr;
    s_engine = Engine.create ?jobs ?engine ?response_cache_capacity ?telemetry ();
    s_queue = Parallel.Jobq.create ();
    s_stop = Atomic.make false;
    s_max_batch = max_batch;
    s_conns_mutex = Mutex.create ();
    s_conns = [];
    s_readers = [];
  }

let engine t = t.s_engine
let stop t = Atomic.set t.s_stop true
let stopped t = Atomic.get t.s_stop

let spawn_reader t fd =
  let c =
    { c_fd = fd; c_mutex = Mutex.create (); c_outstanding = 0; c_eof = false; c_closed = false }
  in
  let th = Thread.create (fun () -> reader t c) () in
  Mutex.protect t.s_conns_mutex (fun () ->
      t.s_conns <- c :: t.s_conns;
      t.s_readers <- th :: t.s_readers)

(* Drain order matters: listener first (no new connections), queue next
   (late pushes refused with a draining error), dispatcher joined (every
   queued request answered, every response fully written), and only then
   are client sockets shut down and readers joined. *)
let drain t dispatcher_thread =
  (try Unix.close t.s_listen with Unix.Unix_error _ -> ());
  (match t.s_addr with
  | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Tcp _ -> ());
  Parallel.Jobq.close t.s_queue;
  Thread.join dispatcher_thread;
  let conns, readers =
    Mutex.protect t.s_conns_mutex (fun () -> (t.s_conns, t.s_readers))
  in
  List.iter
    (fun c ->
      Mutex.protect c.c_mutex (fun () ->
          if not c.c_closed then
            try Unix.shutdown c.c_fd SHUTDOWN_ALL with Unix.Unix_error _ -> ()))
    conns;
  List.iter Thread.join readers;
  List.iter (fun c -> Mutex.protect c.c_mutex (fun () -> close_locked c)) conns

let run t =
  let dispatcher_thread = Thread.create dispatcher t in
  while not (Atomic.get t.s_stop) do
    match Unix.select [ t.s_listen ] [] [] 0.25 with
    | [ _ ], _, _ -> (
      match Unix.accept t.s_listen with
      | fd, _ -> spawn_reader t fd
      | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> ())
    | _ -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done;
  drain t dispatcher_thread
