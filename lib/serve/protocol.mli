(** The serve wire protocol: newline-delimited JSON frames (schema
    ["simbridge-serve/1"]) over a Unix or TCP socket, encoded with the
    repo's own {!Validate.Jsonx} — no external JSON dependency, same as
    the validation subsystem.

    One request frame per line, one response frame per line; a client
    may pipeline requests and match responses by the echoed [id].
    Frames never contain raw newlines (Jsonx escapes them), so a line is
    always a complete frame — the server's no-partial-frame guarantee is
    "every line either fully written or not written at all".

    {b Determinism contract.}  For a [Figure] query, the [payload] of a
    successful response is byte-identical to the one-shot CLI's stdout
    for the same query ([simbridge csv FIG --scale S] for [`Csv]) at any
    [--jobs], any batching, and any client interleaving: figures are
    pure functions of [(figure, scale, global seed)] and the pool
    reassembles cells in grid order.  The [report] section is the only
    part that varies run-to-run (wall-clock, cache temperatures). *)

val schema : string
(** ["simbridge-serve/1"].  Frames carrying any other value are
    rejected — bump the suffix on a breaking change. *)

type query =
  | Figure of { fmt : [ `Csv | `Render ]; figure : string; scale : float }
      (** One figure panel ({!Simbridge.Experiments.figure_ids}); [`Csv]
          is the machine payload ([figure_csv]), [`Render] the ASCII
          chart ([render_figure]). *)
  | Cell of { platform : string; kernel : string; scale : float }
      (** A single microbench grid cell — the unit the dispatcher
          coalesces across clients before submitting to the pool. *)

type op =
  | Ping  (** liveness probe; payload ["pong"] *)
  | Stats  (** service counters as a JSON payload *)
  | Shutdown  (** begin graceful drain; payload ["draining"] *)
  | Run of query

type request = { rq_id : string; rq_op : op }
(** [rq_id] is client-chosen, non-empty, echoed verbatim in the
    response. *)

type report = Validate.Jsonx.t
(** The per-request run-report-shaped section: request id, computation
    key, served-from (computed / coalesced / cached), queue wait,
    compute wall, phase breakdown, trace-cache delta, span id. *)

type response = { rs_id : string; rs_result : (string * report, string) result }
(** [Ok (payload, report)] or [Error message]. *)

(** {2 Encoding}  ([print_*] emits a single line without the trailing
    newline; [parse_*] accepts exactly one frame.) *)

val request_to_json : request -> Validate.Jsonx.t
val request_of_json : Validate.Jsonx.t -> (request, string) result
val print_request : request -> string
val parse_request : string -> (request, string) result

val response_to_json : response -> Validate.Jsonx.t
val response_of_json : Validate.Jsonx.t -> (response, string) result
val print_response : response -> string
val parse_response : string -> (response, string) result

val query_key : query -> string
(** Canonical computation key: two requests with the same key are
    answered by one computation (the batching layer's dedup key and the
    response cache's index).  Scales are keyed by their exact bit
    pattern (hex float), so distinct floats never alias. *)

(** {2 Endpoints} *)

type addr = [ `Unix of string | `Tcp of string * int ]

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"] or a bare path → [`Unix]; ["tcp:HOST:PORT"] →
    [`Tcp].  The CLI's [--listen]/[--connect] syntax. *)

val addr_to_string : addr -> string
