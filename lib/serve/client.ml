type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect (addr : Protocol.addr) =
  let fd, sockaddr =
    match addr with
    | `Unix path -> (Unix.socket PF_UNIX SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      let ip =
        if host = "" then Unix.inet_addr_loopback
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      (Unix.socket PF_INET SOCK_STREAM 0, Unix.ADDR_INET (ip, port))
  in
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let send t req =
  output_string t.oc (Protocol.print_request req);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | exception (End_of_file | Sys_error _) -> Error "connection closed"
  | line -> Protocol.parse_response line

let rpc t req =
  send t req;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
