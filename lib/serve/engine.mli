(** The serve execution engine: turns batches of decoded requests into
    responses, independently of any socket machinery (the {!Server} owns
    sockets; tests drive the engine directly).

    One engine instance lives for the daemon's whole process, holding the
    three layers of reuse the service is built around:

    + the process-lifetime compiled-trace cache ({!Simbridge.Runner}) —
      shared implicitly, sized at daemon startup;
    + a response LRU keyed by {!Protocol.query_key} — valid because a
      served payload is a pure function of [(query, global seed)] and the
      seed is fixed for the daemon's lifetime;
    + batch coalescing — within one {!execute} call, requests with equal
      keys are answered by a single computation, and distinct [Cell]
      queries at the same scale are submitted to the pool as {e one}
      {!Simbridge.Runner.run_kernel_grid} dispatch.

    {b Threading.}  {!execute} must only ever be called from one thread
    at a time (the server's dispatcher) — it writes the daemon telemetry
    registry, which is single-writer.  {!stats_json} and the counters are
    safe from any thread. *)

type t

val create :
  ?jobs:int ->
  ?engine:Simbridge.Runner.engine ->
  ?response_cache_capacity:int ->
  ?telemetry:Telemetry.Registry.t ->
  unit ->
  t
(** [jobs] bounds the pool workers per computation (default 0 = the
    pool's process default); [engine] selects the replay engine for
    every computation (default [`Trace]; [`Memo] additionally switches
    the process to a shared block-cost table via
    {!Simbridge.Runner.enable_memo_sharing}, so costs converge across
    requests for the daemon's lifetime); [response_cache_capacity]
    bounds the response LRU (default 64 entries; 0 disables response
    caching); [telemetry] is the daemon registry every computation's
    forked sink merges into (default {!Telemetry.Registry.disabled}). *)

type pending = { p_req : Protocol.request; p_enqueued_s : float }
(** A decoded request plus the wall-clock instant it entered the queue
    (for the report's [queue_wait_s]). *)

val execute : t -> pending list -> Protocol.response list
(** Answer one batch.  Returns exactly one response per pending, in the
    same order.  Never raises: unknown figures/platforms/kernels and
    computation failures become [Error] responses for the requests
    concerned, leaving the rest of the batch intact.

    Each response's report section records how it was served:
    ["computed"] (first request for its key, ran here), ["coalesced"]
    (same key as an earlier request in this batch), ["cached"] (response
    LRU hit from an earlier batch), or ["inline"] (ping/stats/shutdown —
    no simulation). *)

val oracle : Protocol.query -> (string, string) result
(** The sequential reference payload: the same computation run with
    [jobs = 1], no batching, no caching layer consulted, telemetry
    disabled — byte-for-byte what the one-shot CLI prints.  The bench
    gate diffs every served payload against this. *)

val stats_json : t -> Validate.Jsonx.t
(** Service counters: uptime, batches, requests by served-kind, errors,
    response-cache occupancy, trace-cache counters, jobs. *)

val requests_served : t -> int
(** Total requests answered (any op), for the shutdown summary. *)
