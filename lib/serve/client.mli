(** A minimal blocking client for the serve protocol — what [simbridge
    query] and the bench/test harnesses use; [nc] works just as well for
    humans (the protocol is plain NDJSON).

    A client may pipeline: several {!send}s before the first {!recv}.
    Responses come back in request order on one connection (the server
    batches but answers in arrival order), so matching by [id] is a
    safety net, not a necessity. *)

type t

val connect : Protocol.addr -> t
(** Raises [Unix.Unix_error] when the endpoint is not listening. *)

val send : t -> Protocol.request -> unit
(** Write one request frame and flush. *)

val recv : t -> (Protocol.response, string) result
(** Block for the next response frame.  [Error] on connection close or
    an unparseable frame. *)

val rpc : t -> Protocol.request -> (Protocol.response, string) result
(** {!send} then {!recv} — one in-flight request. *)

val close : t -> unit
