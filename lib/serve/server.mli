(** The serve daemon's socket front end.

    One accept loop (the thread that calls {!run}), one reader thread
    per connection, and one dispatcher thread draining the shared
    {!Parallel.Jobq} into {!Engine.execute} batches.  Requests arriving
    close together — from one pipelining client or from many concurrent
    clients — land in the same batch and are coalesced by the engine.

    {b Graceful shutdown.}  {!stop} (also triggered by a [shutdown]
    request frame; the CLI wires SIGTERM/SIGINT to it) drains rather
    than kills: the listener closes first (new connections refused),
    then the queue closes (late requests get a one-line ["server is
    draining"] error frame), the dispatcher finishes every queued
    request and writes every response, and only then are client sockets
    shut down and reader threads joined.  Responses are serialized
    fully before a single locked write+flush, so a client never
    observes a partial frame — even across a mid-batch shutdown.
    {!run} returns after the drain; the CLI then writes the final run
    report from the daemon registry. *)

type t

val create :
  ?jobs:int ->
  ?engine:Simbridge.Runner.engine ->
  ?response_cache_capacity:int ->
  ?max_batch:int ->
  ?telemetry:Telemetry.Registry.t ->
  Protocol.addr ->
  t
(** Bind and listen immediately (raises [Unix.Unix_error] on failure; a
    stale Unix-socket path is unlinked first).  [max_batch] caps how
    many queued requests one {!Engine.execute} call may take (default
    64); the remaining options are passed to {!Engine.create}. *)

val engine : t -> Engine.t

val run : t -> unit
(** Serve until {!stop}: accepts in the calling thread (polling the
    stop flag every 250 ms), then performs the full drain sequence
    before returning.  Call once. *)

val stop : t -> unit
(** Request shutdown.  Only sets an atomic flag — safe from signal
    handlers and any thread; idempotent. *)

val stopped : t -> bool
