module J = Validate.Jsonx

let schema = "simbridge-serve/1"

type query =
  | Figure of { fmt : [ `Csv | `Render ]; figure : string; scale : float }
  | Cell of { platform : string; kernel : string; scale : float }

type op = Ping | Stats | Shutdown | Run of query
type request = { rq_id : string; rq_op : op }
type report = J.t
type response = { rs_id : string; rs_result : (string * report, string) result }

(* Scales are keyed (and coalesced) by exact bit pattern: "%h" prints
   the float losslessly, so 1.0 and 1.0+ulp never collide while two
   textual spellings of the same double always do. *)
let query_key = function
  | Figure { fmt; figure; scale } ->
    Printf.sprintf "%s %s @%h" (match fmt with `Csv -> "csv" | `Render -> "render") figure scale
  | Cell { platform; kernel; scale } -> Printf.sprintf "cell %s/%s @%h" platform kernel scale

(* ------------------------------------------------------------ encoding *)

(* Field order is fixed (schema, id, op, then operands), so encoding is
   deterministic and the print -> parse -> print round trip is
   byte-identical. *)
let request_to_json { rq_id; rq_op } =
  let base = [ ("schema", J.Str schema); ("id", J.Str rq_id) ] in
  let op_fields =
    match rq_op with
    | Ping -> [ ("op", J.Str "ping") ]
    | Stats -> [ ("op", J.Str "stats") ]
    | Shutdown -> [ ("op", J.Str "shutdown") ]
    | Run (Figure { fmt; figure; scale }) ->
      [
        ("op", J.Str (match fmt with `Csv -> "csv" | `Render -> "render"));
        ("figure", J.Str figure);
        ("scale", J.Num scale);
      ]
    | Run (Cell { platform; kernel; scale }) ->
      [
        ("op", J.Str "cell");
        ("platform", J.Str platform);
        ("kernel", J.Str kernel);
        ("scale", J.Num scale);
      ]
  in
  J.Obj (base @ op_fields)

let response_to_json { rs_id; rs_result } =
  let base = [ ("schema", J.Str schema); ("id", J.Str rs_id) ] in
  match rs_result with
  | Ok (payload, report) ->
    J.Obj (base @ [ ("ok", J.Bool true); ("payload", J.Str payload); ("report", report) ])
  | Error msg -> J.Obj (base @ [ ("ok", J.Bool false); ("error", J.Str msg) ])

(* ------------------------------------------------------------ decoding *)

let ( let* ) = Result.bind

let check_schema j =
  match J.member "schema" j with
  | None -> Error "missing schema field (expected \"simbridge-serve/1\")"
  | Some (J.Str s) when s = schema -> Ok ()
  | Some (J.Str s) -> Error (Printf.sprintf "unsupported schema %S (this server speaks %s)" s schema)
  | Some _ -> Error "schema field must be a string"

let req_str key j =
  match J.member key j with
  | Some (J.Str s) when s <> "" -> Ok s
  | Some (J.Str _) -> Error (Printf.sprintf "%s must be non-empty" key)
  | Some _ -> Error (Printf.sprintf "%s must be a string" key)
  | None -> Error (Printf.sprintf "missing %s field" key)

(* [scale] is optional (default 1.0) but, when present, must be a
   finite positive number — a served simulation at scale 0 or NaN would
   otherwise fail deep inside a workload generator. *)
let req_scale j =
  match J.member "scale" j with
  | None -> Ok 1.0
  | Some (J.Num v) when Float.is_finite v && v > 0.0 -> Ok v
  | Some (J.Num v) -> Error (Printf.sprintf "scale must be a finite positive number, got %g" v)
  | Some _ -> Error "scale must be a number"

let request_of_json j =
  let* () = check_schema j in
  let* id = req_str "id" j in
  let* op_name = req_str "op" j in
  let* op =
    match op_name with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "shutdown" -> Ok Shutdown
    | "csv" | "render" ->
      let fmt = if op_name = "csv" then `Csv else `Render in
      let* figure = req_str "figure" j in
      let* scale = req_scale j in
      Ok (Run (Figure { fmt; figure; scale }))
    | "cell" ->
      let* platform = req_str "platform" j in
      let* kernel = req_str "kernel" j in
      let* scale = req_scale j in
      Ok (Run (Cell { platform; kernel; scale }))
    | other -> Error (Printf.sprintf "unknown op %S (ping, stats, shutdown, csv, render, cell)" other)
  in
  Ok { rq_id = id; rq_op = op }

let response_of_json j =
  let* () = check_schema j in
  let* id = req_str "id" j in
  match J.member "ok" j with
  | Some (J.Bool true) ->
    let* payload =
      match J.member "payload" j with
      | Some (J.Str s) -> Ok s
      | _ -> Error "ok response carries no payload string"
    in
    let report = Option.value (J.member "report" j) ~default:J.Null in
    Ok { rs_id = id; rs_result = Ok (payload, report) }
  | Some (J.Bool false) ->
    let* msg =
      match J.member "error" j with
      | Some (J.Str s) -> Ok s
      | _ -> Error "error response carries no error string"
    in
    Ok { rs_id = id; rs_result = Error msg }
  | Some _ -> Error "ok field must be a boolean"
  | None -> Error "missing ok field"

(* ------------------------------------------------------------- framing *)

let print_json j = J.to_string ~indent:0 j
let print_request r = print_json (request_to_json r)
let print_response r = print_json (response_to_json r)

let parse_frame of_json line =
  match J.parse line with
  | Error msg -> Error ("malformed frame: " ^ msg)
  | Ok j -> of_json j

let parse_request = parse_frame request_of_json
let parse_response = parse_frame response_of_json

(* ----------------------------------------------------------- endpoints *)

type addr = [ `Unix of string | `Tcp of string * int ]

let addr_of_string s =
  if String.length s = 0 then Error "empty address"
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" s)
    | Some i -> (
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (`Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad tcp port %S" port))
  end
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (`Unix (String.sub s 5 (String.length s - 5)))
  else Ok (`Unix s)

let addr_to_string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port
