module J = Validate.Jsonx
module Registry = Telemetry.Registry

let schema = "simbridge-run-report/1"

(* --------------------------------------------------------- identity *)

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let run_id () =
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ-p%d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec (Unix.getpid ())

let first_line path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> match input_line ic with line -> Some (String.trim line) | exception End_of_file -> None)

(* Resolve HEAD by hand — the repo must stay runnable where no [git]
   binary exists (minimal CI containers), and shelling out from library
   code would be worse than reading two well-known files. *)
let git_rev ?(root = ".") () =
  let git p = Filename.concat (Filename.concat root ".git") p in
  match first_line (git "HEAD") with
  | None -> "unknown"
  | Some head ->
    if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
      let refname = String.trim (String.sub head 5 (String.length head - 5)) in
      match first_line (git refname) with
      | Some sha -> sha
      | None -> (
        (* packed refs: lines of "<sha> <refname>" *)
        match open_in (git "packed-refs") with
        | exception Sys_error _ -> "unknown"
        | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let rec scan () =
                match input_line ic with
                | exception End_of_file -> "unknown"
                | line -> (
                  match String.index_opt line ' ' with
                  | Some i
                    when String.sub line (i + 1) (String.length line - i - 1) = refname ->
                    String.sub line 0 i
                  | _ -> scan ())
              in
              scan ()))
    end
    else head

(* ------------------------------------------------------ aggregation *)

type phase_row = {
  pr_name : string;
  pr_count : int;
  pr_target_cycles : int;
  pr_wall_s : float;
}

let phase_breakdown reg =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (p : Registry.phase_info) ->
      let row =
        match Hashtbl.find_opt tbl p.Registry.ph_name with
        | Some r -> r
        | None ->
          let r = ref { pr_name = p.Registry.ph_name; pr_count = 0; pr_target_cycles = 0; pr_wall_s = 0.0 } in
          Hashtbl.add tbl p.Registry.ph_name r;
          order := p.Registry.ph_name :: !order;
          r
      in
      row :=
        {
          !row with
          pr_count = !row.pr_count + 1;
          pr_target_cycles = !row.pr_target_cycles + (p.Registry.ph_ts1 - p.Registry.ph_ts0);
          pr_wall_s = !row.pr_wall_s +. p.Registry.ph_wall_s;
        })
    (Registry.phases reg);
  List.rev_map (fun name -> !(Hashtbl.find tbl name)) !order

let measured_wall_s reg =
  List.fold_left
    (fun acc r -> if r.pr_name = "measure" || r.pr_name = "run" then acc +. r.pr_wall_s else acc)
    0.0 (phase_breakdown reg)

let aggregate_mips reg =
  match Registry.find_counter reg "core.instructions" with
  | Some insns when insns > 0 ->
    let wall = measured_wall_s reg in
    if wall > 0.0 then Some (float_of_int insns /. wall /. 1e6) else None
  | _ -> None

(* ------------------------------------------------------------ build *)

let num_i n = J.Num (float_of_int n)

let sampling_json (e : Sampling.Estimate.t) =
  J.Obj
    [
      ("policy", J.Str (Sampling.Policy.to_string e.Sampling.Estimate.policy));
      ("est_cycles", num_i e.Sampling.Estimate.est_cycles);
      ("ci95_cycles", J.Num e.Sampling.Estimate.ci95_cycles);
      ( "rel_err_95",
        J.Num
          (if e.Sampling.Estimate.est_cycles > 0 then
             e.Sampling.Estimate.ci95_cycles /. float_of_int e.Sampling.Estimate.est_cycles
           else 0.0) );
      ("total_insns", num_i e.Sampling.Estimate.total_insns);
      ("complete", J.Bool e.Sampling.Estimate.complete);
    ]

let fidelity_json ~strict (r : Validate.Fidelity.report) =
  let t = r.Validate.Fidelity.r_totals in
  J.Obj
    [
      ("ok", J.Bool (Validate.Fidelity.ok ~strict r));
      ("strict", J.Bool strict);
      ("cells", num_i t.Validate.Fidelity.t_cells);
      ("exact", num_i t.Validate.Fidelity.t_exact);
      ("within_band", num_i t.Validate.Fidelity.t_within);
      ("drifted", num_i t.Validate.Fidelity.t_drifted);
      ("band_misses", num_i t.Validate.Fidelity.t_band_misses);
      ("shape_misses", num_i t.Validate.Fidelity.t_shape_misses);
      ("structural", num_i t.Validate.Fidelity.t_structural);
    ]

let build ?run_id:(id = run_id ()) ?(wall_s = 0.0) ?estimate ?fidelity ?(exit_status = 0)
    ?(extra = []) ?(metrics = []) ~command ~config ~telemetry () =
  (* Make the process-wide trace-cache counters part of the snapshot
     before reading it (satellite: trace.cache.* as real counters). *)
  Simbridge.Runner.publish_trace_cache_stats telemetry;
  let host = Host.detect () in
  let counters = Registry.counters telemetry in
  let tr = Registry.trace telemetry in
  let span_events =
    List.length
      (List.filter (fun (e : Telemetry.Trace.event) -> e.Telemetry.Trace.cat = "span")
         (Telemetry.Trace.to_list tr))
  in
  let cache_json =
    let get n = Option.value ~default:0 (Registry.find_counter telemetry n) in
    let hits = get "trace.cache.hits" and misses = get "trace.cache.misses" in
    J.Obj
      [
        ("trace_cache_hits", num_i hits);
        ("trace_cache_misses", num_i misses);
        ("trace_cache_evictions", num_i (get "trace.cache.evictions"));
        ( "trace_cache_hit_rate",
          if hits + misses > 0 then J.Num (float_of_int hits /. float_of_int (hits + misses))
          else J.Null );
      ]
  in
  let metrics_obj =
    let base =
      [
        ( "instructions",
          match Registry.find_counter telemetry "core.instructions" with
          | Some n -> num_i n
          | None -> J.Null );
        ("measured_wall_s", J.Num (measured_wall_s telemetry));
        ("wall_s", J.Num wall_s);
        ("aggregate_mips", match aggregate_mips telemetry with Some m -> J.Num m | None -> J.Null);
      ]
    in
    J.Obj (List.filter (fun (k, _) -> not (List.mem_assoc k metrics)) base @ metrics)
  in
  let phases =
    J.Arr
      (List.map
         (fun r ->
           J.Obj
             [
               ("name", J.Str r.pr_name);
               ("count", num_i r.pr_count);
               ("target_cycles", num_i r.pr_target_cycles);
               ("wall_s", J.Num r.pr_wall_s);
             ])
         (phase_breakdown telemetry))
  in
  let base =
    [
      ("schema", J.Str schema);
      ("run_id", J.Str id);
      ("time", J.Str (iso8601 (Unix.gettimeofday ())));
      ("command", J.Str command);
      ("git_rev", J.Str (git_rev ()));
      ("host", Host.to_json host);
      ("config", J.Obj config);
      ("exit_status", num_i exit_status);
      ("metrics", metrics_obj);
      ("phases", phases);
      ("counters", J.Obj (List.map (fun (n, v) -> (n, num_i v)) counters));
      ("cache", cache_json);
      ( "trace",
        J.Obj
          [
            ("events", num_i (Telemetry.Trace.length tr));
            ("dropped", num_i (Telemetry.Trace.dropped tr));
            ("spans", num_i span_events);
          ] );
    ]
  in
  let base =
    match estimate with None -> base | Some e -> base @ [ ("sampling", sampling_json e) ]
  in
  let base =
    match fidelity with
    | None -> base
    | Some (r, strict) -> base @ [ ("fidelity", fidelity_json ~strict r) ]
  in
  J.Obj (base @ extra)

(* ------------------------------------------------------------ output *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write ~path report =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string report);
      output_char oc '\n')

let summary_line report =
  let str k = Option.value ~default:"?" (Option.bind (J.member k report) J.to_str) in
  let metrics k =
    Option.bind (J.member "metrics" report) (fun m -> Option.bind (J.member k m) J.to_float)
  in
  let mips = match metrics "aggregate_mips" with Some m -> Printf.sprintf "%.2f MIPS" m | None -> "- MIPS" in
  let fidelity =
    match J.member "fidelity" report with
    | None -> ""
    | Some f ->
      let g k = match Option.bind (J.member k f) J.to_int with Some n -> n | None -> 0 in
      Printf.sprintf " · exact %d/%d (drifted %d)" (g "exact") (g "cells") (g "drifted")
  in
  Printf.sprintf "%s · %s · %s · wall %.2fs%s" (str "run_id") (str "command") mips
    (match metrics "wall_s" with Some w -> w | None -> 0.0)
    fidelity
