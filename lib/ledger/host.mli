(** Host fingerprinting for run reports: what machine and runtime
    produced a measurement, so cross-run perf comparisons can refuse to
    compare numbers from different hosts. *)

type t = {
  hostname : string;
  logical_cores : int;  (** {!Parallel.Pool.recommended_jobs} *)
  physical_cores : int option;  (** {!Parallel.Pool.physical_cores} *)
  ocaml_version : string;
  word_size : int;
  os_type : string;
}

val detect : unit -> t
(** Best-effort; never raises (unknown fields degrade to ["unknown"] /
    [None]). *)

val fingerprint : t -> string
(** Compact identity string, e.g. ["ci-runner/8c/ocaml-5.2.0/Unix"];
    equal fingerprints are a precondition for comparing MIPS across
    history entries. *)

val to_json : t -> Validate.Jsonx.t
