(** Live TTY progress for pooled experiment runs: one rate-limited
    stderr line ([\r]-overwritten) showing cells done/total, an ETA
    extrapolated from completed-cell wall times, and the label of the
    cell that just started or finished.

    Driven by {!Parallel.Pool.set_progress_hook}, so it works for every
    grid the CLI runs without the drivers knowing about it.  Writes
    only to stderr (stdout stays byte-identical for golden comparisons)
    and only between [install]/[uninstall]. *)

val install : unit -> unit
(** Install the hook unconditionally (tests). *)

val install_if_tty : unit -> unit
(** Install only when stderr is a TTY — piped/CI runs stay silent. *)

val uninstall : unit -> unit
(** Remove the hook and clear the line. *)
