(** Cross-run regression history: a JSONL ledger of {!Run_report}
    documents ([results/history.jsonl]) with trend rendering and a
    machine-checkable perf/fidelity gate.

    The ledger is append-only and self-contained — each line is a full
    run report, so the history survives schema-tolerant readers and a
    single line can be replayed as a report. *)

type entry = {
  h_run_id : string;
  h_time : string;
  h_rev : string;  (** git commit sha at run time *)
  h_command : string;  (** e.g. ["run fig1"] — trend series key *)
  h_host : string;  (** {!Host.fingerprint} — MIPS comparability key *)
  h_mips : float option;
  h_wall_s : float;
  h_cells : int option;  (** fidelity cells checked *)
  h_exact : int option;
  h_drifted : int option;
  h_cache_hit_rate : float option;
  h_json : Validate.Jsonx.t;  (** the full report *)
}

val entry_of_report : Validate.Jsonx.t -> (entry, string) result
(** Validate the schema tag and extract the trend fields. *)

val load : path:string -> (entry list, string) result
(** Parse the ledger, oldest first.  A missing file is [Ok []]; a
    malformed line is an [Error] naming the line. *)

val append : path:string -> Validate.Jsonx.t -> unit
(** Append one report as a compact JSON line, creating parent
    directories. *)

val render : entry list -> string
(** Text trend table (time, run, rev, command, MIPS, wall, fidelity,
    cache hits). *)

val to_csv : entry list -> string
(** RFC-4180 trend table for plotting. *)

val compare_ : entry -> entry -> string
(** Two-run diff table: MIPS/wall deltas in percent, fidelity delta in
    cells; flags command/host mismatches rather than pretending the
    numbers are comparable. *)

type check_result = {
  ck_ok : bool;
  ck_lines : string list;  (** FAIL/PASS/note lines, for humans and CI logs *)
}

val default_mips_drop : float
(** 0.15 — the >15% aggregate-MIPS regression threshold. *)

val check : ?mips_drop:float -> entry list -> check_result
(** Gate the newest entry against its recorded trajectory: fails when
    it reports drifted cells, when its Exact-cell count fell vs the
    most recent same-command entry with fidelity totals, or when its
    aggregate MIPS dropped more than [mips_drop] vs the most recent
    same-command {e same-host} entry.  An empty history passes. *)
