(* The pool's progress hook runs on worker domains; everything here is
   guarded by one mutex and rate-limited, so the display costs nothing
   measurable and never interleaves partial lines. *)

let mutex = Mutex.create ()
let last_print = ref 0.0
let active = ref false
let min_interval_s = 0.1

let clear_line () = prerr_string "\r\027[K"

let eta_s (ev : Parallel.Pool.progress_event) =
  if ev.Parallel.Pool.pe_done = 0 then None
  else
    Some
      (ev.Parallel.Pool.pe_elapsed_s /. float_of_int ev.Parallel.Pool.pe_done
      *. float_of_int (ev.Parallel.Pool.pe_total - ev.Parallel.Pool.pe_done))

let line (ev : Parallel.Pool.progress_event) =
  let eta = match eta_s ev with None -> "?" | Some s -> Printf.sprintf "%.0fs" s in
  let s =
    Printf.sprintf "cells %d/%d · eta %s · %s" ev.Parallel.Pool.pe_done ev.Parallel.Pool.pe_total
      eta ev.Parallel.Pool.pe_label
  in
  if String.length s > 100 then String.sub s 0 100 else s

let hook (ev : Parallel.Pool.progress_event) =
  Mutex.protect mutex (fun () ->
      if !active then begin
        let finished_grid =
          (not ev.Parallel.Pool.pe_started)
          && ev.Parallel.Pool.pe_done = ev.Parallel.Pool.pe_total
        in
        let now = Unix.gettimeofday () in
        if finished_grid then begin
          (* Leave no residue: the grid's results print next on stdout. *)
          clear_line ();
          flush stderr;
          last_print := 0.0
        end
        else if now -. !last_print >= min_interval_s then begin
          last_print := now;
          clear_line ();
          prerr_string (line ev);
          flush stderr
        end
      end)

let install () =
  Mutex.protect mutex (fun () -> active := true);
  Parallel.Pool.set_progress_hook (Some hook)

let uninstall () =
  Parallel.Pool.set_progress_hook None;
  Mutex.protect mutex (fun () ->
      if !active then begin
        active := false;
        clear_line ();
        flush stderr
      end)

let install_if_tty () = if Unix.isatty Unix.stderr then install ()
