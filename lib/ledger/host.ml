module J = Validate.Jsonx

type t = {
  hostname : string;
  logical_cores : int;
  physical_cores : int option;
  ocaml_version : string;
  word_size : int;
  os_type : string;
}

let detect () =
  {
    hostname = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    logical_cores = Parallel.Pool.recommended_jobs ();
    physical_cores = Parallel.Pool.physical_cores ();
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    os_type = Sys.os_type;
  }

(* The fingerprint is what [History.check] keys same-host comparisons
   on: MIPS measured on different machines (or under a different
   runtime) is not comparable, so anything that plausibly changes host
   throughput belongs here. *)
let fingerprint h =
  Printf.sprintf "%s/%dc/ocaml-%s/%s" h.hostname h.logical_cores h.ocaml_version h.os_type

let to_json h =
  J.Obj
    [
      ("hostname", J.Str h.hostname);
      ("logical_cores", J.Num (float_of_int h.logical_cores));
      ( "physical_cores",
        match h.physical_cores with None -> J.Null | Some n -> J.Num (float_of_int n) );
      ("ocaml_version", J.Str h.ocaml_version);
      ("word_size", J.Num (float_of_int h.word_size));
      ("os_type", J.Str h.os_type);
      ("fingerprint", J.Str (fingerprint h));
    ]
