(** Machine-readable run reports (schema ["simbridge-run-report/1"]).

    Every CLI invocation (and the bench gates) distills its telemetry
    registry into one JSON document: run identity (id, time, git rev,
    host fingerprint), the echoed config, a per-phase wall/target-cycle
    breakdown, the counter snapshot (including the [trace.cache.*]
    counters, published here), cache hit rates, optional sampling error
    bounds and fidelity totals, and the exit status.  Reports are what
    {!History} appends to [results/history.jsonl] and what CI uploads
    as an artifact. *)

val schema : string

val run_id : unit -> string
(** ["YYYYMMDDThhmmssZ-p<pid>"] — sortable and unique enough for a
    ledger of sequential local runs. *)

val git_rev : ?root:string -> unit -> string
(** HEAD's commit sha, resolved by reading [.git/HEAD] (and the ref
    file or [.git/packed-refs]) under [root] (default ["."]) — no [git]
    binary required.  ["unknown"] when unresolvable. *)

val iso8601 : float -> string
(** UTC timestamp for a [Unix.gettimeofday] value. *)

val build :
  ?run_id:string ->
  ?wall_s:float ->
  ?estimate:Sampling.Estimate.t ->
  ?fidelity:Validate.Fidelity.report * bool ->
  ?exit_status:int ->
  ?extra:(string * Validate.Jsonx.t) list ->
  ?metrics:(string * Validate.Jsonx.t) list ->
  command:string ->
  config:(string * Validate.Jsonx.t) list ->
  telemetry:Telemetry.Registry.t ->
  unit ->
  Validate.Jsonx.t
(** Assemble a report from a (merged) registry.  [wall_s] is the
    invocation's total wall time; [fidelity] is the validate report
    paired with its strictness; [extra] appends caller-specific
    top-level sections (the bench gates put their own metrics there);
    [metrics] overrides/extends the report's [metrics] object — benches
    without a telemetry registry use it to record the
    ["aggregate_mips"] that {!History} trends and gates on.
    Calls {!Simbridge.Runner.publish_trace_cache_stats} on [telemetry]
    first, so cache counters are part of the snapshot.  Works on
    {!Telemetry.Registry.disabled} too (metrics degrade to [null]). *)

val write : path:string -> Validate.Jsonx.t -> unit
(** Write compact JSON (one line + newline, so a report file is also a
    valid history.jsonl fragment), creating parent directories. *)

val summary_line : Validate.Jsonx.t -> string
(** One human line: id, command, MIPS, wall, fidelity totals. *)

(** {2 Aggregates} (exposed for {!History} and tests) *)

type phase_row = {
  pr_name : string;
  pr_count : int;
  pr_target_cycles : int;
  pr_wall_s : float;
}

val phase_breakdown : Telemetry.Registry.t -> phase_row list
(** Completed phases grouped by name, in first-completion order. *)

val measured_wall_s : Telemetry.Registry.t -> float
(** Total wall seconds in "measure"/"run" phases — the MIPS denominator. *)

val aggregate_mips : Telemetry.Registry.t -> float option
(** [core.instructions / measured_wall_s / 1e6]; [None] without both. *)
