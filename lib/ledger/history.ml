module J = Validate.Jsonx

type entry = {
  h_run_id : string;
  h_time : string;
  h_rev : string;
  h_command : string;
  h_host : string;
  h_mips : float option;
  h_wall_s : float;
  h_cells : int option;
  h_exact : int option;
  h_drifted : int option;
  h_cache_hit_rate : float option;
  h_json : J.t;
}

let entry_of_report json =
  match Option.bind (J.member "schema" json) J.to_str with
  | Some s when s = Run_report.schema ->
    let str k = Option.value ~default:"" (Option.bind (J.member k json) J.to_str) in
    let metrics k =
      Option.bind (J.member "metrics" json) (fun m -> Option.bind (J.member k m) J.to_float)
    in
    let fidelity k =
      Option.bind (J.member "fidelity" json) (fun f -> Option.bind (J.member k f) J.to_int)
    in
    if str "run_id" = "" then Error "report has no run_id"
    else
      Ok
        {
          h_run_id = str "run_id";
          h_time = str "time";
          h_rev = str "git_rev";
          h_command = str "command";
          h_host =
            Option.value ~default:""
              (Option.bind (J.member "host" json) (fun h ->
                   Option.bind (J.member "fingerprint" h) J.to_str));
          h_mips = metrics "aggregate_mips";
          h_wall_s = Option.value ~default:0.0 (metrics "wall_s");
          h_cells = fidelity "cells";
          h_exact = fidelity "exact";
          h_drifted = fidelity "drifted";
          h_cache_hit_rate =
            Option.bind (J.member "cache" json) (fun c ->
                Option.bind (J.member "trace_cache_hit_rate" c) J.to_float);
          h_json = json;
        }
  | Some s -> Error (Printf.sprintf "unrecognized report schema %S" s)
  | None -> Error "not a run report (no schema field)"

(* ---------------------------------------------------------------- io *)

let load ~path =
  if not (Sys.file_exists path) then Ok []
  else
    match open_in path with
    | exception Sys_error e -> Error e
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan lineno acc =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | line when String.trim line = "" -> scan (lineno + 1) acc
            | line -> (
              match J.parse line with
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
              | Ok json -> (
                match entry_of_report json with
                | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
                | Ok entry -> scan (lineno + 1) (entry :: acc)))
          in
          scan 1 [])

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let append ~path report =
  mkdir_p (Filename.dirname path);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string ~indent:0 report);
      output_char oc '\n')

(* ------------------------------------------------------------ render *)

let short s n = if String.length s <= n then s else String.sub s 0 n

let fmt_mips = function Some m -> Printf.sprintf "%.2f" m | None -> "-"

let fmt_fidelity e =
  match (e.h_exact, e.h_cells) with
  | Some x, Some c -> Printf.sprintf "%d/%d%s" x c
      (match e.h_drifted with Some d when d > 0 -> Printf.sprintf " (%d drifted)" d | _ -> "")
  | _ -> "-"

let fmt_hit_rate = function Some r -> Printf.sprintf "%.0f%%" (100.0 *. r) | None -> "-"

let render entries =
  let t =
    Report.Table.create
      ~headers:[ "time"; "run"; "rev"; "command"; "MIPS"; "wall s"; "exact"; "cache hits" ]
  in
  List.iter
    (fun e ->
      Report.Table.add_row t
        [
          e.h_time;
          short e.h_run_id 18;
          short e.h_rev 10;
          e.h_command;
          fmt_mips e.h_mips;
          Printf.sprintf "%.2f" e.h_wall_s;
          fmt_fidelity e;
          fmt_hit_rate e.h_cache_hit_rate;
        ])
    entries;
  Report.Table.render t

let to_csv entries =
  let t =
    Report.Table.create
      ~headers:
        [ "time"; "run_id"; "git_rev"; "command"; "host"; "mips"; "wall_s"; "cells"; "exact"; "drifted" ]
  in
  let opt_i = function Some n -> string_of_int n | None -> "" in
  List.iter
    (fun e ->
      Report.Table.add_row t
        [
          e.h_time;
          e.h_run_id;
          e.h_rev;
          e.h_command;
          e.h_host;
          (match e.h_mips with Some m -> Printf.sprintf "%.4f" m | None -> "");
          Printf.sprintf "%.4f" e.h_wall_s;
          opt_i e.h_cells;
          opt_i e.h_exact;
          opt_i e.h_drifted;
        ])
    entries;
  Report.Table.to_csv t

let compare_ a b =
  let t = Report.Table.create ~headers:[ "metric"; short a.h_run_id 18; short b.h_run_id 18; "delta" ] in
  let row name va vb delta = Report.Table.add_row t [ name; va; vb; delta ] in
  row "command" a.h_command b.h_command (if a.h_command = b.h_command then "same" else "DIFFERENT");
  row "git rev" (short a.h_rev 10) (short b.h_rev 10) (if a.h_rev = b.h_rev then "same" else "changed");
  row "host" (short a.h_host 24) (short b.h_host 24)
    (if a.h_host = b.h_host then "same" else "DIFFERENT");
  (match (a.h_mips, b.h_mips) with
  | Some ma, Some mb when ma > 0.0 ->
    row "aggregate MIPS" (fmt_mips a.h_mips) (fmt_mips b.h_mips)
      (Printf.sprintf "%+.1f%%%s" (100.0 *. ((mb /. ma) -. 1.0))
         (if a.h_host <> b.h_host then " (different hosts — not comparable)" else ""))
  | _ -> row "aggregate MIPS" (fmt_mips a.h_mips) (fmt_mips b.h_mips) "-");
  row "wall s" (Printf.sprintf "%.2f" a.h_wall_s) (Printf.sprintf "%.2f" b.h_wall_s)
    (if a.h_wall_s > 0.0 then Printf.sprintf "%+.1f%%" (100.0 *. ((b.h_wall_s /. a.h_wall_s) -. 1.0))
     else "-");
  row "fidelity exact" (fmt_fidelity a) (fmt_fidelity b)
    (match (a.h_exact, b.h_exact) with
    | Some xa, Some xb -> Printf.sprintf "%+d" (xb - xa)
    | _ -> "-");
  row "cache hit rate" (fmt_hit_rate a.h_cache_hit_rate) (fmt_hit_rate b.h_cache_hit_rate) "";
  Report.Table.render t

(* ------------------------------------------------------------- check *)

type check_result = {
  ck_ok : bool;
  ck_lines : string list;
}

let default_mips_drop = 0.15

(* The regression gate compares the newest entry against its recorded
   trajectory.  Fidelity is host-independent and gated per command;
   MIPS is a host-throughput number, so its baseline must share both
   the command and the host fingerprint — CI runners and laptops are
   not comparable, and a gate that compared them would cry wolf. *)
let check ?(mips_drop = default_mips_drop) entries =
  match List.rev entries with
  | [] -> { ck_ok = true; ck_lines = [ "history empty — nothing to check" ] }
  | latest :: earlier_rev ->
    let fails = ref [] and notes = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
    let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
    let same_cmd = List.filter (fun e -> e.h_command = latest.h_command) earlier_rev in
    (* fidelity *)
    (match latest.h_drifted with
    | Some d when d > 0 -> fail "latest run %s reports %d drifted cell(s)" latest.h_run_id d
    | _ -> ());
    (match (latest.h_exact, List.find_opt (fun e -> e.h_exact <> None) same_cmd) with
    | Some x, Some base ->
      let bx = Option.get base.h_exact in
      if x < bx then
        fail "Exact cells regressed: %d -> %d (baseline %s)" bx x base.h_run_id
      else note "fidelity: %d Exact cell(s), no drift vs %s" x base.h_run_id
    | Some x, None -> note "fidelity: %d Exact cell(s), no earlier %S run to compare" x latest.h_command
    | None, _ -> note "latest run carries no fidelity totals");
    (* MIPS *)
    (match latest.h_mips with
    | None -> note "latest run carries no MIPS metric"
    | Some m -> (
      match
        List.find_opt (fun e -> e.h_host = latest.h_host && e.h_mips <> None) same_cmd
      with
      | None -> note "no same-host %S baseline for MIPS (host %s)" latest.h_command latest.h_host
      | Some base ->
        let bm = Option.get base.h_mips in
        if bm > 0.0 && m < (1.0 -. mips_drop) *. bm then
          fail "aggregate MIPS regressed %.0f%% (%.2f -> %.2f vs %s; threshold %.0f%%)"
            (100.0 *. (1.0 -. (m /. bm)))
            bm m base.h_run_id (100.0 *. mips_drop)
        else note "MIPS %.2f vs baseline %.2f (%s) — within %.0f%%" m bm base.h_run_id
               (100.0 *. mips_drop)));
    if !fails = [] then
      { ck_ok = true; ck_lines = List.rev_map (fun s -> "PASS: " ^ s) !notes }
    else
      {
        ck_ok = false;
        ck_lines =
          List.rev_map (fun s -> "FAIL: " ^ s) !fails @ List.rev_map (fun s -> "note: " ^ s) !notes;
      }
