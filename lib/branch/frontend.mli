(** Composite frontend prediction: direction predictor + branch target
    buffer + return-address stack, with statistics.

    The timing models call {!resolve} once per retired control-flow
    instruction; the result says whether the frontend would have steered
    fetch correctly, and the models charge the pipeline-specific penalty
    when it would not. *)

type config = {
  direction : Predictor.config;
  btb_entries : int;  (** power of two *)
  ras_entries : int;
}

val rocket_config : config
(** BTB + bimodal BHT + RAS, as in the Rocket frontend. *)

val boom_config : config
(** TAGE-L-style predictor with a larger BTB, as in the BOOM frontend. *)

type t

type stats = {
  ctrl_seen : int;
  mispredicts : int;
  btb_misses : int;
  ras_mispredicts : int;
}

val create : config -> t

val resolve : t -> Isa.Insn.t -> bool
(** [resolve t insn] trains the structures with [insn]'s actual outcome and
    returns [true] when the frontend predicted both direction and target
    correctly.  [insn] must be a control-flow instruction. *)

val resolve_ctrl : t -> kind:Isa.Insn.kind -> pc:int -> taken:bool -> target:int -> bool
(** {!resolve} on unpacked scalar fields — the trace-replay form, no
    [Insn.t] required.  [kind] must be a control-flow kind. *)

val stats : t -> stats

val mispredict_rate : t -> float
(** Mispredicts / control-flow instructions seen (0 when none seen). *)
