type config = {
  direction : Predictor.config;
  btb_entries : int;
  ras_entries : int;
}

let rocket_config =
  { direction = Predictor.Bimodal { entries = 512 }; btb_entries = 32; ras_entries = 6 }

let boom_config =
  {
    direction = Predictor.Tage { base_entries = 2048; tables = 6; table_entries = 512; max_history = 64 };
    btb_entries = 128;
    ras_entries = 32;
  }

type stats = {
  ctrl_seen : int;
  mispredicts : int;
  btb_misses : int;
  ras_mispredicts : int;
}

type t = {
  dir : Predictor.t;
  btb_tags : int array;
  btb_targets : int array;
  btb_mask : int;
  ras : int array;
  ras_size : int;
  mutable ras_top : int;  (** number of valid entries, capped at ras_size *)
  mutable ras_depth : int;  (** logical call depth, may exceed ras_size *)
  mutable ctrl_seen : int;
  mutable mispredicts : int;
  mutable btb_misses : int;
  mutable ras_mispredicts : int;
}

let create (c : config) =
  if c.btb_entries <= 0 || c.btb_entries land (c.btb_entries - 1) <> 0 then
    invalid_arg "Frontend.create: btb_entries must be a power of two";
  if c.ras_entries <= 0 then invalid_arg "Frontend.create: ras_entries";
  {
    dir = Predictor.create c.direction;
    btb_tags = Array.make c.btb_entries (-1);
    btb_targets = Array.make c.btb_entries 0;
    btb_mask = c.btb_entries - 1;
    ras = Array.make c.ras_entries 0;
    ras_size = c.ras_entries;
    ras_top = 0;
    ras_depth = 0;
    ctrl_seen = 0;
    mispredicts = 0;
    btb_misses = 0;
    ras_mispredicts = 0;
  }

let btb_index t pc = (pc lsr 2) land t.btb_mask

let btb_lookup t ~pc ~target =
  let i = btb_index t pc in
  let hit = t.btb_tags.(i) = pc && t.btb_targets.(i) = target in
  if not hit then t.btb_misses <- t.btb_misses + 1;
  (* Install/refresh on every resolved taken transfer. *)
  t.btb_tags.(i) <- pc;
  t.btb_targets.(i) <- target;
  hit

let ras_push t ret_pc =
  t.ras_depth <- t.ras_depth + 1;
  if t.ras_top < t.ras_size then begin
    t.ras.(t.ras_top) <- ret_pc;
    t.ras_top <- t.ras_top + 1
  end
  else begin
    (* Circular overwrite: the oldest entry is lost — deep recursion (the
       CRd kernel) will mispredict on the way back up. *)
    Array.blit t.ras 1 t.ras 0 (t.ras_size - 1);
    t.ras.(t.ras_size - 1) <- ret_pc
  end

let ras_pop t ~target =
  let correct =
    if t.ras_top > 0 then begin
      let predicted = t.ras.(t.ras_top - 1) in
      t.ras_top <- t.ras_top - 1;
      predicted = target
    end
    else false
  in
  t.ras_depth <- (if t.ras_depth > 0 then t.ras_depth - 1 else 0);
  (* Entries evicted by overflow make deeper returns unpredictable even
     after the stored ones are consumed. *)
  let overflowed = t.ras_depth >= t.ras_size in
  correct && not overflowed

let resolve_ctrl t ~kind ~pc ~taken ~target =
  t.ctrl_seen <- t.ctrl_seen + 1;
  let correct =
    match (kind : Isa.Insn.kind) with
    | Branch ->
      let predicted = Predictor.resolve t.dir ~pc ~taken in
      if predicted <> taken then false
      else if taken then btb_lookup t ~pc ~target
      else true
    | Jump -> btb_lookup t ~pc ~target
    | Call ->
      let hit = btb_lookup t ~pc ~target in
      ras_push t (pc + 4);
      hit
    | Ret ->
      let ok = ras_pop t ~target in
      if not ok then t.ras_mispredicts <- t.ras_mispredicts + 1;
      ok
    | _ -> invalid_arg "Frontend.resolve: not a control insn"
  in
  if not correct then t.mispredicts <- t.mispredicts + 1;
  correct

let resolve t (insn : Isa.Insn.t) =
  match insn.ctrl with
  | Some c -> resolve_ctrl t ~kind:insn.kind ~pc:insn.pc ~taken:c.taken ~target:c.target
  | None -> invalid_arg "Frontend.resolve: not a control insn"

let stats t =
  {
    ctrl_seen = t.ctrl_seen;
    mispredicts = t.mispredicts;
    btb_misses = t.btb_misses;
    ras_mispredicts = t.ras_mispredicts;
  }

let mispredict_rate t =
  if t.ctrl_seen = 0 then 0.0 else float_of_int t.mispredicts /. float_of_int t.ctrl_seen
