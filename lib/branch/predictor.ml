type config =
  | Static_taken
  | Static_not_taken
  | Bimodal of { entries : int }
  | Gshare of { entries : int; history_bits : int }
  | Tage of { base_entries : int; tables : int; table_entries : int; max_history : int }

(* A TAGE entry packs into one int: bits 0-8 hold tag+1 (0 = invalid; the
   tag itself is 8-bit), bits 9-10 the 2-bit prediction counter, bits
   11-12 the 2-bit useful counter.  One immediate array load per probe
   instead of chasing a boxed record — the predictor is walked once per
   resolved branch in the replay hot loop. *)
type tage_state = {
  base : Bytes.t;
  base_mask : int;
  tables : int array array;  (* tables.(i) has geometric history length *)
  hist_masks : int array;  (* (1 lsl history length) - 1 per table *)
  entry_mask : int;
  mutable history : int;  (* low bits = most recent outcomes *)
}

let e_invalid = 2 lsl 9 (* no tag, ctr weakly-taken, useful 0 *)
let e_tagf e = e land 0x1ff
let e_ctr e = (e lsr 9) land 3
let e_useful e = (e lsr 11) land 3

type gshare_state = { g_counters : Bytes.t; g_mask : int; g_hist_mask : int; mutable g_history : int }

type state =
  | S_static of bool
  | S_bimodal of { counters : Bytes.t; mask : int }
  | S_gshare of gshare_state
  | S_tage of tage_state

type t = { state : state }

let require_pow2 name n =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg (name ^ ": size must be a positive power of two")

(* 2-bit saturating counters packed one per byte: 0..3; >=2 predicts taken.
   Initialized to weakly-taken (2), matching common hardware reset. *)
let new_counters entries = Bytes.make entries '\002'

let ctr_get c i = Char.code (Bytes.unsafe_get c i)
let ctr_set c i v = Bytes.unsafe_set c i (Char.chr v)

(* 2-bit saturating update without [Stdlib.min]/[max]: the polymorphic
   versions cost a call per use, and this runs once per resolved branch. *)
let sat_up v = if v >= 3 then 3 else v + 1
let sat_down v = if v <= 0 then 0 else v - 1

let ctr_train c i taken =
  let v = ctr_get c i in
  ctr_set c i (if taken then sat_up v else sat_down v)

let fold_pc pc = (pc lsr 2) lxor (pc lsr 13)

let create config =
  let state =
    match config with
    | Static_taken -> S_static true
    | Static_not_taken -> S_static false
    | Bimodal { entries } ->
      require_pow2 "Predictor.Bimodal" entries;
      S_bimodal { counters = new_counters entries; mask = entries - 1 }
    | Gshare { entries; history_bits } ->
      require_pow2 "Predictor.Gshare" entries;
      if history_bits < 1 || history_bits > 30 then invalid_arg "Predictor.Gshare: history_bits";
      S_gshare
        {
          g_counters = new_counters entries;
          g_mask = entries - 1;
          g_hist_mask = (1 lsl history_bits) - 1;
          g_history = 0;
        }
    | Tage { base_entries; tables; table_entries; max_history } ->
      require_pow2 "Predictor.Tage base" base_entries;
      require_pow2 "Predictor.Tage tables" table_entries;
      if tables < 1 then invalid_arg "Predictor.Tage: tables";
      if max_history < tables then invalid_arg "Predictor.Tage: max_history";
      (* Geometric history lengths from 2 up to max_history. *)
      let ratio = (float_of_int max_history /. 2.0) ** (1.0 /. float_of_int (max 1 (tables - 1))) in
      let hist_lens =
        Array.init tables (fun i ->
            min 62 (max (i + 2) (int_of_float (2.0 *. (ratio ** float_of_int i)))))
      in
      S_tage
        {
          base = new_counters base_entries;
          base_mask = base_entries - 1;
          tables = Array.init tables (fun _ -> Array.make table_entries e_invalid);
          hist_masks = Array.map (fun len -> (1 lsl len) - 1) hist_lens;
          entry_mask = table_entries - 1;
          history = 0;
        }
  in
  { state }

(* [fpc] below is [fold_pc pc], folded once per prediction rather than
   once per table probe. *)
let tage_index s fpc table_i =
  let hist = s.history land Array.unsafe_get s.hist_masks table_i in
  (* Mix folded history with pc; cheap but adequate hash. *)
  let h = fpc lxor hist lxor (hist lsr 7) lxor (table_i * 0x9e37) in
  h land s.entry_mask

(* Stored shifted by one ([tag+1], "tagf") so 0 means invalid. *)
let tage_tagf s fpc table_i =
  let hist = s.history land Array.unsafe_get s.hist_masks table_i in
  (((fpc * 31) lxor (hist * 7) lxor table_i) land 0xff) + 1

(* Longest-history table whose entry's tag matches provides the prediction;
   otherwise the bimodal base does.  Returns -1 for the base, else the
   provider packed as [(table_i lsl 32) lor entry_idx] — a plain int so
   the search result needs no allocation in the resolve hot loop. *)
let tage_search s fpc =
  (* While loop over local refs, not an inner recursive function — the
     latter allocates a closure per call without flambda. *)
  let m = ref (-1) in
  let i = ref (Array.length s.tables - 1) in
  while !i >= 0 do
    let idx = tage_index s fpc !i in
    let e = Array.unsafe_get (Array.unsafe_get s.tables !i) idx in
    if e_tagf e = tage_tagf s fpc !i then begin
      m := (!i lsl 32) lor idx;
      i := -1
    end
    else decr i
  done;
  !m

let provider_table m = m lsr 32
let provider_idx m = m land 0xffff_ffff

let tage_provider_taken s fpc m =
  if m >= 0 then
    e_ctr (Array.unsafe_get (Array.unsafe_get s.tables (provider_table m)) (provider_idx m)) >= 2
  else ctr_get s.base (fpc land s.base_mask) >= 2

let predict t ~pc =
  match t.state with
  | S_static b -> b
  | S_bimodal { counters; mask } -> ctr_get counters (fold_pc pc land mask) >= 2
  | S_gshare g -> ctr_get g.g_counters ((fold_pc pc lxor (g.g_history land g.g_hist_mask)) land g.g_mask) >= 2
  | S_tage s ->
    let fpc = fold_pc pc in
    tage_provider_taken s fpc (tage_search s fpc)

(* Train with the resolved outcome given the provider found by
   [tage_search] ([m] = packed provider or -1 for the bimodal base) and
   the direction that provider predicted.  Factoring the search out lets
   [resolve] walk the tables once for predict + update combined. *)
let tage_train s fpc m ~predicted ~taken =
  (if m >= 0 then begin
     let tbl = Array.unsafe_get s.tables (provider_table m) in
     let matched_idx = provider_idx m in
     let e = Array.unsafe_get tbl matched_idx in
     let ctr = e_ctr e in
     let ctr = if taken then sat_up ctr else sat_down ctr in
     let u = e_useful e in
     let u = if predicted = taken then sat_up u else sat_down u in
     Array.unsafe_set tbl matched_idx (e_tagf e lor (ctr lsl 9) lor (u lsl 11))
   end
   else ctr_train s.base (fpc land s.base_mask) taken);
  (* On a misprediction, allocate in a longer-history table to capture the
     correlation the current provider missed. *)
  (if predicted <> taken then begin
     let ntables = Array.length s.tables in
     let i = ref ((if m >= 0 then provider_table m else -1) + 1) in
     while !i < ntables do
       let tbl = Array.unsafe_get s.tables !i in
       let idx = tage_index s fpc !i in
       let e = Array.unsafe_get tbl idx in
       if e_useful e = 0 then begin
         (* Fresh entry: resolved tag, weak counter in the taken
            direction, useful 0. *)
         Array.unsafe_set tbl idx (tage_tagf s fpc !i lor ((if taken then 2 else 1) lsl 9));
         i := ntables
       end
       else begin
         Array.unsafe_set tbl idx (e - (1 lsl 11));
         incr i
       end
     done
   end);
  s.history <- ((s.history lsl 1) lor Bool.to_int taken) land ((1 lsl 62) - 1)

let update t ~pc ~taken =
  match t.state with
  | S_static _ -> ()
  | S_bimodal { counters; mask } -> ctr_train counters (fold_pc pc land mask) taken
  | S_gshare g ->
    ctr_train g.g_counters ((fold_pc pc lxor (g.g_history land g.g_hist_mask)) land g.g_mask) taken;
    g.g_history <- ((g.g_history lsl 1) lor Bool.to_int taken) land g.g_hist_mask
  | S_tage s ->
    let fpc = fold_pc pc in
    let m = tage_search s fpc in
    let predicted = tage_provider_taken s fpc m in
    tage_train s fpc m ~predicted ~taken

(* Fused predict + update: exactly the state transitions and return value
   of [predict] followed by [update] — update reads the same provider the
   prediction used, since predict mutates nothing — but with one table
   walk and no option/tuple allocation, which matters in the replay hot
   loop (BOOM resolves a TAGE branch every few instructions). *)
let resolve t ~pc ~taken =
  match t.state with
  | S_static b -> b
  | S_bimodal { counters; mask } ->
    let i = fold_pc pc land mask in
    let p = ctr_get counters i >= 2 in
    ctr_train counters i taken;
    p
  | S_gshare g ->
    let i = (fold_pc pc lxor (g.g_history land g.g_hist_mask)) land g.g_mask in
    let p = ctr_get g.g_counters i >= 2 in
    ctr_train g.g_counters i taken;
    g.g_history <- ((g.g_history lsl 1) lor Bool.to_int taken) land g.g_hist_mask;
    p
  | S_tage s ->
    let fpc = fold_pc pc in
    let m = tage_search s fpc in
    let predicted = tage_provider_taken s fpc m in
    tage_train s fpc m ~predicted ~taken;
    predicted

let name = function
  | Static_taken -> "static-taken"
  | Static_not_taken -> "static-not-taken"
  | Bimodal { entries } -> Printf.sprintf "bimodal-%d" entries
  | Gshare { entries; history_bits } -> Printf.sprintf "gshare-%d-h%d" entries history_bits
  | Tage { tables; table_entries; max_history; _ } ->
    Printf.sprintf "tage-%dx%d-h%d" tables table_entries max_history
