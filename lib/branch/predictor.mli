(** Conditional-branch direction predictors.

    The Rocket frontend uses BTB + BHT (bimodal) + RAS; BOOM uses a TAGE-L
    predictor.  We provide bimodal, gshare and a TAGE-lite (tagged geometric
    history lengths over a bimodal base) so the platform catalog can model
    both generations, plus trivial static predictors for baselines. *)

type t

type config =
  | Static_taken
  | Static_not_taken
  | Bimodal of { entries : int }  (** 2-bit counters indexed by PC *)
  | Gshare of { entries : int; history_bits : int }
  | Tage of { base_entries : int; tables : int; table_entries : int; max_history : int }

val create : config -> t

val predict : t -> pc:int -> bool
(** Predicted direction for the branch at [pc] given current history. *)

val update : t -> pc:int -> taken:bool -> unit
(** Train with the resolved outcome and advance global history. *)

val resolve : t -> pc:int -> taken:bool -> bool
(** Fused {!predict} + {!update}: returns the direction that {!predict}
    would have returned, then trains with [taken].  State transitions are
    identical to calling the two separately; the fused form walks the
    predictor tables once and allocates nothing, which is what the replay
    hot loop wants. *)

val name : config -> string
