type arg =
  | Int of int
  | Float of float
  | Str of string

type event = {
  name : string;
  cat : string;
  ph : char;
  ts : int;
  dur : int;
  tid : int;
  args : (string * arg) list;
}

type t = {
  cap : int;
  mutable buf : event array;  (* allocated on first record *)
  mutable head : int;  (* index of oldest retained event *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  { cap = capacity; buf = [||]; head = 0; len = 0; dropped = 0 }

let record t e =
  if t.cap > 0 then begin
    if Array.length t.buf = 0 then t.buf <- Array.make t.cap e;
    if t.len < t.cap then begin
      t.buf.((t.head + t.len) mod t.cap) <- e;
      t.len <- t.len + 1
    end
    else begin
      t.buf.(t.head) <- e;
      t.head <- (t.head + 1) mod t.cap;
      t.dropped <- t.dropped + 1
    end
  end

let capacity t = t.cap
let length t = t.len
let dropped t = t.dropped
let to_list t = List.init t.len (fun i -> t.buf.((t.head + i) mod t.cap))

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let append ~into child =
  if into != child && into.cap > 0 then begin
    List.iter (record into) (to_list child);
    (* Events the child's own ring already lost stay lost; account them. *)
    into.dropped <- into.dropped + child.dropped
  end
