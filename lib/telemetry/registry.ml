type counter = { c_live : bool; mutable c_v : int }

type histogram = {
  h_live : bool;
  mutable h_buf : float array;
  mutable h_n : int;
}

type hist_stats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

type phase_info = {
  ph_name : string;
  ph_ts0 : int;
  ph_ts1 : int;
  ph_wall_s : float;
}

type t = {
  live : bool;
  counters_tbl : (string, counter) Hashtbl.t;
  hists_tbl : (string, histogram) Hashtbl.t;
  mutable phases_rev : phase_info list;
  tr : Trace.t;
  span_ns : string;  (** id namespace, e.g. ["c3."] for cell 3's sink *)
  span_parent : string;  (** cross-sink parent id inherited at fork *)
  mutable span_seq : int;
  mutable span_stack : string list;  (** open span ids, innermost first *)
  mutable span_lane : int;  (** worker lane, becomes the trace [tid] *)
}

let create_ns ~ns ~span_parent ?(trace_capacity = 65536) () =
  {
    live = true;
    counters_tbl = Hashtbl.create 64;
    hists_tbl = Hashtbl.create 16;
    phases_rev = [];
    tr = Trace.create ~capacity:trace_capacity;
    span_ns = ns;
    span_parent;
    span_seq = 0;
    span_stack = [];
    span_lane = 0;
  }

let create ?trace_capacity () = create_ns ~ns:"" ~span_parent:"" ?trace_capacity ()

(* The shared sink.  Nothing may ever mutate it: [counter]/[histogram]
   hand out unregistered dead cells instead of touching the tables. *)
let disabled =
  {
    live = false;
    counters_tbl = Hashtbl.create 1;
    hists_tbl = Hashtbl.create 1;
    phases_rev = [];
    tr = Trace.create ~capacity:0;
    span_ns = "";
    span_parent = "";
    span_seq = 0;
    span_stack = [];
    span_lane = 0;
  }

let enabled t = t.live
let trace t = t.tr

(* ------------------------------------------------------------ counters *)

let counter t name =
  if not t.live then { c_live = false; c_v = 0 }
  else
    match Hashtbl.find_opt t.counters_tbl name with
    | Some c -> c
    | None ->
      let c = { c_live = true; c_v = 0 } in
      Hashtbl.add t.counters_tbl name c;
      c

let incr c = c.c_v <- c.c_v + 1
let add c n = c.c_v <- c.c_v + n
let set c v = c.c_v <- v
let value c = c.c_v
let set_all t kvs = List.iter (fun (name, v) -> set (counter t name) v) kvs

let counters t =
  Hashtbl.fold (fun name c acc -> (name, c.c_v) :: acc) t.counters_tbl []
  |> List.sort compare

let find_counter t name = Option.map (fun c -> c.c_v) (Hashtbl.find_opt t.counters_tbl name)

(* ---------------------------------------------------------- histograms *)

let histogram t name =
  if not t.live then { h_live = false; h_buf = [||]; h_n = 0 }
  else
    match Hashtbl.find_opt t.hists_tbl name with
    | Some h -> h
    | None ->
      let h = { h_live = true; h_buf = [||]; h_n = 0 } in
      Hashtbl.add t.hists_tbl name h;
      h

let observe h x =
  if h.h_live then begin
    let cap = Array.length h.h_buf in
    if h.h_n = cap then begin
      let grown = Array.make (max 64 (2 * cap)) 0.0 in
      Array.blit h.h_buf 0 grown 0 h.h_n;
      h.h_buf <- grown
    end;
    h.h_buf.(h.h_n) <- x;
    h.h_n <- h.h_n + 1
  end

let hist_stats h =
  if h.h_n = 0 then invalid_arg "Registry.hist_stats: empty histogram";
  let xs = Array.sub h.h_buf 0 h.h_n in
  let lo, hi = Util.Stats.min_max xs in
  {
    count = h.h_n;
    sum = Util.Stats.sum xs;
    mean = Util.Stats.mean xs;
    min = lo;
    max = hi;
    p50 = Util.Stats.percentile xs 50.0;
    p95 = Util.Stats.percentile xs 95.0;
  }

let histograms t =
  Hashtbl.fold
    (fun name h acc -> if h.h_n = 0 then acc else (name, hist_stats h) :: acc)
    t.hists_tbl []
  |> List.sort compare

(* -------------------------------------------------------------- phases *)

type phase = { p_name : string; p_ts0 : int; p_wall0 : float }

let phase_start t ?(ts = 0) name =
  { p_name = name; p_ts0 = ts; p_wall0 = (if t.live then Unix.gettimeofday () else 0.0) }

let phase_end t p ?(ts = 0) ?(args = []) () =
  if t.live then begin
    let wall = Unix.gettimeofday () -. p.p_wall0 in
    t.phases_rev <-
      { ph_name = p.p_name; ph_ts0 = p.p_ts0; ph_ts1 = ts; ph_wall_s = wall } :: t.phases_rev;
    Trace.record t.tr
      {
        Trace.name = p.p_name;
        cat = "phase";
        ph = 'X';
        ts = p.p_ts0;
        dur = max 0 (ts - p.p_ts0);
        tid = 0;
        args;
      }
  end

let phases t = List.rev t.phases_rev

(* -------------------------------------------------------------- spans *)

(* Span timestamps are wall microseconds since this process-global
   epoch, so events recorded by different forked sinks (one per cell,
   running on different domains) land on one comparable timeline and
   the merged Chrome trace shows the real fan-out schedule. *)
let span_epoch = Unix.gettimeofday ()

type span = {
  s_live : bool;
  s_id : string;
  s_name : string;
  s_parent : string;
  s_wall0 : float;
}

let dead_span = { s_live = false; s_id = ""; s_name = ""; s_parent = ""; s_wall0 = 0.0 }

let span_current t =
  match t.span_stack with
  | id :: _ -> id
  | [] -> t.span_parent

let span_active t = t.live && span_current t <> ""
let set_span_lane t lane = if t.live then t.span_lane <- lane

let span_start t ?(root = false) name =
  if not t.live then dead_span
  else
    let parent = span_current t in
    if (not root) && parent = "" then dead_span
    else begin
      t.span_seq <- t.span_seq + 1;
      let id = Printf.sprintf "%ss%d" t.span_ns t.span_seq in
      t.span_stack <- id :: t.span_stack;
      { s_live = true; s_id = id; s_name = name; s_parent = parent; s_wall0 = Unix.gettimeofday () }
    end

let span_id sp = sp.s_id

let span_end t sp ?(args = []) () =
  if sp.s_live then begin
    (match t.span_stack with
    | id :: rest when id = sp.s_id -> t.span_stack <- rest
    | _ -> () (* mismatched close: tolerate, the trace still records the span *));
    let now = Unix.gettimeofday () in
    Trace.record t.tr
      {
        Trace.name = sp.s_name;
        cat = "span";
        ph = 'X';
        ts = int_of_float ((sp.s_wall0 -. span_epoch) *. 1e6);
        dur = max 0 (int_of_float ((now -. sp.s_wall0) *. 1e6));
        tid = t.span_lane;
        args = ("span", Trace.Str sp.s_id) :: ("parent", Trace.Str sp.s_parent) :: args;
      }
  end

let span_with t ?root ?(args = []) name f =
  let sp = span_start t ?root name in
  Fun.protect ~finally:(fun () -> span_end t sp ~args ()) f

(* ------------------------------------------------------- fork / merge *)

let fork ?(ns = "") ?span_parent t =
  if not t.live then disabled
  else
    let span_parent = match span_parent with Some p -> p | None -> span_current t in
    create_ns ~ns:(t.span_ns ^ ns) ~span_parent ~trace_capacity:(Trace.capacity t.tr) ()

let merge ~into child =
  if into.live && child.live && into != child then begin
    (* [counters child] is name-sorted, so creation order in [into] is
       deterministic regardless of how the child populated its tables. *)
    List.iter (fun (name, v) -> add (counter into name) v) (counters child);
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) child.hists_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (name, h) ->
           let target = histogram into name in
           for i = 0 to h.h_n - 1 do
             observe target h.h_buf.(i)
           done);
    (* phases_rev is newest-first; prepending the child's list keeps the
       merged completion order "parent's phases, then the child's". *)
    into.phases_rev <- child.phases_rev @ into.phases_rev;
    Trace.append ~into:into.tr child.tr
  end
