type counter = { c_live : bool; mutable c_v : int }

type histogram = {
  h_live : bool;
  mutable h_buf : float array;
  mutable h_n : int;
}

type hist_stats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

type phase_info = {
  ph_name : string;
  ph_ts0 : int;
  ph_ts1 : int;
  ph_wall_s : float;
}

type t = {
  live : bool;
  counters_tbl : (string, counter) Hashtbl.t;
  hists_tbl : (string, histogram) Hashtbl.t;
  mutable phases_rev : phase_info list;
  tr : Trace.t;
}

let create ?(trace_capacity = 65536) () =
  {
    live = true;
    counters_tbl = Hashtbl.create 64;
    hists_tbl = Hashtbl.create 16;
    phases_rev = [];
    tr = Trace.create ~capacity:trace_capacity;
  }

(* The shared sink.  Nothing may ever mutate it: [counter]/[histogram]
   hand out unregistered dead cells instead of touching the tables. *)
let disabled =
  {
    live = false;
    counters_tbl = Hashtbl.create 1;
    hists_tbl = Hashtbl.create 1;
    phases_rev = [];
    tr = Trace.create ~capacity:0;
  }

let enabled t = t.live
let trace t = t.tr

(* ------------------------------------------------------------ counters *)

let counter t name =
  if not t.live then { c_live = false; c_v = 0 }
  else
    match Hashtbl.find_opt t.counters_tbl name with
    | Some c -> c
    | None ->
      let c = { c_live = true; c_v = 0 } in
      Hashtbl.add t.counters_tbl name c;
      c

let incr c = c.c_v <- c.c_v + 1
let add c n = c.c_v <- c.c_v + n
let set c v = c.c_v <- v
let value c = c.c_v
let set_all t kvs = List.iter (fun (name, v) -> set (counter t name) v) kvs

let counters t =
  Hashtbl.fold (fun name c acc -> (name, c.c_v) :: acc) t.counters_tbl []
  |> List.sort compare

let find_counter t name = Option.map (fun c -> c.c_v) (Hashtbl.find_opt t.counters_tbl name)

(* ---------------------------------------------------------- histograms *)

let histogram t name =
  if not t.live then { h_live = false; h_buf = [||]; h_n = 0 }
  else
    match Hashtbl.find_opt t.hists_tbl name with
    | Some h -> h
    | None ->
      let h = { h_live = true; h_buf = [||]; h_n = 0 } in
      Hashtbl.add t.hists_tbl name h;
      h

let observe h x =
  if h.h_live then begin
    let cap = Array.length h.h_buf in
    if h.h_n = cap then begin
      let grown = Array.make (max 64 (2 * cap)) 0.0 in
      Array.blit h.h_buf 0 grown 0 h.h_n;
      h.h_buf <- grown
    end;
    h.h_buf.(h.h_n) <- x;
    h.h_n <- h.h_n + 1
  end

let hist_stats h =
  if h.h_n = 0 then invalid_arg "Registry.hist_stats: empty histogram";
  let xs = Array.sub h.h_buf 0 h.h_n in
  let lo, hi = Util.Stats.min_max xs in
  {
    count = h.h_n;
    sum = Util.Stats.sum xs;
    mean = Util.Stats.mean xs;
    min = lo;
    max = hi;
    p50 = Util.Stats.percentile xs 50.0;
    p95 = Util.Stats.percentile xs 95.0;
  }

let histograms t =
  Hashtbl.fold
    (fun name h acc -> if h.h_n = 0 then acc else (name, hist_stats h) :: acc)
    t.hists_tbl []
  |> List.sort compare

(* -------------------------------------------------------------- phases *)

type phase = { p_name : string; p_ts0 : int; p_wall0 : float }

let phase_start t ?(ts = 0) name =
  { p_name = name; p_ts0 = ts; p_wall0 = (if t.live then Unix.gettimeofday () else 0.0) }

let phase_end t p ?(ts = 0) ?(args = []) () =
  if t.live then begin
    let wall = Unix.gettimeofday () -. p.p_wall0 in
    t.phases_rev <-
      { ph_name = p.p_name; ph_ts0 = p.p_ts0; ph_ts1 = ts; ph_wall_s = wall } :: t.phases_rev;
    Trace.record t.tr
      {
        Trace.name = p.p_name;
        cat = "phase";
        ph = 'X';
        ts = p.p_ts0;
        dur = max 0 (ts - p.p_ts0);
        tid = 0;
        args;
      }
  end

let phases t = List.rev t.phases_rev

(* ------------------------------------------------------- fork / merge *)

let fork t = if not t.live then disabled else create ~trace_capacity:(Trace.capacity t.tr) ()

let merge ~into child =
  if into.live && child.live && into != child then begin
    (* [counters child] is name-sorted, so creation order in [into] is
       deterministic regardless of how the child populated its tables. *)
    List.iter (fun (name, v) -> add (counter into name) v) (counters child);
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) child.hists_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (name, h) ->
           let target = histogram into name in
           for i = 0 to h.h_n - 1 do
             observe target h.h_buf.(i)
           done);
    (* phases_rev is newest-first; prepending the child's list keeps the
       merged completion order "parent's phases, then the child's". *)
    into.phases_rev <- child.phases_rev @ into.phases_rev;
    Trace.append ~into:into.tr child.tr
  end
