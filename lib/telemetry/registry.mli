(** Telemetry registry: named counters, histograms, and per-phase timers,
    plus a bounded event-trace ring ({!Trace}).

    Design constraints (see ISSUE 1):

    - {b Zero-cost when disabled.}  Instrumentation sites receive a
      registry handle; {!disabled} is a shared no-op sink.  Handles
      created against it are dead cells — updates are a single store on a
      throwaway record, nothing registers, no wall clock is read — so
      benchmark numbers are unaffected by the instrumentation.
    - {b Deterministic.}  Counters, histograms, and trace timestamps are
      functions of the simulated execution only (target cycles, token
      counts), never of host time.  Wall-clock readings are confined to
      {!phase_start}/{!phase_end} and reported separately, so tests can
      assert telemetry invariance across host scheduling policies.

    Naming convention: dot-separated paths, component first —
    ["cache.l1d.misses"], ["dram.chan0.row_hits"],
    ["firesim.model.core.fired"].  Counters under ["firesim.host."] are
    host-level (scheduler iterations, per-model stall polls) and are the
    only ones allowed to vary with the host scheduling policy. *)

type t

type counter
type histogram

type hist_stats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

type phase_info = {
  ph_name : string;
  ph_ts0 : int;  (** target-cycle start *)
  ph_ts1 : int;  (** target-cycle end *)
  ph_wall_s : float;  (** host wall-clock spent in the phase *)
}

val create : ?trace_capacity:int -> unit -> t
(** A live registry.  [trace_capacity] bounds the event ring (default
    65536; 0 disables tracing while keeping counters live). *)

val disabled : t
(** The shared no-op sink: never registers, never allocates per event,
    never reads the clock.  Exporting it yields empty reports. *)

val enabled : t -> bool
val trace : t -> Trace.t

(** {2 Counters} *)

val counter : t -> string -> counter
(** Find-or-create.  Call once at setup and keep the handle; updates on
    the handle are branch-free stores. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : counter -> int -> unit
val value : counter -> int

val set_all : t -> (string * int) list -> unit
(** [set_all t kvs] sets each named counter to the given absolute value
    (creating it if needed).  Components publish stat snapshots this
    way. *)

val counters : t -> (string * int) list
(** All registered counters, sorted by name. *)

val find_counter : t -> string -> int option

(** {2 Histograms} *)

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit

val hist_stats : histogram -> hist_stats
(** Raises [Invalid_argument] on an empty histogram. *)

val histograms : t -> (string * hist_stats) list
(** All non-empty registered histograms, sorted by name. *)

(** {2 Phases} *)

type phase

val phase_start : t -> ?ts:int -> string -> phase
(** Open a phase at target cycle [ts] (default 0).  Reads the wall clock
    only on a live registry. *)

val phase_end : t -> phase -> ?ts:int -> ?args:(string * Trace.arg) list -> unit -> unit
(** Close a phase at target cycle [ts]: records a {!phase_info} and a
    Chrome 'X' (complete) event spanning [ts0, ts] in the trace. *)

val phases : t -> phase_info list
(** Completed phases, in completion order. *)

(** {2 Spans}

    Spans are the wall-clock complement of phases: hierarchical 'X'
    trace events (category ["span"]) on a process-global microsecond
    timeline, carrying their own id and their parent's id in [args] so
    the merged Chrome/Perfetto trace reconstructs the run tree even
    though parent and child were recorded into different forked sinks
    on different domains.

    Ids are deterministic — [<ns>s<seq>] where [ns] is the sink's
    namespace (empty for a root registry, ["c<i>."] for cell [i]'s
    {!fork}ed sink) — so the span {e tree} is identical across job
    counts; only timestamps and lanes vary with scheduling.

    Recording is context-gated: unless opened with [~root:true], a span
    only records when an enclosing span is active (locally or inherited
    from the parent at {!fork} time).  Plain library calls with no root
    span therefore record no span events at all, which keeps
    deterministic-trace tests (equal event lists across job counts)
    valid for callers that never opt in. *)

type span

val span_start : t -> ?root:bool -> string -> span
(** Open a span.  Returns a dead span (recording nothing) when the
    registry is disabled, or when no parent is active and [root] is
    false (default). *)

val span_end : t -> span -> ?args:(string * Trace.arg) list -> unit -> unit
(** Close a span: records one 'X' event with [("span", id)] and
    [("parent", parent_id)] prepended to [args]. *)

val span_id : span -> string
(** The span's deterministic id ([""] for a dead span) — callers that
    publish results outside the trace (e.g. the serve daemon's
    per-request response sections) use it to cross-link a payload to
    its subtree in the Perfetto timeline. *)

val span_with : t -> ?root:bool -> ?args:(string * Trace.arg) list -> string -> (unit -> 'a) -> 'a
(** [span_with t name f] wraps [f] in {!span_start}/{!span_end}; the
    span is closed (and recorded) even when [f] raises. *)

val span_current : t -> string
(** Innermost open span id, or the fork-inherited parent id, or [""]. *)

val span_active : t -> bool
(** [true] when a live registry has an active span context — i.e. new
    non-root spans would record. *)

val set_span_lane : t -> int -> unit
(** Set the worker lane recorded as the [tid] of subsequent span
    events (default 0); {!Parallel.Pool} tags each cell's sink with the
    worker that ran it so the trace shows real lane occupancy. *)

(** {2 Per-domain sinks}

    A registry is single-domain mutable state: it must never be written
    from two domains at once.  Parallel experiment runs
    ({!Parallel.Pool}) give every cell a {!fork}ed private sink, record
    into it on whichever worker domain runs the cell, and {!merge} the
    sinks back into the parent {e in cell-index order after the workers
    join} — so the combined counters, histograms, phases, and trace are
    deterministic and identical to a sequential run, never interleaved
    by the host scheduler. *)

val fork : ?ns:string -> ?span_parent:string -> t -> t
(** A fresh, empty child sink: live iff [t] is live (forking
    {!disabled} returns {!disabled} — no allocation), with the same
    trace capacity.  The child shares no state with [t]; hand it to
    exactly one domain.

    [ns] (default [""]) is appended to [t]'s span-id namespace; give
    concurrent forks distinct namespaces (the pool uses ["c<i>."]) so
    their span ids cannot collide.  [span_parent] (default
    [span_current t]) is the parent id child spans attach to. *)

val merge : into:t -> t -> unit
(** [merge ~into child] folds a forked sink back into its parent:
    counter values are {e added}, histogram observations and completed
    phases appended, and trace events replayed in order
    ({!Trace.append}).  No-op when either side is {!disabled} (or both
    are the same registry).  Call only after the domain that wrote
    [child] has been joined. *)
