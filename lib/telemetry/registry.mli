(** Telemetry registry: named counters, histograms, and per-phase timers,
    plus a bounded event-trace ring ({!Trace}).

    Design constraints (see ISSUE 1):

    - {b Zero-cost when disabled.}  Instrumentation sites receive a
      registry handle; {!disabled} is a shared no-op sink.  Handles
      created against it are dead cells — updates are a single store on a
      throwaway record, nothing registers, no wall clock is read — so
      benchmark numbers are unaffected by the instrumentation.
    - {b Deterministic.}  Counters, histograms, and trace timestamps are
      functions of the simulated execution only (target cycles, token
      counts), never of host time.  Wall-clock readings are confined to
      {!phase_start}/{!phase_end} and reported separately, so tests can
      assert telemetry invariance across host scheduling policies.

    Naming convention: dot-separated paths, component first —
    ["cache.l1d.misses"], ["dram.chan0.row_hits"],
    ["firesim.model.core.fired"].  Counters under ["firesim.host."] are
    host-level (scheduler iterations, per-model stall polls) and are the
    only ones allowed to vary with the host scheduling policy. *)

type t

type counter
type histogram

type hist_stats = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

type phase_info = {
  ph_name : string;
  ph_ts0 : int;  (** target-cycle start *)
  ph_ts1 : int;  (** target-cycle end *)
  ph_wall_s : float;  (** host wall-clock spent in the phase *)
}

val create : ?trace_capacity:int -> unit -> t
(** A live registry.  [trace_capacity] bounds the event ring (default
    65536; 0 disables tracing while keeping counters live). *)

val disabled : t
(** The shared no-op sink: never registers, never allocates per event,
    never reads the clock.  Exporting it yields empty reports. *)

val enabled : t -> bool
val trace : t -> Trace.t

(** {2 Counters} *)

val counter : t -> string -> counter
(** Find-or-create.  Call once at setup and keep the handle; updates on
    the handle are branch-free stores. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : counter -> int -> unit
val value : counter -> int

val set_all : t -> (string * int) list -> unit
(** [set_all t kvs] sets each named counter to the given absolute value
    (creating it if needed).  Components publish stat snapshots this
    way. *)

val counters : t -> (string * int) list
(** All registered counters, sorted by name. *)

val find_counter : t -> string -> int option

(** {2 Histograms} *)

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit

val hist_stats : histogram -> hist_stats
(** Raises [Invalid_argument] on an empty histogram. *)

val histograms : t -> (string * hist_stats) list
(** All non-empty registered histograms, sorted by name. *)

(** {2 Phases} *)

type phase

val phase_start : t -> ?ts:int -> string -> phase
(** Open a phase at target cycle [ts] (default 0).  Reads the wall clock
    only on a live registry. *)

val phase_end : t -> phase -> ?ts:int -> ?args:(string * Trace.arg) list -> unit -> unit
(** Close a phase at target cycle [ts]: records a {!phase_info} and a
    Chrome 'X' (complete) event spanning [ts0, ts] in the trace. *)

val phases : t -> phase_info list
(** Completed phases, in completion order. *)

(** {2 Per-domain sinks}

    A registry is single-domain mutable state: it must never be written
    from two domains at once.  Parallel experiment runs
    ({!Parallel.Pool}) give every cell a {!fork}ed private sink, record
    into it on whichever worker domain runs the cell, and {!merge} the
    sinks back into the parent {e in cell-index order after the workers
    join} — so the combined counters, histograms, phases, and trace are
    deterministic and identical to a sequential run, never interleaved
    by the host scheduler. *)

val fork : t -> t
(** A fresh, empty child sink: live iff [t] is live (forking
    {!disabled} returns {!disabled} — no allocation), with the same
    trace capacity.  The child shares no state with [t]; hand it to
    exactly one domain. *)

val merge : into:t -> t -> unit
(** [merge ~into child] folds a forked sink back into its parent:
    counter values are {e added}, histogram observations and completed
    phases appended, and trace events replayed in order
    ({!Trace.append}).  No-op when either side is {!disabled} (or both
    are the same registry).  Call only after the domain that wrote
    [child] has been joined. *)
