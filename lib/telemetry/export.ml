let f = Report.Table.cell_f

(* ------------------------------------------------------------- summary *)

let summary reg =
  let buf = Buffer.create 1024 in
  let section title = Buffer.add_string buf (Printf.sprintf "== %s ==\n" title) in
  let counters = Registry.counters reg in
  if counters <> [] then begin
    section "counters";
    let t = Report.Table.create ~headers:[ "counter"; "value" ] in
    List.iter (fun (name, v) -> Report.Table.add_row t [ name; string_of_int v ]) counters;
    Buffer.add_string buf (Report.Table.render t);
    Buffer.add_char buf '\n'
  end;
  let hists = Registry.histograms reg in
  if hists <> [] then begin
    section "histograms";
    let t =
      Report.Table.create ~headers:[ "histogram"; "count"; "mean"; "p50"; "p95"; "min"; "max" ]
    in
    List.iter
      (fun (name, (s : Registry.hist_stats)) ->
        Report.Table.add_row t
          [ name; string_of_int s.count; f s.mean; f s.p50; f s.p95; f s.min; f s.max ])
      hists;
    Buffer.add_string buf (Report.Table.render t);
    Buffer.add_char buf '\n'
  end;
  let phases = Registry.phases reg in
  if phases <> [] then begin
    section "phases";
    let t =
      Report.Table.create ~headers:[ "phase"; "target cycles"; "target span"; "wall ms" ]
    in
    List.iter
      (fun (p : Registry.phase_info) ->
        Report.Table.add_row t
          [
            p.ph_name;
            Printf.sprintf "%d..%d" p.ph_ts0 p.ph_ts1;
            string_of_int (p.ph_ts1 - p.ph_ts0);
            f (p.ph_wall_s *. 1e3);
          ])
      phases;
    Buffer.add_string buf (Report.Table.render t);
    Buffer.add_char buf '\n'
  end;
  let tr = Registry.trace reg in
  section "trace";
  Buffer.add_string buf
    (Printf.sprintf "%d events retained, %d dropped (capacity %d)\n" (Trace.length tr)
       (Trace.dropped tr) (Trace.capacity tr));
  if Trace.dropped tr > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "WARNING: %d trace events dropped (oldest first) — the ring overflowed; rerun with a \
          larger --trace-capacity for a complete trace\n"
         (Trace.dropped tr));
  Buffer.contents buf

(* ----------------------------------------------------------------- csv *)

let to_csv reg =
  let t = Report.Table.create ~headers:[ "kind"; "name"; "field"; "value" ] in
  let row kind name field value = Report.Table.add_row t [ kind; name; field; value ] in
  List.iter
    (fun (name, v) -> row "counter" name "value" (string_of_int v))
    (Registry.counters reg);
  List.iter
    (fun (name, (s : Registry.hist_stats)) ->
      row "histogram" name "count" (string_of_int s.count);
      row "histogram" name "sum" (f s.sum);
      row "histogram" name "mean" (f s.mean);
      row "histogram" name "p50" (f s.p50);
      row "histogram" name "p95" (f s.p95);
      row "histogram" name "min" (f s.min);
      row "histogram" name "max" (f s.max))
    (Registry.histograms reg);
  List.iter
    (fun (p : Registry.phase_info) ->
      row "phase" p.ph_name "target_cycles" (string_of_int (p.ph_ts1 - p.ph_ts0));
      row "phase" p.ph_name "wall_s" (Printf.sprintf "%.6f" p.ph_wall_s))
    (Registry.phases reg);
  Report.Table.to_csv t

(* ---------------------------------------------------------------- json *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_arg = function
  | Trace.Int n -> string_of_int n
  | Trace.Float x -> Printf.sprintf "%.6g" x
  | Trace.Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let json_event (e : Trace.event) =
  let args =
    match e.args with
    | [] -> ""
    | args ->
      let fields =
        List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_arg v)) args
      in
      Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)
  in
  let dur = if e.ph = 'X' then Printf.sprintf ",\"dur\":%d" e.dur else "" in
  Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%d,\"pid\":0,\"tid\":%d%s%s}"
    (json_escape e.name) (json_escape e.cat) e.ph e.ts e.tid dur args

let chrome_trace reg =
  let tr = Registry.trace reg in
  let meta =
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"simbridge\"}}"
  in
  (* A final counter sample makes headline counters visible on the
     timeline even for traces that only carry phase events. *)
  let final_counters =
    match Registry.counters reg with
    | [] -> []
    | kvs ->
      let ts =
        List.fold_left (fun acc (p : Registry.phase_info) -> max acc p.ph_ts1) 0
          (Registry.phases reg)
      in
      List.map
        (fun (name, v) ->
          json_event
            { Trace.name; cat = "counter"; ph = 'C'; ts; dur = 0; tid = 0; args = [ ("value", Trace.Int v) ] })
        kvs
  in
  let events = meta :: (List.map json_event (Trace.to_list tr) @ final_counters) in
  Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n"
    (String.concat ",\n" events)

(* --------------------------------------------------------------- write *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (* Only a lost race (someone else created it) is benign; every other
       failure (permissions, a file in the way) must surface instead of
       letting [write_file] fail later with a confusing ENOENT. *)
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (Printf.sprintf "%s: %s" dir (Unix.error_message e)))
  end

let write reg ~dir =
  mkdir_p dir;
  write_file (Filename.concat dir "telemetry.txt") (summary reg);
  write_file (Filename.concat dir "telemetry.csv") (to_csv reg);
  write_file (Filename.concat dir "trace.json") (chrome_trace reg)
