(** Render a {!Registry} three ways:

    - a plain-text report ({!summary}) built on [Report.Table];
    - an RFC-4180 CSV ({!to_csv}) with one [kind,name,field,value] row
      per metric facet, suitable for joining against result CSVs;
    - Chrome trace-event JSON ({!chrome_trace}) loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  Trace
      timestamps are target cycles rendered in the JSON's microsecond
      field, so one trace "µs" = one target cycle.

    {!write} drops all three next to a run's results as
    [telemetry.txt], [telemetry.csv], and [trace.json]. *)

val summary : Registry.t -> string
(** Includes a WARNING line when the bounded trace ring dropped
    events, so truncated traces are visible instead of silent. *)

val to_csv : Registry.t -> string

val chrome_trace : Registry.t -> string

val write : Registry.t -> dir:string -> unit
(** Creates [dir] — including missing parent directories, so
    [--telemetry out/run1/telemetry] works on a clean tree.  Raises
    [Sys_error] when a component cannot be created. *)
