type attr = string * Trace.arg

let int k v : attr = (k, Trace.Int v)
let float k v : attr = (k, Trace.Float v)
let str k v : attr = (k, Trace.Str v)

let with_ ?root ?(attrs = []) ~name reg f = Registry.span_with reg ?root ~args:attrs name f
let root ~name reg f = with_ ~root:true ~name reg f

type open_span = { os_reg : Registry.t; os_span : Registry.span }

let start ?root ~name reg = { os_reg = reg; os_span = Registry.span_start reg ?root name }
let finish ?(attrs = []) os = Registry.span_end os.os_reg os.os_span ~args:attrs ()
let id os = Registry.span_id os.os_span
