(** Bounded event-trace ring buffer.

    Events follow the Chrome trace-event model (name, category, phase,
    timestamp, duration, thread lane, arguments) so the exporter can emit
    them directly as [chrome://tracing] / Perfetto JSON.  Timestamps are
    *target* cycles, not host time: the trace is a deterministic function
    of the simulated execution, which is what lets the scheduler's
    host-policy-independence property extend to telemetry.

    The buffer is a fixed-capacity ring: recording beyond capacity drops
    the *oldest* events (the tail of a run is usually the interesting
    part) and counts the drops. *)

type arg =
  | Int of int
  | Float of float
  | Str of string

type event = {
  name : string;
  cat : string;  (** coarse component label: "phase", "smpi", "firesim", ... *)
  ph : char;  (** Chrome phase: 'X' complete, 'i' instant, 'C' counter *)
  ts : int;  (** start, in target cycles *)
  dur : int;  (** duration in target cycles; 0 for instants *)
  tid : int;  (** lane: rank / model index / 0 *)
  args : (string * arg) list;
}

type t

val create : capacity:int -> t
(** [capacity = 0] gives a sink that drops everything (the disabled
    registry uses it). *)

val record : t -> event -> unit
val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Events discarded because the ring was full. *)

val to_list : t -> event list
(** Retained events, oldest first. *)

val clear : t -> unit

val append : into:t -> t -> unit
(** [append ~into child] records [child]'s retained events into [into]
    in order and adds [child]'s drop count to [into]'s.  No-op when
    [into] has capacity 0 or is [child] itself.  Used by
    {!Registry.merge} to fold per-domain trace rings back into the
    parent in a deterministic order. *)
