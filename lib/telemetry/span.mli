(** Ergonomic face of the registry's span primitives (see
    {!Registry.span_start} for semantics: deterministic ids, parent
    links in [args], context-gated recording, zero-cost when the
    registry is disabled).

    Instrumentation sites write

    {[ Span.with_ ~name:"measure" ~attrs:[ Span.int "cycles" n ] reg f ]}

    and get a Chrome 'X' event on the process-wide wall timeline iff a
    root span is active above them. *)

type attr = string * Trace.arg

val int : string -> int -> attr
val float : string -> float -> attr
val str : string -> string -> attr

val with_ : ?root:bool -> ?attrs:attr list -> name:string -> Registry.t -> (unit -> 'a) -> 'a
(** Run [f] inside a span; the span closes (and records, with [attrs])
    even when [f] raises. *)

val root : name:string -> Registry.t -> (unit -> 'a) -> 'a
(** [with_ ~root:true]: opens the run's root span, under which all
    nested spans (including those in forked cell sinks) record. *)

type open_span

val start : ?root:bool -> name:string -> Registry.t -> open_span
val finish : ?attrs:attr list -> open_span -> unit
(** Imperative pair for spans that cannot wrap a closure (attrs only
    known at the end). *)

val id : open_span -> string
(** The span's deterministic id ({!Registry.span_id}); [""] when dead.
    Lets out-of-band artifacts (serve response sections, reports) point
    back into the trace. *)
