(** Set-associative cache timing model.

    The model is timestamp-driven rather than cycle-stepped: every access
    arrives with the cycle at which the core (or the upstream cache) issues
    it and returns the cycle at which the data is available.  State —
    tags, LRU order, dirty bits, bank availability, MSHR occupancy — is
    updated as a side effect.  This matches the analytic core models, which
    advance instruction-by-instruction with explicit timestamps.

    Banking: an access occupies its bank for one cycle (pipelined); two
    accesses racing for one bank serialize, which is counted as a bank
    conflict.  MSHRs bound miss-level parallelism: when all MSHRs are
    outstanding a new miss waits for the earliest to retire (the FireSim
    LLC/DRAM token throttling has the same effect at the memory boundary).

    The last-level-cache simplification the paper describes (the FireSim
    LLC "behaves like an SRAM", no tag/data latency detail) is expressed by
    instantiating a cache with [latency = 1] and a single bank. *)

type config = {
  name : string;
  sets : int;  (** power of two *)
  ways : int;
  line : int;  (** line size in bytes, power of two *)
  hit_latency : int;  (** cycles from issue to data on a hit *)
  mshrs : int;  (** max outstanding misses; >= 1 *)
  banks : int;  (** power of two *)
  write_back : bool;
  prefetch_next : int;
      (** next-line prefetch depth on demand misses (0 = off).  Prefetched
          lines install immediately but carry their fill-completion
          timestamp: a demand hit on a still-in-flight line waits for the
          fill, so streams remain coupled to downstream bandwidth. *)
}

val config :
  ?hit_latency:int ->
  ?mshrs:int ->
  ?banks:int ->
  ?write_back:bool ->
  ?line:int ->
  ?prefetch_next:int ->
  name:string ->
  sets:int ->
  ways:int ->
  unit ->
  config

val size_bytes : config -> int
(** Capacity implied by sets × ways × line. *)

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;  (** valid lines displaced by a fill (demand or prefetch) *)
  writebacks : int;
  bank_conflicts : int;
  mshr_stalls : int;
  prefetches : int;
}

type t

type next_level = cycle:int -> addr:int -> write:bool -> int
(** Downstream fetch: issue a line refill at [cycle], get the completion
    cycle back. *)

val create : config -> t

val access :
  ?prefetchable:bool -> t -> next:next_level -> cycle:int -> addr:int -> write:bool -> int
(** [access t ~next ~cycle ~addr ~write] returns the completion cycle of a
    demand access.  Writes allocate (write-allocate policy); dirty
    evictions send a write-back refill downstream without extending the
    demand access's critical path.  [prefetchable] (default true) says
    whether this access may train the stream prefetcher — instruction
    fetches do not (stream prefetchers train on data-side demand
    misses). *)

type warm_next = addr:int -> write:bool -> unit
(** Content-only downstream path for functional warming. *)

val warm_access : ?prefetchable:bool -> t -> next:warm_next -> addr:int -> write:bool -> unit
(** Functional-warming access: performs exactly the state transitions of
    {!access} — tag fills and evictions, LRU order, dirty bits, stream
    prefetcher training and prefetch fills, write-back content propagation
    — with none of the latency bookkeeping (no bank or MSHR arithmetic, no
    fill timestamps).  Sampled simulation drives the warming fast path
    through this so cache contents when a detailed interval resumes match
    what a full run would have left. *)

val probe : t -> addr:int -> bool
(** Would [addr] hit right now?  (No state change; for tests.) *)

val flush : t -> unit
(** Invalidate all lines and reset bank/MSHR availability (not stats). *)

val stats : t -> stats
val reset_stats : t -> unit
val miss_rate : t -> float
val line_addr : t -> int -> int
