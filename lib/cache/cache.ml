type config = {
  name : string;
  sets : int;
  ways : int;
  line : int;
  hit_latency : int;
  mshrs : int;
  banks : int;
  write_back : bool;
  prefetch_next : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ?(hit_latency = 2) ?(mshrs = 4) ?(banks = 1) ?(write_back = true) ?(line = Util.Arch.cache_line_bytes)
    ?(prefetch_next = 0) ~name ~sets ~ways () =
  if not (is_pow2 sets) then invalid_arg "Cache.config: sets must be a power of two";
  if not (is_pow2 line) then invalid_arg "Cache.config: line must be a power of two";
  if not (is_pow2 banks) then invalid_arg "Cache.config: banks must be a power of two";
  if ways <= 0 then invalid_arg "Cache.config: ways";
  if mshrs <= 0 then invalid_arg "Cache.config: mshrs";
  if hit_latency <= 0 then invalid_arg "Cache.config: hit_latency";
  if prefetch_next < 0 then invalid_arg "Cache.config: prefetch_next";
  { name; sets; ways; line; hit_latency; mshrs; banks; write_back; prefetch_next }

let size_bytes c = c.sets * c.ways * c.line

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  bank_conflicts : int;
  mshr_stalls : int;
  prefetches : int;
}

type next_level = cycle:int -> addr:int -> write:bool -> int

type t = {
  cfg : config;
  line_shift : int;  (* log2 line, precomputed off the hot path *)
  tags : int array;  (* sets*ways, -1 = invalid; stores line address *)
  last_use : int array;  (* monotone use counter per way *)
  dirty : bool array;
  fill_done : int array;  (* cycle the line's refill completes *)
  pref_tag : bool array;  (* line was prefetched and not yet demanded *)
  bank_free : int array;  (* cycle at which each bank accepts a new access *)
  mshr_done : int array;  (* completion cycles of outstanding misses *)
  mutable use_clock : int;
  streams : int array;  (* stream table: expected next miss line per stream *)
  mutable stream_rr : int;
  mutable s_accesses : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_writebacks : int;
  mutable s_bank_conflicts : int;
  mutable s_mshr_stalls : int;
  mutable s_prefetches : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create cfg =
  {
    cfg;
    line_shift = log2 cfg.line;
    tags = Array.make (cfg.sets * cfg.ways) (-1);
    last_use = Array.make (cfg.sets * cfg.ways) 0;
    dirty = Array.make (cfg.sets * cfg.ways) false;
    fill_done = Array.make (cfg.sets * cfg.ways) 0;
    pref_tag = Array.make (cfg.sets * cfg.ways) false;
    bank_free = Array.make cfg.banks 0;
    mshr_done = Array.make cfg.mshrs 0;
    use_clock = 0;
    streams = Array.make 8 min_int;
    stream_rr = 0;
    s_accesses = 0;
    s_hits = 0;
    s_misses = 0;
    s_evictions = 0;
    s_writebacks = 0;
    s_bank_conflicts = 0;
    s_mshr_stalls = 0;
    s_prefetches = 0;
  }

let line_addr t addr = addr land lnot (t.cfg.line - 1)

let set_of t addr =
  let line = addr lsr t.line_shift in
  line land (t.cfg.sets - 1)

let bank_of t addr =
  let line = addr lsr t.line_shift in
  line land (t.cfg.banks - 1)

(* Loops below use local refs and unsafe array accesses rather than inner
   recursive functions — without flambda the latter allocate a closure per
   call, and these run once per memory access in the replay hot loop.
   Indices are in range by construction ([set] < sets, [w] < ways). *)
let find_way t set line =
  let base = set * t.cfg.ways in
  let found = ref (-1) in
  let w = ref 0 in
  let ways = t.cfg.ways in
  while !w < ways do
    if Array.unsafe_get t.tags (base + !w) = line then begin
      found := base + !w;
      w := ways
    end
    else incr w
  done;
  !found

let victim_way t set =
  let base = set * t.cfg.ways in
  let best = ref base in
  for w = 1 to t.cfg.ways - 1 do
    let i = base + w in
    let tag_i = Array.unsafe_get t.tags i in
    let tag_b = Array.unsafe_get t.tags !best in
    if tag_i = -1 && tag_b <> -1 then best := i
    else if
      tag_i <> -1 && tag_b <> -1
      && Array.unsafe_get t.last_use i < Array.unsafe_get t.last_use !best
    then best := i
  done;
  !best

let touch t slot =
  t.use_clock <- t.use_clock + 1;
  Array.unsafe_set t.last_use slot t.use_clock

(* Stream table scan / advance, shared by timed and warm access paths. *)
let stream_hit t line =
  let n = Array.length t.streams in
  let hit = ref false in
  let i = ref 0 in
  while !i < n do
    if Array.unsafe_get t.streams !i = line then begin
      hit := true;
      i := n
    end
    else incr i
  done;
  !hit

let stream_advance t line =
  for i = 0 to Array.length t.streams - 1 do
    if Array.unsafe_get t.streams i = line then Array.unsafe_set t.streams i (line + t.cfg.line)
  done

(* Reserve an MSHR for a miss issued at [cycle]; returns the cycle at which
   the miss can actually be sent downstream. *)
let grab_mshr t cycle =
  let best = ref 0 in
  for i = 1 to t.cfg.mshrs - 1 do
    if Array.unsafe_get t.mshr_done i < Array.unsafe_get t.mshr_done !best then best := i
  done;
  let start =
    if t.mshr_done.(!best) <= cycle then cycle
    else begin
      t.s_mshr_stalls <- t.s_mshr_stalls + 1;
      t.mshr_done.(!best)
    end
  in
  (!best, start)

(* Install [line] (absent) by evicting a victim; returns the slot. *)
let install t set line ~fill ~dirty ~prefetched ~next =
  let victim = victim_way t set in
  if t.tags.(victim) <> -1 then t.s_evictions <- t.s_evictions + 1;
  if t.tags.(victim) <> -1 && t.dirty.(victim) && t.cfg.write_back then begin
    t.s_writebacks <- t.s_writebacks + 1;
    (* The write-back consumes downstream bandwidth but is off the demand
       access's critical path. *)
    ignore (next ~cycle:fill ~addr:(t.tags.(victim)) ~write:true)
  end;
  t.tags.(victim) <- line;
  t.dirty.(victim) <- dirty;
  t.fill_done.(victim) <- fill;
  t.pref_tag.(victim) <- prefetched;
  touch t victim;
  victim

(* Bring one line in as a prefetch (no-op if present). *)
let prefetch_line t line ~cycle ~next =
  let set = set_of t line in
  if find_way t set line < 0 then begin
    t.s_prefetches <- t.s_prefetches + 1;
    let fill = next ~cycle ~addr:line ~write:false in
    ignore (install t set line ~fill ~dirty:false ~prefetched:true ~next)
  end

let access ?(prefetchable = true) t ~next ~cycle ~addr ~write =
  t.s_accesses <- t.s_accesses + 1;
  let bank = bank_of t addr in
  let start =
    if t.bank_free.(bank) <= cycle then cycle
    else begin
      t.s_bank_conflicts <- t.s_bank_conflicts + 1;
      t.bank_free.(bank)
    end
  in
  (* Pipelined bank: occupied for one cycle per access. *)
  t.bank_free.(bank) <- start + 1;
  let line = line_addr t addr in
  let set = set_of t addr in
  let slot = find_way t set line in
  if slot >= 0 then begin
    t.s_hits <- t.s_hits + 1;
    touch t slot;
    if write then t.dirty.(slot) <- true;
    (* Tagged stream prefetch: consuming a prefetched line keeps the
       stream running [prefetch_next] lines ahead. *)
    if t.pref_tag.(slot) then begin
      t.pref_tag.(slot) <- false;
      if t.cfg.prefetch_next > 0 then
        prefetch_line t
          (line + (t.cfg.prefetch_next * t.cfg.line))
          ~cycle:(start + t.cfg.hit_latency) ~next
    end;
    (* A hit on a line whose refill (e.g. a prefetch) is still in flight
       waits for the fill.  Int-annotated compare: [Stdlib.max] is
       polymorphic and costs a call on the per-access fast path. *)
    let hit_done = start + t.cfg.hit_latency in
    let fill = Array.unsafe_get t.fill_done slot in
    if hit_done >= fill then hit_done else fill
  end
  else begin
    t.s_misses <- t.s_misses + 1;
    (* Stream table: a miss matching some stream's expected next line
       confirms that stream; otherwise it allocates a fresh entry.  This
       tracks several interleaved streams (stencil codes touch many). *)
    let sequential = prefetchable && stream_hit t line in
    (if sequential then stream_advance t line
     else if prefetchable then begin
       t.streams.(t.stream_rr) <- line + t.cfg.line;
       t.stream_rr <- (t.stream_rr + 1) mod Array.length t.streams
     end);
    let mshr, issue = grab_mshr t start in
    (* Refill from downstream; the tag lookup has already cost hit_latency. *)
    let fill_done = next ~cycle:(issue + t.cfg.hit_latency) ~addr:line ~write:false in
    t.mshr_done.(mshr) <- fill_done;
    ignore (install t set line ~fill:fill_done ~dirty:(write && t.cfg.write_back) ~prefetched:false ~next);
    (* Stride-detected stream prefetch: a second consecutive miss launches
       a burst covering the next [prefetch_next] lines; tagged hits keep
       the stream ahead.  Random misses never trigger it. *)
    if t.cfg.prefetch_next > 0 && sequential then
      for k = 1 to t.cfg.prefetch_next do
        prefetch_line t (line + (k * t.cfg.line)) ~cycle:(issue + t.cfg.hit_latency) ~next
      done;
    fill_done
  end

(* Content-only access for functional warming: the same tag / LRU / dirty /
   stream-table / prefetch state transitions as [access] — so detailed
   simulation resumes against the cache contents a full run would have —
   with none of the latency bookkeeping (banks, MSHRs, fill timestamps).
   Warmed fills get [fill_done = 0]: their refill is long past by the time
   a detailed interval can hit them. *)
type warm_next = addr:int -> write:bool -> unit

let rec warm_install t set line ~dirty ~prefetched ~(next : warm_next) =
  let victim = victim_way t set in
  if t.tags.(victim) <> -1 then begin
    t.s_evictions <- t.s_evictions + 1;
    if t.dirty.(victim) && t.cfg.write_back then begin
      t.s_writebacks <- t.s_writebacks + 1;
      next ~addr:t.tags.(victim) ~write:true
    end
  end;
  t.tags.(victim) <- line;
  t.dirty.(victim) <- dirty;
  t.fill_done.(victim) <- 0;
  t.pref_tag.(victim) <- prefetched;
  touch t victim

and warm_prefetch_line t line ~(next : warm_next) =
  let set = set_of t line in
  if find_way t set line < 0 then begin
    t.s_prefetches <- t.s_prefetches + 1;
    next ~addr:line ~write:false;
    warm_install t set line ~dirty:false ~prefetched:true ~next
  end

let warm_access ?(prefetchable = true) t ~(next : warm_next) ~addr ~write =
  t.s_accesses <- t.s_accesses + 1;
  let line = line_addr t addr in
  let set = set_of t addr in
  let slot = find_way t set line in
  if slot >= 0 then begin
    t.s_hits <- t.s_hits + 1;
    touch t slot;
    if write then t.dirty.(slot) <- true;
    if t.pref_tag.(slot) then begin
      t.pref_tag.(slot) <- false;
      if t.cfg.prefetch_next > 0 then
        warm_prefetch_line t (line + (t.cfg.prefetch_next * t.cfg.line)) ~next
    end
  end
  else begin
    t.s_misses <- t.s_misses + 1;
    let sequential = prefetchable && stream_hit t line in
    (if sequential then stream_advance t line
     else if prefetchable then begin
       t.streams.(t.stream_rr) <- line + t.cfg.line;
       t.stream_rr <- (t.stream_rr + 1) mod Array.length t.streams
     end);
    next ~addr:line ~write:false;
    warm_install t set line ~dirty:(write && t.cfg.write_back) ~prefetched:false ~next;
    if t.cfg.prefetch_next > 0 && sequential then
      for k = 1 to t.cfg.prefetch_next do
        warm_prefetch_line t (line + (k * t.cfg.line)) ~next
      done
  end

let probe t ~addr =
  let line = line_addr t addr in
  find_way t (set_of t addr) line >= 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.fill_done 0 (Array.length t.fill_done) 0;
  Array.fill t.pref_tag 0 (Array.length t.pref_tag) false;
  Array.fill t.streams 0 (Array.length t.streams) min_int;
  Array.fill t.bank_free 0 (Array.length t.bank_free) 0;
  Array.fill t.mshr_done 0 (Array.length t.mshr_done) 0

let stats t =
  {
    accesses = t.s_accesses;
    hits = t.s_hits;
    misses = t.s_misses;
    evictions = t.s_evictions;
    writebacks = t.s_writebacks;
    bank_conflicts = t.s_bank_conflicts;
    mshr_stalls = t.s_mshr_stalls;
    prefetches = t.s_prefetches;
  }

let reset_stats t =
  t.s_accesses <- 0;
  t.s_hits <- 0;
  t.s_misses <- 0;
  t.s_evictions <- 0;
  t.s_writebacks <- 0;
  t.s_bank_conflicts <- 0;
  t.s_mshr_stalls <- 0;
  t.s_prefetches <- 0

let miss_rate t =
  if t.s_accesses = 0 then 0.0 else float_of_int t.s_misses /. float_of_int t.s_accesses
