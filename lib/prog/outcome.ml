type fn = int -> bool

let always b = fun _ -> b
let alternating = fun pos -> pos land 1 = 0

let every_nth n =
  if n <= 0 then invalid_arg "Outcome.every_nth: n must be positive";
  fun pos -> pos mod n = 0

let hash01 seed pos =
  let mix z =
    let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    Int64.(logxor z (shift_right_logical z 31))
  in
  let seed = Util.Rng.salted seed in
  let h = mix (Int64.add (Int64.of_int seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (pos + 1)))) in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let biased ~seed ~p_taken = fun pos -> hash01 seed pos < p_taken
let random ~seed = fun pos -> hash01 seed pos < 0.5

let pattern bits =
  let n = Array.length bits in
  if n = 0 then invalid_arg "Outcome.pattern: empty pattern";
  fun pos -> bits.(pos mod n)

let data_dependent data ~threshold =
  let n = Array.length data in
  if n = 0 then invalid_arg "Outcome.data_dependent: empty data";
  fun pos -> data.(pos mod n) > threshold
