type t = Isa.Insn.t Seq.t

let empty = Seq.empty
let of_list = List.to_seq
let append = Seq.append

(* The combinators below are flat walkers: they hold on to the *current*
   sub-sequence's tail plus the iteration state, so stepping one element
   is O(1).  The naive [Seq.append]-based versions built a left-leaning
   append spine that was re-walked on every element, making [repeat] —
   the backbone of every kernel loop — quadratic in the element count. *)

let concat ts =
  let rec start ts () =
    match ts with
    | [] -> Seq.Nil
    | s :: rest -> walk rest s ()
  and walk rest cur () =
    match cur () with
    | Seq.Cons (x, tl) -> Seq.Cons (x, walk rest tl)
    | Seq.Nil -> start rest ()
  in
  start ts

let repeat n s =
  if n <= 0 then Seq.empty
  else
    let rec walk i cur () =
      match cur () with
      | Seq.Cons (x, tl) -> Seq.Cons (x, walk i tl)
      | Seq.Nil -> if i + 1 >= n then Seq.Nil else walk (i + 1) s ()
    in
    walk 0 s

let iterate n f =
  if n <= 0 then Seq.empty
  else
    let rec start i () = if i >= n then Seq.Nil else walk i (f i) ()
    and walk i cur () =
      match cur () with
      | Seq.Cons (x, tl) -> Seq.Cons (x, walk i tl)
      | Seq.Nil -> start (i + 1) ()
    in
    start 0

let unfold init step =
  let rec start state () =
    match step state with
    | None -> Seq.Nil
    | Some (burst, state') -> walk state' burst ()
  and walk state burst () =
    match burst with
    | [] -> start state ()
    | x :: tl -> Seq.Cons (x, walk state tl)
  in
  start init

let length s = Seq.fold_left (fun n _ -> n + 1) 0 s
let take = Seq.take
let count_kind p s = Seq.fold_left (fun n (i : Isa.Insn.t) -> if p i.kind then n + 1 else n) 0 s
