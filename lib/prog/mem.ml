type fn = int -> int

let strided ~base ~elem ~stride_elems ~wrap_elems =
  if wrap_elems <= 0 then invalid_arg "Mem.strided: wrap_elems must be positive";
  fun pos -> base + (pos * stride_elems mod wrap_elems * elem)

let linear ~base ~elem = fun pos -> base + (pos * elem)

let chase rng ~base ~bytes ~stride =
  let nodes = max 2 (bytes / stride) in
  (* Random Hamiltonian cycle: visit nodes in a random permutation; the
     emission just replays the permutation cyclically.  The dependence
     chain (each address loaded from the previous node) is expressed by the
     kernel through registers.  The permutation is memoized on the
     generator state, so replaying the same seeded chase on another
     platform reuses the array instead of re-shuffling. *)
  let order = Util.Rng.shared_permutation rng nodes in
  fun pos -> base + (order.(pos mod nodes) * stride)

let random_in ~seed ~base ~bytes ~align =
  if align <= 0 then invalid_arg "Mem.random_in: align must be positive";
  let slots = max 1 (bytes / align) in
  let mix z =
    let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    Int64.(logxor z (shift_right_logical z 31))
  in
  fun pos ->
    let seed = Util.Rng.salted seed in
    let h = mix (Int64.add (Int64.of_int seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (pos + 1)))) in
    let slot = Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int slots)) in
    base + (slot * align)

let conflict ~base ~line ~sets ~distinct =
  if distinct <= 0 then invalid_arg "Mem.conflict: distinct must be positive";
  fun pos -> base + (pos mod distinct * sets * line)

let gather index ~elem ~base =
  let n = Array.length index in
  if n = 0 then invalid_arg "Mem.gather: empty index";
  fun pos -> base + (index.(pos mod n) * elem)
