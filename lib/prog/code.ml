type allocator = { mutable next : int; line : int }
type region = { base : int; slots : int }

let create_allocator ?(text_base = 0x10000) ?(line = Util.Arch.cache_line_bytes) () =
  if line <= 0 || line land (line - 1) <> 0 then
    invalid_arg "Code.create_allocator: line must be a positive power of two";
  { next = text_base; line }

let alloc a ~slots =
  if slots <= 0 then invalid_arg "Code.alloc: slots must be positive";
  (* Align regions to icache lines so footprints are as the kernel intends. *)
  let mask = a.line - 1 in
  let aligned = (a.next + mask) land lnot mask in
  a.next <- aligned + (slots * 4);
  { base = aligned; slots }

let pc r slot =
  assert (slot >= 0 && slot < r.slots);
  r.base + (slot * 4)

let footprint_bytes r = r.slots * 4
