(** Static code layout.

    Instruction-cache behaviour depends on the *footprint* of the code a
    kernel executes, so kernels allocate static code regions here and draw
    their PCs from them.  A region is a contiguous range of 4-byte
    instruction slots; [pc region slot] addresses one slot.  Distinct
    kernels and distinct functions within a kernel allocate distinct
    regions, so a kernel calling many functions (the MIP microbenchmark,
    large-basic-block control kernels, application codes) naturally sweeps a
    large PC range and stresses the L1I model. *)

type allocator
(** Bump allocator over a text segment. *)

type region = { base : int; slots : int }

val create_allocator : ?text_base:int -> ?line:int -> unit -> allocator
(** Fresh text segment; default base 0x10000.  [line] is the icache-line
    alignment granularity for {!alloc} (a positive power of two; default
    {!Util.Arch.cache_line_bytes}). *)

val alloc : allocator -> slots:int -> region
(** Allocate a region of [slots] 4-byte instruction slots, aligned to the
    allocator's icache-line size so regions start on a fresh line. *)

val pc : region -> int -> int
(** [pc r slot] is the byte PC of slot [slot] (asserts bounds). *)

val footprint_bytes : region -> int
