(** Architectural constants shared across layers.

    Every place that assumes a cache-line granularity — the cache model's
    default line size, {!Prog.Code}'s region alignment, the core models'
    fetch-line tracking — draws it from here, so a future non-64-byte-line
    platform has a single constant to generalize instead of scattered
    magic numbers. *)

val cache_line_bytes : int
(** Line size in bytes shared by all cache levels (64). *)

val cache_line_shift : int
(** [log2 cache_line_bytes]: shift that maps a byte address to its line
    index. *)
