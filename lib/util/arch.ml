(* Architectural constants shared across layers.  The cache line size is
   referenced from several places that must agree — the cache model's
   default geometry, the code allocator's region alignment, and the core
   models' fetch-line tracking — so it lives here once. *)

let cache_line_bytes = 64
let cache_line_shift = 6
let () = assert (1 lsl cache_line_shift = cache_line_bytes)
