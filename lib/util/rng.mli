(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the simulator flows through this module so
    that every simulation is reproducible bit-for-bit.  The generator is
    SplitMix64 (Steele, Lea, Flood 2014): tiny state, excellent statistical
    quality for simulation purposes, and cheap splitting for deriving
    independent streams per (workload, rank, purpose). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    remainder of [t]'s stream. *)

val derive : t -> string -> t
(** [derive t label] derives a generator deterministically keyed by [label],
    without disturbing [t]'s own stream.  Use this to give sub-components
    stable streams that do not depend on call order elsewhere. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of 0..n-1. *)

val shared_permutation : t -> int -> int array
(** Like {!permutation}, but memoized on (generator state, n): callers
    replaying the same seeded stream share one array instead of re-running
    the Fisher–Yates shuffle (the multi-MiB pointer-chase workloads rebuild
    ~2M-entry permutations once per platform otherwise).  The returned
    array MUST be treated as read-only.  The generator state advances
    exactly as a non-memoized call would.

    The memo table is {e domain-local} (one table per worker domain, via
    [Domain.DLS]) rather than mutex-guarded: concurrent cells in the
    experiment pool hit this path, and a per-domain table needs no
    locking and never shares arrays across domains.  Each domain pays at
    most one rebuild per distinct (state, n); the memoized result is a
    pure function of those, so which domain computed it can never be
    observed in the output. *)

(** {2 Global seed override}

    All baked-in workload seeds flow through {!salted}.  The default
    global seed 0 is the identity — every stream is bit-identical to the
    historical fixed-seed behaviour.  Setting a nonzero global seed
    deterministically re-keys every seeded stream in the process, enabling
    sampling-error experiments across seeds (the CLI's [--seed] flag).

    {b Parallel-safety contract:} the global seed is {e read-only after
    startup}.  {!set_global_seed} must only be called before any worker
    domain exists (the CLI sets it while still single-domain); every
    domain then reads it without synchronization.  Worker cells never
    re-seed — they derive per-cell generators from
    [(global seed, cell index)] via {!for_cell}. *)

val set_global_seed : int -> unit
val get_global_seed : unit -> int

val for_cell : int -> t
(** [for_cell i] is the generator for grid cell [i] of a parallel
    experiment run: a pure function of [(global seed, i)], independent of
    call order, of which domain evaluates it, and of every other stream
    in the process — so pooled and sequential executions draw identical
    randomness per cell.  Raises [Invalid_argument] on a negative
    index. *)

val salted : int -> int
(** [salted seed] mixes the global seed into a workload-local seed;
    identity when the global seed is 0. *)
