type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

(* Global seed override: 0 (the default) leaves every baked-in workload
   seed untouched, so historical runs stay bit-identical; any other value
   perturbs every seeded stream in the process deterministically.  Used by
   the CLI's --seed flag for sampling-error experiments across seeds.
   Written only at startup (before any worker domain exists); all
   domains read it unsynchronized thereafter — see rng.mli. *)
let global_seed = ref 0

let set_global_seed s = global_seed := s
let get_global_seed () = !global_seed

let salted seed =
  if !global_seed = 0 then seed
  else
    Int64.to_int
      (Int64.logand
         (mix64 (Int64.add (Int64.of_int seed) (Int64.mul golden_gamma (Int64.of_int !global_seed))))
         0x3FFF_FFFF_FFFF_FFFFL)

let create seed = { state = mix64 (Int64.of_int (salted seed)) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let derive t label =
  (* Key the child stream on a hash of [label] mixed with the parent state,
     leaving the parent stream untouched. *)
  let h = Hashtbl.hash label in
  { state = mix64 (Int64.add t.state (Int64.of_int ((h * 2) + 1))) }

let for_cell index =
  if index < 0 then invalid_arg "Rng.for_cell: negative cell index";
  (* A pure function of (global_seed, index): the base state folds in the
     global seed via [salted]; the odd per-index offset then keys the
     cell stream the same way [derive] keys label streams. *)
  let base = mix64 (Int64.of_int (salted 0x9E3779B9)) in
  { state = mix64 (Int64.add base (Int64.of_int ((index * 2) + 1))) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits into [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

(* Workload address patterns rebuild the same multi-million-entry
   permutations once per platform per run (the 128 MiB pointer-chase ring
   is ~2M nodes, ~80 ms of random-access shuffling).  The result is a pure
   function of (state, n), so memoize it.  The generator state is advanced
   exactly as [permutation] would have (shuffle draws n-1 times, and each
   draw adds the golden gamma to the state), keeping downstream draws
   bit-identical whether the entry was cached or not.

   The memo table is domain-local (Domain.DLS), not mutex-guarded: worker
   domains in the experiment pool hit this path concurrently, and a
   per-domain table needs no locking, never shares arrays across domains
   (so even a caller that ignores the read-only contract cannot corrupt a
   sibling's stream), and still amortizes the shuffle because each domain
   runs many cells.  The only cost is one rebuild per domain per
   distinct (state, n) — noise next to the simulations themselves. *)
let perm_memo_key : (int64 * int, int array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let perm_memo_capacity = 32

let shared_permutation t n =
  let perm_memo = Domain.DLS.get perm_memo_key in
  let key = (t.state, n) in
  match Hashtbl.find_opt perm_memo key with
  | Some a ->
    t.state <- Int64.add t.state (Int64.mul (Int64.of_int (max 0 (n - 1))) golden_gamma);
    a
  | None ->
    let a = permutation t n in
    if Hashtbl.length perm_memo >= perm_memo_capacity then Hashtbl.reset perm_memo;
    Hashtbl.add perm_memo key a;
    a
