(** Thread-safe blocking job queue — the async front half of the
    service stack.

    The {!Pool} runs a {e fixed} grid of cells and joins; a persistent
    service ([simbridge serve]) instead has producer threads (one per
    client connection) feeding an open-ended stream of requests to a
    single dispatcher thread, which drains whatever has accumulated,
    coalesces overlapping work, and submits the deduplicated batch to
    the Domain pool.  This queue is that seam: multi-producer,
    single-or-multi-consumer, blocking, with close-and-drain semantics
    for graceful shutdown.

    Unlike the pool, the queue makes no determinism promises by itself —
    arrival order depends on client scheduling.  Determinism of the
    {e payloads} is the serve engine's contract (every response is a
    pure function of its query); the queue only guarantees that no
    pushed element is lost: everything accepted before {!close} is
    returned by some {!pop_batch} call. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> bool
(** Enqueue one element and wake a blocked consumer.  Returns [false]
    (and drops the element) when the queue has been closed — producers
    use this to answer "shutting down" instead of enqueueing. *)

val pop_batch : 'a t -> 'a list
(** Block until at least one element is available (or the queue is
    closed), then drain and return {e everything} queued, in arrival
    order.  The all-at-once drain is what enables request batching:
    elements that accumulated while the consumer was busy come back as
    one batch.  Returns [[]] only when the queue is closed and empty —
    the consumer's signal to exit. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked consumer.  Elements
    already queued remain poppable ({!pop_batch} keeps returning them
    until empty), so close-then-drain loses nothing.  Idempotent. *)

val closed : 'a t -> bool

val length : 'a t -> int
(** Elements currently queued (racy by nature; for stats only). *)
