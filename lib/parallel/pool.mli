(** Domain-based worker pool for independent simulation cells.

    The paper's result set is a grid of independent (platform, workload,
    core count) simulations; this pool runs those cells concurrently on
    host cores (OCaml 5 Domains) while keeping every observable output
    bit-identical to a sequential run:

    - {b Deterministic ordering.}  Cells carry their grid index; results
      are reassembled in submission order, so consumers see exactly the
      list a sequential loop would have produced.
    - {b Deterministic randomness.}  Each cell receives a generator
      derived from [(global seed, cell index)] ({!Util.Rng.for_cell}) —
      a pure function of the grid position, independent of which domain
      runs the cell or in what order.
    - {b Deterministic telemetry.}  Each cell records into a private
      forked sink ({!Telemetry.Registry.fork}); sinks are merged into
      the parent registry in cell-index order at join time
      ({!Telemetry.Registry.merge}), so counters, histograms, phases and
      trace events never interleave or race.  The sequential [jobs = 1]
      path uses the identical fork/merge code, so telemetry too is
      bit-identical across job counts.

    Cells must not touch process-global mutable state.  The two global
    sites in the tree are parallel-safe by construction: the {!Util.Rng}
    global seed is read-only after startup, and its permutation memo
    table is domain-local. *)

type ctx = {
  cell_index : int;  (** the cell's position in the submitted grid *)
  rng : Util.Rng.t;  (** per-cell generator, {!Util.Rng.for_cell}[ cell_index] *)
  telemetry : Telemetry.Registry.t;
      (** private sink, merged into the parent registry at join time *)
}
(** Execution context handed to every cell. *)

type 'r cell = {
  label : string;  (** diagnostic label, e.g. ["milkv-sim/MM"] *)
  run : ctx -> 'r;
}

val cell : ?label:string -> (ctx -> 'r) -> 'r cell
(** Wrap a thunk as a cell (default label ["cell"]). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the host's useful parallelism. *)

val physical_cores : unit -> int option
(** Physical (non-SMT) core count: the number of distinct
    [(physical id, core id)] pairs in [/proc/cpuinfo].  [None] when the
    file is missing or holds no such topology (non-Linux hosts, some
    containers).  Distinct from {!recommended_jobs}, which counts
    hyperthreads: two cells of this simulator on one physical core
    contend for the same execution units, so speedup gates should bar
    on physical cores, not logical ones. *)

val resolve_jobs : int -> int
(** [resolve_jobs jobs] maps the user-facing jobs count to a worker
    count: [0] (auto) becomes {!recommended_jobs}, positive values pass
    through.  Raises [Invalid_argument] on a negative count. *)

val set_default_jobs : int -> unit
(** Set the process-wide default used when {!run} is called without
    [?jobs] (the CLI's [--jobs] flag).  [0] = auto.  Raises
    [Invalid_argument] on a negative count.  Must only be called at
    startup, before any pool runs — like the {!Util.Rng} global seed it
    is read-only once cells may be in flight. *)

val default_jobs : unit -> int
(** The resolved process-wide default ({!recommended_jobs} unless
    {!set_default_jobs} chose otherwise). *)

(** {2 Progress observation} *)

type progress_event = {
  pe_total : int;  (** cells in the submitted grid *)
  pe_done : int;  (** cells completed so far *)
  pe_label : string;  (** the cell this event concerns *)
  pe_started : bool;  (** [true] = cell picked up, [false] = completed *)
  pe_elapsed_s : float;  (** wall time since the grid was submitted *)
}

val set_progress_hook : (progress_event -> unit) option -> unit
(** Install (or clear) the process-wide progress observer, called from
    {e worker domains} as cells start and finish — it must be
    thread-safe and fast.  Exceptions it raises are swallowed.  Meant
    for the CLI's TTY progress line ({!Ledger.Progress}); when unset
    (the default) the pool reads no wall clock on the disabled-telemetry
    path. *)

val run : ?jobs:int -> ?telemetry:Telemetry.Registry.t -> 'r cell list -> 'r list
(** [run cells] executes every cell and returns their results in
    submission order.  [jobs] (default: the {!set_default_jobs} value)
    bounds the worker-domain count; [jobs = 1] — or a single cell —
    degrades to in-process sequential execution with no domain spawned.
    Workers pull cells from a shared queue, so long cells don't convoy
    short ones.

    [telemetry] (default {!Telemetry.Registry.disabled}) is the parent
    registry: each cell records into a private fork, merged back in cell
    order after the workers join.  When the caller has an active span
    ({!Telemetry.Registry.span_active}), every cell additionally records
    a span (namespace ["c<i>."], parent = the caller's current span,
    [tid] = worker lane) annotated with its queue wait, so the merged
    Chrome trace shows the real fan-out timeline.

    If any cell raises, remaining unstarted cells are skipped
    (best-effort), every sink that did run is still merged, and the
    exception of the lowest-indexed failing cell is re-raised with its
    backtrace. *)

val map : ?jobs:int -> ?telemetry:Telemetry.Registry.t -> ('a -> 'r) -> 'a list -> 'r list
(** [map f xs] is [run] over [List.map f xs] for cells that need no
    {!ctx}: results are in input order. *)
