(* Mutex + condition variable; both are stdlib and work across threads
   and domains alike.  The queue holds a reversed accumulator so push is
   O(1) and the batch drain reverses once. *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable rev_items : 'a list;  (* newest first *)
  mutable count : int;
  mutable is_closed : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    rev_items = [];
    count = 0;
    is_closed = false;
  }

let push t x =
  Mutex.protect t.mutex (fun () ->
      if t.is_closed then false
      else begin
        t.rev_items <- x :: t.rev_items;
        t.count <- t.count + 1;
        Condition.signal t.nonempty;
        true
      end)

let pop_batch t =
  Mutex.protect t.mutex (fun () ->
      while t.rev_items = [] && not t.is_closed do
        Condition.wait t.nonempty t.mutex
      done;
      let batch = List.rev t.rev_items in
      t.rev_items <- [];
      t.count <- 0;
      batch)

let close t =
  Mutex.protect t.mutex (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)

let closed t = Mutex.protect t.mutex (fun () -> t.is_closed)
let length t = Mutex.protect t.mutex (fun () -> t.count)
