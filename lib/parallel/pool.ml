module Registry = Telemetry.Registry

type ctx = {
  cell_index : int;
  rng : Util.Rng.t;
  telemetry : Registry.t;
}

type 'r cell = {
  label : string;
  run : ctx -> 'r;
}

let cell ?(label = "cell") run = { label; run }
let recommended_jobs () = Domain.recommended_domain_count ()

(* /proc/cpuinfo lists one block per logical CPU; hyperthread siblings
   share a (physical id, core id) pair, so the number of distinct pairs
   is the physical core count.  Blocks are separated by blank lines; a
   block with no topology lines (some ARM kernels, qemu) contributes
   nothing, and if no block has them we report None rather than guess. *)
let physical_cores () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let field line key =
          match String.index_opt line ':' with
          | Some i when String.trim (String.sub line 0 i) = key ->
            Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
          | _ -> None
        in
        let pairs = Hashtbl.create 16 in
        let phys = ref None and core = ref None in
        let flush () =
          (match (!phys, !core) with
          | Some p, Some c -> Hashtbl.replace pairs (p, c) ()
          | _ -> ());
          phys := None;
          core := None
        in
        (try
           while true do
             let line = input_line ic in
             if String.trim line = "" then flush ()
             else begin
               (match field line "physical id" with Some v -> phys := Some v | None -> ());
               match field line "core id" with Some v -> core := Some v | None -> ()
             end
           done
         with End_of_file -> flush ());
        let n = Hashtbl.length pairs in
        if n > 0 then Some n else None)

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Pool.resolve_jobs: jobs must be >= 0 (0 = auto)"
  else if jobs = 0 then recommended_jobs ()
  else jobs

(* The process-wide default, set once at CLI startup (--jobs) before any
   pool runs; thereafter read-only, like the Rng global seed. *)
let default_jobs_setting = Atomic.make 0

let set_default_jobs jobs =
  if jobs < 0 then invalid_arg "Pool.set_default_jobs: jobs must be >= 0 (0 = auto)";
  Atomic.set default_jobs_setting jobs

let default_jobs () = resolve_jobs (Atomic.get default_jobs_setting)

(* ------------------------------------------------------------ progress *)

type progress_event = {
  pe_total : int;
  pe_done : int;
  pe_label : string;
  pe_started : bool;
  pe_elapsed_s : float;
}

let progress_hook : (progress_event -> unit) option Atomic.t = Atomic.make None
let set_progress_hook h = Atomic.set progress_hook h

let notify hook ev =
  match hook with
  | None -> ()
  | Some f -> ( try f ev with _ -> () (* a broken display must not kill the run *))

let run ?jobs ?(telemetry = Registry.disabled) cells =
  let cells = Array.of_list cells in
  let n = Array.length cells in
  if n = 0 then []
  else begin
    let jobs = match jobs with Some j -> resolve_jobs j | None -> default_jobs () in
    let workers = min jobs n in
    (* One forked sink per cell (not per worker): merging them back in
       cell-index order makes the combined telemetry independent of how
       the scheduler distributed cells over domains.  Each sink gets a
       per-cell span namespace so cell spans carry deterministic ids and
       link to the caller's current span across the domain boundary. *)
    let span_parent = Registry.span_current telemetry in
    let sinks =
      Array.mapi
        (fun i _ -> Registry.fork ~ns:(Printf.sprintf "c%d." i) ~span_parent telemetry) cells
    in
    let results = Array.make n None in
    let fail_mutex = Mutex.create () in
    let failure = ref None in
    let aborted = Atomic.make false in
    let record_failure i e bt =
      Atomic.set aborted true;
      Mutex.protect fail_mutex (fun () ->
          match !failure with
          | Some (j, _, _) when j <= i -> ()
          | _ -> failure := Some (i, e, bt))
    in
    let hook = Atomic.get progress_hook in
    (* Wall clock is read per cell only when someone is looking (a
       progress hook, or a span context that will record the reading):
       the disabled-telemetry path stays free of per-cell syscalls. *)
    let observed = hook <> None || (Registry.enabled telemetry && span_parent <> "") in
    let run_wall0 = if observed then Unix.gettimeofday () else 0.0 in
    let done_count = Atomic.make 0 in
    let exec ~lane i =
      if not (Atomic.get aborted) then begin
        let sink = sinks.(i) in
        let label = cells.(i).label in
        let t_start = if observed then Unix.gettimeofday () else 0.0 in
        notify hook
          {
            pe_total = n;
            pe_done = Atomic.get done_count;
            pe_label = label;
            pe_started = true;
            pe_elapsed_s = t_start -. run_wall0;
          };
        Registry.set_span_lane sink lane;
        let sp = Registry.span_start sink label in
        let ctx = { cell_index = i; rng = Util.Rng.for_cell i; telemetry = sink } in
        (match cells.(i).run ctx with
        | r -> results.(i) <- Some r
        | exception e -> record_failure i e (Printexc.get_raw_backtrace ()));
        Registry.span_end sink sp
          ~args:
            [
              ("cell_index", Telemetry.Trace.Int i);
              ("queue_wait_us", Telemetry.Trace.Int (int_of_float ((t_start -. run_wall0) *. 1e6)));
            ]
          ();
        let d = 1 + Atomic.fetch_and_add done_count 1 in
        notify hook
          {
            pe_total = n;
            pe_done = d;
            pe_label = label;
            pe_started = false;
            pe_elapsed_s = (if observed then Unix.gettimeofday () -. run_wall0 else 0.0);
          }
      end
    in
    if workers <= 1 then
      (* Graceful fallback: plain in-process loop, no domain spawned. *)
      for i = 0 to n - 1 do
        exec ~lane:0 i
      done
    else begin
      let next = Atomic.make 0 in
      let worker lane () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            exec ~lane i;
            loop ()
          end
        in
        loop ()
      in
      (* Domain.join gives the happens-before edge that publishes every
         worker's writes (results slots, sink contents) to this domain. *)
      let domains = List.init workers (fun lane -> Domain.spawn (worker lane)) in
      List.iter Domain.join domains
    end;
    Array.iter (fun sink -> Registry.merge ~into:telemetry sink) sinks;
    (match !failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some r -> r
           | None -> invalid_arg (Printf.sprintf "Pool.run: cell %d (%s) produced no result" i cells.(i).label))
         results)
  end

let map ?jobs ?telemetry f xs = run ?jobs ?telemetry (List.map (fun x -> cell (fun _ctx -> f x)) xs)
