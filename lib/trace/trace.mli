(** Compiled struct-of-arrays instruction traces.

    A workload stream ([Isa.Insn.t Seq.t]) costs a record allocation, two
    option boxes, and a [Seq] node per instruction *per traversal* — and
    sampled runs traverse a stream for functional warming and detailed
    timing separately.  [compile] pays the generator cost once and packs
    the stream into three flat [int array]s (PC / packed metadata /
    address-or-target); replay consumers then index those arrays directly,
    allocating nothing per instruction, and the compiled trace can be
    replayed any number of times (setup, warming, detailed pass, multiple
    platforms).

    {b Sharing contract.}  Traces are immutable after [compile] and safe
    to share across domains and threads without synchronization; only
    the {e table} that maps keys to traces needs locking, never the
    traces themselves.  {!Simbridge.Runner}'s cross-cell LRU relies on
    this: its mutex guards table lookups and evictions, compilation
    happens outside the lock (two racers on one key do redundant work,
    never corruption), and an evicted trace stays valid for every holder
    that already fetched it — eviction only drops the table's reference.
    The same contract is what lets a persistent service ([simbridge
    serve]) keep one process-lifetime cache serving concurrent client
    requests: a compiled trace handed to an in-flight request can never
    be invalidated under it. *)

type t

val compile : Isa.Insn.t Seq.t -> t
(** One pass over the stream.  Raises [Invalid_argument] if an
    instruction cannot be represented losslessly: a memory access on a
    non-memory kind, a control outcome on a non-control kind, a missing
    access/outcome on a kind that requires one, or a memory access wider
    than {!max_mem_size} bytes. *)

val length : t -> int
(** O(1) — compare [Gen.length], which forces a full traversal. *)

val count_kind : (Isa.Insn.kind -> bool) -> t -> int
(** O(number of kinds), from the histogram filled at compile time. *)

(** {2 Packed access}

    The replay hot loops index the arrays below directly.  [metas] words
    use the layout exposed by the [*_of_meta] accessors; [auxs] holds the
    memory address for memory kinds, the branch target for control kinds
    (the two are mutually exclusive), and 0 otherwise. *)

val pcs : t -> int array
val metas : t -> int array
val auxs : t -> int array

val kind_of_meta : int -> Isa.Insn.kind
val dst_of_meta : int -> int
val src1_of_meta : int -> int
val src2_of_meta : int -> int

(** Raw layout, for replay loops that want to decode inline rather than
    through the accessors above: the kind code is
    [meta land kind_mask] (an index into [kind_table]); registers are
    [(meta lsr *_shift) land reg_mask]; [taken] is [meta land taken_bit
    <> 0]; the size is [(meta lsr size_shift) land size_mask].  Do not
    mutate [kind_table]. *)

val kind_table : Isa.Insn.kind array
val kind_mask : int
val dst_shift : int
val src1_shift : int
val src2_shift : int
val reg_mask : int
val taken_bit : int
val size_shift : int
val size_mask : int

val taken_of_meta : int -> bool
(** Control kinds only; [false] otherwise. *)

val size_of_meta : int -> int
(** Memory kinds only; 0 otherwise. *)

val max_mem_size : int
(** Largest representable memory-access size in bytes. *)

(** {2 Element access} *)

val pc : t -> int -> int
val meta : t -> int -> int
val aux : t -> int -> int

val insn : t -> int -> Isa.Insn.t
(** Reconstruct the instruction at an index (allocates; for tests and
    non-hot consumers). *)

val iter : (Isa.Insn.t -> unit) -> t -> unit
val to_seq : t -> Isa.Insn.t Seq.t

val words : t -> int
(** Approximate resident host size in words, for cache budgeting. *)

(** {2 Basic-block structure}

    Memoized replay needs to know where a trace repeats itself.  [Blocks]
    segments a compiled trace into dynamic basic-block instances and
    interns them into a block table: instances with identical instruction
    content (pc, packed metadata, and — for control kinds — branch
    target; memory addresses excluded, since they vary per iteration)
    share one block id.  Leaders are the trace start, every instruction
    after a control instruction, every pc that is ever a taken control
    target, and a length cap. *)
module Blocks : sig
  type trace := t

  type t = {
    n_blocks : int;  (** distinct blocks in the table *)
    n_instances : int;  (** dynamic block instances; they partition the trace *)
    ids : int array;  (** instance -> block id, [n_instances] long *)
    starts : int array;  (** instance -> first trace index, ascending *)
    lens : int array;  (** block -> instruction count, [n_blocks] long *)
    loads : int array;  (** block -> loads (incl. AMOs) per instance *)
    stores : int array;  (** block -> stores per instance *)
    occurs : int array;  (** block -> number of instances *)
    digests : int array;  (** block -> content digest (cross-run sharing key) *)
  }

  val default_max_len : int

  val analyze : ?max_len:int -> trace -> t
  (** Two passes over the packed arrays; block identity is exact (digest
      collisions fall back to content comparison).  Raises
      [Invalid_argument] if [max_len < 1]. *)

  val words : t -> int
  (** Approximate resident host size in words, for cache budgeting. *)

  val repeat_fraction : t -> int -> float
  (** Fraction of [total_insns] covered by blocks that occur more than
      once — an upper bound on what memoization can fast-forward. *)
end
