(* Compiled struct-of-arrays instruction traces.

   A trace holds one retired instruction per index across three flat int
   arrays:

     pcs.(i)   — the instruction's PC
     metas.(i) — packed kind/dst/src1/src2/taken/mem-size (layout below)
     auxs.(i)  — memory address (memory kinds), branch target (control
                 kinds), 0 otherwise

   Memory and control kinds are mutually exclusive (see Isa.Insn), so one
   auxiliary array serves both.  Replay consumers index these arrays
   directly: no Insn.t record, no option boxes, no Seq nodes — the replay
   loop allocates nothing. *)

(* Meta word layout (low to high):
   bits 0..4   kind code (17 kinds)
   bits 5..9   dst register
   bits 10..14 src1 register
   bits 15..19 src2 register
   bit  20     ctrl taken (control kinds; 0 otherwise)
   bits 21..27 mem access size in bytes (memory kinds; 0 otherwise) *)
let kind_mask = 0x1f
let dst_shift = 5
let src1_shift = 10
let src2_shift = 15
let reg_mask = 0x1f
let taken_bit = 1 lsl 20
let size_shift = 21
let size_mask = 0x7f
let max_mem_size = size_mask

(* Dense codes for Isa.Insn.kind, in declaration order. *)
let kind_code : Isa.Insn.kind -> int = function
  | Isa.Insn.Int_alu -> 0
  | Int_mul -> 1
  | Int_div -> 2
  | Fp_add -> 3
  | Fp_mul -> 4
  | Fp_div -> 5
  | Fp_cvt -> 6
  | Fp_long -> 7
  | Load -> 8
  | Store -> 9
  | Branch -> 10
  | Jump -> 11
  | Call -> 12
  | Ret -> 13
  | Fence -> 14
  | Amo -> 15
  | Nop -> 16

let num_kinds = 17

let kind_of_code : Isa.Insn.kind array =
  [|
    Isa.Insn.Int_alu; Int_mul; Int_div; Fp_add; Fp_mul; Fp_div; Fp_cvt; Fp_long; Load; Store;
    Branch; Jump; Call; Ret; Fence; Amo; Nop;
  |]

let kind_table = kind_of_code
let kind_of_meta m = Array.unsafe_get kind_of_code (m land kind_mask)
let dst_of_meta m = (m lsr dst_shift) land reg_mask
let src1_of_meta m = (m lsr src1_shift) land reg_mask
let src2_of_meta m = (m lsr src2_shift) land reg_mask
let taken_of_meta m = m land taken_bit <> 0
let size_of_meta m = (m lsr size_shift) land size_mask

let pack ~kind ~dst ~src1 ~src2 ~taken ~size =
  kind_code kind lor (dst lsl dst_shift) lor (src1 lsl src1_shift) lor (src2 lsl src2_shift)
  lor (if taken then taken_bit else 0)
  lor (size lsl size_shift)

type t = {
  len : int;
  pcs : int array;
  metas : int array;
  auxs : int array;
  kind_counts : int array;  (* histogram over kind codes, filled at compile *)
}

let length t = t.len
let pcs t = t.pcs
let metas t = t.metas
let auxs t = t.auxs

let encode (i : Isa.Insn.t) =
  let is_mem = Isa.Insn.is_mem i.kind and is_ctrl = Isa.Insn.is_ctrl i.kind in
  (* The packed form can only carry what the timing models consume: memory
     kinds get an address/size, control kinds a taken/target.  Reject
     anything the layout would silently drop. *)
  (match i.mem with
  | Some m ->
    if not is_mem then invalid_arg "Trace.compile: mem access on a non-memory kind";
    if m.Isa.Insn.size < 0 || m.Isa.Insn.size > max_mem_size then
      invalid_arg "Trace.compile: mem size out of range"
  | None -> if is_mem then invalid_arg "Trace.compile: memory kind without mem access");
  (match i.ctrl with
  | Some _ -> if not is_ctrl then invalid_arg "Trace.compile: ctrl outcome on a non-control kind"
  | None -> if is_ctrl then invalid_arg "Trace.compile: control kind without ctrl outcome");
  let taken, size, aux =
    match (i.mem, i.ctrl) with
    | Some m, None -> (false, m.Isa.Insn.size, m.Isa.Insn.addr)
    | None, Some c -> (c.Isa.Insn.taken, 0, c.Isa.Insn.target)
    | None, None -> (false, 0, 0)
    | Some _, Some _ -> assert false (* is_mem and is_ctrl are exclusive *)
  in
  (pack ~kind:i.kind ~dst:i.dst ~src1:i.src1 ~src2:i.src2 ~taken ~size, aux)

let compile (stream : Isa.Insn.t Seq.t) =
  let cap = ref 4096 in
  let pcs = ref (Array.make !cap 0) in
  let metas = ref (Array.make !cap 0) in
  let auxs = ref (Array.make !cap 0) in
  let kind_counts = Array.make num_kinds 0 in
  let n = ref 0 in
  let grow () =
    let cap' = !cap * 2 in
    let g a = let a' = Array.make cap' 0 in Array.blit !a 0 a' 0 !n; a := a' in
    g pcs; g metas; g auxs;
    cap := cap'
  in
  Seq.iter
    (fun (i : Isa.Insn.t) ->
      if !n = !cap then grow ();
      let meta, aux = encode i in
      let j = !n in
      !pcs.(j) <- i.pc;
      !metas.(j) <- meta;
      !auxs.(j) <- aux;
      kind_counts.(meta land kind_mask) <- kind_counts.(meta land kind_mask) + 1;
      n := j + 1)
    stream;
  let len = !n in
  let shrink a = if Array.length !a = len then !a else Array.sub !a 0 len in
  { len; pcs = shrink pcs; metas = shrink metas; auxs = shrink auxs; kind_counts }

let count_kind p t =
  let n = ref 0 in
  for c = 0 to num_kinds - 1 do
    if p kind_of_code.(c) then n := !n + t.kind_counts.(c)
  done;
  !n

let check i t =
  if i < 0 || i >= t.len then invalid_arg "Trace: index out of bounds"

let pc t i = check i t; t.pcs.(i)
let meta t i = check i t; t.metas.(i)
let aux t i = check i t; t.auxs.(i)

let insn t i =
  check i t;
  let m = t.metas.(i) in
  let kind = kind_of_meta m in
  let mem =
    if Isa.Insn.is_mem kind then Some { Isa.Insn.addr = t.auxs.(i); size = size_of_meta m }
    else None
  in
  let ctrl =
    if Isa.Insn.is_ctrl kind then Some { Isa.Insn.taken = taken_of_meta m; target = t.auxs.(i) }
    else None
  in
  Isa.Insn.make ?mem ?ctrl ~dst:(dst_of_meta m) ~src1:(src1_of_meta m) ~src2:(src2_of_meta m)
    ~pc:t.pcs.(i) kind

let iter f t =
  for i = 0 to t.len - 1 do
    f (insn t i)
  done

let to_seq t =
  let rec go i () = if i >= t.len then Seq.Nil else Seq.Cons (insn t i, go (i + 1)) in
  go 0

(* Rough resident size: three 8-byte words per instruction plus headers. *)
let words t = (3 * t.len) + 16

type trace = t

module Blocks = struct
  type t = {
    n_blocks : int;
    n_instances : int;
    ids : int array;
    starts : int array;
    lens : int array;
    loads : int array;
    stores : int array;
    occurs : int array;
    digests : int array;
  }

  let default_max_len = 256

  (* FNV-style mixing kept within OCaml's 63-bit int range.  The digest is
     a sharing key for cross-run memo tables; within one analysis the
     block table verifies content and never trusts the digest alone. *)
  let mix h v =
    let h = (h lxor v) * 0x100000001b3 in
    h lxor (h lsr 29)

  let analyze ?(max_len = default_max_len) (tr : trace) =
    if max_len < 1 then invalid_arg "Trace.Blocks.analyze: max_len must be >= 1";
    let n = tr.len in
    let pcs = tr.pcs and metas = tr.metas and auxs = tr.auxs in
    (* Pass 1: every pc that is ever a taken control-flow target is a
       leader everywhere, so one static block is segmented identically on
       every dynamic path that reaches it — a prerequisite for instances
       of the same block to share one cost entry. *)
    let targets : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
    for i = 0 to n - 1 do
      let m = Array.unsafe_get metas i in
      if
        m land taken_bit <> 0
        && Isa.Insn.is_ctrl (Array.unsafe_get kind_of_code (m land kind_mask))
      then Hashtbl.replace targets (Array.unsafe_get auxs i) ()
    done;
    (* Pass 2: segment at leaders (taken targets, post-control fall-
       throughs, the max_len cap) and intern each segment into the block
       table.  Digest collisions fall back to content comparison against
       the block's canonical instance, so block identity is exact. *)
    let bcap = ref 64 in
    let b_start = ref (Array.make !bcap 0) in
    let b_len = ref (Array.make !bcap 0) in
    let b_loads = ref (Array.make !bcap 0) in
    let b_stores = ref (Array.make !bcap 0) in
    let b_occ = ref (Array.make !bcap 0) in
    let b_dig = ref (Array.make !bcap 0) in
    let n_blocks = ref 0 in
    let grow_blocks () =
      let cap' = !bcap * 2 in
      let g a = let a' = Array.make cap' 0 in Array.blit !a 0 a' 0 !n_blocks; a := a' in
      g b_start; g b_len; g b_loads; g b_stores; g b_occ; g b_dig;
      bcap := cap'
    in
    let icap = ref 1024 in
    let i_id = ref (Array.make !icap 0) in
    let i_start = ref (Array.make !icap 0) in
    let n_inst = ref 0 in
    let grow_insts () =
      let cap' = !icap * 2 in
      let g a = let a' = Array.make cap' 0 in Array.blit !a 0 a' 0 !n_inst; a := a' in
      g i_id; g i_start;
      icap := cap'
    in
    let table : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
    let same_content id start len =
      Array.unsafe_get !b_len id = len
      &&
      let s0 = Array.unsafe_get !b_start id in
      let ok = ref true in
      let j = ref 0 in
      while !ok && !j < len do
        let a = s0 + !j and b = start + !j in
        let ma = Array.unsafe_get metas a in
        if Array.unsafe_get pcs a <> Array.unsafe_get pcs b || ma <> Array.unsafe_get metas b
        then ok := false
        else if
          Isa.Insn.is_ctrl (Array.unsafe_get kind_of_code (ma land kind_mask))
          && Array.unsafe_get auxs a <> Array.unsafe_get auxs b
        then ok := false;
        incr j
      done;
      !ok
    in
    let i = ref 0 in
    while !i < n do
      let start = !i in
      let h = ref 0x3ade68b1 in
      let loads = ref 0 and stores = ref 0 in
      let stop = ref false in
      while not !stop do
        let j = !i in
        let m = Array.unsafe_get metas j in
        let kind = Array.unsafe_get kind_of_code (m land kind_mask) in
        (match kind with
        | Isa.Insn.Load | Isa.Insn.Amo -> incr loads
        | Isa.Insn.Store -> incr stores
        | _ -> ());
        let is_ctrl = Isa.Insn.is_ctrl kind in
        (* Memory addresses vary per iteration and are excluded from the
           digest; control targets are part of block identity. *)
        h := mix !h (Array.unsafe_get pcs j);
        h := mix !h m;
        if is_ctrl then h := mix !h (Array.unsafe_get auxs j);
        incr i;
        if
          !i >= n || !i - start >= max_len || is_ctrl
          || Hashtbl.mem targets (Array.unsafe_get pcs !i)
        then stop := true
      done;
      let len = !i - start in
      let digest = mix (mix !h (Array.unsafe_get pcs start)) len in
      let id =
        let candidates = try Hashtbl.find table digest with Not_found -> [] in
        match List.find_opt (fun id -> same_content id start len) candidates with
        | Some id -> id
        | None ->
          if !n_blocks = !bcap then grow_blocks ();
          let id = !n_blocks in
          !b_start.(id) <- start;
          !b_len.(id) <- len;
          !b_loads.(id) <- !loads;
          !b_stores.(id) <- !stores;
          !b_occ.(id) <- 0;
          !b_dig.(id) <- digest;
          n_blocks := id + 1;
          Hashtbl.replace table digest (id :: candidates);
          id
      in
      !b_occ.(id) <- !b_occ.(id) + 1;
      if !n_inst = !icap then grow_insts ();
      !i_id.(!n_inst) <- id;
      !i_start.(!n_inst) <- start;
      incr n_inst
    done;
    let shrink a len = if Array.length !a = len then !a else Array.sub !a 0 len in
    {
      n_blocks = !n_blocks;
      n_instances = !n_inst;
      ids = shrink i_id !n_inst;
      starts = shrink i_start !n_inst;
      lens = shrink b_len !n_blocks;
      loads = shrink b_loads !n_blocks;
      stores = shrink b_stores !n_blocks;
      occurs = shrink b_occ !n_blocks;
      digests = shrink b_dig !n_blocks;
    }

  let words b = (2 * b.n_instances) + (5 * b.n_blocks) + 16

  let repeat_fraction b total_insns =
    if total_insns <= 0 then 0.0
    else begin
      let repeated = ref 0 in
      for id = 0 to b.n_blocks - 1 do
        if b.occurs.(id) > 1 then repeated := !repeated + (b.occurs.(id) * b.lens.(id))
      done;
      float_of_int !repeated /. float_of_int total_insns
    end
end
