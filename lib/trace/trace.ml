(* Compiled struct-of-arrays instruction traces.

   A trace holds one retired instruction per index across three flat int
   arrays:

     pcs.(i)   — the instruction's PC
     metas.(i) — packed kind/dst/src1/src2/taken/mem-size (layout below)
     auxs.(i)  — memory address (memory kinds), branch target (control
                 kinds), 0 otherwise

   Memory and control kinds are mutually exclusive (see Isa.Insn), so one
   auxiliary array serves both.  Replay consumers index these arrays
   directly: no Insn.t record, no option boxes, no Seq nodes — the replay
   loop allocates nothing. *)

(* Meta word layout (low to high):
   bits 0..4   kind code (17 kinds)
   bits 5..9   dst register
   bits 10..14 src1 register
   bits 15..19 src2 register
   bit  20     ctrl taken (control kinds; 0 otherwise)
   bits 21..27 mem access size in bytes (memory kinds; 0 otherwise) *)
let kind_mask = 0x1f
let dst_shift = 5
let src1_shift = 10
let src2_shift = 15
let reg_mask = 0x1f
let taken_bit = 1 lsl 20
let size_shift = 21
let size_mask = 0x7f
let max_mem_size = size_mask

(* Dense codes for Isa.Insn.kind, in declaration order. *)
let kind_code : Isa.Insn.kind -> int = function
  | Isa.Insn.Int_alu -> 0
  | Int_mul -> 1
  | Int_div -> 2
  | Fp_add -> 3
  | Fp_mul -> 4
  | Fp_div -> 5
  | Fp_cvt -> 6
  | Fp_long -> 7
  | Load -> 8
  | Store -> 9
  | Branch -> 10
  | Jump -> 11
  | Call -> 12
  | Ret -> 13
  | Fence -> 14
  | Amo -> 15
  | Nop -> 16

let num_kinds = 17

let kind_of_code : Isa.Insn.kind array =
  [|
    Isa.Insn.Int_alu; Int_mul; Int_div; Fp_add; Fp_mul; Fp_div; Fp_cvt; Fp_long; Load; Store;
    Branch; Jump; Call; Ret; Fence; Amo; Nop;
  |]

let kind_table = kind_of_code
let kind_of_meta m = Array.unsafe_get kind_of_code (m land kind_mask)
let dst_of_meta m = (m lsr dst_shift) land reg_mask
let src1_of_meta m = (m lsr src1_shift) land reg_mask
let src2_of_meta m = (m lsr src2_shift) land reg_mask
let taken_of_meta m = m land taken_bit <> 0
let size_of_meta m = (m lsr size_shift) land size_mask

let pack ~kind ~dst ~src1 ~src2 ~taken ~size =
  kind_code kind lor (dst lsl dst_shift) lor (src1 lsl src1_shift) lor (src2 lsl src2_shift)
  lor (if taken then taken_bit else 0)
  lor (size lsl size_shift)

type t = {
  len : int;
  pcs : int array;
  metas : int array;
  auxs : int array;
  kind_counts : int array;  (* histogram over kind codes, filled at compile *)
}

let length t = t.len
let pcs t = t.pcs
let metas t = t.metas
let auxs t = t.auxs

let encode (i : Isa.Insn.t) =
  let is_mem = Isa.Insn.is_mem i.kind and is_ctrl = Isa.Insn.is_ctrl i.kind in
  (* The packed form can only carry what the timing models consume: memory
     kinds get an address/size, control kinds a taken/target.  Reject
     anything the layout would silently drop. *)
  (match i.mem with
  | Some m ->
    if not is_mem then invalid_arg "Trace.compile: mem access on a non-memory kind";
    if m.Isa.Insn.size < 0 || m.Isa.Insn.size > max_mem_size then
      invalid_arg "Trace.compile: mem size out of range"
  | None -> if is_mem then invalid_arg "Trace.compile: memory kind without mem access");
  (match i.ctrl with
  | Some _ -> if not is_ctrl then invalid_arg "Trace.compile: ctrl outcome on a non-control kind"
  | None -> if is_ctrl then invalid_arg "Trace.compile: control kind without ctrl outcome");
  let taken, size, aux =
    match (i.mem, i.ctrl) with
    | Some m, None -> (false, m.Isa.Insn.size, m.Isa.Insn.addr)
    | None, Some c -> (c.Isa.Insn.taken, 0, c.Isa.Insn.target)
    | None, None -> (false, 0, 0)
    | Some _, Some _ -> assert false (* is_mem and is_ctrl are exclusive *)
  in
  (pack ~kind:i.kind ~dst:i.dst ~src1:i.src1 ~src2:i.src2 ~taken ~size, aux)

let compile (stream : Isa.Insn.t Seq.t) =
  let cap = ref 4096 in
  let pcs = ref (Array.make !cap 0) in
  let metas = ref (Array.make !cap 0) in
  let auxs = ref (Array.make !cap 0) in
  let kind_counts = Array.make num_kinds 0 in
  let n = ref 0 in
  let grow () =
    let cap' = !cap * 2 in
    let g a = let a' = Array.make cap' 0 in Array.blit !a 0 a' 0 !n; a := a' in
    g pcs; g metas; g auxs;
    cap := cap'
  in
  Seq.iter
    (fun (i : Isa.Insn.t) ->
      if !n = !cap then grow ();
      let meta, aux = encode i in
      let j = !n in
      !pcs.(j) <- i.pc;
      !metas.(j) <- meta;
      !auxs.(j) <- aux;
      kind_counts.(meta land kind_mask) <- kind_counts.(meta land kind_mask) + 1;
      n := j + 1)
    stream;
  let len = !n in
  let shrink a = if Array.length !a = len then !a else Array.sub !a 0 len in
  { len; pcs = shrink pcs; metas = shrink metas; auxs = shrink auxs; kind_counts }

let count_kind p t =
  let n = ref 0 in
  for c = 0 to num_kinds - 1 do
    if p kind_of_code.(c) then n := !n + t.kind_counts.(c)
  done;
  !n

let check i t =
  if i < 0 || i >= t.len then invalid_arg "Trace: index out of bounds"

let pc t i = check i t; t.pcs.(i)
let meta t i = check i t; t.metas.(i)
let aux t i = check i t; t.auxs.(i)

let insn t i =
  check i t;
  let m = t.metas.(i) in
  let kind = kind_of_meta m in
  let mem =
    if Isa.Insn.is_mem kind then Some { Isa.Insn.addr = t.auxs.(i); size = size_of_meta m }
    else None
  in
  let ctrl =
    if Isa.Insn.is_ctrl kind then Some { Isa.Insn.taken = taken_of_meta m; target = t.auxs.(i) }
    else None
  in
  Isa.Insn.make ?mem ?ctrl ~dst:(dst_of_meta m) ~src1:(src1_of_meta m) ~src2:(src2_of_meta m)
    ~pc:t.pcs.(i) kind

let iter f t =
  for i = 0 to t.len - 1 do
    f (insn t i)
  done

let to_seq t =
  let rec go i () = if i >= t.len then Seq.Nil else Seq.Cons (insn t i, go (i + 1)) in
  go 0

(* Rough resident size: three 8-byte words per instruction plus headers. *)
let words t = (3 * t.len) + 16
