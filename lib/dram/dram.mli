(** DRAM channel timing model (FR-FCFS flavoured).

    The model works in nanoseconds; the platform layer converts between
    core cycles and ns.  Each channel has [ranks × banks_per_rank] banks
    with an open-row policy: a request to the open row pays CAS only; a
    closed bank pays RCD+CAS; a conflicting open row pays RP+RCD+CAS
    (precharge first).  The shared per-channel data bus serializes bursts,
    and a bounded request queue models controller back-pressure — when the
    queue is full, new arrivals wait, which is exactly the "longer queues
    and increased latencies" regime the paper reports for the Fast Banana
    Pi model.

    [ctrl_latency_ns] is the constant front-end cost (controller pipeline,
    PHY, and — for the FireSim presets — the conservative token-based
    path between LLC and the DRAM model that the paper identifies as a
    fidelity limit).  It is the main knob distinguishing the simulated
    DDR3 models from the silicon LPDDR4/DDR4 parts. *)

type timing = {
  t_cas_ns : float;
  t_rcd_ns : float;
  t_rp_ns : float;
}

type config = {
  name : string;
  data_rate_mts : float;  (** mega-transfers per second (DDR3-2000 => 2000.) *)
  bus_bytes : int;  (** data bus width per channel, bytes (64-bit => 8) *)
  channels : int;
  ranks : int;
  banks_per_rank : int;
  row_bytes : int;
  timing : timing;
  ctrl_latency_ns : float;
  queue_depth : int;  (** outstanding requests per channel *)
  line_bytes : int;  (** transfer granularity (cache line) *)
}

type stats = {
  requests : int;
  reads : int;
  writes : int;
  row_hits : int;
  row_empty : int;
  row_conflicts : int;
  queue_stalls : int;
  data_bus_ns : float;  (** accumulated bus occupancy, for bandwidth accounting *)
}

type chan_stats = {
  chan_requests : int;
  chan_row_hits : int;
  chan_row_empty : int;
  chan_row_conflicts : int;
  chan_queue_stalls : int;
  chan_occupancy_sum : int;
      (** in-flight requests summed over admissions; divide by
          [chan_requests] for the mean queue occupancy a request sees *)
  chan_occupancy_max : int;
}

type t

val create : config -> t

val request : t -> time_ns:float -> addr:int -> write:bool -> float
(** [request t ~time_ns ~addr ~write] returns the time (ns) at which the
    line transfer completes.  The channel is chosen by line-interleaving
    on the address. *)

val stats : t -> stats

val channel_stats : t -> chan_stats array
(** Per-channel row-buffer and queue behaviour, index = channel. *)

val reset_stats : t -> unit

val peak_bandwidth_gbs : config -> float
(** Aggregate peak bandwidth over all channels, GB/s. *)

val idle_latency_ns : config -> float
(** Load-to-use latency of an isolated row-empty read (ctrl + RCD + CAS +
    one burst). *)

(** Presets used by the platform catalog (Table 5). *)

val ddr3_2000_fr_fcfs : channels:int -> config
(** FireSim's DDR3-2000 FR-FCFS quad-rank model; conservative controller
    path. *)

val lpddr4_2666_dual32 : config
(** Banana Pi: dual 32-bit LPDDR4-2666. *)

val ddr4_3200 : channels:int -> config
(** MILK-V Pioneer: DDR4-3200, [channels] channels. *)
