type timing = {
  t_cas_ns : float;
  t_rcd_ns : float;
  t_rp_ns : float;
}

type config = {
  name : string;
  data_rate_mts : float;
  bus_bytes : int;
  channels : int;
  ranks : int;
  banks_per_rank : int;
  row_bytes : int;
  timing : timing;
  ctrl_latency_ns : float;
  queue_depth : int;
  line_bytes : int;
}

type stats = {
  requests : int;
  reads : int;
  writes : int;
  row_hits : int;
  row_empty : int;
  row_conflicts : int;
  queue_stalls : int;
  data_bus_ns : float;
}

type chan_stats = {
  chan_requests : int;
  chan_row_hits : int;
  chan_row_empty : int;
  chan_row_conflicts : int;
  chan_queue_stalls : int;
  chan_occupancy_sum : int;
  chan_occupancy_max : int;
}

(* Per-bank state lives in parallel arrays rather than an array of
   {open_row; ready_ns} records: a float field in a mixed record is boxed,
   so every ready-time update would allocate.  Flat [float array] storage
   keeps the hot path allocation-free with bit-identical arithmetic. *)
type channel = {
  bank_open_row : int array;  (* -1 = no open row *)
  bank_ready_ns : float array;
  bus_free_ns : float array;  (* 1 element; same boxing rationale *)
  queue_done : float array;  (* completion times of in-flight requests *)
  (* Per-channel telemetry: localizes row-buffer behaviour and queue
     pressure to the channel the paper's DRAM-bound kernels saturate. *)
  mutable c_requests : int;
  mutable c_row_hits : int;
  mutable c_row_empty : int;
  mutable c_row_conflicts : int;
  mutable c_queue_stalls : int;
  mutable c_occ_sum : int;  (* in-flight requests observed at each admission *)
  mutable c_occ_max : int;
}

type t = {
  cfg : config;
  chans : channel array;
  mutable s_requests : int;
  mutable s_reads : int;
  mutable s_writes : int;
  mutable s_row_hits : int;
  mutable s_row_empty : int;
  mutable s_row_conflicts : int;
  mutable s_queue_stalls : int;
  s_data_bus_ns : float array;  (* 1 element; accumulated per request *)
}

let create cfg =
  if cfg.channels <= 0 then invalid_arg "Dram.create: channels";
  if cfg.queue_depth <= 0 then invalid_arg "Dram.create: queue_depth";
  let mk_chan _ =
    {
      bank_open_row = Array.make (cfg.ranks * cfg.banks_per_rank) (-1);
      bank_ready_ns = Array.make (cfg.ranks * cfg.banks_per_rank) 0.0;
      bus_free_ns = Array.make 1 0.0;
      queue_done = Array.make cfg.queue_depth 0.0;
      c_requests = 0;
      c_row_hits = 0;
      c_row_empty = 0;
      c_row_conflicts = 0;
      c_queue_stalls = 0;
      c_occ_sum = 0;
      c_occ_max = 0;
    }
  in
  {
    cfg;
    chans = Array.init cfg.channels mk_chan;
    s_requests = 0;
    s_reads = 0;
    s_writes = 0;
    s_row_hits = 0;
    s_row_empty = 0;
    s_row_conflicts = 0;
    s_queue_stalls = 0;
    s_data_bus_ns = Array.make 1 0.0;
  }

let burst_ns cfg =
  (* Time to move one cache line over the channel's data bus. *)
  let bytes_per_us = cfg.data_rate_mts *. float_of_int cfg.bus_bytes in
  float_of_int cfg.line_bytes /. bytes_per_us *. 1000.0

let request t ~time_ns ~addr ~write =
  let cfg = t.cfg in
  let line = addr / cfg.line_bytes in
  let chan = t.chans.(line mod cfg.channels) in
  let nbanks = Array.length chan.bank_open_row in
  let per_chan_line = line / cfg.channels in
  let bank_i = per_chan_line mod nbanks in
  let row = per_chan_line / nbanks * cfg.line_bytes / cfg.row_bytes in
  t.s_requests <- t.s_requests + 1;
  chan.c_requests <- chan.c_requests + 1;
  if write then t.s_writes <- t.s_writes + 1 else t.s_reads <- t.s_reads + 1;
  (* Controller queue admission: wait for a slot when all are in flight.
     The same pass over the queue counts the in-flight requests, i.e. the
     queue occupancy this request observes on arrival. *)
  let slot = ref 0 in
  let in_flight = ref (if chan.queue_done.(0) > time_ns then 1 else 0) in
  for i = 1 to cfg.queue_depth - 1 do
    if chan.queue_done.(i) < chan.queue_done.(!slot) then slot := i;
    if chan.queue_done.(i) > time_ns then incr in_flight
  done;
  chan.c_occ_sum <- chan.c_occ_sum + !in_flight;
  if !in_flight > chan.c_occ_max then chan.c_occ_max <- !in_flight;
  let admitted =
    if chan.queue_done.(!slot) <= time_ns then time_ns
    else begin
      t.s_queue_stalls <- t.s_queue_stalls + 1;
      chan.c_queue_stalls <- chan.c_queue_stalls + 1;
      chan.queue_done.(!slot)
    end
  in
  let open_row = Array.unsafe_get chan.bank_open_row bank_i in
  let issue =
    Float.max admitted (Float.max (Array.unsafe_get chan.bank_ready_ns bank_i) 0.0)
    +. cfg.ctrl_latency_ns
  in
  let array_ns =
    if open_row = row then begin
      t.s_row_hits <- t.s_row_hits + 1;
      chan.c_row_hits <- chan.c_row_hits + 1;
      cfg.timing.t_cas_ns
    end
    else if open_row = -1 then begin
      t.s_row_empty <- t.s_row_empty + 1;
      chan.c_row_empty <- chan.c_row_empty + 1;
      cfg.timing.t_rcd_ns +. cfg.timing.t_cas_ns
    end
    else begin
      t.s_row_conflicts <- t.s_row_conflicts + 1;
      chan.c_row_conflicts <- chan.c_row_conflicts + 1;
      cfg.timing.t_rp_ns +. cfg.timing.t_rcd_ns +. cfg.timing.t_cas_ns
    end
  in
  Array.unsafe_set chan.bank_open_row bank_i row;
  let data_ready = issue +. array_ns in
  let burst = burst_ns cfg in
  let xfer_start = Float.max data_ready (Array.unsafe_get chan.bus_free_ns 0) in
  let completion = xfer_start +. burst in
  Array.unsafe_set chan.bus_free_ns 0 completion;
  Array.unsafe_set t.s_data_bus_ns 0 (Array.unsafe_get t.s_data_bus_ns 0 +. burst);
  Array.unsafe_set chan.bank_ready_ns bank_i data_ready;
  chan.queue_done.(!slot) <- completion;
  completion

let stats t =
  {
    requests = t.s_requests;
    reads = t.s_reads;
    writes = t.s_writes;
    row_hits = t.s_row_hits;
    row_empty = t.s_row_empty;
    row_conflicts = t.s_row_conflicts;
    queue_stalls = t.s_queue_stalls;
    data_bus_ns = t.s_data_bus_ns.(0);
  }

let channel_stats t =
  Array.map
    (fun c ->
      {
        chan_requests = c.c_requests;
        chan_row_hits = c.c_row_hits;
        chan_row_empty = c.c_row_empty;
        chan_row_conflicts = c.c_row_conflicts;
        chan_queue_stalls = c.c_queue_stalls;
        chan_occupancy_sum = c.c_occ_sum;
        chan_occupancy_max = c.c_occ_max;
      })
    t.chans

let reset_stats t =
  t.s_requests <- 0;
  t.s_reads <- 0;
  t.s_writes <- 0;
  t.s_row_hits <- 0;
  t.s_row_empty <- 0;
  t.s_row_conflicts <- 0;
  t.s_queue_stalls <- 0;
  t.s_data_bus_ns.(0) <- 0.0;
  Array.iter
    (fun c ->
      c.c_requests <- 0;
      c.c_row_hits <- 0;
      c.c_row_empty <- 0;
      c.c_row_conflicts <- 0;
      c.c_queue_stalls <- 0;
      c.c_occ_sum <- 0;
      c.c_occ_max <- 0)
    t.chans

let peak_bandwidth_gbs cfg =
  cfg.data_rate_mts *. float_of_int cfg.bus_bytes *. float_of_int cfg.channels /. 1000.0

let idle_latency_ns cfg =
  cfg.ctrl_latency_ns +. cfg.timing.t_rcd_ns +. cfg.timing.t_cas_ns +. burst_ns cfg

(* Presets.

   The FireSim DDR3 path is deliberately conservative: the token-based
   LLC<->DRAM protocol adds a fixed cost per request that silicon
   controllers do not pay.  The paper measures the resulting gap as
   memory-bound kernels reaching only 28-43% of silicon performance; the
   [ctrl_latency_ns] values below encode that structural difference. *)

let ddr3_2000_fr_fcfs ~channels =
  {
    name = Printf.sprintf "DDR3-2000 FR-FCFS quad-rank x%d" channels;
    data_rate_mts = 2000.0;
    bus_bytes = 8;
    channels;
    ranks = 4;
    banks_per_rank = 8;
    row_bytes = 8192;
    timing = { t_cas_ns = 13.75; t_rcd_ns = 13.75; t_rp_ns = 13.75 };
    ctrl_latency_ns = 265.0;
    (* latency is conservative (token path) but the FR-FCFS scheduler
       still streams: deep request queue *)
    queue_depth = 48;
    line_bytes = 64;
  }

let lpddr4_2666_dual32 =
  {
    name = "LPDDR4-2666 dual 32-bit";
    data_rate_mts = 2666.0;
    bus_bytes = 4;
    channels = 2;
    ranks = 1;
    banks_per_rank = 8;
    row_bytes = 4096;
    timing = { t_cas_ns = 21.0; t_rcd_ns = 18.0; t_rp_ns = 18.0 };
    ctrl_latency_ns = 32.0;
    queue_depth = 32;
    line_bytes = 64;
  }

let ddr4_3200 ~channels =
  {
    name = Printf.sprintf "DDR4-3200 x%d" channels;
    data_rate_mts = 3200.0;
    bus_bytes = 8;
    channels;
    ranks = 2;
    banks_per_rank = 16;
    row_bytes = 8192;
    timing = { t_cas_ns = 13.75; t_rcd_ns = 13.75; t_rp_ns = 13.75 };
    ctrl_latency_ns = 26.0;
    queue_depth = 48;
    line_bytes = 64;
  }
