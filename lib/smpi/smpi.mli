(** Simulated message passing (MPI-style) for rank programs.

    A parallel workload is an array of rank programs; each rank program is
    a list of segments, alternating lazy compute streams with communication
    operations.  The {!Engine} co-simulates all ranks over the caller's
    per-rank clocks: compute segments advance a rank's clock through its
    core timing model, and communication completes according to message
    matching plus a fabric cost model supplied by the platform (on-chip
    shared-memory MPI: latency plus bandwidth through the memory system).

    Simplifications (documented in DESIGN.md): sends are eager (buffered),
    so symmetric Send/Recv halo exchanges do not deadlock; matching is by
    (source, tag) in posting order; collectives are matched by per-rank
    collective index and costed as log2(n)-stage trees. *)

type op =
  | Send of { dst : int; bytes : int; tag : int }
  | Recv of { src : int; bytes : int; tag : int }
  | Sendrecv of { peer : int; send_bytes : int; recv_bytes : int; tag : int }
  | Barrier
  | Bcast of { root : int; bytes : int }
  | Reduce of { root : int; bytes : int }
  | Allreduce of { bytes : int }
  | Alltoall of { bytes_per_rank : int }
  | Allgather of { bytes : int }

type segment =
  | Compute of Isa.Insn.t Seq.t
  | Comm of op

type program = segment list array
(** One segment list per rank. *)

val pp_op : Format.formatter -> op -> unit

(** Fabric cost model, supplied by the platform.  [transfer] is
    route-aware: a single-SoC fabric ignores [src]/[dst]; a multi-node
    fabric (see {!Firesim}) charges the NIC/switch path when they live on
    different nodes.  Collectives probe representative pairs per
    recursive-doubling stage (distance 2^s), so node boundaries surface in
    their cost too. *)
type fabric = {
  latency_cycles : int;  (** per-message software+wakeup latency *)
  transfer : src:int -> dst:int -> cycle:int -> bytes:int -> int;
      (** Move [bytes] from rank [src] to rank [dst] starting no earlier
          than [cycle]; returns completion cycle.  Stateful: concurrent
          transfers contend. *)
}

(** Per-rank execution interface, supplied by the platform from its core
    timing models. *)
type rank_iface = {
  feed : Isa.Insn.t -> unit;  (** retire one instruction on this rank's core *)
  now : unit -> int;
  advance_to : int -> unit;
}

type comm_stats = {
  messages : int;
  bytes_moved : int;
  collectives : int;
  comm_cycles_max : int;  (** upper bound: cycles any rank spent blocked *)
}

exception Deadlock of string

module Engine : sig
  val run :
    ?quantum:int ->
    ?telemetry:Telemetry.Registry.t ->
    fabric ->
    rank_iface array ->
    program ->
    comm_stats
  (** Co-simulate all ranks to completion.  Compute advances in lockstep
      cycle windows of [quantum] cycles (default 100): every rank runs
      until its clock crosses the shared horizon, then the horizon moves.
      This bounds the timestamp skew seen by the shared caches, bus and
      DRAM, so their contention models stay meaningful under concurrency.
      Raises {!Deadlock} when no rank can make progress (mismatched
      program).

      With [telemetry], fills message-size and wait-time histograms
      ([smpi.msg_bytes], [smpi.recv_wait_cycles], [smpi.coll_wait_cycles]),
      publishes the {!comm_stats} as [smpi.*] counters, and records one
      trace event per communication operation (lane = rank). *)
end
