type op =
  | Send of { dst : int; bytes : int; tag : int }
  | Recv of { src : int; bytes : int; tag : int }
  | Sendrecv of { peer : int; send_bytes : int; recv_bytes : int; tag : int }
  | Barrier
  | Bcast of { root : int; bytes : int }
  | Reduce of { root : int; bytes : int }
  | Allreduce of { bytes : int }
  | Alltoall of { bytes_per_rank : int }
  | Allgather of { bytes : int }

type segment =
  | Compute of Isa.Insn.t Seq.t
  | Comm of op

type program = segment list array

let pp_op ppf = function
  | Send { dst; bytes; tag } -> Format.fprintf ppf "send(dst=%d,%dB,tag=%d)" dst bytes tag
  | Recv { src; bytes; tag } -> Format.fprintf ppf "recv(src=%d,%dB,tag=%d)" src bytes tag
  | Sendrecv { peer; send_bytes; recv_bytes; tag } ->
    Format.fprintf ppf "sendrecv(peer=%d,%d/%dB,tag=%d)" peer send_bytes recv_bytes tag
  | Barrier -> Format.fprintf ppf "barrier"
  | Bcast { root; bytes } -> Format.fprintf ppf "bcast(root=%d,%dB)" root bytes
  | Reduce { root; bytes } -> Format.fprintf ppf "reduce(root=%d,%dB)" root bytes
  | Allreduce { bytes } -> Format.fprintf ppf "allreduce(%dB)" bytes
  | Alltoall { bytes_per_rank } -> Format.fprintf ppf "alltoall(%dB/rank)" bytes_per_rank
  | Allgather { bytes } -> Format.fprintf ppf "allgather(%dB)" bytes

type fabric = {
  latency_cycles : int;
  transfer : src:int -> dst:int -> cycle:int -> bytes:int -> int;
}

type rank_iface = {
  feed : Isa.Insn.t -> unit;
  now : unit -> int;
  advance_to : int -> unit;
}

type comm_stats = {
  messages : int;
  bytes_moved : int;
  collectives : int;
  comm_cycles_max : int;
}

exception Deadlock of string

let log = Logs.Src.create "simbridge.smpi" ~doc:"MPI co-simulation engine"

module Log = (val Logs.src_log log : Logs.LOG)

module Engine = struct
  type message = { m_bytes : int; avail : int }

  (* Per-rank cursor state. *)
  type rank_state = {
    mutable segments : segment list;
    mutable coll_index : int;  (* how many collectives this rank has entered *)
    mutable coll_posted : bool;  (* arrival at current collective recorded? *)
  }

  type coll_slot = {
    template : op;
    mutable arrivals : int;
    mutable max_time : int;
    mutable finish : int;  (* -1 until resolved *)
  }

  let stages n = if n <= 1 then 0 else int_of_float (Float.ceil (Float.log2 (float_of_int n)))

  let same_collective a b =
    match (a, b) with
    | Barrier, Barrier -> true
    | Bcast { root = r1; bytes = b1 }, Bcast { root = r2; bytes = b2 } -> r1 = r2 && b1 = b2
    | Reduce { root = r1; bytes = b1 }, Reduce { root = r2; bytes = b2 } -> r1 = r2 && b1 = b2
    | Allreduce { bytes = b1 }, Allreduce { bytes = b2 } -> b1 = b2
    | Alltoall { bytes_per_rank = b1 }, Alltoall { bytes_per_rank = b2 } -> b1 = b2
    | Allgather { bytes = b1 }, Allgather { bytes = b2 } -> b1 = b2
    | _ -> false

  let is_collective = function
    | Barrier | Bcast _ | Reduce _ | Allreduce _ | Alltoall _ | Allgather _ -> true
    | Send _ | Recv _ | Sendrecv _ -> false

  (* Cost of a resolved collective, charged through the shared fabric so
     that concurrent traffic contends.  [t0] is the arrival of the last
     rank. *)
  let collective_finish fabric nranks t0 = function
    | Barrier -> t0 + (2 * stages nranks * fabric.latency_cycles)
    | Bcast { bytes; _ } | Reduce { bytes; _ } ->
      let t = ref t0 in
      for s = 0 to stages nranks - 1 do
        t := fabric.transfer ~src:0 ~dst:(min (nranks - 1) (1 lsl s)) ~cycle:(!t + fabric.latency_cycles) ~bytes
      done;
      !t
    | Allreduce { bytes } ->
      let t = ref t0 in
      for s = 0 to (2 * stages nranks) - 1 do
        let d = min (nranks - 1) (1 lsl (s mod stages nranks)) in
        t := fabric.transfer ~src:0 ~dst:d ~cycle:(!t + fabric.latency_cycles) ~bytes
      done;
      !t
    | Alltoall { bytes_per_rank } ->
      (* n*(n-1) pairwise messages serialized through the shared fabric. *)
      let t = ref t0 in
      for i = 0 to nranks - 1 do
        for j = 0 to nranks - 1 do
          if i <> j then
            t := fabric.transfer ~src:i ~dst:j ~cycle:(!t + fabric.latency_cycles) ~bytes:bytes_per_rank
        done
      done;
      !t
    | Allgather { bytes } ->
      (* Recursive doubling: stage s moves 2^s * bytes between partners
         2^s apart. *)
      let t = ref t0 in
      let chunk = ref bytes in
      for s = 0 to stages nranks - 1 do
        t := fabric.transfer ~src:0 ~dst:(min (nranks - 1) (1 lsl s)) ~cycle:(!t + fabric.latency_cycles) ~bytes:!chunk;
        chunk := !chunk * 2
      done;
      !t
    | Send _ | Recv _ | Sendrecv _ -> invalid_arg "collective_finish"

  let collective_bytes nranks = function
    | Barrier -> 0
    | Bcast { bytes; _ } | Reduce { bytes; _ } -> bytes * stages nranks
    | Allreduce { bytes } -> 2 * bytes * stages nranks
    | Alltoall { bytes_per_rank } -> nranks * (nranks - 1) * bytes_per_rank
    | Allgather { bytes } -> bytes * (nranks - 1)
    | Send _ | Recv _ | Sendrecv _ -> 0

  let run ?(quantum = 100) ?(telemetry = Telemetry.Registry.disabled) fabric ifaces program =
    let quantum = max 1 quantum in
    let horizon = ref quantum in
    let nranks = Array.length ifaces in
    if Array.length program <> nranks then invalid_arg "Engine.run: rank count mismatch";
    (* Telemetry handles are created once; on the disabled sink they are
       dead cells and every update below is a dropped store. *)
    let h_msg_bytes = Telemetry.Registry.histogram telemetry "smpi.msg_bytes" in
    let h_recv_wait = Telemetry.Registry.histogram telemetry "smpi.recv_wait_cycles" in
    let h_coll_wait = Telemetry.Registry.histogram telemetry "smpi.coll_wait_cycles" in
    let tr = Telemetry.Registry.trace telemetry in
    let trace_op ~name ~rank ~ts ~dur ~bytes =
      Telemetry.Trace.record tr
        {
          Telemetry.Trace.name;
          cat = "smpi";
          ph = 'X';
          ts;
          dur = max 0 dur;
          tid = rank;
          args = (if bytes = 0 then [] else [ ("bytes", Telemetry.Trace.Int bytes) ]);
        }
    in
    let states =
      Array.map (fun segs -> { segments = segs; coll_index = 0; coll_posted = false }) program
    in
    let mailbox : (int * int * int, message Queue.t) Hashtbl.t = Hashtbl.create 64 in
    let colls : (int, coll_slot) Hashtbl.t = Hashtbl.create 16 in
    let s_messages = ref 0 in
    let s_bytes = ref 0 in
    let s_colls = ref 0 in
    let s_blocked_max = ref 0 in
    let post_message ~src ~dst ~tag msg =
      let key = (src, dst, tag) in
      let q = match Hashtbl.find_opt mailbox key with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add mailbox key q;
          q
      in
      Queue.push msg q
    in
    let take_message ~src ~dst ~tag =
      match Hashtbl.find_opt mailbox (src, dst, tag) with
      | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
      | _ -> None
    in
    let do_send iface ~rank ~dst ~bytes ~tag =
      let t0 = iface.now () in
      let done_ = fabric.transfer ~src:rank ~dst ~cycle:(t0 + fabric.latency_cycles) ~bytes in
      iface.advance_to done_;
      post_message ~src:rank ~dst ~tag { m_bytes = bytes; avail = done_ };
      incr s_messages;
      s_bytes := !s_bytes + bytes;
      Telemetry.Registry.observe h_msg_bytes (float_of_int bytes);
      trace_op ~name:(Printf.sprintf "send->%d" dst) ~rank ~ts:t0 ~dur:(done_ - t0) ~bytes
    in
    (* Try to execute one segment of rank [r]; returns true on progress. *)
    let step r =
      let st = states.(r) in
      let iface = ifaces.(r) in
      match st.segments with
      | [] -> false
      | Compute stream :: rest ->
        (* Execute up to the shared cycle horizon, then yield so every
           rank's timestamps stay within one quantum of each other. *)
        let fed = ref false in
        let rec go s =
          if iface.now () >= !horizon then Some s
          else
            match s () with
            | Seq.Nil -> None
            | Seq.Cons (insn, tl) ->
              iface.feed insn;
              fed := true;
              go tl
        in
        (match go stream with
        | None ->
          st.segments <- rest;
          true
        | Some tail ->
          st.segments <- Compute tail :: rest;
          !fed)
      | Comm (Send { dst; bytes; tag }) :: rest ->
        do_send iface ~rank:r ~dst ~bytes ~tag;
        st.segments <- rest;
        true
      | Comm (Recv { src; bytes; tag }) :: rest -> (
        match take_message ~src ~dst:r ~tag with
        | None -> false
        | Some msg ->
          let t0 = iface.now () in
          let start = max (t0 + fabric.latency_cycles) msg.avail in
          (* Copy-out from the shared buffer to the user buffer (local to
             the receiver). *)
          let done_ = fabric.transfer ~src:r ~dst:r ~cycle:start ~bytes:(max bytes msg.m_bytes) in
          s_blocked_max := max !s_blocked_max (done_ - t0);
          Telemetry.Registry.observe h_recv_wait (float_of_int (done_ - t0));
          trace_op ~name:(Printf.sprintf "recv<-%d" src) ~rank:r ~ts:t0 ~dur:(done_ - t0) ~bytes;
          iface.advance_to done_;
          st.segments <- rest;
          true)
      | Comm (Sendrecv { peer; send_bytes; recv_bytes; tag }) :: rest ->
        (* Eager send makes the symmetric exchange deadlock-free: expand
           into Send;Recv. *)
        do_send iface ~rank:r ~dst:peer ~bytes:send_bytes ~tag;
        st.segments <- Comm (Recv { src = peer; bytes = recv_bytes; tag }) :: rest;
        true
      | Comm coll :: rest ->
        assert (is_collective coll);
        let slot =
          match Hashtbl.find_opt colls st.coll_index with
          | Some s ->
            if not (same_collective s.template coll) then
              raise
                (Deadlock
                   (Format.asprintf "rank %d: collective #%d mismatch: %a vs %a" r st.coll_index
                      pp_op coll pp_op s.template));
            s
          | None ->
            let s = { template = coll; arrivals = 0; max_time = 0; finish = -1 } in
            Hashtbl.add colls st.coll_index s;
            s
        in
        if not st.coll_posted then begin
          slot.arrivals <- slot.arrivals + 1;
          slot.max_time <- max slot.max_time (iface.now ());
          st.coll_posted <- true;
          if slot.arrivals = nranks then begin
            slot.finish <- collective_finish fabric nranks slot.max_time coll;
            incr s_colls;
            s_bytes := !s_bytes + collective_bytes nranks coll;
            Log.debug (fun m ->
                m "collective #%d %a: arrivals complete at %d, finish %d" st.coll_index pp_op coll
                  slot.max_time slot.finish)
          end
        end;
        if slot.finish >= 0 then begin
          let t0 = iface.now () in
          s_blocked_max := max !s_blocked_max (slot.finish - t0);
          Telemetry.Registry.observe h_coll_wait (float_of_int (max 0 (slot.finish - t0)));
          trace_op
            ~name:(Format.asprintf "%a" pp_op coll)
            ~rank:r ~ts:t0 ~dur:(slot.finish - t0)
            ~bytes:(collective_bytes nranks coll);
          iface.advance_to slot.finish;
          st.coll_index <- st.coll_index + 1;
          st.coll_posted <- false;
          st.segments <- rest;
          true
        end
        else false
    in
    let all_done () = Array.for_all (fun st -> st.segments = []) states in
    let rec loop () =
      if not (all_done ()) then begin
        let progress = ref false in
        for r = 0 to nranks - 1 do
          (* One step (one chunk or one comm op) per rank per pass keeps
             ranks temporally interleaved. *)
          if step r then progress := true
        done;
        if not !progress then begin
          (* Every rank is either compute-bound at the horizon or blocked
             on communication.  If anyone still has compute, move time
             forward; otherwise the program is truly stuck. *)
          let has_compute =
            Array.exists (fun st -> match st.segments with Compute _ :: _ -> true | _ -> false) states
          in
          if has_compute then begin
            Log.debug (fun m -> m "horizon -> %d" (!horizon + quantum));
            horizon := !horizon + quantum
          end
          else begin
            let blocked =
              Array.to_list states
              |> List.mapi (fun r st ->
                     match st.segments with
                     | Comm op :: _ -> Format.asprintf "rank %d blocked on %a" r pp_op op
                     | _ -> Format.asprintf "rank %d idle" r)
              |> String.concat "; "
            in
            raise (Deadlock blocked)
          end
        end;
        loop ()
      end
    in
    loop ();
    Telemetry.Registry.set_all telemetry
      [
        ("smpi.messages", !s_messages);
        ("smpi.bytes_moved", !s_bytes);
        ("smpi.collectives", !s_colls);
        ("smpi.comm_cycles_max", !s_blocked_max);
      ];
    {
      messages = !s_messages;
      bytes_moved = !s_bytes;
      collectives = !s_colls;
      comm_cycles_max = !s_blocked_max;
    }
end
