(** SoC instantiation and workload execution.

    [create] assembles the full timing stack described by a {!Config.t}:
    per-core L1I/L1D, the shared banked L2, the optional LLC, the system
    bus between the private and shared levels, and the DRAM channels
    behind everything.  [run_ranks] then co-simulates a multi-rank MPI
    program on it; [run_stream] is the single-stream convenience used by
    the microbenchmarks.

    A fresh [t] should be created per measurement: caches start cold
    (kernels are expected to include their own warmup phase, as the
    MicroBench suite does). *)

type t

type core_stats = {
  instructions : int;
  cycles : int;
  loads : int;
  stores : int;
  mispredicts : int;
}

type result = {
  platform : string;
  ranks : int;
  cycles : int;  (** completion cycle of the slowest rank *)
  seconds : float;  (** target wall-clock: cycles / core frequency *)
  instructions : int;  (** total retired over all ranks *)
  per_core : core_stats array;
  l1d_misses : int;
  l1d_accesses : int;
  l2_misses : int;
  l2_accesses : int;
  dram_requests : int;
  tlb_walks : int;  (** page-table walks over all cores (D + I side) *)
  comm : Smpi.comm_stats option;
}

val create : Config.t -> t

val config : t -> Config.t

val run_ranks : ?quantum:int -> ?telemetry:Telemetry.Registry.t -> t -> Smpi.program -> result
(** Run an MPI program with as many ranks as the program has (must not
    exceed the platform's core count).  [telemetry] is forwarded to the
    MPI engine (message/wait histograms, per-op trace events). *)

val counters : t -> (string * int) list
(** Named snapshot of every component counter in the SoC: per-level cache
    stats ([cache.l1i.*], [cache.l1d.*], [cache.l2.*], [cache.llc.*]),
    per-channel DRAM row-buffer and queue behaviour ([dram.chanN.*]),
    TLB, bus, and summed core stats.  Cumulative and monotone — difference
    two snapshots to isolate a measured region. *)

val run_stream : t -> Isa.Insn.t Seq.t -> result
(** Run a single instruction stream on core 0. *)

val warm_insn : t -> Isa.Insn.t -> unit
(** Functionally warm core 0 with one instruction: caches, TLBs, and
    branch predictor state advance, pipeline timing and retired counts do
    not (see {!Uarch.Inorder.warm}).  The sampled-simulation engine uses
    this between detailed intervals. *)

val run_trace : t -> Trace.t -> result
(** {!run_stream} over a compiled trace: cycle-identical results, no
    per-instruction allocation. *)

val feed_trace : t -> Trace.t -> lo:int -> hi:int -> unit
(** Detailed-feed trace indices [lo, hi) to core 0. *)

val warm_trace : t -> Trace.t -> lo:int -> hi:int -> unit
(** Functionally warm core 0 with trace indices [lo, hi). *)

val fast_forward : t -> cycles:int -> insns:int -> loads:int -> stores:int -> unit
(** Memoized-replay fast-forward on core 0 — see
    {!Uarch.Inorder.fast_forward} for the contract. *)

val memsys_of_core : t -> int -> Uarch.Memsys.t
(** Expose a core's memory-system interface (for tests and calibration). *)

val core_iface : t -> int -> Smpi.rank_iface
(** Expose core [i] as an MPI rank interface — the building block the
    multi-node engine ({!Firesim.Multinode}) composes across SoCs. *)

val local_transfer : t -> cycle:int -> bytes:int -> int
(** A transfer through this SoC's shared bus (intra-node MPI traffic). *)

val mpi_latency_cycles : t -> int
(** The configured shared-memory MPI latency in this SoC's cycles. *)

val collect_result : t -> ranks:int -> comm:Smpi.comm_stats option -> result
(** Snapshot this SoC's statistics for its first [ranks] cores. *)
