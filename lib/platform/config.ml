type core_model =
  | Inorder of Uarch.Inorder.config
  | Ooo of Uarch.Ooo.config

type t = {
  name : string;
  description : string;
  cores : int;
  core : core_model;
  l1i : Cache.config;
  l1d : Cache.config;
  l2 : Cache.config;
  llc : Cache.config option;
  bus : Interconnect.Bus.config;
  dram : Dram.config;
  dtlb : Tlb.config;
  itlb : Tlb.config;
  mpi_latency_us : float;
}

let freq_hz t =
  match t.core with
  | Inorder c -> c.Uarch.Inorder.freq_hz
  | Ooo c -> c.Uarch.Ooo.freq_hz

let core_name t =
  match t.core with
  | Inorder c -> c.Uarch.Inorder.name
  | Ooo c -> c.Uarch.Ooo.name

let with_freq t hz =
  let core =
    match t.core with
    | Inorder c -> Inorder { c with Uarch.Inorder.freq_hz = hz }
    | Ooo c -> Ooo { c with Uarch.Ooo.freq_hz = hz }
  in
  { t with core }

let with_cores t n =
  if n <= 0 then invalid_arg "Config.with_cores";
  { t with cores = n }

(* Structural hash over the whole configuration record (plain data: ints,
   floats, strings, nested records).  Memo cost tables key on this so
   costs measured under one configuration are never replayed under
   another — including tuning-sweep variants that share a name. *)
let fingerprint t = Hashtbl.hash_param 512 512 t

let pp_summary ppf t =
  let ghz = freq_hz t /. 1e9 in
  Format.fprintf ppf "@[<v>%s: %d x %s @ %.1f GHz@,L1I %dKiB / L1D %dKiB / L2 %dKiB%s@,bus %d-bit, %s@]"
    t.name t.cores (core_name t) ghz
    (Cache.size_bytes t.l1i / 1024)
    (Cache.size_bytes t.l1d / 1024)
    (Cache.size_bytes t.l2 / 1024)
    (match t.llc with
    | None -> ""
    | Some llc -> Printf.sprintf " / LLC %dMiB" (Cache.size_bytes llc / 1024 / 1024))
    t.bus.Interconnect.Bus.width_bits t.dram.Dram.name
