(** Full-platform (SoC) configuration: cores, cache hierarchy, system bus,
    DRAM, and the MPI fabric latency.  Instances for every platform in the
    paper live in {!Catalog}. *)

type core_model =
  | Inorder of Uarch.Inorder.config
  | Ooo of Uarch.Ooo.config

type t = {
  name : string;
  description : string;
  cores : int;
  core : core_model;
  l1i : Cache.config;
  l1d : Cache.config;
  l2 : Cache.config;  (** shared across the cluster *)
  llc : Cache.config option;  (** last-level cache, if present *)
  bus : Interconnect.Bus.config;
  dram : Dram.config;
  dtlb : Tlb.config;
  itlb : Tlb.config;
  mpi_latency_us : float;  (** shared-memory MPI per-message latency *)
}

val freq_hz : t -> float
val core_name : t -> string

val with_freq : t -> float -> t
(** Same platform with the core clock scaled (the paper's "Fast Banana Pi
    Sim Model" doubles the clock to mimic dual issue). *)

val with_cores : t -> int -> t

val fingerprint : t -> int
(** Structural hash of the full configuration, used to key memoized
    block-cost tables: two configs with different timing parameters get
    different fingerprints even when they share a [name]. *)

val pp_summary : Format.formatter -> t -> unit
