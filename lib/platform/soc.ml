type core_handle =
  | In of Uarch.Inorder.t
  | Oo of Uarch.Ooo.t

type t = {
  cfg : Config.t;
  cores : core_handle array;
  l1i : Cache.t array;
  l1d : Cache.t array;
  dtlb : Tlb.t array;
  itlb : Tlb.t array;
  l2 : Cache.t;
  llc : Cache.t option;
  bus : Interconnect.Bus.t;
  dram : Dram.t;
}

type core_stats = {
  instructions : int;
  cycles : int;
  loads : int;
  stores : int;
  mispredicts : int;
}

type result = {
  platform : string;
  ranks : int;
  cycles : int;
  seconds : float;
  instructions : int;
  per_core : core_stats array;
  l1d_misses : int;
  l1d_accesses : int;
  l2_misses : int;
  l2_accesses : int;
  dram_requests : int;
  tlb_walks : int;
  comm : Smpi.comm_stats option;
}

(* The downstream path below the shared L2: LLC if present, then DRAM.
   DRAM works in nanoseconds; convert at the boundary. *)
let downstream soc =
  let freq = Config.freq_hz soc.cfg in
  let dram_next ~cycle ~addr ~write =
    let t_ns = Util.Units.cycles_to_ns ~freq_hz:freq cycle in
    let done_ns = Dram.request soc.dram ~time_ns:t_ns ~addr ~write in
    Util.Units.ns_to_cycles ~freq_hz:freq done_ns
  in
  match soc.llc with
  | None -> dram_next
  | Some llc -> fun ~cycle ~addr ~write -> Cache.access llc ~next:dram_next ~cycle ~addr ~write

(* The path from a core's private L1s down: cross the system bus, look up
   the shared L2, and below that the downstream path.  Instruction-side
   refills do not train the L2 stream prefetcher (it observes data-side
   demand misses only). *)
let l2_path soc ~prefetchable =
  let next = downstream soc in
  let line = soc.cfg.Config.l2.Cache.line in
  fun ~cycle ~addr ~write ->
    let c = Interconnect.Bus.transfer soc.bus ~cycle ~bytes:line in
    Cache.access ~prefetchable soc.l2 ~next ~cycle:c ~addr ~write

(* Content-only (functional-warming) twin of the downstream path: same
   cache-content transitions, no bus/DRAM timing.  DRAM carries no content
   state, so the chain bottoms out in a no-op. *)
let warm_downstream soc : Cache.warm_next =
  match soc.llc with
  | None -> fun ~addr:_ ~write:_ -> ()
  | Some llc ->
    fun ~addr ~write -> Cache.warm_access llc ~next:(fun ~addr:_ ~write:_ -> ()) ~addr ~write

let warm_l2_path soc ~prefetchable : Cache.warm_next =
  let next = warm_downstream soc in
  fun ~addr ~write -> Cache.warm_access ~prefetchable soc.l2 ~next ~addr ~write

let memsys_for soc i =
  let l2d = l2_path soc ~prefetchable:true in
  let l2i = l2_path soc ~prefetchable:false in
  let wl2d = warm_l2_path soc ~prefetchable:true in
  let wl2i = warm_l2_path soc ~prefetchable:false in
  let l1d = soc.l1d.(i) in
  let l1i = soc.l1i.(i) in
  let dtlb = soc.dtlb.(i) in
  let itlb = soc.itlb.(i) in
  {
    Uarch.Memsys.load =
      (fun ~cycle ~addr ~size:_ ->
        let cycle = cycle + Tlb.translate dtlb ~addr in
        Cache.access l1d ~next:l2d ~cycle ~addr ~write:false);
    store =
      (fun ~cycle ~addr ~size:_ ->
        let cycle = cycle + Tlb.translate dtlb ~addr in
        Cache.access l1d ~next:l2d ~cycle ~addr ~write:true);
    ifetch =
      (fun ~cycle ~pc ->
        let cycle = cycle + Tlb.translate itlb ~addr:pc in
        Cache.access l1i ~next:l2i ~cycle ~addr:pc ~write:false);
    warm_load =
      (fun ~addr ~size:_ ->
        ignore (Tlb.translate dtlb ~addr);
        Cache.warm_access l1d ~next:wl2d ~addr ~write:false);
    warm_store =
      (fun ~addr ~size:_ ->
        ignore (Tlb.translate dtlb ~addr);
        Cache.warm_access l1d ~next:wl2d ~addr ~write:true);
    warm_ifetch =
      (fun ~pc ->
        ignore (Tlb.translate itlb ~addr:pc);
        Cache.warm_access l1i ~next:wl2i ~addr:pc ~write:false);
  }

let create (cfg : Config.t) =
  let soc_partial =
    {
      cfg;
      cores = [||];
      l1i = Array.init cfg.cores (fun _ -> Cache.create cfg.l1i);
      l1d = Array.init cfg.cores (fun _ -> Cache.create cfg.l1d);
      dtlb = Array.init cfg.cores (fun _ -> Tlb.create cfg.dtlb);
      itlb = Array.init cfg.cores (fun _ -> Tlb.create cfg.itlb);
      l2 = Cache.create cfg.l2;
      llc = Option.map Cache.create cfg.llc;
      bus = Interconnect.Bus.create cfg.bus;
      dram = Dram.create cfg.dram;
    }
  in
  let cores =
    Array.init cfg.cores (fun i ->
        let mem = memsys_for soc_partial i in
        match cfg.core with
        | Config.Inorder c -> In (Uarch.Inorder.create c mem)
        | Config.Ooo c -> Oo (Uarch.Ooo.create c mem))
  in
  { soc_partial with cores }

let config soc = soc.cfg

let core_feed = function
  | In c -> Uarch.Inorder.feed c
  | Oo c -> Uarch.Ooo.feed c

let core_now = function
  | In c -> Uarch.Inorder.now c
  | Oo c -> Uarch.Ooo.now c

let core_advance = function
  | In c -> Uarch.Inorder.advance_to c
  | Oo c -> Uarch.Ooo.advance_to c

let core_stats_of = function
  | In c ->
    let s = Uarch.Inorder.stats c in
    {
      instructions = s.Uarch.Inorder.instructions;
      cycles = s.cycles;
      loads = s.loads;
      stores = s.stores;
      mispredicts = s.mispredicts;
    }
  | Oo c ->
    let s = Uarch.Ooo.stats c in
    {
      instructions = s.Uarch.Ooo.instructions;
      cycles = s.cycles;
      loads = s.loads;
      stores = s.stores;
      mispredicts = s.mispredicts;
    }

let fabric soc =
  let freq = Config.freq_hz soc.cfg in
  let latency_cycles = Util.Units.ns_to_cycles ~freq_hz:freq (soc.cfg.Config.mpi_latency_us *. 1000.0) in
  {
    Smpi.latency_cycles;
    transfer = (fun ~src:_ ~dst:_ ~cycle ~bytes -> Interconnect.Bus.transfer soc.bus ~cycle ~bytes);
  }

let collect soc ~ranks ~comm =
  let used = Array.sub soc.cores 0 ranks in
  let per_core = Array.map core_stats_of used in
  let cycles = Array.fold_left (fun acc c -> max acc (core_now c)) 0 used in
  let freq = Config.freq_hz soc.cfg in
  let l1d_stats = Array.map Cache.stats soc.l1d in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 l1d_stats in
  let l2s = Cache.stats soc.l2 in
  {
    platform = soc.cfg.Config.name;
    ranks;
    cycles;
    seconds = Util.Units.cycles_to_seconds ~freq_hz:freq cycles;
    instructions = Array.fold_left (fun acc (s : core_stats) -> acc + s.instructions) 0 per_core;
    per_core;
    l1d_misses = sum (fun s -> s.Cache.misses);
    l1d_accesses = sum (fun s -> s.Cache.accesses);
    l2_misses = l2s.Cache.misses;
    l2_accesses = l2s.Cache.accesses;
    dram_requests = (Dram.stats soc.dram).Dram.requests;
    tlb_walks =
      Array.fold_left (fun acc tlb -> acc + (Tlb.stats tlb).Tlb.walks) 0 soc.dtlb
      + Array.fold_left (fun acc tlb -> acc + (Tlb.stats tlb).Tlb.walks) 0 soc.itlb;
    comm;
  }

(* Full named counter snapshot of the memory hierarchy, used by the
   telemetry layer.  Values are cumulative over the SoC's lifetime and
   monotone, so callers can difference two snapshots to isolate a
   measured region (Runner does this to exclude setup streams). *)
let counters soc =
  let cache_counters prefix (s : Cache.stats) =
    [
      (prefix ^ ".accesses", s.Cache.accesses);
      (prefix ^ ".hits", s.Cache.hits);
      (prefix ^ ".misses", s.Cache.misses);
      (prefix ^ ".evictions", s.Cache.evictions);
      (prefix ^ ".writebacks", s.Cache.writebacks);
      (prefix ^ ".bank_conflicts", s.Cache.bank_conflicts);
      (prefix ^ ".mshr_stalls", s.Cache.mshr_stalls);
      (prefix ^ ".prefetches", s.Cache.prefetches);
    ]
  in
  let sum_caches arr =
    Array.fold_left
      (fun acc c ->
        let s = Cache.stats c in
        {
          Cache.accesses = acc.Cache.accesses + s.Cache.accesses;
          hits = acc.Cache.hits + s.Cache.hits;
          misses = acc.Cache.misses + s.Cache.misses;
          evictions = acc.Cache.evictions + s.Cache.evictions;
          writebacks = acc.Cache.writebacks + s.Cache.writebacks;
          bank_conflicts = acc.Cache.bank_conflicts + s.Cache.bank_conflicts;
          mshr_stalls = acc.Cache.mshr_stalls + s.Cache.mshr_stalls;
          prefetches = acc.Cache.prefetches + s.Cache.prefetches;
        })
      {
        Cache.accesses = 0;
        hits = 0;
        misses = 0;
        evictions = 0;
        writebacks = 0;
        bank_conflicts = 0;
        mshr_stalls = 0;
        prefetches = 0;
      }
      arr
  in
  let tlb_counters prefix arr =
    let acc, l1m, walks =
      Array.fold_left
        (fun (a, m, w) tlb ->
          let s = Tlb.stats tlb in
          (a + s.Tlb.accesses, m + s.Tlb.l1_misses, w + s.Tlb.walks))
        (0, 0, 0) arr
    in
    [ (prefix ^ ".accesses", acc); (prefix ^ ".l1_misses", l1m); (prefix ^ ".walks", walks) ]
  in
  let core_counters =
    let instructions, cycles, loads, stores, mispredicts =
      Array.fold_left
        (fun (i, c, l, s, m) core ->
          let st = core_stats_of core in
          (i + st.instructions, max c st.cycles, l + st.loads, s + st.stores, m + st.mispredicts))
        (0, 0, 0, 0, 0) soc.cores
    in
    [
      ("core.instructions", instructions);
      ("core.cycles", cycles);
      ("core.loads", loads);
      ("core.stores", stores);
      ("core.mispredicts", mispredicts);
    ]
  in
  let bus_counters =
    let s = Interconnect.Bus.stats soc.bus in
    [
      ("bus.transfers", s.Interconnect.Bus.transfers);
      ("bus.beats", s.Interconnect.Bus.beats);
      ("bus.contended", s.Interconnect.Bus.contended);
      ("bus.busy_cycles", s.Interconnect.Bus.busy_cycles);
    ]
  in
  let dram_counters =
    let s = Dram.stats soc.dram in
    [
      ("dram.requests", s.Dram.requests);
      ("dram.reads", s.Dram.reads);
      ("dram.writes", s.Dram.writes);
      ("dram.row_hits", s.Dram.row_hits);
      ("dram.row_empty", s.Dram.row_empty);
      ("dram.row_conflicts", s.Dram.row_conflicts);
      ("dram.queue_stalls", s.Dram.queue_stalls);
    ]
    @ List.concat
        (Array.to_list
           (Array.mapi
              (fun i (c : Dram.chan_stats) ->
                let p = Printf.sprintf "dram.chan%d" i in
                [
                  (p ^ ".requests", c.Dram.chan_requests);
                  (p ^ ".row_hits", c.Dram.chan_row_hits);
                  (p ^ ".row_empty", c.Dram.chan_row_empty);
                  (p ^ ".row_conflicts", c.Dram.chan_row_conflicts);
                  (p ^ ".queue_stalls", c.Dram.chan_queue_stalls);
                  (p ^ ".occupancy_sum", c.Dram.chan_occupancy_sum);
                  (p ^ ".occupancy_max", c.Dram.chan_occupancy_max);
                ])
              (Dram.channel_stats soc.dram)))
  in
  core_counters
  @ cache_counters "cache.l1i" (sum_caches soc.l1i)
  @ cache_counters "cache.l1d" (sum_caches soc.l1d)
  @ cache_counters "cache.l2" (Cache.stats soc.l2)
  @ (match soc.llc with None -> [] | Some llc -> cache_counters "cache.llc" (Cache.stats llc))
  @ tlb_counters "tlb.dtlb" soc.dtlb
  @ tlb_counters "tlb.itlb" soc.itlb
  @ bus_counters @ dram_counters

let run_ranks ?quantum ?telemetry soc program =
  let ranks = Array.length program in
  if ranks > soc.cfg.Config.cores then
    invalid_arg
      (Printf.sprintf "Soc.run_ranks: %d ranks on %d cores (%s)" ranks soc.cfg.Config.cores
         soc.cfg.Config.name);
  let ifaces =
    Array.init ranks (fun r ->
        let core = soc.cores.(r) in
        {
          Smpi.feed = core_feed core;
          now = (fun () -> core_now core);
          advance_to = core_advance core;
        })
  in
  let comm = Smpi.Engine.run ?quantum ?telemetry (fabric soc) ifaces program in
  collect soc ~ranks ~comm:(Some comm)

let run_stream soc stream =
  (match soc.cores.(0) with
  | In c -> Uarch.Inorder.run c stream
  | Oo c -> Uarch.Ooo.run c stream);
  collect soc ~ranks:1 ~comm:None

let warm_insn soc insn =
  match soc.cores.(0) with
  | In c -> Uarch.Inorder.warm c insn
  | Oo c -> Uarch.Ooo.warm c insn

(* Trace replay on core 0: cycle-identical to feeding the equivalent
   Insn.t stream, without the per-instruction allocation. *)

let feed_trace soc tr ~lo ~hi =
  match soc.cores.(0) with
  | In c -> Uarch.Inorder.feed_trace c tr ~lo ~hi
  | Oo c -> Uarch.Ooo.feed_trace c tr ~lo ~hi

let warm_trace soc tr ~lo ~hi =
  match soc.cores.(0) with
  | In c -> Uarch.Inorder.warm_trace c tr ~lo ~hi
  | Oo c -> Uarch.Ooo.warm_trace c tr ~lo ~hi

let fast_forward soc ~cycles ~insns ~loads ~stores =
  match soc.cores.(0) with
  | In c -> Uarch.Inorder.fast_forward c ~cycles ~insns ~loads ~stores
  | Oo c -> Uarch.Ooo.fast_forward c ~cycles ~insns ~loads ~stores

let run_trace soc tr =
  feed_trace soc tr ~lo:0 ~hi:(Trace.length tr);
  collect soc ~ranks:1 ~comm:None

let memsys_of_core soc i = memsys_for soc i

let core_iface soc i =
  let core = soc.cores.(i) in
  {
    Smpi.feed = core_feed core;
    now = (fun () -> core_now core);
    advance_to = core_advance core;
  }

let local_transfer soc ~cycle ~bytes = Interconnect.Bus.transfer soc.bus ~cycle ~bytes
let mpi_latency_cycles soc = (fabric soc).Smpi.latency_cycles
let collect_result soc ~ranks ~comm = collect soc ~ranks ~comm
