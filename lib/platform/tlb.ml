type config = {
  name : string;
  l1_entries : int;
  l2_entries : int;
  page_bytes : int;
  l2_latency : int;
  walk_latency : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ?(page_bytes = 4096) ?(l2_latency = 8) ?(walk_latency = 40) ~name ~l1_entries
    ~l2_entries () =
  if l1_entries <= 0 then invalid_arg "Tlb.config: l1_entries";
  if l2_entries < 0 then invalid_arg "Tlb.config: l2_entries";
  if not (is_pow2 page_bytes) then invalid_arg "Tlb.config: page_bytes";
  if l2_entries > 0 && not (is_pow2 l2_entries) then invalid_arg "Tlb.config: l2_entries";
  { name; l1_entries; l2_entries; page_bytes; l2_latency; walk_latency }

let firesim_rocket = config ~name:"rocket-tlb" ~l1_entries:32 ~l2_entries:0 ()
let firesim_boom = config ~name:"boom-tlb" ~l1_entries:32 ~l2_entries:1024 ()
let silicon = config ~name:"silicon-tlb" ~l1_entries:64 ~l2_entries:2048 ~walk_latency:32 ()

type stats = {
  accesses : int;
  l1_misses : int;
  walks : int;
}

type t = {
  cfg : config;
  shift : int;  (* log2 page_bytes, precomputed off the hot path *)
  l1_pages : int array;  (* fully associative: page numbers, -1 invalid *)
  l1_use : int array;
  l2_pages : int array;  (* direct mapped *)
  mutable clock : int;
  mutable last_page : int;  (* MRU shortcut past the associative scan *)
  mutable last_slot : int;
  mutable s_accesses : int;
  mutable s_l1_misses : int;
  mutable s_walks : int;
}

let page_shift cfg =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 cfg.page_bytes

let create cfg =
  {
    cfg;
    shift = page_shift cfg;
    l1_pages = Array.make cfg.l1_entries (-1);
    l1_use = Array.make cfg.l1_entries 0;
    l2_pages = Array.make (max 1 cfg.l2_entries) (-1);
    clock = 0;
    last_page = -1;
    last_slot = 0;
    s_accesses = 0;
    s_l1_misses = 0;
    s_walks = 0;
  }

let translate t ~addr =
  t.s_accesses <- t.s_accesses + 1;
  t.clock <- t.clock + 1;
  let page = addr lsr t.shift in
  (* MRU shortcut: page numbers are unique in L1 (installed only on miss),
     so hitting the remembered slot is exactly what the scan would find —
     same LRU update, same latency, just without the scan. *)
  if page = t.last_page && t.l1_pages.(t.last_slot) = page then begin
    t.l1_use.(t.last_slot) <- t.clock;
    0
  end
  else begin
    (* Fully associative L1 lookup.  A while loop over a local ref, not an
       inner recursive function — the latter allocates a closure per call
       without flambda, and strided kernels land here on most accesses. *)
    let n = t.cfg.l1_entries in
    let slot = ref (-1) in
    let i = ref 0 in
    while !i < n do
      if Array.unsafe_get t.l1_pages !i = page then begin
        slot := !i;
        i := n
      end
      else incr i
    done;
    let slot = !slot in
    if slot >= 0 then begin
      t.l1_use.(slot) <- t.clock;
      t.last_page <- page;
      t.last_slot <- slot;
      0
    end
    else begin
      t.s_l1_misses <- t.s_l1_misses + 1;
      (* LRU victim in L1. *)
      let victim = ref 0 in
      for i = 1 to n - 1 do
        if Array.unsafe_get t.l1_use i < Array.unsafe_get t.l1_use !victim then victim := i
      done;
      t.l1_pages.(!victim) <- page;
      t.l1_use.(!victim) <- t.clock;
      t.last_page <- page;
      t.last_slot <- !victim;
      if t.cfg.l2_entries > 0 then begin
        let idx = page land (t.cfg.l2_entries - 1) in
        if t.l2_pages.(idx) = page then t.cfg.l2_latency
        else begin
          t.s_walks <- t.s_walks + 1;
          t.l2_pages.(idx) <- page;
          t.cfg.walk_latency
        end
      end
      else begin
        t.s_walks <- t.s_walks + 1;
        t.cfg.walk_latency
      end
    end
  end

let stats t = { accesses = t.s_accesses; l1_misses = t.s_l1_misses; walks = t.s_walks }
let reach_bytes cfg = cfg.l1_entries * cfg.page_bytes
