(** Analytic in-order pipeline timing model (Rocket-class, SpacemiT-K1-class).

    Instructions are processed in program order with explicit timestamps:
    a scoreboard tracks when each architectural register's value becomes
    available, an issue-slot allocator enforces the issue width, and
    structural hazards (single memory port, unpipelined divider, store
    buffer capacity) are modeled with availability timestamps.  Loads are
    non-blocking: the core keeps issuing independent instructions under a
    miss and stalls only at the first true dependence (hit-under-miss, as
    in Rocket's HellaCache).

    The branch-misprediction penalty (redirect from execute back to
    fetch) tracks pipeline depth — the 5-stage Rocket vs. 8-stage K1
    difference in the paper is exactly this parameter together with
    [issue_width]. *)

type config = {
  name : string;
  freq_hz : float;
  fetch_width : int;
  issue_width : int;  (** 1 = Rocket, 2 = SpacemiT K1 *)
  pipeline_stages : int;
  mispredict_penalty : int;  (** redirect cost of a mispredicted branch *)
  mem_ports : int;
  store_buffer : int;
  load_queue : int;  (** max outstanding loads before issue stalls *)
  latencies : Isa.Insn.Latency.table;
  frontend : Branch.Frontend.config;
}

val rocket : ?name:string -> ?freq_hz:float -> unit -> config
(** Rocket defaults: 5-stage, single-issue, 2-wide fetch. *)

val k1 : ?name:string -> ?freq_hz:float -> unit -> config
(** SpacemiT K1 defaults: 8-stage, dual-issue. *)

type stats = {
  instructions : int;
  cycles : int;
  loads : int;
  stores : int;
  mispredicts : int;
  ipc : float;
}

type t

val create : config -> Memsys.t -> t

val feed : t -> Isa.Insn.t -> unit
(** Retire one instruction, advancing the model's clock. *)

val run : t -> Isa.Insn.t Seq.t -> unit
(** Feed a whole stream. *)

val feed_trace : t -> Trace.t -> lo:int -> hi:int -> unit
(** Retire trace indices [lo, hi): cycle-identical to {!feed}ing the same
    instructions, but decoding packed trace fields directly — no
    [Insn.t] reconstruction, no allocation in the loop. *)

val warm_trace : t -> Trace.t -> lo:int -> hi:int -> unit
(** {!warm} over trace indices [lo, hi), allocation-free. *)

val warm : t -> Isa.Insn.t -> unit
(** Functional warming for sampled simulation: update long-lived
    microarchitectural state — caches and TLBs (through the memory
    system) and the branch predictor — without modeling pipeline timing
    and without counting the instruction in {!stats}.  Memory traffic
    issues at the completion frontier and advances it, keeping fill
    timestamps consistent when {!feed} resumes.  Cache/TLB statistics do
    include the warming traffic. *)

val now : t -> int
(** Current completion frontier in cycles: all work issued so far is done
    by this cycle. *)

val advance_to : t -> int -> unit
(** Idle (e.g. blocked in MPI) until the given cycle. *)

val fast_forward : t -> cycles:int -> insns:int -> loads:int -> stores:int -> unit
(** Memoized-replay support: account [insns] retired instructions
    ([loads]/[stores] of them memory operations) whose aggregate cost was
    measured earlier, and advance the completion frontier by [cycles]
    without touching caches, TLBs, the predictor, or queue state.  Like
    {!advance_to}, the jump is a pipeline barrier: nothing issued after it
    completes before the new frontier.  Raises [Invalid_argument] on a
    negative amount. *)

val stats : t -> stats
val config_of : t -> config
