type t = {
  load : cycle:int -> addr:int -> size:int -> int;
  store : cycle:int -> addr:int -> size:int -> int;
  ifetch : cycle:int -> pc:int -> int;
  warm_load : addr:int -> size:int -> unit;
  warm_store : addr:int -> size:int -> unit;
  warm_ifetch : pc:int -> unit;
}

let ideal ~latency =
  {
    load = (fun ~cycle ~addr:_ ~size:_ -> cycle + latency);
    store = (fun ~cycle ~addr:_ ~size:_ -> cycle + latency);
    ifetch = (fun ~cycle ~pc:_ -> cycle + latency);
    warm_load = (fun ~addr:_ ~size:_ -> ());
    warm_store = (fun ~addr:_ ~size:_ -> ());
    warm_ifetch = (fun ~pc:_ -> ());
  }
