(* Basic-block cost memoization for trace replay.

   Interval-simulation-style fast path: simulate each repeated basic
   block in detail a few times per (uarch-config fingerprint,
   cache-state-class), record its marginal cycle cost, and replay further
   repeats by fast-forwarding the core's cycle/statistics state.  The
   accuracy contract is an explicit error bound built from the observed
   per-block cost spread, returned with the run so callers (the sampling
   estimate layer) can report a confidence interval instead of
   pretending the fast path is exact.

   Measurement discipline.  A block's marginal cost is only meaningful in
   steady state: right after a fast-forward jump the pipeline restarts
   from a barrier, so the first detailed instance is warm-up and its
   frontier delta is biased high (it pays the pipeline fill and lost
   inter-block overlap).  We therefore run detailed instances in
   contiguous windows and record a delta for (block, class) only when the
   *previous* instance was also detailed — post-barrier samples train the
   caches and predictor but never the cost table.

   Cache-state classes.  A block's cost depends on how warm the caches
   are.  We bucket by per-block occurrence count (cold / warming /
   steady): class transitions force re-measurement, and steady blocks are
   periodically re-measured (every [refresh_every] occurrences) so the
   table tracks cache-state drift over a long run. *)

type core = {
  feed_range : lo:int -> hi:int -> unit;  (* detailed simulation of [lo, hi) *)
  fast_forward : cycles:int -> insns:int -> loads:int -> stores:int -> unit;
  now : unit -> int;  (* completion frontier, cycles *)
}

type config = {
  need : int;  (* steady samples required per (block, class) before fast-forwarding *)
  refresh_every : int;  (* re-measure a steady block every this many occurrences *)
  margin : float;  (* per-fast-forward relative error allowance *)
  floor_rel : float;  (* whole-run relative error floor *)
  floor_abs : int;  (* whole-run absolute error floor, cycles *)
}

(* margin 0.10 is ~16x the worst cross-kernel error observed on the perf
   mix (0.62%); the spread term then covers genuinely noisy blocks. *)
let default = { need = 4; refresh_every = 512; margin = 0.10; floor_rel = 0.05; floor_abs = 2048 }

let num_classes = 3

(* Warmth bucket from how many times this block has already run. *)
let class_of occ = if occ < 8 then 0 else if occ < 64 then 1 else 2

type stats = {
  blocks : int;  (* distinct blocks in the analyzed trace *)
  instances : int;  (* dynamic block instances replayed *)
  memo_hits : int;  (* instances replayed by fast-forward *)
  ff_insns : int;  (* instructions fast-forwarded *)
  measured_insns : int;  (* instructions simulated in detail *)
  measured_cycles : int;  (* frontier advance across detailed instances *)
  est_cycles : int;  (* total frontier advance of the run *)
  err_bound_cycles : float;  (* declared bound on |est - full-fidelity| *)
}

(* Per-(block, class) cost cells, flat over block_id * num_classes + class. *)
let cell_n = 0
and cell_sum = 1
and cell_min = 2
and cell_max = 3

let cell_words = 4

module Table = struct
  (* Process-lifetime cost table shared across runs (the serve daemon's
     analogue of the trace cache).  Keyed by (uarch-config fingerprint,
     block content digest, cache-state class); values are the same
     [n; sum; min; max] cells the per-run arrays hold.  Sharing trades
     strict run-to-run determinism for convergence: a long-lived daemon
     re-measures each hot block once per config, not once per request. *)
  type t = {
    mutex : Mutex.t;
    cells : (int * int * int, int array) Hashtbl.t;
    max_entries : int;
    mutable seeded : int;  (* cells preloaded into runs *)
    mutable merged : int;  (* cells folded back from runs *)
  }

  let create ?(max_entries = 1 lsl 20) () =
    { mutex = Mutex.create (); cells = Hashtbl.create 4096; max_entries; seeded = 0; merged = 0 }

  let entries t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.cells)

  let stats t = Mutex.protect t.mutex (fun () -> (Hashtbl.length t.cells, t.seeded, t.merged))

  (* Preload a run's flat stat arrays from shared history. *)
  let seed t ~fingerprint (b : Trace.Blocks.t) stats_arr =
    Mutex.protect t.mutex (fun () ->
        for blk = 0 to b.Trace.Blocks.n_blocks - 1 do
          let d = b.Trace.Blocks.digests.(blk) in
          for cls = 0 to num_classes - 1 do
            match Hashtbl.find_opt t.cells (fingerprint, d, cls) with
            | Some src ->
              Array.blit src 0 stats_arr (((blk * num_classes) + cls) * cell_words) cell_words;
              t.seeded <- t.seeded + 1
            | None -> ()
          done
        done)

  (* Fold a finished run's deltas back: [before] is the post-seed
     snapshot, [after] the final state.  min/max merge monotonically. *)
  let merge t ~fingerprint (b : Trace.Blocks.t) ~before ~after =
    Mutex.protect t.mutex (fun () ->
        for blk = 0 to b.Trace.Blocks.n_blocks - 1 do
          let d = b.Trace.Blocks.digests.(blk) in
          for cls = 0 to num_classes - 1 do
            let base = ((blk * num_classes) + cls) * cell_words in
            let dn = after.(base + cell_n) - before.(base + cell_n) in
            if dn > 0 then begin
              let key = (fingerprint, d, cls) in
              match Hashtbl.find_opt t.cells key with
              | Some dst ->
                dst.(cell_n) <- dst.(cell_n) + dn;
                dst.(cell_sum) <- dst.(cell_sum) + (after.(base + cell_sum) - before.(base + cell_sum));
                if after.(base + cell_min) < dst.(cell_min) then dst.(cell_min) <- after.(base + cell_min);
                if after.(base + cell_max) > dst.(cell_max) then dst.(cell_max) <- after.(base + cell_max);
                t.merged <- t.merged + 1
              | None ->
                if Hashtbl.length t.cells < t.max_entries then begin
                  Hashtbl.replace t.cells key
                    [|
                      dn;
                      after.(base + cell_sum) - before.(base + cell_sum);
                      after.(base + cell_min);
                      after.(base + cell_max);
                    |];
                  t.merged <- t.merged + 1
                end
            end
          done
        done)
end

let run ?(cfg = default) ?table ?(fingerprint = 0) (core : core) (b : Trace.Blocks.t) =
  if cfg.need < 1 then invalid_arg "Memo.run: need must be >= 1";
  if cfg.refresh_every < 1 then invalid_arg "Memo.run: refresh_every must be >= 1";
  let nb = b.Trace.Blocks.n_blocks in
  let nc = num_classes in
  let st = Array.make (nb * nc * cell_words) 0 in
  (* min cells start at max_int so the first sample always wins *)
  for c = 0 to (nb * nc) - 1 do
    st.((c * cell_words) + cell_min) <- max_int
  done;
  (match table with
  | Some tbl -> Table.seed tbl ~fingerprint b st
  | None -> ());
  let seeded = match table with Some _ -> Array.copy st | None -> [||] in
  let seen = Array.make nb 0 in
  let last_measured = Array.make nb (-1) in
  let ids = b.Trace.Blocks.ids
  and starts = b.Trace.Blocks.starts
  and lens = b.Trace.Blocks.lens
  and loadsv = b.Trace.Blocks.loads
  and storesv = b.Trace.Blocks.stores in
  let c_start = core.now () in
  let carry = ref 0.0 in
  let detail_run = ref 0 in
  (* The run starts at a frontier barrier, so the very first instance is
     warm-up whatever happens; prev_detailed starts false. *)
  let prev_detailed = ref false in
  let memo_hits = ref 0 and ff_insns = ref 0 in
  let measured_insns = ref 0 and measured_cycles = ref 0 in
  let err = ref 0.0 in
  for inst = 0 to b.Trace.Blocks.n_instances - 1 do
    let blk = Array.unsafe_get ids inst in
    let occ = Array.unsafe_get seen blk in
    Array.unsafe_set seen blk (occ + 1);
    let cls = class_of occ in
    let base = ((blk * nc) + cls) * cell_words in
    let n_samples = Array.unsafe_get st (base + cell_n) in
    let len = Array.unsafe_get lens blk in
    let due_refresh = cls = 2 && occ - Array.unsafe_get last_measured blk >= cfg.refresh_every in
    if !detail_run = 0 && n_samples >= cfg.need && not due_refresh then begin
      (* Fast path: replay the whole block as one cost jump.  The ideal
         jump is the fractional mean cost; a carry accumulator keeps the
         total rounding error of the whole run under one cycle. *)
      let sum = Array.unsafe_get st (base + cell_sum) in
      let meanf = float_of_int sum /. float_of_int n_samples in
      let target = meanf +. !carry in
      let cycles = int_of_float (Float.round target) in
      let cycles = if cycles < 0 then 0 else cycles in
      carry := target -. float_of_int cycles;
      core.fast_forward ~cycles ~insns:len
        ~loads:(Array.unsafe_get loadsv blk)
        ~stores:(Array.unsafe_get storesv blk);
      incr memo_hits;
      ff_insns := !ff_insns + len;
      let spread = Array.unsafe_get st (base + cell_max) - Array.unsafe_get st (base + cell_min) in
      err := !err +. float_of_int spread +. (cfg.margin *. meanf);
      prev_detailed := false
    end
    else begin
      (* Detailed path.  An under-sampled or refresh-due block opens a
         detail window long enough to yield recordable (non-warm-up)
         samples even right after a fast-forward barrier. *)
      if n_samples < cfg.need || due_refresh then begin
        let w = cfg.need + 1 in
        if !detail_run < w then detail_run := w
      end;
      if !detail_run > 0 then decr detail_run;
      let c0 = core.now () in
      let lo = Array.unsafe_get starts inst in
      core.feed_range ~lo ~hi:(lo + len);
      let d = core.now () - c0 in
      measured_insns := !measured_insns + len;
      measured_cycles := !measured_cycles + d;
      (* d = 0 means the frontier is catching up to an external barrier
         (e.g. the post-setup drain point): completions are landing below
         the frontier, so the delta is not this block's cost.  Such
         samples never enter the table — the block stays detailed until
         real marginal costs become observable. *)
      if !prev_detailed && d > 0 then begin
        (* Steady-state sample: no barrier separates this instance from
           the previous one, so the frontier delta is the block's
           marginal cost including inter-block overlap. *)
        Array.unsafe_set st (base + cell_n) (n_samples + 1);
        Array.unsafe_set st (base + cell_sum) (Array.unsafe_get st (base + cell_sum) + d);
        if d < Array.unsafe_get st (base + cell_min) then Array.unsafe_set st (base + cell_min) d;
        if d > Array.unsafe_get st (base + cell_max) then Array.unsafe_set st (base + cell_max) d;
        Array.unsafe_set last_measured blk occ
      end;
      prev_detailed := true
    end
  done;
  (match table with
  | Some tbl -> Table.merge tbl ~fingerprint b ~before:seeded ~after:st
  | None -> ());
  let est_cycles = core.now () - c_start in
  let floor = (cfg.floor_rel *. float_of_int est_cycles) +. float_of_int cfg.floor_abs in
  let err_bound_cycles = if !err > floor then !err else floor in
  {
    blocks = nb;
    instances = b.Trace.Blocks.n_instances;
    memo_hits = !memo_hits;
    ff_insns = !ff_insns;
    measured_insns = !measured_insns;
    measured_cycles = !measured_cycles;
    est_cycles;
    err_bound_cycles;
  }
