(** Analytic out-of-order window timing model (BOOM-class, SG2042-class).

    A ROB-occupancy model in the interval-simulation tradition: each
    retired instruction is assigned dispatch / execute / complete / retire
    timestamps subject to

    - fetch bandwidth and instruction-cache availability,
    - decode (dispatch) width,
    - ROB capacity (dispatch stalls while the entry [rob_entries] older is
      not yet retired),
    - per-class issue ports (integer / memory / floating point),
    - load-queue and store-queue capacity,
    - register dataflow (renaming removes false dependencies),
    - in-order retirement at [retire_width], and
    - branch-misprediction redirects: fetch resumes only after the
      mispredicted branch executes plus the front-end refill penalty.

    This captures the first-order behaviour that separates Small, Medium
    and Large BOOM in the paper: window size (ROB), widths, LSQ depth and
    predictor quality. *)

type config = {
  name : string;
  freq_hz : float;
  fetch_width : int;
  decode_width : int;
  retire_width : int;
  rob_entries : int;
  int_issue : int;
  mem_issue : int;
  fp_issue : int;
  ldq_entries : int;
  stq_entries : int;
  frontend_penalty : int;  (** redirect-to-dispatch refill, cycles *)
  latencies : Isa.Insn.Latency.table;
  frontend : Branch.Frontend.config;
}

val boom_small : ?name:string -> ?freq_hz:float -> unit -> config
val boom_medium : ?name:string -> ?freq_hz:float -> unit -> config
val boom_large : ?name:string -> ?freq_hz:float -> unit -> config

val sg2042 : ?name:string -> ?freq_hz:float -> unit -> config
(** Reference model of the SOPHON SG2042's C920 core: wider than Large
    BOOM, deeper queues. *)

type stats = {
  instructions : int;
  cycles : int;
  loads : int;
  stores : int;
  mispredicts : int;
  ipc : float;
}

type t

val create : config -> Memsys.t -> t
val feed : t -> Isa.Insn.t -> unit
val run : t -> Isa.Insn.t Seq.t -> unit

val feed_trace : t -> Trace.t -> lo:int -> hi:int -> unit
(** Retire trace indices [lo, hi): cycle-identical to {!feed}ing the same
    instructions, but decoding packed trace fields directly — no
    [Insn.t] reconstruction, no allocation in the loop. *)

val warm_trace : t -> Trace.t -> lo:int -> hi:int -> unit
(** {!warm} over trace indices [lo, hi), allocation-free. *)

val warm : t -> Isa.Insn.t -> unit
(** Functional warming for sampled simulation — same contract as
    {!Inorder.warm}: caches, TLBs, and branch predictor state advance;
    pipeline timing and retired-instruction statistics do not. *)

val now : t -> int
val advance_to : t -> int -> unit

val fast_forward : t -> cycles:int -> insns:int -> loads:int -> stores:int -> unit
(** Same contract as {!Inorder.fast_forward}: bump retired-instruction
    statistics and jump the completion frontier by [cycles] without
    touching long-lived microarchitectural state; the jump is a full
    pipeline barrier (redirect and retire pointers move with it). *)

val stats : t -> stats
val config_of : t -> config
