(** Basic-block cost memoization for trace replay.

    The interval-simulation trade: simulate each repeated basic block in
    detail a few times per (uarch-config fingerprint, cache-state class),
    record its marginal cycle cost, and replay further repeats by
    fast-forwarding the core's cycle and retired-instruction state.  The
    fast path is approximate by construction, so every run returns an
    explicit error bound built from the observed per-block cost spread —
    callers surface it as a confidence interval rather than pretending
    the result is exact.

    Cost samples are only recorded in steady state: detailed instances
    run in contiguous windows, and a frontier delta counts toward the
    cost table only when the previous instance was also detailed (the
    first instance after a fast-forward barrier pays pipeline refill and
    is discarded as warm-up).  Blocks are re-measured when their warmth
    class changes and periodically thereafter, so the table tracks
    cache-state drift over long runs. *)

type core = {
  feed_range : lo:int -> hi:int -> unit;
      (** detailed simulation of trace indices [lo, hi) *)
  fast_forward : cycles:int -> insns:int -> loads:int -> stores:int -> unit;
  now : unit -> int;  (** completion frontier, cycles *)
}

type config = {
  need : int;  (** steady samples per (block, class) before fast-forwarding *)
  refresh_every : int;  (** re-measure a steady block every this many occurrences *)
  margin : float;  (** per-fast-forward relative error allowance *)
  floor_rel : float;  (** whole-run relative error floor *)
  floor_abs : int;  (** whole-run absolute error floor, cycles *)
}

val default : config

val num_classes : int
(** Cache-state classes (cold / warming / steady), bucketed by per-block
    occurrence count. *)

type stats = {
  blocks : int;  (** distinct blocks in the analyzed trace *)
  instances : int;  (** dynamic block instances replayed *)
  memo_hits : int;  (** instances replayed by fast-forward *)
  ff_insns : int;  (** instructions fast-forwarded *)
  measured_insns : int;  (** instructions simulated in detail *)
  measured_cycles : int;  (** frontier advance across detailed instances *)
  est_cycles : int;  (** total frontier advance of the run *)
  err_bound_cycles : float;  (** declared bound on |est − full-fidelity| *)
}

(** Process-lifetime cost table shared across runs — the serve daemon's
    analogue of the trace cache.  Keyed by (uarch-config fingerprint,
    block content digest, cache-state class).  Sharing trades strict
    run-to-run determinism for convergence: a long-lived daemon
    re-measures each hot block once per config, not once per request.
    Without a table every run measures from scratch and memoized replay
    is a pure function of (trace, config). *)
module Table : sig
  type t

  val create : ?max_entries:int -> unit -> t
  val entries : t -> int

  val stats : t -> int * int * int
  (** (entries, cells seeded into runs, cells merged back). *)
end

val run :
  ?cfg:config ->
  ?table:Table.t ->
  ?fingerprint:int ->
  core ->
  Trace.Blocks.t ->
  stats
(** Replay the analyzed trace through [core], fast-forwarding repeated
    blocks whose cost is known.  With [table], the run seeds its cost
    cells from shared history first and folds its own measurements back
    when done; [fingerprint] must identify the uarch configuration the
    costs were measured under.  Raises [Invalid_argument] if
    [cfg.need < 1] or [cfg.refresh_every < 1]. *)
