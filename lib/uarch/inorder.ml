type config = {
  name : string;
  freq_hz : float;
  fetch_width : int;
  issue_width : int;
  pipeline_stages : int;
  mispredict_penalty : int;
  mem_ports : int;
  store_buffer : int;
  load_queue : int;  (* max loads outstanding before issue stalls *)
  latencies : Isa.Insn.Latency.table;
  frontend : Branch.Frontend.config;
}

let rocket ?(name = "rocket") ?(freq_hz = 1.6e9) () =
  {
    name;
    freq_hz;
    fetch_width = 2;
    issue_width = 1;
    pipeline_stages = 5;
    mispredict_penalty = 3;
    mem_ports = 1;
    store_buffer = 8;
    load_queue = 4;
    latencies = Isa.Insn.Latency.default;
    frontend = Branch.Frontend.rocket_config;
  }

let k1 ?(name = "spacemit-k1") ?(freq_hz = 1.6e9) () =
  {
    name;
    freq_hz;
    fetch_width = 4;
    issue_width = 2;
    pipeline_stages = 8;
    (* deep pipe but branches resolve early; redirect is cheaper than
       depth-2 would suggest *)
    mispredict_penalty = 4;
    mem_ports = 1;
    store_buffer = 12;
    load_queue = 8;
    latencies = Isa.Insn.Latency.default;
    frontend = { Branch.Frontend.rocket_config with btb_entries = 64; ras_entries = 16 };
  }

type stats = {
  instructions : int;
  cycles : int;
  loads : int;
  stores : int;
  mispredicts : int;
  ipc : float;
}

type t = {
  cfg : config;
  mem : Memsys.t;
  frontend : Branch.Frontend.t;
  reg_ready : int array;
  issue_slots : Slots.t;
  mem_port : Slots.t;
  store_buf : int array;  (* completion times of buffered stores *)
  load_q : int array;  (* completion times of outstanding loads *)
  mutable fetch_line : int;  (* icache line currently streaming *)
  mutable fetch_ready : int;  (* cycle the current fetch group is available *)
  mutable restart : int;  (* pipeline restart barrier after mispredicts/fences *)
  mutable div_free : int;  (* unpipelined long-latency unit *)
  mutable frontier : int;  (* max completion seen *)
  mutable n_insns : int;
  mutable n_loads : int;
  mutable n_stores : int;
}

(* Int-specialized max — see {!Ooo.imax}: [Stdlib.max] is polymorphic and
   costs a call plus a generic comparison at every hot-loop use. *)
let imax (a : int) (b : int) = if a >= b then a else b

let create cfg mem =
  {
    cfg;
    mem;
    frontend = Branch.Frontend.create cfg.frontend;
    reg_ready = Array.make Isa.Insn.num_regs 0;
    issue_slots = Slots.create ~width:cfg.issue_width;
    mem_port = Slots.create ~width:cfg.mem_ports;
    store_buf = Array.make (imax 1 cfg.store_buffer) 0;
    load_q = Array.make (imax 1 cfg.load_queue) 0;
    fetch_line = -1;
    fetch_ready = 0;
    restart = 0;
    div_free = 0;
    frontier = 0;
    n_insns = 0;
    n_loads = 0;
    n_stores = 0;
  }

let bump t c = if c > t.frontier then t.frontier <- c

(* Demand-fetch the icache line holding [pc] if the frontend moved to a new
   line; a taken transfer also restarts line streaming. *)
let fetch t pc earliest =
  let line = pc lsr Util.Arch.cache_line_shift in
  if line <> t.fetch_line then begin
    t.fetch_line <- line;
    t.fetch_ready <- t.mem.Memsys.ifetch ~cycle:earliest ~pc
  end;
  imax earliest t.fetch_ready

(* Index of the earliest-free entry; callers read q.(i) themselves rather
   than receiving a (slot, ready) pair — a tuple allocation per memory
   instruction otherwise.  One scan per memory instruction: running
   minimum in a local, no bounds checks. *)
let grab_slot q =
  let best = ref 0 in
  let bestv = ref (Array.unsafe_get q 0) in
  for i = 1 to Array.length q - 1 do
    let v = Array.unsafe_get q i in
    if v < !bestv then begin
      best := i;
      bestv := v
    end
  done;
  !best

(* The timing step on unpacked scalar fields — the single implementation
   behind both [feed] (unpacking an [Insn.t]) and [feed_trace] (decoding
   packed trace words); keeping one body guarantees the two paths stay
   cycle-identical.  [addr]/[size] are meaningful for memory kinds,
   [taken]/[target] for control kinds; others pass zeros. *)
let feed_scalar t ~pc ~(kind : Isa.Insn.kind) ~dst ~src1 ~src2 ~addr ~size ~taken ~target =
  t.n_insns <- t.n_insns + 1;
  let r1 = if src1 = Isa.Insn.zero_reg then 0 else t.reg_ready.(src1) in
  let r2 = if src2 = Isa.Insn.zero_reg then 0 else t.reg_ready.(src2) in
  let earliest = imax t.restart (imax r1 r2) in
  let earliest = fetch t pc earliest in
  let issue = Slots.alloc t.issue_slots earliest in
  let lat = Isa.Insn.Latency.of_kind t.cfg.latencies kind in
  match kind with
  | Load | Amo ->
    t.n_loads <- t.n_loads + 1;
    (* A full load queue backs the whole pipeline up: nothing younger
       issues until an outstanding load completes. *)
    let q = grab_slot t.load_q in
    let qready = imax issue t.load_q.(q) in
    if qready > issue then Slots.advance t.issue_slots qready;
    let slot = Slots.alloc t.mem_port qready in
    let extra = if kind = Amo then t.cfg.latencies.amo else 0 in
    let done_ = t.mem.Memsys.load ~cycle:(slot + 1) ~addr ~size + extra in
    t.load_q.(q) <- done_;
    if dst <> Isa.Insn.zero_reg then t.reg_ready.(dst) <- done_;
    bump t done_
  | Store ->
    t.n_stores <- t.n_stores + 1;
    let slot = Slots.alloc t.mem_port issue in
    let buf = grab_slot t.store_buf in
    let drain_start = imax (slot + 1) t.store_buf.(buf) in
    (* A full store buffer likewise stalls the pipeline. *)
    if drain_start > slot + 1 then Slots.advance t.issue_slots drain_start;
    let done_ = t.mem.Memsys.store ~cycle:drain_start ~addr ~size in
    t.store_buf.(buf) <- done_;
    (* The store leaves the pipeline once buffered; completion is off the
       critical path unless the buffer backs up. *)
    bump t (slot + 1)
  | Branch | Jump | Call | Ret ->
    let correct = Branch.Frontend.resolve_ctrl t.frontend ~kind ~pc ~taken ~target in
    let resolve = issue + 1 in
    if not correct then t.restart <- imax t.restart (resolve + t.cfg.mispredict_penalty);
    (if taken then begin
       (* A correctly predicted taken transfer was already steered by the
          BTB: fetch follows seamlessly, paying the icache only when the
          target sits on a different line.  A mispredict refetches after
          resolution. *)
       let tline = target lsr Util.Arch.cache_line_shift in
       if (not correct) || tline <> t.fetch_line then begin
         t.fetch_line <- tline;
         let at = if correct then issue else resolve in
         t.fetch_ready <- t.mem.Memsys.ifetch ~cycle:at ~pc:target
       end
     end);
    if dst <> Isa.Insn.zero_reg then t.reg_ready.(dst) <- resolve;
    bump t resolve
  | Int_div | Fp_div | Fp_long ->
    (* Unpipelined unit: one in flight. *)
    let start = imax issue t.div_free in
    let done_ = start + lat in
    t.div_free <- done_;
    if dst <> Isa.Insn.zero_reg then t.reg_ready.(dst) <- done_;
    bump t done_
  | Fence ->
    let done_ = imax issue t.frontier + lat in
    t.restart <- imax t.restart done_;
    bump t done_
  | Int_alu | Int_mul | Fp_add | Fp_mul | Fp_cvt | Nop ->
    let done_ = issue + lat in
    if dst <> Isa.Insn.zero_reg then t.reg_ready.(dst) <- done_;
    bump t done_

let feed t (i : Isa.Insn.t) =
  let addr, size = match i.mem with Some m -> (m.addr, m.size) | None -> (0, 0) in
  let taken, target = match i.ctrl with Some c -> (c.taken, c.target) | None -> (false, 0) in
  feed_scalar t ~pc:i.pc ~kind:i.kind ~dst:i.dst ~src1:i.src1 ~src2:i.src2 ~addr ~size ~taken
    ~target

let feed_trace t tr ~lo ~hi =
  if lo < 0 || hi > Trace.length tr || lo > hi then invalid_arg "Inorder.feed_trace: bad range";
  let pcs = Trace.pcs tr and metas = Trace.metas tr and auxs = Trace.auxs tr in
  let kinds = Trace.kind_table in
  for j = lo to hi - 1 do
    let m = Array.unsafe_get metas j in
    feed_scalar t ~pc:(Array.unsafe_get pcs j)
      ~kind:(Array.unsafe_get kinds (m land Trace.kind_mask))
      ~dst:((m lsr Trace.dst_shift) land Trace.reg_mask)
      ~src1:((m lsr Trace.src1_shift) land Trace.reg_mask)
      ~src2:((m lsr Trace.src2_shift) land Trace.reg_mask)
      ~addr:(Array.unsafe_get auxs j)
      ~size:((m lsr Trace.size_shift) land Trace.size_mask)
      ~taken:(m land Trace.taken_bit <> 0)
      ~target:(Array.unsafe_get auxs j)
  done

(* Functional warming (sampled simulation's fast path): update the state
   that persists across intervals — icache/dcache contents via the memory
   system's content-only [warm_*] operations, TLBs (folded into those
   closures), and the branch predictor — without any timing work.  The
   frontier does not move: warmed fills carry no latency, and the warmup
   window before the next detailed interval re-establishes pipeline
   (queue/slot) pressure before measurement resumes. *)
let warm_scalar t ~pc ~(kind : Isa.Insn.kind) ~addr ~size ~taken ~target =
  let line = pc lsr Util.Arch.cache_line_shift in
  if line <> t.fetch_line then begin
    t.fetch_line <- line;
    t.mem.Memsys.warm_ifetch ~pc
  end;
  match kind with
  | Load | Amo -> t.mem.Memsys.warm_load ~addr ~size
  | Store -> t.mem.Memsys.warm_store ~addr ~size
  | Branch | Jump | Call | Ret ->
    ignore (Branch.Frontend.resolve_ctrl t.frontend ~kind ~pc ~taken ~target);
    if taken then begin
      let tline = target lsr Util.Arch.cache_line_shift in
      if tline <> t.fetch_line then begin
        t.fetch_line <- tline;
        t.mem.Memsys.warm_ifetch ~pc:target
      end
    end
  | _ -> ()

let warm t (i : Isa.Insn.t) =
  let addr, size = match i.mem with Some m -> (m.addr, m.size) | None -> (0, 0) in
  let taken, target = match i.ctrl with Some c -> (c.taken, c.target) | None -> (false, 0) in
  warm_scalar t ~pc:i.pc ~kind:i.kind ~addr ~size ~taken ~target

let warm_trace t tr ~lo ~hi =
  if lo < 0 || hi > Trace.length tr || lo > hi then invalid_arg "Inorder.warm_trace: bad range";
  let pcs = Trace.pcs tr and metas = Trace.metas tr and auxs = Trace.auxs tr in
  let kinds = Trace.kind_table in
  for j = lo to hi - 1 do
    let m = Array.unsafe_get metas j in
    warm_scalar t ~pc:(Array.unsafe_get pcs j)
      ~kind:(Array.unsafe_get kinds (m land Trace.kind_mask))
      ~addr:(Array.unsafe_get auxs j)
      ~size:((m lsr Trace.size_shift) land Trace.size_mask)
      ~taken:(m land Trace.taken_bit <> 0)
      ~target:(Array.unsafe_get auxs j)
  done

let run t stream = Seq.iter (feed t) stream
let now t = t.frontier

let advance_to t cycle =
  if cycle > t.frontier then begin
    t.frontier <- cycle;
    t.restart <- imax t.restart cycle
  end

let fast_forward t ~cycles ~insns ~loads ~stores =
  if cycles < 0 || insns < 0 || loads < 0 || stores < 0 then
    invalid_arg "Inorder.fast_forward: negative amount";
  t.n_insns <- t.n_insns + insns;
  t.n_loads <- t.n_loads + loads;
  t.n_stores <- t.n_stores + stores;
  advance_to t (t.frontier + cycles)

let stats t =
  let fs = Branch.Frontend.stats t.frontend in
  {
    instructions = t.n_insns;
    cycles = t.frontier;
    loads = t.n_loads;
    stores = t.n_stores;
    mispredicts = fs.Branch.Frontend.mispredicts;
    ipc = (if t.frontier = 0 then 0.0 else float_of_int t.n_insns /. float_of_int t.frontier);
  }

let config_of t = t.cfg
