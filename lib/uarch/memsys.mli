(** Interface between a core timing model and its memory system.

    The platform layer assembles the actual hierarchy (L1s, shared L2,
    system bus, optional LLC, DRAM) and hands the core this record of
    timestamped operations.  All cycles are in the core's clock domain.

    The [warm_*] operations are the functional-warming counterparts used
    by sampled simulation: they perform the same cache/TLB content
    transitions as their timed twins but skip all latency modeling and
    return nothing (see {!Cache.warm_access}). *)

type t = {
  load : cycle:int -> addr:int -> size:int -> int;
      (** Issue a demand load; returns data-available cycle. *)
  store : cycle:int -> addr:int -> size:int -> int;
      (** Issue a store (post store-buffer); returns completion cycle. *)
  ifetch : cycle:int -> pc:int -> int;
      (** Fetch the instruction line containing [pc]; returns available
          cycle. *)
  warm_load : addr:int -> size:int -> unit;  (** content-only load *)
  warm_store : addr:int -> size:int -> unit;  (** content-only store *)
  warm_ifetch : pc:int -> unit;  (** content-only instruction fetch *)
}

val ideal : latency:int -> t
(** A memory system with a flat [latency] for every operation — for unit
    tests and calibration baselines.  Its warm operations are no-ops. *)
