type config = {
  name : string;
  freq_hz : float;
  fetch_width : int;
  decode_width : int;
  retire_width : int;
  rob_entries : int;
  int_issue : int;
  mem_issue : int;
  fp_issue : int;
  ldq_entries : int;
  stq_entries : int;
  frontend_penalty : int;
  latencies : Isa.Insn.Latency.table;
  frontend : Branch.Frontend.config;
}

(* Table 4 of the paper: Small / Medium / Large BOOM. *)

let boom_small ?(name = "boom-small") ?(freq_hz = 2.0e9) () =
  {
    name;
    freq_hz;
    fetch_width = 4;
    decode_width = 1;
    retire_width = 1;
    rob_entries = 32;
    int_issue = 1;
    mem_issue = 1;
    fp_issue = 1;
    ldq_entries = 8;
    stq_entries = 8;
    frontend_penalty = 8;
    latencies = { Isa.Insn.Latency.default with int_mul = 4 };
    frontend = Branch.Frontend.boom_config;
  }

let boom_medium ?(name = "boom-medium") ?(freq_hz = 2.0e9) () =
  {
    name;
    freq_hz;
    fetch_width = 4;
    decode_width = 2;
    retire_width = 2;
    rob_entries = 64;
    int_issue = 2;
    mem_issue = 1;
    fp_issue = 1;
    ldq_entries = 16;
    stq_entries = 16;
    frontend_penalty = 9;
    latencies = { Isa.Insn.Latency.default with int_mul = 4 };
    frontend = Branch.Frontend.boom_config;
  }

let boom_large ?(name = "boom-large") ?(freq_hz = 2.0e9) () =
  {
    name;
    freq_hz;
    fetch_width = 8;
    decode_width = 3;
    retire_width = 3;
    rob_entries = 96;
    int_issue = 3;
    mem_issue = 1;
    fp_issue = 1;
    ldq_entries = 24;
    stq_entries = 24;
    frontend_penalty = 10;
    latencies = { Isa.Insn.Latency.default with int_mul = 4 };
    frontend = Branch.Frontend.boom_config;
  }

(* Reference model of the SG2042's XuanTie C920 cores.  Wider and deeper
   than Large BOOM where public information says so (dual memory pipes,
   bigger windows); this is the structural headroom the paper infers from
   the dependency-chain microbenchmarks ("the MILK-V Hardware likely
   contains more fetch and decode units than were modeled"). *)
let sg2042 ?(name = "sg2042-c920") ?(freq_hz = 2.0e9) () =
  {
    name;
    freq_hz;
    fetch_width = 8;
    decode_width = 4;
    retire_width = 4;
    rob_entries = 192;
    int_issue = 3;
    mem_issue = 2;
    fp_issue = 2;
    ldq_entries = 32;
    stq_entries = 32;
    frontend_penalty = 9;
    latencies =
      {
        Isa.Insn.Latency.default with
        int_div = 12;
        fp_div = 12;
        fp_add = 3;
        fp_mul = 3;
        fp_cvt = 1;
        fp_long = 45;
      };
    frontend = { Branch.Frontend.boom_config with btb_entries = 256; ras_entries = 8 };
  }

type stats = {
  instructions : int;
  cycles : int;
  loads : int;
  stores : int;
  mispredicts : int;
  ipc : float;
}

type t = {
  cfg : config;
  mem : Memsys.t;
  frontend : Branch.Frontend.t;
  reg_ready : int array;
  fetch_slots : Slots.t;
  dispatch_slots : Slots.t;
  retire_slots : Slots.t;
  int_ports : Slots.t;
  mem_ports : Slots.t;
  fp_ports : Slots.t;
  rob : int array;  (* retire cycle of instruction (i mod rob_entries) *)
  ldq : int array;  (* completion cycles of in-flight loads *)
  stq : int array;
  mutable rob_ptr : int;  (* dynamic instruction index mod rob_entries *)
  mutable fetch_line : int;
  mutable fetch_ready : int;
  mutable redirect : int;  (* fetch barrier after mispredict / fence *)
  mutable last_retire : int;
  mutable div_free : int;
  mutable frontier : int;
  mutable n_insns : int;
  mutable n_loads : int;
  mutable n_stores : int;
}

let create cfg mem =
  {
    cfg;
    mem;
    frontend = Branch.Frontend.create cfg.frontend;
    reg_ready = Array.make Isa.Insn.num_regs 0;
    fetch_slots = Slots.create ~width:cfg.fetch_width;
    dispatch_slots = Slots.create ~width:cfg.decode_width;
    retire_slots = Slots.create ~width:cfg.retire_width;
    int_ports = Slots.create ~width:cfg.int_issue;
    mem_ports = Slots.create ~width:cfg.mem_issue;
    fp_ports = Slots.create ~width:cfg.fp_issue;
    rob = Array.make cfg.rob_entries 0;
    ldq = Array.make cfg.ldq_entries 0;
    stq = Array.make cfg.stq_entries 0;
    rob_ptr = 0;
    fetch_line = -1;
    fetch_ready = 0;
    redirect = 0;
    last_retire = 0;
    div_free = 0;
    frontier = 0;
    n_insns = 0;
    n_loads = 0;
    n_stores = 0;
  }

(* Int-specialized max: [Stdlib.max] is polymorphic, which costs a call
   plus a generic comparison at every use — feed_scalar makes ~10 such
   comparisons per simulated instruction. *)
let imax (a : int) (b : int) = if a >= b then a else b

let bump t c = if c > t.frontier then t.frontier <- c

(* The load/store queues track only the multiset of in-flight completion
   cycles: each memory instruction waits on the earliest-completing entry
   and replaces it with its own completion.  A binary min-heap serves that
   access pattern in O(log n) per instruction instead of an O(n) scan of
   up to 32 entries; the minimum — the only value the timing model reads —
   is identical, so simulated cycles are unchanged. *)
let heap_min q = Array.unsafe_get q 0

let heap_replace_min q v =
  let n = Array.length q in
  Array.unsafe_set q 0 v;
  let i = ref 0 in
  let sifting = ref true in
  while !sifting do
    let l = (2 * !i) + 1 in
    if l >= n then sifting := false
    else begin
      let r = l + 1 in
      let s = if r < n && Array.unsafe_get q r < Array.unsafe_get q l then r else l in
      if Array.unsafe_get q s < Array.unsafe_get q !i then begin
        let tmp = Array.unsafe_get q !i in
        Array.unsafe_set q !i (Array.unsafe_get q s);
        Array.unsafe_set q s tmp;
        i := s
      end
      else sifting := false
    end
  done

let fetch t pc earliest =
  let line = pc lsr Util.Arch.cache_line_shift in
  if line <> t.fetch_line then begin
    t.fetch_line <- line;
    t.fetch_ready <- t.mem.Memsys.ifetch ~cycle:earliest ~pc
  end;
  imax earliest t.fetch_ready

(* The timing step on unpacked scalar fields — single implementation
   behind [feed] and [feed_trace]; see {!Inorder.feed_scalar} for the
   field conventions. *)
let feed_scalar t ~pc ~(kind : Isa.Insn.kind) ~dst ~src1 ~src2 ~addr ~size ~taken ~target =
  t.n_insns <- t.n_insns + 1;
  let cfg = t.cfg in
  (* Fetch: bounded by fetch width, icache, and any pending redirect. *)
  let f = fetch t pc t.redirect in
  let f = Slots.alloc t.fetch_slots f in
  (* Dispatch: decode width + ROB occupancy (entry of the instruction
     rob_entries older must have retired).  [rob_ptr] is the dynamic
     index pre-reduced mod rob_entries — the wrap below replaces an
     integer division per instruction. *)
  let rob_slot = t.rob_ptr in
  let d = Slots.alloc t.dispatch_slots (imax (f + 2) t.rob.(rob_slot)) in
  (* Execute. *)
  let r1 = if src1 = Isa.Insn.zero_reg then 0 else t.reg_ready.(src1) in
  let r2 = if src2 = Isa.Insn.zero_reg then 0 else t.reg_ready.(src2) in
  let ready = imax d (imax r1 r2) in
  let lat = Isa.Insn.Latency.of_kind cfg.latencies kind in
  let complete =
    match kind with
    | Load | Amo ->
      t.n_loads <- t.n_loads + 1;
      let qready = imax ready (heap_min t.ldq) in
      let port = Slots.alloc t.mem_ports qready in
      let extra = if kind = Amo then cfg.latencies.amo else 0 in
      let c = t.mem.Memsys.load ~cycle:(port + 1) ~addr ~size + extra in
      heap_replace_min t.ldq c;
      c
    | Store ->
      t.n_stores <- t.n_stores + 1;
      let qready = imax ready (heap_min t.stq) in
      let port = Slots.alloc t.mem_ports qready in
      let c = t.mem.Memsys.store ~cycle:(port + 1) ~addr ~size in
      heap_replace_min t.stq c;
      (* Address generation completes quickly; the write drains post-retire.
         The store occupies its STQ slot until the line is written. *)
      port + 1
    | Branch | Jump | Call | Ret ->
      let port = Slots.alloc t.int_ports ready in
      let c = port + 1 in
      let correct = Branch.Frontend.resolve_ctrl t.frontend ~kind ~pc ~taken ~target in
      if not correct then t.redirect <- imax t.redirect (c + cfg.frontend_penalty);
      (if taken then begin
         (* Predicted-taken transfers were steered at fetch; only a line
            change or a mispredict touches the icache path. *)
         let tline = target lsr Util.Arch.cache_line_shift in
         if (not correct) || tline <> t.fetch_line then begin
           t.fetch_line <- tline;
           let at = if correct then d else c in
           t.fetch_ready <- t.mem.Memsys.ifetch ~cycle:at ~pc:target
         end
       end);
      c
    | Int_div | Fp_div | Fp_long ->
      let port = Slots.alloc (if Isa.Insn.is_fp kind then t.fp_ports else t.int_ports) ready in
      let start = imax port t.div_free in
      let c = start + lat in
      t.div_free <- c;
      c
    | Fence ->
      let c = imax ready t.frontier + lat in
      t.redirect <- imax t.redirect c;
      c
    | Int_alu | Int_mul -> Slots.alloc t.int_ports ready + lat
    | Fp_add | Fp_mul | Fp_cvt -> Slots.alloc t.fp_ports ready + lat
    | Nop -> ready + 1
  in
  if dst <> Isa.Insn.zero_reg then t.reg_ready.(dst) <- complete;
  (* In-order retirement. *)
  let r = Slots.alloc t.retire_slots (imax complete t.last_retire) in
  t.last_retire <- r;
  t.rob.(rob_slot) <- r;
  t.rob_ptr <- (let n = rob_slot + 1 in if n = cfg.rob_entries then 0 else n);
  bump t r

let feed t (i : Isa.Insn.t) =
  let addr, size = match i.mem with Some m -> (m.addr, m.size) | None -> (0, 0) in
  let taken, target = match i.ctrl with Some c -> (c.taken, c.target) | None -> (false, 0) in
  feed_scalar t ~pc:i.pc ~kind:i.kind ~dst:i.dst ~src1:i.src1 ~src2:i.src2 ~addr ~size ~taken
    ~target

let feed_trace t tr ~lo ~hi =
  if lo < 0 || hi > Trace.length tr || lo > hi then invalid_arg "Ooo.feed_trace: bad range";
  let pcs = Trace.pcs tr and metas = Trace.metas tr and auxs = Trace.auxs tr in
  let kinds = Trace.kind_table in
  for j = lo to hi - 1 do
    let m = Array.unsafe_get metas j in
    feed_scalar t ~pc:(Array.unsafe_get pcs j)
      ~kind:(Array.unsafe_get kinds (m land Trace.kind_mask))
      ~dst:((m lsr Trace.dst_shift) land Trace.reg_mask)
      ~src1:((m lsr Trace.src1_shift) land Trace.reg_mask)
      ~src2:((m lsr Trace.src2_shift) land Trace.reg_mask)
      ~addr:(Array.unsafe_get auxs j)
      ~size:((m lsr Trace.size_shift) land Trace.size_mask)
      ~taken:(m land Trace.taken_bit <> 0)
      ~target:(Array.unsafe_get auxs j)
  done

(* Functional warming — see {!Inorder.warm}: caches, TLBs, and the branch
   predictor are updated through the memory system's content-only
   [warm_*] operations; pipeline structures (ROB, queues, ports), the
   frontier, and retired-instruction statistics are not touched.  The
   warmup window before the next detailed interval re-establishes queue
   pressure before measurement resumes. *)
let warm_scalar t ~pc ~(kind : Isa.Insn.kind) ~addr ~size ~taken ~target =
  let line = pc lsr Util.Arch.cache_line_shift in
  if line <> t.fetch_line then begin
    t.fetch_line <- line;
    t.mem.Memsys.warm_ifetch ~pc
  end;
  match kind with
  | Load | Amo -> t.mem.Memsys.warm_load ~addr ~size
  | Store -> t.mem.Memsys.warm_store ~addr ~size
  | Branch | Jump | Call | Ret ->
    ignore (Branch.Frontend.resolve_ctrl t.frontend ~kind ~pc ~taken ~target);
    if taken then begin
      let tline = target lsr Util.Arch.cache_line_shift in
      if tline <> t.fetch_line then begin
        t.fetch_line <- tline;
        t.mem.Memsys.warm_ifetch ~pc:target
      end
    end
  | _ -> ()

let warm t (i : Isa.Insn.t) =
  let addr, size = match i.mem with Some m -> (m.addr, m.size) | None -> (0, 0) in
  let taken, target = match i.ctrl with Some c -> (c.taken, c.target) | None -> (false, 0) in
  warm_scalar t ~pc:i.pc ~kind:i.kind ~addr ~size ~taken ~target

let warm_trace t tr ~lo ~hi =
  if lo < 0 || hi > Trace.length tr || lo > hi then invalid_arg "Ooo.warm_trace: bad range";
  let pcs = Trace.pcs tr and metas = Trace.metas tr and auxs = Trace.auxs tr in
  let kinds = Trace.kind_table in
  for j = lo to hi - 1 do
    let m = Array.unsafe_get metas j in
    warm_scalar t ~pc:(Array.unsafe_get pcs j)
      ~kind:(Array.unsafe_get kinds (m land Trace.kind_mask))
      ~addr:(Array.unsafe_get auxs j)
      ~size:((m lsr Trace.size_shift) land Trace.size_mask)
      ~taken:(m land Trace.taken_bit <> 0)
      ~target:(Array.unsafe_get auxs j)
  done

let run t stream = Seq.iter (feed t) stream
let now t = t.frontier

let advance_to t cycle =
  if cycle > t.frontier then begin
    t.frontier <- cycle;
    t.redirect <- imax t.redirect cycle;
    t.last_retire <- imax t.last_retire cycle
  end

let fast_forward t ~cycles ~insns ~loads ~stores =
  if cycles < 0 || insns < 0 || loads < 0 || stores < 0 then
    invalid_arg "Ooo.fast_forward: negative amount";
  t.n_insns <- t.n_insns + insns;
  t.n_loads <- t.n_loads + loads;
  t.n_stores <- t.n_stores + stores;
  advance_to t (t.frontier + cycles)

let stats t =
  let fs = Branch.Frontend.stats t.frontend in
  {
    instructions = t.n_insns;
    cycles = t.frontier;
    loads = t.n_loads;
    stores = t.n_stores;
    mispredicts = fs.Branch.Frontend.mispredicts;
    ipc = (if t.frontier = 0 then 0.0 else float_of_int t.n_insns /. float_of_int t.frontier);
  }

let config_of t = t.cfg
