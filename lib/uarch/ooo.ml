type config = {
  name : string;
  freq_hz : float;
  fetch_width : int;
  decode_width : int;
  retire_width : int;
  rob_entries : int;
  int_issue : int;
  mem_issue : int;
  fp_issue : int;
  ldq_entries : int;
  stq_entries : int;
  frontend_penalty : int;
  latencies : Isa.Insn.Latency.table;
  frontend : Branch.Frontend.config;
}

(* Table 4 of the paper: Small / Medium / Large BOOM. *)

let boom_small ?(name = "boom-small") ?(freq_hz = 2.0e9) () =
  {
    name;
    freq_hz;
    fetch_width = 4;
    decode_width = 1;
    retire_width = 1;
    rob_entries = 32;
    int_issue = 1;
    mem_issue = 1;
    fp_issue = 1;
    ldq_entries = 8;
    stq_entries = 8;
    frontend_penalty = 8;
    latencies = { Isa.Insn.Latency.default with int_mul = 4 };
    frontend = Branch.Frontend.boom_config;
  }

let boom_medium ?(name = "boom-medium") ?(freq_hz = 2.0e9) () =
  {
    name;
    freq_hz;
    fetch_width = 4;
    decode_width = 2;
    retire_width = 2;
    rob_entries = 64;
    int_issue = 2;
    mem_issue = 1;
    fp_issue = 1;
    ldq_entries = 16;
    stq_entries = 16;
    frontend_penalty = 9;
    latencies = { Isa.Insn.Latency.default with int_mul = 4 };
    frontend = Branch.Frontend.boom_config;
  }

let boom_large ?(name = "boom-large") ?(freq_hz = 2.0e9) () =
  {
    name;
    freq_hz;
    fetch_width = 8;
    decode_width = 3;
    retire_width = 3;
    rob_entries = 96;
    int_issue = 3;
    mem_issue = 1;
    fp_issue = 1;
    ldq_entries = 24;
    stq_entries = 24;
    frontend_penalty = 10;
    latencies = { Isa.Insn.Latency.default with int_mul = 4 };
    frontend = Branch.Frontend.boom_config;
  }

(* Reference model of the SG2042's XuanTie C920 cores.  Wider and deeper
   than Large BOOM where public information says so (dual memory pipes,
   bigger windows); this is the structural headroom the paper infers from
   the dependency-chain microbenchmarks ("the MILK-V Hardware likely
   contains more fetch and decode units than were modeled"). *)
let sg2042 ?(name = "sg2042-c920") ?(freq_hz = 2.0e9) () =
  {
    name;
    freq_hz;
    fetch_width = 8;
    decode_width = 4;
    retire_width = 4;
    rob_entries = 192;
    int_issue = 3;
    mem_issue = 2;
    fp_issue = 2;
    ldq_entries = 32;
    stq_entries = 32;
    frontend_penalty = 9;
    latencies =
      {
        Isa.Insn.Latency.default with
        int_div = 12;
        fp_div = 12;
        fp_add = 3;
        fp_mul = 3;
        fp_cvt = 1;
        fp_long = 45;
      };
    frontend = { Branch.Frontend.boom_config with btb_entries = 256; ras_entries = 8 };
  }

type stats = {
  instructions : int;
  cycles : int;
  loads : int;
  stores : int;
  mispredicts : int;
  ipc : float;
}

type t = {
  cfg : config;
  mem : Memsys.t;
  frontend : Branch.Frontend.t;
  reg_ready : int array;
  fetch_slots : Slots.t;
  dispatch_slots : Slots.t;
  retire_slots : Slots.t;
  int_ports : Slots.t;
  mem_ports : Slots.t;
  fp_ports : Slots.t;
  rob : int array;  (* retire cycle of instruction (i mod rob_entries) *)
  ldq : int array;  (* completion cycles of in-flight loads *)
  stq : int array;
  mutable idx : int;  (* dynamic instruction index *)
  mutable fetch_line : int;
  mutable fetch_ready : int;
  mutable redirect : int;  (* fetch barrier after mispredict / fence *)
  mutable last_retire : int;
  mutable div_free : int;
  mutable frontier : int;
  mutable n_insns : int;
  mutable n_loads : int;
  mutable n_stores : int;
}

let create cfg mem =
  {
    cfg;
    mem;
    frontend = Branch.Frontend.create cfg.frontend;
    reg_ready = Array.make Isa.Insn.num_regs 0;
    fetch_slots = Slots.create ~width:cfg.fetch_width;
    dispatch_slots = Slots.create ~width:cfg.decode_width;
    retire_slots = Slots.create ~width:cfg.retire_width;
    int_ports = Slots.create ~width:cfg.int_issue;
    mem_ports = Slots.create ~width:cfg.mem_issue;
    fp_ports = Slots.create ~width:cfg.fp_issue;
    rob = Array.make cfg.rob_entries 0;
    ldq = Array.make cfg.ldq_entries 0;
    stq = Array.make cfg.stq_entries 0;
    idx = 0;
    fetch_line = -1;
    fetch_ready = 0;
    redirect = 0;
    last_retire = 0;
    div_free = 0;
    frontier = 0;
    n_insns = 0;
    n_loads = 0;
    n_stores = 0;
  }

let bump t c = if c > t.frontier then t.frontier <- c

let src_ready t (i : Isa.Insn.t) =
  let r1 = if i.src1 = Isa.Insn.zero_reg then 0 else t.reg_ready.(i.src1) in
  let r2 = if i.src2 = Isa.Insn.zero_reg then 0 else t.reg_ready.(i.src2) in
  max r1 r2

let grab_queue q earliest =
  let best = ref 0 in
  for i = 1 to Array.length q - 1 do
    if q.(i) < q.(!best) then best := i
  done;
  (!best, max earliest q.(!best))

let fetch t pc earliest =
  let line = pc lsr 6 in
  if line <> t.fetch_line then begin
    t.fetch_line <- line;
    t.fetch_ready <- t.mem.Memsys.ifetch ~cycle:earliest ~pc
  end;
  max earliest t.fetch_ready

let feed t (i : Isa.Insn.t) =
  t.n_insns <- t.n_insns + 1;
  let cfg = t.cfg in
  (* Fetch: bounded by fetch width, icache, and any pending redirect. *)
  let f = fetch t i.pc t.redirect in
  let f = Slots.alloc t.fetch_slots f in
  (* Dispatch: decode width + ROB occupancy (entry of the instruction
     rob_entries older must have retired). *)
  let rob_slot = t.idx mod cfg.rob_entries in
  let d = Slots.alloc t.dispatch_slots (max (f + 2) t.rob.(rob_slot)) in
  (* Execute. *)
  let ready = max d (src_ready t i) in
  let lat = Isa.Insn.Latency.of_kind cfg.latencies i.kind in
  let complete =
    match i.kind with
    | Load | Amo ->
      t.n_loads <- t.n_loads + 1;
      let q, qready = grab_queue t.ldq ready in
      let port = Slots.alloc t.mem_ports qready in
      let mem = match i.mem with Some m -> m | None -> assert false in
      let extra = if i.kind = Amo then cfg.latencies.amo else 0 in
      let c = t.mem.Memsys.load ~cycle:(port + 1) ~addr:mem.addr ~size:mem.size + extra in
      t.ldq.(q) <- c;
      c
    | Store ->
      t.n_stores <- t.n_stores + 1;
      let q, qready = grab_queue t.stq ready in
      let port = Slots.alloc t.mem_ports qready in
      let mem = match i.mem with Some m -> m | None -> assert false in
      let c = t.mem.Memsys.store ~cycle:(port + 1) ~addr:mem.addr ~size:mem.size in
      t.stq.(q) <- c;
      (* Address generation completes quickly; the write drains post-retire.
         The store occupies its STQ slot until the line is written. *)
      port + 1
    | Branch | Jump | Call | Ret ->
      let port = Slots.alloc t.int_ports ready in
      let c = port + 1 in
      let correct = Branch.Frontend.resolve t.frontend i in
      if not correct then t.redirect <- max t.redirect (c + cfg.frontend_penalty);
      (match i.ctrl with
      | Some { taken = true; target } ->
        (* Predicted-taken transfers were steered at fetch; only a line
           change or a mispredict touches the icache path. *)
        let tline = target lsr 6 in
        if (not correct) || tline <> t.fetch_line then begin
          t.fetch_line <- tline;
          let at = if correct then d else c in
          t.fetch_ready <- t.mem.Memsys.ifetch ~cycle:at ~pc:target
        end
      | _ -> ());
      c
    | Int_div | Fp_div | Fp_long ->
      let port = Slots.alloc (if Isa.Insn.is_fp i.kind then t.fp_ports else t.int_ports) ready in
      let start = max port t.div_free in
      let c = start + lat in
      t.div_free <- c;
      c
    | Fence ->
      let c = max ready t.frontier + lat in
      t.redirect <- max t.redirect c;
      c
    | Int_alu | Int_mul -> Slots.alloc t.int_ports ready + lat
    | Fp_add | Fp_mul | Fp_cvt -> Slots.alloc t.fp_ports ready + lat
    | Nop -> ready + 1
  in
  if i.dst <> Isa.Insn.zero_reg then t.reg_ready.(i.dst) <- complete;
  (* In-order retirement. *)
  let r = Slots.alloc t.retire_slots (max complete t.last_retire) in
  t.last_retire <- r;
  t.rob.(rob_slot) <- r;
  t.idx <- t.idx + 1;
  bump t r

(* Functional warming — see {!Inorder.warm}: caches, TLBs, and the branch
   predictor are updated through the memory system's content-only
   [warm_*] operations; pipeline structures (ROB, queues, ports), the
   frontier, and retired-instruction statistics are not touched.  The
   warmup window before the next detailed interval re-establishes queue
   pressure before measurement resumes. *)
let warm t (i : Isa.Insn.t) =
  let line = i.pc lsr 6 in
  if line <> t.fetch_line then begin
    t.fetch_line <- line;
    t.mem.Memsys.warm_ifetch ~pc:i.pc
  end;
  match i.kind with
  | Load | Amo ->
    let mem = match i.mem with Some m -> m | None -> assert false in
    t.mem.Memsys.warm_load ~addr:mem.addr ~size:mem.size
  | Store ->
    let mem = match i.mem with Some m -> m | None -> assert false in
    t.mem.Memsys.warm_store ~addr:mem.addr ~size:mem.size
  | Branch | Jump | Call | Ret -> (
    ignore (Branch.Frontend.resolve t.frontend i);
    match i.ctrl with
    | Some { taken = true; target } ->
      let tline = target lsr 6 in
      if tline <> t.fetch_line then begin
        t.fetch_line <- tline;
        t.mem.Memsys.warm_ifetch ~pc:target
      end
    | _ -> ())
  | _ -> ()

let run t stream = Seq.iter (feed t) stream
let now t = t.frontier

let advance_to t cycle =
  if cycle > t.frontier then begin
    t.frontier <- cycle;
    t.redirect <- max t.redirect cycle;
    t.last_retire <- max t.last_retire cycle
  end

let stats t =
  let fs = Branch.Frontend.stats t.frontend in
  {
    instructions = t.n_insns;
    cycles = t.frontier;
    loads = t.n_loads;
    stores = t.n_stores;
    mispredicts = fs.Branch.Frontend.mispredicts;
    ipc = (if t.frontier = 0 then 0.0 else float_of_int t.n_insns /. float_of_int t.frontier);
  }

let config_of t = t.cfg
