let log = Logs.Src.create "simbridge.runner" ~doc:"workload runs"

module Log = (val Logs.src_log log : Logs.LOG)

module Registry = Telemetry.Registry

(* Publish the measured region's counters: [before] is the Soc.counters
   snapshot taken after any setup stream, [after] the one at the end.
   Counters are monotone, so the difference is exactly the measured
   region — matching the differenced Soc.result the runner returns. *)
let publish_counters reg ~before ~after =
  if Registry.enabled reg then
    Registry.set_all reg (List.map2 (fun (n, a) (_, b) -> (n, a - b)) after before)

let phase_args (r : Platform.Soc.result) =
  [
    ("cycles", Telemetry.Trace.Int r.Platform.Soc.cycles);
    ("instructions", Telemetry.Trace.Int r.Platform.Soc.instructions);
    ("l1d_misses", Telemetry.Trace.Int r.Platform.Soc.l1d_misses);
    ("dram_requests", Telemetry.Trace.Int r.Platform.Soc.dram_requests);
  ]

type timed = {
  result : Platform.Soc.result;
  estimate : Sampling.Estimate.t;
  setup_wall_s : float;
  measure_wall_s : float;
}

let run_kernel_timed ?(scale = 1.0) ?(telemetry = Registry.disabled)
    ?(policy = Sampling.Policy.Full) ?budget config (kernel : Workloads.Workload.kernel) =
  Log.info (fun m ->
      m "kernel %s on %s (scale %.2f, %s)" kernel.Workloads.Workload.name
        config.Platform.Config.name scale (Sampling.Policy.to_string policy));
  let soc = Platform.Soc.create config in
  (* Setup (working-set initialization) runs on the same SoC but is not
     timed.  A [Full] run drives it through the detailed model; a sampled
     run warms it functionally — setup exists to install memory contents,
     which the content-only warm path reproduces exactly at a fraction of
     the cost, and pipeline-visible differences are re-primed by the
     measured stream's interval-0 warmup window. *)
  let t0 = Unix.gettimeofday () in
  let before =
    match kernel.Workloads.Workload.setup with
    | None -> None
    | Some setup ->
      let ph = Registry.phase_start telemetry ~ts:0 "setup" in
      let b =
        match policy with
        | Sampling.Policy.Full -> Platform.Soc.run_stream soc (setup ~scale)
        | Sampling.Policy.Sampled _ ->
          Seq.iter (Platform.Soc.warm_insn soc) (setup ~scale);
          Platform.Soc.collect_result soc ~ranks:1 ~comm:None
      in
      Registry.phase_end telemetry ph ~ts:b.Platform.Soc.cycles ~args:(phase_args b) ();
      Some b
  in
  let setup_wall_s = Unix.gettimeofday () -. t0 in
  let snapshot = if Registry.enabled telemetry then Platform.Soc.counters soc else [] in
  let ts0 = match before with None -> 0 | Some b -> b.Platform.Soc.cycles in
  let ph = Registry.phase_start telemetry ~ts:ts0 "measure" in
  let iface = Platform.Soc.core_iface soc 0 in
  let core =
    {
      Sampling.Engine.feed = iface.Smpi.feed;
      warm = Platform.Soc.warm_insn soc;
      now = iface.Smpi.now;
    }
  in
  let t1 = Unix.gettimeofday () in
  let estimate =
    Sampling.Engine.run ~telemetry ?budget ~policy core (kernel.Workloads.Workload.stream ~scale)
  in
  let measure_wall_s = Unix.gettimeofday () -. t1 in
  let r = Platform.Soc.collect_result soc ~ranks:1 ~comm:None in
  Registry.phase_end telemetry ph ~ts:r.Platform.Soc.cycles ~args:(phase_args r) ();
  let freq = Platform.Config.freq_hz config in
  let diffed =
    match before with
    | None -> r
    | Some b ->
      (* Report only the measured region: every cumulative counter is
         differenced against the post-setup snapshot. *)
      {
        r with
        Platform.Soc.instructions = r.Platform.Soc.instructions - b.Platform.Soc.instructions;
        l1d_misses = r.Platform.Soc.l1d_misses - b.Platform.Soc.l1d_misses;
        l1d_accesses = r.Platform.Soc.l1d_accesses - b.Platform.Soc.l1d_accesses;
        l2_misses = r.Platform.Soc.l2_misses - b.Platform.Soc.l2_misses;
        l2_accesses = r.Platform.Soc.l2_accesses - b.Platform.Soc.l2_accesses;
        dram_requests = r.Platform.Soc.dram_requests - b.Platform.Soc.dram_requests;
        tlb_walks = r.Platform.Soc.tlb_walks - b.Platform.Soc.tlb_walks;
      }
  in
  (* Cycles always come from the engine's estimate: for a [Full] policy
     that is exactly the measured region's frontier delta; for a sampled
     one it is the extrapolated count (the raw frontier also moves during
     functional warming, so its delta would not be meaningful). *)
  let result =
    {
      diffed with
      Platform.Soc.cycles = estimate.Sampling.Estimate.est_cycles;
      seconds =
        Util.Units.cycles_to_seconds ~freq_hz:freq estimate.Sampling.Estimate.est_cycles;
    }
  in
  publish_counters telemetry ~before:snapshot
    ~after:(if Registry.enabled telemetry then Platform.Soc.counters soc else []);
  { result; estimate; setup_wall_s; measure_wall_s }

let run_kernel ?scale ?telemetry config kernel =
  (run_kernel_timed ?scale ?telemetry ~policy:Sampling.Policy.Full config kernel).result

let run_app ?(scale = 1.0) ?(codegen = Workloads.Codegen.default) ?(telemetry = Registry.disabled)
    ~ranks config (app : Workloads.Workload.app) =
  Log.info (fun m ->
      m "app %s x%d on %s (scale %.2f, %s)" app.Workloads.Workload.app_name ranks
        config.Platform.Config.name scale codegen.Workloads.Codegen.name);
  let soc = Platform.Soc.create config in
  let ph = Registry.phase_start telemetry ~ts:0 "run" in
  let r = Platform.Soc.run_ranks ~telemetry soc (app.Workloads.Workload.make ~codegen ~ranks ~scale) in
  Registry.phase_end telemetry ph ~ts:r.Platform.Soc.cycles ~args:(phase_args r) ();
  if Registry.enabled telemetry then Registry.set_all telemetry (Platform.Soc.counters soc);
  r

(* ------------------------------------------------------- pooled grids *)

let kernel_cell_label (config : Platform.Config.t) (kernel : Workloads.Workload.kernel) =
  config.Platform.Config.name ^ "/" ^ kernel.Workloads.Workload.name

let run_kernel_grid ?scale ?policy ?budget ?jobs ?telemetry grid =
  Parallel.Pool.run ?jobs ?telemetry
    (List.map
       (fun (config, kernel) ->
         Parallel.Pool.cell ~label:(kernel_cell_label config kernel) (fun (ctx : Parallel.Pool.ctx) ->
             run_kernel_timed ?scale ~telemetry:ctx.Parallel.Pool.telemetry ?policy ?budget config
               kernel))
       grid)

let run_app_grid ?scale ?jobs ?telemetry grid =
  Parallel.Pool.run ?jobs ?telemetry
    (List.map
       (fun (config, codegen, ranks, (app : Workloads.Workload.app)) ->
         let label =
           Printf.sprintf "%s/%s x%d" config.Platform.Config.name app.Workloads.Workload.app_name
             ranks
         in
         Parallel.Pool.cell ~label (fun (ctx : Parallel.Pool.ctx) ->
             run_app ?scale ~codegen ~telemetry:ctx.Parallel.Pool.telemetry ~ranks config app))
       grid)

let relative_speedup ~(sim : Platform.Soc.result) ~(hw : Platform.Soc.result) =
  if sim.Platform.Soc.seconds <= 0.0 then invalid_arg "relative_speedup: empty simulation run";
  hw.Platform.Soc.seconds /. sim.Platform.Soc.seconds

let kernel_relative ?scale ?policy ?budget ~sim ~hw kernel =
  (* Under a traversal budget both runs stop at the same instruction
     position (the cutoff is position-based, not timing-based), so the
     estimated-seconds ratio is a pure CPI-per-Hz ratio over an identical
     stream prefix — comparable to the full-run relative speedup whenever
     the kernel is steady-state. *)
  let s = (run_kernel_timed ?scale ?policy ?budget sim kernel).result in
  let h = (run_kernel_timed ?scale ?policy ?budget hw kernel).result in
  relative_speedup ~sim:s ~hw:h

let app_relative ?scale ?(mismatched_codegen = true) ~ranks ~sim ~hw app =
  (* The paper's setup (Table 3): the FireSim image carries GCC 9.4
     binaries, the boards GCC 13.2 ones. *)
  let sim_cg = if mismatched_codegen then Workloads.Codegen.gcc_9_4 else Workloads.Codegen.default in
  let hw_cg = if mismatched_codegen then Workloads.Codegen.gcc_13_2 else Workloads.Codegen.default in
  let s = run_app ?scale ~codegen:sim_cg ~ranks sim app in
  let h = run_app ?scale ~codegen:hw_cg ~ranks hw app in
  relative_speedup ~sim:s ~hw:h
