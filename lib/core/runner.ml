let log = Logs.Src.create "simbridge.runner" ~doc:"workload runs"

module Log = (val Logs.src_log log : Logs.LOG)

module Registry = Telemetry.Registry

(* Publish the measured region's counters: [before] is the Soc.counters
   snapshot taken after any setup stream, [after] the one at the end.
   Counters are monotone, so the difference is exactly the measured
   region — matching the differenced Soc.result the runner returns. *)
let publish_counters reg ~before ~after =
  if Registry.enabled reg then
    Registry.set_all reg (List.map2 (fun (n, a) (_, b) -> (n, a - b)) after before)

let phase_args (r : Platform.Soc.result) =
  [
    ("cycles", Telemetry.Trace.Int r.Platform.Soc.cycles);
    ("instructions", Telemetry.Trace.Int r.Platform.Soc.instructions);
    ("l1d_misses", Telemetry.Trace.Int r.Platform.Soc.l1d_misses);
    ("dram_requests", Telemetry.Trace.Int r.Platform.Soc.dram_requests);
  ]

type timed = {
  result : Platform.Soc.result;
  estimate : Sampling.Estimate.t;
  setup_wall_s : float;
  measure_wall_s : float;
}

type engine = [ `Trace | `Seq | `Memo ]

(* ------------------------------------------------------- trace cache *)

type trace_cache_stats = { tc_hits : int; tc_misses : int; tc_evictions : int }

(* Compiled traces shared across grid cells: fig1–fig7 run every kernel
   on several platform columns, and kernels are platform-independent, so
   one compilation serves the whole column set.  Keyed by (kernel, scale,
   setup-vs-measured-stream); bounded both by entry count and by total
   resident words, LRU-evicted; a global mutex guards the table (traces
   themselves are immutable after compile, so sharing them across worker
   domains is safe). *)
module Trace_cache = struct
  (* Streams may draw from the salted global RNG (e.g. CCh's branch
     outcomes), so a cached trace is only valid for the seed it was
     compiled under. *)
  type key = { kernel : string; scale : float; setup : bool; seed : int }

  let mutex = Mutex.create ()
  let table : (key, Trace.t * int ref) Hashtbl.t = Hashtbl.create 64
  let tick = ref 0
  let words_cached = ref 0
  let hits = Atomic.make 0
  let misses = Atomic.make 0
  let evictions = Atomic.make 0

  (* The figure grids iterate platform-major, so a figure's working set is
     every (kernel, setup/measure) pair — ~42 keys for fig1/fig2.  The
     entry bound only caps Hashtbl bookkeeping; the word bound
     (~3 words/instruction) is what keeps large-scale sweeps from pinning
     gigabytes of compiled traces.  Both are refs so a process that keeps
     the cache for its whole lifetime (the serve daemon) can size it at
     startup; they are startup-only, like the pool's default job count —
     resizing while cells are in flight would race the eviction scan. *)
  let max_entries = ref 128
  let max_words = ref 24_000_000

  let evict_lru () =
    let victim =
      Hashtbl.fold
        (fun k (_, last) acc ->
          match acc with Some (_, l) when l <= !last -> acc | _ -> Some (k, !last))
        table None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
      (match Hashtbl.find_opt table k with
      | Some (tr, _) -> words_cached := !words_cached - Trace.words tr
      | None -> ());
      Hashtbl.remove table k;
      Atomic.incr evictions

  (* Returns the trace and whether it came from the cache, so callers
     can annotate their telemetry spans with hit/miss. *)
  let find_or_compile ~kernel ~scale ~setup f =
    let key = { kernel; scale; setup; seed = Util.Rng.get_global_seed () } in
    let cached =
      Mutex.protect mutex (fun () ->
          incr tick;
          match Hashtbl.find_opt table key with
          | Some (tr, last) ->
            last := !tick;
            Some tr
          | None -> None)
    in
    match cached with
    | Some tr ->
      Atomic.incr hits;
      (tr, true)
    | None ->
      Atomic.incr misses;
      (* Compile outside the lock: two domains racing on the same key do
         redundant work at worst, never corruption. *)
      let tr = f () in
      let w = Trace.words tr in
      if w <= !max_words then
        Mutex.protect mutex (fun () ->
            if not (Hashtbl.mem table key) then begin
              while
                Hashtbl.length table > 0
                && (Hashtbl.length table >= !max_entries || !words_cached + w > !max_words)
              do
                evict_lru ()
              done;
              Hashtbl.add table key (tr, ref !tick);
              words_cached := !words_cached + w
            end);
      (tr, false)

  let stats () =
    {
      tc_hits = Atomic.get hits;
      tc_misses = Atomic.get misses;
      tc_evictions = Atomic.get evictions;
    }

  let clear () =
    Mutex.protect mutex (fun () ->
        Hashtbl.reset table;
        words_cached := 0);
    Atomic.set hits 0;
    Atomic.set misses 0;
    Atomic.set evictions 0
end

let trace_cache_stats = Trace_cache.stats
let trace_cache_clear = Trace_cache.clear

let set_trace_cache_limits ?entries ?words () =
  (match entries with
  | Some n when n < 1 -> invalid_arg "set_trace_cache_limits: entries must be >= 1"
  | Some n -> Trace_cache.max_entries := n
  | None -> ());
  match words with
  | Some n when n < 1 -> invalid_arg "set_trace_cache_limits: words must be >= 1"
  | Some n -> Trace_cache.max_words := n
  | None -> ()

let publish_trace_cache_stats reg =
  if Registry.enabled reg then begin
    let s = Trace_cache.stats () in
    Registry.set_all reg
      [
        ("trace.cache.hits", s.tc_hits);
        ("trace.cache.misses", s.tc_misses);
        ("trace.cache.evictions", s.tc_evictions);
      ]
  end

let cache_attr hit = ("trace_cache", Telemetry.Trace.Str (if hit then "hit" else "miss"))

(* ------------------------------------------------------- block cache *)

type block_cache_stats = { bc_hits : int; bc_misses : int; bc_evictions : int }

(* Block analyses shared across grid cells, exactly like compiled traces:
   the block structure of a (kernel, scale, seed) stream is
   platform-independent, so one analysis serves every platform column.
   Same locking contract as [Trace_cache]: the table is mutex-guarded,
   analyses are immutable after [Trace.Blocks.analyze] and safe to share
   across domains, and analysis happens outside the lock. *)
module Block_cache = struct
  type key = { kernel : string; scale : float; seed : int }

  let mutex = Mutex.create ()
  let table : (key, Trace.Blocks.t * int ref) Hashtbl.t = Hashtbl.create 64
  let tick = ref 0
  let words_cached = ref 0
  let hits = Atomic.make 0
  let misses = Atomic.make 0
  let evictions = Atomic.make 0
  let max_entries = ref 128
  let max_words = ref 8_000_000

  let evict_lru () =
    let victim =
      Hashtbl.fold
        (fun k (_, last) acc ->
          match acc with Some (_, l) when l <= !last -> acc | _ -> Some (k, !last))
        table None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
      (match Hashtbl.find_opt table k with
      | Some (b, _) -> words_cached := !words_cached - Trace.Blocks.words b
      | None -> ());
      Hashtbl.remove table k;
      Atomic.incr evictions

  let find_or_analyze ~kernel ~scale f =
    let key = { kernel; scale; seed = Util.Rng.get_global_seed () } in
    let cached =
      Mutex.protect mutex (fun () ->
          incr tick;
          match Hashtbl.find_opt table key with
          | Some (b, last) ->
            last := !tick;
            Some b
          | None -> None)
    in
    match cached with
    | Some b ->
      Atomic.incr hits;
      (b, true)
    | None ->
      Atomic.incr misses;
      let b = f () in
      let w = Trace.Blocks.words b in
      if w <= !max_words then
        Mutex.protect mutex (fun () ->
            if not (Hashtbl.mem table key) then begin
              while
                Hashtbl.length table > 0
                && (Hashtbl.length table >= !max_entries || !words_cached + w > !max_words)
              do
                evict_lru ()
              done;
              Hashtbl.add table key (b, ref !tick);
              words_cached := !words_cached + w
            end);
      (b, false)

  let stats () =
    {
      bc_hits = Atomic.get hits;
      bc_misses = Atomic.get misses;
      bc_evictions = Atomic.get evictions;
    }

  let clear () =
    Mutex.protect mutex (fun () ->
        Hashtbl.reset table;
        words_cached := 0);
    Atomic.set hits 0;
    Atomic.set misses 0;
    Atomic.set evictions 0
end

let block_cache_stats = Block_cache.stats
let block_cache_clear = Block_cache.clear

(* ------------------------------------------------------- memo engine *)

type memo_stats = {
  m_runs : int;
  m_instances : int;
  m_hits : int;
  m_ff_insns : int;
  m_measured_insns : int;
}

(* Process-wide memoized-replay counters, accumulated across runs like the
   trace-cache statistics (and like them, scheduling-independent in value
   but not in interleaving). *)
module Memo_counters = struct
  let runs = Atomic.make 0
  let instances = Atomic.make 0
  let hits = Atomic.make 0
  let ff_insns = Atomic.make 0
  let measured_insns = Atomic.make 0

  let add (st : Uarch.Memo.stats) =
    Atomic.incr runs;
    ignore (Atomic.fetch_and_add instances st.Uarch.Memo.instances);
    ignore (Atomic.fetch_and_add hits st.Uarch.Memo.memo_hits);
    ignore (Atomic.fetch_and_add ff_insns st.Uarch.Memo.ff_insns);
    ignore (Atomic.fetch_and_add measured_insns st.Uarch.Memo.measured_insns)

  let stats () =
    {
      m_runs = Atomic.get runs;
      m_instances = Atomic.get instances;
      m_hits = Atomic.get hits;
      m_ff_insns = Atomic.get ff_insns;
      m_measured_insns = Atomic.get measured_insns;
    }

  let clear () =
    Atomic.set runs 0;
    Atomic.set instances 0;
    Atomic.set hits 0;
    Atomic.set ff_insns 0;
    Atomic.set measured_insns 0
end

let memo_stats = Memo_counters.stats
let memo_stats_clear = Memo_counters.clear

(* The process-lifetime shared cost table is opt-in: without it every
   memoized run measures from scratch and is a pure function of
   (trace, config) — deterministic and order-independent.  The serve
   daemon opts in so block costs converge across requests, the same
   lifetime trade the trace cache makes. *)
let memo_table : Uarch.Memo.Table.t option ref = ref None

let enable_memo_sharing () =
  match !memo_table with
  | Some _ -> ()
  | None -> memo_table := Some (Uarch.Memo.Table.create ())

let memo_sharing_enabled () = Option.is_some !memo_table
let memo_table_stats () = Option.map Uarch.Memo.Table.stats !memo_table

let run_kernel_timed ?(scale = 1.0) ?(telemetry = Registry.disabled)
    ?(policy = Sampling.Policy.Full) ?budget ?(engine : engine = `Trace) config
    (kernel : Workloads.Workload.kernel) =
  Log.info (fun m ->
      m "kernel %s on %s (scale %.2f, %s)" kernel.Workloads.Workload.name
        config.Platform.Config.name scale (Sampling.Policy.to_string policy));
  (match (engine, policy, budget) with
  | `Memo, Sampling.Policy.Sampled _, _ ->
    invalid_arg
      "run_kernel_timed: `Memo carries its own error bound; combine it with the Full policy"
  | `Memo, _, Some _ -> invalid_arg "run_kernel_timed: `Memo does not support a traversal budget"
  | _ -> ());
  let soc = Platform.Soc.create config in
  (* Setup (working-set initialization) runs on the same SoC but is not
     timed.  A [Full] run drives it through the detailed model; a sampled
     run warms it functionally — setup exists to install memory contents,
     which the content-only warm path reproduces exactly at a fraction of
     the cost, and pipeline-visible differences are re-primed by the
     measured stream's interval-0 warmup window. *)
  let t0 = Unix.gettimeofday () in
  (* The setup span covers exactly the [setup_wall_s] region: the setup
     stream plus acquiring the measured stream's trace below. *)
  let sp_setup = Registry.span_start telemetry "setup" in
  let setup_cache = ref ("trace_cache", Telemetry.Trace.Str "off") in
  let before =
    match kernel.Workloads.Workload.setup with
    | None -> None
    | Some setup ->
      let ph = Registry.phase_start telemetry ~ts:0 "setup" in
      let b =
        match engine with
        | `Seq -> (
          match policy with
          | Sampling.Policy.Full -> Platform.Soc.run_stream soc (setup ~scale)
          | Sampling.Policy.Sampled _ ->
            Seq.iter (Platform.Soc.warm_insn soc) (setup ~scale);
            Platform.Soc.collect_result soc ~ranks:1 ~comm:None)
        | `Trace | `Memo -> (
          (* `Memo fast-forwards only the measured stream; setup installs
             memory contents and runs full-fidelity either way. *)
          let tr, hit =
            Trace_cache.find_or_compile ~kernel:kernel.Workloads.Workload.name ~scale ~setup:true
              (fun () -> Trace.compile (setup ~scale))
          in
          setup_cache := cache_attr hit;
          match policy with
          | Sampling.Policy.Full -> Platform.Soc.run_trace soc tr
          | Sampling.Policy.Sampled _ ->
            Platform.Soc.warm_trace soc tr ~lo:0 ~hi:(Trace.length tr);
            Platform.Soc.collect_result soc ~ranks:1 ~comm:None)
      in
      Registry.phase_end telemetry ph ~ts:b.Platform.Soc.cycles ~args:(phase_args b) ();
      Some b
  in
  (* Acquiring the measured stream's trace (cache fetch or compile)
     counts as setup, not as measured time: it happens once per (kernel,
     scale) and is shared by every grid cell replaying that stream, so it
     belongs with working-set preparation rather than simulation speed. *)
  let measure_cache = ref ("trace_cache", Telemetry.Trace.Str "off") in
  let measure_tr =
    match engine with
    | `Seq -> None
    | `Trace | `Memo ->
      let tr, hit =
        Trace_cache.find_or_compile ~kernel:kernel.Workloads.Workload.name ~scale ~setup:false
          (fun () -> Trace.compile (kernel.Workloads.Workload.stream ~scale))
      in
      measure_cache := cache_attr hit;
      Some tr
  in
  (* Block analysis, like trace acquisition, happens once per (kernel,
     scale) and is shared across cells — setup time, not measured time. *)
  let measure_blocks =
    match (engine, measure_tr) with
    | `Memo, Some tr ->
      Some
        (Block_cache.find_or_analyze ~kernel:kernel.Workloads.Workload.name ~scale (fun () ->
             Trace.Blocks.analyze tr))
    | _ -> None
  in
  let setup_wall_s = Unix.gettimeofday () -. t0 in
  Registry.span_end telemetry sp_setup
    ~args:
      [
        !setup_cache;
        ( "cycles",
          Telemetry.Trace.Int (match before with None -> 0 | Some b -> b.Platform.Soc.cycles) );
      ]
    ();
  let snapshot = if Registry.enabled telemetry then Platform.Soc.counters soc else [] in
  let ts0 = match before with None -> 0 | Some b -> b.Platform.Soc.cycles in
  let ph = Registry.phase_start telemetry ~ts:ts0 "measure" in
  let sp_measure = Registry.span_start telemetry "measure" in
  let iface = Platform.Soc.core_iface soc 0 in
  let t1 = Unix.gettimeofday () in
  let memo_attrs = ref [] in
  let estimate =
    match (measure_tr, measure_blocks) with
    | None, _ ->
      let core =
        {
          Sampling.Engine.feed = iface.Smpi.feed;
          warm = Platform.Soc.warm_insn soc;
          now = iface.Smpi.now;
        }
      in
      Sampling.Engine.run ~telemetry ?budget ~policy core (kernel.Workloads.Workload.stream ~scale)
    | Some tr, Some (blocks, bhit) ->
      (* Block-memoized fast path: detailed simulation for cold or drifting
         blocks, fast-forward for repeats whose cost is known; the declared
         error bound rides in the estimate's confidence interval. *)
      let st =
        Uarch.Memo.run ?table:!memo_table ~fingerprint:(Platform.Config.fingerprint config)
          {
            Uarch.Memo.feed_range = (fun ~lo ~hi -> Platform.Soc.feed_trace soc tr ~lo ~hi);
            fast_forward =
              (fun ~cycles ~insns ~loads ~stores ->
                Platform.Soc.fast_forward soc ~cycles ~insns ~loads ~stores);
            now = iface.Smpi.now;
          }
          blocks
      in
      Memo_counters.add st;
      if Registry.enabled telemetry then
        Registry.set_all telemetry
          [
            ("memo.blocks", st.Uarch.Memo.blocks);
            ("memo.instances", st.Uarch.Memo.instances);
            ("memo.hits", st.Uarch.Memo.memo_hits);
            ("memo.ff_insns", st.Uarch.Memo.ff_insns);
            ("memo.measured_insns", st.Uarch.Memo.measured_insns);
          ];
      memo_attrs :=
        [
          ("block_cache", Telemetry.Trace.Str (if bhit then "hit" else "miss"));
          ("memo_hits", Telemetry.Trace.Int st.Uarch.Memo.memo_hits);
          ("ff_insns", Telemetry.Trace.Int st.Uarch.Memo.ff_insns);
        ];
      Sampling.Estimate.memoized ~policy ~total_insns:(Trace.length tr)
        ~measured_insns:st.Uarch.Memo.measured_insns ~ff_insns:st.Uarch.Memo.ff_insns
        ~measured_cycles:st.Uarch.Memo.measured_cycles ~est_cycles:st.Uarch.Memo.est_cycles
        ~bound:st.Uarch.Memo.err_bound_cycles
    | Some tr, None ->
      (* The same trace is replayed for warming and detailed intervals —
         the Seq path re-forces the lazy stream per traversal. *)
      Sampling.Engine.run_trace ~telemetry ?budget ~policy
        {
          Sampling.Engine.feed_range = (fun ~lo ~hi -> Platform.Soc.feed_trace soc tr ~lo ~hi);
          warm_range = (fun ~lo ~hi -> Platform.Soc.warm_trace soc tr ~lo ~hi);
          tnow = iface.Smpi.now;
        }
        ~len:(Trace.length tr)
  in
  let measure_wall_s = Unix.gettimeofday () -. t1 in
  let r = Platform.Soc.collect_result soc ~ranks:1 ~comm:None in
  Registry.phase_end telemetry ph ~ts:r.Platform.Soc.cycles ~args:(phase_args r) ();
  Registry.span_end telemetry sp_measure
    ~args:
      (!measure_cache
      :: ("cycles", Telemetry.Trace.Int estimate.Sampling.Estimate.est_cycles)
      :: ("instructions", Telemetry.Trace.Int r.Platform.Soc.instructions)
      :: !memo_attrs)
    ();
  let freq = Platform.Config.freq_hz config in
  let diffed =
    match before with
    | None -> r
    | Some b ->
      (* Report only the measured region: every cumulative counter is
         differenced against the post-setup snapshot. *)
      {
        r with
        Platform.Soc.instructions = r.Platform.Soc.instructions - b.Platform.Soc.instructions;
        l1d_misses = r.Platform.Soc.l1d_misses - b.Platform.Soc.l1d_misses;
        l1d_accesses = r.Platform.Soc.l1d_accesses - b.Platform.Soc.l1d_accesses;
        l2_misses = r.Platform.Soc.l2_misses - b.Platform.Soc.l2_misses;
        l2_accesses = r.Platform.Soc.l2_accesses - b.Platform.Soc.l2_accesses;
        dram_requests = r.Platform.Soc.dram_requests - b.Platform.Soc.dram_requests;
        tlb_walks = r.Platform.Soc.tlb_walks - b.Platform.Soc.tlb_walks;
      }
  in
  (* Cycles always come from the engine's estimate: for a [Full] policy
     that is exactly the measured region's frontier delta; for a sampled
     one it is the extrapolated count (the raw frontier also moves during
     functional warming, so its delta would not be meaningful). *)
  let result =
    {
      diffed with
      Platform.Soc.cycles = estimate.Sampling.Estimate.est_cycles;
      seconds =
        Util.Units.cycles_to_seconds ~freq_hz:freq estimate.Sampling.Estimate.est_cycles;
    }
  in
  publish_counters telemetry ~before:snapshot
    ~after:(if Registry.enabled telemetry then Platform.Soc.counters soc else []);
  { result; estimate; setup_wall_s; measure_wall_s }

let run_kernel ?scale ?telemetry config kernel =
  (run_kernel_timed ?scale ?telemetry ~policy:Sampling.Policy.Full config kernel).result

let run_app ?(scale = 1.0) ?(codegen = Workloads.Codegen.default) ?(telemetry = Registry.disabled)
    ~ranks config (app : Workloads.Workload.app) =
  Log.info (fun m ->
      m "app %s x%d on %s (scale %.2f, %s)" app.Workloads.Workload.app_name ranks
        config.Platform.Config.name scale codegen.Workloads.Codegen.name);
  let soc = Platform.Soc.create config in
  let ph = Registry.phase_start telemetry ~ts:0 "run" in
  let sp = Registry.span_start telemetry "run" in
  let r = Platform.Soc.run_ranks ~telemetry soc (app.Workloads.Workload.make ~codegen ~ranks ~scale) in
  Registry.span_end telemetry sp
    ~args:
      [
        ("cycles", Telemetry.Trace.Int r.Platform.Soc.cycles);
        ("instructions", Telemetry.Trace.Int r.Platform.Soc.instructions);
      ]
    ();
  Registry.phase_end telemetry ph ~ts:r.Platform.Soc.cycles ~args:(phase_args r) ();
  if Registry.enabled telemetry then Registry.set_all telemetry (Platform.Soc.counters soc);
  r

(* ------------------------------------------------------- pooled grids *)

let kernel_cell_label (config : Platform.Config.t) (kernel : Workloads.Workload.kernel) =
  config.Platform.Config.name ^ "/" ^ kernel.Workloads.Workload.name

let run_kernel_grid ?scale ?policy ?budget ?jobs ?telemetry ?engine grid =
  Parallel.Pool.run ?jobs ?telemetry
    (List.map
       (fun (config, kernel) ->
         Parallel.Pool.cell ~label:(kernel_cell_label config kernel) (fun (ctx : Parallel.Pool.ctx) ->
             run_kernel_timed ?scale ~telemetry:ctx.Parallel.Pool.telemetry ?policy ?budget ?engine
               config kernel))
       grid)

let run_app_grid ?scale ?jobs ?telemetry grid =
  Parallel.Pool.run ?jobs ?telemetry
    (List.map
       (fun (config, codegen, ranks, (app : Workloads.Workload.app)) ->
         let label =
           Printf.sprintf "%s/%s x%d" config.Platform.Config.name app.Workloads.Workload.app_name
             ranks
         in
         Parallel.Pool.cell ~label (fun (ctx : Parallel.Pool.ctx) ->
             run_app ?scale ~codegen ~telemetry:ctx.Parallel.Pool.telemetry ~ranks config app))
       grid)

let relative_speedup ~(sim : Platform.Soc.result) ~(hw : Platform.Soc.result) =
  if sim.Platform.Soc.seconds <= 0.0 then invalid_arg "relative_speedup: empty simulation run";
  hw.Platform.Soc.seconds /. sim.Platform.Soc.seconds

let kernel_relative ?scale ?policy ?budget ?engine ~sim ~hw kernel =
  (* Under a traversal budget both runs stop at the same instruction
     position (the cutoff is position-based, not timing-based), so the
     estimated-seconds ratio is a pure CPI-per-Hz ratio over an identical
     stream prefix — comparable to the full-run relative speedup whenever
     the kernel is steady-state. *)
  let s = (run_kernel_timed ?scale ?policy ?budget ?engine sim kernel).result in
  let h = (run_kernel_timed ?scale ?policy ?budget ?engine hw kernel).result in
  relative_speedup ~sim:s ~hw:h

let app_relative ?scale ?(mismatched_codegen = true) ~ranks ~sim ~hw app =
  (* The paper's setup (Table 3): the FireSim image carries GCC 9.4
     binaries, the boards GCC 13.2 ones. *)
  let sim_cg = if mismatched_codegen then Workloads.Codegen.gcc_9_4 else Workloads.Codegen.default in
  let hw_cg = if mismatched_codegen then Workloads.Codegen.gcc_13_2 else Workloads.Codegen.default in
  let s = run_app ?scale ~codegen:sim_cg ~ranks sim app in
  let h = run_app ?scale ~codegen:hw_cg ~ranks hw app in
  relative_speedup ~sim:s ~hw:h
