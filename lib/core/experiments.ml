module W = Workloads.Workload
module Mb = Workloads.Microbench
module Npb = Workloads.Npb
module Cat = Platform.Catalog

type series = {
  label : string;
  points : (string * float) list;
}

type figure = {
  id : string;
  title : string;
  note : string;
  reference : float option;
  series : series list;
}

let render_figure f =
  let groups =
    (* Group by x label: every series' value for that x. *)
    match f.series with
    | [] -> []
    | first :: _ ->
      List.map
        (fun (x, _) ->
          (x, List.filter_map (fun s -> Option.map (fun v -> (s.label, v)) (List.assoc_opt x s.points)) f.series))
        first.points
  in
  let chart = Report.Chart.grouped_bars ?reference:f.reference ~title:(f.id ^ ": " ^ f.title) ~groups () in
  chart ^ (if f.note = "" then "" else "note: " ^ f.note ^ "\n")

let figure_csv f =
  let t = Report.Table.create ~headers:("x" :: List.map (fun s -> s.label) f.series) in
  (match f.series with
  | [] -> ()
  | first :: _ ->
    List.iter
      (fun (x, _) ->
        Report.Table.add_row t
          (x
          :: List.map
               (fun s ->
                 match List.assoc_opt x s.points with
                 | Some v -> Report.Table.cell_f v
                 | None -> "")
               f.series))
      first.points);
  Report.Table.to_csv t

(* ------------------------------------------------------------- tables *)

let table1 () =
  let t = Report.Table.create ~headers:[ "Name"; "Category"; "Description"; "Evaluated" ] in
  List.iter
    (fun (k : W.kernel) ->
      Report.Table.add_row t
        [ k.name; W.category_name k.category; k.description; (if k.excluded then "no" else "yes") ])
    Mb.all;
  "Table 1: MicroBench kernels, categories, and descriptions\n" ^ Report.Table.render t

let table2 () =
  let t = Report.Table.create ~headers:[ "Benchmark"; "Characteristics"; "Class" ] in
  List.iter
    (fun (a : W.app) ->
      Report.Table.add_row t [ String.uppercase_ascii a.app_name; a.characteristics; "A (mini)" ])
    Npb.all;
  "Table 2: NPB apps used in the experiments\n" ^ Report.Table.render t

let table3 () =
  let t = Report.Table.create ~headers:[ "Side"; "Codegen"; "Overhead"; "Unroll" ] in
  let row side (c : Workloads.Codegen.t) =
    Report.Table.add_row t
      [ side; c.name; Printf.sprintf "%.2fx" c.overhead; string_of_int c.unroll ]
  in
  row "boards (MILK-V / Banana Pi)" Workloads.Codegen.gcc_13_2;
  row "FireSim image" Workloads.Codegen.gcc_9_4;
  "Table 3: compiler settings (exposed as the Codegen knob)\n" ^ Report.Table.render t

let core_cells (c : Platform.Config.t) =
  match c.core with
  | Platform.Config.Inorder ic ->
    let open Uarch.Inorder in
    [
      Printf.sprintf "%.1f GHz" (ic.freq_hz /. 1e9);
      Printf.sprintf "Fetch:%d, Issue:%d, %d-stage" ic.fetch_width ic.issue_width ic.pipeline_stages;
      "N/A";
      "N/A";
    ]
  | Platform.Config.Ooo oc ->
    let open Uarch.Ooo in
    [
      Printf.sprintf "%.1f GHz" (oc.freq_hz /. 1e9);
      Printf.sprintf "Fetch:%d, Decode:%d" oc.fetch_width oc.decode_width;
      Printf.sprintf "RoB:%d" oc.rob_entries;
      Printf.sprintf "Load:%d, Store:%d" oc.ldq_entries oc.stq_entries;
    ]

let table4 () =
  let t =
    Report.Table.create
      ~headers:[ "FireSim Model"; "Clock"; "Front End"; "RoB"; "LSQ"; "L1D"; "L2 banks"; "Bus" ]
  in
  List.iter
    (fun (c : Platform.Config.t) ->
      Report.Table.add_row t
        ((c.name :: core_cells c)
        @ [
            Printf.sprintf "Sets:%d, Ways:%d" c.l1d.Cache.sets c.l1d.Cache.ways;
            string_of_int c.l2.Cache.banks;
            Printf.sprintf "%d-bit" c.bus.Interconnect.Bus.width_bits;
          ]))
    [ Cat.rocket1; Cat.rocket2; Cat.boom_small; Cat.boom_medium; Cat.boom_large ];
  "Table 4: FireSim models\n" ^ Report.Table.render t

let table5 () =
  let t =
    Report.Table.create
      ~headers:[ "Platform"; "Role"; "Cores"; "Clock"; "L1D"; "L2"; "LLC"; "TLB"; "External memory" ]
  in
  let row role (c : Platform.Config.t) =
    Report.Table.add_row t
      [
        c.name;
        role;
        string_of_int c.cores;
        Printf.sprintf "%.1f GHz" (Platform.Config.freq_hz c /. 1e9);
        Printf.sprintf "%d KiB" (Cache.size_bytes c.l1d / 1024);
        Printf.sprintf "%d KiB" (Cache.size_bytes c.l2 / 1024);
        (match c.llc with
        | None -> "none"
        | Some llc -> Printf.sprintf "%d MiB" (Cache.size_bytes llc / 1024 / 1024));
        (let t = c.dtlb in
         if t.Platform.Tlb.l2_entries > 0 then
           Printf.sprintf "L1 %d (FA) + L2 %d (DM)" t.Platform.Tlb.l1_entries t.Platform.Tlb.l2_entries
         else Printf.sprintf "L1 %d (FA)" t.Platform.Tlb.l1_entries);
        c.dram.Dram.name;
      ]
  in
  row "silicon ref" Cat.banana_pi_hw;
  row "sim model" Cat.banana_pi_sim;
  row "sim model (fast)" Cat.fast_banana_pi_sim;
  row "silicon ref" Cat.milkv_hw;
  row "sim model" Cat.milkv_sim;
  "Table 5: hardware and simulation-model specifications\n" ^ Report.Table.render t

(* ------------------------------------------------------------- figures *)

(* Every figure below builds an explicit list of independent simulation
   cells (its grid) and submits it to the domain pool via the Runner grid
   drivers; [jobs] defaults to the pool's process-wide setting (the CLI's
   --jobs).  Each cell simulates a fresh SoC from seeded streams, so the
   reassembled-in-order results are bit-identical to a sequential run. *)

(* Split [l] into consecutive chunks of [n] (the per-platform rows of a
   flattened grid). *)
let chunks n l =
  let rec take k acc l =
    if k = 0 then (List.rev acc, l)
    else
      match l with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go acc l =
    match l with
    | [] -> List.rev acc
    | _ ->
      let c, rest = take n [] l in
      go (c :: acc) rest
  in
  go [] l

let microbench_figure ?(policy = Sampling.Policy.Full) ?budget ?jobs ?engine
    ?(telemetry = Telemetry.Registry.disabled) ~id ~title ~hw ~sims ~scale () =
  let kernels = Mb.evaluated in
  let platforms = hw :: sims in
  let nplat = List.length platforms in
  (* One cell per (platform, kernel) grid point, in *kernel-major* order:
     consecutive cells share a kernel, so the compiled-trace cache's reuse
     distance is the platform count (3-5) rather than the kernel count
     (~40) and every platform after the first replays a cached trace.
     Results are regrouped below into the platform-major rows (hardware
     first) the series layout has always used. *)
  let grid =
    List.concat_map
      (fun (k : W.kernel) -> List.map (fun (cfg : Platform.Config.t) -> (cfg, k)) platforms)
      kernels
  in
  let results =
    Telemetry.Registry.span_with telemetry ("figure:" ^ id) (fun () ->
        Array.of_list
          (List.map
             (fun t -> t.Runner.result)
             (Runner.run_kernel_grid ~scale ~policy ?budget ?jobs ?engine ~telemetry grid)))
  in
  (* Platform row [p]: that platform's result for every kernel, in kernel
     order — cell (kernel ki, platform p) landed at index ki*nplat + p. *)
  let row p = List.mapi (fun ki (k : W.kernel) -> (k.name, results.(ki * nplat + p))) kernels in
  let hw_results = row 0 in
  let series =
    List.mapi
      (fun i (sim : Platform.Config.t) ->
        {
          label = sim.name;
          points =
            List.map
              (fun (name, s) ->
                (name, Runner.relative_speedup ~sim:s ~hw:(List.assoc name hw_results)))
              (row (i + 1));
        })
      sims
  in
  let note = "relative speedup = t_hw / t_sim; 1.0 = exact match" in
  let note =
    match policy with
    | Sampling.Policy.Full -> note
    | p -> note ^ Printf.sprintf "; sampled (%s)" (Sampling.Policy.to_string p)
  in
  { id; title; note; reference = Some 1.0; series }

let fig1 ?(scale = 1.0) ?policy ?budget ?jobs ?engine ?telemetry () =
  microbench_figure ?policy ?budget ?jobs ?engine ?telemetry ~id:"fig1"
    ~title:"MicroBench: Rocket models vs Banana Pi hardware" ~hw:Cat.banana_pi_hw
    ~sims:[ Cat.banana_pi_sim; Cat.fast_banana_pi_sim ]
    ~scale ()

let fig2 ?(scale = 1.0) ?policy ?budget ?jobs ?engine ?telemetry () =
  microbench_figure ?policy ?budget ?jobs ?engine ?telemetry ~id:"fig2"
    ~title:"MicroBench: BOOM models vs MILK-V hardware" ~hw:Cat.milkv_hw
    ~sims:[ Cat.boom_small; Cat.boom_medium; Cat.boom_large; Cat.milkv_sim ]
    ~scale ()

(* ------------------------------------------------- sampled-vs-full eval *)

type sampling_row = {
  sr_series : string;
  sr_kernel : string;
  sr_full : float;  (** full-run relative speedup *)
  sr_sampled : float;  (** sampled (budget-limited) relative speedup *)
  sr_rel_err : float;  (** |sampled - full| / full *)
}

type sampling_eval = {
  se_id : string;
  se_policy : Sampling.Policy.t;
  se_budget : int;
  se_rows : sampling_row list;
  se_wall_full_s : float;
  se_wall_sampled_s : float;
  se_max_rel_err : float;
  se_speedup : float;  (** wall-clock: full / sampled *)
}

(* The sampled-vs-full evaluation runs at a larger default scale than the
   headline figures: sampling's wall-clock win is a long-stream property
   (the detailed+warming work is capped by the budget while a full run
   grows with the stream), and at scale 8 the speedup crosses the bench's
   5x bar with every relative speedup still within 5% of the full run.

   Unlike the figures, this harness stays sequential on purpose: it
   *measures* per-cell host wall-clock (the full-vs-sampled speedup it
   gates on), and concurrent cells sharing host cores would inflate both
   sides unevenly and make the gate flaky. *)
let sampling_eval ?(scale = 8.0) ?(policy = Sampling.Policy.default_sampled)
    ?(budget = Sampling.Policy.default_budget) ~id ~hw ~sims () =
  let kernels = Mb.evaluated in
  let wall_full = ref 0.0 and wall_sampled = ref 0.0 in
  let run ~full cfg k =
    let t =
      if full then Runner.run_kernel_timed ~scale cfg k
      else Runner.run_kernel_timed ~scale ~policy ~budget cfg k
    in
    let acc = if full then wall_full else wall_sampled in
    acc := !acc +. t.Runner.setup_wall_s +. t.Runner.measure_wall_s;
    t.Runner.result
  in
  let hw_full = List.map (fun (k : W.kernel) -> (k.name, run ~full:true hw k)) kernels in
  let hw_sampled = List.map (fun (k : W.kernel) -> (k.name, run ~full:false hw k)) kernels in
  let rows =
    List.concat_map
      (fun (sim : Platform.Config.t) ->
        List.map
          (fun (k : W.kernel) ->
            let sf = run ~full:true sim k in
            let ss = run ~full:false sim k in
            let full_rel = Runner.relative_speedup ~sim:sf ~hw:(List.assoc k.name hw_full) in
            let sampled_rel =
              Runner.relative_speedup ~sim:ss ~hw:(List.assoc k.name hw_sampled)
            in
            {
              sr_series = sim.Platform.Config.name;
              sr_kernel = k.name;
              sr_full = full_rel;
              sr_sampled = sampled_rel;
              sr_rel_err = Float.abs (sampled_rel -. full_rel) /. full_rel;
            })
          kernels)
      sims
  in
  {
    se_id = id;
    se_policy = policy;
    se_budget = budget;
    se_rows = rows;
    se_wall_full_s = !wall_full;
    se_wall_sampled_s = !wall_sampled;
    se_max_rel_err = List.fold_left (fun a r -> Float.max a r.sr_rel_err) 0.0 rows;
    se_speedup = (if !wall_sampled > 0.0 then !wall_full /. !wall_sampled else 0.0);
  }

let sampling_eval_fig1 ?scale ?policy ?budget () =
  sampling_eval ?scale ?policy ?budget ~id:"fig1" ~hw:Cat.banana_pi_hw
    ~sims:[ Cat.banana_pi_sim; Cat.fast_banana_pi_sim ]
    ()

let sampling_eval_fig2 ?scale ?policy ?budget () =
  sampling_eval ?scale ?policy ?budget ~id:"fig2" ~hw:Cat.milkv_hw
    ~sims:[ Cat.boom_small; Cat.boom_medium; Cat.boom_large; Cat.milkv_sim ]
    ()

let render_sampling_eval e =
  let t =
    Report.Table.create
      ~headers:[ "Series"; "Kernel"; "Full rel"; "Sampled rel"; "Rel err %" ]
  in
  List.iter
    (fun r ->
      Report.Table.add_row t
        [
          r.sr_series;
          r.sr_kernel;
          Report.Table.cell_f r.sr_full;
          Report.Table.cell_f r.sr_sampled;
          Printf.sprintf "%.2f" (100.0 *. r.sr_rel_err);
        ])
    e.se_rows;
  Printf.sprintf
    "%s sampled (%s, budget %d insns) vs full: max rel err %.2f%%, wall %.2fs -> %.2fs (%.1fx)\n"
    e.se_id
    (Sampling.Policy.to_string e.se_policy)
    e.se_budget
    (100.0 *. e.se_max_rel_err)
    e.se_wall_full_s e.se_wall_sampled_s e.se_speedup
  ^ Report.Table.render t

let sampling_report ?scale () =
  String.concat "\n"
    [
      render_sampling_eval (sampling_eval_fig1 ?scale ());
      render_sampling_eval (sampling_eval_fig2 ?scale ());
    ]

let npb_figure ?jobs ?(telemetry = Telemetry.Registry.disabled) ~id ~title ~hw ~sims ~ranks
    ~scale () =
  let apps = Npb.all in
  (* Hardware row first (native GCC 13.2 binaries), then each simulation
     model (FireSim-image GCC 9.4 binaries) — one cell per (platform, app). *)
  let grid =
    List.concat_map
      (fun ((cfg : Platform.Config.t), codegen) ->
        List.map (fun a -> (cfg, codegen, ranks, a)) apps)
      ((hw, Workloads.Codegen.gcc_13_2)
      :: List.map (fun s -> (s, Workloads.Codegen.gcc_9_4)) sims)
  in
  let results =
    Telemetry.Registry.span_with telemetry ("figure:" ^ id) (fun () ->
        Runner.run_app_grid ~scale ?jobs ~telemetry grid)
  in
  let series =
    match chunks (List.length apps) results with
    | [] -> []
    | hw_row :: sim_rows ->
      let hw_results = List.map2 (fun (a : W.app) r -> (a.app_name, r)) apps hw_row in
      List.map2
        (fun (sim : Platform.Config.t) row ->
          {
            label = sim.name;
            points =
              List.map2
                (fun (a : W.app) s ->
                  (String.uppercase_ascii a.app_name,
                   Runner.relative_speedup ~sim:s ~hw:(List.assoc a.app_name hw_results)))
                apps row;
          })
        sims sim_rows
  in
  {
    id;
    title;
    note = Printf.sprintf "%d rank(s); relative speedup = t_hw / t_sim" ranks;
    reference = Some 1.0;
    series;
  }

let fig3 ?(scale = 1.0) ?jobs ?telemetry () =
  let sims = [ Cat.rocket1; Cat.rocket2; Cat.banana_pi_sim; Cat.fast_banana_pi_sim ] in
  [
    npb_figure ?jobs ?telemetry ~id:"fig3a" ~title:"NPB on Rocket configs vs Banana Pi (single core)"
      ~hw:Cat.banana_pi_hw ~sims ~ranks:1 ~scale ();
    npb_figure ?jobs ?telemetry ~id:"fig3b" ~title:"NPB on Rocket configs vs Banana Pi (four cores)"
      ~hw:Cat.banana_pi_hw ~sims ~ranks:4 ~scale ();
  ]

let fig4 ?(scale = 1.0) ?jobs ?(telemetry = Telemetry.Registry.disabled) () =
  let a =
    npb_figure ?jobs ~telemetry ~id:"fig4a" ~title:"NPB on stock BOOM configs vs MILK-V (single core)"
      ~hw:Cat.milkv_hw
      ~sims:[ Cat.boom_small; Cat.boom_medium; Cat.boom_large ]
      ~ranks:1 ~scale ()
  in
  (* (b): the tuned MILK-V Sim Model at 1 and 4 ranks.  Cells come in
     (ranks, app, side) order, the simulation side before the board. *)
  let ranks_list = [ 1; 4 ] in
  let grid =
    List.concat_map
      (fun ranks ->
        List.concat_map
          (fun (app : W.app) ->
            [
              (Cat.milkv_sim, Workloads.Codegen.gcc_9_4, ranks, app);
              (Cat.milkv_hw, Workloads.Codegen.gcc_13_2, ranks, app);
            ])
          Npb.all)
      ranks_list
  in
  let results =
    Telemetry.Registry.span_with telemetry "figure:fig4b" (fun () ->
        Runner.run_app_grid ~scale ?jobs ~telemetry grid)
  in
  let rows = chunks (2 * List.length Npb.all) results in
  let series =
    List.map2
      (fun ranks row ->
        {
          label = (if ranks = 1 then "1 core" else Printf.sprintf "%d cores" ranks);
          points =
            List.map2
              (fun (app : W.app) pt ->
                match pt with
                | [ s; h ] ->
                  (String.uppercase_ascii app.app_name, Runner.relative_speedup ~sim:s ~hw:h)
                | _ -> assert false)
              Npb.all (chunks 2 row);
        })
      ranks_list rows
  in
  let b =
    {
      id = "fig4b";
      title = "NPB on the MILK-V Sim Model vs MILK-V (1 and 4 cores)";
      note = "relative speedup = t_hw / t_sim";
      reference = Some 1.0;
      series;
    }
  in
  [ a; b ]

let app_pair_figure ?jobs ?(telemetry = Telemetry.Registry.disabled) ~id ~title (app : W.app)
    ~scale () =
  let ranks_list = [ 1; 2; 4 ] in
  let pairs =
    [
      ("banana-pi pair", Cat.banana_pi_sim, Cat.banana_pi_hw);
      ("milk-v pair", Cat.milkv_sim, Cat.milkv_hw);
    ]
  in
  (* Cells in (pair, ranks, side) order; as in Runner.app_relative, the
     simulation side runs the GCC 9.4 image binary, the board the GCC
     13.2 native one (Table 3). *)
  let grid =
    List.concat_map
      (fun (_, sim, hw) ->
        List.concat_map
          (fun ranks ->
            [
              (sim, Workloads.Codegen.gcc_9_4, ranks, app);
              (hw, Workloads.Codegen.gcc_13_2, ranks, app);
            ])
          ranks_list)
      pairs
  in
  let results =
    Telemetry.Registry.span_with telemetry ("figure:" ^ id) (fun () ->
        Runner.run_app_grid ~scale ?jobs ~telemetry grid)
  in
  let rows = chunks (2 * List.length ranks_list) results in
  let series =
    List.map2
      (fun (label, _, _) row ->
        {
          label;
          points =
            List.map2
              (fun ranks pt ->
                match pt with
                | [ s; h ] ->
                  (string_of_int ranks ^ " ranks", Runner.relative_speedup ~sim:s ~hw:h)
                | _ -> assert false)
              ranks_list (chunks 2 row);
        })
      pairs rows
  in
  {
    id;
    title;
    note = "relative speedup = t_hw / t_sim per rank count";
    reference = Some 1.0;
    series;
  }

let fig5 ?(scale = 1.0) ?jobs ?telemetry () =
  app_pair_figure ?jobs ?telemetry ~id:"fig5" ~title:"UME: FireSim models vs hardware" Workloads.Ume.app
    ~scale ()

let fig6 ?(scale = 1.0) ?jobs ?telemetry () =
  app_pair_figure ?jobs ?telemetry ~id:"fig6" ~title:"LAMMPS Lennard-Jones: FireSim models vs hardware"
    Workloads.Lammps.lj ~scale ()

let fig7 ?(scale = 1.0) ?jobs ?telemetry () =
  app_pair_figure ?jobs ?telemetry ~id:"fig7" ~title:"LAMMPS Chain: FireSim models vs hardware"
    Workloads.Lammps.chain ~scale ()

(* The per-panel figure index shared by `simbridge csv`, the validate
   subsystem's recompute path, and the serve daemon: one id per rendered
   CSV/golden file.  fig3/fig4 ids select a panel of the two-panel
   figure (both panels are computed; the unused one is discarded, as the
   one-shot CLI has always done). *)
let figure_ids = [ "fig1"; "fig2"; "fig3a"; "fig3b"; "fig4a"; "fig4b"; "fig5"; "fig6"; "fig7" ]

let figure_by_id ?scale ?jobs ?telemetry ?engine id =
  match id with
  | "fig1" -> Some (fig1 ?scale ?jobs ?engine ?telemetry ())
  | "fig2" -> Some (fig2 ?scale ?jobs ?engine ?telemetry ())
  | "fig3a" -> Some (List.nth (fig3 ?scale ?jobs ?telemetry ()) 0)
  | "fig3b" -> Some (List.nth (fig3 ?scale ?jobs ?telemetry ()) 1)
  | "fig4a" -> Some (List.nth (fig4 ?scale ?jobs ?telemetry ()) 0)
  | "fig4b" -> Some (List.nth (fig4 ?scale ?jobs ?telemetry ()) 1)
  | "fig5" -> Some (fig5 ?scale ?jobs ?telemetry ())
  | "fig6" -> Some (fig6 ?scale ?jobs ?telemetry ())
  | "fig7" -> Some (fig7 ?scale ?jobs ?telemetry ())
  | _ -> None

let app_runtime_table ?(scale = 1.0) ?jobs ?(telemetry = Telemetry.Registry.disabled) (app : W.app) =
  let platforms = [ Cat.banana_pi_hw; Cat.banana_pi_sim; Cat.milkv_hw; Cat.milkv_sim ] in
  let ranks_list = [ 1; 2; 4 ] in
  (* sim models run the FireSim-image binary, boards the native one *)
  let codegen_of (p : Platform.Config.t) =
    if
      String.length p.Platform.Config.name >= 3
      && String.sub p.Platform.Config.name (String.length p.Platform.Config.name - 3) 3 = "-hw"
    then Workloads.Codegen.gcc_13_2
    else Workloads.Codegen.gcc_9_4
  in
  let grid =
    List.concat_map
      (fun (p : Platform.Config.t) -> List.map (fun ranks -> (p, codegen_of p, ranks, app)) ranks_list)
      platforms
  in
  let results =
    Telemetry.Registry.span_with telemetry ("runtimes:" ^ app.app_name) (fun () ->
        Runner.run_app_grid ~scale ?jobs ~telemetry grid)
  in
  let t = Report.Table.create ~headers:[ "Platform"; "1 rank"; "2 ranks"; "4 ranks" ] in
  List.iter2
    (fun (p : Platform.Config.t) row ->
      Report.Table.add_row t
        (p.name :: List.map (fun (r : Platform.Soc.result) -> Printf.sprintf "%.4f s" r.Platform.Soc.seconds) row))
    platforms
    (chunks (List.length ranks_list) results);
  Printf.sprintf "%s: absolute target runtimes\n" app.app_name ^ Report.Table.render t

(* ------------------------------------------------------------ ablations *)

let ablation_l1 ?(scale = 4.0) () =
  (* The paper's mechanism needs CG's gathered vector to sit between the
     two L1 capacities: at scale 4 the direction vector is ~45 KiB —
     spilling a 32 KiB L1, fitting a 64 KiB one (class A's n = 14000 had
     the same relationship to these caches). *)
  let base = Cat.boom_large in
  let big_l1 = Cache.config ~name:"l1d" ~sets:128 ~ways:8 ~hit_latency:3 ~mshrs:6 () in
  let tuned = { base with Platform.Config.name = "boom-large-64k"; l1d = big_l1; l1i = big_l1 } in
  let r32 = Runner.run_app ~scale ~ranks:1 base Npb.cg in
  let r64 = Runner.run_app ~scale ~ranks:1 tuned Npb.cg in
  let reduction =
    (r32.Platform.Soc.seconds -. r64.Platform.Soc.seconds) /. r32.Platform.Soc.seconds *. 100.0
  in
  let miss_cut =
    float_of_int (r32.Platform.Soc.l1d_misses - r64.Platform.Soc.l1d_misses)
    /. float_of_int (max 1 r32.Platform.Soc.l1d_misses)
    *. 100.0
  in
  let t = Report.Table.create ~headers:[ "Config"; "CG runtime (s)"; "L1D misses" ] in
  Report.Table.add_row t
    [ "Large BOOM, 32 KiB L1"; Printf.sprintf "%.5f" r32.Platform.Soc.seconds; string_of_int r32.l1d_misses ];
  Report.Table.add_row t
    [ "Large BOOM, 64 KiB L1"; Printf.sprintf "%.5f" r64.Platform.Soc.seconds; string_of_int r64.l1d_misses ];
  Printf.sprintf
    "Ablation A1 (L1 32->64 KiB on CG): misses cut %.0f%%, runtime cut %.1f%% (paper: ~27.7%% runtime).\n\
     The capacity effect reproduces (the direction vector fits the larger L1); the runtime\n\
     sensitivity is muted here because the analytic BOOM overlaps L1 misses across independent\n\
     rows, where the RTL pays more of that latency.\n"
    miss_cut reduction
  ^ Report.Table.render t

let ablation_clock ?(scale = 1.0) () =
  let categories = W.all_categories in
  let rel_of sim k = Runner.kernel_relative ~scale ~sim ~hw:Cat.banana_pi_hw k in
  let t = Report.Table.create ~headers:[ "Category"; "1.6 GHz geomean"; "3.2 GHz geomean" ] in
  List.iter
    (fun cat ->
      let kernels = List.filter (fun (k : W.kernel) -> not k.excluded) (Mb.by_category cat) in
      let g sim =
        Util.Stats.geomean (Array.of_list (List.map (rel_of sim) kernels))
      in
      Report.Table.add_row t
        [
          W.category_name cat;
          Report.Table.cell_f (g Cat.banana_pi_sim);
          Report.Table.cell_f (g Cat.fast_banana_pi_sim);
        ])
    categories;
  "Ablation A2 (clock doubling, per-category geomean relative speedup vs Banana Pi HW)\n"
  ^ Report.Table.render t

let ablation_bus ?(scale = 1.0) () =
  let kernels = [ Mb.find "ML2_BW_ld"; Mb.find "ML2_BW_st"; Mb.find "MM" ] in
  let configs = [ Cat.rocket1; Cat.rocket2; Cat.banana_pi_sim ] in
  let t = Report.Table.create ~headers:("Kernel" :: List.map (fun (c : Platform.Config.t) -> c.name) configs) in
  List.iter
    (fun (k : W.kernel) ->
      Report.Table.add_row t
        (k.name
        :: List.map
             (fun c ->
               let r = Runner.run_kernel ~scale c k in
               Printf.sprintf "%.0f cyc" (float_of_int r.Platform.Soc.cycles))
             configs))
    kernels;
  "Ablation A3 (L2 banks 1->4, bus 64->128 bit; lower is faster)\n" ^ Report.Table.render t

let ablation_tlb ?(scale = 0.5) () =
  (* How much do the Table 5 translation structures matter?  Run the
     DRAM-chase kernel (TLB-hostile: one new page per hop) with the
     FireSim Rocket TLB (32-entry, no L2), the FireSim BOOM TLB (+1024
     L2) and an idealized TLB. *)
  let mm = Mb.find "MM" in
  let base = Cat.banana_pi_sim in
  let variant name tlb = { base with Platform.Config.name; dtlb = tlb; itlb = tlb } in
  let huge =
    Platform.Tlb.config ~name:"ideal" ~l1_entries:1024 ~l2_entries:65536 ~walk_latency:8 ()
  in
  let t = Report.Table.create ~headers:[ "TLB"; "MM cycles"; "walks" ] in
  List.iter
    (fun (label, cfg) ->
      let r = Runner.run_kernel ~scale cfg mm in
      Report.Table.add_row t
        [ label; string_of_int r.Platform.Soc.cycles; string_of_int r.Platform.Soc.tlb_walks ])
    [
      ("32-entry L1 only (Rocket model)", variant "tlb-rocket" Platform.Tlb.firesim_rocket);
      ("32-entry L1 + 1024 L2 (BOOM model)", variant "tlb-boom" Platform.Tlb.firesim_boom);
      ("idealized", variant "tlb-ideal" huge);
    ];
  "Ablation A4 (TLB geometry on the DRAM-chase kernel)\n" ^ Report.Table.render t

let ablation_prefetch ?(scale = 1.0) () =
  (* Modeling ablation (DESIGN.md 3b): without the L2 stream prefetcher,
     MG's stencil streams serialize on the conservative DDR3 latency and
     the Banana Pi comparison collapses far below what the paper
     measured; with it, streams are bandwidth-coupled. *)
  let strip (c : Platform.Config.t) =
    {
      c with
      Platform.Config.name = c.name ^ "-nopf";
      l2 = { c.l2 with Cache.prefetch_next = 0 };
    }
  in
  let t =
    Report.Table.create
      ~headers:[ "L2 prefetcher"; "t_sim (ms)"; "t_hw (ms)"; "MG relative (BPi pair)" ]
  in
  let row label sim hw =
    let s = Runner.run_app ~scale ~codegen:Workloads.Codegen.gcc_9_4 ~ranks:1 sim Npb.mg in
    let h = Runner.run_app ~scale ~codegen:Workloads.Codegen.gcc_13_2 ~ranks:1 hw Npb.mg in
    Report.Table.add_row t
      [
        label;
        Printf.sprintf "%.3f" (s.Platform.Soc.seconds *. 1e3);
        Printf.sprintf "%.3f" (h.Platform.Soc.seconds *. 1e3);
        Report.Table.cell_f (Runner.relative_speedup ~sim:s ~hw:h);
      ]
  in
  row "on (both sides)" Cat.banana_pi_sim Cat.banana_pi_hw;
  row "off (both sides)" (strip Cat.banana_pi_sim) (strip Cat.banana_pi_hw);
  "Ablation A5 (stream prefetcher as a modeling choice)\n" ^ Report.Table.render t

let ablation_quantum ?(scale = 1.0) () =
  (* Modeling ablation (DESIGN.md 3b): the co-simulation quantum bounds
     the timestamp skew shared resources observe.  Large quanta inflate
     multicore runtimes with spurious serialization. *)
  let t = Report.Table.create ~headers:[ "Quantum (cycles)"; "CG 4-rank cycles" ] in
  List.iter
    (fun q ->
      let soc = Platform.Soc.create Cat.banana_pi_sim in
      let prog = Npb.cg_program ~ranks:4 ~scale () in
      let r = Platform.Soc.run_ranks ~quantum:q soc prog in
      Report.Table.add_row t [ string_of_int q; string_of_int r.Platform.Soc.cycles ])
    [ 50; 100; 500; 2000; 10000 ];
  "Ablation A6 (co-simulation quantum; smaller = tighter lockstep)\n" ^ Report.Table.render t

let simrate ?(scale = 1.0) () =
  let rocket_run = Runner.run_app ~scale ~ranks:1 Cat.banana_pi_sim Npb.ep in
  let boom_run = Runner.run_app ~scale ~ranks:1 Cat.milkv_sim Npb.ep in
  let rocket_rep =
    Firesim.Host.report Firesim.Host.u250_rocket ~target_freq_hz:1.6e9 rocket_run
  in
  let boom_rep = Firesim.Host.report Firesim.Host.u250_boom ~target_freq_hz:2.0e9 boom_run in
  Format.asprintf
    "FireSim host simulation rates (EP, 1 rank)@.@.Rocket target:@.%a@.@.BOOM target:@.%a@.@.paper: ~60 MHz / ~25x (Rocket), ~15 MHz / ~135x (BOOM)@."
    Firesim.Host.pp_report rocket_rep Firesim.Host.pp_report boom_rep

let multinode ?(scale = 1.0) () =
  (* The paper's §7 future work: distributed runs over FireSim's network
     simulation (the BxE environment hosts up to 8 nodes). *)
  String.concat "\n"
    [
      Firesim.Multinode.scaling_table ~scale Cat.banana_pi_sim Npb.ep;
      Firesim.Multinode.scaling_table ~scale Cat.banana_pi_sim Npb.cg;
    ]

(* ------------------------------------------------------------- registry *)

let render_figures figs = String.concat "\n" (List.map render_figure figs)

let all =
  [
    ("table1", "MicroBench kernel inventory", fun (_ : Telemetry.Registry.t) -> table1 ());
    ("table2", "NPB application selection", fun _ -> table2 ());
    ("table3", "compiler (codegen) settings", fun _ -> table3 ());
    ("table4", "FireSim model configurations", fun _ -> table4 ());
    ("table5", "hardware vs simulation-model specs", fun _ -> table5 ());
    ("fig1", "MicroBench: Rocket vs Banana Pi", fun reg -> render_figure (fig1 ~telemetry:reg ()));
    ("fig2", "MicroBench: BOOM vs MILK-V", fun reg -> render_figure (fig2 ~telemetry:reg ()));
    ("sampling", "sampled-simulation accuracy vs full (fig1/fig2)", fun _ -> sampling_report ());
    ( "fig3",
      "NPB on Rocket configs (1 and 4 cores)",
      fun reg -> render_figures (fig3 ~telemetry:reg ()) );
    ( "fig4",
      "NPB on BOOM configs (stock and tuned)",
      fun reg -> render_figures (fig4 ~telemetry:reg ()) );
    ("fig5", "UME relative speedup", fun reg -> render_figure (fig5 ~telemetry:reg ()));
    ("fig6", "LAMMPS LJ relative speedup", fun reg -> render_figure (fig6 ~telemetry:reg ()));
    ("fig7", "LAMMPS Chain relative speedup", fun reg -> render_figure (fig7 ~telemetry:reg ()));
    ( "runtimes",
      "absolute runtimes for UME and LAMMPS",
      fun reg ->
        String.concat "\n"
          (List.map
             (app_runtime_table ~telemetry:reg)
             [ Workloads.Ume.app; Workloads.Lammps.lj; Workloads.Lammps.chain ]) );
    ("ablate-l1", "L1 32->64 KiB on CG", fun _ -> ablation_l1 ());
    ("ablate-clock", "clock doubling per category", fun _ -> ablation_clock ());
    ("ablate-bus", "L2 banks / bus width", fun _ -> ablation_bus ());
    ("ablate-tlb", "TLB geometry on the DRAM chase", fun _ -> ablation_tlb ());
    ("ablate-prefetch", "modeling: L2 stream prefetcher", fun _ -> ablation_prefetch ());
    ("ablate-quantum", "modeling: co-simulation quantum", fun _ -> ablation_quantum ());
    ("simrate", "FireSim host simulation rate", fun _ -> simrate ());
    ("multinode", "future work: 1-8 node scale-out simulation", fun _ -> multinode ());
  ]
