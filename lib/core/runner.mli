(** Running workloads on platforms and comparing the results.

    This is the paper's measurement harness: run the identical instruction
    stream on a simulation-model platform and on its silicon-reference
    platform, then report the relative speedup

      rel = t_hardware / t_simulated

    so that 1.0 is a perfect match and 1.2 means the simulation ran 20%
    faster than the hardware (the paper's convention, §5). *)

type timed = {
  result : Platform.Soc.result;  (** measured region; [cycles] from the estimate *)
  estimate : Sampling.Estimate.t;  (** exact for [Full], error-bounded otherwise *)
  setup_wall_s : float;  (** host wall-clock spent in the setup phase *)
  measure_wall_s : float;  (** host wall-clock spent in the measured phase *)
}

type engine = [ `Trace | `Seq | `Memo ]
(** How the measured stream is driven through the timing model.
    [`Trace] (the default) compiles the kernel's [Seq.t] stream into a
    flat {!Trace.t} once — cached across grid cells sharing (kernel,
    scale) — and replays it allocation-free; [`Seq] re-forces the lazy
    stream per traversal, as the seed did.  [`Trace] and [`Seq] are
    bit-identical; only host throughput differs (see [bench perf]).

    [`Memo] is the block-memoized fast path: repeated basic blocks are
    simulated in detail a few times per cache-state class and then
    replayed by fast-forwarding their memoized cycle cost.  It is
    approximate — the result carries an explicit error bound in
    [estimate.ci95_cycles] — and requires the [Full] policy with no
    traversal budget ([Invalid_argument] otherwise): the memo layer's
    bound does not compose with sampling extrapolation.  Without
    {!enable_memo_sharing} a memoized run is still a deterministic pure
    function of (kernel, scale, seed, config). *)

type trace_cache_stats = { tc_hits : int; tc_misses : int; tc_evictions : int }

val trace_cache_stats : unit -> trace_cache_stats
(** Cumulative process-wide compiled-trace cache counters (all domains). *)

val trace_cache_clear : unit -> unit
(** Drop every cached trace and zero the counters (benchmark isolation). *)

val set_trace_cache_limits : ?entries:int -> ?words:int -> unit -> unit
(** Re-size the process-wide compiled-trace cache (defaults: 128
    entries, 24M words ≈ 192 MiB).  A one-shot CLI run never needs
    this; the serve daemon keeps the cache for its whole lifetime and
    sizes it to the deployment at startup ([--trace-cache-mib]).
    {b Startup-only}, like {!Parallel.Pool.set_default_jobs}: must be
    called before any cell runs.  Raises [Invalid_argument] on
    non-positive values. *)

val publish_trace_cache_stats : Telemetry.Registry.t -> unit
(** Snapshot {!trace_cache_stats} into the registry as the
    [trace.cache.hits]/[trace.cache.misses]/[trace.cache.evictions]
    counters, so the cache shows up in summaries, CSV export, and run
    reports.  The counters are process-wide and scheduling-dependent at
    [jobs > 1] (racing domains may compile the same key twice), so this
    is called once at report time — never from inside pooled cells,
    where it would break telemetry determinism across job counts. *)

(** {2 Block-memoized fast path} *)

type block_cache_stats = { bc_hits : int; bc_misses : int; bc_evictions : int }

val block_cache_stats : unit -> block_cache_stats
(** Cumulative process-wide block-analysis cache counters; the analysis
    of a (kernel, scale, seed) stream is platform-independent and shared
    across grid cells, exactly like its compiled trace. *)

val block_cache_clear : unit -> unit

type memo_stats = {
  m_runs : int;  (** memoized runs completed *)
  m_instances : int;  (** block instances replayed *)
  m_hits : int;  (** instances fast-forwarded from the cost table *)
  m_ff_insns : int;  (** instructions fast-forwarded *)
  m_measured_insns : int;  (** instructions simulated in detail *)
}

val memo_stats : unit -> memo_stats
(** Cumulative process-wide memoized-replay counters (all domains),
    accumulated across [`Memo] runs like the trace-cache statistics.
    The per-run values also reach telemetry as the [memo.*] counters. *)

val memo_stats_clear : unit -> unit

val enable_memo_sharing : unit -> unit
(** Switch [`Memo] runs to a process-lifetime shared cost table keyed by
    (config fingerprint, block digest, cache-state class) — the serve
    daemon's analogue of the trace cache.  Sharing trades strict
    run-to-run determinism for convergence (later runs start from
    already-measured costs, still within each run's declared bound).
    One-way and startup-oriented: call before serving requests. *)

val memo_sharing_enabled : unit -> bool

val memo_table_stats : unit -> (int * int * int) option
(** [(entries, seeded, merged)] of the shared cost table, if enabled. *)

val run_kernel_timed :
  ?scale:float ->
  ?telemetry:Telemetry.Registry.t ->
  ?policy:Sampling.Policy.t ->
  ?budget:int ->
  ?engine:engine ->
  Platform.Config.t ->
  Workloads.Workload.kernel ->
  timed
(** {!run_kernel} generalized with a sampling policy (default [Full]) and
    an optional traversal budget (see {!Sampling.Engine.run}), reporting
    per-phase host wall-clock time alongside the result.  The kernel's
    setup stream always runs in full detail; only the measured stream is
    sampled.  With a sampled policy the result's [cycles]/[seconds] are
    the extrapolated estimate and memory-hierarchy counters still cover
    the whole stream (functional warming touches caches and TLBs), but
    core-retire counters cover only the detailed intervals. *)

val run_kernel :
  ?scale:float ->
  ?telemetry:Telemetry.Registry.t ->
  Platform.Config.t ->
  Workloads.Workload.kernel ->
  Platform.Soc.result
(** Run a microbenchmark on core 0 of a fresh SoC.

    With [telemetry] (default {!Telemetry.Registry.disabled}), records
    "setup"/"measure" phases (target span + host wall time) and publishes
    the full {!Platform.Soc.counters} snapshot *of the measured region
    only* — counters are differenced against the post-setup state, so
    they agree exactly with the returned result's aggregates. *)

val run_app :
  ?scale:float ->
  ?codegen:Workloads.Codegen.t ->
  ?telemetry:Telemetry.Registry.t ->
  ranks:int ->
  Platform.Config.t ->
  Workloads.Workload.app ->
  Platform.Soc.result
(** Run an MPI application with [ranks] ranks on a fresh SoC, built with
    the given compiler quality (default {!Workloads.Codegen.default}).
    [telemetry] additionally reaches the MPI engine: message-size and
    wait-time histograms plus per-op trace events on one lane per rank. *)

(** {2 Pooled grids}

    The figure/table drivers build explicit lists of independent
    simulation cells and submit them here; the {!Parallel.Pool} runs
    them on worker domains (bounded by [jobs]; default: the pool's
    process-wide default, i.e. the CLI's [--jobs]).  Results come back
    in submission order and are bit-identical to a sequential run: every
    cell simulates a fresh SoC from seeded streams, so its output is a
    pure function of the grid entry.  With [telemetry], each cell
    records into a private forked sink, merged back in grid order. *)

val run_kernel_grid :
  ?scale:float ->
  ?policy:Sampling.Policy.t ->
  ?budget:int ->
  ?jobs:int ->
  ?telemetry:Telemetry.Registry.t ->
  ?engine:engine ->
  (Platform.Config.t * Workloads.Workload.kernel) list ->
  timed list
(** {!run_kernel_timed} over a (platform, kernel) grid. *)

val run_app_grid :
  ?scale:float ->
  ?jobs:int ->
  ?telemetry:Telemetry.Registry.t ->
  (Platform.Config.t * Workloads.Codegen.t * int * Workloads.Workload.app) list ->
  Platform.Soc.result list
(** {!run_app} over a (platform, codegen, ranks, app) grid. *)

val relative_speedup : sim:Platform.Soc.result -> hw:Platform.Soc.result -> float
(** t_hw / t_sim in target seconds (clock-aware, not cycle counts). *)

val kernel_relative :
  ?scale:float ->
  ?policy:Sampling.Policy.t ->
  ?budget:int ->
  ?engine:engine ->
  sim:Platform.Config.t ->
  hw:Platform.Config.t ->
  Workloads.Workload.kernel ->
  float
(** With a sampled [policy] (and/or [budget]) both sides run under the
    identical schedule and stop at the identical stream position, so the
    ratio of estimated times is directly comparable to the full-run
    relative speedup. *)

val app_relative :
  ?scale:float ->
  ?mismatched_codegen:bool ->
  ranks:int ->
  sim:Platform.Config.t ->
  hw:Platform.Config.t ->
  Workloads.Workload.app ->
  float
(** With [mismatched_codegen] (default true, as in the paper's Table 3)
    the simulation side runs the GCC 9.4 scalar binary while the silicon
    side runs the GCC 13.2 vectorizing one. *)
