(** Running workloads on platforms and comparing the results.

    This is the paper's measurement harness: run the identical instruction
    stream on a simulation-model platform and on its silicon-reference
    platform, then report the relative speedup

      rel = t_hardware / t_simulated

    so that 1.0 is a perfect match and 1.2 means the simulation ran 20%
    faster than the hardware (the paper's convention, §5). *)

val run_kernel :
  ?scale:float ->
  ?telemetry:Telemetry.Registry.t ->
  Platform.Config.t ->
  Workloads.Workload.kernel ->
  Platform.Soc.result
(** Run a microbenchmark on core 0 of a fresh SoC.

    With [telemetry] (default {!Telemetry.Registry.disabled}), records
    "setup"/"measure" phases (target span + host wall time) and publishes
    the full {!Platform.Soc.counters} snapshot *of the measured region
    only* — counters are differenced against the post-setup state, so
    they agree exactly with the returned result's aggregates. *)

val run_app :
  ?scale:float ->
  ?codegen:Workloads.Codegen.t ->
  ?telemetry:Telemetry.Registry.t ->
  ranks:int ->
  Platform.Config.t ->
  Workloads.Workload.app ->
  Platform.Soc.result
(** Run an MPI application with [ranks] ranks on a fresh SoC, built with
    the given compiler quality (default {!Workloads.Codegen.default}).
    [telemetry] additionally reaches the MPI engine: message-size and
    wait-time histograms plus per-op trace events on one lane per rank. *)

val relative_speedup : sim:Platform.Soc.result -> hw:Platform.Soc.result -> float
(** t_hw / t_sim in target seconds (clock-aware, not cycle counts). *)

val kernel_relative :
  ?scale:float ->
  sim:Platform.Config.t ->
  hw:Platform.Config.t ->
  Workloads.Workload.kernel ->
  float

val app_relative :
  ?scale:float ->
  ?mismatched_codegen:bool ->
  ranks:int ->
  sim:Platform.Config.t ->
  hw:Platform.Config.t ->
  Workloads.Workload.app ->
  float
(** With [mismatched_codegen] (default true, as in the paper's Table 3)
    the simulation side runs the GCC 9.4 scalar binary while the silicon
    side runs the GCC 13.2 vectorizing one. *)
