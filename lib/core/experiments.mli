(** The experiment registry: one entry per table and figure of the paper,
    plus the ablations called out in DESIGN.md.

    Figure functions run the required simulations and return structured
    series; [render_figure] turns one into an ASCII chart + data table.
    The [scale] argument shrinks or grows workload sizes (1.0 = the
    defaults documented in the workloads library). *)

type series = {
  label : string;
  points : (string * float) list;  (** (x label, relative speedup) *)
}

type figure = {
  id : string;
  title : string;
  note : string;
  reference : float option;  (** target line, 1.0 for relative speedups *)
  series : series list;
}

val render_figure : figure -> string
val figure_csv : figure -> string

(* Tables 1-5 are descriptive: they render the suite / platform catalog. *)
val table1 : unit -> string
val table2 : unit -> string
val table3 : unit -> string
val table4 : unit -> string
val table5 : unit -> string

(** Figures build explicit (platform, workload, ranks) cell grids and run
    them on the {!Parallel.Pool} worker domains: [jobs] bounds the worker
    count (default: the pool's process-wide setting, i.e. the CLI's
    [--jobs]; [1] = sequential in-process).  Results are reassembled in
    grid order and are bit-identical for every [jobs] value.

    [telemetry] (default {!Telemetry.Registry.disabled}) is the parent
    registry the grid's per-cell sinks merge into; when the caller holds
    an active span (the CLI's root run span), each figure additionally
    records a ["figure:<id>"] span whose children are the pool's
    per-cell spans. *)

val fig1 :
  ?scale:float ->
  ?policy:Sampling.Policy.t ->
  ?budget:int ->
  ?jobs:int ->
  ?engine:Runner.engine ->
  ?telemetry:Telemetry.Registry.t ->
  unit ->
  figure
(** MicroBench on Banana Pi Sim Model and Fast model vs Banana Pi HW.
    [policy] (default [Full]) and [budget] select the sampled fast path
    (see {!Runner.run_kernel_timed}); [engine] (default [`Trace]) selects
    compiled-trace replay vs the reference [Seq.t] traversal — both
    produce the identical figure. *)

val fig2 :
  ?scale:float ->
  ?policy:Sampling.Policy.t ->
  ?budget:int ->
  ?jobs:int ->
  ?engine:Runner.engine ->
  ?telemetry:Telemetry.Registry.t ->
  unit ->
  figure
(** MicroBench on Small/Medium/Large BOOM and MILK-V Sim Model vs MILK-V
    HW. *)

(** {2 Sampled-vs-full evaluation}

    Runs a microbench figure twice — full detail and sampled under a
    traversal budget — and compares every kernel's relative speedup plus
    the total host wall-clock.  This is the acceptance harness for the
    sampling engine (bench target [sampling], CI smoke).

    The default scale is 8 (not the headline figures' 1): sampling's
    wall-clock win is a long-stream property — the sampled side's work is
    capped by the budget while the full run grows with the stream. *)

type sampling_row = {
  sr_series : string;  (** simulation-model platform name *)
  sr_kernel : string;
  sr_full : float;  (** full-run relative speedup *)
  sr_sampled : float;  (** sampled (budget-limited) relative speedup *)
  sr_rel_err : float;  (** |sampled - full| / full *)
}

type sampling_eval = {
  se_id : string;
  se_policy : Sampling.Policy.t;
  se_budget : int;
  se_rows : sampling_row list;
  se_wall_full_s : float;
  se_wall_sampled_s : float;
  se_max_rel_err : float;
  se_speedup : float;  (** host wall-clock ratio: full / sampled *)
}

val sampling_eval_fig1 :
  ?scale:float -> ?policy:Sampling.Policy.t -> ?budget:int -> unit -> sampling_eval

val sampling_eval_fig2 :
  ?scale:float -> ?policy:Sampling.Policy.t -> ?budget:int -> unit -> sampling_eval

val render_sampling_eval : sampling_eval -> string

val sampling_report : ?scale:float -> unit -> string
(** The [sampling] registry entry: both evaluations rendered. *)

val fig3 : ?scale:float -> ?jobs:int -> ?telemetry:Telemetry.Registry.t -> unit -> figure list
(** NPB on the Rocket-family configs vs Banana Pi HW; [single; four]. *)

val fig4 : ?scale:float -> ?jobs:int -> ?telemetry:Telemetry.Registry.t -> unit -> figure list
(** NPB on BOOM configs vs MILK-V HW; [(a) stock BOOMs; (b) tuned model
    1 and 4 ranks]. *)

val fig5 : ?scale:float -> ?jobs:int -> ?telemetry:Telemetry.Registry.t -> unit -> figure
(** UME relative speedup over 1/2/4 ranks, both platform pairs. *)

val fig6 : ?scale:float -> ?jobs:int -> ?telemetry:Telemetry.Registry.t -> unit -> figure
(** LAMMPS Lennard-Jones. *)

val fig7 : ?scale:float -> ?jobs:int -> ?telemetry:Telemetry.Registry.t -> unit -> figure
(** LAMMPS Chain. *)

val figure_ids : string list
(** Every per-panel figure id: [fig1; fig2; fig3a; fig3b; fig4a; fig4b;
    fig5; fig6; fig7] — the vocabulary shared by [simbridge csv], the
    golden CSVs, and the serve protocol. *)

val figure_by_id :
  ?scale:float ->
  ?jobs:int ->
  ?telemetry:Telemetry.Registry.t ->
  ?engine:Runner.engine ->
  string ->
  figure option
(** Compute one panel by id ([None] for an unknown id).  [fig3a]
    etc. compute the parent two-panel figure and return the requested
    panel, exactly as the one-shot CLI does — so a served payload built
    from this function is byte-identical to [simbridge csv ID].
    [engine] reaches the microbench panels (fig1/fig2); the app figures
    (fig3–fig7) drive MPI ranks through the streaming path and ignore
    it. *)

val app_runtime_table :
  ?scale:float -> ?jobs:int -> ?telemetry:Telemetry.Registry.t -> Workloads.Workload.app -> string
(** Absolute target runtimes (seconds) for 1/2/4 ranks on all four
    platforms — the numbers quoted in §5.3/§5.4. *)

val ablation_l1 : ?scale:float -> unit -> string
(** §5.2.2: Large BOOM with 32 vs 64 KiB L1 on CG (expected ~25-30%
    runtime reduction). *)

val ablation_clock : ?scale:float -> unit -> string
(** §5.1: per-category MicroBench geomean at 1.6 vs 3.2 GHz. *)

val ablation_bus : ?scale:float -> unit -> string
(** §4: L2 banks 1 -> 4 and bus 64 -> 128 bit across Rocket configs. *)

val ablation_tlb : ?scale:float -> unit -> string
(** Table 5's translation structures on the DRAM-chase kernel: FireSim
    Rocket TLB vs FireSim BOOM TLB vs an idealized TLB. *)

val ablation_prefetch : ?scale:float -> unit -> string
(** Modeling choice: the L2 stream prefetcher on vs off (MG, Banana Pi
    pair). *)

val ablation_quantum : ?scale:float -> unit -> string
(** Modeling choice: the multicore co-simulation quantum (CG, 4 ranks). *)

val simrate : ?scale:float -> unit -> string
(** §3.2.2: FireSim host simulation rate and slowdown for a Rocket and a
    BOOM target. *)

val multinode : ?scale:float -> unit -> string
(** §7 future work: strong scaling of EP and CG over 1-8 simulated nodes
    connected by a FireSim-style switch ({!Firesim.Multinode}). *)

val all : (string * string * (Telemetry.Registry.t -> string)) list
(** (id, description, render) for every experiment, in paper order.  The
    render function records into the given registry (figures thread it
    to their grids; pass {!Telemetry.Registry.disabled} for plain
    output). *)
