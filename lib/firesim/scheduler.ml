type model = {
  m_name : string;
  inputs : int Channel.t list;
  outputs : int Channel.t list;
  step : int -> int list -> int list;
  mutable cycle : int;
}

let model ~name ~inputs ~outputs ~step = { m_name = name; inputs; outputs; step; cycle = 0 }
let name m = m.m_name
let cycles_done m = m.cycle

type policy =
  | Round_robin
  | Reverse
  | Random of Util.Rng.t

type model_stats = {
  model_name : string;
  fired_cycles : int;
  stalls : int;
}

type outcome = {
  host_iterations : int;
  fired : int;
  per_model : model_stats list;
}

let fireable m target_cycles =
  m.cycle < target_cycles
  && List.for_all Channel.can_dequeue m.inputs
  && List.for_all Channel.can_enqueue m.outputs

let fire m =
  let ins = List.map Channel.dequeue m.inputs in
  let outs = m.step m.cycle ins in
  if List.length outs <> List.length m.outputs then
    failwith (m.m_name ^ ": step produced wrong number of output tokens");
  List.iter2 Channel.enqueue m.outputs outs;
  m.cycle <- m.cycle + 1

let run ?(policy = Round_robin) ?(telemetry = Telemetry.Registry.disabled) ~models ~target_cycles
    () =
  let arr = Array.of_list models in
  let n = Array.length arr in
  let iterations = ref 0 in
  let fired = ref 0 in
  let fired_m = Array.make n 0 in
  let stalls_m = Array.make n 0 in
  let order () =
    match policy with
    | Round_robin -> Array.init n (fun i -> i)
    | Reverse -> Array.init n (fun i -> n - 1 - i)
    | Random rng -> Util.Rng.permutation rng n
  in
  let all_done () = Array.for_all (fun m -> m.cycle >= target_cycles) arr in
  while not (all_done ()) do
    incr iterations;
    let progressed = ref false in
    Array.iter
      (fun i ->
        let m = arr.(i) in
        if fireable m target_cycles then begin
          fire m;
          incr fired;
          fired_m.(i) <- fired_m.(i) + 1;
          progressed := true
        end
        else if m.cycle < target_cycles then
          (* Polled while starved of input tokens or back-pressured on
             output space: a host-level stall, dependent on the visit
             order the policy chose. *)
          stalls_m.(i) <- stalls_m.(i) + 1)
      (order ());
    if not !progressed then
      failwith
        ("Firesim.Scheduler: deadlock; stuck models: "
        ^ String.concat ", "
            (Array.to_list arr
            |> List.filter (fun m -> m.cycle < target_cycles)
            |> List.map (fun m -> m.m_name)))
  done;
  (* Target-level "firesim.model." counters are invariant across host
     policies; host-level "firesim.host." ones are allowed to differ. *)
  if Telemetry.Registry.enabled telemetry then begin
    Telemetry.Registry.set_all telemetry
      (("firesim.host.iterations", !iterations)
      :: List.concat
           (List.init n (fun i ->
                [
                  (Printf.sprintf "firesim.model.%s.fired" arr.(i).m_name, fired_m.(i));
                  (Printf.sprintf "firesim.host.%s.stalls" arr.(i).m_name, stalls_m.(i));
                ])));
    Array.iteri
      (fun i m ->
        Telemetry.Trace.record
          (Telemetry.Registry.trace telemetry)
          {
            Telemetry.Trace.name = m.m_name;
            cat = "firesim";
            ph = 'X';
            ts = m.cycle - fired_m.(i);
            dur = fired_m.(i);
            tid = i;
            args = [ ("stalls", Telemetry.Trace.Int stalls_m.(i)) ];
          })
      arr
  end;
  {
    host_iterations = !iterations;
    fired = !fired;
    per_model =
      List.init n (fun i ->
          { model_name = arr.(i).m_name; fired_cycles = fired_m.(i); stalls = stalls_m.(i) });
  }
