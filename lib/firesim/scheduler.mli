(** Deterministic co-simulation of token-decoupled models.

    Each model is a step function that consumes one token from every input
    channel and produces one token on every output channel per *target*
    cycle.  A model may fire only when all inputs are ready and all outputs
    have room; the scheduler picks fireable models according to a host
    policy.  The FireSim correctness property — target behaviour is
    independent of host scheduling — holds by construction and is checked
    by the test suite under different policies. *)

type model

val model :
  name:string ->
  inputs:int Channel.t list ->
  outputs:int Channel.t list ->
  step:(int -> int list -> int list) ->
  model
(** [step target_cycle input_tokens] returns the output tokens for this
    target cycle. *)

val name : model -> string
val cycles_done : model -> int

type policy =
  | Round_robin
  | Reverse  (** iterate models in reverse order: adversarial interleave *)
  | Random of Util.Rng.t

type model_stats = {
  model_name : string;
  fired_cycles : int;  (** target cycles this model advanced in the run *)
  stalls : int;
      (** host-level: times the scheduler polled the model while it was
          starved of input tokens or back-pressured; depends on the host
          policy, unlike [fired_cycles] *)
}

type outcome = {
  host_iterations : int;  (** scheduler passes needed *)
  fired : int;  (** total model firings (= models x target cycles) *)
  per_model : model_stats list;  (** in the order models were given *)
}

val run :
  ?policy:policy ->
  ?telemetry:Telemetry.Registry.t ->
  models:model list ->
  target_cycles:int ->
  unit ->
  outcome
(** Advance every model by [target_cycles] target cycles.  Raises
    [Failure] if the network deadlocks (e.g. a channel cycle with no
    initial tokens).

    With [telemetry], registers [firesim.model.<name>.fired] counters
    (target-level, host-policy invariant), [firesim.host.<name>.stalls]
    and [firesim.host.iterations] (host-level, policy dependent), and one
    trace lane per model. *)
