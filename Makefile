.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: what CI runs on every push.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
