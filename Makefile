.PHONY: all build test check bench sampling-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: what CI runs on every push.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# CI smoke for the sampled-simulation engine: re-run each workload in
# results/sampling-reference.csv under the default sampled policy and
# fail if the estimate drifts more than 10% from the checked-in full-run
# cycle count.
sampling-smoke: build
	@tail -n +2 results/sampling-reference.csv | while IFS=, read -r kernel platform scale cycles; do \
		dune exec bin/simbridge_cli.exe -- workload $$kernel --platform $$platform \
			--scale $$scale --sample default --expect-cycles $$cycles --tolerance 0.10 \
			|| exit 1; \
	done

clean:
	dune clean
