.PHONY: all build test check bench sampling-smoke parallel-smoke perf-smoke perf-trend ledger-smoke serve-smoke serve-bench validate validate-smoke update-golden clean

# Worker domains for smoke runs (0 = auto); CI passes JOBS=2 so the
# parallel path is exercised on every push.
JOBS ?= 1

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: what CI runs on every push.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# CI smoke for the sampled-simulation engine: re-run each workload in
# results/sampling-reference.csv under the default sampled policy and
# fail if the estimate drifts more than 10% from the checked-in full-run
# cycle count.
sampling-smoke: build
	@tail -n +2 results/sampling-reference.csv | while IFS=, read -r kernel platform scale cycles; do \
		dune exec bin/simbridge_cli.exe -- workload $$kernel --platform $$platform \
			--scale $$scale --sample default --jobs $(JOBS) --expect-cycles $$cycles --tolerance 0.10 \
			|| exit 1; \
	done

# CI smoke for the Domain worker pool: fig1 regenerated with 2 worker
# domains must be byte-identical to the sequential run.
parallel-smoke: build
	@dune exec bin/simbridge_cli.exe -- run fig1 --jobs 1 > _build/parallel-smoke-seq.txt
	@dune exec bin/simbridge_cli.exe -- run fig1 --jobs 2 > _build/parallel-smoke-par.txt
	@cmp _build/parallel-smoke-seq.txt _build/parallel-smoke-par.txt \
		&& echo "parallel-smoke: OK (fig1 --jobs 2 byte-identical to --jobs 1)"

# CI smoke for the compiled-trace engine: fig1/fig2 replayed from
# compiled traces must be bit-identical to the Seq reference path.
# Runs the identity half only — the 2x host-MIPS assertion (`bench perf`)
# is skipped because shared CI runners have no stable throughput to
# gate on.  Writes BENCH_perf.json (uploaded as a CI artifact).
# Release profile: the dev profile's -opaque makes throughput numbers
# meaningless and the identity check needlessly slow.
perf-smoke:
	dune build --profile release bench/main.exe
	dune exec --profile release bench/main.exe -- perf-identity

# The CI perf-trend gate: remeasure the Seq baseline on THIS host first
# (ratio bars compared against another machine's baseline would gate on
# hardware, not code), then run the full replay gate — identity, memo
# accuracy, trace >= 2x and memo fast path >= 10x the same-host Seq
# baseline.  Writes BENCH_perf.json and a ledger run report whose
# aggregate_mips is the fast-path number `history check` trends.
# Note: this overwrites results/perf-baseline.json in the working tree;
# don't commit the remeasured copy unless refreshing the baseline is
# the point of the change.
perf-trend:
	dune build --profile release bench/main.exe
	dune exec --profile release bench/main.exe -- perf-baseline
	dune exec --profile release bench/main.exe -- perf

# CI smoke for the run ledger: a pooled fig1 run must emit a run report
# and a span-bearing Perfetto trace, two recorded runs must pass the
# regression gate, and an injected 20% MIPS drop must fail it.
ledger-smoke: build
	@rm -f _build/ledger-smoke-history.jsonl
	@dune exec bin/simbridge_cli.exe -- run fig1 --jobs 2 \
		--report _build/ledger-report-1.json --trace _build/ledger-trace.json > /dev/null
	@grep -q '"cat":"span"' _build/ledger-trace.json \
		&& echo "ledger-smoke: trace carries spans"
	@grep -q '"parent":' _build/ledger-trace.json \
		&& echo "ledger-smoke: spans carry parent ids"
	@dune exec bin/simbridge_cli.exe -- run fig1 --jobs $(JOBS) \
		--report _build/ledger-report-2.json --trace "" > /dev/null
	@dune exec bin/simbridge_cli.exe -- history record \
		--history _build/ledger-smoke-history.jsonl _build/ledger-report-1.json
	@dune exec bin/simbridge_cli.exe -- history record \
		--history _build/ledger-smoke-history.jsonl _build/ledger-report-2.json
	@dune exec bin/simbridge_cli.exe -- history show --history _build/ledger-smoke-history.jsonl
	@dune exec bin/simbridge_cli.exe -- history check --history _build/ledger-smoke-history.jsonl
	@python3 -c "import json; lines = open('_build/ledger-smoke-history.jsonl').read().splitlines(); r = json.loads(lines[-1]); r['run_id'] += '-regressed'; r['metrics']['aggregate_mips'] *= 0.8; open('_build/ledger-smoke-regressed.jsonl', 'w').write('\n'.join(lines + [json.dumps(r)]) + '\n')"
	@if dune exec bin/simbridge_cli.exe -- history check \
		--history _build/ledger-smoke-regressed.jsonl; then \
		echo "ledger-smoke: FAIL (injected 20% MIPS regression passed the gate)"; exit 1; \
	else \
		echo "ledger-smoke: OK (reports recorded, gate passes, injected regression caught)"; \
	fi

# The fidelity gate (ISSUE 5): recompute every fig1-7 cell through the
# Runner and verdict it against results/*.csv plus the transcribed paper
# expectation bands (results/paper-expectations.json).  --strict because
# the simulator is deterministic: a healthy tree is fully Exact, so even
# a within-band wobble is news.  Writes validate-report.json (uploaded
# as a CI artifact).
validate: build
	dune exec bin/simbridge_cli.exe -- validate --strict --jobs $(JOBS) --report validate-report.json \
		--run-report validate-run-report.json

# CI smoke alias: same gate, named like the other smoke steps.
validate-smoke: validate

# The single sanctioned way to refresh the golden CSVs: regenerates
# every figure, rewrites results/*.csv, and re-verifies (must end Exact).
# Commit the resulting diff together with the change that moved the
# numbers and an EXPERIMENTS.md note on why.
update-golden: build
	dune exec bin/simbridge_cli.exe -- validate --update-golden --strict --jobs $(JOBS) --report validate-report.json

clean:
	dune clean

# dune exec serialises on the build lock, so the daemon and its
# concurrent clients must run the built binary directly.
CLI := ./_build/default/bin/simbridge_cli.exe

# CI smoke for the serve daemon: boot it on a Unix socket, hit it with
# two concurrent clients (fig2 after fig1 so the cross-request trace
# cache is exercised), diff every payload against the one-shot CLI,
# verify malformed flags and empty-history handling, then SIGTERM and
# assert a clean drain (exit 0 + final run report written).
serve-smoke: build
	@rm -f _build/serve-smoke.sock _build/serve-report.json _build/serve-history.jsonl
	@if $(CLI) serve --jobs banana 2>_build/serve-usage.err; then \
		echo "serve-smoke: FAIL (--jobs banana accepted)"; exit 1; \
	else grep -qi "jobs" _build/serve-usage.err \
		&& echo "serve-smoke: garbage --jobs rejected with a usage error"; fi
	@$(CLI) history show --history _build/serve-history.jsonl \
		| grep -q "no history recorded yet" \
		&& echo "serve-smoke: empty history show exits 0 with a clear message"
	@$(CLI) history check --history _build/serve-history.jsonl; \
	STATUS=$$?; if [ $$STATUS -ne 2 ]; then \
		echo "serve-smoke: FAIL (empty-history check exited $$STATUS, want 2)"; exit 1; \
	else echo "serve-smoke: empty history check exits 2 (no data != regression)"; fi
	@$(CLI) csv fig1 --scale 0.1 > _build/serve-oracle-fig1.csv
	@$(CLI) csv fig2 --scale 0.1 > _build/serve-oracle-fig2.csv
	@$(CLI) serve --listen _build/serve-smoke.sock \
		--jobs $(JOBS) --report _build/serve-report.json --history _build/serve-history.jsonl & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 100); do [ -S _build/serve-smoke.sock ] && break; sleep 0.1; done; \
	[ -S _build/serve-smoke.sock ] \
		|| { echo "serve-smoke: FAIL (socket never appeared)"; kill $$SERVE_PID 2>/dev/null; exit 1; }; \
	$(CLI) query fig1 --scale 0.1 \
		--connect _build/serve-smoke.sock > _build/serve-got-fig1.csv & C1=$$!; \
	$(CLI) query fig2 --scale 0.1 \
		--connect _build/serve-smoke.sock > _build/serve-got-fig2.csv & C2=$$!; \
	wait $$C1 && wait $$C2 \
		|| { echo "serve-smoke: FAIL (a query client errored)"; kill -TERM $$SERVE_PID; exit 1; }; \
	cmp _build/serve-oracle-fig1.csv _build/serve-got-fig1.csv \
		|| { echo "serve-smoke: FAIL (served fig1 differs from one-shot csv)"; kill -TERM $$SERVE_PID; exit 1; }; \
	cmp _build/serve-oracle-fig2.csv _build/serve-got-fig2.csv \
		|| { echo "serve-smoke: FAIL (served fig2 differs from one-shot csv)"; kill -TERM $$SERVE_PID; exit 1; }; \
	kill -TERM $$SERVE_PID; wait $$SERVE_PID; STATUS=$$?; \
	[ $$STATUS -eq 0 ] || { echo "serve-smoke: FAIL (daemon exited $$STATUS on SIGTERM)"; exit 1; }; \
	[ -f _build/serve-report.json ] \
		|| { echo "serve-smoke: FAIL (no final run report after drain)"; exit 1; }; \
	grep -q '"serve"' _build/serve-report.json \
		|| { echo "serve-smoke: FAIL (run report carries no serve section)"; exit 1; }; \
	$(CLI) history check --history _build/serve-history.jsonl \
		|| { echo "serve-smoke: FAIL (recorded serve run fails the history gate)"; exit 1; }; \
	echo "serve-smoke: OK (two concurrent clients byte-identical to one-shot CLI; clean SIGTERM drain)"

# The serve load gate: 1000 mixed fig1-7 queries from 4 concurrent
# pipelining clients against one daemon; every payload diffed against
# the sequential oracle, and the cross-request trace-cache hit rate
# must be > 0.  Writes BENCH_serve.json (uploaded as a CI artifact).
serve-bench:
	dune build --profile release bench/main.exe
	dune exec --profile release bench/main.exe -- serve
