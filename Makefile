.PHONY: all build test check bench sampling-smoke parallel-smoke perf-smoke ledger-smoke validate validate-smoke update-golden clean

# Worker domains for smoke runs (0 = auto); CI passes JOBS=2 so the
# parallel path is exercised on every push.
JOBS ?= 1

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: what CI runs on every push.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# CI smoke for the sampled-simulation engine: re-run each workload in
# results/sampling-reference.csv under the default sampled policy and
# fail if the estimate drifts more than 10% from the checked-in full-run
# cycle count.
sampling-smoke: build
	@tail -n +2 results/sampling-reference.csv | while IFS=, read -r kernel platform scale cycles; do \
		dune exec bin/simbridge_cli.exe -- workload $$kernel --platform $$platform \
			--scale $$scale --sample default --jobs $(JOBS) --expect-cycles $$cycles --tolerance 0.10 \
			|| exit 1; \
	done

# CI smoke for the Domain worker pool: fig1 regenerated with 2 worker
# domains must be byte-identical to the sequential run.
parallel-smoke: build
	@dune exec bin/simbridge_cli.exe -- run fig1 --jobs 1 > _build/parallel-smoke-seq.txt
	@dune exec bin/simbridge_cli.exe -- run fig1 --jobs 2 > _build/parallel-smoke-par.txt
	@cmp _build/parallel-smoke-seq.txt _build/parallel-smoke-par.txt \
		&& echo "parallel-smoke: OK (fig1 --jobs 2 byte-identical to --jobs 1)"

# CI smoke for the compiled-trace engine: fig1/fig2 replayed from
# compiled traces must be bit-identical to the Seq reference path.
# Runs the identity half only — the 2x host-MIPS assertion (`bench perf`)
# is skipped because shared CI runners have no stable throughput to
# gate on.  Writes BENCH_perf.json (uploaded as a CI artifact).
# Release profile: the dev profile's -opaque makes throughput numbers
# meaningless and the identity check needlessly slow.
perf-smoke:
	dune build --profile release bench/main.exe
	dune exec --profile release bench/main.exe -- perf-identity

# CI smoke for the run ledger: a pooled fig1 run must emit a run report
# and a span-bearing Perfetto trace, two recorded runs must pass the
# regression gate, and an injected 20% MIPS drop must fail it.
ledger-smoke: build
	@rm -f _build/ledger-smoke-history.jsonl
	@dune exec bin/simbridge_cli.exe -- run fig1 --jobs 2 \
		--report _build/ledger-report-1.json --trace _build/ledger-trace.json > /dev/null
	@grep -q '"cat":"span"' _build/ledger-trace.json \
		&& echo "ledger-smoke: trace carries spans"
	@grep -q '"parent":' _build/ledger-trace.json \
		&& echo "ledger-smoke: spans carry parent ids"
	@dune exec bin/simbridge_cli.exe -- run fig1 --jobs $(JOBS) \
		--report _build/ledger-report-2.json --trace "" > /dev/null
	@dune exec bin/simbridge_cli.exe -- history record \
		--history _build/ledger-smoke-history.jsonl _build/ledger-report-1.json
	@dune exec bin/simbridge_cli.exe -- history record \
		--history _build/ledger-smoke-history.jsonl _build/ledger-report-2.json
	@dune exec bin/simbridge_cli.exe -- history show --history _build/ledger-smoke-history.jsonl
	@dune exec bin/simbridge_cli.exe -- history check --history _build/ledger-smoke-history.jsonl
	@python3 -c "import json; lines = open('_build/ledger-smoke-history.jsonl').read().splitlines(); r = json.loads(lines[-1]); r['run_id'] += '-regressed'; r['metrics']['aggregate_mips'] *= 0.8; open('_build/ledger-smoke-regressed.jsonl', 'w').write('\n'.join(lines + [json.dumps(r)]) + '\n')"
	@if dune exec bin/simbridge_cli.exe -- history check \
		--history _build/ledger-smoke-regressed.jsonl; then \
		echo "ledger-smoke: FAIL (injected 20% MIPS regression passed the gate)"; exit 1; \
	else \
		echo "ledger-smoke: OK (reports recorded, gate passes, injected regression caught)"; \
	fi

# The fidelity gate (ISSUE 5): recompute every fig1-7 cell through the
# Runner and verdict it against results/*.csv plus the transcribed paper
# expectation bands (results/paper-expectations.json).  --strict because
# the simulator is deterministic: a healthy tree is fully Exact, so even
# a within-band wobble is news.  Writes validate-report.json (uploaded
# as a CI artifact).
validate: build
	dune exec bin/simbridge_cli.exe -- validate --strict --jobs $(JOBS) --report validate-report.json \
		--run-report validate-run-report.json

# CI smoke alias: same gate, named like the other smoke steps.
validate-smoke: validate

# The single sanctioned way to refresh the golden CSVs: regenerates
# every figure, rewrites results/*.csv, and re-verifies (must end Exact).
# Commit the resulting diff together with the change that moved the
# numbers and an EXPERIMENTS.md note on why.
update-golden: build
	dune exec bin/simbridge_cli.exe -- validate --update-golden --strict --jobs $(JOBS) --report validate-report.json

clean:
	dune clean
