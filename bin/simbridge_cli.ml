(* simbridge: command-line driver for the simulation-vs-silicon study.

   Subcommands:
     platforms            list the platform catalog
     experiments          list reproducible tables/figures
     run EXPERIMENT       regenerate one table/figure (or "all")
     csv FIGURE           emit a figure's data as CSV
     workload NAME        run one workload on one platform and print details
     tune TARGET          rank candidate models against a silicon reference
     validate             fidelity gate: recompute fig1-7 vs golden CSVs +
                          paper expectation bands
     history              run ledger: record reports, trend tables,
                          regression check

   Observability: run/csv/workload/validate emit a machine-readable
   run-report.json (lib/ledger) and `run` also writes a span-annotated
   Chrome trace; all human notices about those files go to stderr so
   stdout stays byte-identical across job counts (the parallel smoke
   compares it).

   Service mode (lib/serve):
     serve                persistent daemon answering NDJSON queries over
                          a Unix/TCP socket, batching across clients
     query                one query against a running daemon; stdout is
                          byte-identical to the one-shot command *)

open Cmdliner

let num_j n = Validate.Jsonx.Num (float_of_int n)

let write_text path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

(* --jobs: worker-domain count for grid experiments (0 = auto).  Set once
   at startup, before any pool runs — the pool default, like the Rng
   global seed, is read-only thereafter. *)
let setup_jobs jobs =
  if jobs < 0 then begin
    Format.eprintf "--jobs must be >= 0 (0 = auto, 1 = sequential), got %d@." jobs;
    exit 1
  end;
  Parallel.Pool.set_default_jobs jobs

let list_platforms () =
  List.iter
    (fun (c : Platform.Config.t) ->
      Format.printf "%-22s %s@." c.Platform.Config.name c.Platform.Config.description)
    Platform.Catalog.all

let list_experiments () =
  List.iter
    (fun (id, descr, _) -> Format.printf "%-12s %s@." id descr)
    Simbridge.Experiments.all

(* Emit the run report (and optionally the Chrome trace) for a finished
   invocation.  Notices go to stderr: stdout carries only the
   experiment's own rendering, byte-identical across job counts. *)
let emit_ledger ?estimate ?fidelity ?(exit_status = 0) ~command ~config ~reg ~wall_s ~report_path
    ~trace_path () =
  if report_path <> "" then begin
    let report =
      Ledger.Run_report.build ~wall_s ?estimate ?fidelity ~exit_status ~command ~config
        ~telemetry:reg ()
    in
    Ledger.Run_report.write ~path:report_path report;
    Format.eprintf "run report    : %s (%s)@." report_path (Ledger.Run_report.summary_line report)
  end;
  if trace_path <> "" then begin
    write_text trace_path (Telemetry.Export.chrome_trace reg);
    Format.eprintf "run trace     : %s (load in ui.perfetto.dev)@." trace_path
  end

let run_experiment verbose seed jobs trace_capacity report_path trace_path id =
  setup_logs verbose;
  Util.Rng.set_global_seed seed;
  setup_jobs jobs;
  let observing = report_path <> "" || trace_path <> "" in
  let reg =
    if observing then Telemetry.Registry.create ~trace_capacity () else Telemetry.Registry.disabled
  in
  Ledger.Progress.install_if_tty ();
  let t0 = Unix.gettimeofday () in
  Telemetry.Span.root ~name:("run:" ^ id) reg (fun () ->
      if id = "all" then
        List.iter
          (fun (id, _, render) ->
            Format.printf "=== %s ===@.%s@." id (render reg))
          Simbridge.Experiments.all
      else
        match List.find_opt (fun (i, _, _) -> i = id) Simbridge.Experiments.all with
        | Some (_, _, render) -> print_string (render reg)
        | None ->
          Format.eprintf "unknown experiment %s; try `simbridge experiments`@." id;
          exit 1);
  Ledger.Progress.uninstall ();
  let wall_s = Unix.gettimeofday () -. t0 in
  emit_ledger ~command:("run " ^ id)
    ~config:
      [
        ("experiment", Validate.Jsonx.Str id);
        ("seed", num_j seed);
        ("jobs", num_j jobs);
        ("trace_capacity", num_j trace_capacity);
      ]
    ~reg ~wall_s ~report_path ~trace_path ()

let csv_figure jobs trace_capacity report_path engine id scale =
  setup_jobs jobs;
  let reg =
    if report_path <> "" then Telemetry.Registry.create ~trace_capacity ()
    else Telemetry.Registry.disabled
  in
  Ledger.Progress.install_if_tty ();
  let t0 = Unix.gettimeofday () in
  let fig =
    Telemetry.Span.root ~name:("csv:" ^ id) reg (fun () ->
        Simbridge.Experiments.figure_by_id ~scale ~telemetry:reg ~engine id)
  in
  Ledger.Progress.uninstall ();
  let wall_s = Unix.gettimeofday () -. t0 in
  match fig with
  | Some f ->
    print_string (Simbridge.Experiments.figure_csv f);
    emit_ledger ~command:("csv " ^ id)
      ~config:
        [
          ("figure", Validate.Jsonx.Str id);
          ("scale", Validate.Jsonx.Num scale);
          ("jobs", num_j jobs);
          ("memoize", Validate.Jsonx.Bool (engine = `Memo));
          ("trace_capacity", num_j trace_capacity);
        ]
      ~reg ~wall_s ~report_path ~trace_path:"" ()
  | None ->
    Format.eprintf "unknown figure %s (%s)@." id
      (String.concat ", " Simbridge.Experiments.figure_ids);
    exit 1

let print_result (r : Platform.Soc.result) =
  Format.printf "platform      : %s@." r.platform;
  Format.printf "ranks         : %d@." r.ranks;
  Format.printf "cycles        : %d@." r.cycles;
  Format.printf "target time   : %.6f s@." r.seconds;
  Format.printf "instructions  : %d@." r.instructions;
  Format.printf "IPC (total)   : %.3f@."
    (float_of_int r.instructions /. float_of_int (max 1 r.cycles));
  Format.printf "L1D miss rate : %.4f (%d/%d)@."
    (float_of_int r.l1d_misses /. float_of_int (max 1 r.l1d_accesses))
    r.l1d_misses r.l1d_accesses;
  Format.printf "L2 miss rate  : %.4f (%d/%d)@."
    (float_of_int r.l2_misses /. float_of_int (max 1 r.l2_accesses))
    r.l2_misses r.l2_accesses;
  Format.printf "DRAM requests : %d@." r.dram_requests;
  match r.comm with
  | None -> ()
  | Some c ->
    Format.printf "MPI messages  : %d (%d bytes), %d collectives@." c.Smpi.messages c.Smpi.bytes_moved
      c.Smpi.collectives

(* Smoke check (--expect-cycles): compare the run's estimated cycles to a
   checked-in full-run reference and fail loudly when they diverge — the
   CI `sampling-smoke` step drives this. *)
let smoke_check ~tolerance ~reference (est : Sampling.Estimate.t) =
  let c = Sampling.Accuracy.compare ~full_cycles:reference est in
  if Sampling.Accuracy.within_tolerance ~tol:tolerance c then
    Format.printf "smoke check   : OK, %.2f%% from reference %d (tolerance %.0f%%)@."
      (100.0 *. c.Sampling.Accuracy.rel_err) reference (100.0 *. tolerance)
  else begin
    Format.eprintf "smoke check   : FAIL, estimate %d vs reference %d is %.2f%% off (> %.0f%%)@."
      est.Sampling.Estimate.est_cycles reference
      (100.0 *. c.Sampling.Accuracy.rel_err)
      (100.0 *. tolerance);
    exit 1
  end

let run_workload verbose name platform ranks scale telemetry_dir seed jobs trace_capacity
    report_path sample budget engine expect_cycles tolerance =
  setup_logs verbose;
  Util.Rng.set_global_seed seed;
  setup_jobs jobs;
  let policy =
    match sample with
    | None -> Sampling.Policy.Full
    | Some spec -> (
      match Sampling.Policy.of_string spec with
      | Ok p -> p
      | Error e ->
        Format.eprintf "bad --sample spec %S: %s@." spec e;
        exit 1)
  in
  if engine = `Memo && (policy <> Sampling.Policy.Full || budget <> None) then begin
    Format.eprintf
      "--memoize is a full-stream fast path; combine it with neither --sample nor --budget@.";
    exit 1
  end;
  let config =
    try Platform.Catalog.find platform
    with Not_found ->
      Format.eprintf "unknown platform %s; try `simbridge platforms`@." platform;
      exit 1
  in
  (* Telemetry sidecars: a live registry when --telemetry DIR was given
     or a run report is wanted, the zero-cost no-op sink otherwise. *)
  let reg =
    match telemetry_dir with
    | Some "" ->
      Format.eprintf "--telemetry requires a non-empty directory@.";
      exit 1
    | Some _ -> Telemetry.Registry.create ~trace_capacity ()
    | None ->
      if report_path <> "" then Telemetry.Registry.create ~trace_capacity ()
      else Telemetry.Registry.disabled
  in
  let t0 = Unix.gettimeofday () in
  let estimate = ref None in
  let kernel = try Some (Workloads.Microbench.find name) with Not_found -> None in
  Telemetry.Span.root ~name:("workload:" ^ name) reg (fun () ->
      match kernel with
      | Some k ->
        if engine = `Memo then Simbridge.Runner.memo_stats_clear ();
        let t =
          Simbridge.Runner.run_kernel_timed ~scale ~telemetry:reg ~policy ?budget ~engine config k
        in
        estimate := Some t.Simbridge.Runner.estimate;
        print_result t.Simbridge.Runner.result;
        Format.printf "host wall     : setup %.4f s + measure %.4f s@." t.Simbridge.Runner.setup_wall_s
          t.Simbridge.Runner.measure_wall_s;
        if engine = `Memo then begin
          let m = Simbridge.Runner.memo_stats () in
          let total = m.Simbridge.Runner.m_ff_insns + m.Simbridge.Runner.m_measured_insns in
          let ff_pct =
            if total = 0 then 0.0
            else 100.0 *. float_of_int m.Simbridge.Runner.m_ff_insns /. float_of_int total
          in
          Format.printf "memoized      : %d block instances, %d memo hits, %.1f%% insns \
                         fast-forwarded, bound +/-%.0f cycles@."
            m.Simbridge.Runner.m_instances m.Simbridge.Runner.m_hits ff_pct
            t.Simbridge.Runner.estimate.Sampling.Estimate.ci95_cycles
        end;
        (match policy with
        | Sampling.Policy.Full -> ()
        | Sampling.Policy.Sampled _ ->
          List.iter (fun l -> Format.printf "%s@." l) (Sampling.Report.lines t.Simbridge.Runner.estimate));
        (match expect_cycles with
        | None -> ()
        | Some reference -> smoke_check ~tolerance ~reference t.Simbridge.Runner.estimate)
      | None ->
        (match (policy, expect_cycles) with
        | Sampling.Policy.Sampled _, _ | _, Some _ ->
          Format.eprintf "--sample/--expect-cycles apply to microbench kernels only@.";
          exit 1
        | Sampling.Policy.Full, None -> ());
        if engine = `Memo then begin
          Format.eprintf "--memoize applies to microbench kernels only@.";
          exit 1
        end;
        let apps =
          Workloads.Npb.all @ [ Workloads.Ume.app; Workloads.Lammps.lj; Workloads.Lammps.chain ]
        in
        (match List.find_opt (fun (a : Workloads.Workload.app) -> a.app_name = name) apps with
        | Some app ->
          let r = Simbridge.Runner.run_app ~scale ~telemetry:reg ~ranks config app in
          print_result r
        | None ->
          Format.eprintf
            "unknown workload %s (microbench name, cg/ep/is/mg, ume, lammps-lj, lammps-chain)@." name;
          exit 1));
  let wall_s = Unix.gettimeofday () -. t0 in
  (match telemetry_dir with
  | None -> ()
  | Some dir ->
    (try Telemetry.Export.write reg ~dir
     with Sys_error msg ->
       Format.eprintf "cannot write telemetry to %s: %s@." dir msg;
       exit 1);
    Format.printf "telemetry     : %s/telemetry.txt, telemetry.csv, trace.json@." dir);
  emit_ledger ?estimate:!estimate
    ~command:(Printf.sprintf "workload %s @ %s" name platform)
    ~config:
      [
        ("workload", Validate.Jsonx.Str name);
        ("platform", Validate.Jsonx.Str platform);
        ("ranks", num_j ranks);
        ("scale", Validate.Jsonx.Num scale);
        ("seed", num_j seed);
        ("jobs", num_j jobs);
        ( "sample",
          match sample with None -> Validate.Jsonx.Null | Some s -> Validate.Jsonx.Str s );
        ("memoize", Validate.Jsonx.Bool (engine = `Memo));
        ("trace_capacity", num_j trace_capacity);
      ]
    ~reg ~wall_s ~report_path ~trace_path:"" ()

let run_compare name ranks scale =
  (* Side-by-side sim-vs-silicon comparison for both platform pairs. *)
  let kernel = try Some (Workloads.Microbench.find name) with Not_found -> None in
  let apps =
    Workloads.Npb.all @ [ Workloads.Ume.app; Workloads.Lammps.lj; Workloads.Lammps.chain ]
  in
  let pairs =
    [
      ("banana-pi", Platform.Catalog.banana_pi_sim, Platform.Catalog.banana_pi_hw);
      ("milk-v", Platform.Catalog.milkv_sim, Platform.Catalog.milkv_hw);
    ]
  in
  let t = Report.Table.create ~headers:[ "Pair"; "t_sim (ms)"; "t_hw (ms)"; "relative" ] in
  List.iter
    (fun (label, sim, hw) ->
      let s, h =
        match kernel with
        | Some k ->
          (Simbridge.Runner.run_kernel ~scale sim k, Simbridge.Runner.run_kernel ~scale hw k)
        | None -> (
          match List.find_opt (fun (a : Workloads.Workload.app) -> a.app_name = name) apps with
          | Some app ->
            ( Simbridge.Runner.run_app ~scale ~codegen:Workloads.Codegen.gcc_9_4 ~ranks sim app,
              Simbridge.Runner.run_app ~scale ~codegen:Workloads.Codegen.gcc_13_2 ~ranks hw app )
          | None ->
            Format.eprintf "unknown workload %s@." name;
            exit 1)
      in
      Report.Table.add_row t
        [
          label;
          Printf.sprintf "%.4f" (s.Platform.Soc.seconds *. 1e3);
          Printf.sprintf "%.4f" (h.Platform.Soc.seconds *. 1e3);
          Printf.sprintf "%.3f" (Simbridge.Runner.relative_speedup ~sim:s ~hw:h);
        ])
    pairs;
  print_string (Report.Table.render t)

let run_grid target scale =
  let base, hw =
    match target with
    | "banana-pi" -> (Platform.Catalog.banana_pi_sim, Platform.Catalog.banana_pi_hw)
    | "milkv" -> (Platform.Catalog.milkv_sim, Platform.Catalog.milkv_hw)
    | _ ->
      Format.eprintf "unknown grid target %s (banana-pi | milkv)@." target;
      exit 1
  in
  let kernels = List.map Workloads.Microbench.find [ "EI"; "ED1"; "MD"; "ML2"; "MM"; "Cca"; "CCh" ] in
  let scores =
    Simbridge.Tuning.grid_search ~scale ~kernels ~base ~hw
      ~dimensions:
        [
          Simbridge.Tuning.dim_frequency [ 1.0; 1.5; 2.0 ];
          Simbridge.Tuning.dim_dram_ctrl [ 0.5; 1.0 ];
          Simbridge.Tuning.dim_l2_latency [ 0.75; 1.0 ];
        ]
      ()
  in
  print_string (Simbridge.Tuning.render_scores scores)

let dump_raw jobs dir scale =
  setup_jobs jobs;
  (* The paper publishes its raw runtime data; this writes ours. *)
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name (fig : Simbridge.Experiments.figure) =
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (Simbridge.Experiments.figure_csv fig);
    close_out oc;
    Format.printf "wrote %s@." path
  in
  write "fig1" (Simbridge.Experiments.fig1 ~scale ());
  write "fig2" (Simbridge.Experiments.fig2 ~scale ());
  List.iteri (fun i f -> write (Printf.sprintf "fig3%c" (Char.chr (97 + i))) f)
    (Simbridge.Experiments.fig3 ~scale ());
  List.iteri (fun i f -> write (Printf.sprintf "fig4%c" (Char.chr (97 + i))) f)
    (Simbridge.Experiments.fig4 ~scale ());
  write "fig5" (Simbridge.Experiments.fig5 ~scale ());
  write "fig6" (Simbridge.Experiments.fig6 ~scale ());
  write "fig7" (Simbridge.Experiments.fig7 ~scale ())

(* ------------------------------------------------------------ validate *)

(* The fidelity gate (ISSUE 5): recompute figures through the Runner,
   verdict every cell against the golden CSVs, evaluate the transcribed
   paper expectations, and write the machine-readable report.  Exit 0
   only when nothing drifted; --strict also rejects Within_band (a
   healthy deterministic tree is fully Exact).  --update-golden is the
   single sanctioned way to refresh results/*.csv. *)
let run_validate verbose seed jobs trace_capacity figures update_golden strict report_path
    run_report_path results_dir expectations_path telemetry_dir =
  setup_logs verbose;
  Util.Rng.set_global_seed seed;
  setup_jobs jobs;
  let ids =
    match Validate.Fidelity.expand_spec figures with
    | Ok ids -> ids
    | Error msg ->
      Format.eprintf "bad --figures spec: %s@." msg;
      exit 1
  in
  let expectations =
    match Validate.Expectations.load expectations_path with
    | Ok e -> e
    | Error msg ->
      Format.eprintf "cannot load expectations %s: %s@." expectations_path msg;
      exit 1
  in
  let reg =
    match telemetry_dir with
    | Some "" ->
      Format.eprintf "--telemetry requires a non-empty directory@.";
      exit 1
    | Some _ -> Telemetry.Registry.create ~trace_capacity ()
    | None ->
      if run_report_path <> "" then Telemetry.Registry.create ~trace_capacity ()
      else Telemetry.Registry.disabled
  in
  Ledger.Progress.install_if_tty ();
  let t0 = Unix.gettimeofday () in
  let report =
    Telemetry.Span.root ~name:"validate" reg (fun () ->
        Validate.Fidelity.run ~telemetry:reg ~update_golden ~results_dir ~expectations ids)
  in
  Ledger.Progress.uninstall ();
  let wall_s = Unix.gettimeofday () -. t0 in
  if update_golden then
    List.iter
      (fun (fr : Validate.Fidelity.figure_report) ->
        Format.printf "updated %s@." fr.Validate.Fidelity.fr_golden)
      report.Validate.Fidelity.r_figures;
  print_string (Validate.Fidelity.render ~strict report);
  (match report_path with
  | "" -> ()
  | path ->
    let oc = open_out path in
    output_string oc (Validate.Jsonx.to_string (Validate.Fidelity.to_json ~strict report));
    output_string oc "\n";
    close_out oc;
    Format.printf "report        : %s@." path);
  (match telemetry_dir with
  | None -> ()
  | Some dir ->
    (try Telemetry.Export.write reg ~dir
     with Sys_error msg ->
       Format.eprintf "cannot write telemetry to %s: %s@." dir msg;
       exit 1);
    Format.printf "telemetry     : %s/telemetry.txt, telemetry.csv, trace.json@." dir);
  let ok = Validate.Fidelity.ok ~strict report in
  emit_ledger ~fidelity:(report, strict)
    ~exit_status:(if ok then 0 else 1)
    ~command:("validate " ^ figures)
    ~config:
      [
        ("figures", Validate.Jsonx.Str figures);
        ("strict", Validate.Jsonx.Bool strict);
        ("update_golden", Validate.Jsonx.Bool update_golden);
        ("seed", num_j seed);
        ("jobs", num_j jobs);
        ("trace_capacity", num_j trace_capacity);
      ]
    ~reg ~wall_s ~report_path:run_report_path ~trace_path:"" ();
  if not ok then exit 1

let run_tune target scale =
  let candidates, hw =
    match target with
    | "milkv" ->
      ( [
          Platform.Catalog.boom_small;
          Platform.Catalog.boom_medium;
          Platform.Catalog.boom_large;
          Platform.Catalog.milkv_sim;
        ],
        Platform.Catalog.milkv_hw )
    | "banana-pi" ->
      ( Platform.Catalog.rocket1 :: Platform.Catalog.rocket2 :: Platform.Catalog.cva6
        :: Platform.Catalog.banana_pi_sim
        :: Simbridge.Tuning.sweep_frequency ~base:Platform.Catalog.banana_pi_sim
             ~multipliers:[ 1.5; 2.0 ],
        Platform.Catalog.banana_pi_hw )
    | _ ->
      Format.eprintf "unknown tuning target %s (milkv | banana-pi)@." target;
      exit 1
  in
  let scores = Simbridge.Tuning.rank_candidates ~scale ~candidates ~hw () in
  print_string (Simbridge.Tuning.render_scores scores)

(* ------------------------------------------------------------- history *)

let load_history path =
  match Ledger.History.load ~path with
  | Ok entries -> entries
  | Error msg ->
    Format.eprintf "cannot load history %s: %s@." path msg;
    exit 2

let history_record path report_file =
  match Validate.Jsonx.parse_file report_file with
  | Error msg ->
    Format.eprintf "cannot parse %s: %s@." report_file msg;
    exit 2
  | Ok json -> (
    match Ledger.History.entry_of_report json with
    | Error msg ->
      Format.eprintf "%s: %s@." report_file msg;
      exit 2
    | Ok e ->
      Ledger.History.append ~path json;
      Format.printf "recorded %s (%s) -> %s@." e.Ledger.History.h_run_id
        e.Ledger.History.h_command path)

(* Empty-ledger contract (documented in the subcommand docs): a missing
   or empty history file is a normal state for `show` (exit 0, clear
   pointer at how to record) but means `check` has nothing to gate on
   (exit 2 — distinct from exit 1, which is a real regression). *)
let no_history_message path =
  Format.sprintf
    "no history recorded yet (%s is missing or empty); run an experiment and `simbridge history \
     record run-report.json` to start the ledger"
    path

let history_show path csv last =
  let entries = load_history path in
  let entries =
    if last > 0 && List.length entries > last then
      List.filteri (fun i _ -> i >= List.length entries - last) entries
    else entries
  in
  if entries = [] then Format.printf "%s@." (no_history_message path)
  else print_string (if csv then Ledger.History.to_csv entries else Ledger.History.render entries)

let history_compare path id_a id_b =
  let entries = load_history path in
  let find id =
    let matches e =
      e.Ledger.History.h_run_id = id
      || String.length id < String.length e.Ledger.History.h_run_id
         && String.sub e.Ledger.History.h_run_id 0 (String.length id) = id
    in
    (* Prefer the newest match so a date prefix picks the latest run. *)
    match List.find_opt matches (List.rev entries) with
    | Some e -> e
    | None ->
      Format.eprintf "no history entry matches run id %S in %s@." id path;
      exit 2
  in
  match (id_a, id_b) with
  | Some a, Some b -> print_string (Ledger.History.compare_ (find a) (find b))
  | None, None -> (
    match List.rev entries with
    | b :: a :: _ -> print_string (Ledger.History.compare_ a b)
    | _ ->
      Format.eprintf "history %s holds %d entr%s; need two to compare@." path (List.length entries)
        (if List.length entries = 1 then "y" else "ies");
      exit 2)
  | _ ->
    Format.eprintf "give two run ids (or none for the last two)@.";
    exit 2

let history_check path mips_drop =
  let entries = load_history path in
  if entries = [] then begin
    Format.printf "%s@." (no_history_message path);
    exit 2
  end;
  let r = Ledger.History.check ~mips_drop entries in
  List.iter (fun l -> Format.printf "%s@." l) r.Ledger.History.ck_lines;
  if not r.Ledger.History.ck_ok then begin
    Format.eprintf "history check : FAIL (%s)@." path;
    exit 1
  end;
  Format.printf "history check : OK (%d entr%s)@." (List.length entries)
    (if List.length entries = 1 then "y" else "ies")

(* --------------------------------------------------------------- serve *)

let parse_addr flag s =
  match Serve.Protocol.addr_of_string s with
  | Ok a -> a
  | Error msg ->
    Format.eprintf "bad %s %S: %s@." flag s msg;
    exit 1

(* The daemon: one process-lifetime trace cache, one engine, one listen
   socket.  SIGTERM/SIGINT (and a client `shutdown` frame) drain
   in-flight requests, refuse new ones, then flush the ledger — the
   final run report covers every request served. *)
let run_serve verbose seed jobs trace_capacity report_path trace_path history_path listen
    response_cache trace_cache_mib max_batch engine =
  setup_logs verbose;
  Util.Rng.set_global_seed seed;
  setup_jobs jobs;
  if trace_cache_mib > 0 then
    Simbridge.Runner.set_trace_cache_limits ~words:(trace_cache_mib * 1024 * 1024 / 8) ();
  let addr = parse_addr "--listen" listen in
  let observing = report_path <> "" || trace_path <> "" || history_path <> "" in
  let reg =
    if observing then Telemetry.Registry.create ~trace_capacity () else Telemetry.Registry.disabled
  in
  let t0 = Unix.gettimeofday () in
  let srv =
    try
      Serve.Server.create ~jobs ~engine ~response_cache_capacity:response_cache ~max_batch
        ~telemetry:reg addr
    with Unix.Unix_error (e, _, _) ->
      Format.eprintf "cannot listen on %s: %s@."
        (Serve.Protocol.addr_to_string addr)
        (Unix.error_message e);
      exit 1
  in
  let on_signal _ = Serve.Server.stop srv in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Format.eprintf "serving on %s (jobs=%d, response cache=%d, batch<=%d%s); SIGTERM drains@."
    (Serve.Protocol.addr_to_string addr)
    jobs response_cache max_batch
    (if engine = `Memo then ", memoize" else "");
  (* The root span wraps the whole service lifetime; the registry is
     written by the main thread only here (before the dispatcher starts)
     and after [run] returns (all service threads joined). *)
  Telemetry.Span.root ~name:"serve" reg (fun () -> Serve.Server.run srv);
  let wall_s = Unix.gettimeofday () -. t0 in
  let served = Serve.Engine.requests_served (Serve.Server.engine srv) in
  Format.eprintf "drained after %d request%s in %.1f s@." served
    (if served = 1 then "" else "s")
    wall_s;
  if observing then begin
    let report =
      Ledger.Run_report.build ~wall_s ~exit_status:0 ~command:"serve"
        ~config:
          [
            ("listen", Validate.Jsonx.Str (Serve.Protocol.addr_to_string addr));
            ("seed", num_j seed);
            ("jobs", num_j jobs);
            ("trace_capacity", num_j trace_capacity);
            ("response_cache", num_j response_cache);
            ("max_batch", num_j max_batch);
            ("memoize", Validate.Jsonx.Bool (engine = `Memo));
          ]
        ~extra:[ ("serve", Serve.Engine.stats_json (Serve.Server.engine srv)) ]
        ~telemetry:reg ()
    in
    if report_path <> "" then begin
      Ledger.Run_report.write ~path:report_path report;
      Format.eprintf "run report    : %s (%s)@." report_path
        (Ledger.Run_report.summary_line report)
    end;
    if trace_path <> "" then begin
      write_text trace_path (Telemetry.Export.chrome_trace reg);
      Format.eprintf "run trace     : %s (load in ui.perfetto.dev)@." trace_path
    end;
    if history_path <> "" then begin
      Ledger.History.append ~path:history_path report;
      Format.eprintf "history       : recorded in %s@." history_path
    end
  end

let run_query connect figure scale render cell ping stats shutdown show_report =
  let addr = parse_addr "--connect" connect in
  let usage_error msg =
    Format.eprintf "%s@." msg;
    exit 1
  in
  let op =
    if ping then Serve.Protocol.Ping
    else if stats then Serve.Protocol.Stats
    else if shutdown then Serve.Protocol.Shutdown
    else
      match (cell, figure) with
      | Some spec, None -> (
        match String.split_on_char '/' spec with
        | [ platform; kernel ] when platform <> "" && kernel <> "" ->
          Serve.Protocol.(Run (Cell { platform; kernel; scale }))
        | _ -> usage_error (Printf.sprintf "--cell wants PLATFORM/KERNEL, got %S" spec))
      | None, Some figure ->
        Serve.Protocol.(Run (Figure { fmt = (if render then `Render else `Csv); figure; scale }))
      | Some _, Some _ -> usage_error "give either FIGURE or --cell, not both"
      | None, None -> usage_error "nothing to ask: give FIGURE, --cell, --ping, --stats, or --shutdown"
  in
  let client =
    try Serve.Client.connect addr
    with Unix.Unix_error (e, _, _) ->
      Format.eprintf "cannot connect to %s: %s (is `simbridge serve` running?)@."
        (Serve.Protocol.addr_to_string addr)
        (Unix.error_message e);
      exit 1
  in
  let finish code =
    Serve.Client.close client;
    exit code
  in
  match Serve.Client.rpc client Serve.Protocol.{ rq_id = "cli"; rq_op = op } with
  | Error msg ->
    Format.eprintf "query failed: %s@." msg;
    finish 1
  | Ok { Serve.Protocol.rs_result = Error msg; _ } ->
    Format.eprintf "server error: %s@." msg;
    finish 1
  | Ok { Serve.Protocol.rs_result = Ok (payload, report); _ } ->
    (* payload only on stdout: `query FIG` diffs clean against `csv FIG`.
       Figure/cell payloads are newline-terminated already; the inline
       ops ("pong", "draining") are not, so terminate the line here. *)
    print_string payload;
    if payload <> "" && payload.[String.length payload - 1] <> '\n' then print_newline ();
    if show_report then
      Format.eprintf "%s@." (Validate.Jsonx.to_string ~indent:2 report);
    finish 0

(* ------------------------------------------------------------------ cli *)

(* Shared validated integer convs: every command parses --jobs and
   --trace-capacity (and serve's sizing flags) through these, so
   negatives and garbage die at parse time with one uniform usage error
   — cmdliner prefixes it with the flag name, e.g.
   "option '--jobs': expected a non-negative integer, got '-3'". *)
let nonneg_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ | None -> Error (`Msg (Printf.sprintf "expected a non-negative integer, got '%s'" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None -> Error (`Msg (Printf.sprintf "expected a positive integer, got '%s'" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Workload size multiplier (default 1.0).")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log each simulation run.")

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ]
        ~doc:
          "Global seed override: re-keys every baked-in workload RNG stream deterministically. 0 \
           (default) keeps the historical fixed-seed streams.")

let jobs_arg =
  Arg.(
    value & opt nonneg_int 0
    & info [ "jobs"; "j" ]
        ~doc:
          "Worker domains for grid experiments: $(b,0) (default) = auto \
           (Domain.recommended_domain_count), $(b,1) = sequential in-process, $(b,N) = up to N \
           concurrent simulation cells. Output is bit-identical for every value.")

let trace_capacity_arg =
  Arg.(
    value & opt nonneg_int 65536
    & info [ "trace-capacity" ]
        ~doc:
          "Telemetry trace-ring capacity in events (default 65536). When the ring overflows the \
           oldest events are dropped and the drop count is reported; raise this for complete \
           traces of large grids."
        ~docv:"EVENTS")

let report_arg =
  Arg.(
    value & opt string "run-report.json"
    & info [ "report" ]
        ~doc:"Write the machine-readable run report to $(docv) (empty to skip)."
        ~docv:"FILE")

let memoize_arg =
  let engine_conv = Arg.enum [ ("on", (`Memo : Simbridge.Runner.engine)); ("off", `Trace) ] in
  Arg.(
    value
    & opt ~vopt:(`Memo : Simbridge.Runner.engine) engine_conv `Trace
    & info [ "memoize" ]
        ~doc:
          "Block-memoized fast path: $(b,--memoize) (or $(b,--memoize=on)) replays repeated basic \
           blocks from a per-run cost table, fast-forwarding the pipeline and carrying an \
           explicit cycle error bound. $(b,--memoize=off) (the default) keeps the bit-exact \
           full-fidelity replay engine. Microbench kernels and figures only; incompatible with \
           --sample/--budget."
        ~docv:"on|off")

let platforms_cmd =
  Cmd.v (Cmd.info "platforms" ~doc:"List the platform catalog")
    Term.(const list_platforms $ const ())

let experiments_cmd =
  Cmd.v (Cmd.info "experiments" ~doc:"List reproducible tables and figures")
    Term.(const list_experiments $ const ())

let run_cmd =
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT") in
  let trace =
    Arg.(
      value & opt string "run-trace.json"
      & info [ "trace" ]
          ~doc:
            "Write the span-annotated Chrome/Perfetto trace to $(docv) (empty to skip). Spans \
             carry parent ids, worker lanes, queue waits, and trace-cache hit/miss annotations."
          ~docv:"FILE")
  in
  Cmd.v (Cmd.info "run" ~doc:"Regenerate a table or figure (or 'all')")
    Term.(
      const run_experiment $ verbose_arg $ seed_arg $ jobs_arg $ trace_capacity_arg $ report_arg
      $ trace $ id)

let csv_cmd =
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE") in
  Cmd.v (Cmd.info "csv" ~doc:"Emit a figure's data as CSV")
    Term.(
      const csv_figure $ jobs_arg $ trace_capacity_arg $ report_arg $ memoize_arg $ id $ scale_arg)

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ]
        ~doc:
          "Write run telemetry sidecars (plain-text report, CSV, Chrome trace JSON) into $(docv)."
        ~docv:"DIR")

let workload_cmd =
  let wname = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let platform =
    Arg.(value & opt string "banana-pi-sim" & info [ "platform"; "p" ] ~doc:"Platform name.")
  in
  let ranks = Arg.(value & opt int 1 & info [ "ranks"; "n" ] ~doc:"MPI ranks (apps only).") in
  let sample =
    Arg.(
      value
      & opt (some string) None
      & info [ "sample" ]
          ~doc:
            "Sampling policy for microbench kernels: $(b,full), $(b,default), or \
             $(b,interval=N,detail=N,warmup=N) (any subset of keys). Prints the error-bounded \
             estimate breakdown alongside the result."
          ~docv:"SPEC")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ]
          ~doc:
            "Stop traversing the measured stream after $(docv) instructions and extrapolate from \
             the intervals seen so far (sampled runs only)."
          ~docv:"INSNS")
  in
  let expect_cycles =
    Arg.(
      value
      & opt (some int) None
      & info [ "expect-cycles" ]
          ~doc:
            "Smoke check: exit nonzero unless the run's (estimated) cycle count is within \
             $(b,--tolerance) of $(docv) — used by CI against a checked-in full-run reference."
          ~docv:"CYCLES")
  in
  let tolerance =
    Arg.(
      value & opt float 0.10
      & info [ "tolerance" ] ~doc:"Relative tolerance for --expect-cycles (default 0.10).")
  in
  Cmd.v (Cmd.info "workload" ~doc:"Run one workload on one platform")
    Term.(
      const run_workload $ verbose_arg $ wname $ platform $ ranks $ scale_arg $ telemetry_arg
      $ seed_arg $ jobs_arg $ trace_capacity_arg $ report_arg $ sample $ budget $ memoize_arg
      $ expect_cycles $ tolerance)

let tune_cmd =
  let target = Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET") in
  Cmd.v (Cmd.info "tune" ~doc:"Rank candidate models against a silicon reference")
    Term.(const run_tune $ target $ scale_arg)

let compare_cmd =
  let wname = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let ranks = Arg.(value & opt int 1 & info [ "ranks"; "n" ] ~doc:"MPI ranks (apps only).") in
  Cmd.v (Cmd.info "compare" ~doc:"Run a workload on both platform pairs and report relative speedups")
    Term.(const run_compare $ wname $ ranks $ scale_arg)

let grid_cmd =
  let target = Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET") in
  Cmd.v
    (Cmd.info "grid" ~doc:"Auto-tune a simulation model against a silicon reference (grid search)")
    Term.(const run_grid $ target $ scale_arg)

let validate_cmd =
  let figures =
    Arg.(
      value & opt string "all"
      & info [ "figures" ]
          ~doc:
            "Comma-separated figures to validate: numbers ($(b,1,2)), ids ($(b,fig4b)), or \
             $(b,all) (default). $(b,3)/$(b,4) expand to both panels."
          ~docv:"LIST")
  in
  let update_golden =
    Arg.(
      value & flag
      & info [ "update-golden" ]
          ~doc:
            "Rewrite the selected golden CSVs under --results from this run, then re-verify. The \
             single sanctioned way to refresh results/*.csv - golden churn stays an explicit, \
             reviewable diff.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Also fail on $(b,Within_band) cells: the simulator is deterministic, so a healthy \
             tree is fully $(b,Exact). CI runs this form.")
  in
  let report =
    Arg.(
      value & opt string "validate-report.json"
      & info [ "report" ]
          ~doc:"Write the machine-readable JSON fidelity report to $(docv) (empty to skip)."
          ~docv:"FILE")
  in
  let results_dir =
    Arg.(
      value & opt string "results"
      & info [ "results" ] ~doc:"Directory holding the golden CSVs." ~docv:"DIR")
  in
  let expectations =
    Arg.(
      value & opt string "results/paper-expectations.json"
      & info [ "expectations" ] ~doc:"Paper expectation bands/shapes JSON." ~docv:"FILE")
  in
  let run_report =
    Arg.(
      value & opt string "run-report.json"
      & info [ "run-report" ]
          ~doc:
            "Write the machine-readable run report (distinct from the fidelity $(b,--report)) to \
             $(docv) (empty to skip)."
          ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Fidelity gate: recompute fig1-7, verdict every cell vs the golden CSVs \
          (Exact/Within_band/Drifted), and check the transcribed paper expectation bands")
    Term.(
      const run_validate $ verbose_arg $ seed_arg $ jobs_arg $ trace_capacity_arg $ figures
      $ update_golden $ strict $ report $ run_report $ results_dir $ expectations $ telemetry_arg)

let dump_cmd =
  let dir =
    Arg.(value & opt string "results" & info [ "out"; "o" ] ~doc:"Output directory for CSV files.")
  in
  Cmd.v (Cmd.info "dump-raw" ~doc:"Write every figure's raw data as CSV (as the paper does on GitHub)")
    Term.(const dump_raw $ jobs_arg $ dir $ scale_arg)

let history_cmd =
  let path =
    Arg.(
      value & opt string "results/history.jsonl"
      & info [ "history" ] ~doc:"History ledger (JSONL of run reports)." ~docv:"FILE")
  in
  let record =
    let report_file =
      Arg.(value & pos 0 string "run-report.json" & info [] ~docv:"REPORT")
    in
    Cmd.v (Cmd.info "record" ~doc:"Append a run report to the history ledger")
      Term.(const history_record $ path $ report_file)
  in
  let show =
    let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit the trend table as CSV.") in
    let last =
      Arg.(value & opt int 0 & info [ "last" ] ~doc:"Show only the newest $(docv) entries (0 = all)." ~docv:"N")
    in
    Cmd.v
      (Cmd.info "show"
         ~doc:
           "Render the recorded trend table (MIPS, wall, fidelity over time). With no history \
            recorded yet (missing or empty ledger) prints a pointer and exits 0.")
      Term.(const history_show $ path $ csv $ last)
  in
  let compare =
    let id_a = Arg.(value & pos 0 (some string) None & info [] ~docv:"RUN_A") in
    let id_b = Arg.(value & pos 1 (some string) None & info [] ~docv:"RUN_B") in
    Cmd.v
      (Cmd.info "compare"
         ~doc:"Diff two recorded runs by id prefix (default: the last two entries)")
      Term.(const history_compare $ path $ id_a $ id_b)
  in
  let check =
    let mips_drop =
      Arg.(
        value
        & opt float Ledger.History.default_mips_drop
        & info [ "mips-drop" ]
            ~doc:"Fail when aggregate MIPS drops more than this fraction vs the same-host baseline \
                  (default 0.15)."
            ~docv:"FRAC")
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Regression gate: exit 1 when the newest entry drifted fidelity or regressed \
            aggregate MIPS beyond the threshold; exit 2 when no history has been recorded yet \
            (or the ledger is unreadable), so CI can tell \"regression\" from \"no data\"")
      Term.(const history_check $ path $ mips_drop)
  in
  Cmd.group
    (Cmd.info "history" ~doc:"Run ledger: record run reports and track perf/fidelity trends")
    [ record; show; compare; check ]

let listen_arg =
  Arg.(
    value & opt string "simbridge.sock"
    & info [ "listen" ]
        ~doc:
          "Endpoint to serve on: $(b,unix:PATH) (or a bare path) for a Unix socket, \
           $(b,tcp:HOST:PORT) for TCP."
        ~docv:"ADDR")

let serve_cmd =
  let trace =
    Arg.(
      value & opt string ""
      & info [ "trace" ]
          ~doc:"Write the span-annotated Chrome/Perfetto trace at shutdown (empty to skip)."
          ~docv:"FILE")
  in
  let history =
    Arg.(
      value & opt string ""
      & info [ "history" ]
          ~doc:"Append the final run report to this history ledger at shutdown (empty to skip)."
          ~docv:"FILE")
  in
  let response_cache =
    Arg.(
      value & opt nonneg_int 64
      & info [ "response-cache" ]
          ~doc:"Response LRU capacity in entries (0 disables; default 64)."
          ~docv:"N")
  in
  let trace_cache_mib =
    Arg.(
      value & opt nonneg_int 0
      & info [ "trace-cache-mib" ]
          ~doc:
            "Size the process-lifetime compiled-trace cache to roughly $(docv) MiB (0 = keep the \
             default 192 MiB)."
          ~docv:"MIB")
  in
  let max_batch =
    Arg.(
      value & opt pos_int 64
      & info [ "max-batch" ]
          ~doc:"Most queued requests one dispatcher batch may coalesce (default 64)."
          ~docv:"N")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve figure/cell queries as a persistent daemon (NDJSON over a Unix/TCP socket). \
          Payloads are byte-identical to the one-shot commands at any --jobs and any client \
          interleaving; SIGTERM/SIGINT (or a client $(b,shutdown) frame) drains in-flight \
          requests, refuses new ones, and flushes the run report before exiting 0.")
    Term.(
      const run_serve $ verbose_arg $ seed_arg $ jobs_arg $ trace_capacity_arg $ report_arg
      $ trace $ history $ listen_arg $ response_cache $ trace_cache_mib $ max_batch
      $ memoize_arg)

let query_cmd =
  let connect =
    Arg.(
      value & opt string "simbridge.sock"
      & info [ "connect" ]
          ~doc:"Daemon endpoint: $(b,unix:PATH), a bare path, or $(b,tcp:HOST:PORT)."
          ~docv:"ADDR")
  in
  let figure = Arg.(value & pos 0 (some string) None & info [] ~docv:"FIGURE") in
  let render =
    Arg.(value & flag & info [ "render" ] ~doc:"Ask for the ASCII chart instead of CSV.")
  in
  let cell =
    Arg.(
      value
      & opt (some string) None
      & info [ "cell" ]
          ~doc:"Run one microbench grid cell: $(docv) is PLATFORM/KERNEL (e.g. \
                $(b,banana-pi-sim/DL1m))."
          ~docv:"SPEC")
  in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print the daemon's service counters.") in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to drain and exit.")
  in
  let show_report =
    Arg.(
      value & flag
      & info [ "show-report" ]
          ~doc:"Print the per-request report section (served-from, queue wait, phases, \
                trace-cache delta) to stderr.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send one query to a running $(b,simbridge serve) daemon. Exit 0 with the payload on \
          stdout (byte-identical to the one-shot command), 1 on a server error or when the \
          daemon is unreachable.")
    Term.(
      const run_query $ connect $ figure $ scale_arg $ render $ cell $ ping $ stats $ shutdown
      $ show_report)

let main =
  Cmd.group
    (Cmd.info "simbridge" ~version:"1.0.0"
       ~doc:"Bridging Simulation and Silicon: FireSim-style models vs RISC-V silicon references")
    [
      platforms_cmd; experiments_cmd; run_cmd; csv_cmd; workload_cmd; tune_cmd; compare_cmd;
      grid_cmd; dump_cmd; validate_cmd; history_cmd; serve_cmd; query_cmd;
    ]

let () = exit (Cmd.eval main)
