(* Tests for the token-channel substrate: the FireSim correctness property
   (target behaviour independent of host scheduling) and the host-rate
   model. *)

let test_channel_fifo () =
  let c = Firesim.Channel.create ~capacity:4 in
  Firesim.Channel.enqueue c 1;
  Firesim.Channel.enqueue c 2;
  Alcotest.(check int) "fifo order" 1 (Firesim.Channel.dequeue c);
  Alcotest.(check int) "fifo order 2" 2 (Firesim.Channel.dequeue c)

let test_channel_capacity () =
  let c = Firesim.Channel.create ~capacity:2 in
  Firesim.Channel.enqueue c 1;
  Firesim.Channel.enqueue c 2;
  Alcotest.(check bool) "full" false (Firesim.Channel.can_enqueue c);
  Alcotest.check_raises "overflow" (Invalid_argument "Channel.enqueue: full") (fun () ->
      Firesim.Channel.enqueue c 3);
  ignore (Firesim.Channel.dequeue c);
  Alcotest.(check bool) "room again" true (Firesim.Channel.can_enqueue c)

let test_channel_empty_dequeue () =
  let c = Firesim.Channel.create ~capacity:1 in
  Alcotest.check_raises "empty" (Invalid_argument "Channel.dequeue: empty") (fun () ->
      ignore (Firesim.Channel.dequeue c))

(* A two-model pipeline: producer computes f(cycle); consumer accumulates.
   Run under different host policies; the consumer's trace must be
   identical. *)
let pipeline_trace policy =
  let ch = Firesim.Channel.create ~capacity:3 in
  let sink = Firesim.Channel.create ~capacity:1024 in
  let producer =
    Firesim.Scheduler.model ~name:"producer" ~inputs:[] ~outputs:[ ch ]
      ~step:(fun cycle _ -> [ (cycle * 7) land 0xFF ])
  in
  let consumer =
    Firesim.Scheduler.model ~name:"consumer" ~inputs:[ ch ] ~outputs:[ sink ]
      ~step:(fun cycle tokens -> [ (List.hd tokens + cycle) land 0xFFFF ])
  in
  let _ = Firesim.Scheduler.run ~policy ~models:[ producer; consumer ] ~target_cycles:200 () in
  List.init (Firesim.Channel.occupancy sink) (fun _ -> Firesim.Channel.dequeue sink)

let test_schedule_independence () =
  let rr = pipeline_trace Firesim.Scheduler.Round_robin in
  let rev = pipeline_trace Firesim.Scheduler.Reverse in
  let rnd = pipeline_trace (Firesim.Scheduler.Random (Util.Rng.create 99)) in
  Alcotest.(check (list int)) "reverse = round-robin" rr rev;
  Alcotest.(check (list int)) "random = round-robin" rr rnd

let test_scheduler_counts () =
  let ch = Firesim.Channel.create ~capacity:1 in
  let sink = Firesim.Channel.create ~capacity:1000 in
  let a = Firesim.Scheduler.model ~name:"a" ~inputs:[] ~outputs:[ ch ] ~step:(fun c _ -> [ c ]) in
  let b = Firesim.Scheduler.model ~name:"b" ~inputs:[ ch ] ~outputs:[ sink ] ~step:(fun _ t -> t) in
  let o = Firesim.Scheduler.run ~models:[ a; b ] ~target_cycles:50 () in
  Alcotest.(check int) "fired = 2 x 50" 100 o.Firesim.Scheduler.fired;
  Alcotest.(check int) "a done" 50 (Firesim.Scheduler.cycles_done a);
  Alcotest.(check int) "b done" 50 (Firesim.Scheduler.cycles_done b)

(* Per-model outcome stats: regardless of host policy, every model must
   advance exactly [target_cycles] target cycles, with stalls accounting
   for starved polls. *)
let per_model_under policy =
  let ch = Firesim.Channel.create ~capacity:1 in
  let sink = Firesim.Channel.create ~capacity:1000 in
  let a = Firesim.Scheduler.model ~name:"prod" ~inputs:[] ~outputs:[ ch ] ~step:(fun c _ -> [ c ]) in
  let b = Firesim.Scheduler.model ~name:"cons" ~inputs:[ ch ] ~outputs:[ sink ] ~step:(fun _ t -> t) in
  Firesim.Scheduler.run ~policy ~models:[ a; b ] ~target_cycles:40 ()

let check_per_model (o : Firesim.Scheduler.outcome) =
  Alcotest.(check int) "two models reported" 2 (List.length o.Firesim.Scheduler.per_model);
  Alcotest.(check (list string))
    "model order preserved" [ "prod"; "cons" ]
    (List.map (fun m -> m.Firesim.Scheduler.model_name) o.Firesim.Scheduler.per_model);
  List.iter
    (fun (m : Firesim.Scheduler.model_stats) ->
      Alcotest.(check int) (m.model_name ^ " fired 40 cycles") 40 m.Firesim.Scheduler.fired_cycles;
      Alcotest.(check bool) (m.model_name ^ " stalls non-negative") true (m.Firesim.Scheduler.stalls >= 0))
    o.Firesim.Scheduler.per_model;
  Alcotest.(check int) "per-model sums to fired" o.Firesim.Scheduler.fired
    (List.fold_left (fun acc m -> acc + m.Firesim.Scheduler.fired_cycles) 0
       o.Firesim.Scheduler.per_model)

let test_per_model_round_robin () = check_per_model (per_model_under Firesim.Scheduler.Round_robin)
let test_per_model_reverse () = check_per_model (per_model_under Firesim.Scheduler.Reverse)

let test_per_model_random () =
  check_per_model (per_model_under (Firesim.Scheduler.Random (Util.Rng.create 7)))

let test_per_model_stalls_seen () =
  (* Under Reverse order the consumer is always polled before the
     producer has enqueued this cycle's token, so it must record
     stalls. *)
  let o = per_model_under Firesim.Scheduler.Reverse in
  let cons = List.nth o.Firesim.Scheduler.per_model 1 in
  Alcotest.(check bool) "consumer stalled at least once" true (cons.Firesim.Scheduler.stalls > 0)

let test_scheduler_deadlock () =
  (* Two models in a token cycle with no initial tokens. *)
  let c1 = Firesim.Channel.create ~capacity:1 in
  let c2 = Firesim.Channel.create ~capacity:1 in
  let a = Firesim.Scheduler.model ~name:"a" ~inputs:[ c2 ] ~outputs:[ c1 ] ~step:(fun _ t -> t) in
  let b = Firesim.Scheduler.model ~name:"b" ~inputs:[ c1 ] ~outputs:[ c2 ] ~step:(fun _ t -> t) in
  match Firesim.Scheduler.run ~models:[ a; b ] ~target_cycles:10 () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected deadlock"

let test_scheduler_primed_loop () =
  (* The same cycle with one initial token circulates fine. *)
  let c1 = Firesim.Channel.create ~capacity:2 in
  let c2 = Firesim.Channel.create ~capacity:2 in
  Firesim.Channel.enqueue c2 0;
  let a = Firesim.Scheduler.model ~name:"a" ~inputs:[ c2 ] ~outputs:[ c1 ] ~step:(fun _ t -> t) in
  let b = Firesim.Scheduler.model ~name:"b" ~inputs:[ c1 ] ~outputs:[ c2 ] ~step:(fun _ t -> t) in
  let o = Firesim.Scheduler.run ~models:[ a; b ] ~target_cycles:25 () in
  Alcotest.(check int) "both advanced" 50 o.Firesim.Scheduler.fired

let fake_result ~cycles ~dram : Platform.Soc.result =
  {
    platform = "x";
    ranks = 1;
    cycles;
    seconds = float_of_int cycles /. 1.6e9;
    instructions = cycles;
    per_core = [||];
    l1d_misses = 0;
    l1d_accesses = 0;
    l2_misses = 0;
    l2_accesses = 0;
    dram_requests = dram;
    tlb_walks = 0;
    comm = None;
  }

let test_host_rates_match_paper () =
  (* With negligible DRAM traffic, the configured hosts land at the
     paper's quoted simulation rates. *)
  let r = fake_result ~cycles:100_000_000 ~dram:0 in
  let rocket = Firesim.Host.report Firesim.Host.u250_rocket ~target_freq_hz:1.6e9 r in
  let boom = Firesim.Host.report Firesim.Host.u250_boom ~target_freq_hz:2.0e9 r in
  Alcotest.(check bool)
    (Printf.sprintf "rocket ~60 MHz (%.1f)" rocket.Firesim.Host.target_mhz)
    true
    (Float.abs (rocket.Firesim.Host.target_mhz -. 60.0) < 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "rocket ~25x slowdown (%.0f)" rocket.Firesim.Host.slowdown)
    true
    (Float.abs (rocket.Firesim.Host.slowdown -. 26.7) < 3.0);
  Alcotest.(check bool) (Printf.sprintf "boom ~15 MHz (%.1f)" boom.Firesim.Host.target_mhz) true
    (Float.abs (boom.Firesim.Host.target_mhz -. 15.0) < 1.0);
  Alcotest.(check bool) (Printf.sprintf "boom ~133x (%.0f)" boom.Firesim.Host.slowdown) true
    (Float.abs (boom.Firesim.Host.slowdown -. 133.0) < 10.0)

let test_host_dram_stalls_slow_simulation () =
  let light = fake_result ~cycles:10_000_000 ~dram:0 in
  let heavy = fake_result ~cycles:10_000_000 ~dram:2_000_000 in
  let l = Firesim.Host.report Firesim.Host.u250_rocket ~target_freq_hz:1.6e9 light in
  let h = Firesim.Host.report Firesim.Host.u250_rocket ~target_freq_hz:1.6e9 heavy in
  Alcotest.(check bool) "memory traffic lowers sim rate" true
    (h.Firesim.Host.target_mhz < l.Firesim.Host.target_mhz);
  Alcotest.(check bool) "fmr grows" true (h.Firesim.Host.effective_fmr > l.Firesim.Host.effective_fmr)

let suite =
  [
    Alcotest.test_case "channel fifo" `Quick test_channel_fifo;
    Alcotest.test_case "channel capacity" `Quick test_channel_capacity;
    Alcotest.test_case "channel empty dequeue" `Quick test_channel_empty_dequeue;
    Alcotest.test_case "schedule independence" `Quick test_schedule_independence;
    Alcotest.test_case "scheduler counts" `Quick test_scheduler_counts;
    Alcotest.test_case "per-model counts (round-robin)" `Quick test_per_model_round_robin;
    Alcotest.test_case "per-model counts (reverse)" `Quick test_per_model_reverse;
    Alcotest.test_case "per-model counts (random)" `Quick test_per_model_random;
    Alcotest.test_case "per-model stalls observed" `Quick test_per_model_stalls_seen;
    Alcotest.test_case "scheduler deadlock" `Quick test_scheduler_deadlock;
    Alcotest.test_case "primed token loop" `Quick test_scheduler_primed_loop;
    Alcotest.test_case "host rates match paper" `Quick test_host_rates_match_paper;
    Alcotest.test_case "dram stalls slow host" `Quick test_host_dram_stalls_slow_simulation;
  ]
