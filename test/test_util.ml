(* Tests for the util library: PRNG determinism and statistics. *)

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Util.Rng.bits64 a <> Util.Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Util.Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_split_independent () =
  let parent = Util.Rng.create 3 in
  let child = Util.Rng.split parent in
  (* The child must not replay the parent's continuation. *)
  Alcotest.(check bool) "independent" true (Util.Rng.bits64 child <> Util.Rng.bits64 parent)

let test_rng_derive_stable () =
  let a = Util.Rng.create 5 in
  let c1 = Util.Rng.derive a "cache" in
  let c2 = Util.Rng.derive a "cache" in
  check Alcotest.int64 "derive is pure" (Util.Rng.bits64 c1) (Util.Rng.bits64 c2);
  let d = Util.Rng.derive a "dram" in
  Alcotest.(check bool) "distinct labels differ" true (Util.Rng.bits64 d <> Util.Rng.bits64 (Util.Rng.derive a "cache"))

let test_rng_float_unit () =
  let rng = Util.Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Util.Rng.float rng 1.0 in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_bernoulli_rate () =
  let rng = Util.Rng.create 13 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Util.Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate ~0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_rng_gaussian_moments () =
  let rng = Util.Rng.create 17 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Util.Rng.gaussian rng ~mu:2.0 ~sigma:3.0) in
  Alcotest.(check bool) "mean ~2" true (Float.abs (Util.Stats.mean xs -. 2.0) < 0.1);
  Alcotest.(check bool) "stddev ~3" true (Float.abs (Util.Stats.stddev xs -. 3.0) < 0.1)

let test_permutation_is_permutation () =
  let rng = Util.Rng.create 23 in
  let p = Util.Rng.permutation rng 100 in
  let seen = Array.make 100 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "all present" true (Array.for_all Fun.id seen)

let test_stats_basics () =
  checkf "mean" 2.5 (Util.Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "median" 2.5 (Util.Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "geomean" 2.0 (Util.Stats.geomean [| 1.0; 2.0; 4.0 |]);
  checkf "harmonic" (3.0 /. (1.0 +. 0.5 +. 0.25)) (Util.Stats.harmonic_mean [| 1.0; 2.0; 4.0 |]);
  checkf "sum" 10.0 (Util.Stats.sum [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  checkf "p0" 10.0 (Util.Stats.percentile xs 0.0);
  checkf "p100" 50.0 (Util.Stats.percentile xs 100.0);
  checkf "p50" 30.0 (Util.Stats.percentile xs 50.0);
  checkf "p25" 20.0 (Util.Stats.percentile xs 25.0)

let test_stats_percentile_edges () =
  (* Single-sample arrays: every percentile is the sample. *)
  checkf "single p0" 7.0 (Util.Stats.percentile [| 7.0 |] 0.0);
  checkf "single p50" 7.0 (Util.Stats.percentile [| 7.0 |] 50.0);
  checkf "single p100" 7.0 (Util.Stats.percentile [| 7.0 |] 100.0);
  (* p=0/p=100 pin to the extremes even on unsorted input. *)
  let xs = [| 42.0; -3.0; 17.0 |] in
  checkf "p0 = min" (-3.0) (Util.Stats.percentile xs 0.0);
  checkf "p100 = max" 42.0 (Util.Stats.percentile xs 100.0);
  Alcotest.check_raises "p out of range" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Util.Stats.percentile xs 100.1));
  Alcotest.check_raises "negative p" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Util.Stats.percentile xs (-0.1)))

let test_stats_online_small_n () =
  let o = Util.Stats.Online.create () in
  Alcotest.(check int) "empty count" 0 (Util.Stats.Online.count o);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.Online.mean: empty") (fun () ->
      ignore (Util.Stats.Online.mean o));
  Alcotest.check_raises "empty variance" (Invalid_argument "Stats.Online.variance: empty")
    (fun () -> ignore (Util.Stats.Online.variance o));
  Util.Stats.Online.add o 5.0;
  (* n = 1: mean is the sample, population stddev is zero. *)
  checkf "n=1 mean" 5.0 (Util.Stats.Online.mean o);
  checkf "n=1 variance" 0.0 (Util.Stats.Online.variance o);
  checkf "n=1 stddev" 0.0 (Util.Stats.Online.stddev o)

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Util.Stats.mean [||]));
  Alcotest.check_raises "nonpositive geomean"
    (Invalid_argument "Stats.geomean: nonpositive sample") (fun () ->
      ignore (Util.Stats.geomean [| 1.0; 0.0 |]))

let test_stats_online () =
  let o = Util.Stats.Online.create () in
  let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0 |] in
  Array.iter (Util.Stats.Online.add o) xs;
  checkf "online mean" (Util.Stats.mean xs) (Util.Stats.Online.mean o);
  Alcotest.(check bool) "online stddev" true
    (Float.abs (Util.Stats.Online.stddev o -. Util.Stats.stddev xs) < 1e-9)

let test_units () =
  Alcotest.(check int) "ns->cycles at 1GHz" 10 (Util.Units.ns_to_cycles ~freq_hz:1e9 10.0);
  Alcotest.(check int) "ceil partial cycle" 2 (Util.Units.ns_to_cycles ~freq_hz:1e9 1.5);
  checkf "cycles->ns" 5.0 (Util.Units.cycles_to_ns ~freq_hz:1e9 5);
  Alcotest.(check int) "rescale doubles" 10 (Util.Units.rescale_cycles ~from_hz:1e9 ~to_hz:2e9 5);
  Alcotest.(check int) "zero stays zero" 0 (Util.Units.ns_to_cycles ~freq_hz:1e9 0.0)

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile stays within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range 0.0 1000.0)) (float_range 0.0 100.0))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let lo, hi = Util.Stats.min_max a in
      let v = Util.Stats.percentile a p in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= mean (AM-GM)" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (float_range 0.001 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      Util.Stats.geomean a <= Util.Stats.mean a +. 1e-9)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int_in bounds" `Quick test_rng_int_in;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng derive stability" `Quick test_rng_derive_stable;
    Alcotest.test_case "rng float unit interval" `Quick test_rng_float_unit;
    Alcotest.test_case "rng bernoulli rate" `Quick test_rng_bernoulli_rate;
    Alcotest.test_case "rng gaussian moments" `Slow test_rng_gaussian_moments;
    Alcotest.test_case "rng permutation" `Quick test_permutation_is_permutation;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats percentile edges" `Quick test_stats_percentile_edges;
    Alcotest.test_case "stats online small n" `Quick test_stats_online_small_n;
    Alcotest.test_case "stats error cases" `Quick test_stats_errors;
    Alcotest.test_case "stats online accumulator" `Quick test_stats_online;
    Alcotest.test_case "unit conversions" `Quick test_units;
    QCheck_alcotest.to_alcotest prop_percentile_within_range;
    QCheck_alcotest.to_alcotest prop_geomean_le_mean;
  ]
