(* Tests for the sampled-simulation engine: policy parsing, the interval
   schedule, estimate arithmetic, and the central correctness property —
   [Sampled] with [detail_every = 1] reproduces a [Full] run's cycle
   count bit-for-bit on both core models. *)

module P = Sampling.Policy
module I = Sampling.Interval
module E = Sampling.Estimate
module Cat = Platform.Catalog
module Mb = Workloads.Microbench

(* ------------------------------------------------------------- policy *)

let test_policy_parse () =
  Alcotest.(check bool) "full" true (P.of_string "full" = Ok P.Full);
  Alcotest.(check bool) "default" true (P.of_string "default" = Ok P.default_sampled);
  Alcotest.(check bool) "sampled alias" true (P.of_string "sampled" = Ok P.default_sampled);
  Alcotest.(check bool) "explicit" true
    (P.of_string "interval=200,detail=4,warmup=50"
    = Ok (P.Sampled { interval = 200; detail_every = 4; warmup = 50 }));
  (* a subset of keys keeps the default for the rest *)
  (match (P.of_string "detail=3", P.default_sampled) with
  | Ok (P.Sampled { interval; detail_every; warmup }), P.Sampled d ->
    Alcotest.(check int) "detail overridden" 3 detail_every;
    Alcotest.(check int) "interval default" d.interval interval;
    Alcotest.(check int) "warmup default" d.warmup warmup
  | _ -> Alcotest.fail "subset spec did not parse");
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unknown key" true (is_error (P.of_string "intervl=5"));
  Alcotest.(check bool) "bad value" true (is_error (P.of_string "interval=xyz"));
  Alcotest.(check bool) "invalid knobs" true (is_error (P.of_string "interval=0"));
  Alcotest.(check bool) "warmup > interval" true
    (is_error (P.of_string "interval=100,warmup=200"))

let test_policy_roundtrip () =
  List.iter
    (fun p ->
      match P.of_string (P.to_string p) with
      | Ok p' -> Alcotest.(check bool) (P.to_string p) true (p = p')
      | Error e -> Alcotest.fail e)
    [ P.Full; P.default_sampled; P.Sampled { interval = 77; detail_every = 3; warmup = 12 } ]

let test_policy_validate () =
  P.validate P.Full;
  P.validate P.default_sampled;
  let rejects p = Alcotest.check_raises "rejected" (Invalid_argument "") (fun () ->
      try P.validate p with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  rejects (P.Sampled { interval = 0; detail_every = 1; warmup = 0 });
  rejects (P.Sampled { interval = 100; detail_every = 0; warmup = 0 });
  rejects (P.Sampled { interval = 100; detail_every = 2; warmup = -1 });
  rejects (P.Sampled { interval = 100; detail_every = 2; warmup = 101 })

(* ----------------------------------------------------------- schedule *)

(* Stratified selection: exactly one detailed interval per consecutive
   group of [detail_every], at an in-range offset. *)
let prop_one_detailed_per_stratum =
  QCheck.Test.make ~name:"one detailed interval per stratum" ~count:200
    QCheck.(pair (int_range 1 20) (int_range 0 500))
    (fun (detail_every, group) ->
      let base = group * detail_every in
      let hits = ref 0 in
      for i = base to base + detail_every - 1 do
        if I.detailed ~detail_every i then incr hits
      done;
      let off = I.stratum_offset ~detail_every group in
      !hits = 1 && off >= 0 && off < detail_every)

let test_mode_of_schedule () =
  let interval = 100 and detail_every = 4 and warmup = 30 in
  let mode = I.mode_of ~interval ~detail_every ~warmup in
  (* interval 0 carries the cold-start transient: always Warmup *)
  Alcotest.(check string) "interval 0" "warmup" (I.mode_name (mode 0));
  Alcotest.(check string) "interval 0 end" "warmup" (I.mode_name (mode 99));
  (* find a detailed interval beyond 0 and check its window *)
  let idx = ref 1 in
  while not (I.detailed ~detail_every !idx) do incr idx done;
  let d = !idx in
  Alcotest.(check string) "detailed interval" "detailed" (I.mode_name (mode (d * interval)));
  if d > 1 then begin
    Alcotest.(check string) "warmup window before" "warmup"
      (I.mode_name (mode ((d * interval) - 1)));
    Alcotest.(check string) "warming before window" "warming"
      (I.mode_name (mode ((d * interval) - warmup - 1)))
  end;
  Alcotest.(check int) "index_of" d (I.index_of ~interval (d * interval))

let test_detail_every_one_all_detailed () =
  for i = 0 to 50 do
    Alcotest.(check bool) "detailed" true (I.detailed ~detail_every:1 i)
  done

(* ----------------------------------------------------------- estimate *)

let test_estimate_exact () =
  let e = E.exact ~policy:P.Full ~cycles:1000 ~insns:400 in
  Alcotest.(check int) "cycles" 1000 e.E.est_cycles;
  Alcotest.(check (float 1e-9)) "no CI" 0.0 e.E.ci95_cycles;
  Alcotest.(check (float 1e-9)) "rel_ci" 0.0 (E.rel_ci e);
  Alcotest.(check (float 1e-9)) "cpi" 2.5 (E.cpi e);
  Alcotest.(check (float 1e-9)) "all detailed" 1.0 (E.detail_fraction e);
  Alcotest.(check (float 1e-12)) "seconds" 1e-6 (E.seconds ~freq_hz:1e9 e)

let test_accuracy_compare () =
  let e = E.exact ~policy:P.Full ~cycles:1050 ~insns:400 in
  let c = Sampling.Accuracy.compare ~full_cycles:1000 e in
  Alcotest.(check (float 1e-9)) "rel err" 0.05 c.Sampling.Accuracy.rel_err;
  Alcotest.(check bool) "within 10%" true (Sampling.Accuracy.within_tolerance ~tol:0.10 c);
  Alcotest.(check bool) "not within 1%" false (Sampling.Accuracy.within_tolerance ~tol:0.01 c)

(* ---------------------------------------------- detail_every=1 exact *)

(* The central property: with [detail_every = 1] every interval runs
   through the detailed model, so the sampled engine is the identity and
   the cycle count matches a [Full] run exactly.  (The kernels run
   without their setup streams — setup handling is policy-dependent by
   design: a sampled run warms it functionally.) *)
let exact_kernels = [ "Cca"; "CCh"; "EI"; "MD"; "DP1d"; "STc" ]

let run_cycles ?(scale = 0.1) policy platform name =
  let k = { (Mb.find name) with Workloads.Workload.setup = None } in
  (Simbridge.Runner.run_kernel_timed ~scale ~policy platform k)
    .Simbridge.Runner.result.Platform.Soc.cycles

let test_detail_every_one_exact () =
  List.iter
    (fun platform ->
      List.iter
        (fun name ->
          let full = run_cycles P.Full platform name in
          let sampled =
            run_cycles (P.Sampled { interval = 200; detail_every = 1; warmup = 50 }) platform name
          in
          Alcotest.(check int)
            (Printf.sprintf "%s on %s" name platform.Platform.Config.name)
            full sampled)
        exact_kernels)
    [ Cat.banana_pi_sim; Cat.milkv_sim ]

(* Same property under random interval geometry, on both core models
   (banana-pi-sim is in-order Rocket-like, milkv-sim an OoO BOOM). *)
let prop_detail_every_one_exact =
  QCheck.Test.make ~name:"detail_every=1 cycle-exact vs Full (both core models)" ~count:12
    QCheck.(triple (int_range 0 (List.length exact_kernels - 1)) (int_range 50 600) (int_range 0 50))
    (fun (ki, interval, warmup) ->
      let warmup = min warmup interval in
      let name = List.nth exact_kernels ki in
      let policy = P.Sampled { interval; detail_every = 1; warmup } in
      List.for_all
        (fun platform ->
          run_cycles P.Full platform name = run_cycles policy platform name)
        [ Cat.banana_pi_sim; Cat.milkv_sim ])

(* ------------------------------------------------- sampled estimates *)

let test_sampled_estimate_close_and_bounded () =
  (* The default policy's estimate lands within a few percent of the
     full run on a steady-state kernel, with a CPI-based CI attached. *)
  let k = Mb.find "ML2" in
  let full =
    (Simbridge.Runner.run_kernel_timed ~scale:0.5 ~policy:P.Full Cat.banana_pi_sim k)
      .Simbridge.Runner.result.Platform.Soc.cycles
  in
  let t = Simbridge.Runner.run_kernel_timed ~scale:0.5 ~policy:P.default_sampled Cat.banana_pi_sim k in
  let c = Sampling.Accuracy.compare ~full_cycles:full t.Simbridge.Runner.estimate in
  Alcotest.(check bool)
    (Printf.sprintf "rel err %.4f <= 0.05" c.Sampling.Accuracy.rel_err)
    true
    (Sampling.Accuracy.within_tolerance ~tol:0.05 c);
  let e = t.Simbridge.Runner.estimate in
  Alcotest.(check bool) "complete" true e.E.complete;
  Alcotest.(check bool) "detail fraction < 0.5" true (E.detail_fraction e < 0.5);
  Alcotest.(check int) "insn split" e.E.total_insns
    (e.E.detailed_insns + e.E.warmup_insns + e.E.warmed_insns)

let test_budget_stops_early () =
  let k = { (Mb.find "ML2") with Workloads.Workload.setup = None } in
  let t =
    Simbridge.Runner.run_kernel_timed ~scale:0.5 ~policy:P.default_sampled ~budget:5_000
      Cat.banana_pi_sim k
  in
  let e = t.Simbridge.Runner.estimate in
  Alcotest.(check bool) "incomplete" false e.E.complete;
  (* traversal stops at the first interval boundary at or past the budget *)
  Alcotest.(check int) "stopped at boundary" 5_000 e.E.total_insns

let test_report_renders () =
  let t = Simbridge.Runner.run_kernel_timed ~scale:0.2 ~policy:P.default_sampled Cat.banana_pi_sim
      (Mb.find "Cca")
  in
  let e = t.Simbridge.Runner.estimate in
  Alcotest.(check bool) "summary nonempty" true (String.length (Sampling.Report.summary e) > 10);
  Alcotest.(check bool) "multi-line" true (List.length (Sampling.Report.lines e) >= 4)

let test_telemetry_counters () =
  let reg = Telemetry.Registry.create () in
  let _ =
    Simbridge.Runner.run_kernel_timed ~scale:0.2 ~telemetry:reg ~policy:P.default_sampled
      Cat.banana_pi_sim (Mb.find "ML2")
  in
  let get name =
    match Telemetry.Registry.find_counter reg name with
    | Some v -> v
    | None -> Alcotest.fail ("missing counter " ^ name)
  in
  Alcotest.(check int) "insn split counters"
    (get "sampling.insns.total")
    (get "sampling.insns.detailed" + get "sampling.insns.warmup" + get "sampling.insns.warmed");
  Alcotest.(check bool) "detailed intervals > 0" true (get "sampling.intervals.detailed" > 0);
  Alcotest.(check bool) "warmed intervals > 0" true (get "sampling.intervals.warmed" > 0);
  (* simulated-work speedup: most instructions skipped the timing model *)
  Alcotest.(check bool) "speedup > 2x" true (get "sampling.speedup_x100" > 200)

(* --------------------------------------------------------------- seed *)

let with_seed seed f =
  let saved = Util.Rng.get_global_seed () in
  Fun.protect ~finally:(fun () -> Util.Rng.set_global_seed saved) (fun () ->
      Util.Rng.set_global_seed seed;
      f ())

(* CCh's branch outcomes flow through Rng.salted, so the global seed
   reshapes its timing; the same seed must reproduce it bit-identically. *)
let test_seed_override () =
  let cycles () =
    (Simbridge.Runner.run_kernel ~scale:0.25 Cat.banana_pi_sim (Mb.find "CCh"))
      .Platform.Soc.cycles
  in
  let base = with_seed 0 cycles in
  let s7 = with_seed 7 cycles in
  let s7' = with_seed 7 cycles in
  let s13 = with_seed 13 cycles in
  Alcotest.(check int) "same seed bit-identical" s7 s7';
  Alcotest.(check bool) "seed 7 differs from seed 0" true (s7 <> base);
  Alcotest.(check bool) "seed 13 differs from seed 7" true (s13 <> s7)

let suite =
  [
    Alcotest.test_case "policy parse" `Quick test_policy_parse;
    Alcotest.test_case "policy roundtrip" `Quick test_policy_roundtrip;
    Alcotest.test_case "policy validate" `Quick test_policy_validate;
    QCheck_alcotest.to_alcotest prop_one_detailed_per_stratum;
    Alcotest.test_case "interval schedule modes" `Quick test_mode_of_schedule;
    Alcotest.test_case "detail_every=1 selects all" `Quick test_detail_every_one_all_detailed;
    Alcotest.test_case "exact estimate" `Quick test_estimate_exact;
    Alcotest.test_case "accuracy compare" `Quick test_accuracy_compare;
    Alcotest.test_case "detail_every=1 exact (6 kernels, 2 cores)" `Quick
      test_detail_every_one_exact;
    QCheck_alcotest.to_alcotest prop_detail_every_one_exact;
    Alcotest.test_case "sampled estimate close + bounded" `Quick
      test_sampled_estimate_close_and_bounded;
    Alcotest.test_case "budget stops early" `Quick test_budget_stops_early;
    Alcotest.test_case "report renders" `Quick test_report_renders;
    Alcotest.test_case "telemetry counters" `Quick test_telemetry_counters;
    Alcotest.test_case "seed override" `Quick test_seed_override;
  ]
