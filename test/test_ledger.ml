(* Tests for the run-ledger layer: run-report schema round-trips
   through Jsonx, span trees are identical across job counts, and the
   history regression gate passes/fails on the right trajectories. *)

module J = Validate.Jsonx
module Reg = Telemetry.Registry
module Trace = Telemetry.Trace
module Pool = Parallel.Pool
module RR = Ledger.Run_report
module H = Ledger.History

(* ------------------------------------------------- report round-trip *)

(* Structural equality modulo float representation: Jsonx prints
   non-integral numbers with %.12g, so a parse . print round trip may
   perturb the 13th significant digit. *)
let rec json_close a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Str x, J.Str y -> x = y
  | J.Num x, J.Num y ->
    x = y || abs_float (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (abs_float x) (abs_float y))
  | J.Arr xs, J.Arr ys -> List.length xs = List.length ys && List.for_all2 json_close xs ys
  | J.Obj xs, J.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && json_close v1 v2) xs ys
  | _ -> false

(* A synthetic but schema-shaped report, parameterised so QCheck can
   sweep the numeric space (including values that exercise %.12g). *)
let synth_report ?(cmd = "run fig1") ~mips ~wall ~cells ~exact ~drifted ~hit_rate ~run_id ~host () =
  J.Obj
    [
      ("schema", J.Str RR.schema);
      ("run_id", J.Str run_id);
      ("time", J.Str "2026-08-08T00:00:00Z");
      ("command", J.Str cmd);
      ("git_rev", J.Str "deadbeef");
      ("host", J.Obj [ ("fingerprint", J.Str host) ]);
      ("config", J.Obj [ ("seed", J.Num 42.0); ("jobs", J.Num 2.0) ]);
      ("exit_status", J.Num 0.0);
      ( "metrics",
        J.Obj
          [
            ("aggregate_mips", J.Num mips);
            ("wall_s", J.Num wall);
            ("measured_wall_s", J.Num (wall /. 2.0));
          ] );
      ("cache", J.Obj [ ("trace_cache_hit_rate", J.Num hit_rate) ]);
      ( "fidelity",
        J.Obj
          [
            ("cells", J.Num (float_of_int cells));
            ("exact", J.Num (float_of_int exact));
            ("drifted", J.Num (float_of_int drifted));
          ] );
    ]

let prop_report_roundtrip =
  QCheck.Test.make ~name:"run-report survives Jsonx print/parse" ~count:200
    QCheck.(triple (float_range 0.0 1e6) (float_range 0.0 1e4) (int_range 0 500))
    (fun (mips, wall, cells) ->
      let r =
        synth_report ~mips ~wall ~cells ~exact:(cells / 2) ~drifted:0 ~hit_rate:0.5
          ~run_id:"20260808T000000Z-p1" ~host:"h/1c" ()
      in
      match J.parse (J.to_string ~indent:0 r) with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok r' ->
        (* the round-tripped report must still be a valid ledger entry
           carrying the same trend fields *)
        json_close r r'
        &&
        (match (H.entry_of_report r, H.entry_of_report r') with
        | Ok a, Ok b ->
          a.H.h_run_id = b.H.h_run_id && a.H.h_cells = b.H.h_cells
          && (match (a.H.h_mips, b.H.h_mips) with
             | Some x, Some y -> abs_float (x -. y) <= 1e-6 *. Float.max 1.0 (abs_float x)
             | None, None -> true
             | _ -> false)
        | _ -> false))

let test_build_report_sanity () =
  let reg = Reg.create () in
  Simbridge.Runner.trace_cache_clear ();
  let _ =
    Telemetry.Span.root ~name:"test" reg (fun () ->
        Simbridge.Runner.run_kernel ~scale:0.05 ~telemetry:reg Platform.Catalog.banana_pi_sim
          (Workloads.Microbench.find "Cca"))
  in
  let r =
    RR.build ~wall_s:1.0 ~command:"test run" ~config:[ ("seed", J.Num 42.0) ] ~telemetry:reg ()
  in
  Alcotest.(check (option string)) "schema tagged" (Some RR.schema)
    (Option.bind (J.member "schema" r) J.to_str);
  let cache = Option.get (J.member "cache" r) in
  Alcotest.(check bool) "trace cache misses surfaced" true
    (match Option.bind (J.member "trace_cache_misses" cache) J.to_int with
    | Some n -> n >= 1
    | None -> false);
  Alcotest.(check bool) "trace.cache.* in counter snapshot" true
    (match Option.bind (J.member "counters" r) (J.member "trace.cache.misses") with
    | Some (J.Num _) -> true
    | _ -> false);
  let metrics = Option.get (J.member "metrics" r) in
  Alcotest.(check bool) "aggregate MIPS computed" true
    (match Option.bind (J.member "aggregate_mips" metrics) J.to_float with
    | Some m -> m > 0.0
    | None -> false);
  Alcotest.(check bool) "span count in trace section" true
    (match Option.bind (J.member "trace" r) (J.member "spans") with
    | Some (J.Num n) -> n >= 1.0
    | _ -> false);
  (* a freshly built report is itself a valid history entry *)
  match H.entry_of_report r with
  | Ok e -> Alcotest.(check string) "command extracted" "test run" e.H.h_command
  | Error e -> Alcotest.failf "report rejected by history: %s" e

let test_git_rev_resolves () =
  (* dune runs tests in a sandbox, so walk up to the real repo root; if
     none is reachable (release tarball) only the fallback is tested. *)
  let rec find_root dir depth =
    if depth > 8 then None
    else if Sys.file_exists (Filename.concat dir ".git") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_root parent (depth + 1)
  in
  (match find_root (Sys.getcwd ()) 0 with
  | None -> ()
  | Some root ->
    let rev = RR.git_rev ~root () in
    Alcotest.(check bool) "sha-shaped" true
      (String.length rev = 40
      && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) rev));
  Alcotest.(check string) "unresolvable root degrades" "unknown"
    (RR.git_rev ~root:"/nonexistent-simbridge" ())

let test_host_fingerprint () =
  let h = Ledger.Host.detect () in
  let fp = Ledger.Host.fingerprint h in
  Alcotest.(check bool) "cores positive" true (h.Ledger.Host.logical_cores >= 1);
  Alcotest.(check bool) "fingerprint mentions ocaml version" true
    (let needle = "ocaml-" ^ Sys.ocaml_version in
     let nl = String.length needle and hl = String.length fp in
     let rec go i = i + nl <= hl && (String.sub fp i nl = needle || go (i + 1)) in
     go 0);
  Alcotest.(check string) "fingerprint deterministic" fp
    (Ledger.Host.fingerprint (Ledger.Host.detect ()))

(* ---------------------------------------------------- span tree * jobs *)

let span_tree reg =
  Trace.to_list (Reg.trace reg)
  |> List.filter (fun e -> e.Trace.cat = "span")
  |> List.map (fun e ->
         let s k = match List.assoc_opt k e.Trace.args with Some (Trace.Str v) -> v | _ -> "" in
         (s "span", s "parent", e.Trace.name))
  |> List.sort compare

let run_grid ~jobs =
  let reg = Reg.create () in
  let cells =
    List.init 6 (fun i ->
        Pool.cell ~label:(Printf.sprintf "cell%d" i) (fun ctx ->
            Telemetry.Span.with_ ~name:"work" ctx.Pool.telemetry (fun () -> i * i)))
  in
  let results = Telemetry.Span.root ~name:"grid" reg (fun () -> Pool.run ~jobs ~telemetry:reg cells) in
  (results, span_tree reg)

let test_span_tree_job_invariant () =
  let r1, t1 = run_grid ~jobs:1 in
  let r2, t2 = run_grid ~jobs:2 in
  Alcotest.(check (list int)) "results equal" r1 r2;
  Alcotest.(check int) "root + per-cell + nested spans" (1 + 6 + 6) (List.length t1);
  Alcotest.(check (list (triple string string string)))
    "span (id, parent, name) tree identical across job counts" t1 t2;
  (* every cell span must parent on the root, every nested span on its cell *)
  let root_id =
    match List.find (fun (_, _, n) -> n = "grid") t1 with id, _, _ -> id
  in
  List.iter
    (fun (id, parent, name) ->
      if name <> "grid" then
        if name = "work" then
          Alcotest.(check bool) (id ^ " nested under a cell span") true
            (String.length parent > 0 && parent.[0] = 'c')
        else Alcotest.(check string) (id ^ " cell span parents on root") root_id parent)
    t1

let test_pool_span_queue_wait_annotated () =
  let reg = Reg.create () in
  let cells = List.init 3 (fun i -> Pool.cell ~label:"c" (fun _ -> i)) in
  let _ = Telemetry.Span.root ~name:"g" reg (fun () -> Pool.run ~jobs:2 ~telemetry:reg cells) in
  let cell_spans =
    Trace.to_list (Reg.trace reg)
    |> List.filter (fun e -> e.Trace.cat = "span" && e.Trace.name = "c")
  in
  Alcotest.(check int) "three cell spans" 3 (List.length cell_spans);
  List.iter
    (fun e ->
      Alcotest.(check bool) "queue wait annotated" true
        (match List.assoc_opt "queue_wait_us" e.Trace.args with
        | Some (Trace.Int w) -> w >= 0
        | _ -> false))
    cell_spans

(* ----------------------------------------------------------- history *)

let entry ?mips ?(cells = 10) ?(exact = 10) ?(drifted = 0) ?(host = "hostA/4c") ?(cmd = "run fig1")
    ~id () =
  match
    H.entry_of_report
      (synth_report ~cmd
         ~mips:(Option.value mips ~default:0.0)
         ~wall:1.0 ~cells ~exact ~drifted ~hit_rate:0.5 ~run_id:id ~host ())
  with
  | Ok e -> if mips = None then { e with H.h_mips = None } else e
  | Error e -> Alcotest.failf "synthetic entry rejected: %s" e

let test_history_check_passes_stable () =
  let entries =
    [ entry ~id:"r1" ~mips:100.0 (); entry ~id:"r2" ~mips:95.0 (); entry ~id:"r3" ~mips:90.0 () ]
  in
  let res = H.check entries in
  Alcotest.(check bool) "10% drop within 15% threshold" true res.H.ck_ok;
  Alcotest.(check bool) "empty history passes" true (H.check []).H.ck_ok;
  Alcotest.(check bool) "single entry passes" true
    (H.check [ entry ~id:"only" ~mips:50.0 () ]).H.ck_ok

let test_history_check_fails_on_mips_regression () =
  let entries = [ entry ~id:"base" ~mips:100.0 (); entry ~id:"slow" ~mips:80.0 () ] in
  let res = H.check entries in
  Alcotest.(check bool) "20% drop fails the default gate" false res.H.ck_ok;
  Alcotest.(check bool) "a FAIL line names the regression" true
    (List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "FAIL") res.H.ck_lines);
  (* the threshold is a parameter: the same trajectory passes at 25% *)
  Alcotest.(check bool) "looser threshold passes" true (H.check ~mips_drop:0.25 entries).H.ck_ok

let test_history_check_mips_needs_same_host () =
  (* A CI runner's MIPS is not a laptop's: a cross-host drop must not
     fail the gate (there is no comparable baseline). *)
  let entries =
    [ entry ~id:"laptop" ~mips:100.0 ~host:"laptop/8c" (); entry ~id:"ci" ~mips:20.0 ~host:"ci/2c" () ]
  in
  Alcotest.(check bool) "cross-host drop waived" true (H.check entries).H.ck_ok;
  (* ... but a same-host baseline further back is still found and used *)
  let entries3 = entries @ [ entry ~id:"laptop2" ~mips:50.0 ~host:"laptop/8c" () ] in
  Alcotest.(check bool) "same-host baseline two entries back still gates" false
    (H.check entries3).H.ck_ok

let test_history_check_fails_on_fidelity () =
  let drifted = [ entry ~id:"good" ~mips:100.0 (); entry ~id:"bad" ~mips:100.0 ~drifted:2 () ] in
  Alcotest.(check bool) "drifted cells fail" false (H.check drifted).H.ck_ok;
  let lost = [ entry ~id:"full" ~exact:10 (); entry ~id:"partial" ~exact:8 () ] in
  Alcotest.(check bool) "lost Exact cells fail" false (H.check lost).H.ck_ok;
  let regained = [ entry ~id:"partial" ~exact:8 (); entry ~id:"full" ~exact:10 () ] in
  Alcotest.(check bool) "gaining Exact cells passes" true (H.check regained).H.ck_ok

let test_history_check_different_command_not_compared () =
  let entries =
    [ entry ~id:"figs" ~cmd:"run fig1" ~mips:100.0 (); entry ~id:"bench" ~cmd:"bench perf" ~mips:10.0 () ]
  in
  Alcotest.(check bool) "different command series never compared" true (H.check entries).H.ck_ok

let test_history_append_load_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "simbridge_history_%d.jsonl" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  Alcotest.(check bool) "missing ledger loads empty" true (H.load ~path = Ok []);
  let r1 =
    synth_report ~mips:10.0 ~wall:1.0 ~cells:4 ~exact:4 ~drifted:0 ~hit_rate:0.25 ~run_id:"a"
      ~host:"h" ()
  in
  let r2 =
    synth_report ~mips:12.0 ~wall:0.9 ~cells:4 ~exact:4 ~drifted:0 ~hit_rate:0.75 ~run_id:"b"
      ~host:"h" ()
  in
  H.append ~path r1;
  H.append ~path r2;
  (match H.load ~path with
  | Ok [ a; b ] ->
    Alcotest.(check string) "order preserved" "a" a.H.h_run_id;
    Alcotest.(check string) "second entry" "b" b.H.h_run_id;
    Alcotest.(check bool) "full report preserved" true (json_close r2 b.H.h_json);
    Alcotest.(check bool) "csv renders all entries" true
      (let csv = H.to_csv [ a; b ] in
       String.split_on_char '\n' csv |> List.filter (fun l -> String.trim l <> "") |> List.length = 3)
  | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)
  | Error e -> Alcotest.fail e);
  (* a malformed line is a located error, not a crash *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{not json\n";
  close_out oc;
  (match H.load ~path with
  | Error e -> Alcotest.(check bool) "error names line 3" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "malformed line accepted");
  Sys.remove path

let test_entry_of_report_rejects_foreign () =
  (match H.entry_of_report (J.Obj [ ("schema", J.Str "something-else/9") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign schema accepted");
  match H.entry_of_report (J.Obj [ ("x", J.Num 1.0) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schemaless document accepted"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_report_roundtrip;
    Alcotest.test_case "report build sanity" `Quick test_build_report_sanity;
    Alcotest.test_case "git rev resolves without git binary" `Quick test_git_rev_resolves;
    Alcotest.test_case "host fingerprint" `Quick test_host_fingerprint;
    Alcotest.test_case "span tree invariant across jobs" `Quick test_span_tree_job_invariant;
    Alcotest.test_case "pool spans carry queue wait" `Quick test_pool_span_queue_wait_annotated;
    Alcotest.test_case "history check: stable passes" `Quick test_history_check_passes_stable;
    Alcotest.test_case "history check: MIPS regression fails" `Quick
      test_history_check_fails_on_mips_regression;
    Alcotest.test_case "history check: cross-host waived" `Quick
      test_history_check_mips_needs_same_host;
    Alcotest.test_case "history check: fidelity gates" `Quick test_history_check_fails_on_fidelity;
    Alcotest.test_case "history check: command series isolated" `Quick
      test_history_check_different_command_not_compared;
    Alcotest.test_case "history append/load roundtrip" `Quick test_history_append_load_roundtrip;
    Alcotest.test_case "foreign reports rejected" `Quick test_entry_of_report_rejects_foreign;
  ]
