(* Tests for the telemetry subsystem: registry semantics, trace ring
   bounds, exporter formats, host-policy invariance of telemetry, and
   consistency of published counters with Soc.result aggregates. *)

module Reg = Telemetry.Registry
module Trace = Telemetry.Trace

let test_counter_basics () =
  let reg = Reg.create ~trace_capacity:0 () in
  let c = Reg.counter reg "a.b" in
  Reg.incr c;
  Reg.add c 4;
  Alcotest.(check int) "value" 5 (Reg.value c);
  let c' = Reg.counter reg "a.b" in
  Reg.incr c';
  Alcotest.(check int) "find-or-create shares the cell" 6 (Reg.value c);
  Reg.set_all reg [ ("a.b", 10); ("z", 1) ];
  Alcotest.(check (list (pair string int))) "sorted listing" [ ("a.b", 10); ("z", 1) ]
    (Reg.counters reg);
  Alcotest.(check (option int)) "find" (Some 10) (Reg.find_counter reg "a.b");
  Alcotest.(check (option int)) "find missing" None (Reg.find_counter reg "nope")

let test_histogram_stats () =
  let reg = Reg.create ~trace_capacity:0 () in
  let h = Reg.histogram reg "lat" in
  List.iter (fun v -> Reg.observe h v) [ 4.0; 1.0; 3.0; 2.0; 5.0 ];
  let s = Reg.hist_stats h in
  Alcotest.(check int) "count" 5 s.Reg.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Reg.mean;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.Reg.p50;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Reg.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Reg.max;
  Alcotest.(check int) "one histogram listed" 1 (List.length (Reg.histograms reg))

let test_disabled_sink_is_inert () =
  let reg = Reg.disabled in
  let c = Reg.counter reg "x" in
  Reg.incr c;
  let h = Reg.histogram reg "y" in
  Reg.observe h 1.0;
  let ph = Reg.phase_start reg "p" in
  Reg.phase_end reg ph ~ts:100 ();
  Trace.record (Reg.trace reg)
    { Trace.name = "e"; cat = "c"; ph = 'i'; ts = 0; dur = 0; tid = 0; args = [] };
  Alcotest.(check bool) "not enabled" false (Reg.enabled reg);
  Alcotest.(check (list (pair string int))) "no counters registered" [] (Reg.counters reg);
  Alcotest.(check int) "no histograms registered" 0 (List.length (Reg.histograms reg));
  Alcotest.(check int) "no phases recorded" 0 (List.length (Reg.phases reg));
  Alcotest.(check int) "no trace events" 0 (Trace.length (Reg.trace reg))

let ev name ts = { Trace.name; cat = "t"; ph = 'i'; ts; dur = 0; tid = 0; args = [] }

let test_trace_ring_bound () =
  let tr = Trace.create ~capacity:4 in
  for i = 1 to 10 do
    Trace.record tr (ev (string_of_int i) i)
  done;
  Alcotest.(check int) "length capped" 4 (Trace.length tr);
  Alcotest.(check int) "drops counted" 6 (Trace.dropped tr);
  Alcotest.(check (list string)) "keeps newest, oldest first" [ "7"; "8"; "9"; "10" ]
    (List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.to_list tr))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_export_summary_and_csv () =
  let reg = Reg.create ~trace_capacity:16 () in
  Reg.set_all reg [ ("cache.l1d.misses", 42) ];
  Reg.observe (Reg.histogram reg "smpi.msg_bytes") 128.0;
  let ph = Reg.phase_start reg "measure" in
  Reg.phase_end reg ph ~ts:1000 ();
  let s = Telemetry.Export.summary reg in
  List.iter
    (fun needle -> Alcotest.(check bool) ("summary has " ^ needle) true (contains ~needle s))
    [ "== counters =="; "== histograms =="; "== phases =="; "cache.l1d.misses"; "smpi.msg_bytes"; "measure" ];
  let csv = Telemetry.Export.to_csv reg in
  Alcotest.(check bool) "csv header" true (contains ~needle:"kind,name,field,value" csv);
  Alcotest.(check bool) "csv counter row" true
    (contains ~needle:"counter,cache.l1d.misses,value,42" csv);
  Alcotest.(check bool) "csv histogram count row" true
    (contains ~needle:"histogram,smpi.msg_bytes,count,1" csv);
  Alcotest.(check bool) "csv phase row" true
    (contains ~needle:"phase,measure,target_cycles,1000" csv)

let test_chrome_trace_json () =
  let reg = Reg.create ~trace_capacity:16 () in
  Trace.record (Reg.trace reg)
    {
      Trace.name = "odd \"name\"\n";
      cat = "smpi";
      ph = 'X';
      ts = 5;
      dur = 7;
      tid = 3;
      args = [ ("bytes", Trace.Int 64); ("note", Trace.Str "a\\b") ];
    };
  let json = Telemetry.Export.chrome_trace reg in
  Alcotest.(check bool) "has traceEvents" true (contains ~needle:"\"traceEvents\"" json);
  Alcotest.(check bool) "escapes quotes" true (contains ~needle:"odd \\\"name\\\"\\n" json);
  Alcotest.(check bool) "escapes backslash" true (contains ~needle:"a\\\\b" json);
  Alcotest.(check bool) "complete event" true (contains ~needle:"\"ph\":\"X\"" json);
  Alcotest.(check bool) "duration kept" true (contains ~needle:"\"dur\":7" json);
  (* Balanced braces is a cheap well-formedness proxy without a JSON dep
     (no unescaped braces appear in the generated strings). *)
  let depth = ref 0 in
  String.iter (fun c -> if c = '{' then incr depth else if c = '}' then decr depth) json;
  Alcotest.(check int) "balanced braces" 0 !depth

(* The FireSim correctness property extended to telemetry: target-level
   counters must not depend on the host scheduling policy.  Host-level
   counters under the "firesim.host." prefix are the documented exception. *)
let scheduler_counters policy =
  let reg = Reg.create ~trace_capacity:256 () in
  let ch = Firesim.Channel.create ~capacity:2 in
  let sink = Firesim.Channel.create ~capacity:1024 in
  let producer =
    Firesim.Scheduler.model ~name:"producer" ~inputs:[] ~outputs:[ ch ]
      ~step:(fun cycle _ -> [ (cycle * 7) land 0xFF ])
  in
  let consumer =
    Firesim.Scheduler.model ~name:"consumer" ~inputs:[ ch ] ~outputs:[ sink ]
      ~step:(fun cycle tokens -> [ (List.hd tokens + cycle) land 0xFFFF ])
  in
  let _ =
    Firesim.Scheduler.run ~policy ~telemetry:reg ~models:[ producer; consumer ]
      ~target_cycles:100 ()
  in
  List.filter
    (fun (name, _) -> not (String.length name >= 13 && String.sub name 0 13 = "firesim.host."))
    (Reg.counters reg)

let test_policy_invariant_telemetry () =
  let rr = scheduler_counters Firesim.Scheduler.Round_robin in
  let rev = scheduler_counters Firesim.Scheduler.Reverse in
  let rnd = scheduler_counters (Firesim.Scheduler.Random (Util.Rng.create 99)) in
  Alcotest.(check bool) "some target-level counters" true (rr <> []);
  Alcotest.(check (list (pair string int))) "reverse = round-robin" rr rev;
  Alcotest.(check (list (pair string int))) "random = round-robin" rr rnd

(* Published counters must agree with the run's Soc.result aggregates —
   including for kernels with a setup stream, where both are differenced
   against the post-setup state. *)
let check_consistency kernel_name =
  let reg = Reg.create () in
  let r =
    Simbridge.Runner.run_kernel ~scale:0.05 ~telemetry:reg Platform.Catalog.banana_pi_sim
      (Workloads.Microbench.find kernel_name)
  in
  let counter name = Option.get (Reg.find_counter reg name) in
  Alcotest.(check int) "l1d accesses" r.Platform.Soc.l1d_accesses (counter "cache.l1d.accesses");
  Alcotest.(check int) "l1d misses" r.Platform.Soc.l1d_misses (counter "cache.l1d.misses");
  Alcotest.(check int) "l2 accesses" r.Platform.Soc.l2_accesses (counter "cache.l2.accesses");
  Alcotest.(check int) "l2 misses" r.Platform.Soc.l2_misses (counter "cache.l2.misses");
  Alcotest.(check int) "dram requests" r.Platform.Soc.dram_requests (counter "dram.requests");
  Alcotest.(check int) "tlb walks" r.Platform.Soc.tlb_walks
    (counter "tlb.dtlb.walks" + counter "tlb.itlb.walks");
  Alcotest.(check int) "instructions" r.Platform.Soc.instructions (counter "core.instructions");
  (* Per-channel DRAM counters decompose the aggregate. *)
  let nchans = Platform.Catalog.banana_pi_sim.Platform.Config.dram.Dram.channels in
  let sum_chans field =
    List.fold_left ( + ) 0
      (List.init nchans (fun i -> counter (Printf.sprintf "dram.chan%d.%s" i field)))
  in
  Alcotest.(check int) "per-channel requests sum" (counter "dram.requests") (sum_chans "requests");
  Alcotest.(check int) "per-channel row_hits sum" (counter "dram.row_hits") (sum_chans "row_hits")

let test_counters_match_result_no_setup () = check_consistency "MM"
let test_counters_match_result_with_setup () = check_consistency "Cca"

let test_disabled_telemetry_does_not_perturb () =
  let kernel = Workloads.Microbench.find "MM" in
  let run telemetry =
    Simbridge.Runner.run_kernel ~scale:0.05 ~telemetry Platform.Catalog.banana_pi_sim kernel
  in
  let off = run Reg.disabled in
  let on_ = run (Reg.create ()) in
  Alcotest.(check int) "cycles identical" off.Platform.Soc.cycles on_.Platform.Soc.cycles;
  Alcotest.(check int) "instructions identical" off.Platform.Soc.instructions
    on_.Platform.Soc.instructions;
  Alcotest.(check int) "dram identical" off.Platform.Soc.dram_requests
    on_.Platform.Soc.dram_requests

let test_app_telemetry_histograms () =
  let reg = Reg.create () in
  let r =
    Simbridge.Runner.run_app ~scale:0.1 ~telemetry:reg ~ranks:2 Platform.Catalog.banana_pi_sim
      Workloads.Npb.cg
  in
  let comm = Option.get r.Platform.Soc.comm in
  Alcotest.(check (option int)) "smpi.messages counter" (Some comm.Smpi.messages)
    (Reg.find_counter reg "smpi.messages");
  Alcotest.(check (option int)) "smpi.collectives counter" (Some comm.Smpi.collectives)
    (Reg.find_counter reg "smpi.collectives");
  (match List.assoc_opt "smpi.coll_wait_cycles" (Reg.histograms reg) with
  | None -> Alcotest.fail "expected smpi.coll_wait_cycles histogram"
  | Some s ->
    (* Every rank waits at every collective. *)
    Alcotest.(check int) "collective waits observed" (2 * comm.Smpi.collectives) s.Reg.count);
  Alcotest.(check bool) "smpi trace events recorded" true (Trace.length (Reg.trace reg) > 0)

let test_runner_phases () =
  let reg = Reg.create () in
  let r =
    Simbridge.Runner.run_kernel ~scale:0.05 ~telemetry:reg Platform.Catalog.banana_pi_sim
      (Workloads.Microbench.find "Cca")
  in
  match Reg.phases reg with
  | [ setup; measure ] ->
    Alcotest.(check string) "setup phase" "setup" setup.Reg.ph_name;
    Alcotest.(check string) "measure phase" "measure" measure.Reg.ph_name;
    Alcotest.(check int) "phases abut" setup.Reg.ph_ts1 measure.Reg.ph_ts0;
    Alcotest.(check int) "measure spans the result" r.Platform.Soc.cycles
      (measure.Reg.ph_ts1 - measure.Reg.ph_ts0)
  | ps -> Alcotest.failf "expected setup+measure, got %d phases" (List.length ps)

let test_export_write_files () =
  let reg = Reg.create () in
  Reg.set_all reg [ ("k", 1) ];
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "simbridge_telemetry_test" in
  Telemetry.Export.write reg ~dir;
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " written") true (Sys.file_exists (Filename.concat dir f)))
    [ "telemetry.txt"; "telemetry.csv"; "trace.json" ]

let test_export_write_nested_dirs () =
  (* Regression: Export.write must create every missing parent, not
     just the leaf — `--telemetry results/telemetry/run1` used to fail
     when `results/telemetry` didn't exist yet. *)
  let reg = Reg.create () in
  Reg.set_all reg [ ("k", 1) ];
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "simbridge_nested_%d" (Unix.getpid ()))
  in
  let dir = Filename.concat (Filename.concat base "a") "b" in
  Alcotest.(check bool) "parents absent beforehand" false (Sys.file_exists base);
  Telemetry.Export.write reg ~dir;
  Alcotest.(check bool) "nested dir created" true
    (Sys.file_exists (Filename.concat dir "telemetry.txt"));
  (* second write over the same tree must be idempotent *)
  Telemetry.Export.write reg ~dir;
  List.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    [ "telemetry.txt"; "telemetry.csv"; "trace.json" ];
  Unix.rmdir dir;
  Unix.rmdir (Filename.concat base "a");
  Unix.rmdir base

let test_summary_warns_on_dropped_events () =
  let reg = Reg.create ~trace_capacity:2 () in
  for i = 1 to 5 do
    Trace.record (Reg.trace reg) (ev (string_of_int i) i)
  done;
  let s = Telemetry.Export.summary reg in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "warning present" true (contains "WARNING: 3 trace events dropped" s);
  Alcotest.(check bool) "mentions --trace-capacity" true (contains "--trace-capacity" s);
  let quiet = Telemetry.Export.summary (Reg.create ~trace_capacity:16 ()) in
  Alcotest.(check bool) "no warning without drops" false (contains "WARNING" quiet)

let test_span_basics () =
  let reg = Reg.create () in
  (* Without a root, spans are inert: callers that never opened one
     (e.g. the deterministic-merge tests) see no trace events. *)
  Telemetry.Span.with_ ~name:"orphan" reg (fun () -> ());
  Alcotest.(check int) "no orphan span recorded" 0 (Trace.length (Reg.trace reg));
  let out =
    Telemetry.Span.root ~name:"outer" reg (fun () ->
        Telemetry.Span.with_ ~name:"inner" ~attrs:[ Telemetry.Span.int "k" 7 ] reg (fun () -> 42))
  in
  Alcotest.(check int) "body result returned" 42 out;
  let spans = List.filter (fun e -> e.Trace.cat = "span") (Trace.to_list (Reg.trace reg)) in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let find name = List.find (fun e -> e.Trace.name = name) spans in
  let id e = match List.assoc "span" e.Trace.args with Trace.Str s -> s | _ -> "?" in
  let parent e = match List.assoc "parent" e.Trace.args with Trace.Str s -> s | _ -> "?" in
  Alcotest.(check string) "outer is a root" "" (parent (find "outer"));
  Alcotest.(check string) "inner nests under outer" (id (find "outer")) (parent (find "inner"));
  Alcotest.(check bool) "disabled registry spans are free" true
    (Telemetry.Span.root ~name:"x" Reg.disabled (fun () -> true))

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
    Alcotest.test_case "disabled sink inert" `Quick test_disabled_sink_is_inert;
    Alcotest.test_case "trace ring bound" `Quick test_trace_ring_bound;
    Alcotest.test_case "export summary + csv" `Quick test_export_summary_and_csv;
    Alcotest.test_case "chrome trace json" `Quick test_chrome_trace_json;
    Alcotest.test_case "telemetry policy-invariant" `Quick test_policy_invariant_telemetry;
    Alcotest.test_case "counters match result (no setup)" `Quick test_counters_match_result_no_setup;
    Alcotest.test_case "counters match result (setup)" `Quick test_counters_match_result_with_setup;
    Alcotest.test_case "disabled telemetry no perturbation" `Quick
      test_disabled_telemetry_does_not_perturb;
    Alcotest.test_case "app histograms + smpi counters" `Quick test_app_telemetry_histograms;
    Alcotest.test_case "runner phases" `Quick test_runner_phases;
    Alcotest.test_case "export writes sidecars" `Quick test_export_write_files;
    Alcotest.test_case "export creates nested dirs" `Quick test_export_write_nested_dirs;
    Alcotest.test_case "summary warns on dropped events" `Quick test_summary_warns_on_dropped_events;
    Alcotest.test_case "span basics" `Quick test_span_basics;
  ]
