(* Tests for compiled instruction traces: packed-field encode/decode
   round-trips (including the Amo/Fence/untaken-branch edge cases),
   compile-time validation of malformed instructions, and the central
   replay property — [`Trace] and [`Seq] engines produce structurally
   identical [Soc.result]s on random kernel/platform/policy draws. *)

module In = Isa.Insn
module T = Trace
module Cat = Platform.Catalog
module Mb = Workloads.Microbench
module R = Simbridge.Runner

(* -------------------------------------------------------- round-trips *)

(* One instruction of every kind, covering the packed-field corners:
   Amo at the widest representable size, Fence (no operands at all),
   an untaken branch (taken bit clear, target still encoded), registers
   at both ends of the id range. *)
let sample_insns =
  [
    In.make ~pc:0x1000 ~dst:1 ~src1:2 ~src2:3 Int_alu;
    In.make ~pc:0x1004 ~dst:31 ~src1:31 ~src2:31 Int_mul;
    In.make ~pc:0x1008 ~dst:4 ~src1:5 Int_div;
    In.make ~pc:0x100c ~dst:6 ~src1:7 ~src2:8 Fp_add;
    In.make ~pc:0x1010 ~dst:9 ~src1:10 ~src2:11 Fp_mul;
    In.make ~pc:0x1014 ~dst:12 ~src1:13 Fp_div;
    In.make ~pc:0x1018 ~dst:14 ~src1:15 Fp_cvt;
    In.make ~pc:0x101c ~dst:16 ~src1:17 Fp_long;
    In.make ~pc:0x1020 ~dst:18 ~src1:19 ~mem:{ addr = 0xdead_beef0; size = 8 } Load;
    In.make ~pc:0x1024 ~src1:20 ~src2:21 ~mem:{ addr = 0x4; size = 1 } Store;
    (* untaken branch: taken bit clear, fall-through target *)
    In.make ~pc:0x1028 ~src1:22 ~src2:23 ~ctrl:{ taken = false; target = 0x102c } Branch;
    In.make ~pc:0x102c ~src1:24 ~ctrl:{ taken = true; target = 0x1000 } Branch;
    In.make ~pc:0x1030 ~ctrl:{ taken = true; target = 0x2000 } Jump;
    In.make ~pc:0x1034 ~dst:1 ~ctrl:{ taken = true; target = 0x3000 } Call;
    In.make ~pc:0x1038 ~ctrl:{ taken = true; target = 0x1038 } Ret;
    In.make ~pc:0x103c Fence;
    (* atomic at the widest representable access *)
    In.make ~pc:0x1040 ~dst:25 ~src1:26 ~src2:27
      ~mem:{ addr = 0x8000; size = T.max_mem_size }
      Amo;
    In.make ~pc:0x1044 Nop;
  ]

let insn_eq (a : In.t) (b : In.t) =
  a.pc = b.pc && a.kind = b.kind && a.dst = b.dst && a.src1 = b.src1 && a.src2 = b.src2
  && a.mem = b.mem && a.ctrl = b.ctrl

let test_roundtrip () =
  let tr = T.compile (List.to_seq sample_insns) in
  Alcotest.(check int) "length" (List.length sample_insns) (T.length tr);
  List.iteri
    (fun i orig ->
      let back = T.insn tr i in
      Alcotest.(check bool)
        (Printf.sprintf "insn %d (%s) round-trips" i (In.kind_name orig.In.kind))
        true (insn_eq orig back))
    sample_insns

let test_meta_accessors () =
  let tr = T.compile (List.to_seq sample_insns) in
  List.iteri
    (fun i (orig : In.t) ->
      let m = T.meta tr i in
      let name = In.kind_name orig.kind in
      Alcotest.(check bool) (name ^ " kind") true (T.kind_of_meta m = orig.kind);
      Alcotest.(check int) (name ^ " dst") orig.dst (T.dst_of_meta m);
      Alcotest.(check int) (name ^ " src1") orig.src1 (T.src1_of_meta m);
      Alcotest.(check int) (name ^ " src2") orig.src2 (T.src2_of_meta m);
      Alcotest.(check int) (name ^ " pc") orig.pc (T.pc tr i);
      (match orig.mem with
      | Some { addr; size } ->
        Alcotest.(check int) (name ^ " size") size (T.size_of_meta m);
        Alcotest.(check int) (name ^ " addr") addr (T.aux tr i)
      | None -> Alcotest.(check int) (name ^ " size 0") 0 (T.size_of_meta m));
      match orig.ctrl with
      | Some { taken; target } ->
        Alcotest.(check bool) (name ^ " taken") taken (T.taken_of_meta m);
        Alcotest.(check int) (name ^ " target") target (T.aux tr i)
      | None -> Alcotest.(check bool) (name ^ " taken clear") false (T.taken_of_meta m))
    sample_insns

let test_count_kind () =
  let tr = T.compile (List.to_seq sample_insns) in
  let listed p = List.length (List.filter (fun (i : In.t) -> p i.kind) sample_insns) in
  Alcotest.(check int) "mem kinds" (listed In.is_mem) (T.count_kind In.is_mem tr);
  Alcotest.(check int) "ctrl kinds" (listed In.is_ctrl) (T.count_kind In.is_ctrl tr);
  Alcotest.(check int) "branches"
    (listed (fun k -> k = In.Branch))
    (T.count_kind (fun k -> k = In.Branch) tr);
  Alcotest.(check int) "everything" (List.length sample_insns) (T.count_kind (fun _ -> true) tr)

let test_raw_layout () =
  (* Inline decoders used by the replay hot loops must agree with the
     [*_of_meta] accessors on every sample word. *)
  let tr = T.compile (List.to_seq sample_insns) in
  let metas = T.metas tr in
  Array.iter
    (fun m ->
      Alcotest.(check bool) "kind via table" true
        (T.kind_table.(m land T.kind_mask) = T.kind_of_meta m);
      Alcotest.(check int) "dst via shift" (T.dst_of_meta m) ((m lsr T.dst_shift) land T.reg_mask);
      Alcotest.(check int) "src1 via shift" (T.src1_of_meta m)
        ((m lsr T.src1_shift) land T.reg_mask);
      Alcotest.(check int) "src2 via shift" (T.src2_of_meta m)
        ((m lsr T.src2_shift) land T.reg_mask);
      Alcotest.(check bool) "taken via bit" (T.taken_of_meta m) (m land T.taken_bit <> 0);
      Alcotest.(check int) "size via shift" (T.size_of_meta m)
        ((m lsr T.size_shift) land T.size_mask))
    metas

let test_to_seq_identity () =
  let tr = T.compile (List.to_seq sample_insns) in
  let back = List.of_seq (T.to_seq tr) in
  Alcotest.(check bool) "to_seq reproduces the stream" true
    (List.for_all2 insn_eq sample_insns back)

(* ------------------------------------------------- malformed streams *)

let rejects name insn =
  let raised =
    try
      ignore (T.compile (List.to_seq [ insn ]));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) name true raised

(* [In.make] asserts these invariants away, so malformed instructions are
   built as raw records — exactly what a buggy generator could hand the
   compiler. *)
let raw ?mem ?ctrl kind : In.t =
  { pc = 0; kind; dst = 0; src1 = 0; src2 = 0; mem; ctrl }

let test_compile_rejects () =
  rejects "mem on non-memory kind" (raw ~mem:{ addr = 0; size = 4 } In.Int_alu);
  rejects "memory kind without mem" (raw In.Load);
  rejects "amo without mem" (raw In.Amo);
  rejects "ctrl on non-control kind" (raw ~ctrl:{ taken = true; target = 4 } In.Fence);
  rejects "control kind without ctrl" (raw In.Branch);
  rejects "oversized mem access" (raw ~mem:{ addr = 0; size = T.max_mem_size + 1 } In.Load)

(* ------------------------------------------ replay identity property *)

(* Trace replay must be a pure host-side optimization: identical
   [Soc.result] to the [`Seq] path for any kernel, either core model
   (banana = in-order Rocket2, boom = OoO), Full or sampled policy.
   Structural equality covers every counter, the per-core array, and the
   float cycle estimates. *)
let replay_kernels = [ "Cca"; "EI"; "MD"; "DP1d"; "CRd"; "MIM" ]

let prop_replay_identity =
  let n_k = List.length replay_kernels in
  QCheck.Test.make ~name:"trace replay = seq replay (random kernel/platform/policy)" ~count:24
    QCheck.(triple (int_range 0 (n_k - 1)) bool bool)
    (fun (ki, use_boom, sampled) ->
      let kernel = Mb.find (List.nth replay_kernels ki) in
      let platform = if use_boom then Cat.boom_large else Cat.banana_pi_sim in
      let policy = if sampled then Sampling.Policy.default_sampled else Sampling.Policy.Full in
      let scale = 0.3 in
      let seq = (R.run_kernel_timed ~scale ~policy ~engine:`Seq platform kernel).result in
      let tr = (R.run_kernel_timed ~scale ~policy ~engine:`Trace platform kernel).result in
      seq = tr)

let test_replay_identity_estimates () =
  (* The sampled estimate (error bounds included) must also match. *)
  let kernel = Mb.find "MD" in
  let policy = Sampling.Policy.default_sampled in
  let a = R.run_kernel_timed ~scale:0.4 ~policy ~engine:`Seq Cat.boom_large kernel in
  let b = R.run_kernel_timed ~scale:0.4 ~policy ~engine:`Trace Cat.boom_large kernel in
  Alcotest.(check bool) "results equal" true (a.result = b.result);
  Alcotest.(check bool) "estimates equal" true (a.estimate = b.estimate)

let test_trace_cache_counts () =
  R.trace_cache_clear ();
  let kernel = Mb.find "EI" in
  ignore (R.run_kernel_timed ~scale:0.2 ~engine:`Trace Cat.banana_pi_sim kernel);
  let s1 = R.trace_cache_stats () in
  (* Second run of the same (kernel, scale, seed) must hit, not recompile. *)
  ignore (R.run_kernel_timed ~scale:0.2 ~engine:`Trace Cat.boom_large kernel);
  let s2 = R.trace_cache_stats () in
  Alcotest.(check bool) "first run misses" true (s1.tc_misses > 0);
  Alcotest.(check int) "second run compiles nothing" s1.tc_misses s2.tc_misses;
  Alcotest.(check bool) "second run hits" true (s2.tc_hits > s1.tc_hits);
  R.trace_cache_clear ();
  let s3 = R.trace_cache_stats () in
  Alcotest.(check int) "clear zeroes hits" 0 s3.tc_hits;
  Alcotest.(check int) "clear zeroes misses" 0 s3.tc_misses

let suite =
  [
    Alcotest.test_case "encode/decode round-trip (all kinds)" `Quick test_roundtrip;
    Alcotest.test_case "meta accessors" `Quick test_meta_accessors;
    Alcotest.test_case "count_kind histogram" `Quick test_count_kind;
    Alcotest.test_case "raw layout agrees with accessors" `Quick test_raw_layout;
    Alcotest.test_case "to_seq identity" `Quick test_to_seq_identity;
    Alcotest.test_case "compile rejects malformed insns" `Quick test_compile_rejects;
    QCheck_alcotest.to_alcotest prop_replay_identity;
    Alcotest.test_case "sampled estimates identical" `Quick test_replay_identity_estimates;
    Alcotest.test_case "trace cache hit accounting" `Quick test_trace_cache_counts;
  ]
