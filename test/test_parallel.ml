(* Tests for the Domain-based worker pool: job resolution, deterministic
   ordering/randomness/telemetry across job counts, failure propagation,
   and the pooled-equals-sequential property over real simulation cells. *)

module Pool = Parallel.Pool
module Registry = Telemetry.Registry
module Cat = Platform.Catalog
module Mb = Workloads.Microbench

let test_resolve_jobs () =
  Alcotest.(check bool) "auto >= 1" true (Pool.resolve_jobs 0 >= 1);
  Alcotest.(check int) "auto = recommended" (Pool.recommended_jobs ()) (Pool.resolve_jobs 0);
  Alcotest.(check int) "explicit passes through" 3 (Pool.resolve_jobs 3);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool.resolve_jobs: jobs must be >= 0 (0 = auto)") (fun () ->
      ignore (Pool.resolve_jobs (-1)));
  Alcotest.check_raises "negative default rejected"
    (Invalid_argument "Pool.set_default_jobs: jobs must be >= 0 (0 = auto)") (fun () ->
      Pool.set_default_jobs (-2))

let test_physical_cores () =
  (* Host-dependent, so only invariants: when /proc/cpuinfo yields a
     topology the count is a positive number no larger than the logical
     CPU count (SMT can only multiply cores, never shrink them), and
     repeated calls agree (the file doesn't change under us). *)
  match Pool.physical_cores () with
  | None -> () (* no topology exposed (non-Linux, minimal container) *)
  | Some n ->
    Alcotest.(check bool) "physical cores >= 1" true (n >= 1);
    Alcotest.(check (option int)) "stable across calls" (Some n) (Pool.physical_cores ())

let test_ordering () =
  (* Results must come back in submission order for any job count, even
     when early cells are the slowest. *)
  let cells =
    List.init 17 (fun i ->
        Pool.cell ~label:(string_of_int i) (fun ctx ->
            if i = 0 then Unix.sleepf 0.02;
            Alcotest.(check int) "ctx carries grid index" i ctx.Pool.cell_index;
            i * i))
  in
  let expect = List.init 17 (fun i -> i * i) in
  Alcotest.(check (list int)) "sequential" expect (Pool.run ~jobs:1 cells);
  Alcotest.(check (list int)) "pooled" expect (Pool.run ~jobs:4 cells);
  Alcotest.(check (list int)) "map keeps order" [ 2; 4; 6 ]
    (Pool.map ~jobs:4 (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty grid" [] (Pool.run ~jobs:4 ([] : int Pool.cell list))

exception Boom of int

let test_failure_propagation () =
  (* The lowest-indexed failure wins, sequentially and pooled. *)
  let cells jobs =
    List.init 8 (fun i ->
        Pool.cell (fun _ -> if i = 2 || i = 5 then raise (Boom i) else ignore jobs))
  in
  let first_boom jobs =
    match Pool.run ~jobs (cells jobs) with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i -> i
  in
  Alcotest.(check int) "sequential first failure" 2 (first_boom 1);
  Alcotest.(check int) "pooled first failure" 2 (first_boom 4)

let test_per_cell_rng () =
  (* The per-cell generator is a pure function of (global seed, index):
     identical across job counts, distinct across cells. *)
  let draws jobs = Pool.run ~jobs (List.init 6 (fun i -> Pool.cell (fun ctx ->
      ignore i;
      Util.Rng.bits64 ctx.Pool.rng)))
  in
  let seq = draws 1 in
  Alcotest.(check (list int64)) "same draws at jobs=3" seq (draws 3);
  let distinct = List.sort_uniq compare seq in
  Alcotest.(check int) "cells draw distinct streams" (List.length seq) (List.length distinct);
  Alcotest.check_raises "negative cell index"
    (Invalid_argument "Rng.for_cell: negative cell index") (fun () ->
      ignore (Util.Rng.for_cell (-1)))

let with_seed seed f =
  let saved = Util.Rng.get_global_seed () in
  Fun.protect
    ~finally:(fun () -> Util.Rng.set_global_seed saved)
    (fun () ->
      Util.Rng.set_global_seed seed;
      f ())

let test_for_cell_seed_sensitivity () =
  let first seed = with_seed seed (fun () -> Util.Rng.bits64 (Util.Rng.for_cell 3)) in
  Alcotest.check Alcotest.int64 "pure per (seed, index)" (first 7) (first 7);
  Alcotest.(check bool) "global seed re-keys cells" true (first 7 <> first 0)

let test_telemetry_merge () =
  (* Counter sums, histogram observations, phases, and trace events from
     per-cell sinks merge deterministically — identically at any jobs. *)
  let run jobs =
    let parent = Registry.create () in
    let cells =
      List.init 5 (fun i ->
          Pool.cell (fun ctx ->
              let reg = ctx.Pool.telemetry in
              Registry.add (Registry.counter reg "pool.work") (i + 1);
              Registry.observe (Registry.histogram reg "pool.size") (float_of_int i);
              let ph = Registry.phase_start reg ~ts:(10 * i) "cell" in
              Registry.phase_end reg ph ~ts:((10 * i) + 5) ()))
    in
    ignore (Pool.run ~jobs ~telemetry:parent cells : unit list);
    parent
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check (option int)) "counters sum" (Some 15) (Registry.find_counter seq "pool.work");
  Alcotest.(check (option int)) "pooled counters identical"
    (Registry.find_counter seq "pool.work")
    (Registry.find_counter par "pool.work");
  let phase_names r = List.map (fun p -> p.Registry.ph_ts0) (Registry.phases r) in
  Alcotest.(check (list int)) "phases in cell order" [ 0; 10; 20; 30; 40 ] (phase_names seq);
  Alcotest.(check (list int)) "pooled phases identical" (phase_names seq) (phase_names par);
  let trace_ts r = List.map (fun (e : Telemetry.Trace.event) -> e.ts) (Telemetry.Trace.to_list (Registry.trace r)) in
  Alcotest.(check (list int)) "trace events in cell order" (trace_ts seq) (trace_ts par);
  match (Registry.histograms seq, Registry.histograms par) with
  | [ (ns, hs) ], [ (np, hp) ] ->
    Alcotest.(check string) "histogram name" "pool.size" ns;
    Alcotest.(check string) "same name pooled" ns np;
    Alcotest.(check int) "all observations merged" 5 hs.Registry.count;
    Alcotest.(check (float 1e-9)) "same sum" hs.Registry.sum hp.Registry.sum
  | _ -> Alcotest.fail "expected exactly one histogram"

let test_fork_disabled () =
  Alcotest.(check bool) "fork of disabled is disabled" false
    (Registry.enabled (Registry.fork Registry.disabled));
  (* Merging into the disabled sink must not register anything. *)
  let child = Registry.create () in
  Registry.add (Registry.counter child "x") 1;
  Registry.merge ~into:Registry.disabled child;
  Alcotest.(check (option int)) "disabled untouched" None
    (Registry.find_counter Registry.disabled "x")

let test_shared_permutation_domains () =
  (* The permutation memo is domain-local: concurrent domains replaying
     the same seeded stream get equal arrays and equal post-call state. *)
  let reference = Util.Rng.permutation (Util.Rng.create 42) 1000 in
  let worker () =
    let rng = Util.Rng.create 42 in
    let p = Util.Rng.shared_permutation rng 1000 in
    (* A second call from the same domain must hit its local memo. *)
    let p2 = Util.Rng.shared_permutation (Util.Rng.create 42) 1000 in
    (p = reference && p2 == p, Util.Rng.bits64 rng)
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  let results = List.map Domain.join domains in
  let follow_on =
    let rng = Util.Rng.create 42 in
    ignore (Util.Rng.permutation rng 1000);
    Util.Rng.bits64 rng
  in
  List.iter
    (fun (ok, next) ->
      Alcotest.(check bool) "permutation identical in every domain" true ok;
      Alcotest.check Alcotest.int64 "state advance matches non-memoized" follow_on next)
    results

(* Pooled execution of a randomized cell list must return exactly the
   sequential results — result records, estimates, and the merged
   telemetry counters — for both Full and sampled policies. *)
let prop_pool_equals_sequential =
  let open QCheck in
  let kernel_names = [ "EI"; "Cca"; "MD"; "CCh" ] in
  let platforms = [ Cat.banana_pi_sim; Cat.milkv_sim; Cat.banana_pi_hw ] in
  let spec_gen =
    Gen.(
      pair bool
        (list_size (int_range 2 6)
           (pair (oneofl kernel_names) (int_range 0 (List.length platforms - 1)))))
  in
  let print (sampled, cells) =
    Printf.sprintf "%s [%s]"
      (if sampled then "sampled" else "full")
      (String.concat "; " (List.map (fun (k, p) -> Printf.sprintf "%s@%d" k p) cells))
  in
  Test.make ~name:"pooled grid = sequential grid (Full and sampled)" ~count:6 (make ~print spec_gen)
    (fun (sampled, cells) ->
      let policy = if sampled then Sampling.Policy.default_sampled else Sampling.Policy.Full in
      let grid = List.map (fun (kname, pidx) -> (List.nth platforms pidx, Mb.find kname)) cells in
      let run jobs =
        let reg = Registry.create () in
        let timed = Simbridge.Runner.run_kernel_grid ~scale:0.05 ~policy ~jobs ~telemetry:reg grid in
        ( List.map (fun t -> (t.Simbridge.Runner.result, t.Simbridge.Runner.estimate)) timed,
          Registry.counters reg,
          List.length (Registry.phases reg) )
      in
      run 3 = run 1)

let suite =
  [
    Alcotest.test_case "resolve jobs" `Quick test_resolve_jobs;
    Alcotest.test_case "physical cores" `Quick test_physical_cores;
    Alcotest.test_case "deterministic ordering" `Quick test_ordering;
    Alcotest.test_case "failure propagation" `Quick test_failure_propagation;
    Alcotest.test_case "per-cell rng" `Quick test_per_cell_rng;
    Alcotest.test_case "for_cell seed sensitivity" `Quick test_for_cell_seed_sensitivity;
    Alcotest.test_case "telemetry merge" `Quick test_telemetry_merge;
    Alcotest.test_case "fork disabled" `Quick test_fork_disabled;
    Alcotest.test_case "shared_permutation across domains" `Quick test_shared_permutation_domains;
    QCheck_alcotest.to_alcotest prop_pool_equals_sequential;
  ]
