let () =
  Alcotest.run "simbridge"
    [
      ("util", Test_util.suite);
      ("isa", Test_isa.suite);
      ("rv64", Test_rv64.suite);
      ("prog", Test_prog.suite);
      ("branch", Test_branch.suite);
      ("cache", Test_cache.suite);
      ("dram", Test_dram.suite);
      ("interconnect", Test_interconnect.suite);
      ("uarch", Test_uarch.suite);
      ("trace", Test_trace.suite);
      ("memo", Test_memo.suite);
      ("smpi", Test_smpi.suite);
      ("platform", Test_platform.suite);
      ("firesim", Test_firesim.suite);
      ("tlb", Test_tlb.suite);
      ("multinode", Test_multinode.suite);
      ("workloads", Test_workloads.suite);
      ("report", Test_report.suite);
      ("telemetry", Test_telemetry.suite);
      ("ledger", Test_ledger.suite);
      ("sampling", Test_sampling.suite);
      ("parallel", Test_parallel.suite);
      ("simbridge", Test_simbridge.suite);
      ("validate", Test_validate.suite);
      ("integration", Test_integration.suite);
      ("serve", Test_serve.suite);
    ]
