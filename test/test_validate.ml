(* Tests for the fidelity-regression subsystem (lib/validate): the JSON
   codec, verdict classification (including the qcheck perturbation
   property), golden CSV round-trips, the expectations decoder, shape
   evaluation, and check_figure end-to-end on synthetic figures — plus a
   static gate that replays the checked-in golden CSVs through the full
   band/shape machinery without running any simulation. *)

module J = Validate.Jsonx
module V = Validate.Verdict
module G = Validate.Golden
module X = Validate.Expectations
module F = Validate.Fidelity
module E = Simbridge.Experiments
module Registry = Telemetry.Registry

let expectations_path = "../results/paper-expectations.json"
let results_dir = "../results"

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------- jsonx *)

let test_jsonx_roundtrip () =
  let doc =
    J.Obj
      [
        ("name", J.Str "fig1");
        ("band", J.Num 0.02);
        ("count", J.Num 42.0);
        ("ok", J.Bool true);
        ("nothing", J.Null);
        ("rows", J.Arr [ J.Str "a,b"; J.Str "quote\"inside"; J.Num (-1.5) ]);
        ("nested", J.Obj [ ("empty_arr", J.Arr []); ("empty_obj", J.Obj []) ]);
      ]
  in
  let reparse s = ok_exn "reparse" (J.parse s) in
  Alcotest.(check bool) "pretty round-trips" true (reparse (J.to_string doc) = doc);
  Alcotest.(check bool) "compact round-trips" true (reparse (J.to_string ~indent:0 doc) = doc);
  (* Key order is preserved, so serialization is deterministic. *)
  Alcotest.(check string) "deterministic" (J.to_string doc) (J.to_string doc)

let test_jsonx_parse () =
  let p s = J.parse s in
  Alcotest.(check bool) "escapes" true
    (p {|"a\"b\\c\n\tA"|} = Ok (J.Str "a\"b\\c\n\tA"));
  Alcotest.(check bool) "numbers" true (p "[-1.5e2, 0.25, 3]"
    = Ok (J.Arr [ J.Num (-150.0); J.Num 0.25; J.Num 3.0 ]));
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "trailing garbage rejected" true (is_err (p "{} x"));
  Alcotest.(check bool) "unterminated string rejected" true (is_err (p {|"abc|}));
  Alcotest.(check bool) "bare word rejected" true (is_err (p "flase"));
  Alcotest.(check bool) "unclosed object rejected" true (is_err (p {|{"a": 1|}));
  Alcotest.(check bool) "empty input rejected" true (is_err (p "  "))

let test_jsonx_accessors () =
  let doc = ok_exn "parse" (J.parse {|{"a": 1.5, "b": "x", "c": [1], "n": 7}|}) in
  Alcotest.(check (option (float 0.0))) "get_float" (Some 1.5) (J.get_float "a" doc);
  Alcotest.(check (option int)) "to_int integral" (Some 7)
    (Option.bind (J.member "n" doc) J.to_int);
  Alcotest.(check (option int)) "to_int non-integral" None
    (Option.bind (J.member "a" doc) J.to_int);
  Alcotest.(check string) "get_str present" "x" (J.get_str "b" doc);
  Alcotest.(check string) "get_str default" "?" (J.get_str ~default:"?" "zz" doc);
  Alcotest.(check bool) "member on non-object" true (J.member "a" (J.Str "s") = None);
  (* Non-finite numbers must serialize to valid JSON (null), never "nan". *)
  Alcotest.(check string) "nan -> null" "null" (J.to_string ~indent:0 (J.Num Float.nan))

(* ----------------------------------------------------------- verdict *)

let test_verdict_classify () =
  let band = 0.02 in
  (* Text produced by the canonical cell format classifies Exact. *)
  let v = 0.3816 in
  Alcotest.(check bool) "formatted text is Exact" true
    (V.is_exact (V.classify ~band ~expected_text:(Report.Table.cell_f v) ~got:v));
  (match V.classify ~band ~expected_text:"0.5000" ~got:0.505 with
  | V.Within_band { delta; _ } -> Alcotest.(check bool) "1% delta" true (delta < band)
  | v -> Alcotest.failf "expected Within_band, got %s" (V.to_string v));
  (match V.classify ~band ~expected_text:"0.5000" ~got:0.6 with
  | V.Drifted { expected; got; _ } ->
    Alcotest.(check (float 1e-9)) "carries expected" 0.5 expected;
    Alcotest.(check (float 1e-9)) "carries got" 0.6 got
  | v -> Alcotest.failf "expected Drifted, got %s" (V.to_string v));
  (* Corrupt golden text fails the gate rather than passing it. *)
  Alcotest.(check bool) "unparseable golden is Drifted" true
    (V.is_drifted (V.classify ~band ~expected_text:"n/a" ~got:1.0))

(* Property: a perturbation inside the band never classifies Drifted,
   and one outside always does. *)
let prop_verdict_band =
  QCheck.Test.make ~name:"perturbations classify by band" ~count:300
    QCheck.(triple (float_range 0.05 50.0) (float_range 0.0 0.015) bool)
    (fun (expected, eps, outside) ->
      let band = 0.02 in
      let delta = if outside then band +. 0.005 +. eps else eps in
      let got = expected *. (1.0 +. delta) in
      let verdict = V.classify ~band ~expected_text:(Report.Table.cell_f expected) ~got in
      (* cell_f quantizes expected, so re-derive the delta the verdict
         actually saw before asserting the side of the band. *)
      let seen = V.rel_delta ~expected:(float_of_string (Report.Table.cell_f expected)) ~got in
      if seen > band then V.is_drifted verdict else not (V.is_drifted verdict))

(* ------------------------------------------------------------ golden *)

let test_golden_roundtrip () =
  let csv = "x,plain,\"quoted, series\"\nrow1,0.5000,1.234\n\"r,2\",3,\"he said \"\"hi\"\"\"\n" in
  let g = ok_exn "of_csv" (G.of_csv csv) in
  Alcotest.(check (list string)) "headers" [ "x"; "plain"; "quoted, series" ] g.G.headers;
  Alcotest.(check (list string)) "series" [ "plain"; "quoted, series" ] (G.series g);
  Alcotest.(check string) "byte round-trip" csv (G.to_csv g);
  Alcotest.(check (option string)) "cell hit" (Some "3") (G.cell g ~x:"r,2" ~series:"plain");
  Alcotest.(check (option string)) "quoted cell" (Some {|he said "hi"|})
    (G.cell g ~x:"r,2" ~series:"quoted, series");
  Alcotest.(check (option string)) "missing row" None (G.cell g ~x:"zz" ~series:"plain");
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty rejected" true (is_err (G.of_csv ""));
  Alcotest.(check bool) "ragged rejected" true (is_err (G.of_csv "x,a\nr1,1,2\n"))

let synthetic_figure ?(id = "figX") series =
  {
    E.id;
    title = "synthetic";
    note = "";
    reference = Some 1.0;
    series = List.map (fun (label, points) -> { E.label; points }) series;
  }

let test_golden_of_figure () =
  let fig = synthetic_figure [ ("s1", [ ("a", 0.5); ("b", 123.456) ]); ("s2", [ ("a", 2.0); ("b", 0.03125) ]) ] in
  let g = G.of_figure fig in
  Alcotest.(check string) "matches figure_csv" (E.figure_csv fig) (G.to_csv g);
  Alcotest.(check (option string)) "cell is canonical text"
    (Some (Report.Table.cell_f 123.456))
    (G.cell g ~x:"b" ~series:"s1")

(* ------------------------------------------------------ expectations *)

let test_expectations_load_real () =
  let x = ok_exn "load" (X.load expectations_path) in
  Alcotest.(check int) "version" 1 x.X.version;
  Alcotest.(check (float 1e-9)) "default band" 0.02 x.X.default_band;
  List.iter
    (fun id ->
      match X.find x id with
      | None -> Alcotest.failf "no expectations entry for %s" id
      | Some fe ->
        Alcotest.(check string) "golden file default" (id ^ ".csv") (X.golden_file x id);
        List.iter
          (fun (b : X.band) ->
            Alcotest.(check bool) (id ^ " band ordered") true (b.X.blo < b.X.bhi);
            Alcotest.(check bool) (id ^ " band has provenance") true (b.X.bprov <> ""))
          fe.X.bands;
        List.iter
          (fun (s : X.shape_spec) ->
            Alcotest.(check bool) (id ^ " shape has provenance") true (s.X.sprov <> ""))
          fe.X.shapes)
    F.known_ids

let test_expectations_decode_errors () =
  let decode s = Result.bind (J.parse s) X.of_json in
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "duplicate figure ids rejected" true
    (is_err
       (decode
          {|{"version": 1, "default_band": 0.02,
             "figures": [{"id": "fig1"}, {"id": "fig1"}]}|}));
  Alcotest.(check bool) "unknown shape kind rejected" true
    (is_err
       (decode
          {|{"version": 1, "default_band": 0.02,
             "figures": [{"id": "fig1",
                          "shapes": [{"kind": "sideways", "provenance": "x"}]}]}|}));
  Alcotest.(check bool) "inverted band rejected" true
    (is_err
       (decode
          {|{"version": 1, "default_band": 0.02,
             "figures": [{"id": "fig1",
                          "bands": [{"min": 2.0, "max": 1.0, "provenance": "x"}]}]}|}));
  let x =
    ok_exn "minimal"
      (decode {|{"version": 1, "default_band": 0.05, "figures": []}|})
  in
  Alcotest.(check (option string)) "find on empty" None
    (Option.map (fun fe -> fe.X.fig_id) (X.find x "fig1"));
  Alcotest.(check string) "golden_file fallback" "fig9.csv" (X.golden_file x "fig9");
  Alcotest.(check (float 1e-9)) "cell_band default" 0.05 (X.cell_band x None)

(* ---------------------------------------------------------- fidelity *)

let test_expand_spec () =
  let check what spec expected =
    Alcotest.(check (list string)) what expected (ok_exn "expand" (F.expand_spec spec))
  in
  check "all" "all" F.known_ids;
  check "empty = all" "" F.known_ids;
  check "number" "1" [ "fig1" ];
  check "panel parent expands" "3" [ "fig3a"; "fig3b" ];
  check "explicit panel" "fig4b" [ "fig4b" ];
  check "dedup + check order" "5,1,fig5,2" [ "fig1"; "fig2"; "fig5" ];
  Alcotest.(check bool) "garbage rejected" true
    (match F.expand_spec "1,fig99" with Error _ -> true | Ok _ -> false)

let empty_expectations = { X.version = 1; default_band = 0.02; figures = [] }

let with_temp_golden fig f =
  let path = Filename.temp_file "golden" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      G.save path (G.of_figure fig);
      f path)

let test_check_figure_exact () =
  let fig = synthetic_figure [ ("s1", [ ("a", 0.5); ("b", 1.25) ]); ("s2", [ ("a", 0.75); ("b", 2.0) ]) ] in
  with_temp_golden fig (fun path ->
      let telemetry = Registry.create () in
      let fr =
        F.check_figure ~telemetry ~expectations:empty_expectations ~golden_path:path
          ~updated:false fig
      in
      Alcotest.(check (list string)) "no structural" [] fr.F.fr_structural;
      Alcotest.(check int) "all cells checked" 4 (List.length fr.F.fr_cells);
      Alcotest.(check bool) "all exact" true
        (List.for_all (fun c -> V.is_exact c.F.cc_verdict) fr.F.fr_cells);
      Alcotest.(check (option int)) "telemetry checked" (Some 4)
        (Registry.find_counter telemetry "validate.cells.checked");
      Alcotest.(check (option int)) "telemetry exact" (Some 4)
        (Registry.find_counter telemetry "validate.cells.exact");
      Alcotest.(check (option int)) "telemetry drifted" (Some 0)
        (Registry.find_counter telemetry "validate.cells.drifted"))

let test_check_figure_drift () =
  let base = synthetic_figure [ ("s1", [ ("a", 0.5); ("b", 1.25) ]) ] in
  with_temp_golden base (fun path ->
      (* One cell nudged inside the band, one pushed far outside. *)
      let perturbed = synthetic_figure [ ("s1", [ ("a", 0.502); ("b", 2.5) ]) ] in
      let telemetry = Registry.create () in
      let fr =
        F.check_figure ~telemetry ~expectations:empty_expectations ~golden_path:path
          ~updated:false perturbed
      in
      let verdict_of x =
        (List.find (fun c -> c.F.cc_x = x) fr.F.fr_cells).F.cc_verdict
      in
      Alcotest.(check bool) "small nudge within band" true
        (match verdict_of "a" with V.Within_band _ -> true | _ -> false);
      Alcotest.(check bool) "2x is drifted" true (V.is_drifted (verdict_of "b"));
      Alcotest.(check (option int)) "telemetry drifted" (Some 1)
        (Registry.find_counter telemetry "validate.cells.drifted");
      let report = { F.r_figures = [ fr ]; r_totals = F.(
        {
          t_cells = 2; t_exact = 0; t_within = 1; t_drifted = 1;
          t_bands = 0; t_band_misses = 0; t_shapes = 0; t_shape_misses = 0;
          t_structural = 0;
        }) }
      in
      Alcotest.(check bool) "drift fails the gate" false (F.ok report);
      Alcotest.(check bool) "drifted cell named in render" true
        (let r = F.render report in
         let contains s sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         contains r "b/s1" || contains r "b" ))

let test_check_figure_structural () =
  let golden_fig = synthetic_figure [ ("s1", [ ("a", 0.5); ("b", 1.25) ]); ("s2", [ ("a", 1.0); ("b", 1.0) ]) ] in
  with_temp_golden golden_fig (fun path ->
      (* s2 renamed, row b missing: both directions must be reported. *)
      let got = synthetic_figure [ ("s1", [ ("a", 0.5) ]); ("s3", [ ("a", 1.0) ]) ] in
      let fr =
        F.check_figure ~expectations:empty_expectations ~golden_path:path ~updated:false got
      in
      Alcotest.(check bool) "structural mismatches reported" true
        (List.length fr.F.fr_structural >= 2);
      (* The intersection (s1/a) is still verdicted. *)
      Alcotest.(check bool) "intersection still checked" true
        (List.exists (fun c -> c.F.cc_x = "a" && c.F.cc_series = "s1") fr.F.fr_cells));
  let missing =
    F.check_figure ~expectations:empty_expectations
      ~golden_path:"/nonexistent/golden.csv" ~updated:false
      (synthetic_figure [ ("s1", [ ("a", 1.0) ]) ])
  in
  Alcotest.(check bool) "missing golden is structural" true (missing.F.fr_structural <> [])

let test_strict_mode () =
  let base = synthetic_figure [ ("s1", [ ("a", 0.5) ]) ] in
  with_temp_golden base (fun path ->
      let nudged = synthetic_figure [ ("s1", [ ("a", 0.502) ]) ] in
      let fr =
        F.check_figure ~expectations:empty_expectations ~golden_path:path ~updated:false nudged
      in
      let totals = F.(
        {
          t_cells = 1; t_exact = 0; t_within = 1; t_drifted = 0;
          t_bands = 0; t_band_misses = 0; t_shapes = 0; t_shape_misses = 0;
          t_structural = 0;
        })
      in
      let report = { F.r_figures = [ fr ]; r_totals = totals } in
      Alcotest.(check bool) "within-band passes lax" true (F.ok report);
      Alcotest.(check bool) "within-band fails strict" false (F.ok ~strict:true report))

(* Property: for any figure, saving it as golden and re-checking yields
   only Exact verdicts — the --update-golden round-trip. *)
let gen_figure =
  QCheck.Gen.(
    let label_gen prefix = map (fun i -> Printf.sprintf "%s%d" prefix i) (int_range 0 20) in
    let value = frequency [ (4, float_range 0.01 3.0); (1, float_range 3.0 500.0) ] in
    let rows = map (List.sort_uniq compare) (list_size (int_range 1 6) (label_gen "r")) in
    let series = map (List.sort_uniq compare) (list_size (int_range 1 4) (label_gen "s")) in
    map
      (fun (rows, series, vs) ->
        let v = Array.of_list vs in
        let n = Array.length v in
        synthetic_figure
          (List.mapi
             (fun si s ->
               (s, List.mapi (fun ri r -> (r, v.((si * 31 + ri) mod n))) rows))
             series))
      (triple rows series (list_size (int_range 8 16) value)))

let prop_update_golden_roundtrip =
  QCheck.Test.make ~name:"update-golden round-trips to Exact" ~count:50
    (QCheck.make ~print:(fun f -> E.figure_csv f) gen_figure)
    (fun fig ->
      with_temp_golden fig (fun path ->
          let fr =
            F.check_figure ~expectations:empty_expectations ~golden_path:path ~updated:true fig
          in
          fr.F.fr_structural = []
          && List.for_all (fun c -> V.is_exact c.F.cc_verdict) fr.F.fr_cells))

(* ------------------------------------------------------------ shapes *)

(* Shape checks run through check_figure with a synthetic expectations
   record naming the figure under test. *)
let check_shapes fig shapes bands =
  let expectations =
    {
      X.version = 1;
      default_band = 0.02;
      figures =
        [
          {
            X.fig_id = fig.E.id;
            golden = "unused.csv";
            fig_band = None;
            bands;
            shapes = List.map (fun shape -> { X.shape; sprov = "test" }) shapes;
          };
        ];
    }
  in
  with_temp_golden fig (fun path ->
      F.check_figure ~expectations ~golden_path:path ~updated:false fig)

let shape_results fr = List.map (fun s -> s.F.sc_ok) fr.F.fr_shapes

let test_shape_all_below () =
  let fig =
    synthetic_figure ~id:"figS"
      [ ("sim", [ ("k1", 0.5); ("k2", 0.8); ("k3", 1.4) ]) ]
  in
  let fr =
    check_shapes fig
      [
        X.All_below { series = [ "sim" ]; threshold = 1.0; except = [ "k3" ] };
        X.All_below { series = [ "sim" ]; threshold = 1.0; except = [] };
      ]
      []
  in
  Alcotest.(check (list bool)) "except honored; violation caught" [ true; false ]
    (shape_results fr);
  let bad = List.find (fun s -> not s.F.sc_ok) fr.F.fr_shapes in
  Alcotest.(check bool) "violation names the cell" true
    (let s = bad.F.sc_detail in
     let n = String.length "k3" in
     let rec go i = i + n <= String.length s && (String.sub s i n = "k3" || go (i + 1)) in
     go 0)

let test_shape_series_leq_and_closest () =
  let fig =
    synthetic_figure ~id:"figS"
      [
        ("small", [ ("k1", 0.30); ("k2", 0.40) ]);
        ("large", [ ("k1", 0.80); ("k2", 0.95) ]);
      ]
  in
  let fr =
    check_shapes fig
      [
        X.Series_leq { lo_series = "small"; hi_series = "large"; tol = 0.0 };
        X.Series_leq { lo_series = "large"; hi_series = "small"; tol = 0.0 };
        (* large sits much nearer hardware parity (1.0) in ln-space. *)
        X.Closest_to_hw { winner = "large"; rivals = [ "small" ] };
        X.Closest_to_hw { winner = "small"; rivals = [ "large" ] };
      ]
      []
  in
  Alcotest.(check (list bool)) "orderings" [ true; false; true; false ] (shape_results fr)

let test_shape_category_geomean () =
  (* Real Table 1 kernel names so the category mapping resolves. *)
  let cf =
    List.filter_map
      (fun (k : Workloads.Workload.kernel) ->
        if Workloads.Workload.category_name k.Workloads.Workload.category = "Control Flow" then
          Some k.Workloads.Workload.name
        else None)
      Workloads.Microbench.all
  in
  Alcotest.(check bool) "suite has Control Flow kernels" true (List.length cf >= 2);
  let fig = synthetic_figure ~id:"figS" [ ("sim", List.map (fun k -> (k, 0.5)) cf) ] in
  let fr =
    check_shapes fig
      [
        X.Category_geomean { series = "sim"; category = "Control Flow"; glo = 0.4; ghi = 0.6 };
        X.Category_geomean { series = "sim"; category = "Control Flow"; glo = 0.6; ghi = 0.9 };
        X.Category_geomean { series = "sim"; category = "Memory"; glo = 0.0; ghi = 1.0 };
      ]
      []
  in
  (* All values are 0.5, so the geomean is exactly 0.5; a figure with no
     Memory rows must fail that check loudly rather than skip it. *)
  Alcotest.(check (list bool)) "geomean in/out/missing" [ true; false; false ]
    (shape_results fr)

let test_band_checks () =
  let fig =
    synthetic_figure ~id:"figS"
      [ ("sim", [ ("k1", 0.5); ("k2", 0.9) ]); ("fast", [ ("k1", 1.5); ("k2", 1.8) ]) ]
  in
  let fr =
    check_shapes fig []
      [
        (* Specific cell, in range. *)
        { X.bx = Some "k1"; bseries = Some "sim"; blo = 0.4; bhi = 0.6; bprov = "t" };
        (* Whole series, one row out of range. *)
        { X.bx = None; bseries = Some "fast"; blo = 1.0; bhi = 1.6; bprov = "t" };
        (* Missing cell must fail loudly. *)
        { X.bx = Some "zz"; bseries = Some "sim"; blo = 0.0; bhi = 9.0; bprov = "t" };
      ]
  in
  let oks = List.map (fun b -> (b.F.bc_x, b.F.bc_series, b.F.bc_ok)) fr.F.fr_bands in
  Alcotest.(check bool) "specific cell passes" true (List.mem ("k1", "sim", true) oks);
  Alcotest.(check bool) "fast/k1 in series band" true (List.mem ("k1", "fast", true) oks);
  Alcotest.(check bool) "fast/k2 misses series band" true (List.mem ("k2", "fast", false) oks);
  Alcotest.(check bool) "missing cell fails" true (List.mem ("zz", "sim", false) oks)

(* ---------------------------------------------- static golden replay *)

(* Replay every checked-in golden CSV through the full band/shape
   machinery, no simulation: parse the golden values back into a figure
   and check it against itself + the real expectations file.  Catches a
   band edit that contradicts the checked-in data the moment it lands,
   in milliseconds rather than a full validate run. *)
let test_golden_csvs_meet_expectations () =
  let x = ok_exn "load expectations" (X.load expectations_path) in
  List.iter
    (fun id ->
      let path = Filename.concat results_dir (X.golden_file x id) in
      let g = ok_exn (id ^ " golden") (G.load path) in
      let fig =
        {
          E.id;
          title = id;
          note = "";
          reference = Some 1.0;
          series =
            List.map
              (fun s ->
                {
                  E.label = s;
                  points =
                    List.map
                      (fun (xl, _) ->
                        let v =
                          match G.cell g ~x:xl ~series:s with
                          | Some t -> (try float_of_string (String.trim t) with _ -> Float.nan)
                          | None -> Float.nan
                        in
                        (xl, v))
                      g.G.rows;
                })
              (G.series g);
        }
      in
      let expectations = x in
      let fr = F.check_figure ~expectations ~golden_path:path ~updated:false fig in
      Alcotest.(check (list string)) (id ^ " structural") [] fr.F.fr_structural;
      List.iter
        (fun c ->
          if V.is_drifted c.F.cc_verdict then
            Alcotest.failf "%s %s/%s drifted vs own golden: %s" id c.F.cc_x c.F.cc_series
              (V.describe c.F.cc_verdict))
        fr.F.fr_cells;
      List.iter
        (fun b ->
          if not b.F.bc_ok then
            Alcotest.failf "%s band miss %s/%s: %g not in [%g, %g] (%s)" id b.F.bc_x
              b.F.bc_series b.F.bc_value b.F.bc_lo b.F.bc_hi b.F.bc_prov)
        fr.F.fr_bands;
      List.iter
        (fun s ->
          if not s.F.sc_ok then
            Alcotest.failf "%s shape violated: %s — %s (%s)" id s.F.sc_desc s.F.sc_detail
              s.F.sc_prov)
        fr.F.fr_shapes)
    F.known_ids

let suite =
  [
    Alcotest.test_case "jsonx round-trip" `Quick test_jsonx_roundtrip;
    Alcotest.test_case "jsonx parse errors" `Quick test_jsonx_parse;
    Alcotest.test_case "jsonx accessors" `Quick test_jsonx_accessors;
    Alcotest.test_case "verdict classify" `Quick test_verdict_classify;
    QCheck_alcotest.to_alcotest prop_verdict_band;
    Alcotest.test_case "golden csv round-trip" `Quick test_golden_roundtrip;
    Alcotest.test_case "golden of_figure" `Quick test_golden_of_figure;
    Alcotest.test_case "expectations: real file" `Quick test_expectations_load_real;
    Alcotest.test_case "expectations: decode errors" `Quick test_expectations_decode_errors;
    Alcotest.test_case "expand --figures spec" `Quick test_expand_spec;
    Alcotest.test_case "check_figure: exact" `Quick test_check_figure_exact;
    Alcotest.test_case "check_figure: drift" `Quick test_check_figure_drift;
    Alcotest.test_case "check_figure: structural" `Quick test_check_figure_structural;
    Alcotest.test_case "strict mode" `Quick test_strict_mode;
    QCheck_alcotest.to_alcotest prop_update_golden_roundtrip;
    Alcotest.test_case "shape: all-below" `Quick test_shape_all_below;
    Alcotest.test_case "shape: orderings" `Quick test_shape_series_leq_and_closest;
    Alcotest.test_case "shape: category geomean" `Quick test_shape_category_geomean;
    Alcotest.test_case "band checks" `Quick test_band_checks;
    Alcotest.test_case "golden CSVs meet expectations" `Quick test_golden_csvs_meet_expectations;
  ]
