(* Tests for the block-memoized fast path: block detection over compiled
   traces (partition, load/store accounting, digest identity that ignores
   memory addresses but not control targets), fast-forward counter
   contracts on both core models, the central accuracy property —
   memoized replay lands within its own declared error bound of
   full-fidelity replay on random kernel/platform draws — and the cache /
   shared-table plumbing around the engine. *)

module In = Isa.Insn
module T = Trace
module B = Trace.Blocks
module Cat = Platform.Catalog
module Mb = Workloads.Microbench
module R = Simbridge.Runner

(* ---------------------------------------------------- block detection *)

let kernel_trace name ~scale =
  let k = Mb.find name in
  T.compile (k.Workloads.Workload.stream ~scale)

let test_blocks_partition () =
  let tr = kernel_trace "MD" ~scale:0.3 in
  let b = B.analyze tr in
  Alcotest.(check bool) "has instances" true (b.B.n_instances > 0);
  Alcotest.(check bool) "has blocks" true (b.B.n_blocks > 0);
  Alcotest.(check int) "first instance at 0" 0 b.B.starts.(0);
  (* Instances tile the trace: each starts where the previous ended. *)
  let covered = ref 0 in
  for i = 0 to b.B.n_instances - 1 do
    Alcotest.(check int) (Printf.sprintf "instance %d contiguous" i) !covered b.B.starts.(i);
    let id = b.B.ids.(i) in
    Alcotest.(check bool) "id in range" true (id >= 0 && id < b.B.n_blocks);
    Alcotest.(check bool) "positive length" true (b.B.lens.(id) > 0);
    covered := !covered + b.B.lens.(id)
  done;
  Alcotest.(check int) "instances cover the trace" (T.length tr) !covered;
  (* occurs is the instance histogram over blocks. *)
  let occ_sum = Array.fold_left ( + ) 0 b.B.occurs in
  Alcotest.(check int) "occurs sums to instances" b.B.n_instances occ_sum;
  (* Per-block load/store counts, weighted by occurrences, reproduce the
     trace-wide kind histogram. *)
  let loads = ref 0 and stores = ref 0 in
  for id = 0 to b.B.n_blocks - 1 do
    loads := !loads + (b.B.occurs.(id) * b.B.loads.(id));
    stores := !stores + (b.B.occurs.(id) * b.B.stores.(id))
  done;
  Alcotest.(check int) "loads (incl amo)"
    (T.count_kind (fun k -> k = In.Load || k = In.Amo) tr)
    !loads;
  Alcotest.(check int) "stores" (T.count_kind (fun k -> k = In.Store) tr) !stores

(* A two-iteration loop body whose only difference across iterations is
   the memory addresses: both iterations must intern to the same block. *)
let loop_iteration ~base addr =
  [
    In.make ~pc:base ~dst:1 ~src1:2 ~src2:3 Int_alu;
    In.make ~pc:(base + 4) ~dst:4 ~src1:1 ~mem:{ addr; size = 8 } Load;
    In.make ~pc:(base + 8) ~src1:4 ~src2:5 ~ctrl:{ taken = true; target = base } Branch;
  ]

let test_digest_ignores_addresses () =
  let base = 0x1000 in
  let insns = loop_iteration ~base 0x8000 @ loop_iteration ~base 0x9000 in
  let b = B.analyze (T.compile (List.to_seq insns)) in
  Alcotest.(check int) "two instances" 2 b.B.n_instances;
  Alcotest.(check int) "one block" 1 b.B.n_blocks;
  Alcotest.(check int) "occurs twice" 2 b.B.occurs.(0);
  Alcotest.(check int) "loads per instance" 1 b.B.loads.(0)

let test_digest_keeps_targets () =
  (* Same instructions, different branch target: distinct blocks. *)
  let a =
    [
      In.make ~pc:0x1000 ~dst:1 ~src1:2 Int_alu;
      In.make ~pc:0x1004 ~src1:1 ~ctrl:{ taken = true; target = 0x1000 } Branch;
    ]
  in
  let b_insns =
    [
      In.make ~pc:0x1000 ~dst:1 ~src1:2 Int_alu;
      In.make ~pc:0x1004 ~src1:1 ~ctrl:{ taken = true; target = 0x2000 } Branch;
    ]
  in
  let blk = B.analyze (T.compile (List.to_seq (a @ b_insns))) in
  Alcotest.(check int) "two distinct blocks" 2 blk.B.n_blocks

let test_max_len_segmentation () =
  (* A straight-line run longer than max_len splits at the cap. *)
  let insns = List.init 10 (fun i -> In.make ~pc:(0x1000 + (4 * i)) ~dst:1 ~src1:2 Int_alu) in
  let b = B.analyze ~max_len:4 (T.compile (List.to_seq insns)) in
  Alcotest.(check int) "instances 4+4+2" 3 b.B.n_instances;
  let total = Array.fold_left (fun acc id -> acc + b.B.lens.(id)) 0 b.B.ids in
  Alcotest.(check int) "covers all" 10 total

(* ------------------------------------------------------- fast-forward *)

let test_fast_forward_counters () =
  let check_core name create stats_of now feed_ff =
    let c = create () in
    let t0 = now c in
    feed_ff c ~cycles:100 ~insns:10 ~loads:2 ~stores:1;
    let s = stats_of c in
    Alcotest.(check int) (name ^ " insns") 10 s.Uarch.Inorder.instructions;
    Alcotest.(check int) (name ^ " loads") 2 s.Uarch.Inorder.loads;
    Alcotest.(check int) (name ^ " stores") 1 s.Uarch.Inorder.stores;
    Alcotest.(check int) (name ^ " frontier") (t0 + 100) (now c)
  in
  check_core "inorder"
    (fun () -> Uarch.Inorder.create (Uarch.Inorder.rocket ()) (Uarch.Memsys.ideal ~latency:1))
    Uarch.Inorder.stats Uarch.Inorder.now Uarch.Inorder.fast_forward;
  let c = Uarch.Ooo.create (Uarch.Ooo.boom_small ()) (Uarch.Memsys.ideal ~latency:1) in
  let t0 = Uarch.Ooo.now c in
  Uarch.Ooo.fast_forward c ~cycles:64 ~insns:7 ~loads:3 ~stores:2;
  let s = Uarch.Ooo.stats c in
  Alcotest.(check int) "ooo insns" 7 s.Uarch.Ooo.instructions;
  Alcotest.(check int) "ooo loads" 3 s.Uarch.Ooo.loads;
  Alcotest.(check int) "ooo stores" 2 s.Uarch.Ooo.stores;
  Alcotest.(check int) "ooo frontier" (t0 + 64) (Uarch.Ooo.now c);
  let raised =
    try
      Uarch.Ooo.fast_forward c ~cycles:(-1) ~insns:0 ~loads:0 ~stores:0;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative rejected" true raised

(* --------------------------------------------------- accuracy property *)

(* The fast path's contract: est_cycles within its own declared bound of
   the full-fidelity trace replay, instruction/load/store counts exactly
   equal (fast-forward bumps the same counters feeding would), and the
   bound itself small enough to be useful. *)
let memo_kernels = [ "Cca"; "CS1"; "EI"; "EM5"; "DP1d"; "MD"; "MIM" ]

let prop_memo_within_bound =
  let n_k = List.length memo_kernels in
  QCheck.Test.make ~name:"memoized replay within declared bound (random kernel/platform)"
    ~count:16
    QCheck.(pair (int_range 0 (n_k - 1)) bool)
    (fun (ki, use_boom) ->
      let kernel = Mb.find (List.nth memo_kernels ki) in
      let platform = if use_boom then Cat.boom_large else Cat.banana_pi_sim in
      let scale = 0.3 in
      let full = (R.run_kernel_timed ~scale ~engine:`Trace platform kernel).result in
      let m = R.run_kernel_timed ~scale ~engine:`Memo platform kernel in
      let memo = m.result in
      let bound = m.estimate.Sampling.Estimate.ci95_cycles in
      let err = abs (memo.Platform.Soc.cycles - full.Platform.Soc.cycles) in
      if float_of_int err > bound then
        QCheck.Test.fail_reportf "err %d cycles > bound %.0f (full %d, memo %d)" err bound
          full.Platform.Soc.cycles memo.Platform.Soc.cycles;
      (* High-variance kernels (CS1's store-buffer drains) legitimately
         declare wide bounds; "not useless" here means under the full
         cycle count itself.  A tightness assertion on a low-variance
         kernel lives in [test_memo_bound_tight]. *)
      if bound > float_of_int full.Platform.Soc.cycles +. 4096.0 then
        QCheck.Test.fail_reportf "bound %.0f uselessly wide (full %d)" bound
          full.Platform.Soc.cycles;
      memo.Platform.Soc.instructions = full.Platform.Soc.instructions)

let test_memo_bound_tight () =
  (* On a periodic low-variance kernel the declared bound must be a small
     fraction of the run — the fast path is useless if it can only
     promise "within 2x". *)
  let kernel = Mb.find "MD" in
  let m = R.run_kernel_timed ~scale:1.0 ~engine:`Memo Cat.banana_pi_sim kernel in
  let bound = m.estimate.Sampling.Estimate.ci95_cycles in
  let cycles = float_of_int m.result.Platform.Soc.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "bound %.0f within 15%% of %.0f" bound cycles)
    true
    (bound <= (0.15 *. cycles) +. 4096.0)

let test_memo_counter_parity () =
  let kernel = Mb.find "MD" in
  let full = (R.run_kernel_timed ~scale:0.3 ~engine:`Trace Cat.banana_pi_sim kernel).result in
  let memo = (R.run_kernel_timed ~scale:0.3 ~engine:`Memo Cat.banana_pi_sim kernel).result in
  Alcotest.(check int) "instructions" full.Platform.Soc.instructions
    memo.Platform.Soc.instructions

let test_memo_deterministic () =
  let kernel = Mb.find "EI" in
  let a = (R.run_kernel_timed ~scale:0.3 ~engine:`Memo Cat.boom_large kernel).result in
  let b = (R.run_kernel_timed ~scale:0.3 ~engine:`Memo Cat.boom_large kernel).result in
  Alcotest.(check bool) "memoized runs identical without sharing" true (a = b)

(* The --memoize=off path must remain the seed engine bit-for-bit: this
   is the fidelity gate the fast path is measured against. *)
let test_memoize_off_is_seed_engine () =
  let kernel = Mb.find "DP1d" in
  let seq = (R.run_kernel_timed ~scale:0.3 ~engine:`Seq Cat.banana_pi_sim kernel).result in
  let tr = (R.run_kernel_timed ~scale:0.3 ~engine:`Trace Cat.banana_pi_sim kernel).result in
  Alcotest.(check bool) "`Trace = `Seq bit-identity" true (seq = tr)

let test_memo_rejects_sampling () =
  let kernel = Mb.find "EI" in
  let raised =
    try
      ignore
        (R.run_kernel_timed ~scale:0.2 ~policy:Sampling.Policy.default_sampled ~engine:`Memo
           Cat.banana_pi_sim kernel);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "memo + sampled rejected" true raised;
  let raised_budget =
    try
      ignore (R.run_kernel_timed ~scale:0.2 ~budget:1000 ~engine:`Memo Cat.banana_pi_sim kernel);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "memo + budget rejected" true raised_budget

(* --------------------------------------------------- caches and table *)

let test_block_cache_counts () =
  R.trace_cache_clear ();
  R.block_cache_clear ();
  let kernel = Mb.find "EM5" in
  ignore (R.run_kernel_timed ~scale:0.2 ~engine:`Memo Cat.banana_pi_sim kernel);
  let s1 = R.block_cache_stats () in
  (* Same (kernel, scale, seed) on another platform: analysis is
     platform-independent and must be reused. *)
  ignore (R.run_kernel_timed ~scale:0.2 ~engine:`Memo Cat.boom_large kernel);
  let s2 = R.block_cache_stats () in
  Alcotest.(check bool) "first run misses" true (s1.R.bc_misses > 0);
  Alcotest.(check int) "second run analyzes nothing" s1.R.bc_misses s2.R.bc_misses;
  Alcotest.(check bool) "second run hits" true (s2.R.bc_hits > s1.R.bc_hits);
  R.block_cache_clear ();
  let s3 = R.block_cache_stats () in
  Alcotest.(check int) "clear zeroes" 0 (s3.R.bc_hits + s3.R.bc_misses)

let test_memo_stats_accumulate () =
  R.memo_stats_clear ();
  let kernel = Mb.find "Cca" in
  ignore (R.run_kernel_timed ~scale:0.3 ~engine:`Memo Cat.banana_pi_sim kernel);
  let s = R.memo_stats () in
  Alcotest.(check int) "one run" 1 s.R.m_runs;
  Alcotest.(check bool) "instances counted" true (s.R.m_instances > 0);
  Alcotest.(check bool) "fast-forward happened" true (s.R.m_hits > 0 && s.R.m_ff_insns > 0);
  Alcotest.(check bool) "some detail remains" true (s.R.m_measured_insns > 0);
  R.memo_stats_clear ();
  Alcotest.(check int) "clear zeroes" 0 (R.memo_stats ()).R.m_instances

(* Shared-table behaviour, tested against the engine directly so the
   runner's process-global opt-in stays untouched for other tests. *)
let test_shared_table_seeds () =
  let kernel = Mb.find "MD" in
  let tr = T.compile (kernel.Workloads.Workload.stream ~scale:0.3) in
  let blocks = B.analyze tr in
  let run_once table =
    let soc = Platform.Soc.create Cat.banana_pi_sim in
    let core =
      {
        Uarch.Memo.feed_range = (fun ~lo ~hi -> Platform.Soc.feed_trace soc tr ~lo ~hi);
        fast_forward =
          (fun ~cycles ~insns ~loads ~stores ->
            Platform.Soc.fast_forward soc ~cycles ~insns ~loads ~stores);
        now = (fun () -> (Platform.Soc.core_iface soc 0).Smpi.now ());
      }
    in
    Uarch.Memo.run ?table ~fingerprint:42 core blocks
  in
  let cold = run_once None in
  let table = Uarch.Memo.Table.create () in
  let first = run_once (Some table) in
  Alcotest.(check bool) "table populated" true (Uarch.Memo.Table.entries table > 0);
  let second = run_once (Some table) in
  (* Seeded costs let the second run fast-forward more and measure less. *)
  Alcotest.(check bool) "seeded run measures less" true
    (second.Uarch.Memo.measured_insns < first.Uarch.Memo.measured_insns);
  (* And it must still agree with an unshared run within both bounds. *)
  let err = abs (second.Uarch.Memo.est_cycles - cold.Uarch.Memo.est_cycles) in
  Alcotest.(check bool) "seeded run within bound" true
    (float_of_int err <= cold.Uarch.Memo.err_bound_cycles +. second.Uarch.Memo.err_bound_cycles)

let suite =
  [
    Alcotest.test_case "block partition and accounting" `Quick test_blocks_partition;
    Alcotest.test_case "digest ignores memory addresses" `Quick test_digest_ignores_addresses;
    Alcotest.test_case "digest keeps control targets" `Quick test_digest_keeps_targets;
    Alcotest.test_case "max_len splits straight-line runs" `Quick test_max_len_segmentation;
    Alcotest.test_case "fast-forward counter contract" `Quick test_fast_forward_counters;
    QCheck_alcotest.to_alcotest prop_memo_within_bound;
    Alcotest.test_case "bound tight on low-variance kernel" `Quick test_memo_bound_tight;
    Alcotest.test_case "memo counter parity with full replay" `Quick test_memo_counter_parity;
    Alcotest.test_case "memoized replay deterministic" `Quick test_memo_deterministic;
    Alcotest.test_case "memoize-off equals seed engine" `Quick test_memoize_off_is_seed_engine;
    Alcotest.test_case "memo rejects sampling and budgets" `Quick test_memo_rejects_sampling;
    Alcotest.test_case "block cache hit accounting" `Quick test_block_cache_counts;
    Alcotest.test_case "memo stats accumulate" `Quick test_memo_stats_accumulate;
    Alcotest.test_case "shared table seeds later runs" `Quick test_shared_table_seeds;
  ]
