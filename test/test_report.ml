(* Tests for table/chart rendering. *)

let test_table_render () =
  let t = Report.Table.create ~headers:[ "a"; "bb" ] in
  Report.Table.add_row t [ "1"; "2" ];
  Report.Table.add_row t [ "333"; "4" ];
  let s = Report.Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "4+ lines" true (List.length lines >= 4);
  (* columns aligned: each data line at least as wide as widest cell *)
  Alcotest.(check bool) "has rule" true (String.length (List.nth lines 1) >= 3)

let test_table_width_mismatch () =
  let t = Report.Table.create ~headers:[ "a" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: width mismatch") (fun () ->
      Report.Table.add_row t [ "1"; "2" ])

let test_csv_quoting () =
  let t = Report.Table.create ~headers:[ "name"; "v" ] in
  Report.Table.add_row t [ "has,comma"; "x\"y" ];
  let csv = Report.Table.to_csv t in
  Alcotest.(check bool) "comma quoted" true
    (String.split_on_char '\n' csv |> fun l -> String.length (List.nth l 1) > 0);
  Alcotest.(check bool) "quote doubled" true
    (let s = csv in
     let rec find i = i + 4 <= String.length s && (String.sub s i 4 = "x\"\"y" || find (i + 1)) in
     find 0)

(* A minimal RFC-4180 parser (quoted fields, doubled quotes, embedded
   commas/newlines) used to prove Table.to_csv quoting round-trips. *)
let parse_csv s =
  let rows = ref [] and row = ref [] and field = Buffer.create 16 in
  let flush_field () =
    row := Buffer.contents field :: !row;
    Buffer.clear field
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let n = String.length s in
  let rec go i ~quoted =
    if i >= n then (if !row <> [] || Buffer.length field > 0 then flush_row ())
    else
      let c = s.[i] in
      if quoted then
        if c = '"' then
          if i + 1 < n && s.[i + 1] = '"' then begin
            Buffer.add_char field '"';
            go (i + 2) ~quoted:true
          end
          else go (i + 1) ~quoted:false
        else begin
          Buffer.add_char field c;
          go (i + 1) ~quoted:true
        end
      else
        match c with
        | '"' -> go (i + 1) ~quoted:true
        | ',' ->
          flush_field ();
          go (i + 1) ~quoted:false
        | '\n' ->
          flush_row ();
          go (i + 1) ~quoted:false
        | c ->
          Buffer.add_char field c;
          go (i + 1) ~quoted:false
  in
  go 0 ~quoted:false;
  List.rev !rows

let test_csv_round_trip () =
  let headers = [ "name"; "value" ] in
  let rows =
    [
      [ "plain"; "1" ];
      [ "has,comma"; "2" ];
      [ "has\"quote"; "3" ];
      [ "multi\nline"; "4" ];
      [ "all,\"of\nit\""; "5" ];
      [ ""; "" ];
    ]
  in
  let t = Report.Table.create ~headers in
  List.iter (Report.Table.add_row t) rows;
  let parsed = parse_csv (Report.Table.to_csv t) in
  Alcotest.(check (list (list string))) "round trip" (headers :: rows) parsed

let test_cell_f () =
  Alcotest.(check string) "integer" "3" (Report.Table.cell_f 3.0);
  Alcotest.(check string) "small" "0.3500" (Report.Table.cell_f 0.35);
  Alcotest.(check string) "mid" "1.250" (Report.Table.cell_f 1.25)

let test_bar_scaling () =
  Alcotest.(check string) "full" "##########" (Report.Chart.bar ~width:10 ~max_value:1.0 1.0);
  Alcotest.(check string) "half" "#####" (Report.Chart.bar ~width:10 ~max_value:1.0 0.5);
  Alcotest.(check string) "zero" "" (Report.Chart.bar ~width:10 ~max_value:1.0 0.0);
  Alcotest.(check string) "clamped" "##########" (Report.Chart.bar ~width:10 ~max_value:1.0 5.0)

let test_grouped_bars () =
  let s =
    Report.Chart.grouped_bars ~width:20 ~reference:1.0 ~title:"t"
      ~groups:[ ("g1", [ ("a", 0.5); ("b", 1.5) ]); ("g2", [ ("a", 1.0) ]) ]
      ()
  in
  Alcotest.(check bool) "contains labels" true
    (List.for_all
       (fun needle ->
         let nl = String.length needle and hl = String.length s in
         let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
         go 0)
       [ "g1/a"; "g1/b"; "g2/a"; "0.500"; "1.500" ])

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table width check" `Quick test_table_width_mismatch;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "csv quoting round-trip" `Quick test_csv_round_trip;
    Alcotest.test_case "cell formatting" `Quick test_cell_f;
    Alcotest.test_case "bar scaling" `Quick test_bar_scaling;
    Alcotest.test_case "grouped bars" `Quick test_grouped_bars;
  ]
