(* Tests for the serve subsystem: protocol round-trips (qcheck),
   malformed-frame rejection, the batching engine (dedup / coalesce /
   response cache / oracle identity), the blocking job queue, and a real
   Unix-socket daemon exercised by concurrent clients including a
   mid-batch shutdown that must never leave a partial frame. *)

module P = Serve.Protocol
module Engine = Serve.Engine
module J = Validate.Jsonx

(* ------------------------------------------------------------ protocol *)

let gen_request =
  let open QCheck.Gen in
  let id = map (Printf.sprintf "r%d") small_nat in
  let name = oneofl [ "fig1"; "fig2"; "fig7"; "x"; "weird fig"; "banana-pi-sim" ] in
  let scale = oneof [ float_range 0.001 100.0; return 1.0; return 0.15; return 8.0 ] in
  let op =
    oneof
      [
        return P.Ping;
        return P.Stats;
        return P.Shutdown;
        map3 (fun fmt figure scale -> P.Run (P.Figure { fmt; figure; scale }))
          (oneofl [ `Csv; `Render ])
          name scale;
        map3
          (fun platform kernel scale -> P.Run (P.Cell { platform; kernel; scale }))
          name name scale;
      ]
  in
  map2 (fun rq_id rq_op -> P.{ rq_id; rq_op }) id op

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request print -> parse -> print is byte-identical" ~count:500
    (QCheck.make gen_request) (fun r ->
      let line = P.print_request r in
      match P.parse_request line with
      | Error msg -> QCheck.Test.fail_reportf "own frame rejected: %s" msg
      | Ok r' -> String.equal line (P.print_request r'))

let prop_request_frame_single_line =
  QCheck.Test.make ~name:"request frames never contain raw newlines" ~count:500
    (QCheck.make gen_request) (fun r -> not (String.contains (P.print_request r) '\n'))

let test_response_roundtrip () =
  let report =
    J.Obj [ ("served", J.Str "computed"); ("phases", J.Arr [ J.Obj [ ("name", J.Str "measure") ] ]) ]
  in
  let check r =
    let line = P.print_response r in
    Alcotest.(check bool) "single line" false (String.contains line '\n');
    match P.parse_response line with
    | Error msg -> Alcotest.failf "own response rejected: %s" msg
    | Ok r' -> Alcotest.(check string) "byte-identical" line (P.print_response r')
  in
  check { P.rs_id = "a"; rs_result = Ok ("x,y\n1,2\n", report) };
  check { P.rs_id = "b"; rs_result = Error "unknown figure \"fig99\"" }

let test_malformed_frames () =
  let valid =
    P.print_request
      { P.rq_id = "a"; rq_op = P.Run (P.Figure { fmt = `Csv; figure = "fig1"; scale = 1.0 }) }
  in
  let reject what line =
    match P.parse_request line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should have been rejected: %s" what line
  in
  reject "truncated frame" (String.sub valid 0 (String.length valid - 5));
  reject "non-JSON" "hello there";
  reject "empty line" "";
  reject "non-object" "[1,2,3]";
  reject "missing schema" {|{"id":"x","op":"ping"}|};
  reject "wrong schema version" {|{"schema":"simbridge-serve/2","id":"x","op":"ping"}|};
  reject "missing id" {|{"schema":"simbridge-serve/1","op":"ping"}|};
  reject "empty id" {|{"schema":"simbridge-serve/1","id":"","op":"ping"}|};
  reject "unknown op" {|{"schema":"simbridge-serve/1","id":"x","op":"dance"}|};
  reject "csv without figure" {|{"schema":"simbridge-serve/1","id":"x","op":"csv"}|};
  reject "negative scale"
    {|{"schema":"simbridge-serve/1","id":"x","op":"csv","figure":"fig1","scale":-1}|};
  reject "zero scale"
    {|{"schema":"simbridge-serve/1","id":"x","op":"csv","figure":"fig1","scale":0}|};
  reject "string scale"
    {|{"schema":"simbridge-serve/1","id":"x","op":"csv","figure":"fig1","scale":"big"}|};
  reject "cell without kernel"
    {|{"schema":"simbridge-serve/1","id":"x","op":"cell","platform":"banana-pi-sim"}|};
  (* the wrong-schema error must say what the server does speak *)
  (match P.parse_request {|{"schema":"bogus/9","id":"x","op":"ping"}|} with
  | Error msg ->
    let has_needle needle =
      let n = String.length needle and l = String.length msg in
      let rec go i = i + n <= l && (String.sub msg i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the supported schema" true (has_needle P.schema)
  | Ok _ -> Alcotest.fail "bogus schema accepted");
  (* scale defaults to 1.0 when absent *)
  match P.parse_request {|{"schema":"simbridge-serve/1","id":"x","op":"csv","figure":"fig1"}|} with
  | Ok { P.rq_op = P.Run (P.Figure { scale; _ }); _ } ->
    Alcotest.(check (float 0.0)) "default scale" 1.0 scale
  | _ -> Alcotest.fail "frame without scale should parse"

let test_addr_parsing () =
  Alcotest.(check bool) "bare path" true (P.addr_of_string "/tmp/x.sock" = Ok (`Unix "/tmp/x.sock"));
  Alcotest.(check bool) "unix: prefix" true (P.addr_of_string "unix:x.sock" = Ok (`Unix "x.sock"));
  Alcotest.(check bool) "tcp" true (P.addr_of_string "tcp:localhost:7007" = Ok (`Tcp ("localhost", 7007)));
  Alcotest.(check bool) "bad port" true (Result.is_error (P.addr_of_string "tcp:localhost:banana"));
  Alcotest.(check bool) "no port" true (Result.is_error (P.addr_of_string "tcp:localhost"));
  Alcotest.(check bool) "empty" true (Result.is_error (P.addr_of_string ""));
  List.iter
    (fun a ->
      match P.addr_of_string (P.addr_to_string a) with
      | Ok a' -> Alcotest.(check bool) "addr round-trips" true (a = a')
      | Error msg -> Alcotest.failf "addr round-trip failed: %s" msg)
    [ `Unix "/tmp/y.sock"; `Tcp ("127.0.0.1", 9) ]

(* ---------------------------------------------------------------- jobq *)

let test_jobq_order_and_close () =
  let q = Parallel.Jobq.create () in
  List.iter (fun i -> Alcotest.(check bool) "push accepted" true (Parallel.Jobq.push q i)) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "drains in push order" [ 1; 2; 3 ] (Parallel.Jobq.pop_batch q);
  ignore (Parallel.Jobq.push q 4);
  Parallel.Jobq.close q;
  Alcotest.(check bool) "push after close refused" false (Parallel.Jobq.push q 5);
  Alcotest.(check (list int)) "queued items survive close" [ 4 ] (Parallel.Jobq.pop_batch q);
  Alcotest.(check (list int)) "closed+empty returns []" [] (Parallel.Jobq.pop_batch q)

let test_jobq_blocking_consumer () =
  let q = Parallel.Jobq.create () in
  let got = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec loop () =
          match Parallel.Jobq.pop_batch q with
          | [] -> ()
          | items ->
            got := !got @ items;
            loop ()
        in
        loop ())
      ()
  in
  List.iter
    (fun i ->
      Thread.yield ();
      ignore (Parallel.Jobq.push q i))
    [ 10; 20; 30 ];
  (* close wakes the blocked consumer once everything is drained *)
  Unix.sleepf 0.02;
  Parallel.Jobq.close q;
  Thread.join consumer;
  Alcotest.(check (list int)) "consumer saw every item in order" [ 10; 20; 30 ] !got

(* -------------------------------------------------------------- engine *)

(* ED1 (length-1 int dependency chain) at tiny scale: the cheapest real
   simulation cell, so engine tests stay fast. *)
let cellq ?(scale = 0.02) () = P.Cell { platform = "banana-pi-sim"; kernel = "ED1"; scale }

let mk_pending id q = Engine.{ p_req = P.{ rq_id = id; rq_op = Run q }; p_enqueued_s = 0.0 }

let served_of resp =
  match resp.P.rs_result with
  | Error msg -> Alcotest.failf "unexpected error response: %s" msg
  | Ok (_, report) -> (
    match J.member "served" report with
    | Some (J.Str s) -> s
    | _ -> Alcotest.fail "report has no served field")

let payload_of resp =
  match resp.P.rs_result with
  | Error msg -> Alcotest.failf "unexpected error response: %s" msg
  | Ok (payload, _) -> payload

let test_engine_dedup_and_cache () =
  let e = Engine.create ~jobs:1 () in
  let q = cellq () in
  let batch = [ mk_pending "a" q; mk_pending "b" q; mk_pending "c" (cellq ~scale:0.03 ()) ] in
  (match Engine.execute e batch with
  | [ ra; rb; rc ] ->
    Alcotest.(check string) "ids echoed in order" "a,b,c"
      (String.concat "," [ ra.P.rs_id; rb.P.rs_id; rc.P.rs_id ]);
    Alcotest.(check string) "first arrival computed" "computed" (served_of ra);
    Alcotest.(check string) "duplicate coalesced" "coalesced" (served_of rb);
    Alcotest.(check string) "distinct key computed" "computed" (served_of rc);
    Alcotest.(check string) "coalesced payload identical" (payload_of ra) (payload_of rb)
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs));
  (* a later batch with the same key is served from the response LRU *)
  match Engine.execute e [ mk_pending "d" q ] with
  | [ rd ] ->
    Alcotest.(check string) "second batch cached" "cached" (served_of rd);
    (match Engine.oracle q with
    | Ok expect -> Alcotest.(check string) "cached payload = sequential oracle" expect (payload_of rd)
    | Error msg -> Alcotest.failf "oracle failed: %s" msg);
    Alcotest.(check int) "four requests counted" 4 (Engine.requests_served e)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)

let test_engine_errors_and_inline () =
  let e = Engine.create ~jobs:1 () in
  let bad_fig = P.Figure { fmt = `Csv; figure = "fig99"; scale = 1.0 } in
  let bad_cell = P.Cell { platform = "banana-pi-sim"; kernel = "NOPE"; scale = 1.0 } in
  let batch =
    [
      mk_pending "f" bad_fig;
      mk_pending "c" bad_cell;
      Engine.{ p_req = P.{ rq_id = "p"; rq_op = Ping }; p_enqueued_s = 0.0 };
      Engine.{ p_req = P.{ rq_id = "s"; rq_op = Stats }; p_enqueued_s = 0.0 };
    ]
  in
  match Engine.execute e batch with
  | [ rf; rc; rp; rs ] ->
    (match rf.P.rs_result with
    | Error msg -> Alcotest.(check bool) "unknown figure named" true
        (String.length msg > 0 && String.sub msg 0 14 = "unknown figure")
    | Ok _ -> Alcotest.fail "fig99 should fail");
    Alcotest.(check bool) "unknown kernel errors" true (Result.is_error rc.P.rs_result);
    Alcotest.(check string) "ping answers pong" "pong" (payload_of rp);
    Alcotest.(check string) "ping served inline" "inline" (served_of rp);
    (match J.parse (payload_of rs) with
    | Ok stats ->
      Alcotest.(check bool) "stats payload is JSON with schema" true
        (J.member "schema" stats = Some (J.Str "simbridge-serve-stats/1"))
    | Error msg -> Alcotest.failf "stats payload unparseable: %s" msg)
  | rs -> Alcotest.failf "expected 4 responses, got %d" (List.length rs)

let test_engine_figure_oracle_identity () =
  (* the headline contract, in-process: a served figure payload is
     byte-identical to the one-shot CSV at a different jobs setting *)
  let e = Engine.create ~jobs:2 () in
  let q = P.Figure { fmt = `Csv; figure = "fig1"; scale = 0.05 } in
  match Engine.execute e [ mk_pending "x" q ] with
  | [ r ] -> (
    match Engine.oracle q with
    | Ok expect ->
      Alcotest.(check string) "served fig1 = sequential oracle" expect (payload_of r)
    | Error msg -> Alcotest.failf "oracle failed: %s" msg)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)

(* -------------------------------------------------------------- server *)

let with_server ?jobs f =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "simbridge-test-%d-%d.sock" (Unix.getpid ()) (Hashtbl.hash f land 0xFFFF))
  in
  let srv = Serve.Server.create ?jobs (`Unix sock) in
  let th = Thread.create Serve.Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop srv;
      Thread.join th;
      try Unix.unlink sock with Unix.Unix_error _ -> ())
    (fun () -> f sock srv)

let test_server_concurrent_clients () =
  with_server ~jobs:1 (fun sock _srv ->
      let q = cellq () in
      let expect = match Engine.oracle q with Ok p -> p | Error m -> Alcotest.fail m in
      let run_client tag =
        let c = Serve.Client.connect (`Unix sock) in
        let r1 = Serve.Client.rpc c P.{ rq_id = tag ^ "-cell"; rq_op = Run q } in
        let r2 = Serve.Client.rpc c P.{ rq_id = tag ^ "-ping"; rq_op = Ping } in
        Serve.Client.close c;
        (r1, r2)
      in
      let results = Array.make 2 None in
      let threads =
        List.init 2 (fun i ->
            Thread.create (fun () -> results.(i) <- Some (run_client (string_of_int i))) ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Some (Ok { P.rs_result = Ok (payload, _); _ }, Ok { P.rs_result = Ok (pong, _); _ })
            ->
            Alcotest.(check string) (Printf.sprintf "client %d payload" i) expect payload;
            Alcotest.(check string) (Printf.sprintf "client %d pong" i) "pong" pong
          | _ -> Alcotest.failf "client %d did not get clean responses" i)
        results)

let test_server_drain_no_partial_frames () =
  (* pipeline several distinct computations, then a shutdown frame: the
     daemon must answer every request before closing the socket, and
     every byte received must form complete newline-terminated frames *)
  with_server ~jobs:1 (fun sock srv ->
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (ADDR_UNIX sock);
      let send line = ignore (Unix.write_substring fd line 0 (String.length line)) in
      let n_cells = 5 in
      for i = 0 to n_cells - 1 do
        send
          (P.print_request
             P.{
                 rq_id = Printf.sprintf "q%d" i;
                 rq_op = Run (cellq ~scale:(0.01 +. (0.005 *. float_of_int i)) ());
               }
          ^ "\n")
      done;
      send (P.print_request P.{ rq_id = "bye"; rq_op = Shutdown } ^ "\n");
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (ECONNRESET, _, _) -> ()
      in
      drain ();
      Unix.close fd;
      let data = Buffer.contents buf in
      Alcotest.(check bool) "stream ends on a frame boundary" true
        (String.length data > 0 && data.[String.length data - 1] = '\n');
      let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' data) in
      Alcotest.(check int) "every request answered before EOF" (n_cells + 1) (List.length lines);
      List.iteri
        (fun i line ->
          match P.parse_response line with
          | Ok resp ->
            let expect = if i < n_cells then Printf.sprintf "q%d" i else "bye" in
            Alcotest.(check string) "responses in request order" expect resp.P.rs_id
          | Error msg -> Alcotest.failf "partial or garbled frame %S: %s" line msg)
        lines;
      (* the shutdown frame stopped the daemon; run returns on its own *)
      Alcotest.(check bool) "server stopping" true (Serve.Server.stopped srv))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_request_frame_single_line;
    Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "malformed frames rejected" `Quick test_malformed_frames;
    Alcotest.test_case "endpoint address parsing" `Quick test_addr_parsing;
    Alcotest.test_case "jobq order and close" `Quick test_jobq_order_and_close;
    Alcotest.test_case "jobq blocking consumer" `Quick test_jobq_blocking_consumer;
    Alcotest.test_case "engine dedup, coalesce, response cache" `Quick test_engine_dedup_and_cache;
    Alcotest.test_case "engine errors and inline ops" `Quick test_engine_errors_and_inline;
    Alcotest.test_case "served figure = sequential oracle" `Slow test_engine_figure_oracle_identity;
    Alcotest.test_case "unix-socket daemon, concurrent clients" `Quick
      test_server_concurrent_clients;
    Alcotest.test_case "mid-batch shutdown leaves no partial frame" `Quick
      test_server_drain_no_partial_frames;
  ]
