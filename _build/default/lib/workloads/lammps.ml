module Gen = Prog.Gen
module E = Emit

type style = Lj | Chain

type trajectory = {
  atoms : int;
  steps : int;
  box : float;
  potential_energy : float array;
  kinetic_energy : float array;
  pair_count : int array;
}

(* Recorded per-step work, used by the emission layer. *)
type step_record = {
  pairs : (int * int * bool) array;  (* (i, j, within cutoff) *)
  bonds_r : (int * int) array;
  rebuilt : bool;
}

type sim = {
  style : style;
  n : int;
  box : float;
  x : float array;
  y : float array;
  z : float array;
  vx : float array;
  vy : float array;
  vz : float array;
  fx : float array;
  fy : float array;
  fz : float array;
  bonds : (int * int) array;
}

let dt = 0.005
let skin = 0.3

let cutoff = function Lj -> 2.5 | Chain -> Float.pow 2.0 (1.0 /. 6.0)

let pbc box d =
  if d > box /. 2.0 then d -. box else if d < -.box /. 2.0 then d +. box else d

let init ?(seed = 0x7A) ~style ~atoms () =
  let rng = Util.Rng.create seed in
  let density = match style with Lj -> 0.8 | Chain -> 0.7 in
  let box = Float.cbrt (float_of_int atoms /. density) in
  let x = Array.make atoms 0.0
  and y = Array.make atoms 0.0
  and z = Array.make atoms 0.0 in
  let bonds =
    match style with
    | Lj ->
      (* Perturbed simple-cubic lattice. *)
      let side = int_of_float (Float.ceil (Float.cbrt (float_of_int atoms))) in
      let spacing = box /. float_of_int side in
      for i = 0 to atoms - 1 do
        let ix = i mod side and iy = i / side mod side and iz = i / (side * side) in
        let jitter () = Util.Rng.float rng 0.1 -. 0.05 in
        x.(i) <- (float_of_int ix +. 0.5) *. spacing +. jitter ();
        y.(i) <- (float_of_int iy +. 0.5) *. spacing +. jitter ();
        z.(i) <- (float_of_int iz +. 0.5) *. spacing +. jitter ()
      done;
      [||]
    | Chain ->
      (* Random-walk chains of 25 beads, bond length ~0.97. *)
      let chain_len = 25 in
      let bonds = ref [] in
      for i = 0 to atoms - 1 do
        if i mod chain_len = 0 then begin
          x.(i) <- Util.Rng.float rng box;
          y.(i) <- Util.Rng.float rng box;
          z.(i) <- Util.Rng.float rng box
        end
        else begin
          let theta = Util.Rng.float rng (2.0 *. Float.pi) in
          let cphi = Util.Rng.float rng 2.0 -. 1.0 in
          let sphi = sqrt (max 0.0 (1.0 -. (cphi *. cphi))) in
          let b = 0.97 in
          let wrap v = v -. (box *. Float.floor (v /. box)) in
          x.(i) <- wrap (x.(i - 1) +. (b *. sphi *. cos theta));
          y.(i) <- wrap (y.(i - 1) +. (b *. sphi *. sin theta));
          z.(i) <- wrap (z.(i - 1) +. (b *. cphi));
          bonds := (i - 1, i) :: !bonds
        end
      done;
      Array.of_list (List.rev !bonds)
  in
  let vx = Array.init atoms (fun _ -> Util.Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let vy = Array.init atoms (fun _ -> Util.Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
  let vz = Array.init atoms (fun _ -> Util.Rng.gaussian rng ~mu:0.0 ~sigma:1.0) in
  (* Remove net momentum. *)
  let center v =
    let m = Array.fold_left ( +. ) 0.0 v /. float_of_int atoms in
    Array.iteri (fun i vi -> v.(i) <- vi -. m) v
  in
  center vx;
  center vy;
  center vz;
  {
    style;
    n = atoms;
    box;
    x;
    y;
    z;
    vx;
    vy;
    vz;
    fx = Array.make atoms 0.0;
    fy = Array.make atoms 0.0;
    fz = Array.make atoms 0.0;
    bonds;
  }

(* Half neighbor list via cell binning (all-pairs fallback for boxes too
   small to bin). *)
let build_neighbors sim =
  let rc = cutoff sim.style +. skin in
  let rc2 = rc *. rc in
  let pairs = ref [] in
  let consider i j =
    let dx = pbc sim.box (sim.x.(i) -. sim.x.(j)) in
    let dy = pbc sim.box (sim.y.(i) -. sim.y.(j)) in
    let dz = pbc sim.box (sim.z.(i) -. sim.z.(j)) in
    if (dx *. dx) +. (dy *. dy) +. (dz *. dz) <= rc2 then pairs := (i, j) :: !pairs
  in
  let ncell = int_of_float (sim.box /. rc) in
  if ncell < 3 then
    for i = 0 to sim.n - 1 do
      for j = i + 1 to sim.n - 1 do
        consider i j
      done
    done
  else begin
    let cell_of i =
      let c v = int_of_float (v /. sim.box *. float_of_int ncell) mod ncell in
      (c sim.x.(i) * ncell * ncell) + (c sim.y.(i) * ncell) + c sim.z.(i)
    in
    let cells = Hashtbl.create 256 in
    for i = 0 to sim.n - 1 do
      let c = cell_of i in
      Hashtbl.replace cells c (i :: (Option.value ~default:[] (Hashtbl.find_opt cells c)))
    done;
    let neighbors_of c =
      let cz = c mod ncell and cy = c / ncell mod ncell and cx = c / (ncell * ncell) in
      List.concat_map
        (fun dx ->
          List.concat_map
            (fun dy ->
              List.map
                (fun dz ->
                  let w v = (v + ncell) mod ncell in
                  (w (cx + dx) * ncell * ncell) + (w (cy + dy) * ncell) + w (cz + dz))
                [ -1; 0; 1 ])
            [ -1; 0; 1 ])
        [ -1; 0; 1 ]
    in
    Hashtbl.iter
      (fun c members ->
        let nearby = List.sort_uniq compare (neighbors_of c) in
        List.iter
          (fun i ->
            List.iter
              (fun c' ->
                match Hashtbl.find_opt cells c' with
                | None -> ()
                | Some others -> List.iter (fun j -> if i < j then consider i j) others)
              nearby)
          members)
      cells
  end;
  Array.of_list !pairs

(* One force evaluation; returns (potential energy, per-pair accept flags). *)
let compute_forces sim neighbors =
  let rc = cutoff sim.style in
  let rc2 = rc *. rc in
  Array.fill sim.fx 0 sim.n 0.0;
  Array.fill sim.fy 0 sim.n 0.0;
  Array.fill sim.fz 0 sim.n 0.0;
  let pe = ref 0.0 in
  let flags =
    Array.map
      (fun (i, j) ->
        let dx = pbc sim.box (sim.x.(i) -. sim.x.(j)) in
        let dy = pbc sim.box (sim.y.(i) -. sim.y.(j)) in
        let dz = pbc sim.box (sim.z.(i) -. sim.z.(j)) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 <= rc2 && r2 > 1e-12 then begin
          let inv2 = 1.0 /. r2 in
          let inv6 = inv2 *. inv2 *. inv2 in
          let ff = 48.0 *. inv2 *. inv6 *. (inv6 -. 0.5) in
          sim.fx.(i) <- sim.fx.(i) +. (ff *. dx);
          sim.fy.(i) <- sim.fy.(i) +. (ff *. dy);
          sim.fz.(i) <- sim.fz.(i) +. (ff *. dz);
          sim.fx.(j) <- sim.fx.(j) -. (ff *. dx);
          sim.fy.(j) <- sim.fy.(j) -. (ff *. dy);
          sim.fz.(j) <- sim.fz.(j) -. (ff *. dz);
          pe := !pe +. (4.0 *. inv6 *. (inv6 -. 1.0));
          (i, j, true)
        end
        else (i, j, false))
      neighbors
  in
  (* FENE bonds for the chain benchmark. *)
  Array.iter
    (fun (i, j) ->
      let dx = pbc sim.box (sim.x.(i) -. sim.x.(j)) in
      let dy = pbc sim.box (sim.y.(i) -. sim.y.(j)) in
      let dz = pbc sim.box (sim.z.(i) -. sim.z.(j)) in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
      let k = 30.0 and r0 = 1.5 in
      let r0sq = r0 *. r0 in
      let frac = Float.min 0.9 (r2 /. r0sq) in
      let ff = -.k /. (1.0 -. frac) in
      sim.fx.(i) <- sim.fx.(i) +. (ff *. dx);
      sim.fy.(i) <- sim.fy.(i) +. (ff *. dy);
      sim.fz.(i) <- sim.fz.(i) +. (ff *. dz);
      sim.fx.(j) <- sim.fx.(j) -. (ff *. dx);
      sim.fy.(j) <- sim.fy.(j) -. (ff *. dy);
      sim.fz.(j) <- sim.fz.(j) -. (ff *. dz);
      pe := !pe -. (0.5 *. k *. r0sq *. log (1.0 -. frac)))
    sim.bonds;
  (!pe, flags)

let kinetic sim =
  let ke = ref 0.0 in
  for i = 0 to sim.n - 1 do
    ke := !ke +. (0.5 *. ((sim.vx.(i) ** 2.0) +. (sim.vy.(i) ** 2.0) +. (sim.vz.(i) ** 2.0)))
  done;
  !ke

(* Velocity-Verlet with neighbor rebuild every [rebuild_every] steps;
   records per-step pair work. *)
let run_md ?(seed = 0x7A) ~style ~atoms ~steps () =
  let sim = init ~seed ~style ~atoms () in
  let rebuild_every = 3 in
  let neighbors = ref (build_neighbors sim) in
  let records = ref [] in
  let pe0, _ = compute_forces sim !neighbors in
  let pes = ref [ pe0 ] in
  let kes = ref [ kinetic sim ] in
  for step = 1 to steps do
    let wrap v = v -. (sim.box *. Float.floor (v /. sim.box)) in
    for i = 0 to sim.n - 1 do
      sim.vx.(i) <- sim.vx.(i) +. (0.5 *. dt *. sim.fx.(i));
      sim.vy.(i) <- sim.vy.(i) +. (0.5 *. dt *. sim.fy.(i));
      sim.vz.(i) <- sim.vz.(i) +. (0.5 *. dt *. sim.fz.(i));
      sim.x.(i) <- wrap (sim.x.(i) +. (dt *. sim.vx.(i)));
      sim.y.(i) <- wrap (sim.y.(i) +. (dt *. sim.vy.(i)));
      sim.z.(i) <- wrap (sim.z.(i) +. (dt *. sim.vz.(i)))
    done;
    let rebuilt = step mod rebuild_every = 0 in
    if rebuilt then neighbors := build_neighbors sim;
    let pe, flags = compute_forces sim !neighbors in
    for i = 0 to sim.n - 1 do
      sim.vx.(i) <- sim.vx.(i) +. (0.5 *. dt *. sim.fx.(i));
      sim.vy.(i) <- sim.vy.(i) +. (0.5 *. dt *. sim.fy.(i));
      sim.vz.(i) <- sim.vz.(i) +. (0.5 *. dt *. sim.fz.(i))
    done;
    records := { pairs = flags; bonds_r = sim.bonds; rebuilt } :: !records;
    pes := pe :: !pes;
    kes := kinetic sim :: !kes
  done;
  let records = Array.of_list (List.rev !records) in
  let traj =
    {
      atoms;
      steps;
      box = sim.box;
      potential_energy = Array.of_list (List.rev !pes);
      kinetic_energy = Array.of_list (List.rev !kes);
      pair_count =
        Array.map
          (fun r -> Array.fold_left (fun acc (_, _, ok) -> if ok then acc + 1 else acc) 0 r.pairs)
          records;
    }
  in
  (traj, records)

let simulate ?seed ~style ~atoms ~steps () = fst (run_md ?seed ~style ~atoms ~steps ())

(* ---------------------------------------------------------------- emission *)

let split n ranks r =
  let q = n / ranks and rem = n mod ranks in
  let lo = (r * q) + min r rem in
  (lo, q + if r < rem then 1 else 0)

(* Per-atom record stride in the emitted address stream: LAMMPS keeps
   x/v/f/type/tag/image and neighbor headers per atom — the working set
   per atom is far larger than three doubles. *)
let atom_stride = 128

let program ?(codegen = Codegen.default) ~style ~ranks ~scale () : Smpi.program =
  let atoms = max 64 (int_of_float (float_of_int 1200 *. scale)) in
  let steps = 4 in
  let _, records = run_md ~style ~atoms ~steps () in

  let mk_rank rank =
    let base = Workload.data_base ~rank in
    let pos_base = base in
    let force_base = base + (atoms * atom_stride) in
    let nlist_base = force_base + (atoms * atom_stride) in
    let region = E.fresh_region ~slots:64 in
    let pc = Prog.Code.pc region in
    let lo, sz = split atoms ranks rank in
    let owns i = i >= lo && i < lo + sz in
    (* Pair-force stream for one step: each examined pair owned by this
       rank emits the gather + cutoff test; accepted pairs add the force
       math and the newton-scatter to atom j. *)
    (* The boards' compiler vectorizes the pair loop (RVV indexed loads
       pack the gathers, lanes pack the math): one emitted group covers
       [vw] pairs.  The FireSim-image binary is scalar (vw = 1). *)
    let vw = max 1 (int_of_float codegen.Codegen.vector_width) in
    let force_stream (rec_ : step_record) =
      let owned = Array.of_seq (Seq.filter (fun (i, _, _) -> owns i) (Array.to_seq rec_.pairs)) in
      Gen.iterate ((Array.length owned + vw - 1) / vw) (fun g ->
          let k = g * vw in
          let _i, j, ok = owned.(k) in
          let gather =
            [
              E.load ~pc:(pc 0) ~dst:E.rtmp ~addr:(nlist_base + (k * 4)) ();
              E.load ~pc:(pc 1) ~dst:21 ~addr:(pos_base + (j * atom_stride)) ~src1:E.rtmp ();
              E.load ~pc:(pc 2) ~dst:22 ~addr:(pos_base + (j * atom_stride) + 8) ~src1:E.rtmp ();
              E.load ~pc:(pc 3) ~dst:23 ~addr:(pos_base + (j * atom_stride) + 16) ~src1:E.rtmp ();
              E.fp ~pc:(pc 4) ~kind:Isa.Insn.Fp_add ~dst:24 ~src1:21 ();
              E.fp ~pc:(pc 5) ~kind:Isa.Insn.Fp_mul ~dst:24 ~src1:24 ~src2:24 ();
              E.fp ~pc:(pc 6) ~kind:Isa.Insn.Fp_add ~dst:25 ~src1:24 ~src2:25 ();
              E.branch ~pc:(pc 7) ~taken:(not ok) ~target:(pc 24) ~src1:25 ();
            ]
          in
          let accepted =
            if not ok then []
            else
              (* The pure pair math vectorizes (the boards' compiler packs
                 lanes); the gather/scatter part does not. *)
              (E.fp ~pc:(pc 8) ~kind:Isa.Insn.Fp_div ~dst:26 ~src1:25 ()
              :: List.init
                   (Codegen.vector_ops codegen 4)
                   (fun m ->
                     E.fp ~pc:(pc (9 + m))
                       ~kind:(if m land 1 = 0 then Isa.Insn.Fp_mul else Isa.Insn.Fp_add)
                       ~dst:(26 + (m land 1)) ~src1:(26 + (m land 1)) ()))
              @ [
                  E.load ~pc:(pc 13) ~dst:28 ~addr:(force_base + (j * atom_stride)) ();
                  E.fp ~pc:(pc 14) ~kind:Isa.Insn.Fp_add ~dst:28 ~src1:28 ~src2:27 ();
                  E.store ~pc:(pc 15) ~addr:(force_base + (j * atom_stride)) ~src1:28 ();
                ]
          in
          let overhead =
            List.init
              (Codegen.ops_at codegen ~index:k ~base:2)
              (fun m -> E.alu ~pc:(pc (16 + m)) ~dst:E.rctr ~src1:E.rctr ())
          in
          Gen.of_list (gather @ accepted @ overhead))
    in
    (* FENE bond stream (chain only): includes the logarithm (Fp_long). *)
    let bond_stream (rec_ : step_record) =
      let owned = Array.of_seq (Seq.filter (fun (i, _) -> owns i) (Array.to_seq rec_.bonds_r)) in
      Gen.iterate ((Array.length owned + vw - 1) / vw) (fun g ->
          let _, j = owned.(g * vw) in
          Gen.of_list
            [
              E.load ~pc:(pc 32) ~dst:21 ~addr:(pos_base + (j * atom_stride)) ();
              E.fp ~pc:(pc 33) ~kind:Isa.Insn.Fp_add ~dst:22 ~src1:21 ();
              E.fp ~pc:(pc 34) ~kind:Isa.Insn.Fp_mul ~dst:22 ~src1:22 ~src2:22 ();
              E.fp ~pc:(pc 35) ~kind:Isa.Insn.Fp_div ~dst:23 ~src1:22 ();
              E.fp ~pc:(pc 36) ~kind:Isa.Insn.Fp_long ~dst:24 ~src1:23 ();
              E.fp ~pc:(pc 37) ~kind:Isa.Insn.Fp_add ~dst:(E.racc 1) ~src1:(E.racc 1) ~src2:24 ();
              E.store ~pc:(pc 38) ~addr:(force_base + (j * atom_stride)) ~src1:24 ();
            ])
    in
    (* Integration stream: streaming load/fma/store over owned atoms. *)
    let integrate_stream =
      E.with_loop region ~iters:((sz + vw - 1) / vw) ~body_slots:56 ~body:(fun gi ->
          let i = lo + (gi * vw) in
          [
            E.load ~pc:(pc 40) ~dst:21 ~addr:(pos_base + (i * atom_stride)) ();
            E.load ~pc:(pc 41) ~dst:22 ~addr:(force_base + (i * atom_stride)) ();
            E.fp ~pc:(pc 42) ~kind:Isa.Insn.Fp_mul ~dst:23 ~src1:22 ();
            E.fp ~pc:(pc 43) ~kind:Isa.Insn.Fp_add ~dst:21 ~src1:21 ~src2:23 ();
            E.store ~pc:(pc 44) ~addr:(pos_base + (i * atom_stride)) ~src1:21 ();
            E.load ~pc:(pc 45) ~dst:24 ~addr:(pos_base + (i * atom_stride) + 8) ();
            E.fp ~pc:(pc 46) ~kind:Isa.Insn.Fp_add ~dst:24 ~src1:24 ~src2:23 ();
            E.store ~pc:(pc 47) ~addr:(pos_base + (i * atom_stride) + 8) ~src1:24 ();
          ])
    in
    (* Neighbor rebuild: cell binning sweep over owned atoms. *)
    let rebuild_stream =
      E.with_loop region ~iters:sz ~body_slots:60 ~body:(fun ai ->
          let i = lo + ai in
          [
            E.load ~pc:(pc 48) ~dst:21 ~addr:(pos_base + (i * atom_stride)) ();
            E.fp ~pc:(pc 49) ~kind:Isa.Insn.Fp_mul ~dst:22 ~src1:21 ();
            E.fp ~pc:(pc 50) ~kind:Isa.Insn.Fp_cvt ~dst:E.rtmp ~src1:22 ();
            E.alu ~pc:(pc 51) ~dst:E.rtmp2 ~src1:E.rtmp ();
            E.alu ~pc:(pc 52) ~dst:E.rtmp2 ~src1:E.rtmp2 ();
            E.store ~pc:(pc 53) ~addr:(nlist_base + (atoms * 4) + (i * 4)) ~src1:E.rtmp2 ();
          ])
    in
    let halo =
      if ranks = 1 then []
      else
        (* Boundary slab positions to both spatial neighbors. *)
        let boundary_atoms = max 1 (sz / 4) in
        let bytes = boundary_atoms * 24 in
        let up = (rank + 1) mod ranks in
        let down = (rank + ranks - 1) mod ranks in
        [
          Smpi.Comm (Smpi.Send { dst = up; bytes; tag = 3 });
          Smpi.Comm (Smpi.Send { dst = down; bytes; tag = 4 });
          Smpi.Comm (Smpi.Recv { src = down; bytes; tag = 3 });
          Smpi.Comm (Smpi.Recv { src = up; bytes; tag = 4 });
        ]
    in
    let step_segments rec_ =
      halo
      @ (if rec_.rebuilt then [ Smpi.Compute rebuild_stream ] else [])
      @ [ Smpi.Compute (force_stream rec_) ]
      @ (match style with Chain -> [ Smpi.Compute (bond_stream rec_) ] | Lj -> [])
      @ [ Smpi.Compute integrate_stream; Smpi.Comm (Smpi.Allreduce { bytes = 24 }) ]
    in
    List.concat_map step_segments (Array.to_list records)
  in
  Array.init ranks mk_rank

let lj =
  {
    Workload.app_name = "lammps-lj";
    app_description = "LAMMPS Lennard-Jones fluid (mini)";
    characteristics = "FP compute + neighbor gather";
    make = (fun ~codegen ~ranks ~scale -> program ~codegen ~style:Lj ~ranks ~scale ());
  }

let chain =
  {
    Workload.app_name = "lammps-chain";
    app_description = "LAMMPS polymer chain, FENE bonds (mini)";
    characteristics = "FP compute + bonds + neighbor gather";
    make = (fun ~codegen ~ranks ~scale -> program ~codegen ~style:Chain ~ranks ~scale ());
  }
