module Gen = Prog.Gen

let rctr = 1
let rptr = 3
let racc i = 4 + (i mod 8)
let rtmp = 12
let rtmp2 = 13
let rval = 20

let scaled scale n = max 16 (int_of_float (float_of_int n *. scale))

let fresh_region ~slots =
  let alloc = Prog.Code.create_allocator () in
  Prog.Code.alloc alloc ~slots

open Isa.Insn

let alu ~pc ?(dst = rtmp) ?(src1 = 0) ?(src2 = 0) () = make ~dst ~src1 ~src2 ~pc Int_alu
let mul ~pc ~dst ~src1 () = make ~dst ~src1 ~pc Int_mul
let fp ~pc ~kind ~dst ~src1 ?(src2 = 0) () = make ~dst ~src1 ~src2 ~pc kind
let load ~pc ~dst ~addr ?(src1 = 0) () = make ~dst ~src1 ~mem:{ addr; size = 8 } ~pc Load

let store ~pc ~addr ?(src1 = 0) ?(src2 = 0) () =
  make ~src1 ~src2 ~mem:{ addr; size = 8 } ~pc Store

let branch ~pc ~taken ~target ?(src1 = rtmp) () = make ~src1 ~ctrl:{ taken; target } ~pc Branch
let jump ~pc ~target () = make ~ctrl:{ taken = true; target } ~pc Jump
let call ~pc ~target () = make ~ctrl:{ taken = true; target } ~pc Call
let ret ~pc ~target () = make ~ctrl:{ taken = true; target } ~pc Ret

let with_loop region ~iters ~body_slots ~body =
  let overhead_slot = body_slots in
  Gen.iterate iters (fun pos ->
      let tail =
        [
          alu ~pc:(Prog.Code.pc region overhead_slot) ~dst:rctr ~src1:rctr ();
          branch
            ~pc:(Prog.Code.pc region (overhead_slot + 1))
            ~taken:(pos < iters - 1) ~target:(Prog.Code.pc region 0) ~src1:rctr ();
        ]
      in
      Gen.of_list (body pos @ tail))
