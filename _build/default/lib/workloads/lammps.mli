(** Mini-LAMMPS: parallel molecular dynamics with the two benchmarks the
    paper runs — the Lennard-Jones fluid ("lj") and the polymer Chain
    ("chain", FENE bonds + WCA pair repulsion).

    The physics is real: atoms are initialized on a perturbed lattice (or
    as random-walk chains), velocities are Maxwell-distributed, and a
    velocity-Verlet integrator advances the system with cell-list /
    Verlet-neighbor-list force evaluation under periodic boundaries.  The
    full trajectory is computed at program-construction time; the
    instruction streams then replay each rank's share of the recorded
    per-step pair work (cutoff branches follow the real distances), with
    position halo exchanges and a per-step thermo allreduce, matching
    LAMMPS's spatial-decomposition communication skeleton.

    Default 500 atoms / 4 steps (paper: 32 000 atoms / 100 steps); the
    relative-speedup metric is size-invariant to first order (DESIGN.md). *)

type style = Lj | Chain

type trajectory = {
  atoms : int;
  steps : int;
  box : float;
  potential_energy : float array;  (** per recorded step *)
  kinetic_energy : float array;
  pair_count : int array;  (** accepted (within-cutoff) pairs per step *)
}

val simulate : ?seed:int -> style:style -> atoms:int -> steps:int -> unit -> trajectory
(** Run the MD engine alone (no emission) — used by tests to check
    conservation and by the examples. *)

val program : ?codegen:Codegen.t -> style:style -> ranks:int -> scale:float -> unit -> Smpi.program

val lj : Workload.app
val chain : Workload.app
