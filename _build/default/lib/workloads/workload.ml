type category =
  | Control_flow
  | Execution
  | Data
  | Cache
  | Memory

let category_name = function
  | Control_flow -> "Control Flow"
  | Execution -> "Execution"
  | Data -> "Data"
  | Cache -> "Cache"
  | Memory -> "Memory"

let all_categories = [ Control_flow; Execution; Data; Cache; Memory ]

type kernel = {
  name : string;
  category : category;
  description : string;
  excluded : bool;
  setup : (scale:float -> Isa.Insn.t Seq.t) option;
  stream : scale:float -> Isa.Insn.t Seq.t;
}

type app = {
  app_name : string;
  app_description : string;
  characteristics : string;
  make : codegen:Codegen.t -> ranks:int -> scale:float -> Smpi.program;
}

let data_base ~rank = 0x1000_0000 + (rank * 0x0400_0000)
