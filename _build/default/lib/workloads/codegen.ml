type t = {
  name : string;
  overhead : float;
  unroll : int;
  vector_width : float;
}

let gcc_13_2 = { name = "gcc-13.2"; overhead = 1.0; unroll = 4; vector_width = 4.0 }
let gcc_9_4 = { name = "gcc-9.4"; overhead = 1.08; unroll = 2; vector_width = 1.0 }
let default = gcc_13_2

let extra_ops t n = int_of_float (Float.round (float_of_int n *. t.overhead))

let vector_ops t n = max 1 (int_of_float (Float.ceil (float_of_int n /. t.vector_width)))

let ops_at t ~index ~base =
  let target = float_of_int base *. t.overhead in
  let upto i = int_of_float (Float.floor (float_of_int i *. target)) in
  upto (index + 1) - upto index
