module Gen = Prog.Gen
module E = Emit

type mesh = {
  n : int;
  zones : int;
  points : int;
  corners : int;
  faces : int;
  corner_to_point : int array;
  face_to_point : int array;
}

let build_mesh ?(seed = 0x03E) ~n () =
  if n < 2 then invalid_arg "Ume.build_mesh: n >= 2";
  let np = n + 1 in
  let points = np * np * np in
  let zones = n * n * n in
  let corners = zones * 8 in
  (* Unstructured point numbering: a random permutation destroys the
     geometric locality a structured index would give, which is exactly
     the indirection penalty UME measures. *)
  let rng = Util.Rng.create seed in
  let renumber = Util.Rng.permutation rng points in
  let pid x y z = renumber.((((z * np) + y) * np) + x) in
  let corner_to_point = Array.make corners 0 in
  let zone = ref 0 in
  for zz = 0 to n - 1 do
    for zy = 0 to n - 1 do
      for zx = 0 to n - 1 do
        List.iteri
          (fun c (dx, dy, dz) -> corner_to_point.((!zone * 8) + c) <- pid (zx + dx) (zy + dy) (zz + dz))
          [ (0, 0, 0); (1, 0, 0); (0, 1, 0); (1, 1, 0); (0, 0, 1); (1, 0, 1); (0, 1, 1); (1, 1, 1) ];
        incr zone
      done
    done
  done;
  (* Faces normal to each axis: 3 * n^2 * (n+1), 4 points each. *)
  let faces = 3 * n * n * np in
  let face_to_point = Array.make (faces * 4) 0 in
  let f = ref 0 in
  let add_face p0 p1 p2 p3 =
    face_to_point.((!f * 4) + 0) <- p0;
    face_to_point.((!f * 4) + 1) <- p1;
    face_to_point.((!f * 4) + 2) <- p2;
    face_to_point.((!f * 4) + 3) <- p3;
    incr f
  in
  for x = 0 to n do
    for y = 0 to n - 1 do
      for z = 0 to n - 1 do
        add_face (pid x y z) (pid x (y + 1) z) (pid x (y + 1) (z + 1)) (pid x y (z + 1))
      done
    done
  done;
  for y = 0 to n do
    for x = 0 to n - 1 do
      for z = 0 to n - 1 do
        add_face (pid x y z) (pid (x + 1) y z) (pid (x + 1) y (z + 1)) (pid x y (z + 1))
      done
    done
  done;
  for z = 0 to n do
    for x = 0 to n - 1 do
      for y = 0 to n - 1 do
        add_face (pid x y z) (pid (x + 1) y z) (pid (x + 1) (y + 1) z) (pid x (y + 1) z)
      done
    done
  done;
  { n; zones; points; corners; faces; corner_to_point; face_to_point }

let split n ranks r =
  let q = n / ranks and rem = n mod ranks in
  let lo = (r * q) + min r rem in
  (lo, q + if r < rem then 1 else 0)

let program ?(codegen = Codegen.default) ~ranks ~scale () : Smpi.program =
  let n = max 4 (int_of_float (float_of_int 12 *. (scale ** (1.0 /. 3.0)))) in
  let mesh = build_mesh ~n () in
  (* Indexed-gather loops vectorize on the boards (RVV vluxei) but far
     less profitably than dense FP loops: effective width 2, scalar on
     the FireSim image.  The inverted (scatter) kernel stays scalar —
     its read-modify-write conflicts defeat autovectorization. *)
  let vw = min 2 (max 1 (int_of_float codegen.Codegen.vector_width)) in

  let mk_rank rank =
    let base = Workload.data_base ~rank in
    let coords_base = base in
    (* x,y,z interleaved *)
    let zone_acc_base = base + (mesh.points * 24) in
    let c2p_base = zone_acc_base + (mesh.zones * 8) in
    let f2p_base = c2p_base + (mesh.corners * 4) in
    let area_base = f2p_base + (mesh.faces * 16) in
    let region = E.fresh_region ~slots:64 in
    let pc = Prog.Code.pc region in
    let zlo, zsz = split mesh.zones ranks rank in
    let clo, csz = (zlo * 8, zsz * 8) in
    let flo, fsz = split mesh.faces ranks rank in
    (* Kernel 1: original — zone-centred gather through corners. *)
    let original =
      Gen.iterate zsz (fun zi ->
          let z = zlo + zi in
          let per_corner c =
            let corner = (z * 8) + c in
            let point = mesh.corner_to_point.(corner) in
            [
              (* load the corner->point map entry, then the point data it
                 names: the characteristic double indirection *)
              E.load ~pc:(pc 0) ~dst:E.rtmp ~addr:(c2p_base + (corner * 4)) ();
              E.alu ~pc:(pc 1) ~dst:E.rtmp2 ~src1:E.rtmp ();
              E.load ~pc:(pc 2) ~dst:21 ~addr:(coords_base + (point * 24)) ~src1:E.rtmp2 ();
              E.load ~pc:(pc 3) ~dst:22 ~addr:(coords_base + (point * 24) + 8) ~src1:E.rtmp2 ();
              E.load ~pc:(pc 4) ~dst:23 ~addr:(coords_base + (point * 24) + 16) ~src1:E.rtmp2 ();
              E.fp ~pc:(pc 5) ~kind:Isa.Insn.Fp_add ~dst:24 ~src1:24 ~src2:21 ();
              E.fp ~pc:(pc 6) ~kind:Isa.Insn.Fp_add ~dst:25 ~src1:25 ~src2:22 ();
              E.fp ~pc:(pc 7) ~kind:Isa.Insn.Fp_add ~dst:26 ~src1:26 ~src2:23 ();
            ]
            @ List.init
                (Codegen.ops_at codegen ~index:((zi * 8) + c) ~base:2)
                (fun j -> E.alu ~pc:(pc (8 + j)) ~dst:E.rctr ~src1:E.rctr ())
          in
          Gen.of_list
            (List.concat (List.init (8 / vw) (fun g -> per_corner (g * vw)))
            @ [
                E.store ~pc:(pc 12) ~addr:(zone_acc_base + (z * 8)) ~src1:24 ();
                E.branch ~pc:(pc 13) ~taken:(zi < zsz - 1) ~target:(pc 0) ~src1:E.rctr ();
              ]))
    in
    (* Kernel 2: inverted — corner-centred scatter (load-modify-store on
       the owning zone's accumulator). *)
    let inverted =
      E.with_loop region ~iters:csz ~body_slots:28 ~body:(fun ci ->
          let corner = clo + ci in
          let zone = corner / 8 in
          let point = mesh.corner_to_point.(corner) in
          [
            E.load ~pc:(pc 16) ~dst:E.rtmp ~addr:(c2p_base + (corner * 4)) ();
            E.load ~pc:(pc 17) ~dst:21 ~addr:(coords_base + (point * 24)) ~src1:E.rtmp ();
            E.alu ~pc:(pc 18) ~dst:E.rtmp2 ~src1:E.rtmp ();
            E.load ~pc:(pc 19) ~dst:22 ~addr:(zone_acc_base + (zone * 8)) ();
            E.fp ~pc:(pc 20) ~kind:Isa.Insn.Fp_add ~dst:22 ~src1:22 ~src2:21 ();
            E.store ~pc:(pc 21) ~addr:(zone_acc_base + (zone * 8)) ~src1:22 ();
          ]
          @ List.init
              (Codegen.ops_at codegen ~index:ci ~base:2)
              (fun j -> E.alu ~pc:(pc (22 + j)) ~dst:E.rctr ~src1:E.rctr ()))
    in
    (* Kernel 3: face area — 4-point gathers and cross products. *)
    let face_area =
      E.with_loop region ~iters:fsz ~body_slots:56 ~body:(fun fi ->
          let face = flo + fi in
          let gathers =
            List.concat
              (List.init 4 (fun k ->
                   let point = mesh.face_to_point.((face * 4) + k) in
                   [
                     E.load ~pc:(pc (32 + (2 * k))) ~dst:E.rtmp ~addr:(f2p_base + ((face * 4) + k) * 4) ();
                     E.load
                       ~pc:(pc (33 + (2 * k)))
                       ~dst:(E.racc k)
                       ~addr:(coords_base + (point * 24))
                       ~src1:E.rtmp ();
                   ]))
          in
          let cross =
            List.init
              (Codegen.vector_ops { codegen with Codegen.vector_width = float_of_int vw } 9)
              (fun j ->
                E.fp
                  ~pc:(pc (40 + j))
                  ~kind:(if j mod 3 = 2 then Isa.Insn.Fp_add else Isa.Insn.Fp_mul)
                  ~dst:E.rval ~src1:(E.racc j) ~src2:E.rval ())
          in
          gathers @ cross @ [ E.store ~pc:(pc 50) ~addr:(area_base + (face * 8)) ~src1:E.rval () ])
    in
    let halo =
      if ranks = 1 then []
      else
        let plane_bytes = (mesh.n + 1) * (mesh.n + 1) * 24 in
        let up = (rank + 1) mod ranks in
        let down = (rank + ranks - 1) mod ranks in
        [
          Smpi.Comm (Smpi.Send { dst = up; bytes = plane_bytes; tag = 1 });
          Smpi.Comm (Smpi.Send { dst = down; bytes = plane_bytes; tag = 2 });
          Smpi.Comm (Smpi.Recv { src = down; bytes = plane_bytes; tag = 1 });
          Smpi.Comm (Smpi.Recv { src = up; bytes = plane_bytes; tag = 2 });
        ]
    in
    halo
    @ [ Smpi.Compute original; Smpi.Comm (Smpi.Allreduce { bytes = 8 }) ]
    @ halo
    @ [ Smpi.Compute inverted; Smpi.Comm (Smpi.Allreduce { bytes = 8 }) ]
    @ halo
    @ [ Smpi.Compute face_area; Smpi.Comm (Smpi.Allreduce { bytes = 8 }) ]
  in
  Array.init ranks mk_rank

let app =
  {
    Workload.app_name = "ume";
    app_description = "UME unstructured-mesh proxy (original + inverted + face area kernels)";
    characteristics = "Integer ops, load/store ratio, indirection";
    make = (fun ~codegen ~ranks ~scale -> program ~codegen ~ranks ~scale ());
  }
