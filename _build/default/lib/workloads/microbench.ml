open Workload
module Gen = Prog.Gen
module E = Emit

let base = data_base ~rank:0
let rctr = Emit.rctr
let rptr = Emit.rptr
let racc = Emit.racc
let rtmp = Emit.rtmp
let rtmp2 = Emit.rtmp2
let scaled = Emit.scaled
let with_loop = Emit.with_loop
let fresh_region = Emit.fresh_region

(* Un-timed working-set initialization: one independent load per line,
   overlapped by the MSHRs, exactly like the C suite's setup loops. *)
let warm ~base ~bytes =
  let lines = max 1 (bytes / 64) in
  let r = fresh_region ~slots:8 in
  let pc = Prog.Code.pc r 0 in
  Gen.iterate lines (fun l -> Gen.of_list [ E.load ~pc ~dst:(racc l) ~addr:(base + (l * 64)) () ])

(* --- Control-flow kernels ------------------------------------------------- *)

(* Conditional branch whose outcome follows [outcome]; taken path skips a
   couple of filler ops. *)
let branchy_kernel ~iters ~outcome ~with_store scale =
  let iters = scaled scale iters in
  let r = fresh_region ~slots:12 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters ~body_slots:8 ~body:(fun pos ->
      let taken = outcome pos in
      let work = [ E.alu ~pc:(pc 0) ~dst:(racc 0) ~src1:(racc 0) (); E.alu ~pc:(pc 1) ~dst:rtmp ~src1:(racc 0) () ] in
      let br = E.branch ~pc:(pc 2) ~taken ~target:(pc 6) () in
      let arm =
        if taken then [ E.alu ~pc:(pc 6) ~dst:(racc 1) ~src1:(racc 1) () ]
        else
          [ E.alu ~pc:(pc 3) ~dst:(racc 2) ~src1:(racc 2) (); E.alu ~pc:(pc 4) ~dst:(racc 2) ~src1:(racc 2) () ]
      in
      let st =
        if with_store then [ E.store ~pc:(pc 7) ~addr:(base + (pos mod 512 * 8)) ~src1:(racc 1) () ]
        else []
      in
      work @ (br :: arm) @ st)

let cca scale = branchy_kernel ~iters:8_000 ~outcome:(Prog.Outcome.always true) ~with_store:false scale
let cce scale = branchy_kernel ~iters:8_000 ~outcome:Prog.Outcome.alternating ~with_store:false scale
let cch scale = branchy_kernel ~iters:8_000 ~outcome:(Prog.Outcome.random ~seed:0xCC4) ~with_store:false scale

let cch_st scale =
  branchy_kernel ~iters:8_000 ~outcome:(Prog.Outcome.random ~seed:0xCC5) ~with_store:true scale

(* Impossible control with large basic blocks: an unpredictable branch
   selects one of two 24-instruction arms. *)
let ccl scale =
  let iters = scaled scale 3_000 in
  let arm = 24 in
  let r = fresh_region ~slots:(4 + (2 * arm) + 4) in
  let pc = Prog.Code.pc r in
  let outcome = Prog.Outcome.random ~seed:0xCC1 in
  with_loop r ~iters ~body_slots:(2 + (2 * arm)) ~body:(fun pos ->
      let taken = outcome pos in
      let br = E.branch ~pc:(pc 0) ~taken ~target:(pc (2 + arm)) () in
      let arm_base = if taken then 2 + arm else 1 in
      let block =
        List.init arm (fun j -> E.alu ~pc:(pc (arm_base + j)) ~dst:(racc j) ~src1:(racc j) ())
      in
      br :: block)

(* Heavily biased branches: four sites, each ~97% taken. *)
let ccm scale =
  let iters = scaled scale 4_000 in
  let r = fresh_region ~slots:16 in
  let pc = Prog.Code.pc r in
  let outcomes = Array.init 4 (fun k -> Prog.Outcome.biased ~seed:(0xCC6 + k) ~p_taken:0.97) in
  with_loop r ~iters ~body_slots:12 ~body:(fun pos ->
      List.concat
        (List.init 4 (fun k ->
             let taken = outcomes.(k) pos in
             [
               E.alu ~pc:(pc (3 * k)) ~dst:(racc k) ~src1:(racc k) ();
               E.branch ~pc:(pc ((3 * k) + 1)) ~taken ~target:(pc ((3 * k) + 2)) ();
             ])))

(* Inlining test: small functions containing loops, called per iteration. *)
let cf1 scale =
  let iters = scaled scale 1_500 in
  let r = fresh_region ~slots:16 in
  let fregion = fresh_region ~slots:8 in
  let pc = Prog.Code.pc r in
  let fpc = Prog.Code.pc fregion in
  with_loop r ~iters ~body_slots:2 ~body:(fun _ ->
      let inner =
        List.concat
          (List.init 4 (fun j ->
               [
                 E.alu ~pc:(fpc 0) ~dst:(racc 0) ~src1:(racc 0) ();
                 E.alu ~pc:(fpc 1) ~dst:rctr ~src1:rctr ();
                 E.branch ~pc:(fpc 2) ~taken:(j < 3) ~target:(fpc 0) ~src1:rctr ();
               ]))
      in
      (E.call ~pc:(pc 0) ~target:(fpc 0) () :: inner) @ [ E.ret ~pc:(fpc 3) ~target:(pc 0 + 4) () ])

(* Recursive control flow, 1000 deep: overflows every realistic RAS. *)
let crd scale =
  let repeats = scaled scale 18 in
  let depth = 1000 in
  let r = fresh_region ~slots:8 in
  let pc = Prog.Code.pc r in
  Gen.iterate repeats (fun _ ->
      let descend =
        Gen.iterate depth (fun _ ->
            Gen.of_list
              [
                E.alu ~pc:(pc 0) ~dst:(racc 0) ~src1:(racc 0) ();
                E.branch ~pc:(pc 1) ~taken:true ~target:(pc 2) ();
                E.call ~pc:(pc 2) ~target:(pc 0) ();
              ])
      in
      let unwind =
        Gen.iterate depth (fun _ ->
            Gen.of_list
              [ E.alu ~pc:(pc 3) ~dst:(racc 1) ~src1:(racc 1) (); E.ret ~pc:(pc 4) ~target:(pc 3) () ])
      in
      Gen.append descend unwind)

(* Recursive Fibonacci: a real call tree with shallow, bushy recursion.
   Return addresses thread through the emission so the RAS sees honest
   call/return pairing (a call at slot s returns to s+1). *)
let crf scale =
  let repeats = scaled scale 12 in
  let r = fresh_region ~slots:12 in
  let pc = Prog.Code.pc r in
  let rec tree n ret_to =
    let header =
      [
        E.alu ~pc:(pc 0) ~dst:rtmp ~src1:rtmp ();
        E.branch ~pc:(pc 1) ~taken:(n < 2) ~target:(pc 8) ~src1:rtmp ();
      ]
    in
    if n < 2 then Gen.of_list (header @ [ E.ret ~pc:(pc 8) ~target:ret_to () ])
    else
      Gen.concat
        [
          Gen.of_list (header @ [ E.call ~pc:(pc 2) ~target:(pc 0) () ]);
          tree (n - 1) (pc 2 + 4);
          Gen.of_list [ E.alu ~pc:(pc 3) ~dst:(racc 0) ~src1:(racc 0) (); E.call ~pc:(pc 4) ~target:(pc 0) () ];
          tree (n - 2) (pc 4 + 4);
          Gen.of_list [ E.alu ~pc:(pc 5) ~dst:(racc 0) ~src1:(racc 0) (); E.ret ~pc:(pc 6) ~target:ret_to () ];
        ]
  in
  Gen.iterate repeats (fun i -> tree 12 (pc (9 + (i mod 2))))

(* Merge sort over a real random array: data-dependent compare branches,
   streaming loads and stores.  Excluded from evaluation, as in the paper. *)
let crm scale =
  let n = scaled scale 2_048 in
  let rng = Util.Rng.create 0x3A7 in
  let data = Array.init n (fun _ -> Util.Rng.int rng 1_000_000) in
  let r = fresh_region ~slots:16 in
  let pc = Prog.Code.pc r in
  let src = Array.copy data in
  let tmp = Array.make n 0 in
  (* Emit the instruction stream of a real bottom-up merge sort. *)
  let emit_merge lo mid hi =
    let bursts = ref [] in
    let i = ref lo and j = ref mid in
    for k = lo to hi - 1 do
      let take_left = !j >= hi || (!i < mid && src.(!i) <= src.(!j)) in
      let idx = if take_left then !i else !j in
      if take_left then incr i else incr j;
      tmp.(k) <- src.(idx);
      bursts :=
        [
          E.load ~pc:(pc 0) ~dst:rtmp ~addr:(base + (idx * 8)) ();
          E.load ~pc:(pc 1) ~dst:rtmp2 ~addr:(base + (8 * n) + (idx * 8)) ();
          E.branch ~pc:(pc 2) ~taken:take_left ~target:(pc 4) ~src1:rtmp ();
          E.store ~pc:(pc 5) ~addr:(base + (16 * n) + (k * 8)) ~src1:rtmp ();
          E.alu ~pc:(pc 6) ~dst:rctr ~src1:rctr ();
        ]
        :: !bursts
    done;
    Array.blit tmp lo src lo (hi - lo);
    List.rev !bursts
  in
  let all_bursts = ref [] in
  let width = ref 1 in
  while !width < n do
    let lo = ref 0 in
    while !lo + !width < n do
      let mid = !lo + !width in
      let hi = min (!lo + (2 * !width)) n in
      all_bursts := !all_bursts @ emit_merge !lo mid hi;
      lo := !lo + (2 * !width)
    done;
    width := !width * 2
  done;
  Gen.concat (List.map Gen.of_list !all_bursts)

(* Switch statements: indirect jump through a jump table.  CS1 picks a
   different case every time (BTB-hostile); CS3 changes every third
   iteration. *)
let switch_kernel ~iters ~period scale =
  let iters = scaled scale iters in
  let cases = 16 in
  let case_len = 4 in
  let r = fresh_region ~slots:(8 + (cases * case_len)) in
  let pc = Prog.Code.pc r in
  let pick = Prog.Mem.random_in ~seed:0x51 ~base:0 ~bytes:cases ~align:1 in
  with_loop r ~iters ~body_slots:4 ~body:(fun pos ->
      let c = pick (pos / period) mod cases in
      let cbase = 8 + (c * case_len) in
      E.load ~pc:(pc 0) ~dst:rtmp ~addr:(base + (c * 8)) ()
      :: E.jump ~pc:(pc 1) ~target:(pc cbase) ()
      :: List.init case_len (fun j -> E.alu ~pc:(pc (cbase + j)) ~dst:(racc j) ~src1:(racc j) ()))

let cs1 scale = switch_kernel ~iters:6_000 ~period:1 scale
let cs3 scale = switch_kernel ~iters:6_000 ~period:3 scale

(* --- Execution kernels ---------------------------------------------------- *)

(* [chains] interleaved dependency chains of [kind]; chain length per
   iteration 8/chains each. *)
let chain_kernel ~iters ~kind ~chains scale =
  let iters = scaled scale iters in
  let r = fresh_region ~slots:12 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters ~body_slots:8 ~body:(fun _ ->
      List.init 8 (fun j ->
          let reg = racc (j mod chains) in
          match kind with
          | `Alu -> E.alu ~pc:(pc j) ~dst:reg ~src1:reg ()
          | `Mul -> E.mul ~pc:(pc j) ~dst:reg ~src1:reg ()
          | `Fp -> E.fp ~pc:(pc j) ~kind:Isa.Insn.Fp_add ~dst:reg ~src1:reg ()))

let ed1 scale = chain_kernel ~iters:6_000 ~kind:`Alu ~chains:1 scale
let ef scale = chain_kernel ~iters:6_000 ~kind:`Fp ~chains:8 scale
let ei scale = chain_kernel ~iters:6_000 ~kind:`Alu ~chains:8 scale
let em1 scale = chain_kernel ~iters:6_000 ~kind:`Mul ~chains:1 scale
let em5 scale = chain_kernel ~iters:6_000 ~kind:`Mul ~chains:5 scale

(* --- Data-parallel kernels ------------------------------------------------ *)

(* Data-parallel loop over an L1-resident array: load, arithmetic,
   store. *)
let dp_kernel ~iters ~elem ~ops scale =
  let iters = scaled scale iters in
  let footprint = 16 * 1024 in
  let wrap = footprint / elem in
  let addr = Prog.Mem.linear ~base ~elem in
  let out = Prog.Mem.linear ~base:(base + footprint) ~elem in
  let r = fresh_region ~slots:16 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters ~body_slots:12 ~body:(fun pos ->
      let p = pos mod wrap in
      (E.load ~pc:(pc 0) ~dst:20 ~addr:(addr p) ()
      :: List.mapi (fun j kind -> E.fp ~pc:(pc (1 + j)) ~kind ~dst:21 ~src1:(if j = 0 then 20 else 21) ()) ops)
      @ [ E.store ~pc:(pc 10) ~addr:(out p) ~src1:21 () ])

let dp1d scale = dp_kernel ~iters:6_000 ~elem:8 ~ops:[ Isa.Insn.Fp_mul; Isa.Insn.Fp_add ] scale
let dp1f scale = dp_kernel ~iters:6_000 ~elem:4 ~ops:[ Isa.Insn.Fp_mul; Isa.Insn.Fp_add ] scale
(* sin() as compilers emit it: a polynomial chain ending in a divide —
   pipelined FP work, not one monolithic long op. *)
let dpt scale =
  dp_kernel ~iters:1_200 ~elem:4
    ~ops:[ Isa.Insn.Fp_mul; Isa.Insn.Fp_add; Isa.Insn.Fp_mul; Isa.Insn.Fp_add; Isa.Insn.Fp_div ]
    scale

let dptd scale =
  dp_kernel ~iters:1_200 ~elem:8
    ~ops:
      [
        Isa.Insn.Fp_mul; Isa.Insn.Fp_add; Isa.Insn.Fp_mul; Isa.Insn.Fp_add; Isa.Insn.Fp_mul;
        Isa.Insn.Fp_add; Isa.Insn.Fp_div;
      ]
    scale
let dpcvt scale = dp_kernel ~iters:6_000 ~elem:8 ~ops:[ Isa.Insn.Fp_cvt; Isa.Insn.Fp_add ] scale

(* --- Cache kernels --------------------------------------------------------- *)

(* Conflict misses: addresses 4 KiB apart all land in one set of a 64-set,
   64 B-line cache; more distinct lines than any realistic associativity. *)
let conflict_kernel ~with_store scale =
  let iters = scaled scale 6_000 in
  let addr = Prog.Mem.conflict ~base ~line:64 ~sets:64 ~distinct:24 in
  let r = fresh_region ~slots:8 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters ~body_slots:4 ~body:(fun pos ->
      let a = addr pos in
      if with_store then
        [ E.load ~pc:(pc 0) ~dst:20 ~addr:a (); E.store ~pc:(pc 1) ~addr:a ~src1:20 () ]
      else [ E.load ~pc:(pc 0) ~dst:20 ~addr:a (); E.alu ~pc:(pc 1) ~dst:21 ~src1:20 () ])

let mc scale = conflict_kernel ~with_store:false scale
let mcs scale = conflict_kernel ~with_store:true scale

(* Pointer chase over a [footprint]-byte ring; each load's address depends
   on the previous load (serial misses). *)
let chase_kernel ~footprint ~hops ~with_store ?(seed = 0x11D) scale =
  let hops = scaled scale hops in
  let rng = Util.Rng.create seed in
  let addr = Prog.Mem.chase rng ~base ~bytes:footprint ~stride:64 in
  let r = fresh_region ~slots:8 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters:hops ~body_slots:4 ~body:(fun pos ->
      let a = addr pos in
      let ld = E.load ~pc:(pc 0) ~dst:rptr ~addr:a ~src1:rptr () in
      if with_store then [ ld; E.store ~pc:(pc 1) ~addr:(a + 8) ~src1:rptr () ]
      else [ ld; E.alu ~pc:(pc 1) ~dst:rtmp ~src1:rptr () ])

let md scale = chase_kernel ~footprint:(16 * 1024) ~hops:20_000 ~with_store:false scale

(* Independent loads, cache resident. *)
let independent_kernel ~pattern ~iters scale =
  let iters = scaled scale iters in
  let r = fresh_region ~slots:16 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters ~body_slots:8 ~body:(fun pos ->
      List.init 4 (fun j ->
          E.load ~pc:(pc j) ~dst:(racc j) ~addr:(pattern ((pos * 4) + j)) ()))

let mi scale =
  independent_kernel
    ~pattern:(Prog.Mem.random_in ~seed:0x31 ~base ~bytes:(16 * 1024) ~align:8)
    ~iters:6_000 scale

let mim scale =
  independent_kernel
    ~pattern:(Prog.Mem.strided ~base ~elem:8 ~stride_elems:1 ~wrap_elems:2048)
    ~iters:6_000 scale

(* Two coalescing loads per line. *)
let mim2 scale =
  let iters = scaled scale 6_000 in
  let r = fresh_region ~slots:8 in
  let pc = Prog.Code.pc r in
  let lines = 16 * 1024 / 64 in
  with_loop r ~iters ~body_slots:4 ~body:(fun pos ->
      let a = base + (pos mod lines * 64) in
      [ E.load ~pc:(pc 0) ~dst:(racc 0) ~addr:a (); E.load ~pc:(pc 1) ~dst:(racc 1) ~addr:(a + 8) () ])

(* Instruction-cache misses: sweep a 2 MiB code footprint that exceeds
   every L1I and both cluster L2s, so refills come from the LLC / DRAM.
   FireSim's SRAM-like LLC makes the simulated MILK-V *faster* than
   silicon here — the paper's MIP anomaly. *)
let mip scale =
  let block_len = 32 in
  (* The 2 MiB code footprint is the kernel's identity: it exceeds every
     L1I and both cluster L2s, so steady-state instruction fetch is served
     by the LLC (or DRAM where there is none).  FireSim's SRAM-like LLC
     makes the simulated MILK-V *faster* than silicon here — the paper's
     MIP anomaly.  A jump-chain warmup touches every line cheaply so the
     measured passes run in steady state; scaling changes the number of
     measured passes only. *)
  let blocks = 16_384 in
  let r = fresh_region ~slots:(blocks * block_len) in
  let pc = Prog.Code.pc r in
  let passes = max 4 (int_of_float (Float.round (4.0 *. scale))) in
  Gen.iterate (passes * blocks) (fun i ->
      let b = i mod blocks in
      let base_slot = b * block_len in
      Gen.of_list
        (E.jump ~pc:(pc base_slot) ~target:(pc (base_slot + 1)) ()
        :: List.init (block_len - 1) (fun j ->
               E.alu ~pc:(pc (base_slot + 1 + j)) ~dst:(racc j) ~src1:(racc j) ())))

(* MIP's setup warms the shared levels through the data side: the code
   region's lines reach L2/LLC as the real benchmark's earlier iterations
   would have left them. *)
let mip_setup _scale =
  let r = fresh_region ~slots:(16_384 * 32) in
  warm ~base:(Prog.Code.pc r 0) ~bytes:(16_384 * 32 * 4)

let ml2 scale = chase_kernel ~footprint:(256 * 1024) ~hops:20_000 ~with_store:false ~seed:0x2D1 scale
let ml2_st scale = chase_kernel ~footprint:(256 * 1024) ~hops:20_000 ~with_store:true ~seed:0x2D2 scale

(* Bandwidth-limited sweeps over an L2-resident footprint: one access per
   line, independent. *)
let l2_bw_kernel ~mode scale =
  let iters = scaled scale 12_000 in
  let lines = 256 * 1024 / 64 in
  let r = fresh_region ~slots:8 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters ~body_slots:4 ~body:(fun pos ->
      let a = base + (pos mod lines * 64) in
      match mode with
      | `Ld -> [ E.load ~pc:(pc 0) ~dst:(racc pos) ~addr:a () ]
      | `St -> [ E.store ~pc:(pc 0) ~addr:a ~src1:(racc pos) () ]
      | `LdSt ->
        [ E.load ~pc:(pc 0) ~dst:(racc pos) ~addr:a (); E.store ~pc:(pc 1) ~addr:(a + 8) ~src1:(racc pos) () ])

let ml2_bw_ld scale = l2_bw_kernel ~mode:`Ld scale
let ml2_bw_ldst scale = l2_bw_kernel ~mode:`LdSt scale
let ml2_bw_st scale = l2_bw_kernel ~mode:`St scale

(* Store-dominated kernels. *)
let stl2 scale = l2_bw_kernel ~mode:`St scale

let stl2b scale =
  let iters = scaled scale 6_000 in
  let lines = 256 * 1024 / 64 in
  let r = fresh_region ~slots:16 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters ~body_slots:10 ~body:(fun pos ->
      List.init 8 (fun j -> E.alu ~pc:(pc j) ~dst:(racc j) ~src1:(racc j) ())
      @ [ E.store ~pc:(pc 8) ~addr:(base + (pos mod lines * 64)) ~src1:(racc 0) () ])

let stc scale =
  let iters = scaled scale 12_000 in
  let r = fresh_region ~slots:8 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters ~body_slots:2 ~body:(fun pos ->
      [ E.store ~pc:(pc 0) ~addr:(base + (pos mod 16 * 8)) ~src1:(racc 0) () ])

(* Loads and stores with dynamic (data-carried) dependencies plus
   unpredictable control. *)
let m_dyn scale =
  let hops = scaled scale 10_000 in
  let rng = Util.Rng.create 0xD1 in
  let addr = Prog.Mem.chase rng ~base ~bytes:(8 * 1024 * 1024) ~stride:64 in
  let outcome = Prog.Outcome.random ~seed:0xD2 in
  let r = fresh_region ~slots:8 in
  let pc = Prog.Code.pc r in
  with_loop r ~iters:hops ~body_slots:4 ~body:(fun pos ->
      let a = addr pos in
      [
        E.load ~pc:(pc 0) ~dst:rptr ~addr:a ~src1:rptr ();
        E.branch ~pc:(pc 1) ~taken:(outcome pos) ~target:(pc 3) ~src1:rptr ();
        E.store ~pc:(pc 2) ~addr:(a + 8) ~src1:rptr ();
      ])

(* Non-cache-resident linked lists: a 128 MiB ring exceeds even the
   MILK-V's 64 MiB LLC, so every hop is a DRAM round trip. *)
let mm scale = chase_kernel ~footprint:(128 * 1024 * 1024) ~hops:25_000 ~with_store:false ~seed:0x717 scale
let mm_st scale = chase_kernel ~footprint:(128 * 1024 * 1024) ~hops:25_000 ~with_store:true ~seed:0x718 scale

(* --- Table 1 ---------------------------------------------------------------- *)

let k ?setup ?(excluded = false) name category description stream =
  {
    name;
    category;
    description;
    excluded;
    setup = Option.map (fun f -> fun ~scale -> f scale) setup;
    stream = (fun ~scale -> stream scale);
  }

let kb = 1024

let l1_set _scale = warm ~base ~bytes:(32 * kb)
let l2_set _scale = warm ~base ~bytes:(256 * kb)

let all =
  [
    k "Cca" Control_flow "Completely biased branch" cca ~setup:(fun _ -> warm ~base ~bytes:(4 * kb));
    k "Cce" Control_flow "Alternating branches" cce ~setup:(fun _ -> warm ~base ~bytes:(4 * kb));
    k "CCh" Control_flow "Random control flow" cch ~setup:(fun _ -> warm ~base ~bytes:(4 * kb));
    k "CCh_st" Control_flow "Impossible to predict control + stores" cch_st
      ~setup:(fun _ -> warm ~base ~bytes:(4 * kb));
    k "CCl" Control_flow "Impossible control w/ large basic blocks" ccl;
    k "CCm" Control_flow "Heavily biased branches" ccm;
    k "CF1" Control_flow "Inlining test for functions w/ loops" cf1;
    k "CRd" Control_flow "Recursive control flow - 1000 deep" crd;
    k "CRf" Control_flow "Recursive control flow - Fibonacci" crf;
    k "CRm" Control_flow "Merge sort" ~excluded:true crm;
    k "CS1" Control_flow "Switch - different each time" cs1 ~setup:(fun _ -> warm ~base ~bytes:kb);
    k "CS3" Control_flow "Switch - different every third time" cs3
      ~setup:(fun _ -> warm ~base ~bytes:kb);
    k "DP1d" Data "Data parallel loop - double arithmetic" dp1d ~setup:l1_set;
    k "DP1f" Data "Data parallel loop - float arithmetic" dp1f ~setup:l1_set;
    k "DPT" Data "Data parallel loop - sin()" dpt ~setup:l1_set;
    k "DPTd" Data "Data parallel loop - double sin()" dptd ~setup:l1_set;
    k "DPcvt" Data "Data parallel loop - float to double" dpcvt ~setup:l1_set;
    k "ED1" Execution "Int - length 1 dependency chain" ed1;
    k "EF" Execution "FP - 8 independent instructions" ef;
    k "EI" Execution "Int - 8 independent computations" ei;
    k "EM1" Execution "Int mul - length 1 dependency chain" em1;
    k "EM5" Execution "Int mul - length 5 dependency chain" em5;
    k "MC" Cache "Conflict misses" mc;
    k "MCS" Cache "Conflict misses with stores" mcs;
    k "MD" Cache "Cache resident linked list traversal" md ~setup:l1_set;
    k "MI" Cache "Independent access, cache resident" mi ~setup:l1_set;
    k "MIM" Cache "Independent access, no conflicts" mim ~setup:l1_set;
    k "MIM2" Cache "Independent access - 2 coalescing ops" mim2 ~setup:l1_set;
    k "MIP" Cache "Instruction cache misses" mip ~setup:mip_setup;
    k "ML2" Cache "L2 linked-list" ml2 ~setup:l2_set;
    k "ML2_BW_ld" Cache "L2 linked-list - B/W limited (lds)" ml2_bw_ld ~setup:l2_set;
    k "ML2_BW_ldst" Cache "L2 linked-list - B/W limited (ld/sts)" ml2_bw_ldst ~setup:l2_set;
    k "ML2_BW_st" Cache "L2 linked-list - B/W limited (sts)" ml2_bw_st ~setup:l2_set;
    k "ML2_st" Cache "L2 linked-list (sts)" ml2_st ~setup:l2_set;
    k "STL2" Cache "Repeatedly store, L2 resident" stl2 ~setup:l2_set;
    k "STL2b" Cache "Occasional stores, L2 resident" stl2b ~setup:l2_set;
    k "STc" Cache "Repeated consecutive L1 store" stc ~setup:(fun _ -> warm ~base ~bytes:kb);
    k "M_Dyn" Cache "Load store w/ dynamic dependencies" m_dyn;
    k "MM" Memory "Non-cache resident linked-list" mm;
    k "MM_st" Memory "Non-cache resident linked-list (sts)" mm_st;
  ]

let evaluated = List.filter (fun k -> not k.excluded) all

let find name =
  match List.find_opt (fun k -> k.name = name) all with
  | Some k -> k
  | None -> raise Not_found

let by_category c = List.filter (fun k -> k.category = c) all
