(** Compiler-quality knob.

    The paper runs GCC 9.4 binaries inside FireSim but GCC 13.2 binaries
    on the boards (Table 3) and flags the disparity as a confound it could
    not remove.  We expose it as a controlled parameter instead: the
    application workloads multiply their per-statement integer-overhead
    instruction counts by [overhead], so experiments can be run matched
    (same codegen on both sides — the default) or mismatched (as in the
    paper). *)

type t = {
  name : string;
  overhead : float;
      (** relative dynamic integer-op overhead; 1.0 = best known code *)
  unroll : int;  (** innermost-loop unroll factor the compiler achieves *)
  vector_width : float;
      (** effective SIMD width the compiler achieves on vectorizable FP
          inner loops (1.0 = scalar).  The FireSim targets ran without
          vector units; the boards' GCC 13.2 autovectorizes. *)
}

val gcc_13_2 : t
(** Modern compiler, as on the boards: autovectorizes SIMD-friendly FP
    loops at an effective width of 4 doubles (256-bit RVV). *)

val gcc_9_4 : t
(** The FireSim image's compiler: ~8% more dynamic overhead, less
    unrolling. *)

val default : t
(** Used on both sides unless an experiment overrides it: {!gcc_13_2}. *)

val vector_ops : t -> int -> int
(** [vector_ops t n] is the dynamic op count for [n] scalar FP operations
    in a vectorizable inner loop under [t]'s SIMD width (ceiling, >= 1). *)

val extra_ops : t -> int -> int
(** [extra_ops t n] scales a base overhead-op count [n] by [t.overhead]. *)

val ops_at : t -> index:int -> base:int -> int
(** Per-iteration overhead-op count at loop iteration [index], dithered
    deterministically so the long-run average is [base * overhead] even
    when the product is fractional (e.g. base 1 at 1.08x emits a 4th op on
    ~8% of iterations). *)
