(** Common workload metadata.

    Microbenchmarks are single-stream kernels classified by the MicroBench
    category taxonomy (Table 1 of the paper); applications are MPI rank
    programs.  Streams returned by constructors are lazily generated;
    application streams interleave real computation with emission and are
    single-traversal — obtain a fresh program per run from its
    constructor. *)

type category =
  | Control_flow
  | Execution
  | Data
  | Cache
  | Memory

val category_name : category -> string
val all_categories : category list

(** A single-stream microbenchmark kernel. *)
type kernel = {
  name : string;
  category : category;
  description : string;
  excluded : bool;
      (** CRm is excluded from evaluation, as in the paper (it segfaulted
          on every platform there; we keep it runnable but flagged). *)
  setup : (scale:float -> Isa.Insn.t Seq.t) option;
      (** Un-timed preparation, as in the C suite (allocate + initialize
          the working set): executed on the same SoC before the measured
          stream, so caches reach their steady state; the harness times
          only {!field-stream}. *)
  stream : scale:float -> Isa.Insn.t Seq.t;
      (** [stream ~scale] regenerates the kernel's measured instruction
          stream; [scale] multiplies iteration counts (1.0 = default
          size). *)
}

(** An MPI application workload. *)
type app = {
  app_name : string;
  app_description : string;
  characteristics : string;  (** e.g. "Memory Latency, BW" — Table 2 *)
  make : codegen:Codegen.t -> ranks:int -> scale:float -> Smpi.program;
      (** Build a fresh (single-traversal) rank program compiled with the
          given {!Codegen} quality. *)
}

val data_base : rank:int -> int
(** Base address of a rank's private data segment; ranks get disjoint
    64 MiB windows so shared caches see distinct physical lines. *)
