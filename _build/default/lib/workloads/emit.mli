(** Shared instruction-emission helpers for workload construction.

    All workloads (microbenchmarks and applications) build their streams
    from these primitives: smart constructors per instruction kind, a
    fresh-code-region helper, and the canonical counted-loop wrapper that
    appends the loop increment + backward branch every compiled loop has.

    Register conventions (shared so kernels compose predictably):
    r1 = loop counter, r3 = pointer-chase register, r4..r11 = independent
    accumulators, r12..r15 = temporaries, r20..r23 = load targets. *)

val rctr : int
val rptr : int
val racc : int -> int
(** [racc i] cycles through the 8 accumulator registers. *)

val rtmp : int
val rtmp2 : int
val rval : int
(** First load-target register (r20). *)

val scaled : float -> int -> int
(** [scaled scale n] scales an iteration count (minimum 16). *)

val fresh_region : slots:int -> Prog.Code.region
(** Allocate an isolated static code region. *)

val alu : pc:int -> ?dst:int -> ?src1:int -> ?src2:int -> unit -> Isa.Insn.t
val mul : pc:int -> dst:int -> src1:int -> unit -> Isa.Insn.t
val fp : pc:int -> kind:Isa.Insn.kind -> dst:int -> src1:int -> ?src2:int -> unit -> Isa.Insn.t
val load : pc:int -> dst:int -> addr:int -> ?src1:int -> unit -> Isa.Insn.t
val store : pc:int -> addr:int -> ?src1:int -> ?src2:int -> unit -> Isa.Insn.t
val branch : pc:int -> taken:bool -> target:int -> ?src1:int -> unit -> Isa.Insn.t
val jump : pc:int -> target:int -> unit -> Isa.Insn.t
val call : pc:int -> target:int -> unit -> Isa.Insn.t
val ret : pc:int -> target:int -> unit -> Isa.Insn.t

val with_loop :
  Prog.Code.region ->
  iters:int ->
  body_slots:int ->
  body:(int -> Isa.Insn.t list) ->
  Isa.Insn.t Seq.t
(** Counted loop: per iteration [body pos] plus increment + backward
    branch (taken except on the last iteration).  [body_slots] is the
    first free slot in the region for the loop overhead. *)
