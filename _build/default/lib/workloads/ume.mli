(** Mini-UME: the Unstructured Mesh Explorations proxy app (LANL).

    UME's performance signature is multi-level indirection through
    explicit connectivity maps — high integer-op counts, high load/store
    ratios, low FP intensity.  We build a hexahedral mesh of [n]³ zones
    with real zone→corner→point and face→point connectivity (point ids
    shuffled, as unstructured numbering gives no geometric locality), and
    emit the paper's three measured kernels:

    - the original gather kernel (zone-centred accumulation through
      corners),
    - the inverted kernel (corner-centred scatter into zones), and
    - the face-area kernel (4-point gathers + cross products).

    MPI-parallel over zone slabs with point-plane halo exchanges and a
    volume allreduce per kernel, matching UME's communication skeleton.
    Default mesh 12³ (paper: 32³; ratios are size-invariant to first
    order — see DESIGN.md). *)

type mesh = {
  n : int;  (** zones per side *)
  zones : int;
  points : int;
  corners : int;
  faces : int;
  corner_to_point : int array;
  face_to_point : int array;  (** 4 entries per face *)
}

val build_mesh : ?seed:int -> n:int -> unit -> mesh
(** Construct the connectivity; deterministic in [seed]. *)

val program : ?codegen:Codegen.t -> ranks:int -> scale:float -> unit -> Smpi.program
(** The three kernels in sequence, as timed in the paper (total runtime =
    original + inverted + face area). *)

val app : Workload.app
