lib/workloads/ume.mli: Codegen Smpi Workload
