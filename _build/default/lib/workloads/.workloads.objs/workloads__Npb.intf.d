lib/workloads/npb.mli: Codegen Smpi Workload
