lib/workloads/microbench.ml: Array Emit Float Isa List Option Prog Util Workload
