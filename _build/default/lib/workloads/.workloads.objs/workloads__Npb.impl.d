lib/workloads/npb.ml: Array Codegen Emit Int64 Isa List Prog Smpi Util Workload
