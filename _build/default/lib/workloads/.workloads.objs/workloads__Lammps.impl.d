lib/workloads/lammps.ml: Array Codegen Emit Float Hashtbl Isa List Option Prog Seq Smpi Util Workload
