lib/workloads/workload.ml: Codegen Isa Seq Smpi
