lib/workloads/codegen.mli:
