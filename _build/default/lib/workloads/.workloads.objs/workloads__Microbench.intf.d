lib/workloads/microbench.mli: Workload
