lib/workloads/codegen.ml: Float
