lib/workloads/lammps.mli: Codegen Smpi Workload
