lib/workloads/ume.ml: Array Codegen Emit Isa List Prog Smpi Util Workload
