lib/workloads/workload.mli: Codegen Isa Seq Smpi
