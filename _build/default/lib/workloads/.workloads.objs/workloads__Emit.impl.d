lib/workloads/emit.ml: Isa Prog
