lib/workloads/emit.mli: Isa Prog Seq
