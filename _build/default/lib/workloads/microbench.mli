(** The MicroBench suite: 40 microbenchmarks targeting individual
    microarchitectural features (Table 1 of the paper), used to tune the
    simulation models against the silicon references.

    Kernel names, categories and behaviours follow the paper's Table 1.
    [CRm] is constructed but flagged [excluded]: the paper dropped it
    (segfault on every platform), so evaluated figures use 39 kernels.

    Every kernel is a deterministic, re-traversable instruction stream;
    default sizes give tens of thousands of dynamic instructions, scaled
    by the [scale] argument. *)

val all : Workload.kernel list
(** All 40 kernels, in Table 1 order. *)

val evaluated : Workload.kernel list
(** The 39 kernels used in the paper's evaluation (without CRm). *)

val find : string -> Workload.kernel
(** Lookup by name; raises [Not_found]. *)

val by_category : Workload.category -> Workload.kernel list
