(** Mini-NPB: the four NAS Parallel Benchmarks the paper evaluates
    (Table 2), reimplemented as MPI rank programs over our IR.

    Each kernel keeps the computational and communication structure of the
    original (NPB 3.4.2, MPI version) at a reduced problem size — the
    paper itself had to cap runtimes because FPGA simulation is ~25-135x
    slower than real time, and an interpreted simulator sits in the same
    regime.  Scaling is *strong*: the global problem size is fixed and
    split across ranks, as in the paper's 1- vs 4-rank runs.

    - CG: conjugate gradient with a random sparse matrix (gather-heavy,
      memory latency); per iteration one allgather of p and two scalar
      allreduces, as in the reference code's communication skeleton.
    - EP: Marsaglia-polar Gaussian deviates (compute-bound; accept branch
      driven by real arithmetic); one 10-counter allreduce at the end.
    - IS: bucket sort of uniform integer keys (random-access histogram,
      memory latency + bandwidth); an alltoall key exchange.
    - MG: V-cycle multigrid with a 7-point stencil and per-level halo
      exchanges (memory bandwidth).

    [*_program] constructors expose the {!Codegen} knob; the [app]
    records use {!Codegen.default}. *)

val cg_program : ?codegen:Codegen.t -> ranks:int -> scale:float -> unit -> Smpi.program
val ep_program : ?codegen:Codegen.t -> ranks:int -> scale:float -> unit -> Smpi.program
val is_program : ?codegen:Codegen.t -> ranks:int -> scale:float -> unit -> Smpi.program
val mg_program : ?codegen:Codegen.t -> ranks:int -> scale:float -> unit -> Smpi.program

val cg : Workload.app
val ep : Workload.app
val is : Workload.app
val mg : Workload.app

val all : Workload.app list
(** CG, EP, IS, MG — the paper's Table 2 selection. *)

val find : string -> Workload.app
(** Lookup by name (lowercase); raises [Not_found]. *)
