lib/prog/mem.ml: Array Int64 Util
