lib/prog/gen.ml: Isa List Seq
