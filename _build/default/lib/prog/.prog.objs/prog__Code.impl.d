lib/prog/code.ml:
