lib/prog/mem.mli: Util
