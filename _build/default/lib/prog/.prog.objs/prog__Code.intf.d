lib/prog/code.mli:
