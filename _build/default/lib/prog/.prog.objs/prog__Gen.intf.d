lib/prog/gen.mli: Isa Seq
