lib/prog/outcome.mli:
