lib/prog/outcome.ml: Array Int64
