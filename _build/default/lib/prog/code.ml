type allocator = { mutable next : int }
type region = { base : int; slots : int }

let create_allocator ?(text_base = 0x10000) () = { next = text_base }

let alloc a ~slots =
  if slots <= 0 then invalid_arg "Code.alloc: slots must be positive";
  (* Align regions to icache lines so footprints are as the kernel intends. *)
  let aligned = (a.next + 63) land lnot 63 in
  a.next <- aligned + (slots * 4);
  { base = aligned; slots }

let pc r slot =
  assert (slot >= 0 && slot < r.slots);
  r.base + (slot * 4)

let footprint_bytes r = r.slots * 4
