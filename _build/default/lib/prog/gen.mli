(** Lazy instruction-stream generation.

    A workload is a value of type [t] — a lazy, re-traversable sequence of
    retired instructions.  Laziness matters: traces run to millions of
    instructions and are replayed once per platform, so they are regenerated
    on demand rather than materialized.  All combinators preserve
    re-traversability: traversing a stream twice yields identical
    instructions provided the underlying producers are deterministic (which
    every workload in this project guarantees by seeding its own {!Util.Rng}
    stream). *)

type t = Isa.Insn.t Seq.t

val empty : t
val of_list : Isa.Insn.t list -> t
val append : t -> t -> t
val concat : t list -> t

val repeat : int -> t -> t
(** [repeat n s] is [s] concatenated [n] times. *)

val iterate : int -> (int -> t) -> t
(** [iterate n f] is [f 0 @ f 1 @ ... @ f (n-1)], built lazily so only one
    iteration's instructions are live at a time. *)

val unfold : 's -> ('s -> (Isa.Insn.t list * 's) option) -> t
(** General lazy producer: step the state, emitting a burst of instructions
    each time, until the stepper returns [None]. *)

val length : t -> int
(** Forces the stream.  Intended for tests and reporting, not hot paths. *)

val take : int -> t -> t

val count_kind : (Isa.Insn.kind -> bool) -> t -> int
(** Forces the stream and counts matching instructions. *)
