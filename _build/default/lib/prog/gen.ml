type t = Isa.Insn.t Seq.t

let empty = Seq.empty
let of_list = List.to_seq
let append = Seq.append
let concat ts = List.fold_left Seq.append Seq.empty ts

let repeat n s =
  let rec go i () = if i >= n then Seq.Nil else Seq.append s (go (i + 1)) () in
  if n <= 0 then Seq.empty else go 0

let iterate n f =
  let rec go i () = if i >= n then Seq.Nil else Seq.append (f i) (go (i + 1)) () in
  if n <= 0 then Seq.empty else go 0

let unfold init step =
  let rec go state () =
    match step state with
    | None -> Seq.Nil
    | Some (burst, state') -> Seq.append (List.to_seq burst) (go state') ()
  in
  go init

let length s = Seq.fold_left (fun n _ -> n + 1) 0 s
let take = Seq.take
let count_kind p s = Seq.fold_left (fun n (i : Isa.Insn.t) -> if p i.kind then n + 1 else n) 0 s
