(** Address-pattern generators.

    Each pattern is a pure function from *position* (the index of the access
    within the kernel's access stream) to a byte address.  Purity keeps
    instruction streams re-traversable; patterns that need randomness
    precompute their layout eagerly (footprints are bounded) or derive it
    from a stateless position hash. *)

type fn = int -> int
(** [fn pos] is the address of the [pos]-th access. *)

val strided : base:int -> elem:int -> stride_elems:int -> wrap_elems:int -> fn
(** Classic strided sweep: address [base + ((pos * stride_elems) mod
    wrap_elems) * elem].  [elem] is the element size in bytes. *)

val linear : base:int -> elem:int -> fn
(** Dense sweep with no wrap: [base + pos*elem]. *)

val chase : Util.Rng.t -> base:int -> bytes:int -> stride:int -> fn
(** Pointer-chase order over a footprint of [bytes] bytes divided into
    nodes of [stride] bytes: a random Hamiltonian cycle over the nodes,
    precomputed.  Successive positions follow the cycle, so each access
    depends on the previous one having loaded the pointer — callers must
    also express that dependence in registers. *)

val random_in : seed:int -> base:int -> bytes:int -> align:int -> fn
(** Uniformly random aligned address within [base, base+bytes), derived
    from a stateless hash of [seed] and the position. *)

val conflict : base:int -> line:int -> sets:int -> distinct:int -> fn
(** Addresses that all map to cache set 0 of a cache with [sets] sets and
    [line]-byte lines, cycling over [distinct] distinct lines: position
    [pos] touches line [pos mod distinct], at address
    [base + (pos mod distinct) * sets * line].  With [distinct] > the
    associativity this defeats LRU and produces conflict misses. *)

val gather : int array -> elem:int -> base:int -> fn
(** Indexed gather: position [pos] touches [base + index.(pos mod n) * elem]
    — the access pattern of indirection through a precomputed map (UME,
    CG's column indices, IS's histogram). *)
