(** Branch-outcome patterns.

    Like {!Mem}, outcomes are pure functions of position so streams stay
    re-traversable.  These patterns realize the MicroBench control-flow
    taxonomy: completely biased, heavily biased, alternating, random, and
    fixed repeating patterns. *)

type fn = int -> bool
(** [fn pos] is whether the [pos]-th execution of the branch is taken. *)

val always : bool -> fn
val alternating : fn
(** Taken on even positions. *)

val every_nth : int -> fn
(** Taken exactly when [pos mod n = 0]. *)

val biased : seed:int -> p_taken:float -> fn
(** Taken with probability [p_taken], stateless per position. *)

val random : seed:int -> fn
(** Fair coin per position — the "impossible to predict" pattern. *)

val pattern : bool array -> fn
(** Fixed repeating pattern. *)

val data_dependent : int array -> threshold:int -> fn
(** Taken when the positioned data value exceeds [threshold]: outcomes that
    follow a real data array, as in sorting/merging kernels. *)
