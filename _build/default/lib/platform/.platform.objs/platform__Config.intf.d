lib/platform/config.mli: Cache Dram Format Interconnect Tlb Uarch
