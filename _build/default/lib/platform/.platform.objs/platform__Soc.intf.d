lib/platform/soc.mli: Config Isa Seq Smpi Uarch
