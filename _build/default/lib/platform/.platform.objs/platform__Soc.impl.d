lib/platform/soc.ml: Array Cache Config Dram Interconnect Option Printf Smpi Tlb Uarch Util
