lib/platform/tlb.mli:
