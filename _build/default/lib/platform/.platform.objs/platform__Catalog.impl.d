lib/platform/catalog.ml: Branch Cache Config Dram Interconnect List Tlb Uarch
