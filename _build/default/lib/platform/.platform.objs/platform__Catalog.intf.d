lib/platform/catalog.mli: Config
