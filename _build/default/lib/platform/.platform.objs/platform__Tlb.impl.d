lib/platform/tlb.ml: Array
