lib/platform/config.ml: Cache Dram Format Interconnect Printf Tlb Uarch
