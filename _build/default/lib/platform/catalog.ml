(* --- Cache configurations ----------------------------------------------- *)

(* Rocket "huge" tile: 32 KiB L1s (64 sets x 8 ways), as in Table 5. *)
let rocket_l1i = Cache.config ~name:"l1i" ~sets:64 ~ways:8 ~hit_latency:1 ~mshrs:1 ()
let rocket_l1d = Cache.config ~name:"l1d" ~sets:64 ~ways:8 ~hit_latency:2 ~mshrs:4 ()

let rocket_l2 ~banks =
  (* 512 KiB inclusive tile L2; deep MSHR pipelining acts as a 2-line
     stream prefetcher. *)
  Cache.config ~name:"l2" ~sets:1024 ~ways:8 ~hit_latency:18 ~mshrs:8 ~banks ~prefetch_next:16 ()

(* BOOM small/medium: 64 sets x 4 ways = 16 KiB L1D (Table 4). *)
let boom_l1_small = Cache.config ~name:"l1d" ~sets:64 ~ways:4 ~hit_latency:3 ~mshrs:4 ()

(* BOOM large: 64 sets x 8 ways = 32 KiB. *)
let boom_l1_large = Cache.config ~name:"l1d" ~sets:64 ~ways:8 ~hit_latency:3 ~mshrs:6 ()

(* MILK-V tuned: 128 sets x 8 ways = 64 KiB. *)
let milkv_l1 = Cache.config ~name:"l1d" ~sets:128 ~ways:8 ~hit_latency:3 ~mshrs:8 ()

let boom_l2 =
  Cache.config ~name:"l2" ~sets:1024 ~ways:8 ~hit_latency:20 ~mshrs:12 ~banks:4 ~prefetch_next:16 ()

(* MILK-V sim: 1 MiB cluster L2 (2048 sets x 8 ways x 64 B). *)
let milkv_l2 =
  Cache.config ~name:"l2" ~sets:2048 ~ways:8 ~hit_latency:20 ~mshrs:12 ~banks:4 ~prefetch_next:16 ()

(* FireSim's simplified LLC: SRAM-like, no tag/data latency modeling
   (hit_latency 1).  4 x 16 MiB, one per memory channel -> 4 banks. *)
let milkv_sim_llc =
  Cache.config ~name:"llc" ~sets:16384 ~ways:64 ~hit_latency:1 ~mshrs:16 ~banks:4 ()

(* The real SG2042 LLC: same capacity but a real cache with real latency. *)
let milkv_hw_llc =
  Cache.config ~name:"llc" ~sets:65536 ~ways:16 ~hit_latency:38 ~mshrs:32 ~banks:4 ()

(* --- Buses --------------------------------------------------------------- *)

let bus64 = Interconnect.Bus.config ~name:"sbus-64" ~width_bits:64 ()
let bus128 = Interconnect.Bus.config ~name:"sbus-128" ~width_bits:128 ()

(* --- Platforms ----------------------------------------------------------- *)

let mk ~name ~description ~core ~l1i ~l1d ~l2 ?llc ~bus ~dram ?(tlb = Tlb.firesim_rocket) () =
  {
    Config.name;
    description;
    cores = 4;
    core;
    l1i;
    l1d;
    l2;
    llc;
    bus;
    dram;
    dtlb = tlb;
    itlb = tlb;
    mpi_latency_us = 0.8;
  }

let rocket1 =
  mk ~name:"rocket1" ~description:"Huge Rocket tile, 1 L2 bank, 64-bit system bus"
    ~core:(Config.Inorder (Uarch.Inorder.rocket ~name:"rocket" ~freq_hz:1.6e9 ()))
    ~l1i:rocket_l1i ~l1d:rocket_l1d ~l2:(rocket_l2 ~banks:1) ~bus:bus64
    ~dram:(Dram.ddr3_2000_fr_fcfs ~channels:1)
    ()

let rocket2 =
  mk ~name:"rocket2" ~description:"Rocket1 with 4 L2 banks"
    ~core:(Config.Inorder (Uarch.Inorder.rocket ~name:"rocket" ~freq_hz:1.6e9 ()))
    ~l1i:rocket_l1i ~l1d:rocket_l1d ~l2:(rocket_l2 ~banks:4) ~bus:bus64
    ~dram:(Dram.ddr3_2000_fr_fcfs ~channels:1)
    ()

let banana_pi_sim =
  mk ~name:"banana-pi-sim" ~description:"Banana Pi Sim Model: Rocket2 + 128-bit system bus"
    ~core:(Config.Inorder (Uarch.Inorder.rocket ~name:"rocket" ~freq_hz:1.6e9 ()))
    ~l1i:rocket_l1i ~l1d:rocket_l1d ~l2:(rocket_l2 ~banks:4) ~bus:bus128
    ~dram:(Dram.ddr3_2000_fr_fcfs ~channels:1)
    ()

let fast_banana_pi_sim =
  let p = Config.with_freq banana_pi_sim 3.2e9 in
  {
    p with
    Config.name = "fast-banana-pi-sim";
    description = "Banana Pi Sim Model at 3.2 GHz (clock doubled to mimic dual issue)";
  }

let boom ~name ~description ~core ~l1 =
  mk ~name ~description ~core:(Config.Ooo core) ~l1i:l1 ~l1d:l1 ~l2:boom_l2 ~bus:bus128
    ~dram:(Dram.ddr3_2000_fr_fcfs ~channels:1)
    ~tlb:Tlb.firesim_boom ()

(* CVA6 (Ariane): the third application-class open core the related work
   evaluates — 6-stage, single-issue, smaller frontend than Rocket's. *)
let cva6 =
  mk ~name:"cva6" ~description:"CVA6 (Ariane) tile: 6-stage single-issue in-order"
    ~core:
      (Config.Inorder
         {
           (Uarch.Inorder.rocket ~name:"cva6" ~freq_hz:1.0e9 ()) with
           Uarch.Inorder.pipeline_stages = 6;
           mispredict_penalty = 5;
           fetch_width = 2;
           store_buffer = 4;
           load_queue = 2;
           frontend = { Branch.Frontend.rocket_config with btb_entries = 16; ras_entries = 2 };
         })
    ~l1i:(Cache.config ~name:"l1i" ~sets:64 ~ways:4 ~hit_latency:1 ~mshrs:1 ())
    ~l1d:(Cache.config ~name:"l1d" ~sets:64 ~ways:8 ~hit_latency:3 ~mshrs:1 ())
    ~l2:(rocket_l2 ~banks:1) ~bus:bus64
    ~dram:(Dram.ddr3_2000_fr_fcfs ~channels:1)
    ()

let boom_small =
  boom ~name:"boom-small" ~description:"Small BOOM (RoB 32, 1-wide decode)"
    ~core:(Uarch.Ooo.boom_small ()) ~l1:boom_l1_small

let boom_medium =
  boom ~name:"boom-medium" ~description:"Medium BOOM (RoB 64, 2-wide decode)"
    ~core:(Uarch.Ooo.boom_medium ()) ~l1:boom_l1_small

let boom_large =
  boom ~name:"boom-large" ~description:"Large BOOM (RoB 96, 3-wide decode)"
    ~core:(Uarch.Ooo.boom_large ()) ~l1:boom_l1_large

let milkv_sim =
  mk ~name:"milkv-sim"
    ~description:"MILK-V Sim Model: Large BOOM with 64 KiB L1, 1 MiB L2, 4x16 MiB LLC, 4 DDR3 channels"
    ~core:(Config.Ooo (Uarch.Ooo.boom_large ~name:"boom-large" ()))
    ~l1i:milkv_l1 ~l1d:milkv_l1 ~l2:milkv_l2 ~llc:milkv_sim_llc ~bus:bus128
    ~dram:(Dram.ddr3_2000_fr_fcfs ~channels:4)
    ~tlb:Tlb.firesim_boom ()

let banana_pi_hw =
  mk ~name:"banana-pi-hw"
    ~description:"Banana Pi BPI-F3 silicon reference: SpacemiT K1 cluster, dual-issue 8-stage, LPDDR4-2666"
    ~core:(Config.Inorder (Uarch.Inorder.k1 ()))
    ~l1i:(Cache.config ~name:"l1i" ~sets:64 ~ways:8 ~hit_latency:1 ~mshrs:2 ())
    ~l1d:(Cache.config ~name:"l1d" ~sets:64 ~ways:8 ~hit_latency:2 ~mshrs:6 ())
    ~l2:(Cache.config ~name:"l2" ~sets:1024 ~ways:8 ~hit_latency:24 ~mshrs:12 ~banks:4 ~prefetch_next:16 ())
    ~bus:bus128 ~dram:Dram.lpddr4_2666_dual32 ~tlb:Tlb.silicon ()

let milkv_hw =
  mk ~name:"milkv-hw"
    ~description:"MILK-V Pioneer silicon reference: SG2042 cluster (C920 cores), 1 MiB L2, 64 MiB LLC, DDR4-3200 x4"
    ~core:(Config.Ooo (Uarch.Ooo.sg2042 ()))
    ~l1i:(Cache.config ~name:"l1i" ~sets:128 ~ways:8 ~hit_latency:1 ~mshrs:4 ())
    ~l1d:(Cache.config ~name:"l1d" ~sets:128 ~ways:8 ~hit_latency:3 ~mshrs:12 ())
    ~l2:(Cache.config ~name:"l2" ~sets:2048 ~ways:8 ~hit_latency:16 ~mshrs:16 ~banks:4 ~prefetch_next:16 ())
    ~llc:milkv_hw_llc ~bus:bus128
    ~dram:(Dram.ddr4_3200 ~channels:4)
    ~tlb:Tlb.silicon ()

let all =
  [
    rocket1;
    rocket2;
    cva6;
    banana_pi_sim;
    fast_banana_pi_sim;
    boom_small;
    boom_medium;
    boom_large;
    milkv_sim;
    banana_pi_hw;
    milkv_hw;
  ]

let find name =
  match List.find_opt (fun (c : Config.t) -> c.Config.name = name) all with
  | Some c -> c
  | None -> raise Not_found

let sim_hw_pairs = [ (banana_pi_sim, banana_pi_hw); (milkv_sim, milkv_hw) ]

