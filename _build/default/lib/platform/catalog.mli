(** The platform catalog: every configuration of Tables 4 and 5.

    Simulation models (what the paper runs inside FireSim):
    - {!rocket1}, {!rocket2}: Rocket-based, 1 vs 4 L2 banks;
    - {!banana_pi_sim}: Rocket2 plus the 128-bit system bus — the
      "Banana Pi Sim Model";
    - {!fast_banana_pi_sim}: the same at 3.2 GHz (clock doubled to mimic
      the K1's dual issue);
    - {!boom_small}, {!boom_medium}, {!boom_large}: stock BOOM
      configurations over the FireSim DDR3 memory model;
    - {!milkv_sim}: Large BOOM with MILK-V cache capacities (64 KiB L1,
      1 MiB L2, 4 x 16 MiB SRAM-like LLC, 4 DDR3 channels).

    Silicon reference models (stand-ins for the physical boards):
    - {!banana_pi_hw}: SpacemiT K1 cluster — dual-issue 8-stage in-order
      cores, LPDDR4-2666;
    - {!milkv_hw}: SOPHON SG2042 cluster — wide out-of-order cores,
      1 MiB L2, 64 MiB LLC, DDR4-3200 x4.

    All platforms are built with 4 cores (one cluster), matching the
    paper's experiments; use {!Config.with_cores} to change. *)

val rocket1 : Config.t

val rocket2 : Config.t

val cva6 : Config.t
(** CVA6 (Ariane), the third application-class open core the paper's
    related work evaluates on FireSim: 6-stage single-issue, 1 GHz. *)

val banana_pi_sim : Config.t
val fast_banana_pi_sim : Config.t
val boom_small : Config.t
val boom_medium : Config.t
val boom_large : Config.t
val milkv_sim : Config.t
val banana_pi_hw : Config.t
val milkv_hw : Config.t

val all : Config.t list
(** Every catalog platform, in the order above. *)

val find : string -> Config.t
(** Look up by [Config.name]; raises [Not_found]. *)

val sim_hw_pairs : (Config.t * Config.t) list
(** The (simulation model, silicon reference) pairs the paper evaluates:
    Banana-Pi-Sim/Banana-Pi-HW and MILKV-Sim/MILKV-HW. *)
