(** TLB timing model.

    Table 5 of the paper specifies the simulation models' translation
    structures: 32-entry fully associative L1 D/I TLBs, plus (on the
    MILK-V model) a 1024-entry direct-mapped L2 TLB.  The vendor parts'
    TLB geometries are undisclosed ("N/A"), so the silicon references get
    generously sized structures.

    The model charges cycles only: an L1 TLB hit is free (folded into the
    cache hit latency), an L1 miss that hits the L2 TLB pays
    [l2_latency], and a full miss pays [walk_latency] (a page-table walk
    through cached tables — a fixed-cost approximation, documented in
    DESIGN.md). *)

type config = {
  name : string;
  l1_entries : int;  (** fully associative, LRU *)
  l2_entries : int;  (** direct mapped; 0 = no L2 TLB *)
  page_bytes : int;  (** power of two, typically 4096 *)
  l2_latency : int;
  walk_latency : int;
}

val config :
  ?page_bytes:int ->
  ?l2_latency:int ->
  ?walk_latency:int ->
  name:string ->
  l1_entries:int ->
  l2_entries:int ->
  unit ->
  config

val firesim_rocket : config
(** 32-entry fully associative L1, no L2 (Table 5, Banana Pi Sim Model). *)

val firesim_boom : config
(** 32-entry L1 + 1024-entry direct-mapped L2 (Table 5, MILK-V Sim
    Model). *)

val silicon : config
(** Generous structures for the undisclosed vendor parts. *)

type stats = {
  accesses : int;
  l1_misses : int;
  walks : int;
}

type t

val create : config -> t

val translate : t -> addr:int -> int
(** Extra cycles the translation adds to an access (0 on an L1 TLB hit). *)

val stats : t -> stats
val reach_bytes : config -> int
(** Memory covered by the L1 TLB (entries x page size). *)
