type t = { width : int; mutable cycle : int; mutable used : int }

let create ~width =
  if width <= 0 then invalid_arg "Slots.create: width";
  { width; cycle = -1; used = 0 }

let alloc t earliest =
  if earliest > t.cycle then begin
    t.cycle <- earliest;
    t.used <- 1;
    t.cycle
  end
  else if t.used < t.width then begin
    t.used <- t.used + 1;
    t.cycle
  end
  else begin
    t.cycle <- t.cycle + 1;
    t.used <- 1;
    t.cycle
  end

let advance t c =
  if c > t.cycle then begin
    t.cycle <- c;
    t.used <- 0
  end

let reset t =
  t.cycle <- -1;
  t.used <- 0
