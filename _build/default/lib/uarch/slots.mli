(** Per-cycle slot allocation.

    Timing models are instruction-ordered, not cycle-stepped, so width
    constraints ("at most W per cycle") are enforced by this tiny
    allocator: it hands out cycles monotonically, granting at most [width]
    allocations per cycle. *)

type t

val create : width:int -> t

val alloc : t -> int -> int
(** [alloc t earliest] grants a slot at the first cycle >= [earliest] (and
    >= any previously granted cycle) with spare width, and returns it. *)

val advance : t -> int -> unit
(** [advance t c] forbids grants before cycle [c]: the pipeline stage this
    allocator models is stalled until then. *)

val reset : t -> unit
