lib/uarch/slots.ml:
