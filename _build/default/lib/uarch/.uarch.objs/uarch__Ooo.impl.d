lib/uarch/ooo.ml: Array Branch Isa Memsys Seq Slots
