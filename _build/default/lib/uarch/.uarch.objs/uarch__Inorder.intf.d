lib/uarch/inorder.mli: Branch Isa Memsys Seq
