lib/uarch/inorder.ml: Array Branch Isa Memsys Seq Slots
