lib/uarch/ooo.mli: Branch Isa Memsys Seq
