lib/uarch/slots.mli:
