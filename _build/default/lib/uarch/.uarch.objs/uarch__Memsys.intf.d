lib/uarch/memsys.mli:
