lib/uarch/memsys.ml:
