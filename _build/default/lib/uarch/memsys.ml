type t = {
  load : cycle:int -> addr:int -> size:int -> int;
  store : cycle:int -> addr:int -> size:int -> int;
  ifetch : cycle:int -> pc:int -> int;
}

let ideal ~latency =
  {
    load = (fun ~cycle ~addr:_ ~size:_ -> cycle + latency);
    store = (fun ~cycle ~addr:_ ~size:_ -> cycle + latency);
    ifetch = (fun ~cycle ~pc:_ -> cycle + latency);
  }
