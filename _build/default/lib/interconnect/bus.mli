(** Shared system-bus model.

    Refills between cache levels and to memory cross the system bus: a
    [width_bits]-wide pipe shared by all cores.  A transfer occupies the
    bus for [ceil(bytes / (width_bits/8))] beats; concurrent transfers
    serialize first-come-first-served, which is what differentiates the
    paper's Rocket2 / Banana Pi Sim Model configurations (1 vs 4 L2 banks,
    64- vs 128-bit bus) under multi-core load. *)

type config = {
  name : string;
  width_bits : int;  (** data width; beats move width_bits/8 bytes *)
  cycles_per_beat : int;  (** core cycles per beat (>= 1) *)
}

val config : ?cycles_per_beat:int -> name:string -> width_bits:int -> unit -> config

type stats = {
  transfers : int;
  beats : int;
  contended : int;  (** transfers that waited for the bus *)
  busy_cycles : int;
}

type t

val create : config -> t

val transfer : t -> cycle:int -> bytes:int -> int
(** [transfer t ~cycle ~bytes] returns the cycle at which the last beat has
    moved. *)

val stats : t -> stats
val reset_stats : t -> unit

val utilization : t -> total_cycles:int -> float
(** Fraction of [total_cycles] during which the bus was moving data. *)
