lib/interconnect/bus.ml:
