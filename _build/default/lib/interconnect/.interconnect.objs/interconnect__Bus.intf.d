lib/interconnect/bus.mli:
