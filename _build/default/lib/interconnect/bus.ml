type config = {
  name : string;
  width_bits : int;
  cycles_per_beat : int;
}

let config ?(cycles_per_beat = 1) ~name ~width_bits () =
  if width_bits <= 0 || width_bits mod 8 <> 0 then invalid_arg "Bus.config: width_bits";
  if cycles_per_beat <= 0 then invalid_arg "Bus.config: cycles_per_beat";
  { name; width_bits; cycles_per_beat }

type stats = {
  transfers : int;
  beats : int;
  contended : int;
  busy_cycles : int;
}

type t = {
  cfg : config;
  mutable free_at : int;
  mutable s_transfers : int;
  mutable s_beats : int;
  mutable s_contended : int;
  mutable s_busy : int;
}

let create cfg = { cfg; free_at = 0; s_transfers = 0; s_beats = 0; s_contended = 0; s_busy = 0 }

let transfer t ~cycle ~bytes =
  if bytes <= 0 then invalid_arg "Bus.transfer: bytes";
  let beat_bytes = t.cfg.width_bits / 8 in
  let beats = (bytes + beat_bytes - 1) / beat_bytes in
  let duration = beats * t.cfg.cycles_per_beat in
  let start =
    if t.free_at <= cycle then cycle
    else begin
      t.s_contended <- t.s_contended + 1;
      t.free_at
    end
  in
  let finish = start + duration in
  t.free_at <- finish;
  t.s_transfers <- t.s_transfers + 1;
  t.s_beats <- t.s_beats + beats;
  t.s_busy <- t.s_busy + duration;
  finish

let stats t =
  { transfers = t.s_transfers; beats = t.s_beats; contended = t.s_contended; busy_cycles = t.s_busy }

let reset_stats t =
  t.s_transfers <- 0;
  t.s_beats <- 0;
  t.s_contended <- 0;
  t.s_busy <- 0;
  t.free_at <- 0

let utilization t ~total_cycles =
  if total_cycles <= 0 then 0.0 else float_of_int t.s_busy /. float_of_int total_cycles
