lib/report/chart.mli:
