lib/report/table.mli:
