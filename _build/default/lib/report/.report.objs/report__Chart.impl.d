lib/report/chart.ml: Buffer Float List Option Printf String
