let bar ~width ~max_value v =
  if max_value <= 0.0 then String.make 0 '#'
  else
    let n = int_of_float (Float.round (v /. max_value *. float_of_int width)) in
    String.make (max 0 (min width n)) '#'

let grouped_bars ?(width = 40) ?reference ~title ~groups () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  let all_values = List.concat_map (fun (_, s) -> List.map snd s) groups in
  let max_value = List.fold_left Float.max 0.0 all_values in
  let max_value = match reference with Some r -> Float.max max_value r | None -> max_value in
  let label_w =
    List.fold_left
      (fun acc (g, series) ->
        List.fold_left (fun a (s, _) -> max a (String.length g + String.length s + 1)) acc series)
      0 groups
  in
  let ref_col =
    Option.map (fun r -> int_of_float (Float.round (r /. max_value *. float_of_int width))) reference
  in
  List.iter
    (fun (g, series) ->
      List.iter
        (fun (s, v) ->
          let label = g ^ "/" ^ s in
          let pad = String.make (label_w - String.length label) ' ' in
          let b = bar ~width ~max_value v in
          let b =
            match ref_col with
            | Some c when c >= 0 && c <= width ->
              let padded = b ^ String.make (max 0 (width - String.length b)) ' ' in
              String.mapi (fun i ch -> if i = c then (if ch = '#' then '#' else '|') else ch) padded
            | _ -> b
          in
          Buffer.add_string buf (Printf.sprintf "  %s%s  %s %.3f\n" label pad b v))
        series;
      Buffer.add_char buf '\n')
    groups;
  Buffer.contents buf
