(** Plain-text table rendering for experiment output. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
val render : t -> string
(** Monospace table with aligned columns and a header rule. *)

val to_csv : t -> string
(** The same data as CSV (RFC-4180-style quoting). *)

val cell_f : float -> string
(** Canonical float formatting for table cells (4 significant digits). *)
