type t = {
  headers : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.map2 (fun cell w -> cell ^ String.make (w - String.length cell) ' ') row widths)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line t.headers :: rule :: List.map line rows) @ [ "" ])

let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let rows = t.headers :: List.rev t.rows in
  String.concat "\n" (List.map (fun row -> String.concat "," (List.map quote row)) rows) ^ "\n"

let cell_f v =
  if Float.is_integer v && Float.abs v < 1e6 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.3f" v
  else Printf.sprintf "%.4f" v
