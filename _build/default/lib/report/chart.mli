(** ASCII bar charts for figure regeneration.

    The paper's figures are grouped bar charts of relative speedup with a
    target line at 1.0; [grouped_bars] renders the same shape in text,
    with a `|` marking the 1.0 reference when it falls inside the plotted
    range. *)

val bar : width:int -> max_value:float -> float -> string
(** A single bar scaled so [max_value] fills [width] characters. *)

val grouped_bars :
  ?width:int ->
  ?reference:float ->
  title:string ->
  groups:(string * (string * float) list) list ->
  unit ->
  string
(** [groups] is [(group_label, [(series_label, value); ...]); ...].
    Renders one bar per (group, series) with labels, values, and an
    optional reference marker. *)
