let ghz f = f *. 1e9
let mhz f = f *. 1e6

let ns_to_cycles ~freq_hz ns =
  if ns <= 0.0 then 0
  else
    let c = int_of_float (Float.ceil (ns *. 1e-9 *. freq_hz)) in
    max 1 c

let cycles_to_ns ~freq_hz c = float_of_int c /. freq_hz *. 1e9
let cycles_to_seconds ~freq_hz c = float_of_int c /. freq_hz

let rescale_cycles ~from_hz ~to_hz c =
  if c <= 0 then 0
  else
    let seconds = float_of_int c /. from_hz in
    max 1 (int_of_float (Float.ceil (seconds *. to_hz)))

let bytes_per_cycle ~bandwidth_bytes_per_s ~freq_hz = bandwidth_bytes_per_s /. freq_hz
