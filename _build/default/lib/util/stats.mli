(** Descriptive statistics over float samples, used by the analysis layer
    (relative speedups, per-category aggregation) and by tests. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val geomean : float array -> float
(** Geometric mean; all samples must be positive. *)

val stddev : float array -> float
(** Population standard deviation. *)

val median : float array -> float
(** Median (does not mutate its argument). *)

val percentile : float array -> float -> float
(** [percentile xs p] for p in [0,100], linear interpolation between ranks. *)

val min_max : float array -> float * float
(** Smallest and largest sample. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val relative_error : expected:float -> actual:float -> float
(** |actual - expected| / |expected|. *)

val harmonic_mean : float array -> float
(** Harmonic mean; all samples must be nonzero. *)

(** Online accumulator (Welford) for streaming mean/variance. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
