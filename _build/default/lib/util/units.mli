(** Frequency / time unit helpers shared by all timing models.

    Internally the simulator counts integer core cycles; converting between
    cycles, nanoseconds, and clock domains is centralized here to keep the
    rounding conventions consistent (always round latencies *up*: a partial
    cycle still occupies a whole cycle). *)

val ghz : float -> float
(** [ghz f] is the frequency in Hz of [f] GHz. *)

val mhz : float -> float
(** [mhz f] is the frequency in Hz of [f] MHz. *)

val ns_to_cycles : freq_hz:float -> float -> int
(** [ns_to_cycles ~freq_hz ns] is the number of whole cycles covering [ns]
    nanoseconds at [freq_hz] (ceiling, at least 1 for positive input). *)

val cycles_to_ns : freq_hz:float -> int -> float
(** Inverse conversion (exact, as a float). *)

val cycles_to_seconds : freq_hz:float -> int -> float
(** Target-time in seconds for a cycle count. *)

val rescale_cycles : from_hz:float -> to_hz:float -> int -> int
(** [rescale_cycles ~from_hz ~to_hz c] re-expresses a duration measured in
    cycles of one clock domain in cycles of another (ceiling). *)

val bytes_per_cycle : bandwidth_bytes_per_s:float -> freq_hz:float -> float
(** Sustained bytes deliverable per core cycle at a given bandwidth. *)
