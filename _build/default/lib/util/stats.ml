let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let sum xs =
  (* Kahan compensation: simulations aggregate millions of cycle terms. *)
  let s = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    xs;
  !s

let mean xs =
  check_nonempty "Stats.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let geomean xs =
  check_nonempty "Stats.geomean" xs;
  let logs =
    Array.map
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive sample";
        log x)
      xs
  in
  exp (mean logs)

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
  sqrt (acc /. float_of_int (Array.length xs))

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))

let median xs = percentile xs 50.0

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let relative_error ~expected ~actual =
  if expected = 0.0 then invalid_arg "Stats.relative_error: expected = 0";
  Float.abs (actual -. expected) /. Float.abs expected

let harmonic_mean xs =
  check_nonempty "Stats.harmonic_mean" xs;
  let acc =
    Array.fold_left
      (fun a x ->
        if x = 0.0 then invalid_arg "Stats.harmonic_mean: zero sample";
        a +. (1.0 /. x))
      0.0 xs
  in
  float_of_int (Array.length xs) /. acc

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then invalid_arg "Stats.Online.mean: empty" else t.mean
  let variance t = if t.n = 0 then invalid_arg "Stats.Online.variance: empty" else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
end
