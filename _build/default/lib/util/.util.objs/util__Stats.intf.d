lib/util/stats.mli:
