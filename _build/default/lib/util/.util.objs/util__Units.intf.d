lib/util/units.mli:
