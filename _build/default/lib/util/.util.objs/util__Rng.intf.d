lib/util/rng.mli:
