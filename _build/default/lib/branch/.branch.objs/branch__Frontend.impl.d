lib/branch/frontend.ml: Array Isa Predictor
