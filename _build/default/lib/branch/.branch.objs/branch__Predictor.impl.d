lib/branch/predictor.ml: Array Bool Bytes Char Printf
