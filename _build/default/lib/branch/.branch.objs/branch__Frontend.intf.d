lib/branch/frontend.mli: Isa Predictor
