lib/branch/predictor.mli:
