type config =
  | Static_taken
  | Static_not_taken
  | Bimodal of { entries : int }
  | Gshare of { entries : int; history_bits : int }
  | Tage of { base_entries : int; tables : int; table_entries : int; max_history : int }

type tage_entry = { mutable tag : int; mutable ctr : int; mutable useful : int }

type tage_state = {
  base : Bytes.t;
  base_mask : int;
  tables : tage_entry array array;  (* tables.(i) has geometric history length *)
  hist_lens : int array;
  entry_mask : int;
  mutable history : int;  (* low bits = most recent outcomes *)
}

type gshare_state = { g_counters : Bytes.t; g_mask : int; g_hist_mask : int; mutable g_history : int }

type state =
  | S_static of bool
  | S_bimodal of { counters : Bytes.t; mask : int }
  | S_gshare of gshare_state
  | S_tage of tage_state

type t = { state : state }

let require_pow2 name n =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg (name ^ ": size must be a positive power of two")

(* 2-bit saturating counters packed one per byte: 0..3; >=2 predicts taken.
   Initialized to weakly-taken (2), matching common hardware reset. *)
let new_counters entries = Bytes.make entries '\002'

let ctr_get c i = Char.code (Bytes.unsafe_get c i)
let ctr_set c i v = Bytes.unsafe_set c i (Char.chr v)

let ctr_train c i taken =
  let v = ctr_get c i in
  let v' = if taken then min 3 (v + 1) else max 0 (v - 1) in
  ctr_set c i v'

let fold_pc pc = (pc lsr 2) lxor (pc lsr 13)

let create config =
  let state =
    match config with
    | Static_taken -> S_static true
    | Static_not_taken -> S_static false
    | Bimodal { entries } ->
      require_pow2 "Predictor.Bimodal" entries;
      S_bimodal { counters = new_counters entries; mask = entries - 1 }
    | Gshare { entries; history_bits } ->
      require_pow2 "Predictor.Gshare" entries;
      if history_bits < 1 || history_bits > 30 then invalid_arg "Predictor.Gshare: history_bits";
      S_gshare
        {
          g_counters = new_counters entries;
          g_mask = entries - 1;
          g_hist_mask = (1 lsl history_bits) - 1;
          g_history = 0;
        }
    | Tage { base_entries; tables; table_entries; max_history } ->
      require_pow2 "Predictor.Tage base" base_entries;
      require_pow2 "Predictor.Tage tables" table_entries;
      if tables < 1 then invalid_arg "Predictor.Tage: tables";
      if max_history < tables then invalid_arg "Predictor.Tage: max_history";
      (* Geometric history lengths from 2 up to max_history. *)
      let ratio = (float_of_int max_history /. 2.0) ** (1.0 /. float_of_int (max 1 (tables - 1))) in
      let hist_lens =
        Array.init tables (fun i ->
            min 62 (max (i + 2) (int_of_float (2.0 *. (ratio ** float_of_int i)))))
      in
      let mk_table _ = Array.init table_entries (fun _ -> { tag = -1; ctr = 2; useful = 0 }) in
      S_tage
        {
          base = new_counters base_entries;
          base_mask = base_entries - 1;
          tables = Array.init tables mk_table;
          hist_lens;
          entry_mask = table_entries - 1;
          history = 0;
        }
  in
  { state }

let tage_index s pc table_i =
  let len = s.hist_lens.(table_i) in
  let hist = s.history land ((1 lsl len) - 1) in
  (* Mix folded history with pc; cheap but adequate hash. *)
  let h = fold_pc pc lxor hist lxor (hist lsr 7) lxor (table_i * 0x9e37) in
  h land s.entry_mask

let tage_tag s pc table_i =
  let len = s.hist_lens.(table_i) in
  let hist = s.history land ((1 lsl len) - 1) in
  ((fold_pc pc * 31) lxor (hist * 7) lxor table_i) land 0xff

(* Longest-history table whose entry's tag matches provides the prediction;
   otherwise the bimodal base does. *)
let tage_lookup s pc =
  let rec search i =
    if i < 0 then None
    else
      let e = s.tables.(i).(tage_index s pc i) in
      if e.tag = tage_tag s pc i then Some (i, e) else search (i - 1)
  in
  search (Array.length s.tables - 1)

let predict t ~pc =
  match t.state with
  | S_static b -> b
  | S_bimodal { counters; mask } -> ctr_get counters (fold_pc pc land mask) >= 2
  | S_gshare g -> ctr_get g.g_counters ((fold_pc pc lxor (g.g_history land g.g_hist_mask)) land g.g_mask) >= 2
  | S_tage s -> (
    match tage_lookup s pc with
    | Some (_, e) -> e.ctr >= 2
    | None -> ctr_get s.base (fold_pc pc land s.base_mask) >= 2)

let update t ~pc ~taken =
  match t.state with
  | S_static _ -> ()
  | S_bimodal { counters; mask } -> ctr_train counters (fold_pc pc land mask) taken
  | S_gshare g ->
    ctr_train g.g_counters ((fold_pc pc lxor (g.g_history land g.g_hist_mask)) land g.g_mask) taken;
    g.g_history <- ((g.g_history lsl 1) lor Bool.to_int taken) land g.g_hist_mask
  | S_tage s ->
    let matched = tage_lookup s pc in
    let predicted =
      match matched with
      | Some (_, e) -> e.ctr >= 2
      | None -> ctr_get s.base (fold_pc pc land s.base_mask) >= 2
    in
    (match matched with
    | Some (_, e) ->
      e.ctr <- (if taken then min 3 (e.ctr + 1) else max 0 (e.ctr - 1));
      if predicted = taken then e.useful <- min 3 (e.useful + 1)
      else e.useful <- max 0 (e.useful - 1)
    | None -> ctr_train s.base (fold_pc pc land s.base_mask) taken);
    (* On a misprediction, allocate in a longer-history table to capture the
       correlation the current provider missed. *)
    (if predicted <> taken then
       let start = match matched with Some (i, _) -> i + 1 | None -> 0 in
       let rec alloc i =
         if i < Array.length s.tables then begin
           let e = s.tables.(i).(tage_index s pc i) in
           if e.useful = 0 then begin
             e.tag <- tage_tag s pc i;
             e.ctr <- (if taken then 2 else 1);
             e.useful <- 0
           end
           else begin
             e.useful <- e.useful - 1;
             alloc (i + 1)
           end
         end
       in
       alloc start);
    s.history <- ((s.history lsl 1) lor Bool.to_int taken) land ((1 lsl 62) - 1)

let name = function
  | Static_taken -> "static-taken"
  | Static_not_taken -> "static-not-taken"
  | Bimodal { entries } -> Printf.sprintf "bimodal-%d" entries
  | Gshare { entries; history_bits } -> Printf.sprintf "gshare-%d-h%d" entries history_bits
  | Tage { tables; table_entries; max_history; _ } ->
    Printf.sprintf "tage-%dx%d-h%d" tables table_entries max_history
