(** Multi-node FireSim simulation — the paper's §7 future work.

    FireSim's defining capability is scale-out simulation: several
    simulated SoCs connected through a simulated Ethernet switch, each
    link modeled with a fixed latency and a token-regulated bandwidth.
    This module composes [nodes] independent {!Platform.Soc} instances
    (each with its own caches, bus and DRAM) and runs one MPI program
    whose ranks are block-distributed across them: ranks on the same node
    communicate through that node's shared bus, ranks on different nodes
    pay NIC + switch latency and contend for switch bandwidth.

    The BxE environment the paper targets hosts up to 8 nodes; the
    defaults below follow FireSim's published network parameters
    (2 us link latency, 200 Gb/s links). *)

type config = {
  nodes : int;
  ranks_per_node : int;
  platform : Platform.Config.t;  (** every node runs this SoC *)
  link_latency_us : float;
  link_bandwidth_gbps : float;
}

val default : ?nodes:int -> ?ranks_per_node:int -> Platform.Config.t -> config
(** 2 us / 200 Gb/s links; [nodes] defaults to 2, [ranks_per_node] to the
    platform's core count. *)

type result = {
  ranks : int;
  cycles : int;  (** completion cycle of the slowest rank *)
  seconds : float;
  per_node : Platform.Soc.result array;
  comm : Smpi.comm_stats;
  internode_messages : int;
  internode_bytes : int;
}

val run : ?quantum:int -> config -> Smpi.program -> result
(** The program must have exactly [nodes * ranks_per_node] ranks. *)

val run_app :
  ?scale:float ->
  ?codegen:Workloads.Codegen.t ->
  config ->
  Workloads.Workload.app ->
  result
(** Build the app for [nodes * ranks_per_node] ranks and run it. *)

val scaling_table :
  ?scale:float -> ?node_counts:int list -> Platform.Config.t -> Workloads.Workload.app -> string
(** Strong-scaling study across node counts (default 1, 2, 4, 8): target
    runtime, speedup and parallel efficiency per row — the study the
    paper proposes for the BxE cluster. *)
