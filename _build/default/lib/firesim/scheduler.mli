(** Deterministic co-simulation of token-decoupled models.

    Each model is a step function that consumes one token from every input
    channel and produces one token on every output channel per *target*
    cycle.  A model may fire only when all inputs are ready and all outputs
    have room; the scheduler picks fireable models according to a host
    policy.  The FireSim correctness property — target behaviour is
    independent of host scheduling — holds by construction and is checked
    by the test suite under different policies. *)

type model

val model :
  name:string ->
  inputs:int Channel.t list ->
  outputs:int Channel.t list ->
  step:(int -> int list -> int list) ->
  model
(** [step target_cycle input_tokens] returns the output tokens for this
    target cycle. *)

val name : model -> string
val cycles_done : model -> int

type policy =
  | Round_robin
  | Reverse  (** iterate models in reverse order: adversarial interleave *)
  | Random of Util.Rng.t

type outcome = {
  host_iterations : int;  (** scheduler passes needed *)
  fired : int;  (** total model firings (= models x target cycles) *)
}

val run : ?policy:policy -> models:model list -> target_cycles:int -> unit -> outcome
(** Advance every model by [target_cycles] target cycles.  Raises
    [Failure] if the network deadlocks (e.g. a channel cycle with no
    initial tokens). *)
