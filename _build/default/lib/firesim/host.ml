type config = {
  name : string;
  host_freq_hz : float;
  base_fmr : float;
  dram_stall_host_cycles : float;
}

(* Base FMRs chosen to land at the simulation rates the paper reports:
   90 MHz shell / 1.5 = 60 MHz for Rocket; 90 MHz / 6.0 = 15 MHz for
   BOOM.  DRAM token stalls push the effective FMR above base under
   memory-heavy load. *)

let u250_rocket =
  { name = "alveo-u250/rocket"; host_freq_hz = 90.0e6; base_fmr = 1.5; dram_stall_host_cycles = 18.0 }

let u250_boom =
  { name = "alveo-u250/boom"; host_freq_hz = 90.0e6; base_fmr = 6.0; dram_stall_host_cycles = 18.0 }

type report = {
  target_cycles : int;
  target_seconds : float;
  host_seconds : float;
  effective_fmr : float;
  target_mhz : float;
  slowdown : float;
}

let report cfg ~target_freq_hz (r : Platform.Soc.result) =
  let target_cycles = r.Platform.Soc.cycles in
  let host_cycles =
    (float_of_int target_cycles *. cfg.base_fmr)
    +. (float_of_int r.Platform.Soc.dram_requests *. cfg.dram_stall_host_cycles)
  in
  let host_seconds = host_cycles /. cfg.host_freq_hz in
  let target_seconds = float_of_int target_cycles /. target_freq_hz in
  let effective_fmr = if target_cycles = 0 then cfg.base_fmr else host_cycles /. float_of_int target_cycles in
  {
    target_cycles;
    target_seconds;
    host_seconds;
    effective_fmr;
    target_mhz = (if host_seconds = 0.0 then 0.0 else float_of_int target_cycles /. host_seconds /. 1e6);
    slowdown = (if target_seconds = 0.0 then 0.0 else host_seconds /. target_seconds);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>target cycles : %d@,target time   : %.4f s@,host time     : %.4f s@,effective FMR : %.2f@,sim rate      : %.1f MHz@,slowdown      : %.0fx@]"
    r.target_cycles r.target_seconds r.host_seconds r.effective_fmr r.target_mhz r.slowdown
