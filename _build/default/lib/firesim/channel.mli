(** Bounded token channels — FireSim's host-decoupling primitive.

    In FireSim, target models advance one target cycle only when a token is
    available on every input channel and there is room for a token on every
    output channel; this is what makes an FPGA-hosted simulation cycle-exact
    regardless of host scheduling.  This module reproduces that protocol so
    the {!Scheduler} can co-simulate decoupled models deterministically, and
    so the unit tests can demonstrate the central property: token-based
    execution produces the same target-cycle results for any host
    interleaving. *)

type 'a t

val create : capacity:int -> 'a t
(** A channel holding at most [capacity] in-flight tokens. *)

val capacity : 'a t -> int
val occupancy : 'a t -> int
val can_enqueue : 'a t -> bool
val can_dequeue : 'a t -> bool

val enqueue : 'a t -> 'a -> unit
(** Raises [Invalid_argument] when full — models must check
    [can_enqueue]. *)

val dequeue : 'a t -> 'a
(** Raises [Invalid_argument] when empty. *)

val total_enqueued : 'a t -> int
(** Tokens ever enqueued: the number of target cycles the producer has
    committed. *)
