type config = {
  nodes : int;
  ranks_per_node : int;
  platform : Platform.Config.t;
  link_latency_us : float;
  link_bandwidth_gbps : float;
}

let default ?(nodes = 2) ?ranks_per_node platform =
  {
    nodes;
    ranks_per_node = Option.value ranks_per_node ~default:platform.Platform.Config.cores;
    platform;
    link_latency_us = 2.0;
    link_bandwidth_gbps = 200.0;
  }

type result = {
  ranks : int;
  cycles : int;
  seconds : float;
  per_node : Platform.Soc.result array;
  comm : Smpi.comm_stats;
  internode_messages : int;
  internode_bytes : int;
}

(* The switch: a single shared resource regulating inter-node bytes, like
   FireSim's token-based network model.  Timestamped in target cycles. *)
type switch = {
  mutable free_at : int;
  bytes_per_cycle : float;
  latency_cycles : int;
  mutable n_messages : int;
  mutable n_bytes : int;
}

let switch_transfer sw ~cycle ~bytes =
  let start = max cycle sw.free_at in
  let duration = max 1 (int_of_float (Float.ceil (float_of_int bytes /. sw.bytes_per_cycle))) in
  let finish = start + sw.latency_cycles + duration in
  (* The link is occupied for the transfer duration, not the flight
     latency. *)
  sw.free_at <- start + duration;
  sw.n_messages <- sw.n_messages + 1;
  sw.n_bytes <- sw.n_bytes + bytes;
  finish

let run ?quantum cfg program =
  if cfg.nodes <= 0 then invalid_arg "Multinode.run: nodes";
  if cfg.ranks_per_node <= 0 || cfg.ranks_per_node > cfg.platform.Platform.Config.cores then
    invalid_arg "Multinode.run: ranks_per_node";
  let nranks = Array.length program in
  if nranks <> cfg.nodes * cfg.ranks_per_node then
    invalid_arg
      (Printf.sprintf "Multinode.run: program has %d ranks, topology needs %d" nranks
         (cfg.nodes * cfg.ranks_per_node));
  let socs = Array.init cfg.nodes (fun _ -> Platform.Soc.create cfg.platform) in
  let node_of r = r / cfg.ranks_per_node in
  let ifaces =
    Array.init nranks (fun r -> Platform.Soc.core_iface socs.(node_of r) (r mod cfg.ranks_per_node))
  in
  let freq = Platform.Config.freq_hz cfg.platform in
  let sw =
    {
      free_at = 0;
      bytes_per_cycle = cfg.link_bandwidth_gbps *. 1e9 /. 8.0 /. freq;
      latency_cycles = Util.Units.ns_to_cycles ~freq_hz:freq (cfg.link_latency_us *. 1000.0);
      n_messages = 0;
      n_bytes = 0;
    }
  in
  let fabric =
    {
      Smpi.latency_cycles = Platform.Soc.mpi_latency_cycles socs.(0);
      transfer =
        (fun ~src ~dst ~cycle ~bytes ->
          if node_of src = node_of dst then
            Platform.Soc.local_transfer socs.(node_of src) ~cycle ~bytes
          else begin
            (* NIC out through the source node's bus, the switch hop, and
               NIC in through the destination's bus. *)
            let t1 = Platform.Soc.local_transfer socs.(node_of src) ~cycle ~bytes in
            let t2 = switch_transfer sw ~cycle:t1 ~bytes in
            Platform.Soc.local_transfer socs.(node_of dst) ~cycle:t2 ~bytes
          end);
    }
  in
  let comm = Smpi.Engine.run ?quantum fabric ifaces program in
  let per_node =
    Array.mapi
      (fun n soc ->
        let ranks_here = min cfg.ranks_per_node (nranks - (n * cfg.ranks_per_node)) in
        Platform.Soc.collect_result soc ~ranks:ranks_here ~comm:None)
      socs
  in
  let cycles = Array.fold_left (fun acc (r : Platform.Soc.result) -> max acc r.cycles) 0 per_node in
  {
    ranks = nranks;
    cycles;
    seconds = Util.Units.cycles_to_seconds ~freq_hz:freq cycles;
    per_node;
    comm;
    internode_messages = sw.n_messages;
    internode_bytes = sw.n_bytes;
  }

let run_app ?(scale = 1.0) ?(codegen = Workloads.Codegen.default) cfg app =
  let ranks = cfg.nodes * cfg.ranks_per_node in
  run cfg (app.Workloads.Workload.make ~codegen ~ranks ~scale)

let scaling_table ?(scale = 1.0) ?(node_counts = [ 1; 2; 4; 8 ]) platform app =
  let t =
    Report.Table.create
      ~headers:[ "Nodes"; "Ranks"; "Time (ms)"; "Speedup"; "Efficiency"; "Inter-node MB" ]
  in
  let base = ref None in
  List.iter
    (fun nodes ->
      let cfg = default ~nodes platform in
      let r = run_app ~scale cfg app in
      let t1 = match !base with None -> base := Some r.seconds; r.seconds | Some t1 -> t1 in
      let speedup = t1 /. r.seconds in
      Report.Table.add_row t
        [
          string_of_int nodes;
          string_of_int r.ranks;
          Printf.sprintf "%.3f" (r.seconds *. 1e3);
          Printf.sprintf "%.2f" speedup;
          Printf.sprintf "%.0f%%" (speedup /. float_of_int nodes *. 100.0);
          Printf.sprintf "%.2f" (float_of_int r.internode_bytes /. 1e6);
        ])
    node_counts;
  Printf.sprintf "%s: strong scaling over FireSim-style multi-node simulation (%s)\n"
    app.Workloads.Workload.app_name platform.Platform.Config.name
  ^ Report.Table.render t
