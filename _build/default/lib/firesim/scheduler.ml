type model = {
  m_name : string;
  inputs : int Channel.t list;
  outputs : int Channel.t list;
  step : int -> int list -> int list;
  mutable cycle : int;
}

let model ~name ~inputs ~outputs ~step = { m_name = name; inputs; outputs; step; cycle = 0 }
let name m = m.m_name
let cycles_done m = m.cycle

type policy =
  | Round_robin
  | Reverse
  | Random of Util.Rng.t

type outcome = {
  host_iterations : int;
  fired : int;
}

let fireable m target_cycles =
  m.cycle < target_cycles
  && List.for_all Channel.can_dequeue m.inputs
  && List.for_all Channel.can_enqueue m.outputs

let fire m =
  let ins = List.map Channel.dequeue m.inputs in
  let outs = m.step m.cycle ins in
  if List.length outs <> List.length m.outputs then
    failwith (m.m_name ^ ": step produced wrong number of output tokens");
  List.iter2 Channel.enqueue m.outputs outs;
  m.cycle <- m.cycle + 1

let run ?(policy = Round_robin) ~models ~target_cycles () =
  let arr = Array.of_list models in
  let n = Array.length arr in
  let iterations = ref 0 in
  let fired = ref 0 in
  let order () =
    match policy with
    | Round_robin -> Array.init n (fun i -> i)
    | Reverse -> Array.init n (fun i -> n - 1 - i)
    | Random rng -> Util.Rng.permutation rng n
  in
  let all_done () = Array.for_all (fun m -> m.cycle >= target_cycles) arr in
  while not (all_done ()) do
    incr iterations;
    let progressed = ref false in
    Array.iter
      (fun i ->
        let m = arr.(i) in
        if fireable m target_cycles then begin
          fire m;
          incr fired;
          progressed := true
        end)
      (order ());
    if not !progressed then
      failwith
        ("Firesim.Scheduler: deadlock; stuck models: "
        ^ String.concat ", "
            (Array.to_list arr
            |> List.filter (fun m -> m.cycle < target_cycles)
            |> List.map (fun m -> m.m_name)))
  done;
  { host_iterations = !iterations; fired = !fired }
