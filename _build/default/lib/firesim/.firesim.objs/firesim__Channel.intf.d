lib/firesim/channel.mli:
