lib/firesim/host.mli: Format Platform
