lib/firesim/scheduler.ml: Array Channel List String Util
