lib/firesim/channel.ml: Queue
