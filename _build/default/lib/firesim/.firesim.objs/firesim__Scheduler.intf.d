lib/firesim/scheduler.mli: Channel Util
