lib/firesim/host.ml: Format Platform
