lib/firesim/multinode.mli: Platform Smpi Workloads
