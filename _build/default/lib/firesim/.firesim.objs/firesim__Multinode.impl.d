lib/firesim/multinode.ml: Array Float List Option Platform Printf Report Smpi Util Workloads
