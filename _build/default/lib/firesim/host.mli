(** Host-platform model: how fast does the FPGA simulate the target?

    FireSim hosts target designs on FPGAs; the achieved simulation rate
    (target MHz) is the host clock divided by the FPGA-to-Model cycle
    Ratio (FMR).  The FMR has a base component (how many host cycles one
    target cycle of the synthesized design needs — larger designs close
    timing at lower effective rates) plus stalls injected by the
    token-based DRAM/LLC timing models, which deliberately withhold tokens
    to enforce target memory timing.  The paper reports ~60 MHz for Rocket
    targets (~25x slowdown vs a 1.6 GHz part) and ~15 MHz for BOOM
    (~135x vs 2.0 GHz); this module reproduces those figures from a
    {!Platform.Soc.result}. *)

type config = {
  name : string;
  host_freq_hz : float;  (** FPGA shell clock *)
  base_fmr : float;  (** host cycles per target cycle, unstalled *)
  dram_stall_host_cycles : float;  (** extra host cycles per DRAM request *)
}

val u250_rocket : config
(** Alveo U250 hosting a Rocket-based target (~60 MHz). *)

val u250_boom : config
(** Alveo U250 hosting a BOOM-based target (~15 MHz: bigger design, lower
    host utilization). *)

type report = {
  target_cycles : int;
  target_seconds : float;
  host_seconds : float;
  effective_fmr : float;
  target_mhz : float;
  slowdown : float;  (** host_seconds / target_seconds *)
}

val report : config -> target_freq_hz:float -> Platform.Soc.result -> report

val pp_report : Format.formatter -> report -> unit
