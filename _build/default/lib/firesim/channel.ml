type 'a t = {
  q : 'a Queue.t;
  cap : int;
  mutable enqueued : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Channel.create: capacity";
  { q = Queue.create (); cap = capacity; enqueued = 0 }

let capacity t = t.cap
let occupancy t = Queue.length t.q
let can_enqueue t = Queue.length t.q < t.cap
let can_dequeue t = not (Queue.is_empty t.q)

let enqueue t x =
  if not (can_enqueue t) then invalid_arg "Channel.enqueue: full";
  Queue.push x t.q;
  t.enqueued <- t.enqueued + 1

let dequeue t =
  if Queue.is_empty t.q then invalid_arg "Channel.dequeue: empty";
  Queue.pop t.q

let total_enqueued t = t.enqueued
