(** A small RV64 assembler with labels.

    Writing kernels directly as {!Rv64.t} arrays means hand-computing
    branch and jump offsets; this module resolves symbolic labels
    instead.  Branch/jump items take a label name, and [assemble] turns
    the item list into an instruction array with concrete offsets, given
    the program's base address.

    {[
      let program =
        Asm.(assemble ~base:0x10000
          [
            insn (Rv64.Addi (5, 0, 10));
            label "loop";
            insn (Rv64.Addi (5, 5, -1));
            bne 5 0 "loop";
            insn Rv64.Ecall;
          ])
    ]} *)

type item

val insn : Rv64.t -> item
(** A concrete instruction (its offsets, if any, are taken as-is). *)

val label : string -> item
(** Bind a name to the next instruction's address. *)

val beq : Rv64.reg -> Rv64.reg -> string -> item
val bne : Rv64.reg -> Rv64.reg -> string -> item
val blt : Rv64.reg -> Rv64.reg -> string -> item
val bge : Rv64.reg -> Rv64.reg -> string -> item
val bltu : Rv64.reg -> Rv64.reg -> string -> item
val bgeu : Rv64.reg -> Rv64.reg -> string -> item
val jal : Rv64.reg -> string -> item
val call : string -> item
(** [jal x1, label]. *)

val j : string -> item
(** [jal x0, label]. *)

val ret : item
(** [jalr x0, 0(x1)]. *)

exception Unknown_label of string
exception Duplicate_label of string

val assemble : ?base:int -> item list -> Rv64.t array
(** Resolve labels to PC-relative offsets.  [base] (default 0x10000) is
    where the program will be loaded. *)

val assemble_words : ?base:int -> item list -> int32 array
(** [assemble] followed by {!Rv64.encode}. *)
