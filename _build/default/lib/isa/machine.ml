type t = {
  regs : int64 array;
  pages : (int, Bytes.t) Hashtbl.t;  (* 4 KiB pages, lazily allocated *)
  mutable pc : int;
  mutable halted : bool;
  mutable instret : int;
}

exception Illegal_instruction of int * int32

let page_bytes = 4096

let create ?(pc = 0x10000) () =
  { regs = Array.make 32 0L; pages = Hashtbl.create 64; pc; halted = false; instret = 0 }

let page t addr =
  let key = addr / page_bytes in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
    let p = Bytes.make page_bytes '\000' in
    Hashtbl.add t.pages key p;
    p

let read_byte t addr = Char.code (Bytes.get (page t addr) (addr mod page_bytes))
let write_byte t addr v = Bytes.set (page t addr) (addr mod page_bytes) (Char.chr (v land 0xFF))

let read_n t addr n =
  let v = ref 0L in
  for i = n - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_byte t (addr + i)))
  done;
  !v

let write_n t addr n x =
  for i = 0 to n - 1 do
    write_byte t (addr + i) (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xFF)
  done

let read_mem t addr = read_n t addr 8
let write_mem t addr v = write_n t addr 8 v

let load_words t ~addr words =
  Array.iteri (fun i w -> write_n t (addr + (4 * i)) 4 (Int64.of_int32 w)) words

let load_program t ~addr program = load_words t ~addr (Array.map Rv64.encode program)

let reg t r = if r = 0 then 0L else t.regs.(r)

let set_reg t r v = if r <> 0 then t.regs.(r) <- v

let pc t = t.pc
let halted t = t.halted
let instret t = t.instret

(* Sign-extend a 32-bit value held in an int64. *)
let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32

let to_addr v = Int64.to_int v land ((1 lsl 48) - 1)

let step t =
  if t.halted then None
  else begin
    let word = Int64.to_int32 (read_n t t.pc 4) in
    match Rv64.decode word with
    | None -> raise (Illegal_instruction (t.pc, word))
    | Some instr ->
      let cur_pc = t.pc in
      let kind = Rv64.kind_of instr in
      t.instret <- t.instret + 1;
      (* Execute architecturally and collect the IR view. *)
      let mk ?(dst = 0) ?(src1 = 0) ?(src2 = 0) ?mem ?ctrl () =
        (* The IR tracks 32 registers; x-registers map directly. *)
        Insn.make ~dst ~src1 ~src2 ?mem ?ctrl ~pc:cur_pc kind
      in
      let next = cur_pc + 4 in
      let alu rd rs1 rs2 f =
        set_reg t rd (f (reg t rs1) (reg t rs2));
        t.pc <- next;
        mk ~dst:rd ~src1:rs1 ~src2:rs2 ()
      in
      let alui rd rs1 imm f =
        set_reg t rd (f (reg t rs1) (Int64.of_int imm));
        t.pc <- next;
        mk ~dst:rd ~src1:rs1 ()
      in
      let load rd rs1 imm bytes signed =
        let addr = to_addr (Int64.add (reg t rs1) (Int64.of_int imm)) in
        let raw = read_n t addr bytes in
        let v = if signed && bytes = 4 then sext32 raw else raw in
        set_reg t rd v;
        t.pc <- next;
        mk ~dst:rd ~src1:rs1 ~mem:{ Insn.addr; size = bytes } ()
      in
      let store rs2 rs1 imm bytes =
        let addr = to_addr (Int64.add (reg t rs1) (Int64.of_int imm)) in
        write_n t addr bytes (reg t rs2);
        t.pc <- next;
        mk ~src1:rs1 ~src2:rs2 ~mem:{ Insn.addr; size = bytes } ()
      in
      let branch rs1 rs2 imm cond =
        let taken = cond (reg t rs1) (reg t rs2) in
        let target = if taken then cur_pc + imm else next in
        t.pc <- target;
        mk ~src1:rs1 ~src2:rs2 ~ctrl:{ Insn.taken; target } ()
      in
      let insn =
        match instr with
        | Rv64.Add (rd, a, b) -> alu rd a b Int64.add
        | Sub (rd, a, b) -> alu rd a b Int64.sub
        | Sll (rd, a, b) -> alu rd a b (fun x y -> Int64.shift_left x (Int64.to_int y land 63))
        | Slt (rd, a, b) -> alu rd a b (fun x y -> if Int64.compare x y < 0 then 1L else 0L)
        | Sltu (rd, a, b) ->
          alu rd a b (fun x y -> if Int64.unsigned_compare x y < 0 then 1L else 0L)
        | Xor (rd, a, b) -> alu rd a b Int64.logxor
        | Srl (rd, a, b) -> alu rd a b (fun x y -> Int64.shift_right_logical x (Int64.to_int y land 63))
        | Sra (rd, a, b) -> alu rd a b (fun x y -> Int64.shift_right x (Int64.to_int y land 63))
        | Or (rd, a, b) -> alu rd a b Int64.logor
        | And (rd, a, b) -> alu rd a b Int64.logand
        | Mul (rd, a, b) -> alu rd a b Int64.mul
        | Div (rd, a, b) ->
          alu rd a b (fun x y -> if y = 0L then -1L else Int64.div x y)
        | Rem (rd, a, b) -> alu rd a b (fun x y -> if y = 0L then x else Int64.rem x y)
        | Addi (rd, a, imm) -> alui rd a imm Int64.add
        | Slti (rd, a, imm) -> alui rd a imm (fun x y -> if Int64.compare x y < 0 then 1L else 0L)
        | Sltiu (rd, a, imm) ->
          alui rd a imm (fun x y -> if Int64.unsigned_compare x y < 0 then 1L else 0L)
        | Xori (rd, a, imm) -> alui rd a imm Int64.logxor
        | Ori (rd, a, imm) -> alui rd a imm Int64.logor
        | Andi (rd, a, imm) -> alui rd a imm Int64.logand
        | Slli (rd, a, sh) -> alui rd a sh (fun x y -> Int64.shift_left x (Int64.to_int y))
        | Srli (rd, a, sh) -> alui rd a sh (fun x y -> Int64.shift_right_logical x (Int64.to_int y))
        | Srai (rd, a, sh) -> alui rd a sh (fun x y -> Int64.shift_right x (Int64.to_int y))
        | Ld (rd, imm, rs1) -> load rd rs1 imm 8 false
        | Lw (rd, imm, rs1) -> load rd rs1 imm 4 true
        | Sd (rs2, imm, rs1) -> store rs2 rs1 imm 8
        | Sw (rs2, imm, rs1) -> store rs2 rs1 imm 4
        | Beq (a, b, imm) -> branch a b imm Int64.equal
        | Bne (a, b, imm) -> branch a b imm (fun x y -> not (Int64.equal x y))
        | Blt (a, b, imm) -> branch a b imm (fun x y -> Int64.compare x y < 0)
        | Bge (a, b, imm) -> branch a b imm (fun x y -> Int64.compare x y >= 0)
        | Bltu (a, b, imm) -> branch a b imm (fun x y -> Int64.unsigned_compare x y < 0)
        | Bgeu (a, b, imm) -> branch a b imm (fun x y -> Int64.unsigned_compare x y >= 0)
        | Jal (rd, imm) ->
          set_reg t rd (Int64.of_int next);
          let target = cur_pc + imm in
          t.pc <- target;
          mk ~dst:rd ~ctrl:{ Insn.taken = true; target } ()
        | Jalr (rd, rs1, imm) ->
          let target = to_addr (Int64.add (reg t rs1) (Int64.of_int imm)) land lnot 1 in
          set_reg t rd (Int64.of_int next);
          t.pc <- target;
          mk ~dst:rd ~src1:rs1 ~ctrl:{ Insn.taken = true; target } ()
        | Lui (rd, imm) ->
          set_reg t rd (Int64.of_int (imm lsl 12));
          t.pc <- next;
          mk ~dst:rd ()
        | Auipc (rd, imm) ->
          set_reg t rd (Int64.of_int (cur_pc + (imm lsl 12)));
          t.pc <- next;
          mk ~dst:rd ()
        | Ecall ->
          t.halted <- true;
          t.pc <- next;
          mk ()
      in
      Some insn
  end

let run ?(max_insns = 10_000_000) t =
  let rec go n () =
    if n >= max_insns then Seq.Nil
    else
      match step t with
      | None -> Seq.Nil
      | Some i -> Seq.Cons (i, go (n + 1))
  in
  go 0
