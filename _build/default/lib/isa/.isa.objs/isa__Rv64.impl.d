lib/isa/rv64.ml: Format Insn Int32 Printf Sys
