lib/isa/machine.mli: Insn Rv64 Seq
