lib/isa/asm.mli: Rv64
