lib/isa/rv64.mli: Format Insn
