lib/isa/insn.ml: Format
