lib/isa/asm.ml: Array Hashtbl List Rv64
