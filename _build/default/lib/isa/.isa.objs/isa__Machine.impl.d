lib/isa/machine.ml: Array Bytes Char Hashtbl Insn Int64 Rv64 Seq
