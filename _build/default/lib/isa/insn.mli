(** Dynamic-instruction representation.

    The simulator is trace-driven: workloads produce a stream of *retired*
    instructions (the committed path), and core timing models charge cycles
    for them.  Each dynamic instruction carries exactly the information the
    timing models need: its static PC (for the instruction cache and branch
    predictors), its register dataflow (for dependency stalls), its memory
    access (for the data-cache hierarchy), and its control-flow outcome
    (for prediction).

    Register identifiers are small integers in [0, 31] mirroring the RISC-V
    integer/FP file split only loosely: the timing models track readiness per
    identifier, which is what matters for dependence chains.  Register 0 is
    the hardwired zero and never creates a dependency. *)

type reg = int
(** Architectural register id, 0..31; 0 is the zero register. *)

val zero_reg : reg
val num_regs : int

(** Operation kinds, grouped by execution resource.  [Fp_long] stands for a
    libm-grade transcendental (sin, cos, ...) executed as one long-latency
    unpipelined operation. *)
type kind =
  | Int_alu
  | Int_mul
  | Int_div
  | Fp_add
  | Fp_mul
  | Fp_div
  | Fp_cvt
  | Fp_long
  | Load
  | Store
  | Branch
  | Jump
  | Call
  | Ret
  | Fence
  | Amo
  | Nop

val kind_name : kind -> string

val is_mem : kind -> bool
(** Loads, stores and atomics. *)

val is_ctrl : kind -> bool
(** Branches, jumps, calls and returns. *)

val is_fp : kind -> bool

(** Memory access attached to a [Load]/[Store]/[Amo]. *)
type mem_access = { addr : int; size : int }

(** Control-flow outcome attached to a [Branch]/[Jump]/[Call]/[Ret]:
    whether the transfer was taken and the PC it transferred to.  For
    unconditional kinds [taken] is always true. *)
type ctrl = { taken : bool; target : int }

type t = {
  pc : int;
  kind : kind;
  dst : reg;  (** destination register, [zero_reg] if none *)
  src1 : reg;  (** first source, [zero_reg] if unused *)
  src2 : reg;  (** second source, [zero_reg] if unused *)
  mem : mem_access option;
  ctrl : ctrl option;
}

val make :
  ?dst:reg ->
  ?src1:reg ->
  ?src2:reg ->
  ?mem:mem_access ->
  ?ctrl:ctrl ->
  pc:int ->
  kind ->
  t
(** Smart constructor; checks (with assertions) that memory kinds carry a
    memory access and control kinds carry an outcome. *)

val pp : Format.formatter -> t -> unit

(** Per-kind execution latencies (cycles in the issuing core's clock),
    excluding any memory-hierarchy time.  Cores can override this table. *)
module Latency : sig
  type table = {
    int_alu : int;
    int_mul : int;
    int_div : int;
    fp_add : int;
    fp_mul : int;
    fp_div : int;
    fp_cvt : int;
    fp_long : int;
    jump : int;
    fence : int;
    amo : int;
  }

  val default : table
  (** Latencies typical of the Rocket/BOOM generation of cores. *)

  val of_kind : table -> kind -> int
  (** Execution latency for one kind ([Load]/[Store]/[Branch] return the
      non-memory, non-penalty base of 1). *)
end
