type reg = int

type t =
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Sll of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Xor of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Or of reg * reg * reg
  | And of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Rem of reg * reg * reg
  | Addi of reg * reg * int
  | Slti of reg * reg * int
  | Sltiu of reg * reg * int
  | Xori of reg * reg * int
  | Ori of reg * reg * int
  | Andi of reg * reg * int
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Ld of reg * int * reg
  | Lw of reg * int * reg
  | Sd of reg * int * reg
  | Sw of reg * int * reg
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Jal of reg * int
  | Jalr of reg * reg * int
  | Lui of reg * int
  | Auipc of reg * int
  | Ecall

(* --- encoding ------------------------------------------------------- *)

let check_reg r = if r < 0 || r > 31 then invalid_arg "Rv64: register out of range"

let check_range name lo hi v =
  if v < lo || v > hi then invalid_arg (Printf.sprintf "Rv64: %s immediate %d out of range" name v)

let op_reg = 0b0110011
let op_imm = 0b0010011
let op_load = 0b0000011
let op_store = 0b0100011
let op_branch = 0b1100011
let op_jal = 0b1101111
let op_jalr = 0b1100111
let op_lui = 0b0110111
let op_auipc = 0b0010111
let op_system = 0b1110011

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  check_reg rs2;
  check_reg rs1;
  check_reg rd;
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  check_reg rs1;
  check_reg rd;
  check_range "I" (-2048) 2047 imm;
  ((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode

let shift_type ~top6 ~shamt ~rs1 ~funct3 ~rd =
  check_reg rs1;
  check_reg rd;
  check_range "shamt" 0 63 shamt;
  (top6 lsl 26) lor (shamt lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor op_imm

let s_type ~imm ~rs2 ~rs1 ~funct3 =
  check_reg rs2;
  check_reg rs1;
  check_range "S" (-2048) 2047 imm;
  let imm = imm land 0xFFF in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor ((imm land 0x1F) lsl 7)
  lor op_store

let b_type ~imm ~rs2 ~rs1 ~funct3 =
  check_reg rs2;
  check_reg rs1;
  check_range "B" (-4096) 4094 imm;
  if imm land 1 <> 0 then invalid_arg "Rv64: branch offset must be even";
  let u = imm land 0x1FFF in
  ((u lsr 12) lsl 31)
  lor (((u lsr 5) land 0x3F) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (((u lsr 1) land 0xF) lsl 8)
  lor (((u lsr 11) land 1) lsl 7)
  lor op_branch

let u_type ~imm ~rd ~opcode =
  check_reg rd;
  check_range "U" (-524288) 524287 imm;
  ((imm land 0xFFFFF) lsl 12) lor (rd lsl 7) lor opcode

let j_type ~imm ~rd =
  check_reg rd;
  check_range "J" (-1048576) 1048574 imm;
  if imm land 1 <> 0 then invalid_arg "Rv64: jump offset must be even";
  let u = imm land 0x1FFFFF in
  ((u lsr 20) lsl 31)
  lor (((u lsr 1) land 0x3FF) lsl 21)
  lor (((u lsr 11) land 1) lsl 20)
  lor (((u lsr 12) land 0xFF) lsl 12)
  lor (rd lsl 7) lor op_jal

let encode instr =
  let word =
    match instr with
    | Add (rd, rs1, rs2) -> r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b000 ~rd ~opcode:op_reg
    | Sub (rd, rs1, rs2) -> r_type ~funct7:0b0100000 ~rs2 ~rs1 ~funct3:0b000 ~rd ~opcode:op_reg
    | Sll (rd, rs1, rs2) -> r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b001 ~rd ~opcode:op_reg
    | Slt (rd, rs1, rs2) -> r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b010 ~rd ~opcode:op_reg
    | Sltu (rd, rs1, rs2) -> r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b011 ~rd ~opcode:op_reg
    | Xor (rd, rs1, rs2) -> r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b100 ~rd ~opcode:op_reg
    | Srl (rd, rs1, rs2) -> r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b101 ~rd ~opcode:op_reg
    | Sra (rd, rs1, rs2) -> r_type ~funct7:0b0100000 ~rs2 ~rs1 ~funct3:0b101 ~rd ~opcode:op_reg
    | Or (rd, rs1, rs2) -> r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b110 ~rd ~opcode:op_reg
    | And (rd, rs1, rs2) -> r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b111 ~rd ~opcode:op_reg
    | Mul (rd, rs1, rs2) -> r_type ~funct7:1 ~rs2 ~rs1 ~funct3:0b000 ~rd ~opcode:op_reg
    | Div (rd, rs1, rs2) -> r_type ~funct7:1 ~rs2 ~rs1 ~funct3:0b100 ~rd ~opcode:op_reg
    | Rem (rd, rs1, rs2) -> r_type ~funct7:1 ~rs2 ~rs1 ~funct3:0b110 ~rd ~opcode:op_reg
    | Addi (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b000 ~rd ~opcode:op_imm
    | Slti (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b010 ~rd ~opcode:op_imm
    | Sltiu (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b011 ~rd ~opcode:op_imm
    | Xori (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b100 ~rd ~opcode:op_imm
    | Ori (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b110 ~rd ~opcode:op_imm
    | Andi (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b111 ~rd ~opcode:op_imm
    | Slli (rd, rs1, sh) -> shift_type ~top6:0 ~shamt:sh ~rs1 ~funct3:0b001 ~rd
    | Srli (rd, rs1, sh) -> shift_type ~top6:0 ~shamt:sh ~rs1 ~funct3:0b101 ~rd
    | Srai (rd, rs1, sh) -> shift_type ~top6:0b010000 ~shamt:sh ~rs1 ~funct3:0b101 ~rd
    | Ld (rd, imm, rs1) -> i_type ~imm ~rs1 ~funct3:0b011 ~rd ~opcode:op_load
    | Lw (rd, imm, rs1) -> i_type ~imm ~rs1 ~funct3:0b010 ~rd ~opcode:op_load
    | Sd (rs2, imm, rs1) -> s_type ~imm ~rs2 ~rs1 ~funct3:0b011
    | Sw (rs2, imm, rs1) -> s_type ~imm ~rs2 ~rs1 ~funct3:0b010
    | Beq (rs1, rs2, imm) -> b_type ~imm ~rs2 ~rs1 ~funct3:0b000
    | Bne (rs1, rs2, imm) -> b_type ~imm ~rs2 ~rs1 ~funct3:0b001
    | Blt (rs1, rs2, imm) -> b_type ~imm ~rs2 ~rs1 ~funct3:0b100
    | Bge (rs1, rs2, imm) -> b_type ~imm ~rs2 ~rs1 ~funct3:0b101
    | Bltu (rs1, rs2, imm) -> b_type ~imm ~rs2 ~rs1 ~funct3:0b110
    | Bgeu (rs1, rs2, imm) -> b_type ~imm ~rs2 ~rs1 ~funct3:0b111
    | Jal (rd, imm) -> j_type ~imm ~rd
    | Jalr (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b000 ~rd ~opcode:op_jalr
    | Lui (rd, imm) -> u_type ~imm ~rd ~opcode:op_lui
    | Auipc (rd, imm) -> u_type ~imm ~rd ~opcode:op_auipc
    | Ecall -> op_system
  in
  Int32.of_int word

(* --- decoding ------------------------------------------------------- *)

let sign_extend width v =
  let shift = Sys.int_size - width in
  (v lsl shift) asr shift

let decode word =
  let w = Int32.to_int word land 0xFFFFFFFF in
  let opcode = w land 0x7F in
  let rd = (w lsr 7) land 0x1F in
  let funct3 = (w lsr 12) land 0x7 in
  let rs1 = (w lsr 15) land 0x1F in
  let rs2 = (w lsr 20) land 0x1F in
  let funct7 = (w lsr 25) land 0x7F in
  let i_imm = sign_extend 12 (w lsr 20) in
  let s_imm = sign_extend 12 (((w lsr 25) lsl 5) lor ((w lsr 7) land 0x1F)) in
  let b_imm =
    sign_extend 13
      (((w lsr 31) lsl 12)
      lor (((w lsr 7) land 1) lsl 11)
      lor (((w lsr 25) land 0x3F) lsl 5)
      lor (((w lsr 8) land 0xF) lsl 1))
  in
  let u_imm = sign_extend 20 (w lsr 12) in
  let j_imm =
    sign_extend 21
      (((w lsr 31) lsl 20)
      lor (((w lsr 12) land 0xFF) lsl 12)
      lor (((w lsr 20) land 1) lsl 11)
      lor (((w lsr 21) land 0x3FF) lsl 1))
  in
  match opcode with
  | o when o = op_reg -> (
    match (funct7, funct3) with
    | 0, 0b000 -> Some (Add (rd, rs1, rs2))
    | 0b0100000, 0b000 -> Some (Sub (rd, rs1, rs2))
    | 0, 0b001 -> Some (Sll (rd, rs1, rs2))
    | 0, 0b010 -> Some (Slt (rd, rs1, rs2))
    | 0, 0b011 -> Some (Sltu (rd, rs1, rs2))
    | 0, 0b100 -> Some (Xor (rd, rs1, rs2))
    | 0, 0b101 -> Some (Srl (rd, rs1, rs2))
    | 0b0100000, 0b101 -> Some (Sra (rd, rs1, rs2))
    | 0, 0b110 -> Some (Or (rd, rs1, rs2))
    | 0, 0b111 -> Some (And (rd, rs1, rs2))
    | 1, 0b000 -> Some (Mul (rd, rs1, rs2))
    | 1, 0b100 -> Some (Div (rd, rs1, rs2))
    | 1, 0b110 -> Some (Rem (rd, rs1, rs2))
    | _ -> None)
  | o when o = op_imm -> (
    match funct3 with
    | 0b000 -> Some (Addi (rd, rs1, i_imm))
    | 0b010 -> Some (Slti (rd, rs1, i_imm))
    | 0b011 -> Some (Sltiu (rd, rs1, i_imm))
    | 0b100 -> Some (Xori (rd, rs1, i_imm))
    | 0b110 -> Some (Ori (rd, rs1, i_imm))
    | 0b111 -> Some (Andi (rd, rs1, i_imm))
    | 0b001 when w lsr 26 = 0 -> Some (Slli (rd, rs1, (w lsr 20) land 0x3F))
    | 0b101 when w lsr 26 = 0 -> Some (Srli (rd, rs1, (w lsr 20) land 0x3F))
    | 0b101 when w lsr 26 = 0b010000 -> Some (Srai (rd, rs1, (w lsr 20) land 0x3F))
    | _ -> None)
  | o when o = op_load -> (
    match funct3 with
    | 0b011 -> Some (Ld (rd, i_imm, rs1))
    | 0b010 -> Some (Lw (rd, i_imm, rs1))
    | _ -> None)
  | o when o = op_store -> (
    match funct3 with
    | 0b011 -> Some (Sd (rs2, s_imm, rs1))
    | 0b010 -> Some (Sw (rs2, s_imm, rs1))
    | _ -> None)
  | o when o = op_branch -> (
    match funct3 with
    | 0b000 -> Some (Beq (rs1, rs2, b_imm))
    | 0b001 -> Some (Bne (rs1, rs2, b_imm))
    | 0b100 -> Some (Blt (rs1, rs2, b_imm))
    | 0b101 -> Some (Bge (rs1, rs2, b_imm))
    | 0b110 -> Some (Bltu (rs1, rs2, b_imm))
    | 0b111 -> Some (Bgeu (rs1, rs2, b_imm))
    | _ -> None)
  | o when o = op_jal -> Some (Jal (rd, j_imm))
  | o when o = op_jalr && funct3 = 0 -> Some (Jalr (rd, rs1, i_imm))
  | o when o = op_lui -> Some (Lui (rd, u_imm))
  | o when o = op_auipc -> Some (Auipc (rd, u_imm))
  | o when o = op_system && w = op_system -> Some Ecall
  | _ -> None

(* --- disassembly ----------------------------------------------------- *)

let pp ppf instr =
  let r3 name rd rs1 rs2 = Format.fprintf ppf "%s x%d, x%d, x%d" name rd rs1 rs2 in
  let ri name rd rs1 imm = Format.fprintf ppf "%s x%d, x%d, %d" name rd rs1 imm in
  let mem name a imm b = Format.fprintf ppf "%s x%d, %d(x%d)" name a imm b in
  let br name rs1 rs2 imm = Format.fprintf ppf "%s x%d, x%d, %d" name rs1 rs2 imm in
  match instr with
  | Add (a, b, c) -> r3 "add" a b c
  | Sub (a, b, c) -> r3 "sub" a b c
  | Sll (a, b, c) -> r3 "sll" a b c
  | Slt (a, b, c) -> r3 "slt" a b c
  | Sltu (a, b, c) -> r3 "sltu" a b c
  | Xor (a, b, c) -> r3 "xor" a b c
  | Srl (a, b, c) -> r3 "srl" a b c
  | Sra (a, b, c) -> r3 "sra" a b c
  | Or (a, b, c) -> r3 "or" a b c
  | And (a, b, c) -> r3 "and" a b c
  | Mul (a, b, c) -> r3 "mul" a b c
  | Div (a, b, c) -> r3 "div" a b c
  | Rem (a, b, c) -> r3 "rem" a b c
  | Addi (a, b, i) -> ri "addi" a b i
  | Slti (a, b, i) -> ri "slti" a b i
  | Sltiu (a, b, i) -> ri "sltiu" a b i
  | Xori (a, b, i) -> ri "xori" a b i
  | Ori (a, b, i) -> ri "ori" a b i
  | Andi (a, b, i) -> ri "andi" a b i
  | Slli (a, b, i) -> ri "slli" a b i
  | Srli (a, b, i) -> ri "srli" a b i
  | Srai (a, b, i) -> ri "srai" a b i
  | Ld (a, i, b) -> mem "ld" a i b
  | Lw (a, i, b) -> mem "lw" a i b
  | Sd (a, i, b) -> mem "sd" a i b
  | Sw (a, i, b) -> mem "sw" a i b
  | Beq (a, b, i) -> br "beq" a b i
  | Bne (a, b, i) -> br "bne" a b i
  | Blt (a, b, i) -> br "blt" a b i
  | Bge (a, b, i) -> br "bge" a b i
  | Bltu (a, b, i) -> br "bltu" a b i
  | Bgeu (a, b, i) -> br "bgeu" a b i
  | Jal (a, i) -> Format.fprintf ppf "jal x%d, %d" a i
  | Jalr (a, b, i) -> Format.fprintf ppf "jalr x%d, %d(x%d)" a i b
  | Lui (a, i) -> Format.fprintf ppf "lui x%d, %d" a i
  | Auipc (a, i) -> Format.fprintf ppf "auipc x%d, %d" a i
  | Ecall -> Format.fprintf ppf "ecall"

let kind_of = function
  | Add _ | Sub _ | Sll _ | Slt _ | Sltu _ | Xor _ | Srl _ | Sra _ | Or _ | And _ | Addi _
  | Slti _ | Sltiu _ | Xori _ | Ori _ | Andi _ | Slli _ | Srli _ | Srai _ | Lui _ | Auipc _ ->
    Insn.Int_alu
  | Mul _ -> Insn.Int_mul
  | Div _ | Rem _ -> Insn.Int_div
  | Ld _ | Lw _ -> Insn.Load
  | Sd _ | Sw _ -> Insn.Store
  | Beq _ | Bne _ | Blt _ | Bge _ | Bltu _ | Bgeu _ -> Insn.Branch
  | Jal (rd, _) -> if rd = 1 then Insn.Call else Insn.Jump
  | Jalr (rd, rs1, _) -> if rd = 0 && rs1 = 1 then Insn.Ret else if rd = 1 then Insn.Call else Insn.Jump
  | Ecall -> Insn.Fence
