(** Functional RV64IM machine.

    Executes encoded {!Rv64} programs over a 64-bit register file and a
    sparse byte-addressed memory, and emits the retired-instruction
    stream ({!Insn.t}) the timing models consume — real machine code in,
    cycles out.

    Execution is architectural only (no timing): [step] retires one
    instruction, updating PC, registers and memory, and returns the IR
    record carrying the PC, register dataflow, memory address and branch
    outcome the timing layers need.  [Ecall] halts the machine.

    Memory is paged lazily: any address reads as zero until written.
    Misaligned accesses are allowed (this subset does not trap). *)

type t

val create : ?pc:int -> unit -> t
(** Fresh machine: registers zero, empty memory, PC at [pc]
    (default 0x10000). *)

val load_program : t -> addr:int -> Rv64.t array -> unit
(** Encode and store a program at [addr] (4 bytes per instruction). *)

val load_words : t -> addr:int -> int32 array -> unit
(** Store raw instruction words (e.g. from a binary blob). *)

val reg : t -> int -> int64
(** Architectural register value (x0 reads zero). *)

val set_reg : t -> int -> int64 -> unit

val read_mem : t -> int -> int64
(** 64-bit little-endian load (for tests and result inspection). *)

val write_mem : t -> int -> int64 -> unit

val pc : t -> int

val halted : t -> bool

val instret : t -> int
(** Instructions retired so far. *)

exception Illegal_instruction of int * int32
(** PC and the offending word. *)

val step : t -> Insn.t option
(** Retire one instruction; [None] once halted.  Raises
    {!Illegal_instruction} on undecodable words. *)

val run : ?max_insns:int -> t -> Insn.t Seq.t
(** Lazy stream of retired instructions until [Ecall] or [max_insns]
    (default 10 million — a runaway guard, not a target). *)
