type patch =
  | Beq of Rv64.reg * Rv64.reg
  | Bne of Rv64.reg * Rv64.reg
  | Blt of Rv64.reg * Rv64.reg
  | Bge of Rv64.reg * Rv64.reg
  | Bltu of Rv64.reg * Rv64.reg
  | Bgeu of Rv64.reg * Rv64.reg
  | Jal of Rv64.reg

type item =
  | Insn of Rv64.t
  | Label of string
  | Patched of patch * string

let insn i = Insn i
let label name = Label name
let beq a b l = Patched (Beq (a, b), l)
let bne a b l = Patched (Bne (a, b), l)
let blt a b l = Patched (Blt (a, b), l)
let bge a b l = Patched (Bge (a, b), l)
let bltu a b l = Patched (Bltu (a, b), l)
let bgeu a b l = Patched (Bgeu (a, b), l)
let jal rd l = Patched (Jal rd, l)
let call l = Patched (Jal 1, l)
let j l = Patched (Jal 0, l)
let ret = Insn (Rv64.Jalr (0, 1, 0))

exception Unknown_label of string
exception Duplicate_label of string

let assemble ?(base = 0x10000) items =
  (* Pass 1: assign addresses; labels bind to the following instruction. *)
  let labels = Hashtbl.create 16 in
  let addr = ref base in
  List.iter
    (fun item ->
      match item with
      | Label name ->
        if Hashtbl.mem labels name then raise (Duplicate_label name);
        Hashtbl.add labels name !addr
      | Insn _ | Patched _ -> addr := !addr + 4)
    items;
  let target name =
    match Hashtbl.find_opt labels name with
    | Some a -> a
    | None -> raise (Unknown_label name)
  in
  (* Pass 2: materialize. *)
  let out = ref [] in
  let addr = ref base in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | Insn i ->
        out := i :: !out;
        addr := !addr + 4
      | Patched (p, name) ->
        let off = target name - !addr in
        let i =
          match p with
          | Beq (a, b) -> Rv64.Beq (a, b, off)
          | Bne (a, b) -> Rv64.Bne (a, b, off)
          | Blt (a, b) -> Rv64.Blt (a, b, off)
          | Bge (a, b) -> Rv64.Bge (a, b, off)
          | Bltu (a, b) -> Rv64.Bltu (a, b, off)
          | Bgeu (a, b) -> Rv64.Bgeu (a, b, off)
          | Jal rd -> Rv64.Jal (rd, off)
        in
        out := i :: !out;
        addr := !addr + 4)
    items;
  Array.of_list (List.rev !out)

let assemble_words ?base items = Array.map Rv64.encode (assemble ?base items)
