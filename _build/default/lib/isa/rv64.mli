(** RV64IM instruction encoding and decoding.

    The timing layers work on the dynamic IR ({!Insn}), but the platforms
    under study are RISC-V machines, so the ISA library also speaks the
    real encoding: a typed representation of the RV64I base plus the M
    extension, an encoder to 32-bit instruction words, a decoder, a
    disassembler, and the mapping onto IR kinds the timing models charge.
    {!Machine} executes encoded programs functionally and emits the
    retired-instruction stream, closing the loop from machine code to
    cycles.

    Immediates are taken and returned as sign-extended OCaml ints; the
    encoder checks their ranges.  Compressed (C) instructions and CSRs are
    out of scope — the workloads in this study don't need them. *)

type reg = int
(** x0..x31. *)

type t =
  (* R-type *)
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Sll of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Xor of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Or of reg * reg * reg
  | And of reg * reg * reg
  (* M extension *)
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Rem of reg * reg * reg
  (* I-type *)
  | Addi of reg * reg * int
  | Slti of reg * reg * int
  | Sltiu of reg * reg * int
  | Xori of reg * reg * int
  | Ori of reg * reg * int
  | Andi of reg * reg * int
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  (* loads/stores (64- and 32-bit) *)
  | Ld of reg * int * reg  (** rd, offset(rs1) *)
  | Lw of reg * int * reg
  | Sd of reg * int * reg  (** rs2, offset(rs1) *)
  | Sw of reg * int * reg
  (* control *)
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Jal of reg * int
  | Jalr of reg * reg * int
  (* upper immediates *)
  | Lui of reg * int
  | Auipc of reg * int
  (* environment *)
  | Ecall

val encode : t -> int32
(** Raises [Invalid_argument] on out-of-range immediates or registers. *)

val decode : int32 -> t option
(** [None] for words outside the supported subset. *)

val pp : Format.formatter -> t -> unit
(** Assembly-style disassembly ("addi x5, x0, 42"). *)

val kind_of : t -> Insn.kind
(** The IR kind the timing models charge for this instruction.  [Jal]
    with rd=x1 is a call; [Jalr] with rd=x0, rs1=x1 is a return. *)
