type reg = int

let zero_reg = 0
let num_regs = 32

type kind =
  | Int_alu
  | Int_mul
  | Int_div
  | Fp_add
  | Fp_mul
  | Fp_div
  | Fp_cvt
  | Fp_long
  | Load
  | Store
  | Branch
  | Jump
  | Call
  | Ret
  | Fence
  | Amo
  | Nop

let kind_name = function
  | Int_alu -> "int_alu"
  | Int_mul -> "int_mul"
  | Int_div -> "int_div"
  | Fp_add -> "fp_add"
  | Fp_mul -> "fp_mul"
  | Fp_div -> "fp_div"
  | Fp_cvt -> "fp_cvt"
  | Fp_long -> "fp_long"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Jump -> "jump"
  | Call -> "call"
  | Ret -> "ret"
  | Fence -> "fence"
  | Amo -> "amo"
  | Nop -> "nop"

let is_mem = function Load | Store | Amo -> true | _ -> false
let is_ctrl = function Branch | Jump | Call | Ret -> true | _ -> false
let is_fp = function Fp_add | Fp_mul | Fp_div | Fp_cvt | Fp_long -> true | _ -> false

type mem_access = { addr : int; size : int }
type ctrl = { taken : bool; target : int }

type t = {
  pc : int;
  kind : kind;
  dst : reg;
  src1 : reg;
  src2 : reg;
  mem : mem_access option;
  ctrl : ctrl option;
}

let make ?(dst = zero_reg) ?(src1 = zero_reg) ?(src2 = zero_reg) ?mem ?ctrl ~pc kind =
  assert (dst >= 0 && dst < num_regs);
  assert (src1 >= 0 && src1 < num_regs);
  assert (src2 >= 0 && src2 < num_regs);
  assert (not (is_mem kind) || mem <> None);
  assert (not (is_ctrl kind) || ctrl <> None);
  { pc; kind; dst; src1; src2; mem; ctrl }

let pp ppf i =
  Format.fprintf ppf "@[%08x %s d=%d s=%d,%d%a%a@]" i.pc (kind_name i.kind) i.dst
    i.src1 i.src2
    (fun ppf -> function
      | None -> ()
      | Some { addr; size } -> Format.fprintf ppf " mem=%#x/%d" addr size)
    i.mem
    (fun ppf -> function
      | None -> ()
      | Some { taken; target } ->
        Format.fprintf ppf " %s->%#x" (if taken then "T" else "N") target)
    i.ctrl

module Latency = struct
  type table = {
    int_alu : int;
    int_mul : int;
    int_div : int;
    fp_add : int;
    fp_mul : int;
    fp_div : int;
    fp_cvt : int;
    fp_long : int;
    jump : int;
    fence : int;
    amo : int;
  }

  let default =
    {
      int_alu = 1;
      int_mul = 3;
      int_div = 16;
      fp_add = 4;
      fp_mul = 4;
      fp_div = 18;
      fp_cvt = 2;
      fp_long = 60;
      jump = 1;
      fence = 4;
      amo = 8;
    }

  let of_kind t = function
    | Int_alu -> t.int_alu
    | Int_mul -> t.int_mul
    | Int_div -> t.int_div
    | Fp_add -> t.fp_add
    | Fp_mul -> t.fp_mul
    | Fp_div -> t.fp_div
    | Fp_cvt -> t.fp_cvt
    | Fp_long -> t.fp_long
    | Jump | Call | Ret -> t.jump
    | Fence -> t.fence
    | Amo -> t.amo
    | Load | Store | Branch | Nop -> 1
end
