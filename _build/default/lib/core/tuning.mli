(** Microbenchmark-guided model tuning — the paper's §4 methodology as a
    library.

    Given a set of candidate simulation configurations and a silicon
    reference, run the MicroBench suite on each and score how far each
    candidate's performance profile is from the hardware.  The distance is
    the mean absolute log relative speedup,

      d = mean_k | ln (t_hw(k) / t_sim(k)) |

    which is 0 for a perfect match and symmetric in over-/under-shoot.
    [rank_candidates] reproduces the paper's selection of Large BOOM for
    the MILK-V, and [sweep_frequency] reproduces the Fast Banana Pi Sim
    Model experiment (clock scaling as a stand-in for issue width). *)

type score = {
  candidate : Platform.Config.t;
  distance : float;
  per_category : (Workloads.Workload.category * float) list;
      (** geomean relative speedup per category *)
}

val distance :
  ?scale:float ->
  ?kernels:Workloads.Workload.kernel list ->
  sim:Platform.Config.t ->
  hw:Platform.Config.t ->
  unit ->
  float

val score :
  ?scale:float ->
  ?kernels:Workloads.Workload.kernel list ->
  sim:Platform.Config.t ->
  hw:Platform.Config.t ->
  unit ->
  score

val rank_candidates :
  ?scale:float ->
  ?kernels:Workloads.Workload.kernel list ->
  candidates:Platform.Config.t list ->
  hw:Platform.Config.t ->
  unit ->
  score list
(** Sorted best (smallest distance) first. *)

val sweep_frequency :
  base:Platform.Config.t -> multipliers:float list -> Platform.Config.t list
(** Clock-scaling candidates named "<base>@x<m>". *)

(** A tunable dimension for {!grid_search}: a name, the list of candidate
    values, and how to apply one value to a configuration. *)
type dimension = {
  dim_name : string;
  values : float list;
  apply : Platform.Config.t -> float -> Platform.Config.t;
}

val dim_frequency : float list -> dimension
(** Core clock multipliers (the Fast-model axis). *)

val dim_dram_ctrl : float list -> dimension
(** Multipliers on the DRAM controller latency (the token-path
    conservatism axis). *)

val dim_l2_latency : float list -> dimension
(** Multipliers on the shared L2 hit latency. *)

val grid_search :
  ?scale:float ->
  ?kernels:Workloads.Workload.kernel list ->
  base:Platform.Config.t ->
  hw:Platform.Config.t ->
  dimensions:dimension list ->
  unit ->
  score list
(** Exhaustive sweep over the Cartesian product of the dimensions,
    scoring every combination against [hw] with the MicroBench distance;
    sorted best first.  This automates the paper's manual §4 loop
    ("tuned the micro-architectural parameters to more closely replicate
    the behaviour of the target processor"). *)

val render_scores : score list -> string
