module W = Workloads.Workload

type score = {
  candidate : Platform.Config.t;
  distance : float;
  per_category : (W.category * float) list;
}

let default_kernels = Workloads.Microbench.evaluated

let relatives ?(scale = 1.0) ~kernels ~sim ~hw () =
  List.map
    (fun (k : W.kernel) -> (k, Runner.kernel_relative ~scale ~sim ~hw k))
    kernels

let distance_of rels =
  Util.Stats.mean (Array.of_list (List.map (fun (_, r) -> Float.abs (log r)) rels))

let distance ?scale ?(kernels = default_kernels) ~sim ~hw () =
  distance_of (relatives ?scale ~kernels ~sim ~hw ())

let score ?scale ?(kernels = default_kernels) ~sim ~hw () =
  let rels = relatives ?scale ~kernels ~sim ~hw () in
  let per_category =
    List.filter_map
      (fun cat ->
        match List.filter (fun ((k : W.kernel), _) -> k.category = cat) rels with
        | [] -> None
        | in_cat ->
          Some (cat, Util.Stats.geomean (Array.of_list (List.map snd in_cat))))
      W.all_categories
  in
  { candidate = sim; distance = distance_of rels; per_category }

let rank_candidates ?scale ?kernels ~candidates ~hw () =
  candidates
  |> List.map (fun sim -> score ?scale ?kernels ~sim ~hw ())
  |> List.sort (fun a b -> compare a.distance b.distance)

let sweep_frequency ~base ~multipliers =
  List.map
    (fun m ->
      let hz = Platform.Config.freq_hz base *. m in
      let c = Platform.Config.with_freq base hz in
      { c with Platform.Config.name = Printf.sprintf "%s@x%.2g" base.Platform.Config.name m })
    multipliers

type dimension = {
  dim_name : string;
  values : float list;
  apply : Platform.Config.t -> float -> Platform.Config.t;
}

let dim_frequency values =
  {
    dim_name = "freq";
    values;
    apply = (fun c m -> Platform.Config.with_freq c (Platform.Config.freq_hz c *. m));
  }

let dim_dram_ctrl values =
  {
    dim_name = "dram-ctrl";
    values;
    apply =
      (fun c m ->
        let dram = { c.Platform.Config.dram with Dram.ctrl_latency_ns = c.Platform.Config.dram.Dram.ctrl_latency_ns *. m } in
        { c with Platform.Config.dram });
  }

let dim_l2_latency values =
  {
    dim_name = "l2-lat";
    values;
    apply =
      (fun c m ->
        let l2 =
          {
            c.Platform.Config.l2 with
            Cache.hit_latency = max 1 (int_of_float (Float.round (float_of_int c.Platform.Config.l2.Cache.hit_latency *. m)));
          }
        in
        { c with Platform.Config.l2 });
  }

let grid_search ?scale ?kernels ~base ~hw ~dimensions () =
  (* Cartesian product of all dimension assignments. *)
  let assignments =
    List.fold_left
      (fun acc dim ->
        List.concat_map (fun partial -> List.map (fun v -> (dim, v) :: partial) dim.values) acc)
      [ [] ] dimensions
  in
  let candidates =
    List.map
      (fun assignment ->
        let cfg = List.fold_left (fun c (dim, v) -> dim.apply c v) base (List.rev assignment) in
        let label =
          String.concat ","
            (List.rev_map (fun (dim, v) -> Printf.sprintf "%s=%.2g" dim.dim_name v) assignment)
        in
        { cfg with Platform.Config.name = base.Platform.Config.name ^ "@" ^ label })
      assignments
  in
  rank_candidates ?scale ?kernels ~candidates ~hw ()

let render_scores scores =
  let headers =
    "Candidate" :: "Distance"
    :: List.map W.category_name W.all_categories
  in
  let t = Report.Table.create ~headers in
  List.iter
    (fun s ->
      Report.Table.add_row t
        (s.candidate.Platform.Config.name
        :: Report.Table.cell_f s.distance
        :: List.map
             (fun cat ->
               match List.assoc_opt cat s.per_category with
               | Some g -> Report.Table.cell_f g
               | None -> "-")
             W.all_categories))
    scores;
  Report.Table.render t
