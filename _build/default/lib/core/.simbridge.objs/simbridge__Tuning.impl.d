lib/core/tuning.ml: Array Cache Dram Float List Platform Printf Report Runner String Util Workloads
