lib/core/runner.ml: Logs Platform Util Workloads
