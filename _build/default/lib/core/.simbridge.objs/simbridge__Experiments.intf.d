lib/core/experiments.mli: Workloads
