lib/core/runner.mli: Platform Workloads
