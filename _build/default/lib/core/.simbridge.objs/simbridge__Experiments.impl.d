lib/core/experiments.ml: Array Cache Dram Firesim Format Interconnect List Option Platform Printf Report Runner String Uarch Util Workloads
