lib/core/tuning.mli: Platform Workloads
