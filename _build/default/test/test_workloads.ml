(* Tests for the workload suite: MicroBench kernel properties, NPB / UME /
   LAMMPS structure, and the codegen knob. *)

module W = Workloads.Workload
module Mb = Workloads.Microbench
module I = Isa.Insn

let stream_of name = (Mb.find name).W.stream ~scale:1.0

let count p s = Prog.Gen.count_kind p s

let test_suite_inventory () =
  Alcotest.(check int) "40 kernels" 40 (List.length Mb.all);
  Alcotest.(check int) "39 evaluated" 39 (List.length Mb.evaluated);
  Alcotest.(check bool) "CRm excluded" true (Mb.find "CRm").W.excluded;
  let names = List.map (fun (k : W.kernel) -> k.name) Mb.all in
  Alcotest.(check int) "unique names" 40 (List.length (List.sort_uniq compare names))

let test_categories_populated () =
  List.iter
    (fun cat ->
      Alcotest.(check bool)
        (W.category_name cat ^ " non-empty")
        true
        (List.length (Mb.by_category cat) > 0))
    W.all_categories;
  Alcotest.(check int) "2 memory kernels" 2 (List.length (Mb.by_category W.Memory));
  Alcotest.(check int) "12 control flow" 12 (List.length (Mb.by_category W.Control_flow))

let test_streams_nonempty_and_deterministic () =
  List.iter
    (fun (k : W.kernel) ->
      let n1 = Prog.Gen.length (k.W.stream ~scale:0.02) in
      let n2 = Prog.Gen.length (k.W.stream ~scale:0.02) in
      Alcotest.(check bool) (k.W.name ^ " nonempty") true (n1 > 0);
      Alcotest.(check int) (k.W.name ^ " deterministic") n1 n2)
    Mb.all

let test_scale_grows_streams () =
  let k = Mb.find "Cca" in
  let small = Prog.Gen.length (k.W.stream ~scale:0.1) in
  let big = Prog.Gen.length (k.W.stream ~scale:0.5) in
  Alcotest.(check bool) "scale grows" true (big > 2 * small)

let test_kernel_signatures () =
  (* Each kernel must actually exercise its advertised feature. *)
  let has_kind name p =
    Alcotest.(check bool) (name ^ " contains expected ops") true (count p (stream_of name) > 0)
  in
  has_kind "MM" (fun k -> k = I.Load);
  has_kind "MM_st" (fun k -> k = I.Store);
  has_kind "DPT" (fun k -> k = I.Fp_div);
  has_kind "DPcvt" (fun k -> k = I.Fp_cvt);
  has_kind "EM1" (fun k -> k = I.Int_mul);
  has_kind "EF" (fun k -> k = I.Fp_add);
  has_kind "CRd" (fun k -> k = I.Call);
  has_kind "CRd" (fun k -> k = I.Ret);
  has_kind "CS1" (fun k -> k = I.Jump);
  has_kind "STc" (fun k -> k = I.Store)

let test_store_kernels_store_heavy () =
  let stores name = count (fun k -> k = I.Store) (stream_of name) in
  let loads name = count (fun k -> k = I.Load) (stream_of name) in
  Alcotest.(check bool) "ML2_BW_st mostly stores" true (stores "ML2_BW_st" > loads "ML2_BW_st");
  Alcotest.(check bool) "ML2_BW_ld mostly loads" true (loads "ML2_BW_ld" > stores "ML2_BW_ld")

let test_chase_kernels_serial_dependence () =
  (* MD/MM loads must form a dependence chain through rptr (r3). *)
  let check_chain name =
    let s = stream_of name in
    let chained =
      Seq.fold_left
        (fun acc (i : I.t) -> if i.kind = I.Load && i.dst = 3 && i.src1 = 3 then acc + 1 else acc)
        0 s
    in
    Alcotest.(check bool) (name ^ " has dependent loads") true (chained > 100)
  in
  check_chain "MD";
  check_chain "ML2";
  check_chain "MM"

let test_mip_code_footprint () =
  (* MIP must sweep a code footprint larger than both cluster L2s. *)
  let pcs = Hashtbl.create 1024 in
  Seq.iter (fun (i : I.t) -> Hashtbl.replace pcs (i.pc lsr 6) ()) (stream_of "MIP");
  let lines = Hashtbl.length pcs in
  Alcotest.(check bool)
    (Printf.sprintf "footprint %d KiB > 1 MiB" (lines * 64 / 1024))
    true
    (lines * 64 > 1024 * 1024)

let test_conflict_kernel_addresses () =
  (* MC addresses must collide in a 64-set cache. *)
  let sets = Hashtbl.create 64 in
  Seq.iter
    (fun (i : I.t) ->
      match i.mem with Some m -> Hashtbl.replace sets (m.addr / 64 mod 64) () | None -> ())
    (stream_of "MC");
  Alcotest.(check bool) "few sets touched" true (Hashtbl.length sets <= 8)

let test_branch_mix () =
  (* Control-flow kernels are branch-dense; execution kernels are not. *)
  let ratio name =
    let s = stream_of name in
    let total = Prog.Gen.length s in
    float_of_int (count I.is_ctrl s) /. float_of_int total
  in
  Alcotest.(check bool) "Cca branch-dense" true (ratio "Cca" > 0.2);
  Alcotest.(check bool) "EI not branch-dense" true (ratio "EI" < 0.15)

(* ---- NPB ---- *)

let test_npb_inventory () =
  Alcotest.(check int) "4 apps" 4 (List.length Workloads.Npb.all);
  Alcotest.(check bool) "find cg" true (Workloads.Npb.find "cg" == Workloads.Npb.cg)

let segments_insns prog rank =
  List.fold_left
    (fun acc -> function Smpi.Compute s -> acc + Prog.Gen.length s | Smpi.Comm _ -> acc)
    0 prog.(rank)

let segments_comms prog rank =
  List.fold_left (fun acc -> function Smpi.Comm _ -> acc + 1 | Smpi.Compute _ -> acc) 0 prog.(rank)

let test_npb_strong_scaling_partition () =
  (* Strong scaling: total compute stays roughly constant as ranks grow. *)
  List.iter
    (fun (app : W.app) ->
      let p1 = app.W.make ~codegen:Workloads.Codegen.default ~ranks:1 ~scale:0.3 in
      let p4 = app.W.make ~codegen:Workloads.Codegen.default ~ranks:4 ~scale:0.3 in
      let t1 = segments_insns p1 0 in
      let t4 = List.init 4 (fun r -> segments_insns p4 r) |> List.fold_left ( + ) 0 in
      let ratio = float_of_int t4 /. float_of_int t1 in
      Alcotest.(check bool)
        (Printf.sprintf "%s work conserved (%.2f)" app.W.app_name ratio)
        true
        (ratio > 0.8 && ratio < 1.6))
    Workloads.Npb.all

let test_npb_communication_present () =
  List.iter
    (fun (app : W.app) ->
      let p = app.W.make ~codegen:Workloads.Codegen.default ~ranks:4 ~scale:0.2 in
      Alcotest.(check bool) (app.W.app_name ^ " communicates") true (segments_comms p 0 > 0))
    Workloads.Npb.all

let test_ep_accept_rate () =
  (* The Marsaglia accept branch should be ~78.5% not-taken-to-accept. *)
  let p = Workloads.Npb.ep_program ~ranks:1 ~scale:0.5 () in
  let branches = ref 0 and fp_div = ref 0 in
  List.iter
    (function
      | Smpi.Compute s ->
        Seq.iter
          (fun (i : I.t) ->
            (* The accept branch tests register 23; the loop branch tests
               the loop counter — count only the former. *)
            if i.kind = I.Branch && i.src1 = 23 then incr branches;
            if i.kind = I.Fp_div then incr fp_div)
          s
      | Smpi.Comm _ -> ())
    p.(0);
  let accepted = !fp_div in
  let rate = float_of_int accepted /. float_of_int (max 1 !branches) in
  Alcotest.(check bool) (Printf.sprintf "accept rate ~0.785 (%.3f)" rate) true
    (rate > 0.7 && rate < 0.85)

let test_codegen_overhead_increases_ops () =
  let base = Workloads.Npb.cg_program ~codegen:Workloads.Codegen.gcc_13_2 ~ranks:1 ~scale:0.3 () in
  let old_ = Workloads.Npb.cg_program ~codegen:Workloads.Codegen.gcc_9_4 ~ranks:1 ~scale:0.3 () in
  Alcotest.(check bool) "gcc-9.4 emits more ops" true
    (segments_insns old_ 0 > segments_insns base 0)

(* ---- UME ---- *)

let test_ume_mesh_invariants () =
  let m = Workloads.Ume.build_mesh ~n:6 () in
  Alcotest.(check int) "zones" 216 m.Workloads.Ume.zones;
  Alcotest.(check int) "corners = 8 zones" (216 * 8) m.Workloads.Ume.corners;
  Alcotest.(check int) "points" (7 * 7 * 7) m.Workloads.Ume.points;
  Alcotest.(check int) "faces = 3 n^2 (n+1)" (3 * 36 * 7) m.Workloads.Ume.faces;
  (* every corner maps to a valid point *)
  Array.iter
    (fun p -> Alcotest.(check bool) "corner->point valid" true (p >= 0 && p < m.Workloads.Ume.points))
    m.Workloads.Ume.corner_to_point;
  (* each zone's 8 corners map to 8 distinct points *)
  for z = 0 to m.Workloads.Ume.zones - 1 do
    let pts = List.init 8 (fun c -> m.Workloads.Ume.corner_to_point.((z * 8) + c)) in
    Alcotest.(check int) "8 distinct corner points" 8 (List.length (List.sort_uniq compare pts))
  done

let test_ume_load_store_heavy () =
  (* UME's signature: high load/FP ratio (indirection-heavy). *)
  let p = Workloads.Ume.program ~ranks:1 ~scale:1.0 () in
  let loads = ref 0 and fps = ref 0 in
  List.iter
    (function
      | Smpi.Compute s ->
        Seq.iter
          (fun (i : I.t) ->
            if i.kind = I.Load then incr loads;
            if I.is_fp i.kind then incr fps)
          s
      | Smpi.Comm _ -> ())
    p.(0);
  Alcotest.(check bool) "more loads than FP" true (!loads > !fps)

let test_ume_halo_only_parallel () =
  let p1 = Workloads.Ume.program ~ranks:1 ~scale:1.0 () in
  let p2 = Workloads.Ume.program ~ranks:2 ~scale:1.0 () in
  Alcotest.(check int) "3 collectives at 1 rank" 3 (segments_comms p1 0);
  Alcotest.(check bool) "halos appear at 2 ranks" true (segments_comms p2 0 > 3)

(* ---- LAMMPS ---- *)

let test_lammps_energy_sane () =
  let t = Workloads.Lammps.simulate ~style:Workloads.Lammps.Lj ~atoms:216 ~steps:10 () in
  Alcotest.(check int) "recorded steps" 11 (Array.length t.Workloads.Lammps.potential_energy);
  (* reduced-units LJ fluid: total energy per atom should stay bounded *)
  let e0 = t.Workloads.Lammps.potential_energy.(0) +. t.Workloads.Lammps.kinetic_energy.(0) in
  let e1 =
    t.Workloads.Lammps.potential_energy.(10) +. t.Workloads.Lammps.kinetic_energy.(10)
  in
  let drift = Float.abs (e1 -. e0) /. Float.abs e0 in
  Alcotest.(check bool) (Printf.sprintf "energy drift bounded (%.3f)" drift) true (drift < 0.5)

let test_lammps_pairs_exist () =
  let t = Workloads.Lammps.simulate ~style:Workloads.Lammps.Lj ~atoms:216 ~steps:4 () in
  Array.iter
    (fun c -> Alcotest.(check bool) "pairs each step" true (c > 100))
    t.Workloads.Lammps.pair_count

let test_lammps_chain_has_fp_long () =
  (* FENE bond energy includes a log per bond: Chain emits Fp_long. *)
  let p = Workloads.Lammps.program ~style:Workloads.Lammps.Chain ~ranks:1 ~scale:0.5 () in
  let fp_long = ref 0 in
  List.iter
    (function
      | Smpi.Compute s -> Seq.iter (fun (i : I.t) -> if i.kind = I.Fp_long then incr fp_long) s
      | Smpi.Comm _ -> ())
    p.(0);
  Alcotest.(check bool) "chain has logs" true (!fp_long > 0)

let test_lammps_parallel_partitions_work () =
  let total ranks =
    let p = Workloads.Lammps.program ~style:Workloads.Lammps.Lj ~ranks ~scale:0.5 () in
    List.init ranks (fun r -> segments_insns p r) |> List.fold_left ( + ) 0
  in
  let t1 = total 1 and t4 = total 4 in
  let ratio = float_of_int t4 /. float_of_int t1 in
  Alcotest.(check bool) (Printf.sprintf "work conserved (%.2f)" ratio) true (ratio > 0.8 && ratio < 1.4)

let suite =
  [
    Alcotest.test_case "suite inventory" `Quick test_suite_inventory;
    Alcotest.test_case "categories populated" `Quick test_categories_populated;
    Alcotest.test_case "streams nonempty+deterministic" `Slow test_streams_nonempty_and_deterministic;
    Alcotest.test_case "scale grows streams" `Quick test_scale_grows_streams;
    Alcotest.test_case "kernel signatures" `Quick test_kernel_signatures;
    Alcotest.test_case "store/load balance" `Quick test_store_kernels_store_heavy;
    Alcotest.test_case "chase dependence chains" `Quick test_chase_kernels_serial_dependence;
    Alcotest.test_case "MIP code footprint" `Quick test_mip_code_footprint;
    Alcotest.test_case "MC conflict addresses" `Quick test_conflict_kernel_addresses;
    Alcotest.test_case "branch mix by category" `Quick test_branch_mix;
    Alcotest.test_case "npb inventory" `Quick test_npb_inventory;
    Alcotest.test_case "npb strong scaling partition" `Quick test_npb_strong_scaling_partition;
    Alcotest.test_case "npb communicates" `Quick test_npb_communication_present;
    Alcotest.test_case "EP accept rate" `Quick test_ep_accept_rate;
    Alcotest.test_case "codegen overhead" `Quick test_codegen_overhead_increases_ops;
    Alcotest.test_case "ume mesh invariants" `Quick test_ume_mesh_invariants;
    Alcotest.test_case "ume load/store heavy" `Quick test_ume_load_store_heavy;
    Alcotest.test_case "ume halo topology" `Quick test_ume_halo_only_parallel;
    Alcotest.test_case "lammps energy sane" `Quick test_lammps_energy_sane;
    Alcotest.test_case "lammps pairs exist" `Quick test_lammps_pairs_exist;
    Alcotest.test_case "lammps chain fp_long" `Quick test_lammps_chain_has_fp_long;
    Alcotest.test_case "lammps work partition" `Quick test_lammps_parallel_partitions_work;
  ]

(* --- codegen knob --- *)

let test_codegen_vector_ops () =
  Alcotest.(check int) "scalar identity" 8 (Workloads.Codegen.vector_ops Workloads.Codegen.gcc_9_4 8);
  Alcotest.(check int) "4-wide quarters" 2 (Workloads.Codegen.vector_ops Workloads.Codegen.gcc_13_2 8);
  Alcotest.(check int) "ceiling" 3 (Workloads.Codegen.vector_ops Workloads.Codegen.gcc_13_2 9);
  Alcotest.(check int) "at least one" 1 (Workloads.Codegen.vector_ops Workloads.Codegen.gcc_13_2 1)

let test_codegen_dither_average () =
  (* ops_at must average to base * overhead over many iterations. *)
  let total =
    List.fold_left ( + ) 0
      (List.init 1000 (fun i -> Workloads.Codegen.ops_at Workloads.Codegen.gcc_9_4 ~index:i ~base:2))
  in
  let avg = float_of_int total /. 1000.0 in
  Alcotest.(check bool) (Printf.sprintf "avg %.3f ~ 2.16" avg) true (Float.abs (avg -. 2.16) < 0.01)

let test_vectorized_lammps_fewer_ops () =
  let count codegen =
    let p = Workloads.Lammps.program ~codegen ~style:Workloads.Lammps.Lj ~ranks:1 ~scale:0.3 () in
    segments_insns p 0
  in
  let scalar = count Workloads.Codegen.gcc_9_4 in
  let vector = count Workloads.Codegen.gcc_13_2 in
  Alcotest.(check bool)
    (Printf.sprintf "vectorized (%d) << scalar (%d)" vector scalar)
    true
    (float_of_int vector < 0.5 *. float_of_int scalar)

let codegen_suite =
  [
    Alcotest.test_case "vector_ops" `Quick test_codegen_vector_ops;
    Alcotest.test_case "dithered overhead average" `Quick test_codegen_dither_average;
    Alcotest.test_case "vectorized lammps smaller" `Quick test_vectorized_lammps_fewer_ops;
  ]

let suite = suite @ codegen_suite
