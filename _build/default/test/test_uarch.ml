(* Behavioural tests for the core timing models: dependence chains, issue
   width, window effects, mispredict penalties. *)

module I = Isa.Insn

let alu ~pc ?(dst = 0) ?(src1 = 0) () = I.make ~dst ~src1 ~pc I.Int_alu
let load ~pc ~dst ~addr ?(src1 = 0) () = I.make ~dst ~src1 ~mem:{ addr; size = 8 } ~pc I.Load

let branch ~pc ~taken ~target () = I.make ~src1:1 ~ctrl:{ taken; target } ~pc I.Branch

let serial_chain n = List.init n (fun i -> alu ~pc:(i * 4 mod 256) ~dst:5 ~src1:5 ())
let independent n = List.init n (fun i -> alu ~pc:(i * 4 mod 256) ~dst:(5 + (i mod 8)) ())

let run_inorder ?(cfg = Uarch.Inorder.rocket ()) ?(mem = Uarch.Memsys.ideal ~latency:1) insns =
  let c = Uarch.Inorder.create cfg mem in
  Uarch.Inorder.run c (List.to_seq insns);
  Uarch.Inorder.stats c

let run_ooo ?(cfg = Uarch.Ooo.boom_large ()) ?(mem = Uarch.Memsys.ideal ~latency:1) insns =
  let c = Uarch.Ooo.create cfg mem in
  Uarch.Ooo.run c (List.to_seq insns);
  Uarch.Ooo.stats c

let test_inorder_serial_ipc () =
  let s = run_inorder (serial_chain 2000) in
  Alcotest.(check bool) (Printf.sprintf "serial IPC ~1 (%.2f)" s.Uarch.Inorder.ipc) true
    (s.Uarch.Inorder.ipc > 0.8 && s.Uarch.Inorder.ipc <= 1.05)

let test_inorder_single_issue_cap () =
  (* Even independent work cannot beat 1 IPC on a single-issue core. *)
  let s = run_inorder (independent 2000) in
  Alcotest.(check bool) (Printf.sprintf "<=1 IPC (%.2f)" s.Uarch.Inorder.ipc) true
    (s.Uarch.Inorder.ipc <= 1.05)

let test_dual_issue_speedup () =
  let single = run_inorder ~cfg:(Uarch.Inorder.rocket ()) (independent 4000) in
  let dual = run_inorder ~cfg:(Uarch.Inorder.k1 ()) (independent 4000) in
  let speedup = float_of_int single.Uarch.Inorder.cycles /. float_of_int dual.Uarch.Inorder.cycles in
  Alcotest.(check bool) (Printf.sprintf "dual issue speedup %.2f" speedup) true (speedup > 1.5)

let test_dual_issue_no_gain_on_serial () =
  let single = run_inorder ~cfg:(Uarch.Inorder.rocket ()) (serial_chain 4000) in
  let dual = run_inorder ~cfg:(Uarch.Inorder.k1 ()) (serial_chain 4000) in
  let speedup = float_of_int single.Uarch.Inorder.cycles /. float_of_int dual.Uarch.Inorder.cycles in
  Alcotest.(check bool) (Printf.sprintf "~no gain (%.2f)" speedup) true (speedup < 1.1)

let test_inorder_load_use_stall () =
  (* A dependent use of a slow load stalls; with independent work between,
     the latency is hidden (hit-under-miss). *)
  let mem = Uarch.Memsys.ideal ~latency:50 in
  let dependent =
    List.concat
      (List.init 50 (fun i ->
           [ load ~pc:0 ~dst:5 ~addr:(i * 64) (); alu ~pc:4 ~dst:6 ~src1:5 () ]))
  in
  let hidden =
    List.concat
      (List.init 50 (fun i ->
           load ~pc:0 ~dst:5 ~addr:(i * 64) () :: List.init 1 (fun _ -> alu ~pc:4 ~dst:6 ~src1:7 ())))
  in
  let sd = run_inorder ~mem dependent in
  let sh = run_inorder ~mem hidden in
  Alcotest.(check bool)
    (Printf.sprintf "dependent (%d) slower than independent (%d)" sd.Uarch.Inorder.cycles
       sh.Uarch.Inorder.cycles)
    true
    (sd.Uarch.Inorder.cycles > sh.Uarch.Inorder.cycles)

let test_inorder_mispredict_penalty_scales_with_depth () =
  (* Random branches: the 8-stage K1 pays more per mispredict than the
     5-stage Rocket.  Compare cycles/instruction beyond the base. *)
  let mk_branches n =
    List.init n (fun i ->
        branch ~pc:64 ~taken:(Prog.Outcome.random ~seed:7 i) ~target:(if Prog.Outcome.random ~seed:7 i then 128 else 68) ())
  in
  let shallow = { (Uarch.Inorder.rocket ()) with Uarch.Inorder.mispredict_penalty = 3 } in
  let deep = { shallow with Uarch.Inorder.pipeline_stages = 12; mispredict_penalty = 10 } in
  let s5 = run_inorder ~cfg:shallow (mk_branches 2000) in
  let s12 = run_inorder ~cfg:deep (mk_branches 2000) in
  Alcotest.(check bool)
    (Printf.sprintf "deeper pipeline slower (%d vs %d)" s12.Uarch.Inorder.cycles s5.Uarch.Inorder.cycles)
    true
    (s12.Uarch.Inorder.cycles > s5.Uarch.Inorder.cycles)

let test_inorder_advance_to () =
  let c = Uarch.Inorder.create (Uarch.Inorder.rocket ()) (Uarch.Memsys.ideal ~latency:1) in
  Uarch.Inorder.run c (List.to_seq (independent 10));
  let t = Uarch.Inorder.now c in
  Uarch.Inorder.advance_to c (t + 1000);
  Alcotest.(check int) "idled" (t + 1000) (Uarch.Inorder.now c);
  Uarch.Inorder.advance_to c t;
  Alcotest.(check int) "no rewind" (t + 1000) (Uarch.Inorder.now c)

let test_ooo_superscalar_ipc () =
  let s = run_ooo (independent 4000) in
  Alcotest.(check bool) (Printf.sprintf "IPC > 1.5 (%.2f)" s.Uarch.Ooo.ipc) true (s.Uarch.Ooo.ipc > 1.5)

let test_ooo_serial_chain_limits () =
  let s = run_ooo (serial_chain 4000) in
  Alcotest.(check bool) (Printf.sprintf "serial IPC ~1 (%.2f)" s.Uarch.Ooo.ipc) true
    (s.Uarch.Ooo.ipc <= 1.1)

let test_ooo_hides_miss_better_than_inorder () =
  (* Loads to distinct lines with plenty of independent work: the OoO
     window overlaps the misses; the in-order core cannot overlap as much
     past its first dependent use. *)
  let mem = Uarch.Memsys.ideal ~latency:80 in
  let work =
    List.concat
      (List.init 100 (fun i ->
           load ~pc:0 ~dst:5 ~addr:(i * 64) ()
           :: alu ~pc:4 ~dst:6 ~src1:5 ()
           :: List.init 6 (fun j -> alu ~pc:(8 + (4 * j)) ~dst:(7 + (j mod 4)) ())))
  in
  let io = run_inorder ~mem work in
  let oo = run_ooo ~mem work in
  Alcotest.(check bool)
    (Printf.sprintf "ooo (%d) faster than inorder (%d)" oo.Uarch.Ooo.cycles io.Uarch.Inorder.cycles)
    true
    (oo.Uarch.Ooo.cycles < io.Uarch.Inorder.cycles)

let test_ooo_window_size_matters () =
  (* Long-latency op followed by lots of independent work: a bigger ROB
     keeps more of it in flight. *)
  let mem = Uarch.Memsys.ideal ~latency:200 in
  let work =
    List.concat
      (List.init 40 (fun i ->
           load ~pc:0 ~dst:5 ~addr:(i * 64) () :: List.init 60 (fun j -> alu ~pc:(4 + (4 * (j mod 32))) ~dst:(6 + (j mod 8)) ())))
  in
  let small = run_ooo ~cfg:(Uarch.Ooo.boom_small ()) ~mem work in
  let large = run_ooo ~cfg:(Uarch.Ooo.boom_large ()) ~mem work in
  Alcotest.(check bool)
    (Printf.sprintf "large (%d) beats small (%d)" large.Uarch.Ooo.cycles small.Uarch.Ooo.cycles)
    true
    (large.Uarch.Ooo.cycles < small.Uarch.Ooo.cycles)

let test_ooo_boom_ordering () =
  (* On generic mixed work, small >= medium >= large in cycles. *)
  let rng = Util.Rng.create 33 in
  let work =
    List.init 6000 (fun i ->
        match Util.Rng.int rng 5 with
        | 0 -> load ~pc:(i * 4 mod 512) ~dst:(5 + (i mod 4)) ~addr:(i * 8 mod 8192) ()
        | 1 -> I.make ~dst:(5 + (i mod 8)) ~src1:(5 + ((i + 1) mod 8)) ~pc:(i * 4 mod 512) I.Fp_mul
        | _ -> alu ~pc:(i * 4 mod 512) ~dst:(5 + (i mod 8)) ~src1:(5 + ((i + 3) mod 8)) ())
  in
  let s = run_ooo ~cfg:(Uarch.Ooo.boom_small ()) work in
  let m = run_ooo ~cfg:(Uarch.Ooo.boom_medium ()) work in
  let l = run_ooo ~cfg:(Uarch.Ooo.boom_large ()) work in
  Alcotest.(check bool)
    (Printf.sprintf "small %d >= medium %d >= large %d" s.Uarch.Ooo.cycles m.Uarch.Ooo.cycles
       l.Uarch.Ooo.cycles)
    true
    (s.Uarch.Ooo.cycles >= m.Uarch.Ooo.cycles && m.Uarch.Ooo.cycles >= l.Uarch.Ooo.cycles)

let test_ooo_mispredict_redirect () =
  let predictable = List.init 2000 (fun _ -> branch ~pc:64 ~taken:true ~target:128 ()) in
  let random =
    List.init 2000 (fun i ->
        branch ~pc:64 ~taken:(Prog.Outcome.random ~seed:3 i)
          ~target:(if Prog.Outcome.random ~seed:3 i then 128 else 68)
          ())
  in
  let sp = run_ooo predictable in
  let sr = run_ooo random in
  Alcotest.(check bool)
    (Printf.sprintf "random (%d) slower than biased (%d)" sr.Uarch.Ooo.cycles sp.Uarch.Ooo.cycles)
    true
    (sr.Uarch.Ooo.cycles > sp.Uarch.Ooo.cycles)

let test_fence_serializes () =
  let mem = Uarch.Memsys.ideal ~latency:1 in
  let with_fences =
    List.concat
      (List.init 100 (fun _ -> [ alu ~pc:0 ~dst:5 (); I.make ~pc:4 I.Fence; alu ~pc:8 ~dst:6 () ]))
  in
  let without = List.init 300 (fun i -> alu ~pc:(i mod 64 * 4) ~dst:(5 + (i mod 2)) ()) in
  let sf = run_inorder ~mem with_fences in
  let sn = run_inorder ~mem without in
  Alcotest.(check bool) "fences cost cycles" true (sf.Uarch.Inorder.cycles > sn.Uarch.Inorder.cycles)

let test_div_unpipelined () =
  let divs = List.init 50 (fun i -> I.make ~dst:(5 + (i mod 8)) ~pc:0 I.Int_div) in
  let s = run_inorder divs in
  (* 50 divs at 16 cycles each, unpipelined: at least 800 cycles. *)
  Alcotest.(check bool) (Printf.sprintf ">= 800 cycles (%d)" s.Uarch.Inorder.cycles) true
    (s.Uarch.Inorder.cycles >= 50 * 16)

let test_slots_allocator () =
  let s = Uarch.Slots.create ~width:2 in
  Alcotest.(check int) "c0 s1" 0 (Uarch.Slots.alloc s 0);
  Alcotest.(check int) "c0 s2" 0 (Uarch.Slots.alloc s 0);
  Alcotest.(check int) "c1 overflow" 1 (Uarch.Slots.alloc s 0);
  Alcotest.(check int) "jump ahead" 10 (Uarch.Slots.alloc s 10);
  Uarch.Slots.reset s;
  Alcotest.(check int) "after reset" 0 (Uarch.Slots.alloc s 0)

let prop_cycles_monotone_in_stream_length =
  QCheck.Test.make ~name:"longer streams take no fewer cycles" ~count:50
    QCheck.(int_range 1 500)
    (fun n ->
      let a = run_inorder (independent n) in
      let b = run_inorder (independent (n + 50)) in
      b.Uarch.Inorder.cycles >= a.Uarch.Inorder.cycles)

let suite =
  [
    Alcotest.test_case "inorder serial IPC" `Quick test_inorder_serial_ipc;
    Alcotest.test_case "inorder single-issue cap" `Quick test_inorder_single_issue_cap;
    Alcotest.test_case "dual issue speedup" `Quick test_dual_issue_speedup;
    Alcotest.test_case "dual issue no gain on serial" `Quick test_dual_issue_no_gain_on_serial;
    Alcotest.test_case "load-use stall" `Quick test_inorder_load_use_stall;
    Alcotest.test_case "mispredict penalty vs depth" `Quick test_inorder_mispredict_penalty_scales_with_depth;
    Alcotest.test_case "advance_to" `Quick test_inorder_advance_to;
    Alcotest.test_case "ooo superscalar IPC" `Quick test_ooo_superscalar_ipc;
    Alcotest.test_case "ooo serial chain" `Quick test_ooo_serial_chain_limits;
    Alcotest.test_case "ooo hides misses" `Quick test_ooo_hides_miss_better_than_inorder;
    Alcotest.test_case "ooo window size" `Quick test_ooo_window_size_matters;
    Alcotest.test_case "boom size ordering" `Quick test_ooo_boom_ordering;
    Alcotest.test_case "ooo mispredict redirect" `Quick test_ooo_mispredict_redirect;
    Alcotest.test_case "fence serializes" `Quick test_fence_serializes;
    Alcotest.test_case "divider unpipelined" `Quick test_div_unpipelined;
    Alcotest.test_case "slots allocator" `Quick test_slots_allocator;
    QCheck_alcotest.to_alcotest prop_cycles_monotone_in_stream_length;
  ]
