(* Tests for the TLB timing model. *)

let small ?(l1 = 4) ?(l2 = 0) () =
  Platform.Tlb.create (Platform.Tlb.config ~name:"t" ~l1_entries:l1 ~l2_entries:l2 ())

let test_l1_hit_free () =
  let t = small () in
  ignore (Platform.Tlb.translate t ~addr:0x1000);
  Alcotest.(check int) "second access same page free" 0 (Platform.Tlb.translate t ~addr:0x1FFF)

let test_same_page_boundary () =
  let t = small () in
  ignore (Platform.Tlb.translate t ~addr:0x1000);
  Alcotest.(check bool) "next page misses" true (Platform.Tlb.translate t ~addr:0x2000 > 0)

let test_walk_cost_no_l2 () =
  let t = small () in
  Alcotest.(check int) "cold access walks" 40 (Platform.Tlb.translate t ~addr:0x5000)

let test_l2_cheaper_than_walk () =
  let t = small ~l1:2 ~l2:64 () in
  (* touch page 0, then evict it from L1 by touching 2 more pages; the
     re-access hits the L2 TLB *)
  ignore (Platform.Tlb.translate t ~addr:0x0);
  ignore (Platform.Tlb.translate t ~addr:0x1000);
  ignore (Platform.Tlb.translate t ~addr:0x2000);
  Alcotest.(check int) "L2 TLB hit" 8 (Platform.Tlb.translate t ~addr:0x0)

let test_lru_in_l1 () =
  let t = small ~l1:2 () in
  ignore (Platform.Tlb.translate t ~addr:0x0);
  ignore (Platform.Tlb.translate t ~addr:0x1000);
  (* refresh page 0, then add a third page: page 1 is the LRU victim *)
  ignore (Platform.Tlb.translate t ~addr:0x0);
  ignore (Platform.Tlb.translate t ~addr:0x2000);
  Alcotest.(check int) "page 0 still resident" 0 (Platform.Tlb.translate t ~addr:0x10)

let test_stats () =
  let t = small () in
  ignore (Platform.Tlb.translate t ~addr:0x0);
  ignore (Platform.Tlb.translate t ~addr:0x10);
  ignore (Platform.Tlb.translate t ~addr:0x1000);
  let s = Platform.Tlb.stats t in
  Alcotest.(check int) "3 accesses" 3 s.Platform.Tlb.accesses;
  Alcotest.(check int) "2 misses" 2 s.Platform.Tlb.l1_misses;
  Alcotest.(check int) "2 walks" 2 s.Platform.Tlb.walks

let test_reach () =
  Alcotest.(check int) "32 x 4K = 128K" (128 * 1024)
    (Platform.Tlb.reach_bytes Platform.Tlb.firesim_rocket)

let test_presets_match_table5 () =
  Alcotest.(check int) "rocket L1 32" 32 Platform.Tlb.firesim_rocket.Platform.Tlb.l1_entries;
  Alcotest.(check int) "rocket no L2" 0 Platform.Tlb.firesim_rocket.Platform.Tlb.l2_entries;
  Alcotest.(check int) "boom L2 1024" 1024 Platform.Tlb.firesim_boom.Platform.Tlb.l2_entries

let test_soc_integration () =
  (* A pointer chase over many pages must report walks through the SoC. *)
  let stream =
    Seq.init 2000 (fun i ->
        Isa.Insn.make ~dst:5
          ~mem:{ Isa.Insn.addr = 0x1000_0000 + (i * 8192); size = 8 }
          ~pc:0 Isa.Insn.Load)
  in
  let soc = Platform.Soc.create Platform.Catalog.banana_pi_sim in
  let r = Platform.Soc.run_stream soc stream in
  Alcotest.(check bool)
    (Printf.sprintf "walks recorded (%d)" r.Platform.Soc.tlb_walks)
    true
    (r.Platform.Soc.tlb_walks > 1000)

let test_tlb_pressure_costs_cycles () =
  let one_page =
    Seq.init 4000 (fun i ->
        Isa.Insn.make ~dst:5 ~mem:{ Isa.Insn.addr = 0x1000_0000 + (i mod 64 * 8); size = 8 } ~pc:0
          Isa.Insn.Load)
  in
  let many_pages =
    Seq.init 4000 (fun i ->
        Isa.Insn.make ~dst:5
          ~mem:{ Isa.Insn.addr = 0x1000_0000 + (i mod 512 * 8192); size = 8 }
          ~pc:0 Isa.Insn.Load)
  in
  let time stream =
    let soc = Platform.Soc.create Platform.Catalog.banana_pi_sim in
    (Platform.Soc.run_stream soc stream).Platform.Soc.cycles
  in
  Alcotest.(check bool) "page sweep slower" true (time many_pages > time one_page)

let prop_translate_nonnegative =
  QCheck.Test.make ~name:"tlb penalty is 0, l2_latency, or walk_latency" ~count:200
    QCheck.(int_range 0 0xFFFFFFF)
    (fun addr ->
      let t = small ~l1:4 ~l2:16 () in
      let p = Platform.Tlb.translate t ~addr in
      p = 0 || p = 8 || p = 40)

let suite =
  [
    Alcotest.test_case "L1 hit free" `Quick test_l1_hit_free;
    Alcotest.test_case "page boundary" `Quick test_same_page_boundary;
    Alcotest.test_case "walk cost" `Quick test_walk_cost_no_l2;
    Alcotest.test_case "L2 TLB cheaper" `Quick test_l2_cheaper_than_walk;
    Alcotest.test_case "L1 LRU" `Quick test_lru_in_l1;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "reach" `Quick test_reach;
    Alcotest.test_case "Table 5 presets" `Quick test_presets_match_table5;
    Alcotest.test_case "SoC integration" `Quick test_soc_integration;
    Alcotest.test_case "TLB pressure costs" `Quick test_tlb_pressure_costs_cycles;
    QCheck_alcotest.to_alcotest prop_translate_nonnegative;
  ]
