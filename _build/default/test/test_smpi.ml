(* Tests for the simulated MPI engine: matching, collectives, deadlock
   detection, chunked interleaving. *)

module I = Isa.Insn

let alu ~pc = I.make ~dst:5 ~src1:5 ~pc I.Int_alu

(* A trivial rank interface backed by a bare counter: each instruction
   costs one cycle. *)
let counter_iface () =
  let t = ref 0 in
  ( {
      Smpi.feed = (fun _ -> incr t);
      now = (fun () -> !t);
      advance_to = (fun c -> if c > !t then t := c);
    },
    t )

let fabric ?(latency = 10) () =
  let bus_free = ref 0 in
  {
    Smpi.latency_cycles = latency;
    transfer =
      (fun ~src:_ ~dst:_ ~cycle ~bytes ->
        let start = max cycle !bus_free in
        let finish = start + (bytes / 8) in
        bus_free := finish;
        finish);
  }

let compute n = Smpi.Compute (Seq.init n (fun i -> alu ~pc:(i mod 64 * 4)))

let run ?quantum ranks program =
  let ifaces = Array.init ranks (fun _ -> fst (counter_iface ())) in
  let stats = Smpi.Engine.run ?quantum (fabric ()) ifaces program in
  (stats, ifaces)

let test_single_rank_compute () =
  let stats, ifaces = run 1 [| [ compute 100 ] |] in
  Alcotest.(check int) "100 cycles" 100 (ifaces.(0).Smpi.now ());
  Alcotest.(check int) "no messages" 0 stats.Smpi.messages

let test_send_recv () =
  let program =
    [|
      [ Smpi.Comm (Smpi.Send { dst = 1; bytes = 800; tag = 0 }) ];
      [ Smpi.Comm (Smpi.Recv { src = 0; bytes = 800; tag = 0 }) ];
    |]
  in
  let stats, ifaces = run 2 program in
  Alcotest.(check int) "1 message" 1 stats.Smpi.messages;
  Alcotest.(check int) "800 bytes" 800 stats.Smpi.bytes_moved;
  Alcotest.(check bool) "receiver later than sender" true
    (ifaces.(1).Smpi.now () >= ifaces.(0).Smpi.now ())

let test_recv_waits_for_compute () =
  (* Rank 1 receives immediately; rank 0 computes 1000 cycles first.  The
     receiver's completion must reflect the sender's late send. *)
  let program =
    [|
      [ compute 1000; Smpi.Comm (Smpi.Send { dst = 1; bytes = 8; tag = 0 }) ];
      [ Smpi.Comm (Smpi.Recv { src = 0; bytes = 8; tag = 0 }) ];
    |]
  in
  let _, ifaces = run 2 program in
  Alcotest.(check bool) "receiver blocked until sender computed" true (ifaces.(1).Smpi.now () > 1000)

let test_sendrecv_symmetric_no_deadlock () =
  let xchg peer tag = Smpi.Comm (Smpi.Sendrecv { peer; send_bytes = 80; recv_bytes = 80; tag }) in
  let program = [| [ compute 10; xchg 1 7 ]; [ compute 20; xchg 0 7 ] |] in
  let stats, _ = run 2 program in
  Alcotest.(check int) "two messages" 2 stats.Smpi.messages

let test_tag_matching () =
  (* Messages with different tags do not cross-match. *)
  let program =
    [|
      [
        Smpi.Comm (Smpi.Send { dst = 1; bytes = 8; tag = 1 });
        Smpi.Comm (Smpi.Send { dst = 1; bytes = 16; tag = 2 });
      ];
      [
        Smpi.Comm (Smpi.Recv { src = 0; bytes = 16; tag = 2 });
        Smpi.Comm (Smpi.Recv { src = 0; bytes = 8; tag = 1 });
      ];
    |]
  in
  let stats, _ = run 2 program in
  Alcotest.(check int) "both delivered" 2 stats.Smpi.messages

let test_barrier_synchronizes () =
  let program = [| [ compute 1000; Smpi.Comm Smpi.Barrier ]; [ Smpi.Comm Smpi.Barrier ] |] in
  let _, ifaces = run 2 program in
  Alcotest.(check bool) "fast rank waited" true (ifaces.(1).Smpi.now () >= 1000);
  Alcotest.(check int) "both at same time" (ifaces.(0).Smpi.now ()) (ifaces.(1).Smpi.now ())

let test_allreduce_all_finish_together () =
  let program =
    Array.init 4 (fun r -> [ compute (100 * (r + 1)); Smpi.Comm (Smpi.Allreduce { bytes = 64 }) ])
  in
  let stats, ifaces = run 4 program in
  let t0 = ifaces.(0).Smpi.now () in
  Array.iter (fun i -> Alcotest.(check int) "synchronized" t0 (i.Smpi.now ())) ifaces;
  Alcotest.(check int) "one collective" 1 stats.Smpi.collectives;
  Alcotest.(check bool) "after slowest" true (t0 >= 400)

let test_collective_mismatch_detected () =
  let program =
    [| [ Smpi.Comm Smpi.Barrier ]; [ Smpi.Comm (Smpi.Allreduce { bytes = 8 }) ] |]
  in
  match run 2 program with
  | exception Smpi.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected Deadlock on mismatched collectives"

let test_deadlock_detected () =
  (* Both ranks recv first: classic deadlock. *)
  let program =
    [|
      [ Smpi.Comm (Smpi.Recv { src = 1; bytes = 8; tag = 0 }) ];
      [ Smpi.Comm (Smpi.Recv { src = 0; bytes = 8; tag = 0 }) ];
    |]
  in
  match run 2 program with
  | exception Smpi.Deadlock _ -> ()
  | _ -> Alcotest.fail "expected Deadlock"

let test_rank_count_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Engine.run: rank count mismatch") (fun () ->
      let ifaces = Array.init 2 (fun _ -> fst (counter_iface ())) in
      ignore (Smpi.Engine.run (fabric ()) ifaces [| [] |]))

let test_chunked_interleaving () =
  (* With a tiny quantum the engine must still complete correctly. *)
  let program = [| [ compute 5000; Smpi.Comm Smpi.Barrier ]; [ compute 5000; Smpi.Comm Smpi.Barrier ] |] in
  let _, ifaces = run ~quantum:7 2 program in
  Alcotest.(check int) "rank0 done" (ifaces.(0).Smpi.now ()) (ifaces.(1).Smpi.now ());
  Alcotest.(check bool) "computed everything" true (ifaces.(0).Smpi.now () >= 5000)

let test_alltoall_scales_with_ranks () =
  let mk ranks =
    let program = Array.init ranks (fun _ -> [ Smpi.Comm (Smpi.Alltoall { bytes_per_rank = 512 }) ]) in
    let _, ifaces = run ranks program in
    ifaces.(0).Smpi.now ()
  in
  Alcotest.(check bool) "4 ranks cost more than 2" true (mk 4 > mk 2)

let test_bcast_reduce_allgather_complete () =
  let ops =
    [ Smpi.Bcast { root = 0; bytes = 256 }; Smpi.Reduce { root = 0; bytes = 256 }; Smpi.Allgather { bytes = 128 } ]
  in
  let program = Array.init 3 (fun _ -> List.map (fun o -> Smpi.Comm o) ops) in
  let stats, _ = run 3 program in
  Alcotest.(check int) "three collectives" 3 stats.Smpi.collectives

let prop_more_bytes_not_faster =
  QCheck.Test.make ~name:"bigger messages never complete earlier" ~count:50
    QCheck.(pair (int_range 8 4096) (int_range 8 4096))
    (fun (b1, b2) ->
      let time bytes =
        let program =
          [|
            [ Smpi.Comm (Smpi.Send { dst = 1; bytes; tag = 0 }) ];
            [ Smpi.Comm (Smpi.Recv { src = 0; bytes; tag = 0 }) ];
          |]
        in
        let _, ifaces = run 2 program in
        ifaces.(1).Smpi.now ()
      in
      let lo = min b1 b2 and hi = max b1 b2 in
      time lo <= time hi)

let suite =
  [
    Alcotest.test_case "single rank compute" `Quick test_single_rank_compute;
    Alcotest.test_case "send/recv" `Quick test_send_recv;
    Alcotest.test_case "recv waits for sender" `Quick test_recv_waits_for_compute;
    Alcotest.test_case "sendrecv no deadlock" `Quick test_sendrecv_symmetric_no_deadlock;
    Alcotest.test_case "tag matching" `Quick test_tag_matching;
    Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
    Alcotest.test_case "allreduce synchronizes" `Quick test_allreduce_all_finish_together;
    Alcotest.test_case "collective mismatch" `Quick test_collective_mismatch_detected;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
    Alcotest.test_case "rank count mismatch" `Quick test_rank_count_mismatch;
    Alcotest.test_case "chunked interleaving" `Quick test_chunked_interleaving;
    Alcotest.test_case "alltoall scales" `Quick test_alltoall_scales_with_ranks;
    Alcotest.test_case "bcast/reduce/allgather" `Quick test_bcast_reduce_allgather_complete;
    QCheck_alcotest.to_alcotest prop_more_bytes_not_faster;
  ]
