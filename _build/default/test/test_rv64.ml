(* Tests for the RV64IM encoder/decoder and the functional machine. *)

module R = Isa.Rv64
module M = Isa.Machine

let samples =
  [
    R.Add (1, 2, 3); R.Sub (31, 30, 29); R.Sll (5, 6, 7); R.Slt (1, 2, 3); R.Sltu (4, 5, 6);
    R.Xor (7, 8, 9); R.Srl (10, 11, 12); R.Sra (13, 14, 15); R.Or (16, 17, 18); R.And (19, 20, 21);
    R.Mul (1, 2, 3); R.Div (4, 5, 6); R.Rem (7, 8, 9);
    R.Addi (5, 0, 42); R.Addi (5, 0, -2048); R.Slti (1, 2, -1); R.Sltiu (3, 4, 100);
    R.Xori (5, 6, 0x7FF); R.Ori (7, 8, -1); R.Andi (9, 10, 255);
    R.Slli (1, 2, 63); R.Srli (3, 4, 1); R.Srai (5, 6, 32);
    R.Ld (10, -8, 2); R.Lw (11, 2047, 3); R.Sd (12, -2048, 4); R.Sw (13, 0, 5);
    R.Beq (1, 2, -4096); R.Bne (3, 4, 4094); R.Blt (5, 6, 8); R.Bge (7, 8, -8);
    R.Bltu (9, 10, 16); R.Bgeu (11, 12, -16);
    R.Jal (1, 2048); R.Jal (0, -2048); R.Jalr (0, 1, 0); R.Jalr (1, 5, -4);
    R.Lui (3, 0xABCDE - 0x100000); R.Lui (3, 0x7FFFF); R.Auipc (4, 1); R.Ecall;
  ]

let test_roundtrip_samples () =
  List.iter
    (fun i ->
      match R.decode (R.encode i) with
      | Some j ->
        Alcotest.(check string)
          (Format.asprintf "%a" R.pp i)
          (Format.asprintf "%a" R.pp i) (Format.asprintf "%a" R.pp j)
      | None -> Alcotest.fail (Format.asprintf "decode failed for %a" R.pp i))
    samples

let test_known_encodings () =
  (* Cross-checked golden words: addi x0,x0,0 (canonical NOP) and
     ecall. *)
  Alcotest.(check int32) "nop" 0x00000013l (R.encode (R.Addi (0, 0, 0)));
  Alcotest.(check int32) "ecall" 0x00000073l (R.encode R.Ecall);
  Alcotest.(check int32) "add x1,x2,x3" 0x003100b3l (R.encode (R.Add (1, 2, 3)));
  Alcotest.(check int32) "ret (jalr x0,0(x1))" 0x00008067l (R.encode (R.Jalr (0, 1, 0)))

let test_decode_garbage () =
  Alcotest.(check bool) "all-ones undecodable" true (R.decode 0xFFFFFFFFl = None);
  Alcotest.(check bool) "zero undecodable" true (R.decode 0l = None)

let test_range_checks () =
  Alcotest.check_raises "I overflow" (Invalid_argument "Rv64: I immediate 2048 out of range")
    (fun () -> ignore (R.encode (R.Addi (1, 1, 2048))));
  Alcotest.check_raises "odd branch" (Invalid_argument "Rv64: branch offset must be even")
    (fun () -> ignore (R.encode (R.Beq (1, 2, 3))))

let test_kind_mapping () =
  Alcotest.(check bool) "jal x1 is call" true (R.kind_of (R.Jal (1, 8)) = Isa.Insn.Call);
  Alcotest.(check bool) "jal x0 is jump" true (R.kind_of (R.Jal (0, 8)) = Isa.Insn.Jump);
  Alcotest.(check bool) "jalr x0,(x1) is ret" true (R.kind_of (R.Jalr (0, 1, 0)) = Isa.Insn.Ret);
  Alcotest.(check bool) "mul" true (R.kind_of (R.Mul (1, 2, 3)) = Isa.Insn.Int_mul)

(* --- machine --- *)

let run_program ?(pc = 0x10000) program =
  let m = M.create ~pc () in
  M.load_program m ~addr:pc (Array.of_list program);
  let insns = List.of_seq (M.run m) in
  (m, insns)

let test_machine_arith () =
  let m, _ = run_program [ R.Addi (5, 0, 21); R.Addi (6, 0, 2); R.Mul (7, 5, 6); R.Ecall ] in
  Alcotest.(check int64) "21*2" 42L (M.reg m 7);
  Alcotest.(check bool) "halted" true (M.halted m);
  Alcotest.(check int) "4 retired" 4 (M.instret m)

let test_machine_x0_hardwired () =
  let m, _ = run_program [ R.Addi (0, 0, 99); R.Ecall ] in
  Alcotest.(check int64) "x0 stays zero" 0L (M.reg m 0)

let test_machine_memory () =
  let m, insns =
    run_program
      [ R.Addi (5, 0, 0x123); R.Addi (6, 0, 0x400); R.Sd (5, 0, 6); R.Ld (7, 0, 6); R.Ecall ]
  in
  Alcotest.(check int64) "store/load roundtrip" 0x123L (M.reg m 7);
  let loads = List.filter (fun (i : Isa.Insn.t) -> i.kind = Isa.Insn.Load) insns in
  Alcotest.(check int) "one load emitted" 1 (List.length loads);
  (match loads with
  | [ l ] -> Alcotest.(check bool) "load addr" true ((Option.get l.mem).addr = 0x400)
  | _ -> Alcotest.fail "loads")

let test_machine_loop_sum () =
  (* sum = 1 + 2 + ... + 10, as a real branch loop.
       x5 = i = 10; x6 = sum = 0
     loop: add x6, x6, x5 ; addi x5, x5, -1 ; bne x5, x0, loop ; ecall *)
  let m, insns =
    run_program
      [
        R.Addi (5, 0, 10);
        R.Addi (6, 0, 0);
        R.Add (6, 6, 5);
        R.Addi (5, 5, -1);
        R.Bne (5, 0, -8);
        R.Ecall;
      ]
  in
  Alcotest.(check int64) "sum 55" 55L (M.reg m 6);
  let branches = List.filter (fun (i : Isa.Insn.t) -> i.kind = Isa.Insn.Branch) insns in
  Alcotest.(check int) "10 branch executions" 10 (List.length branches);
  let taken = List.filter (fun (i : Isa.Insn.t) -> (Option.get i.ctrl).taken) branches in
  Alcotest.(check int) "9 taken" 9 (List.length taken)

let test_machine_call_ret () =
  (* call a function that doubles x10, then halt.
     0x10000: jal x1, +12  (to 0x1000c)
     0x10004: ecall
     0x10008: (padding nop)
     0x1000c: add x10, x10, x10 ; jalr x0, 0(x1) *)
  let m, insns =
    run_program
      [
        R.Addi (10, 0, 7);
        R.Jal (1, 12);
        R.Ecall;
        R.Addi (0, 0, 0) |> Fun.id;
        R.Add (10, 10, 10);
        R.Jalr (0, 1, 0);
      ]
  in
  Alcotest.(check int64) "doubled" 14L (M.reg m 10);
  Alcotest.(check bool) "saw call and ret" true
    (List.exists (fun (i : Isa.Insn.t) -> i.kind = Isa.Insn.Call) insns
    && List.exists (fun (i : Isa.Insn.t) -> i.kind = Isa.Insn.Ret) insns)

let test_machine_fibonacci () =
  (* Iterative fib(12) = 144. *)
  let m, _ =
    run_program
      [
        R.Addi (5, 0, 12);
        (* n *)
        R.Addi (6, 0, 0);
        (* a *)
        R.Addi (7, 0, 1);
        (* b *)
        R.Add (8, 6, 7);
        (* t = a+b *)
        R.Add (6, 7, 0);
        (* a = b *)
        R.Add (7, 8, 0);
        (* b = t *)
        R.Addi (5, 5, -1);
        R.Bne (5, 0, -16);
        R.Ecall;
      ]
  in
  Alcotest.(check int64) "fib" 144L (M.reg m 6)

let test_machine_illegal () =
  let m = M.create () in
  M.load_words m ~addr:0x10000 [| 0xFFFFFFFFl |];
  match M.step m with
  | exception M.Illegal_instruction (pc, _) -> Alcotest.(check int) "at pc" 0x10000 pc
  | _ -> Alcotest.fail "expected Illegal_instruction"

let test_machine_stream_times_on_platform () =
  (* The full bridge: real machine code -> retired stream -> cycles on a
     catalog platform. *)
  let mk () =
    let m = M.create () in
    M.load_program m ~addr:0x10000
      (Array.of_list
         [
           R.Addi (5, 0, 2000);
           R.Addi (6, 0, 0);
           R.Add (6, 6, 5);
           R.Addi (5, 5, -1);
           R.Bne (5, 0, -8);
           R.Ecall;
         ]);
    M.run m
  in
  let soc = Platform.Soc.create Platform.Catalog.banana_pi_sim in
  let r = Platform.Soc.run_stream soc (mk ()) in
  Alcotest.(check int) "all retired" (2 + (3 * 2000) + 1) r.Platform.Soc.instructions;
  Alcotest.(check bool) "took plausible cycles" true
    (r.Platform.Soc.cycles > 4000 && r.Platform.Soc.cycles < 100_000)

let gen_instr =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let imm12 = int_range (-2048) 2047 in
  let bimm = map (fun i -> i * 2) (int_range (-2048) 2047) in
  oneof
    [
      map3 (fun a b c -> R.Add (a, b, c)) reg reg reg;
      map3 (fun a b c -> R.Sub (a, b, c)) reg reg reg;
      map3 (fun a b c -> R.Mul (a, b, c)) reg reg reg;
      map3 (fun a b i -> R.Addi (a, b, i)) reg reg imm12;
      map3 (fun a b i -> R.Andi (a, b, i)) reg reg imm12;
      map3 (fun a i b -> R.Ld (a, i, b)) reg imm12 reg;
      map3 (fun a i b -> R.Sd (a, i, b)) reg imm12 reg;
      map3 (fun a b i -> R.Beq (a, b, i)) reg reg bimm;
      map3 (fun a b i -> R.Blt (a, b, i)) reg reg bimm;
      map2 (fun a i -> R.Jal (a, i * 2)) reg (int_range (-524288) 524287);
      map2 (fun a i -> R.Lui (a, i)) reg (int_range (-524288) 524287);
      map3 (fun a b i -> R.Jalr (a, b, i)) reg reg imm12;
      map3 (fun a b i -> R.Slli (a, b, i)) reg reg (int_range 0 63);
    ]

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"rv64 encode/decode roundtrip" ~count:1000
    (QCheck.make ~print:(Format.asprintf "%a" R.pp) gen_instr)
    (fun i -> match R.decode (R.encode i) with Some j -> i = j | None -> false)

let suite =
  [
    Alcotest.test_case "roundtrip samples" `Quick test_roundtrip_samples;
    Alcotest.test_case "golden encodings" `Quick test_known_encodings;
    Alcotest.test_case "garbage undecodable" `Quick test_decode_garbage;
    Alcotest.test_case "range checks" `Quick test_range_checks;
    Alcotest.test_case "IR kind mapping" `Quick test_kind_mapping;
    Alcotest.test_case "machine arithmetic" `Quick test_machine_arith;
    Alcotest.test_case "x0 hardwired" `Quick test_machine_x0_hardwired;
    Alcotest.test_case "memory roundtrip" `Quick test_machine_memory;
    Alcotest.test_case "loop sum" `Quick test_machine_loop_sum;
    Alcotest.test_case "call/ret" `Quick test_machine_call_ret;
    Alcotest.test_case "fibonacci" `Quick test_machine_fibonacci;
    Alcotest.test_case "illegal instruction" `Quick test_machine_illegal;
    Alcotest.test_case "machine code to cycles" `Quick test_machine_stream_times_on_platform;
    QCheck_alcotest.to_alcotest prop_encode_decode_roundtrip;
  ]

(* --- assembler --- *)

module A = Isa.Asm

let test_asm_backward_branch () =
  (* Same sum-loop as above, but with labels. *)
  let program =
    A.assemble
      [
        A.insn (R.Addi (5, 0, 10));
        A.insn (R.Addi (6, 0, 0));
        A.label "loop";
        A.insn (R.Add (6, 6, 5));
        A.insn (R.Addi (5, 5, -1));
        A.bne 5 0 "loop";
        A.insn R.Ecall;
      ]
  in
  let m = M.create () in
  M.load_program m ~addr:0x10000 program;
  ignore (List.of_seq (M.run m));
  Alcotest.(check int64) "sum 55" 55L (M.reg m 6)

let test_asm_forward_branch () =
  (* if x5 = 0 then x6 = 1 else x6 = 2 *)
  let program =
    A.assemble
      [
        A.insn (R.Addi (5, 0, 0));
        A.beq 5 0 "then";
        A.insn (R.Addi (6, 0, 2));
        A.j "end";
        A.label "then";
        A.insn (R.Addi (6, 0, 1));
        A.label "end";
        A.insn R.Ecall;
      ]
  in
  let m = M.create () in
  M.load_program m ~addr:0x10000 program;
  ignore (List.of_seq (M.run m));
  Alcotest.(check int64) "took then-branch" 1L (M.reg m 6)

let test_asm_call_ret () =
  let program =
    A.assemble
      [
        A.insn (R.Addi (10, 0, 5));
        A.call "triple";
        A.insn R.Ecall;
        A.label "triple";
        A.insn (R.Add (11, 10, 10));
        A.insn (R.Add (10, 11, 10));
        A.ret;
      ]
  in
  let m = M.create () in
  M.load_program m ~addr:0x10000 program;
  ignore (List.of_seq (M.run m));
  Alcotest.(check int64) "tripled" 15L (M.reg m 10)

let test_asm_label_errors () =
  (match A.assemble [ A.j "nowhere" ] with
  | exception A.Unknown_label "nowhere" -> ()
  | _ -> Alcotest.fail "expected Unknown_label");
  match A.assemble [ A.label "x"; A.label "x"; A.insn R.Ecall ] with
  | exception A.Duplicate_label "x" -> ()
  | _ -> Alcotest.fail "expected Duplicate_label"

let test_asm_base_independent_semantics () =
  (* Label offsets are PC-relative: the program behaves identically at a
     different load address. *)
  let items =
    [
      A.insn (R.Addi (5, 0, 3));
      A.label "loop";
      A.insn (R.Addi (5, 5, -1));
      A.bne 5 0 "loop";
      A.insn R.Ecall;
    ]
  in
  let run base =
    let m = M.create ~pc:base () in
    M.load_program m ~addr:base (A.assemble ~base items);
    Seq.fold_left (fun n _ -> n + 1) 0 (M.run m)
  in
  Alcotest.(check int) "same retire count" (run 0x10000) (run 0x40000)

let asm_suite =
  [
    Alcotest.test_case "asm backward branch" `Quick test_asm_backward_branch;
    Alcotest.test_case "asm forward branch" `Quick test_asm_forward_branch;
    Alcotest.test_case "asm call/ret" `Quick test_asm_call_ret;
    Alcotest.test_case "asm label errors" `Quick test_asm_label_errors;
    Alcotest.test_case "asm base independence" `Quick test_asm_base_independent_semantics;
  ]

let suite = suite @ asm_suite

let test_machine_runaway_guard () =
  (* jal x0, 0 — a tight infinite loop; run must respect max_insns. *)
  let m = M.create () in
  M.load_program m ~addr:0x10000 [| R.Jal (0, 0) |];
  let n = Seq.fold_left (fun acc _ -> acc + 1) 0 (M.run ~max_insns:500 m) in
  Alcotest.(check int) "capped" 500 n;
  Alcotest.(check bool) "not halted" false (M.halted m)

let suite = suite @ [ Alcotest.test_case "runaway guard" `Quick test_machine_runaway_guard ]
