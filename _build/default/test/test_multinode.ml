(* Tests for the multi-node (scale-out) simulation. *)

module I = Isa.Insn
module Mn = Firesim.Multinode

let alu_stream n = Seq.init n (fun i -> I.make ~dst:(5 + (i mod 8)) ~pc:(i mod 16 * 4) I.Int_alu)

let cfg ?(nodes = 2) ?(ranks_per_node = 2) () =
  { (Mn.default ~nodes Platform.Catalog.banana_pi_sim) with Mn.ranks_per_node }

let test_topology_validation () =
  let c = cfg () in
  (* 4 ranks expected; give 3 *)
  let program = Array.init 3 (fun _ -> [ Smpi.Compute (alu_stream 10) ]) in
  match Mn.run c program with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected topology mismatch rejection"

let test_pure_compute_ignores_network () =
  let c = cfg () in
  let program = Array.init 4 (fun _ -> [ Smpi.Compute (alu_stream 5000) ]) in
  let r = Mn.run c program in
  Alcotest.(check int) "no inter-node messages" 0 r.Mn.internode_messages;
  Alcotest.(check bool) "compute time" true (r.Mn.cycles >= 5000)

let test_internode_messages_counted () =
  let c = cfg () in
  (* rank 0 (node 0) -> rank 3 (node 1): crosses the switch;
     rank 0 -> rank 1 stays local *)
  let program =
    [|
      [
        Smpi.Comm (Smpi.Send { dst = 3; bytes = 4096; tag = 0 });
        Smpi.Comm (Smpi.Send { dst = 1; bytes = 4096; tag = 1 });
      ];
      [ Smpi.Comm (Smpi.Recv { src = 0; bytes = 4096; tag = 1 }) ];
      [];
      [ Smpi.Comm (Smpi.Recv { src = 0; bytes = 4096; tag = 0 }) ];
    |]
  in
  let r = Mn.run c program in
  Alcotest.(check int) "one inter-node message" 1 r.Mn.internode_messages;
  Alcotest.(check int) "its bytes" 4096 r.Mn.internode_bytes

let test_internode_slower_than_local () =
  let time dst =
    let program = Array.init 4 (fun r ->
        if r = 0 then [ Smpi.Comm (Smpi.Send { dst; bytes = 64 * 1024; tag = 0 }) ]
        else if r = dst then [ Smpi.Comm (Smpi.Recv { src = 0; bytes = 64 * 1024; tag = 0 }) ]
        else [])
    in
    let r = Mn.run (cfg ()) program in
    r.Mn.cycles
  in
  let local = time 1 in
  let remote = time 3 in
  Alcotest.(check bool)
    (Printf.sprintf "remote (%d) > local (%d)" remote local)
    true (remote > local)

let test_link_latency_visible () =
  (* 2 us at 1.6 GHz = 3200 cycles minimum for any cross-node message. *)
  let program =
    [|
      [ Smpi.Comm (Smpi.Send { dst = 3; bytes = 8; tag = 0 }) ];
      [];
      [];
      [ Smpi.Comm (Smpi.Recv { src = 0; bytes = 8; tag = 0 }) ];
    |]
  in
  let r = Mn.run (cfg ()) program in
  Alcotest.(check bool) (Printf.sprintf ">= 3200 cycles (%d)" r.Mn.cycles) true (r.Mn.cycles >= 3200)

let test_ep_scales_across_nodes () =
  let time nodes =
    let c = { (Mn.default ~nodes Platform.Catalog.banana_pi_sim) with Mn.ranks_per_node = 4 } in
    (Mn.run_app ~scale:0.5 c Workloads.Npb.ep).Mn.seconds
  in
  let t1 = time 1 and t4 = time 4 in
  let speedup = t1 /. t4 in
  Alcotest.(check bool) (Printf.sprintf "EP speedup %.2f > 2.5 on 4 nodes" speedup) true
    (speedup > 2.5)

let test_cg_scales_worse_than_ep () =
  (* CG's allgather crosses the switch every iteration: efficiency must
     fall behind EP's. *)
  let eff app =
    let t1 =
      (Mn.run_app ~scale:0.4 { (Mn.default ~nodes:1 Platform.Catalog.banana_pi_sim) with Mn.ranks_per_node = 4 } app).Mn.seconds
    in
    let t4 =
      (Mn.run_app ~scale:0.4 { (Mn.default ~nodes:4 Platform.Catalog.banana_pi_sim) with Mn.ranks_per_node = 4 } app).Mn.seconds
    in
    t1 /. t4 /. 4.0
  in
  let ep = eff Workloads.Npb.ep and cg = eff Workloads.Npb.cg in
  Alcotest.(check bool) (Printf.sprintf "CG eff %.2f < EP eff %.2f" cg ep) true (cg < ep)

let test_per_node_results () =
  let c = cfg () in
  let program = Array.init 4 (fun _ -> [ Smpi.Compute (alu_stream 1000) ]) in
  let r = Mn.run c program in
  Alcotest.(check int) "two nodes" 2 (Array.length r.Mn.per_node);
  Array.iter
    (fun (nr : Platform.Soc.result) ->
      Alcotest.(check int) "each node ran 2 ranks" 2 (Array.length nr.Platform.Soc.per_core))
    r.Mn.per_node

let test_scaling_table_renders () =
  let s =
    Mn.scaling_table ~scale:0.2 ~node_counts:[ 1; 2 ] Platform.Catalog.banana_pi_sim
      Workloads.Npb.ep
  in
  Alcotest.(check bool) "renders" true (String.length s > 100)

let suite =
  [
    Alcotest.test_case "topology validation" `Quick test_topology_validation;
    Alcotest.test_case "pure compute no network" `Quick test_pure_compute_ignores_network;
    Alcotest.test_case "inter-node accounting" `Quick test_internode_messages_counted;
    Alcotest.test_case "inter-node slower" `Quick test_internode_slower_than_local;
    Alcotest.test_case "link latency floor" `Quick test_link_latency_visible;
    Alcotest.test_case "EP scales across nodes" `Slow test_ep_scales_across_nodes;
    Alcotest.test_case "CG bends before EP" `Slow test_cg_scales_worse_than_ep;
    Alcotest.test_case "per-node results" `Quick test_per_node_results;
    Alcotest.test_case "scaling table" `Slow test_scaling_table_renders;
  ]

let test_bad_ranks_per_node () =
  (* more ranks per node than the platform has cores *)
  let c = { (Mn.default ~nodes:1 Platform.Catalog.banana_pi_sim) with Mn.ranks_per_node = 9 } in
  match Mn.run c (Array.init 9 (fun _ -> [])) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let suite = suite @ [ Alcotest.test_case "bad ranks_per_node" `Quick test_bad_ranks_per_node ]
