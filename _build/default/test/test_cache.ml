(* Tests for the cache timing model. *)

let flat_next latency : Cache.next_level = fun ~cycle ~addr:_ ~write:_ -> cycle + latency

let small ?(ways = 2) ?(sets = 4) ?(mshrs = 2) ?(banks = 1) ?(hit_latency = 2) () =
  Cache.create (Cache.config ~name:"t" ~sets ~ways ~mshrs ~banks ~hit_latency ())

let test_size () =
  let c = Cache.config ~name:"l1" ~sets:64 ~ways:8 () in
  Alcotest.(check int) "32 KiB" (32 * 1024) (Cache.size_bytes c)

let test_cold_miss_then_hit () =
  let c = small () in
  let next = flat_next 100 in
  let t1 = Cache.access c ~next ~cycle:0 ~addr:0x1000 ~write:false in
  Alcotest.(check bool) "miss pays downstream" true (t1 >= 100);
  let t2 = Cache.access c ~next ~cycle:t1 ~addr:0x1008 ~write:false in
  Alcotest.(check int) "same-line hit" (t1 + 2) t2;
  let s = Cache.stats c in
  Alcotest.(check int) "1 miss" 1 s.Cache.misses;
  Alcotest.(check int) "1 hit" 1 s.Cache.hits

let test_lru_eviction () =
  (* 2-way set: touch 3 distinct lines mapping to one set; the first is
     evicted, the second (recently used) survives. *)
  let c = small ~ways:2 ~sets:4 () in
  let next = flat_next 10 in
  let stride = 4 * 64 in
  (* same set *)
  let a0 = 0x0 and a1 = stride and a2 = 2 * stride in
  ignore (Cache.access c ~next ~cycle:0 ~addr:a0 ~write:false);
  ignore (Cache.access c ~next ~cycle:50 ~addr:a1 ~write:false);
  ignore (Cache.access c ~next ~cycle:100 ~addr:a2 ~write:false);
  Alcotest.(check bool) "a0 evicted" false (Cache.probe c ~addr:a0);
  Alcotest.(check bool) "a1 resident" true (Cache.probe c ~addr:a1);
  Alcotest.(check bool) "a2 resident" true (Cache.probe c ~addr:a2)

let test_lru_touch_refreshes () =
  let c = small ~ways:2 ~sets:4 () in
  let next = flat_next 10 in
  let stride = 4 * 64 in
  ignore (Cache.access c ~next ~cycle:0 ~addr:0 ~write:false);
  ignore (Cache.access c ~next ~cycle:50 ~addr:stride ~write:false);
  (* touch 0 again: now stride is LRU *)
  ignore (Cache.access c ~next ~cycle:100 ~addr:0 ~write:false);
  ignore (Cache.access c ~next ~cycle:150 ~addr:(2 * stride) ~write:false);
  Alcotest.(check bool) "0 survives (recently used)" true (Cache.probe c ~addr:0);
  Alcotest.(check bool) "stride evicted" false (Cache.probe c ~addr:stride)

let test_writeback_on_dirty_eviction () =
  let c = small ~ways:1 ~sets:1 () in
  let next = flat_next 10 in
  ignore (Cache.access c ~next ~cycle:0 ~addr:0 ~write:true);
  (* dirty *)
  ignore (Cache.access c ~next ~cycle:50 ~addr:64 ~write:false);
  (* evicts dirty line *)
  let s = Cache.stats c in
  Alcotest.(check int) "one writeback" 1 s.Cache.writebacks

let test_clean_eviction_no_writeback () =
  let c = small ~ways:1 ~sets:1 () in
  let next = flat_next 10 in
  ignore (Cache.access c ~next ~cycle:0 ~addr:0 ~write:false);
  ignore (Cache.access c ~next ~cycle:50 ~addr:64 ~write:false);
  Alcotest.(check int) "no writeback" 0 (Cache.stats c).Cache.writebacks

let test_mshr_limits_parallelism () =
  (* Two misses in flight max: a third concurrent miss must wait. *)
  let c = small ~mshrs:2 ~sets:16 ~ways:2 () in
  let next = flat_next 100 in
  let t1 = Cache.access c ~next ~cycle:0 ~addr:0x0000 ~write:false in
  let t2 = Cache.access c ~next ~cycle:1 ~addr:0x4000 ~write:false in
  let t3 = Cache.access c ~next ~cycle:2 ~addr:0x8000 ~write:false in
  Alcotest.(check bool) "first two overlap" true (t2 - t1 < 50);
  Alcotest.(check bool) "third serialized behind an MSHR" true (t3 >= t1 + 100);
  Alcotest.(check bool) "mshr stall counted" true ((Cache.stats c).Cache.mshr_stalls >= 1)

let test_bank_conflicts () =
  let c = small ~banks:2 ~sets:16 ~ways:2 () in
  let next = flat_next 10 in
  (* Warm two lines in the same bank (bank = line mod 2). *)
  ignore (Cache.access c ~next ~cycle:0 ~addr:0 ~write:false);
  ignore (Cache.access c ~next ~cycle:100 ~addr:(2 * 64 * 16) ~write:false);
  Cache.reset_stats c;
  (* Concurrent hits to same bank serialize. *)
  let t1 = Cache.access c ~next ~cycle:200 ~addr:0 ~write:false in
  let t2 = Cache.access c ~next ~cycle:200 ~addr:(2 * 64 * 16) ~write:false in
  Alcotest.(check bool) "second delayed" true (t2 > t1);
  Alcotest.(check int) "conflict counted" 1 (Cache.stats c).Cache.bank_conflicts

let test_different_banks_parallel () =
  let c = small ~banks:2 ~sets:16 ~ways:2 () in
  let next = flat_next 10 in
  ignore (Cache.access c ~next ~cycle:0 ~addr:0 ~write:false);
  ignore (Cache.access c ~next ~cycle:100 ~addr:64 ~write:false);
  Cache.reset_stats c;
  let t1 = Cache.access c ~next ~cycle:200 ~addr:0 ~write:false in
  let t2 = Cache.access c ~next ~cycle:200 ~addr:64 ~write:false in
  Alcotest.(check int) "parallel hits" t1 t2;
  Alcotest.(check int) "no conflicts" 0 (Cache.stats c).Cache.bank_conflicts

let test_flush () =
  let c = small () in
  let next = flat_next 10 in
  ignore (Cache.access c ~next ~cycle:0 ~addr:0 ~write:false);
  Alcotest.(check bool) "resident" true (Cache.probe c ~addr:0);
  Cache.flush c;
  Alcotest.(check bool) "gone" false (Cache.probe c ~addr:0)

let test_miss_rate () =
  let c = small ~sets:64 ~ways:8 () in
  let next = flat_next 10 in
  for i = 0 to 9 do
    ignore (Cache.access c ~next ~cycle:(i * 100) ~addr:(i mod 8 * 8) ~write:false)
  done;
  (* 10 accesses within one line: 1 miss, 9 hits *)
  Alcotest.(check (float 1e-9)) "miss rate 0.1" 0.1 (Cache.miss_rate c)

let test_invalid_config () =
  Alcotest.check_raises "bad sets" (Invalid_argument "Cache.config: sets must be a power of two")
    (fun () -> ignore (Cache.config ~name:"x" ~sets:3 ~ways:1 ()))

let prop_monotone_completion =
  (* Completion cycle never precedes issue cycle. *)
  QCheck.Test.make ~name:"cache completion >= issue" ~count:200
    QCheck.(pair (int_range 0 10_000) (int_range 0 0xFFFF))
    (fun (cycle, addr) ->
      let c = small ~sets:16 ~ways:2 () in
      let next = flat_next 30 in
      Cache.access c ~next ~cycle ~addr ~write:false >= cycle)

let prop_second_access_hits =
  QCheck.Test.make ~name:"immediate re-access hits" ~count:200
    QCheck.(int_range 0 0xFFFFF)
    (fun addr ->
      let c = small ~sets:64 ~ways:4 () in
      let next = flat_next 50 in
      let t1 = Cache.access c ~next ~cycle:0 ~addr ~write:false in
      ignore (Cache.access c ~next ~cycle:t1 ~addr ~write:false);
      (Cache.stats c).Cache.hits = 1)

let suite =
  [
    Alcotest.test_case "size calculation" `Quick test_size;
    Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "LRU touch refreshes" `Quick test_lru_touch_refreshes;
    Alcotest.test_case "dirty eviction writes back" `Quick test_writeback_on_dirty_eviction;
    Alcotest.test_case "clean eviction silent" `Quick test_clean_eviction_no_writeback;
    Alcotest.test_case "MSHRs bound parallelism" `Quick test_mshr_limits_parallelism;
    Alcotest.test_case "bank conflicts serialize" `Quick test_bank_conflicts;
    Alcotest.test_case "distinct banks parallel" `Quick test_different_banks_parallel;
    Alcotest.test_case "flush invalidates" `Quick test_flush;
    Alcotest.test_case "miss rate" `Quick test_miss_rate;
    Alcotest.test_case "invalid config" `Quick test_invalid_config;
    QCheck_alcotest.to_alcotest prop_monotone_completion;
    QCheck_alcotest.to_alcotest prop_second_access_hits;
  ]

(* --- stream prefetcher --- *)

let prefetching ?(depth = 4) () =
  Cache.create (Cache.config ~name:"pf" ~sets:64 ~ways:8 ~prefetch_next:depth ())

let test_sequential_stream_prefetches () =
  let c = prefetching () in
  let next = flat_next 100 in
  (* two consecutive line misses confirm a stream *)
  ignore (Cache.access c ~next ~cycle:0 ~addr:0 ~write:false);
  ignore (Cache.access c ~next ~cycle:200 ~addr:64 ~write:false);
  Alcotest.(check bool) "burst launched" true ((Cache.stats c).Cache.prefetches >= 4);
  (* the next lines are now present *)
  Alcotest.(check bool) "line +2 resident" true (Cache.probe c ~addr:128);
  Alcotest.(check bool) "line +4 resident" true (Cache.probe c ~addr:(64 * 4))

let test_random_misses_never_prefetch () =
  let c = prefetching () in
  let next = flat_next 100 in
  let rng = Util.Rng.create 9 in
  for _ = 1 to 50 do
    let addr = Util.Rng.int rng 4096 * 8192 in
    ignore (Cache.access c ~next ~cycle:0 ~addr ~write:false)
  done;
  Alcotest.(check int) "no prefetches on random misses" 0 (Cache.stats c).Cache.prefetches

let test_prefetched_hit_waits_for_fill () =
  let c = prefetching () in
  let next = flat_next 500 in
  ignore (Cache.access c ~next ~cycle:0 ~addr:0 ~write:false);
  ignore (Cache.access c ~next ~cycle:600 ~addr:64 ~write:false);
  (* line 128 was prefetched around cycle 600 and fills at ~1100; an
     immediate demand hit must wait for the fill, not return at +2 *)
  let t = Cache.access c ~next ~cycle:650 ~addr:128 ~write:false in
  Alcotest.(check bool) (Printf.sprintf "waits for in-flight fill (%d)" t) true (t > 1000)

let test_tagged_hit_extends_stream () =
  let c = prefetching ~depth:2 () in
  let next = flat_next 10 in
  ignore (Cache.access c ~next ~cycle:0 ~addr:0 ~write:false);
  ignore (Cache.access c ~next ~cycle:100 ~addr:64 ~write:false);
  (* consuming prefetched line 128 must pull in line 128+2*64 = 256 *)
  ignore (Cache.access c ~next ~cycle:200 ~addr:128 ~write:false);
  Alcotest.(check bool) "stream extended" true (Cache.probe c ~addr:256)

let test_unprefetchable_access_does_not_train () =
  let c = prefetching () in
  let next = flat_next 10 in
  ignore (Cache.access ~prefetchable:false c ~next ~cycle:0 ~addr:0 ~write:false);
  ignore (Cache.access ~prefetchable:false c ~next ~cycle:100 ~addr:64 ~write:false);
  ignore (Cache.access ~prefetchable:false c ~next ~cycle:200 ~addr:128 ~write:false);
  Alcotest.(check int) "ifetch-style accesses never prefetch" 0 (Cache.stats c).Cache.prefetches

let prefetch_suite =
  [
    Alcotest.test_case "sequential stream prefetches" `Quick test_sequential_stream_prefetches;
    Alcotest.test_case "random misses never prefetch" `Quick test_random_misses_never_prefetch;
    Alcotest.test_case "prefetched hit waits for fill" `Quick test_prefetched_hit_waits_for_fill;
    Alcotest.test_case "tagged hit extends stream" `Quick test_tagged_hit_extends_stream;
    Alcotest.test_case "non-prefetchable access" `Quick test_unprefetchable_access_does_not_train;
  ]

let suite = suite @ prefetch_suite
