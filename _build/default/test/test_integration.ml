(* Cross-layer integration tests: each microbenchmark must land in the
   level of the memory hierarchy its Table 1 description names, verified
   through the full SoC stack's statistics. *)

module Mb = Workloads.Microbench

let run ?(platform = Platform.Catalog.banana_pi_sim) name =
  Simbridge.Runner.run_kernel ~scale:0.3 platform (Mb.find name)

let miss_rate (r : Platform.Soc.result) =
  float_of_int r.Platform.Soc.l1d_misses /. float_of_int (max 1 r.Platform.Soc.l1d_accesses)

let test_md_is_l1_resident () =
  let r = run "MD" in
  Alcotest.(check bool)
    (Printf.sprintf "MD l1 miss rate %.3f < 0.05" (miss_rate r))
    true
    (miss_rate r < 0.05)

let test_ml2_misses_l1_hits_l2 () =
  let r = run "ML2" in
  Alcotest.(check bool)
    (Printf.sprintf "ML2 misses L1 (%.2f)" (miss_rate r))
    true
    (miss_rate r > 0.3);
  (* warmed by setup: almost no DRAM traffic in the measured phase;
     compare misses at L2 to the L1 misses feeding it *)
  let l2_rate = float_of_int r.Platform.Soc.l2_misses /. float_of_int (max 1 r.Platform.Soc.l2_accesses) in
  Alcotest.(check bool) (Printf.sprintf "ML2 hits L2 (%.3f)" l2_rate) true (l2_rate < 0.1)

let test_mm_reaches_dram () =
  let r = run "MM" in
  (* every hop is a fresh 64 MiB+ line: all levels miss *)
  Alcotest.(check bool) "many DRAM requests" true
    (r.Platform.Soc.dram_requests > r.Platform.Soc.instructions / 8)

let test_mm_tlb_hostile () =
  let r = run "MM" in
  Alcotest.(check bool) "page walks on most hops" true
    (r.Platform.Soc.tlb_walks > r.Platform.Soc.dram_requests / 3)

let test_mc_conflicts_in_l1 () =
  (* MC's same-set addresses must keep missing despite a tiny footprint. *)
  let r = run "MC" in
  Alcotest.(check bool)
    (Printf.sprintf "conflict misses persist (%.2f)" (miss_rate r))
    true
    (miss_rate r > 0.5)

let test_mi_within_l1 () =
  let r = run "MI" in
  Alcotest.(check bool) (Printf.sprintf "MI warm (%.3f)" (miss_rate r)) true (miss_rate r < 0.05)

let test_stc_store_hits () =
  let r = run "STc" in
  Alcotest.(check bool) "stores stay in L1" true (r.Platform.Soc.dram_requests < 200)

let test_mip_icache_pressure () =
  (* MIP's misses are on the I side: D-side stats stay quiet while the
     shared L2 sees heavy (unprefetched) refill traffic. *)
  let r = run ~platform:Platform.Catalog.milkv_sim "MIP" in
  Alcotest.(check bool) "L2 sees icache refills" true (r.Platform.Soc.l2_accesses > 10_000);
  Alcotest.(check bool) "D-side quiet" true
    (r.Platform.Soc.l1d_accesses < r.Platform.Soc.instructions / 10)

let test_ep_is_compute_bound () =
  let r = Simbridge.Runner.run_app ~scale:0.3 ~ranks:1 Platform.Catalog.banana_pi_sim Workloads.Npb.ep in
  Alcotest.(check bool) "almost no DRAM traffic" true
    (r.Platform.Soc.dram_requests * 100 < r.Platform.Soc.instructions)

let test_cg_gathers_hit_cache () =
  let r = Simbridge.Runner.run_app ~scale:0.3 ~ranks:1 Platform.Catalog.banana_pi_sim Workloads.Npb.cg in
  let rate = miss_rate r in
  Alcotest.(check bool) (Printf.sprintf "CG mostly cached (%.3f)" rate) true (rate < 0.2)

let test_full_pipeline_deterministic () =
  (* The whole stack — workload generation, MPI engine, multicore SoC,
     TLBs, prefetchers — must be bit-reproducible. *)
  let go () =
    let r = Simbridge.Runner.run_app ~scale:0.3 ~ranks:4 Platform.Catalog.milkv_sim Workloads.Npb.mg in
    r.Platform.Soc.cycles
  in
  Alcotest.(check int) "same cycles twice" (go ()) (go ())

let test_all_kernels_run_on_all_platforms () =
  (* Smoke: every evaluated kernel completes on every catalog platform. *)
  List.iter
    (fun (p : Platform.Config.t) ->
      List.iter
        (fun (k : Workloads.Workload.kernel) ->
          let r = Simbridge.Runner.run_kernel ~scale:0.02 p k in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" k.Workloads.Workload.name p.Platform.Config.name)
            true
            (r.Platform.Soc.cycles > 0))
        (List.filteri (fun i _ -> i mod 4 = 0) Mb.evaluated))
    Platform.Catalog.all

let test_all_apps_all_rank_counts () =
  let apps = Workloads.Npb.all @ [ Workloads.Ume.app; Workloads.Lammps.lj; Workloads.Lammps.chain ] in
  List.iter
    (fun (a : Workloads.Workload.app) ->
      List.iter
        (fun ranks ->
          let r = Simbridge.Runner.run_app ~scale:0.1 ~ranks Platform.Catalog.rocket1 a in
          Alcotest.(check bool)
            (Printf.sprintf "%s x%d" a.Workloads.Workload.app_name ranks)
            true
            (r.Platform.Soc.cycles > 0))
        [ 1; 2; 3; 4 ])
    apps

let suite =
  [
    Alcotest.test_case "MD is L1-resident" `Quick test_md_is_l1_resident;
    Alcotest.test_case "ML2 lands in L2" `Quick test_ml2_misses_l1_hits_l2;
    Alcotest.test_case "MM reaches DRAM" `Quick test_mm_reaches_dram;
    Alcotest.test_case "MM is TLB-hostile" `Quick test_mm_tlb_hostile;
    Alcotest.test_case "MC conflicts in L1" `Quick test_mc_conflicts_in_l1;
    Alcotest.test_case "MI warm in L1" `Quick test_mi_within_l1;
    Alcotest.test_case "STc store hits" `Quick test_stc_store_hits;
    Alcotest.test_case "MIP pressures icache path" `Quick test_mip_icache_pressure;
    Alcotest.test_case "EP compute-bound" `Quick test_ep_is_compute_bound;
    Alcotest.test_case "CG gathers cached" `Quick test_cg_gathers_hit_cache;
    Alcotest.test_case "full pipeline deterministic" `Quick test_full_pipeline_deterministic;
    Alcotest.test_case "kernels x platforms smoke" `Slow test_all_kernels_run_on_all_platforms;
    Alcotest.test_case "apps x rank counts smoke" `Slow test_all_apps_all_rank_counts;
  ]
