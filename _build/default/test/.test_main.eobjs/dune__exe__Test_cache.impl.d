test/test_cache.ml: Alcotest Cache Printf QCheck QCheck_alcotest Util
