test/test_tlb.ml: Alcotest Isa Platform Printf QCheck QCheck_alcotest Seq
