test/test_isa.ml: Alcotest Format Insn Isa List String
