test/test_platform.ml: Alcotest Array Cache Catalog Config Dram Float Isa List Platform Printf Seq Smpi Workloads
