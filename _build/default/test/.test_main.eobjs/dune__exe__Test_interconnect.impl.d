test/test_interconnect.ml: Alcotest Gen Interconnect List QCheck QCheck_alcotest
