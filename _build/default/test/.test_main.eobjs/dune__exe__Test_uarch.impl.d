test/test_uarch.ml: Alcotest Isa List Printf Prog QCheck QCheck_alcotest Uarch Util
