test/test_smpi.ml: Alcotest Array Isa List QCheck QCheck_alcotest Seq Smpi
