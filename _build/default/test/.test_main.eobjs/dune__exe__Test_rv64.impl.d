test/test_rv64.ml: Alcotest Array Format Fun Isa List Option Platform QCheck QCheck_alcotest Seq
