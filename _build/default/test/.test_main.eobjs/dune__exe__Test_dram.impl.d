test/test_dram.ml: Alcotest Dram Float Printf QCheck QCheck_alcotest
