test/test_integration.ml: Alcotest List Platform Printf Simbridge Workloads
