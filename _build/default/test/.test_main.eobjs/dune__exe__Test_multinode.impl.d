test/test_multinode.ml: Alcotest Array Firesim Isa Platform Printf Seq Smpi String Workloads
