test/test_branch.ml: Alcotest Array Branch Gen Isa List Printf QCheck QCheck_alcotest Util
