test/test_firesim.ml: Alcotest Firesim Float List Platform Printf Util
