test/test_prog.ml: Alcotest Float Hashtbl Isa List Prog QCheck QCheck_alcotest Seq Util
