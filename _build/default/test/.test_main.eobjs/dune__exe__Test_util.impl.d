test/test_util.ml: Alcotest Array Float Fun Gen QCheck QCheck_alcotest Util
