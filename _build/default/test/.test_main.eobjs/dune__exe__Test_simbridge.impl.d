test/test_simbridge.ml: Alcotest List Platform Printf Simbridge String Workloads
