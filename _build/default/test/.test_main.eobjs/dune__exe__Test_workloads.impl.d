test/test_workloads.ml: Alcotest Array Float Hashtbl Isa List Printf Prog Seq Smpi Workloads
