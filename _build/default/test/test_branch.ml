(* Tests for branch predictors and the composite frontend. *)

let train_and_rate config outcomes =
  let p = Branch.Predictor.create config in
  let correct = ref 0 in
  List.iteri
    (fun _ taken ->
      if Branch.Predictor.predict p ~pc:0x400 = taken then incr correct;
      Branch.Predictor.update p ~pc:0x400 ~taken)
    outcomes;
  float_of_int !correct /. float_of_int (List.length outcomes)

let repeat n x = List.init n (fun _ -> x)

let test_static () =
  Alcotest.(check (float 0.0)) "static taken on all-taken" 1.0
    (train_and_rate Branch.Predictor.Static_taken (repeat 100 true));
  Alcotest.(check (float 0.0)) "static not-taken on all-taken" 0.0
    (train_and_rate Branch.Predictor.Static_taken (repeat 100 false))

let test_bimodal_biased () =
  let rate = train_and_rate (Branch.Predictor.Bimodal { entries = 256 }) (repeat 1000 true) in
  Alcotest.(check bool) "bimodal learns bias" true (rate > 0.99)

let test_bimodal_alternating_poor () =
  let outcomes = List.init 1000 (fun i -> i mod 2 = 0) in
  let rate = train_and_rate (Branch.Predictor.Bimodal { entries = 256 }) outcomes in
  (* A 2-bit counter cannot track strict alternation. *)
  Alcotest.(check bool) "bimodal poor on alternation" true (rate < 0.7)

let test_gshare_alternating_good () =
  let outcomes = List.init 2000 (fun i -> i mod 2 = 0) in
  let rate = train_and_rate (Branch.Predictor.Gshare { entries = 1024; history_bits = 8 }) outcomes in
  Alcotest.(check bool) "gshare learns alternation" true (rate > 0.9)

let test_tage_alternating_good () =
  let outcomes = List.init 2000 (fun i -> i mod 2 = 0) in
  let rate =
    train_and_rate
      (Branch.Predictor.Tage { base_entries = 512; tables = 4; table_entries = 256; max_history = 32 })
      outcomes
  in
  Alcotest.(check bool) "tage learns alternation" true (rate > 0.9)

let test_tage_long_pattern () =
  (* Period-7 pattern: needs history, defeats bimodal. *)
  let pat = [| true; true; false; true; false; false; true |] in
  let outcomes = List.init 4000 (fun i -> pat.(i mod 7)) in
  let tage =
    train_and_rate
      (Branch.Predictor.Tage { base_entries = 512; tables = 6; table_entries = 512; max_history = 32 })
      outcomes
  in
  let bimodal = train_and_rate (Branch.Predictor.Bimodal { entries = 512 }) outcomes in
  Alcotest.(check bool) (Printf.sprintf "tage (%.2f) beats bimodal (%.2f)" tage bimodal) true
    (tage > bimodal)

let test_random_unpredictable () =
  let rng = Util.Rng.create 5 in
  let outcomes = List.init 4000 (fun _ -> Util.Rng.bool rng) in
  let rate =
    train_and_rate
      (Branch.Predictor.Tage { base_entries = 512; tables = 4; table_entries = 256; max_history = 32 })
      outcomes
  in
  Alcotest.(check bool) "near coin flip" true (rate < 0.62)

let test_invalid_configs () =
  Alcotest.check_raises "non-pow2 bimodal"
    (Invalid_argument "Predictor.Bimodal: size must be a positive power of two") (fun () ->
      ignore (Branch.Predictor.create (Branch.Predictor.Bimodal { entries = 100 })))

(* --- frontend --- *)

let ctrl_insn ?(kind = Isa.Insn.Branch) ~pc ~taken ~target () =
  Isa.Insn.make ~ctrl:{ Isa.Insn.taken; target } ~pc kind

let test_frontend_loop_branch () =
  let fe = Branch.Frontend.create Branch.Frontend.rocket_config in
  (* A loop branch taken 99 times then falling through. *)
  for _ = 1 to 99 do
    ignore (Branch.Frontend.resolve fe (ctrl_insn ~pc:0x100 ~taken:true ~target:0x80 ()))
  done;
  ignore (Branch.Frontend.resolve fe (ctrl_insn ~pc:0x100 ~taken:false ~target:0x104 ()));
  let s = Branch.Frontend.stats fe in
  Alcotest.(check bool)
    (Printf.sprintf "few mispredicts (%d)" s.Branch.Frontend.mispredicts)
    true
    (s.Branch.Frontend.mispredicts <= 5)

let test_frontend_call_ret_matched () =
  let fe = Branch.Frontend.create Branch.Frontend.rocket_config in
  (* call/ret nest within RAS depth: returns predictable after warmup. *)
  for _ = 1 to 50 do
    ignore (Branch.Frontend.resolve fe (ctrl_insn ~kind:Isa.Insn.Call ~pc:0x200 ~taken:true ~target:0x400 ()));
    ignore (Branch.Frontend.resolve fe (ctrl_insn ~kind:Isa.Insn.Ret ~pc:0x410 ~taken:true ~target:0x204 ()))
  done;
  let s = Branch.Frontend.stats fe in
  Alcotest.(check int) "no ras mispredicts" 0 s.Branch.Frontend.ras_mispredicts

let test_frontend_deep_recursion_overflows_ras () =
  let fe = Branch.Frontend.create Branch.Frontend.rocket_config in
  let depth = 100 in
  for d = 0 to depth - 1 do
    ignore
      (Branch.Frontend.resolve fe
         (ctrl_insn ~kind:Isa.Insn.Call ~pc:(0x200 + (d * 8)) ~taken:true ~target:0x400 ()))
  done;
  for d = depth - 1 downto 0 do
    ignore
      (Branch.Frontend.resolve fe
         (ctrl_insn ~kind:Isa.Insn.Ret ~pc:0x410 ~taken:true ~target:(0x204 + (d * 8)) ()))
  done;
  let s = Branch.Frontend.stats fe in
  (* Rocket's 6-entry RAS cannot hold 100 frames. *)
  Alcotest.(check bool)
    (Printf.sprintf "ras overflow mispredicts (%d)" s.Branch.Frontend.ras_mispredicts)
    true
    (s.Branch.Frontend.ras_mispredicts > 50)

let test_frontend_btb_indirect () =
  let fe = Branch.Frontend.create Branch.Frontend.rocket_config in
  (* An indirect jump whose target changes every time defeats the BTB. *)
  for i = 0 to 99 do
    ignore
      (Branch.Frontend.resolve fe
         (ctrl_insn ~kind:Isa.Insn.Jump ~pc:0x500 ~taken:true ~target:(0x1000 + (i * 64)) ()))
  done;
  Alcotest.(check bool) "jump target misses" true
    (Branch.Frontend.mispredict_rate fe > 0.9)

let test_frontend_btb_stable () =
  let fe = Branch.Frontend.create Branch.Frontend.rocket_config in
  for _ = 0 to 99 do
    ignore (Branch.Frontend.resolve fe (ctrl_insn ~kind:Isa.Insn.Jump ~pc:0x500 ~taken:true ~target:0x1000 ()))
  done;
  Alcotest.(check bool) "stable jump learned" true (Branch.Frontend.mispredict_rate fe < 0.1)

let test_frontend_rejects_non_ctrl () =
  let fe = Branch.Frontend.create Branch.Frontend.rocket_config in
  Alcotest.check_raises "non ctrl" (Invalid_argument "Frontend.resolve: not a control insn")
    (fun () -> ignore (Branch.Frontend.resolve fe (Isa.Insn.make ~pc:0 Isa.Insn.Int_alu)))

let prop_predictor_total =
  (* Any outcome sequence: predictors never crash and rate is in [0,1]. *)
  QCheck.Test.make ~name:"predictors total on arbitrary outcome sequences" ~count:50
    QCheck.(list_of_size Gen.(1 -- 500) bool)
    (fun outcomes ->
      List.for_all
        (fun cfg ->
          let r = train_and_rate cfg outcomes in
          r >= 0.0 && r <= 1.0)
        [
          Branch.Predictor.Static_taken;
          Branch.Predictor.Bimodal { entries = 64 };
          Branch.Predictor.Gshare { entries = 64; history_bits = 6 };
          Branch.Predictor.Tage { base_entries = 64; tables = 3; table_entries = 64; max_history = 16 };
        ])

let suite =
  [
    Alcotest.test_case "static predictors" `Quick test_static;
    Alcotest.test_case "bimodal learns bias" `Quick test_bimodal_biased;
    Alcotest.test_case "bimodal poor on alternation" `Quick test_bimodal_alternating_poor;
    Alcotest.test_case "gshare learns alternation" `Quick test_gshare_alternating_good;
    Alcotest.test_case "tage learns alternation" `Quick test_tage_alternating_good;
    Alcotest.test_case "tage beats bimodal on period-7" `Quick test_tage_long_pattern;
    Alcotest.test_case "random is unpredictable" `Quick test_random_unpredictable;
    Alcotest.test_case "invalid configs rejected" `Quick test_invalid_configs;
    Alcotest.test_case "frontend loop branch" `Quick test_frontend_loop_branch;
    Alcotest.test_case "frontend call/ret" `Quick test_frontend_call_ret_matched;
    Alcotest.test_case "frontend RAS overflow" `Quick test_frontend_deep_recursion_overflows_ras;
    Alcotest.test_case "frontend indirect jump" `Quick test_frontend_btb_indirect;
    Alcotest.test_case "frontend stable jump" `Quick test_frontend_btb_stable;
    Alcotest.test_case "frontend rejects non-ctrl" `Quick test_frontend_rejects_non_ctrl;
    QCheck_alcotest.to_alcotest prop_predictor_total;
  ]
